// Flowmux: scan many concurrent flows and a packet batch with one shared
// engine — the software analogue of the paper's 6-engines-per-block
// parallelism. Every goroutine shares one compiled automaton; each flow
// carries only its own scanner registers (state + 2-byte history), checked
// out of the engine's pool.
//
//	go run ./examples/flowmux
package main

import (
	"fmt"
	"log"
	"sync"

	dpi "repro"
)

func main() {
	rules := dpi.NewRuleset()
	rules.MustAdd("web-phf", []byte("/cgi-bin/phf"))
	rules.MustAdd("traversal", []byte("../../"))
	rules.MustAdd("cmd-exe", []byte("cmd.exe"))
	rules.MustAdd("nop-sled", []byte{0x90, 0x90, 0x90, 0x90})

	matcher, err := dpi.Compile(rules, dpi.Config{})
	if err != nil {
		log.Fatal(err)
	}
	engine := matcher.NewEngine(0) // one worker per core

	// Batch mode: a burst of independent packets, sharded across workers.
	// Matches come back in canonical (PacketID, End, PatternID) order.
	packets := [][]byte{
		[]byte("GET /cgi-bin/phf?Qalias=x HTTP/1.0"),
		[]byte("GET /index.html HTTP/1.0"),
		[]byte("GET /../../etc/shadow HTTP/1.0 cmd.exe"),
	}
	for _, m := range engine.ScanPackets(packets) {
		fmt.Printf("packet %d: %-9s at [%2d,%2d)\n",
			m.PacketID, rules.Name(m.PatternID), m.Start, m.End)
	}

	// Streaming mode: concurrent flows, each receiving its payload in
	// chunks (as TCP segments would arrive). Matches spanning chunk
	// boundaries are still found; offsets are flow-relative.
	flows := [][]byte{
		[]byte("POST /upload \x90\x90\x90\x90 HTTP/1.1"),
		[]byte("GET /a/../.\x00./../b cmd" + ".exe HTTP/1.1"),
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for id, payload := range flows {
		wg.Add(1)
		go func(id int, payload []byte) {
			defer wg.Done()
			f := engine.Flow(func(m dpi.Match) {
				mu.Lock()
				fmt.Printf("flow %d: %-9s at [%2d,%2d)\n", id, rules.Name(m.PatternID), m.Start, m.End)
				mu.Unlock()
			})
			defer f.Close()
			for i := 0; i < len(payload); i += 5 { // 5-byte "segments"
				end := i + 5
				if end > len(payload) {
					end = len(payload)
				}
				f.Write(payload[i:end])
			}
		}(id, payload)
	}
	wg.Wait()
}
