// idsgateway simulates the paper's deployment scenario end to end: an
// intrusion detection accelerator on an edge router scanning mixed traffic
// against a large Snort-like ruleset — now fronted by the real gateway
// layer. Interleaved TCP connections are demultiplexed through the flow
// table (bounded live-flow state, LRU + idle eviction), UDP datagrams are
// batched into engine bursts, and cross-packet attacks that straddle TCP
// segment boundaries are still caught because each flow carries its scanner
// registers between packets.
//
//	go run ./examples/idsgateway
package main

import (
	"fmt"
	"log"
	"sync"

	dpi "repro"
	"repro/internal/traffic"
)

func main() {
	// A ruleset too large for one block: split across 2 groups, giving 3
	// concurrent packet sets on the Stratix III (Table II).
	rules, err := dpi.GenerateSnortLike(1603, 2010)
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := dpi.Compile(rules, dpi.Config{Groups: 2})
	if err != nil {
		log.Fatal(err)
	}
	accel, err := dpi.NewAccelerator(matcher, dpi.Stratix3)
	if err != nil {
		log.Fatal(err)
	}
	rep := accel.Report()
	fmt.Printf("%s: %d blocks as %d sets × %d groups, line rate %.1f Gbps, max %.2f W\n",
		rep.Device, rep.Blocks, rep.ConcurrentSets, rep.Groups, rep.ThroughputGbps, rep.MaxPowerW)

	// Interleaved multi-flow traffic with exact ground truth, including
	// attacks deliberately split across TCP segment boundaries.
	w, err := traffic.GenerateFlows(rules.InternalSet(), traffic.FlowConfig{
		Flows: 120, SegmentsPerFlow: 6, SegmentBytes: 1000,
		Seed: 7, CrossDensity: 1.2, AttackDensity: 0.5, Profile: traffic.Textual,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway ingesting %d TCP segments from %d flows (%d planted attacks straddle segment boundaries)...\n",
		len(w.Packets), len(w.Tuples), w.CrossPlants())

	// The software gateway: a bounded ingest queue, per-flow lanes over a
	// 5-tuple flow table, burst batching for stateless packets.
	var mu sync.Mutex
	byTuple := map[dpi.FiveTuple][]dpi.Match{}
	gw := matcher.NewEngine(0).Gateway(dpi.GatewayConfig{MaxFlows: 512}, func(fm dpi.FlowMatch) {
		mu.Lock()
		byTuple[fm.Tuple] = append(byTuple[fm.Tuple], fm.Match)
		mu.Unlock()
	})
	for _, p := range w.Packets {
		if err := gw.Ingest(dpi.GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
			log.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		log.Fatal(err)
	}
	st := gw.Stats()
	fmt.Printf("  %d packets (%d KB), %d matches; flows: %d created, %d evicted (table capped at 512)\n",
		st.Packets, st.Bytes/1024, st.Matches, st.FlowsCreated, st.FlowsEvicted)

	// Ground truth: the matcher is exhaustive and the table is sized for
	// the offered load, so every planted attack — including the ones split
	// across TCP segments — must be reported. (Undersize MaxFlows and
	// mid-stream evictions would trade detections for bounded memory;
	// `dpibench -gateway` measures that churn regime.)
	found, lost := 0, 0
	for f, plants := range w.Planted {
		reported := map[[2]int]bool{}
		mu.Lock()
		for _, m := range byTuple[w.Tuples[f]] {
			reported[[2]int{m.PatternID, m.End}] = true
		}
		mu.Unlock()
		for _, pl := range plants {
			if reported[[2]int{int(pl.PatternID), pl.End}] {
				found++
			} else {
				lost++
			}
		}
	}
	fmt.Printf("  planted-attack detection: %d reported, %d lost to flow eviction\n", found, lost)

	// A few named detections.
	shown := 0
	for f, tuple := range w.Tuples {
		for _, m := range byTuple[tuple] {
			if m.End-m.Start >= 6 && shown < 5 {
				fmt.Printf("  e.g. flow %3d (%s) [%4d,%4d) rule %q\n",
					f, tuple, m.Start, m.End, rules.Name(m.PatternID))
				shown++
			}
		}
	}
}
