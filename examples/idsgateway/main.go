// idsgateway simulates the paper's deployment scenario end to end: an
// intrusion detection accelerator on an edge router scanning mixed traffic
// against a large Snort-like ruleset — fronted by the real gateway layer.
// Interleaved TCP connections arrive as sequenced segments delivered out of
// order and retransmitted (what a real capture looks like), are rebuilt by
// the TCP reassembly stage, and are demultiplexed through the flow table
// (bounded live-flow state, LRU + idle eviction). Header rules classify
// each connection's 5-tuple before any payload byte is scanned: a trusted
// subnet passes uninspected, a blocked subnet is dropped unscanned, and
// web traffic is scanned with every match attributed to the admitting
// rule. Cross-packet attacks that straddle TCP segment boundaries — even
// when those segments arrive shuffled — are still caught because each flow
// is reassembled into its scanner's byte stream.
//
// The scan back-end is sharded (GatewayConfig.EngineShards): the gateway
// replicates the engine over the one compiled automaton and pins each
// connection to a replica by tuple hash, just as the paper's device
// replicates fixed string-matching blocks and fans partitioned traffic
// across them. Sharding is invisible in the results — per-flow order and
// every detection are preserved — and the per-shard fan-out is reported
// at the end.
//
//	go run ./examples/idsgateway
package main

import (
	"fmt"
	"log"
	"sync"

	dpi "repro"
	"repro/internal/traffic"
)

func main() {
	// A ruleset too large for one block: split across 2 groups, giving 3
	// concurrent packet sets on the Stratix III (Table II).
	rules, err := dpi.GenerateSnortLike(1603, 2010)
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := dpi.Compile(rules, dpi.Config{Groups: 2})
	if err != nil {
		log.Fatal(err)
	}
	accel, err := dpi.NewAccelerator(matcher, dpi.Stratix3)
	if err != nil {
		log.Fatal(err)
	}
	rep := accel.Report()
	fmt.Printf("%s: %d blocks as %d sets × %d groups, line rate %.1f Gbps, max %.2f W\n",
		rep.Device, rep.Blocks, rep.ConcurrentSets, rep.Groups, rep.ThroughputGbps, rep.MaxPowerW)

	// Interleaved multi-flow traffic with exact ground truth, including
	// attacks deliberately split across TCP segment boundaries — and the
	// segments themselves delivered out of order with retransmissions.
	w, err := traffic.GenerateFlows(rules.InternalSet(), traffic.FlowConfig{
		Flows: 120, SegmentsPerFlow: 6, SegmentBytes: 1000,
		Seed: 7, CrossDensity: 1.2, AttackDensity: 0.5, Profile: traffic.Textual,
		Sequenced: true, ReorderWindow: 3, RetransmitDensity: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	retrans := 0
	for _, p := range w.Packets {
		if p.Retransmit {
			retrans++
		}
	}
	fmt.Printf("gateway ingesting %d TCP segments from %d flows (%d cross-boundary attacks, %d retransmissions, reorder window 3)...\n",
		len(w.Packets), len(w.Tuples), w.CrossPlants(), retrans)

	// Header rules gate each connection before payload scanning. Generated
	// flows have SrcIP 10.0.0.f and DstPort 80, so the first /29 (flows
	// 0-7) is "trusted", the next /29 (flows 8-15) is "blocked", and the
	// rest is web traffic scanned under the alert rule.
	vrules := []dpi.VerdictRule{
		{ID: 1, Name: "pass-trusted-net", Verdict: dpi.VerdictPass,
			Header: dpi.HeaderRule{Proto: dpi.ProtoTCP, SrcNet: dpi.Prefix{Addr: dpi.IPv4(10, 0, 0, 0), Bits: 29}}},
		{ID: 2, Name: "drop-blocked-net", Verdict: dpi.VerdictDrop,
			Header: dpi.HeaderRule{Proto: dpi.ProtoTCP, SrcNet: dpi.Prefix{Addr: dpi.IPv4(10, 0, 0, 8), Bits: 29}}},
		{ID: 3, Name: "alert-web", Verdict: dpi.VerdictAlert,
			Header: dpi.HeaderRule{Proto: dpi.ProtoTCP, DstPorts: dpi.PortRange{Lo: 80, Hi: 80}}},
	}

	// The software gateway: a bounded ingest queue, per-flow lanes over a
	// 5-tuple flow table, TCP reassembly ahead of each flow's scanner —
	// and two engine shards, each with its own worker pool and scanner
	// state, splitting the connection load by tuple hash.
	var mu sync.Mutex
	byTuple := map[dpi.FiveTuple][]dpi.FlowMatch{}
	gw := matcher.NewEngine(0).Gateway(dpi.GatewayConfig{
		MaxFlows: 512, EngineShards: 2, Rules: vrules,
	}, func(fm dpi.FlowMatch) {
		mu.Lock()
		byTuple[fm.Tuple] = append(byTuple[fm.Tuple], fm)
		mu.Unlock()
	})
	for _, p := range w.Packets {
		err := gw.Ingest(dpi.GatewayPacket{
			Tuple: p.Tuple, Seq: p.TCPSeq, Flags: dpi.TCPFlags(p.Flags), Payload: p.Payload,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		log.Fatal(err)
	}
	st := gw.Stats()
	fmt.Printf("  %d packets (%d KB): %d reassembled in-order KB, %d segments buffered out-of-order, %d duplicate KB discarded\n",
		st.Packets, st.Bytes/1024, st.ReassembledBytes/1024, st.OutOfOrderSegs, st.DuplicateBytes/1024)
	fmt.Printf("  verdicts: %d alert / %d pass / %d drop flows (%d KB dropped unscanned); %d matches; %d flows finished via FIN\n",
		st.VerdictAlerts, st.VerdictPasses, st.VerdictDrops, st.DroppedBytes/1024, st.Matches, st.FlowsFinished)
	for i, ss := range gw.ShardStats() {
		fmt.Printf("  engine shard %d/%d: %d flows opened, %d KB streamed through per-flow scanners\n",
			i+1, st.EngineShards, ss.FlowsOpened, ss.StreamBytes/1024)
	}

	// Ground truth: the matcher is exhaustive, reassembly restores every
	// stream exactly (duplicates are exact copies and nothing is lost), and
	// the table is sized for the offered load — so every planted attack on
	// a scanned flow must be reported, and gated flows must report nothing.
	found, lost, gatedSilent := 0, 0, 0
	for f, plants := range w.Planted {
		tuple := w.Tuples[f]
		mu.Lock()
		ms := byTuple[tuple]
		mu.Unlock()
		if f < 16 { // pass + drop nets: never scanned
			if len(ms) == 0 {
				gatedSilent++
			}
			continue
		}
		reported := map[[2]int]bool{}
		for _, m := range ms {
			reported[[2]int{m.PatternID, m.End}] = true
		}
		for _, pl := range plants {
			if reported[[2]int{int(pl.PatternID), pl.End}] {
				found++
			} else {
				lost++
			}
		}
	}
	fmt.Printf("  planted-attack detection on scanned flows: %d reported, %d lost; %d/16 gated flows stayed silent\n",
		found, lost, gatedSilent)

	// A few named detections with their rule attribution.
	shown := 0
	for f, tuple := range w.Tuples {
		for _, m := range byTuple[tuple] {
			if m.End-m.Start >= 6 && shown < 5 {
				fmt.Printf("  e.g. flow %3d (%s) [%4d,%4d) rule %q via %q\n",
					f, tuple, m.Start, m.End, rules.Name(m.PatternID), vrules[2].Name)
				shown++
			}
		}
	}
}
