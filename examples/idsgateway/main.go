// idsgateway simulates the paper's deployment scenario: an intrusion
// detection accelerator on an edge router scanning mixed traffic against a
// large Snort-like ruleset, using the full hardware model — grouped block
// images on a Stratix III with 6 string matching blocks.
//
//	go run ./examples/idsgateway
package main

import (
	"fmt"
	"log"

	dpi "repro"
	"repro/internal/ruleset"
	"repro/internal/traffic"
)

func main() {
	// A ruleset too large for one block: split across 2 groups, giving 3
	// concurrent packet sets on the Stratix III (22.1 Gbps, Table II).
	rules, err := dpi.GenerateSnortLike(1603, 2010)
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := dpi.Compile(rules, dpi.Config{Groups: 2})
	if err != nil {
		log.Fatal(err)
	}
	accel, err := dpi.NewAccelerator(matcher, dpi.Stratix3)
	if err != nil {
		log.Fatal(err)
	}
	rep := accel.Report()
	fmt.Printf("%s: %d blocks as %d sets × %d groups\n",
		rep.Device, rep.Blocks, rep.ConcurrentSets, rep.Groups)
	fmt.Printf("  line rate %.1f Gbps, %d B on-chip search structures (%.0f%% word fill), max %.2f W\n",
		rep.ThroughputGbps, rep.MemoryBytes, 100*rep.FillRatio, rep.MaxPowerW)

	// Mixed traffic: mostly clean HTTP-ish packets, some carrying attacks.
	// (Examples live inside the module, so the traffic generator's internal
	// pattern-set type is available; external users would bring their own
	// packets.)
	set := &ruleset.Set{}
	for id := 0; ; id++ {
		c := rules.Content(id)
		if c == nil {
			break
		}
		set.Patterns = append(set.Patterns, ruleset.Pattern{ID: id, Data: c, Name: rules.Name(id)})
	}
	packets, err := traffic.Generate(set, traffic.Config{
		Packets:       60,
		Bytes:         1400, // MTU-ish payloads
		Seed:          7,
		AttackDensity: 0.4,
		Profile:       traffic.Textual,
	})
	if err != nil {
		log.Fatal(err)
	}
	payloads := make([][]byte, len(packets))
	infected := 0
	for i, p := range packets {
		payloads[i] = p.Payload
		if len(p.Planted) > 0 {
			infected++
		}
	}
	fmt.Printf("scanning %d packets (%d carrying planted attacks)...\n", len(packets), infected)

	matches, err := accel.ScanPackets(payloads)
	if err != nil {
		log.Fatal(err)
	}
	// Very short contents (Snort has 1-2 byte ones) fire constantly on
	// random traffic — real deployments qualify them with header rules.
	// Flag packets on matches of 4+ bytes.
	flagged := map[int]bool{}
	var strong []dpi.Match
	for _, m := range matches {
		if m.End-m.Start >= 4 {
			flagged[m.PacketID] = true
			strong = append(strong, m)
		}
	}
	fmt.Printf("  %d raw matches; %d of 4+ bytes across %d flagged packets\n",
		len(matches), len(strong), len(flagged))

	// Every planted attack must be among the raw matches: the matcher is
	// exhaustive, so zero false negatives by construction.
	reported := map[[2]int]bool{}
	for _, m := range matches {
		reported[[2]int{m.PacketID, m.PatternID}] = true
	}
	missed := 0
	for _, p := range packets {
		for _, id := range p.Planted {
			if !reported[[2]int{p.ID, int(id)}] {
				missed++ // plants can be overwritten by later plants; see below
			}
		}
	}
	fmt.Printf("  planted-attack detection: %d possibly-overwritten plants unreported\n", missed)

	for _, m := range strong[:min(5, len(strong))] {
		fmt.Printf("  e.g. packet %2d [%4d,%4d) rule %q\n",
			m.PacketID, m.Start, m.End, rules.Name(m.PatternID))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
