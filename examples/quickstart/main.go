// Quickstart: compile a handful of signatures and scan a payload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dpi "repro"
)

func main() {
	// A ruleset is a set of fixed byte strings with names. Binary content
	// can be added directly or in Snort syntax with |hex| escapes.
	rules := dpi.NewRuleset()
	rules.MustAdd("web-phf", []byte("/cgi-bin/phf"))
	rules.MustAdd("traversal", []byte("../../"))
	rules.MustAdd("cmd-exe", []byte("cmd.exe"))
	if _, err := rules.AddSnortContent("nop-sled", "|90 90 90 90|"); err != nil {
		log.Fatal(err)
	}

	// Compile builds the memory-compressed Aho-Corasick machine: the full
	// move-function DFA semantics (one transition per byte, no fail
	// pointers) with >90% of transition pointers replaced by the shared
	// default-transition lookup table.
	matcher, err := dpi.Compile(rules, dpi.Config{})
	if err != nil {
		log.Fatal(err)
	}
	st := matcher.Stats()
	fmt.Printf("compiled: %d states, %.2f stored pointers/state (was %.2f), %.1f%% reduction\n",
		st.States, st.AvgStored, st.OriginalAvg, 100*st.Reduction)

	payload := []byte("GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0\r\n" +
		"User-Agent: ../../waffle cmd.exe \x90\x90\x90\x90\x90\r\n")

	// FindAll returns every occurrence of every pattern.
	for _, m := range matcher.FindAll(payload) {
		fmt.Printf("  match %-10s at [%3d,%3d): %q\n",
			rules.Name(m.PatternID), m.Start, m.End, payload[m.Start:m.End])
	}
}
