// nidsrules demonstrates the complete intrusion-detection pipeline the
// paper's accelerator serves (§I): rules made of a 5-tuple header part and
// a content part ("a specific string or strings must be searched for in a
// packet's payload at given locations"), evaluated with one shared
// string-matching pass per packet.
//
//	go run ./examples/nidsrules
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/nids"
)

const ruleText = `
# Web attacks against the protected 10/8 network.
alert tcp any any -> 10.0.0.0/8 80 (msg:"WEB phf access"; content:"/cgi-bin/phf";)
alert tcp any any -> 10.0.0.0/8 80:88 (msg:"WEB traversal in GET"; content:"GET "; offset:0; depth:4; content:"../../";)
# Slammer probe: UDP 1434, preamble at the very start of the payload.
alert udp any any -> any 1434 (msg:"WORM slammer probe"; content:"|04 01 01 01 01|"; offset:0; depth:5;)
# Shell upload to anywhere.
alert tcp any any -> any any (msg:"SHELL bin-sh"; content:"/bin/sh";)
`

type pkt struct {
	desc    string
	hdr     nids.FiveTuple
	payload []byte
}

func main() {
	rules, err := nids.ParseRules(strings.NewReader(ruleText))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := nids.NewEngine(rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d rules into %d unique content strings\n\n",
		len(rules), engine.NumPatterns())

	webDst := nids.FiveTuple{
		SrcIP: nids.IPv4(203, 0, 113, 9), DstIP: nids.IPv4(10, 2, 3, 4),
		SrcPort: 49152, DstPort: 80, Proto: nids.ProtoTCP,
	}
	outsideDst := webDst
	outsideDst.DstIP = nids.IPv4(198, 51, 100, 20)
	slammer := nids.FiveTuple{
		SrcIP: nids.IPv4(203, 0, 113, 66), DstIP: nids.IPv4(10, 0, 0, 99),
		SrcPort: 4096, DstPort: 1434, Proto: nids.ProtoUDP,
	}

	packets := []pkt{
		{"clean GET to protected web server", webDst,
			[]byte("GET /index.html HTTP/1.0\r\n\r\n")},
		{"phf probe to protected web server", webDst,
			[]byte("GET /cgi-bin/phf?Qalias=x HTTP/1.0\r\n\r\n")},
		{"phf probe to host outside 10/8 (header gate)", outsideDst,
			[]byte("GET /cgi-bin/phf?Qalias=x HTTP/1.0\r\n\r\n")},
		{"traversal mid-URL (offset constraint holds)", webDst,
			[]byte("GET /app/../../etc/passwd HTTP/1.0\r\n\r\n")},
		{"traversal but GET not at payload start", webDst,
			[]byte("xx GET /app/../../etc/passwd HTTP/1.0\r\n\r\n")},
		{"slammer preamble at offset 0", slammer,
			append([]byte{0x04, 0x01, 0x01, 0x01, 0x01}, []byte("payload...")...)},
		{"slammer bytes shifted by one (depth constraint)", slammer,
			append([]byte{0x00, 0x04, 0x01, 0x01, 0x01, 0x01}, []byte("payload...")...)},
		{"shell string on an arbitrary port", nids.FiveTuple{
			SrcIP: nids.IPv4(192, 0, 2, 1), DstIP: nids.IPv4(10, 1, 1, 1),
			SrcPort: 1234, DstPort: 6667, Proto: nids.ProtoTCP},
			[]byte("\x90\x90\x90/bin/sh\x00")},
	}

	for i, p := range packets {
		alerts := engine.Inspect(i, p.hdr, p.payload)
		verdict := "ok"
		if len(alerts) > 0 {
			names := make([]string, len(alerts))
			for j, a := range alerts {
				names[j] = a.RuleName
			}
			verdict = "ALERT: " + strings.Join(names, ", ")
		}
		fmt.Printf("packet %d (%-48s) -> %s\n", i, p.desc, verdict)
	}
}
