// Sensor: the complete capture-to-verdict edge in one binary. Committed
// pcap corpora replay through a sharded gateway — classic libpcap parsing,
// Ethernet/IPv4/TCP translation, per-flow reassembly, header-rule
// verdicts, pattern scanning — while a real HTTP /metrics endpoint serves
// the Prometheus-format counters and the binary scrapes itself over TCP
// to prove the observability surface works end to end. For the committed
// corpora the per-file match counts are compared against the FindAll
// oracle over the corpus truth streams, so this doubles as the CI
// sensor-smoke gate.
//
// Alongside /metrics the mux serves /healthz — the gateway's liveness
// probe (200 while the pipeline makes progress, 503 with a JSON body when
// a lane stalls). On SIGINT/SIGTERM the replay loop stops between files,
// the gateway is drained, and the report covers the files completed so
// far, marked "interrupted": true.
//
//	go run ./examples/sensor                      # replay testdata/pcap/*.pcap
//	go run ./examples/sensor -json                # machine-readable report (CI)
//	go run ./examples/sensor -pcap 'caps/*.pcap'  # replay your own captures
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync/atomic"
	"syscall"

	dpi "repro"
	"repro/internal/capture/corpus"
	"repro/internal/metrics"
)

type fileReport struct {
	File          string `json:"file"`
	Frames        uint64 `json:"frames"`
	Ingested      uint64 `json:"ingested"`
	SkippedFrames uint64 `json:"skipped_frames"`
	Matches       uint64 `json:"matches"`
	OracleMatches *int   `json:"oracle_matches,omitempty"` // known corpora only
	OracleOK      *bool  `json:"oracle_ok,omitempty"`
}

type report struct {
	Backend        string       `json:"backend"`
	Shards         int          `json:"shards"`
	Files          []fileReport `json:"files"`
	TotalMatches   uint64       `json:"total_matches"`
	OracleOK       bool         `json:"oracle_ok"` // every known corpus reproduced its oracle
	VerdictAlerts  uint64       `json:"verdict_alerts"`
	VerdictDrops   uint64       `json:"verdict_drops"`
	VerdictPasses  uint64       `json:"verdict_passes"`
	MetricsValid   bool         `json:"metrics_valid"`
	MetricsSamples int          `json:"metrics_samples"`
	Interrupted    bool         `json:"interrupted"` // run stopped by SIGINT/SIGTERM; files are partial
}

func main() {
	glob := flag.String("pcap", "testdata/pcap/*.pcap", "glob of capture files to replay")
	shards := flag.Int("shards", 2, "engine shards behind the gateway")
	backend := flag.String("backend", dpi.BackendAuto, "scan backend (see Config.Backend)")
	listen := flag.String("listen", "127.0.0.1:0", "address for the /metrics endpoint")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of text")
	flag.Parse()

	// A signal stops the replay between files; the gateway still drains and
	// the report still emits, so an interrupted sensor never loses the work
	// it finished. A second signal kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	files, err := filepath.Glob(*glob)
	if err != nil || len(files) == 0 {
		log.Fatalf("sensor: no capture files match %q (run from the repository root)", *glob)
	}
	sort.Strings(files)

	// The pattern set is the shared corpus ruleset, so the oracle counts
	// below compare like with like; the verdict rules demonstrate all
	// three actions without perturbing the oracle (the dropped ICMP and
	// passed telemetry tuples are pattern-free by construction).
	rs := dpi.NewRuleset()
	for _, r := range corpus.Rules() {
		rs.MustAdd(r.Name, []byte(r.Content))
	}
	matcher, err := dpi.Compile(rs, dpi.Config{Backend: *backend})
	if err != nil {
		log.Fatal(err)
	}
	var matchCount atomic.Uint64
	gw := matcher.NewEngine(0).Gateway(dpi.GatewayConfig{
		EngineShards: *shards,
		Rules: []dpi.VerdictRule{
			{ID: 1, Name: "web-alert", Header: dpi.HeaderRule{Proto: dpi.ProtoTCP, DstPorts: dpi.PortRange{Lo: 80, Hi: 443}}, Verdict: dpi.VerdictAlert},
			{ID: 2, Name: "icmp-drop", Header: dpi.HeaderRule{Proto: dpi.ProtoICMP}, Verdict: dpi.VerdictDrop},
			{ID: 3, Name: "telemetry-pass", Header: dpi.HeaderRule{Proto: dpi.ProtoUDP, DstPorts: dpi.PortRange{Lo: 9999, Hi: 9999}}, Verdict: dpi.VerdictPass},
		},
	}, func(dpi.FlowMatch) { matchCount.Add(1) })
	defer gw.Close()

	// Live /metrics over real TCP while the replay runs.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", gw.Metrics())
	mux.Handle("/healthz", gw.Healthz())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	metricsURL := fmt.Sprintf("http://%s/metrics", ln.Addr())

	rep := report{Backend: gw.Backend(), Shards: *shards, OracleOK: true}
	for _, path := range files {
		if ctx.Err() != nil {
			rep.Interrupted = true
			break
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		before := matchCount.Load()
		rs, err := gw.ReplayPcap(f)
		f.Close()
		if err != nil {
			log.Fatalf("sensor: %s: %v", path, err)
		}
		gw.Flush() // drain so the per-file match delta is exact
		fr := fileReport{
			File:          filepath.Base(path),
			Frames:        rs.Frames,
			Ingested:      rs.Ingested,
			SkippedFrames: rs.Frames - rs.Ingested,
			Matches:       matchCount.Load() - before,
		}
		// For committed corpora, compare against the FindAll oracle over
		// the corpus's ground-truth streams.
		if c := corpus.ByFile(fr.File); c != nil {
			oracle := c.OracleMatches(func(stream []byte) int { return len(matcher.FindAll(stream)) })
			ok := fr.Matches == uint64(oracle)
			fr.OracleMatches, fr.OracleOK = &oracle, &ok
			if !ok {
				rep.OracleOK = false
			}
		}
		rep.Files = append(rep.Files, fr)
	}

	// Self-scrape over the wire: the same path a Prometheus server takes.
	resp, err := http.Get(metricsURL)
	if err != nil {
		log.Fatal(err)
	}
	exposition, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	samples, verr := metrics.Validate(exposition)
	rep.MetricsValid = verr == nil
	rep.MetricsSamples = samples

	s := gw.Stats()
	rep.TotalMatches = matchCount.Load()
	rep.VerdictAlerts, rep.VerdictDrops, rep.VerdictPasses = s.VerdictAlerts, s.VerdictDrops, s.VerdictPasses

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("sensor: backend=%s shards=%d\n", rep.Backend, rep.Shards)
		for _, fr := range rep.Files {
			oracle := "no oracle (unknown capture)"
			if fr.OracleOK != nil {
				oracle = fmt.Sprintf("oracle=%d ok=%v", *fr.OracleMatches, *fr.OracleOK)
			}
			fmt.Printf("  %-18s frames=%-3d ingested=%-3d skipped=%-2d matches=%-3d %s\n",
				fr.File, fr.Frames, fr.Ingested, fr.SkippedFrames, fr.Matches, oracle)
		}
		fmt.Printf("verdicts: alert=%d drop=%d pass=%d  (dropped %d bytes unscanned)\n",
			s.VerdictAlerts, s.VerdictDrops, s.VerdictPasses, s.DroppedBytes)
		fmt.Printf("reassembly: %d bytes in stream order, %d out-of-order segs, %d duplicate bytes\n",
			s.ReassembledBytes, s.OutOfOrderSegs, s.DuplicateBytes)
		for i, es := range gw.ShardStats() {
			fmt.Printf("shard %d: %d stream bytes, %d batch packets\n", i, es.StreamBytes, es.BatchPkts)
		}
		fmt.Printf("metrics: scraped %s: %d samples, valid=%v\n", metricsURL, samples, rep.MetricsValid)
		if rep.Interrupted {
			fmt.Printf("interrupted: %d/%d files replayed\n", len(rep.Files), len(files))
		}
	}
	// An interrupted-but-clean run exits 0: every file it did replay
	// reproduced its oracle, which is not a failure.
	if !rep.OracleOK || !rep.MetricsValid {
		os.Exit(1)
	}
}
