// wormscan reproduces the paper's motivating scenario (§I): detecting
// fast-spreading worms — Slammer and CodeRed are the paper's examples — in
// transit, at the network edge, before they reach end hosts. It builds a
// small signature set in Snort content syntax, scans a captured-style
// traffic trace, and shows the worst-case guarantee: scanning cost is one
// transition per byte no matter how adversarial the stream.
//
//	go run ./examples/wormscan
package main

import (
	"bytes"
	"fmt"
	"log"

	dpi "repro"
)

// Signatures in Snort content syntax. These are simplified fragments in
// the style of the 2003-era rules for the worms the paper cites — the
// Slammer UDP/1434 overflow preamble and the CodeRed GET-with-NNNN overrun
// — plus generic shellcode indicators.
var signatures = []struct {
	name, content string
}{
	{"slammer-preamble", "|04 01 01 01 01 01 01 01 01|"},
	{"slammer-reconstruct", "|68 2E 64 6C 6C|hel32hkern"}, // push ".dll" / "hel32hkern" fragment
	{"codered-overflow", "GET /default.ida?NNNNNNNNNNNNNNNNNNNNNNNN"},
	{"codered-body", "|25 75 39 30 39 30 25 75 36 38 35 38|"}, // %u9090%u6858
	{"nop-sled", "|90 90 90 90 90 90 90 90|"},
	{"bind-shell", "/bin/sh"},
}

func main() {
	rules := dpi.NewRuleset()
	for _, s := range signatures {
		if _, err := rules.AddSnortContent(s.name, s.content); err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
	}
	matcher, err := dpi.Compile(rules, dpi.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := matcher.Verify(nil); err != nil {
		log.Fatalf("compressed machine not equivalent to the DFA: %v", err)
	}

	// A captured-style trace: benign HTTP, then a CodeRed probe, then a
	// Slammer-style UDP payload with a NOP sled.
	trace := [][]byte{
		[]byte("GET /index.html HTTP/1.0\r\nHost: example.com\r\n\r\n"),
		append([]byte("GET /default.ida?"+repeat('N', 224)+"%u9090%u6858%ucbd3 HTTP/1.0\r\n"), 0x90),
		slammerish(),
		[]byte("POST /login HTTP/1.1\r\nContent-Length: 42\r\n\r\nuser=alice&pass=correct-horse"),
	}

	for i, payload := range trace {
		matches := matcher.FindAll(payload)
		verdict := "clean"
		if len(matches) > 0 {
			verdict = "INFECTED"
		}
		fmt.Printf("packet %d (%4d bytes): %-8s", i, len(payload), verdict)
		seen := map[string]bool{}
		for _, m := range matches {
			name := rules.Name(m.PatternID)
			if !seen[name] {
				seen[name] = true
				fmt.Printf(" %s@%d", name, m.Start)
			}
		}
		fmt.Println()
	}

	// The worst-case guarantee: a stream of truncated signature prefixes
	// (the classic algorithmic-complexity attack against NIDS) costs
	// exactly one transition per byte, same as clean traffic.
	evil := bytes.Repeat([]byte("GET /default.ida?NNNNNNNNNNNNNNNNNNNNNNN_"), 64)
	matches := matcher.FindAll(evil)
	fmt.Printf("\nadversarial stream: %d bytes, %d matches, 1 transition/byte by construction\n",
		len(evil), len(matches))
	fmt.Println("(a goto/fail matcher walks fail chains here; see `dpibench -ablation`)")
}

func repeat(c byte, n int) string {
	return string(bytes.Repeat([]byte{c}, n))
}

// slammerish builds a 376-byte UDP-style payload like the Slammer worm's:
// the 0x04 preamble, a run of 0x01 padding, then code-like bytes.
func slammerish() []byte {
	p := []byte{0x04}
	p = append(p, bytes.Repeat([]byte{0x01}, 96)...)
	p = append(p, bytes.Repeat([]byte{0x90}, 16)...)
	p = append(p, []byte{0x68, 0x2E, 0x64, 0x6C, 0x6C}...) // push ".dll"
	p = append(p, []byte("hel32hkern")...)
	for len(p) < 376 {
		p = append(p, byte(len(p)*7))
	}
	return p
}
