// tuning reproduces the paper's design-space exploration for the number of
// depth-2 default transition pointers per character: "We found through
// testing of strings used in the Snort ruleset that 4 was the optimum
// value" (§III.B). It sweeps the setting on a Snort-like set and prints the
// trade-off between stored pointers (state memory) and lookup-table width.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	dpi "repro"
)

func main() {
	rules, err := dpi.GenerateSnortLike(634, 2010)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("depth-2 defaults per character vs memory (634-string Snort-like set)")
	fmt.Printf("%-8s %-16s %-12s %-12s %-12s %s\n",
		"d2/char", "stored pointers", "avg/state", "state bits", "LUT bits", "total bytes")

	bestK, bestTotal := 0, 1<<62
	for k := 1; k <= 8; k++ {
		m, err := dpi.Compile(rules, dpi.Config{D2DefaultsPerChar: k})
		if err != nil {
			log.Fatal(err)
		}
		st := m.Stats()
		stateBits := 12*st.States + 24*int(st.StoredPointers)
		lutBits := 256 * (1 + 8*k + 16)
		total := (stateBits + lutBits + 7) / 8
		marker := ""
		if total < bestTotal {
			bestTotal, bestK = total, k
			marker = "  <- best so far"
		}
		fmt.Printf("%-8d %-16d %-12.2f %-12d %-12d %d%s\n",
			k, st.StoredPointers, st.AvgStored, stateBits, lutBits, total, marker)
	}
	fmt.Printf("\noptimum at %d depth-2 defaults per character (paper: 4)\n", bestK)
	if bestK > 4 {
		fmt.Println("note: beyond 4 the hardware row format (49 bits) no longer fits;")
		fmt.Println("any residual savings past 4 cannot be realized in the architecture.")
	}
}
