package dpi

import (
	"testing"

	"repro/internal/ac"
)

// FuzzAcceleratedEquivalence is the accelerated kernel's contract under
// fuzz: for a fuzz-chosen ruleset, payload and operation sequence (chunked
// writes, mid-stream SkipGap, Reset), the accelerated backend — root-
// resident bulk skip plus fused 2-byte stepping over the baked Program —
// must produce a match stream identical to the slice-walking reference
// path and to the uncompressed Aho-Corasick oracle: same patterns, same
// absolute offsets, same order. The fast paths are pure skip optimizations
// with no approximation budget, so unlike the prefilter there is no
// false-positive allowance to account for: every divergence is a bug.
//
// The first op byte varies the compile shape (dense-tier budget, group
// split) so the skim, pair-chain and scalar hand-off paths are driven over
// every kernel tier combination.
func FuzzAcceleratedEquivalence(f *testing.F) {
	f.Add([]byte{2, 'h', 'e', 3, 's', 'h', 'e', 3, 'h', 'i', 's', 4, 'h', 'e', 'r', 's'},
		[]byte("ushers say she sells seashells"), []byte{0x10, 0x43, 0x08, 0x00, 0x22})
	f.Add([]byte{1, 'a', 2, 'a', 'a', 3, 'a', 'a', 'a'},
		[]byte("aaaaaaaaaaaaaaaa"), []byte{0x05, 0x09, 0x11, 0x01, 0x31})
	f.Add([]byte{4, 0x00, 0xff, 0x00, 0xff}, []byte{0x00, 0xff, 0x00, 0xff, 0x00},
		[]byte{0x83, 0x04})
	// A long clean run with one planted pattern: drives the root skim,
	// the pair-table hand-off and the return to skimming across chunk
	// boundaries.
	f.Add([]byte{3, 'a', 'b', 'c'},
		[]byte("................................abc............................"),
		[]byte{0x47, 0x47, 0x09, 0x47})
	// Odd-parity excursions: single escaping bytes inside clean runs land
	// on both window parities, driving the restart-equivalent realign
	// action and the scalar fallback.
	f.Add([]byte{2, 'a', 'b'}, []byte(".a.a..a...a.ab..a.b.a"),
		[]byte{0x47, 0x12, 0x47})
	f.Fuzz(func(t *testing.T, patBlob, payload, ops []byte) {
		rules := fuzzRulesFrom(patBlob)
		if rules == nil {
			t.Skip("no patterns")
		}
		shape := byte(0)
		if len(ops) > 0 {
			shape = ops[0]
		}
		cfg := Config{Backend: BackendAccelerated}
		switch shape % 3 {
		case 1:
			cfg.DenseStates = -1 // compressed tier only
		case 2:
			cfg.DenseStates = 6 // tiny dense tier, most states on CSR
		}
		if shape&0x40 != 0 && rules.Len() >= 2 {
			cfg.Groups = 2
		}
		acc, err := Compile(rules, cfg)
		if err != nil {
			// A fuzz-shaped ruleset outside the baked row format cannot pin
			// the accelerated backend; nothing to compare.
			t.Skip("accelerated backend unavailable for this shape")
		}
		if acc.Backend() != BackendAccelerated {
			t.Fatalf("pinned compile resolved backend %q", acc.Backend())
		}
		refCfg := cfg
		refCfg.Backend = BackendReference
		ref, err := Compile(rules, refCfg)
		if err != nil {
			t.Fatal(err)
		}
		trie, err := ac.New(rules.InternalSet())
		if err != nil {
			t.Fatal(err)
		}

		var aOut, rOut []Match
		af := acc.NewEngine(1).Flow(func(m Match) { aOut = append(aOut, m) })
		rf := ref.NewEngine(1).Flow(func(m Match) { rOut = append(rOut, m) })
		defer af.Close()
		defer rf.Close()

		var seg []byte // contiguous bytes both flows have seen since the last gap
		segStart := 0  // flow position where the segment began
		segMark := 0   // len(aOut) when the segment began
		checkSegment := func() {
			t.Helper()
			want := trie.FindAll(seg)
			ac.SortMatches(want)
			got := aOut[segMark:]
			if len(got) != len(want) {
				t.Fatalf("segment at %d: accelerated found %d matches, oracle %d (shape %#x)",
					segStart, len(got), len(want), shape)
			}
			for i, w := range want {
				end := w.End + segStart
				start := end - trie.PatternLen(w.PatternID)
				if got[i].PatternID != int(w.PatternID) || got[i].End != end || got[i].Start != start {
					t.Fatalf("segment at %d: match %d = %+v, oracle id=%d [%d,%d)",
						segStart, i, got[i], w.PatternID, start, end)
				}
			}
		}
		checkAgainstRef := func(op string) {
			t.Helper()
			if af.Consumed() != rf.Consumed() {
				t.Fatalf("%s: accelerated consumed %d, reference %d", op, af.Consumed(), rf.Consumed())
			}
			if len(aOut) != len(rOut) {
				t.Fatalf("%s: accelerated emitted %d matches, reference %d", op, len(aOut), len(rOut))
			}
			for i := range aOut {
				if aOut[i] != rOut[i] {
					t.Fatalf("%s: match %d accelerated %+v reference %+v", op, i, aOut[i], rOut[i])
				}
			}
		}

		off := 0 // cycling read offset into payload
		for _, op := range ops {
			switch op % 8 {
			case 0: // Reset: flow restarts at position zero
				checkSegment()
				af.Reset()
				rf.Reset()
				seg, segStart, segMark = seg[:0], 0, len(aOut)
			case 1: // SkipGap: unseen bytes, absolute offsets preserved
				checkSegment()
				n := int(op>>3) + 1
				af.SkipGap(n)
				rf.SkipGap(n)
				seg, segStart, segMark = seg[:0], af.Consumed(), len(aOut)
			default: // write a chunk of the payload (cycling, possibly empty)
				n := int(op >> 2)
				if len(payload) == 0 {
					n = 0
				}
				chunk := make([]byte, 0, n)
				for len(chunk) < n {
					take := len(payload) - off
					if take > n-len(chunk) {
						take = n - len(chunk)
					}
					chunk = append(chunk, payload[off:off+take]...)
					off = (off + take) % len(payload)
				}
				seg = append(seg, chunk...)
				af.Write(chunk)
				rf.Write(chunk)
			}
			checkAgainstRef("op")
		}
		checkSegment()
	})
}
