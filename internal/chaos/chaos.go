// Package chaos is the deterministic fault-injection harness behind the
// gateway's robustness proofs. A production sensor's real failure modes —
// corrupt captures, duplicate/reorder storms past the reassembly caps, a
// panicking scan, a wedged downstream consumer — are all either rare or
// hostile-triggered, so waiting to observe them is not a test strategy.
// This package manufactures each of them from a seed: the same seed always
// produces the same storm, the same mangled frames, the same single
// injected panic, which is what lets the chaos soak assert exact oracle
// and byte-conservation outcomes instead of "it didn't crash".
//
// Three injection seams, matching where real faults enter:
//
//   - Capture edge: Mangle corrupts a pcap byte stream (truncations, bit
//     rot) to drive the reader/translator's never-panic, every-frame-
//     accounted contract.
//   - Wire: Storm amplifies a sequenced traffic.FlowWorkload with
//     duplicate emissions and bounded-displacement reordering far beyond
//     what the reassembly buffers are sized for, while preserving the
//     invariants that keep the oracle computable (every original segment
//     still delivered exactly once; a flow's SYN still first).
//   - Scan path: PanicOnce / StallOnce wrap the gateway's emit callback —
//     code that runs on the stream lanes and burst scanners themselves —
//     to detonate a panic or a stall at an exactly chosen match, the same
//     place a scanner bug or a blocked consumer would.
package chaos

import (
	"sync/atomic"

	dpi "repro"
	"repro/internal/rng"
	"repro/internal/traffic"
)

// Injector is a seeded fault source. Every derivation is a pure function
// of the construction seed and the call sequence, so a scenario that
// replays the same calls reproduces byte-identical faults.
type Injector struct {
	src *rng.Source
}

// New returns an injector over the given seed.
func New(seed int64) *Injector { return &Injector{src: rng.New(seed)} }

// StormConfig shapes a duplicate/reorder storm.
type StormConfig struct {
	// DupFactor is the expected duplicate emissions per non-SYN packet.
	// Values well above 1 model a pathological retransmitter. A SYN is
	// never duplicated: a duplicate SYN legitimately reopens a completed
	// connection, which would change the oracle rather than stress it.
	DupFactor float64
	// ReorderSpan is the maximum displacement, in queue positions, any
	// packet (or injected duplicate) may travel from its original slot.
	// Spans far beyond the gateway's reassembly buffer caps force cap
	// drops and gap skips — the "beyond caps" regime where the soak gates
	// conservation instead of the full-stream oracle.
	ReorderSpan int
}

// Storm amplifies a sequenced packet ordering into a duplicate/reorder
// storm. Two invariants survive, keeping downstream accounting checkable:
// every input packet appears in the output exactly once (duplicates are
// exact copies marked Retransmit), and no packet of a flow moves ahead of
// that flow's SYN, so every connection still opens before its segments.
func (in *Injector) Storm(pkts []traffic.FlowPacket, cfg StormConfig) []traffic.FlowPacket {
	type emission struct {
		p  traffic.FlowPacket
		at int // primary sort key; input index breaks ties stably
	}
	out := make([]emission, 0, len(pkts)+len(pkts)/2)
	for i, p := range pkts {
		out = append(out, emission{p: p, at: i})
		if cfg.DupFactor > 0 && p.Flags&byte(dpi.FlagSYN) == 0 {
			for f := cfg.DupFactor; f > 0; f-- {
				if !in.src.Bool(min64(f, 1)) {
					continue
				}
				d := p
				d.Retransmit = true
				at := i + 1
				if cfg.ReorderSpan > 0 {
					at += in.src.Intn(cfg.ReorderSpan + 1)
				}
				out = append(out, emission{p: d, at: at})
			}
		}
	}
	if cfg.ReorderSpan > 0 {
		// Displace originals within the span, never past their flow's SYN:
		// SYNs stay pinned at their input slot, and a segment's displacement
		// is clamped to land strictly after its flow's SYN slot. Duplicates
		// already emit at or after their original, which is after the SYN.
		synAt := map[int]int{}
		for i, p := range pkts {
			if p.Flags&byte(dpi.FlagSYN) != 0 {
				synAt[p.FlowID] = i
			}
		}
		for idx := range out {
			e := &out[idx]
			if e.p.Retransmit || e.p.Flags&byte(dpi.FlagSYN) != 0 {
				continue
			}
			lo := e.at - cfg.ReorderSpan
			if s, ok := synAt[e.p.FlowID]; ok && lo <= s {
				lo = s + 1
			}
			if lo < 0 {
				lo = 0
			}
			hi := e.at + cfg.ReorderSpan
			e.at = lo + in.src.Intn(hi-lo+1)
		}
	}
	// Stable sort by emission slot (insertion sort keyed on at; the input
	// is nearly sorted, so this is effectively linear and keeps equal
	// slots in input order without importing sort for a tiny helper).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].at < out[j-1].at; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	res := make([]traffic.FlowPacket, len(out))
	for i, e := range out {
		res[i] = e.p
	}
	return res
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Mangle produces n deterministic corruptions of a pcap byte stream:
// truncations at arbitrary offsets (mid-header, mid-record, mid-payload),
// flipped bytes, and zeroed runs — the inputs a damaged disk or a hostile
// feed hands the capture reader. Each variant is independent; the original
// is never modified.
func (in *Injector) Mangle(pcap []byte, n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		m := append([]byte(nil), pcap...)
		switch in.src.Intn(3) {
		case 0: // truncate
			if len(m) > 0 {
				m = m[:in.src.Intn(len(m))]
			}
		case 1: // flip bytes
			for k := 1 + in.src.Intn(8); k > 0 && len(m) > 0; k-- {
				m[in.src.Intn(len(m))] ^= byte(1 + in.src.Intn(255))
			}
		default: // zero a run
			if len(m) > 0 {
				start := in.src.Intn(len(m))
				end := start + 1 + in.src.Intn(64)
				if end > len(m) {
					end = len(m)
				}
				for j := start; j < end; j++ {
					m[j] = 0
				}
			}
		}
		out = append(out, m)
	}
	return out
}

// PanicOnce wraps a gateway emit callback so that the first match
// satisfying trigger panics — exactly once, however many lanes race past
// it — and every other match forwards untouched. The panic fires on the
// pipeline goroutine that produced the match (a stream lane for flow
// matches, a burst scanner for stateless ones): the same stack a scanner
// bug would blow up on, which is what the gateway's containment must
// survive.
func PanicOnce(emit func(dpi.FlowMatch), trigger func(dpi.FlowMatch) bool) func(dpi.FlowMatch) {
	var fired atomic.Bool
	return func(m dpi.FlowMatch) {
		if trigger(m) && fired.CompareAndSwap(false, true) {
			panic("chaos: injected scan-path panic")
		}
		emit(m)
	}
}

// StallOnce wraps a gateway emit callback so that the first match
// satisfying trigger blocks until release is closed — a wedged downstream
// consumer holding a pipeline lane hostage, the situation the stall
// watchdog exists to expose. Matches after the stall (and all matches once
// released) forward untouched.
func StallOnce(emit func(dpi.FlowMatch), trigger func(dpi.FlowMatch) bool, release <-chan struct{}) func(dpi.FlowMatch) {
	var fired atomic.Bool
	return func(m dpi.FlowMatch) {
		if trigger(m) && fired.CompareAndSwap(false, true) {
			<-release
		}
		emit(m)
	}
}
