package chaos

import (
	"bytes"
	"io"
	"reflect"
	"sync"
	"testing"

	dpi "repro"
	"repro/internal/capture"
	"repro/internal/nids"
	"repro/internal/ruleset"
	"repro/internal/traffic"
)

func stormWorkload(t *testing.T) *traffic.FlowWorkload {
	t.Helper()
	set, err := ruleset.Generate(ruleset.GenConfig{N: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
		Flows: 8, SegmentsPerFlow: 12, SegmentBytes: 256, Seed: 11,
		CrossDensity: 1, AttackDensity: 1, Sequenced: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestStormDeterministic: the harness's whole value is reproducibility —
// same seed, same config, byte-identical storm.
func TestStormDeterministic(t *testing.T) {
	w := stormWorkload(t)
	cfg := StormConfig{DupFactor: 1.5, ReorderSpan: 64}
	a := New(42).Storm(w.Packets, cfg)
	b := New(42).Storm(w.Packets, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different storms")
	}
	c := New(43).Storm(w.Packets, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical storms (suspicious)")
	}
}

// TestStormInvariants: every original packet survives exactly once (dups
// are marked), and no packet of a flow precedes its flow's SYN — the two
// properties that keep oracle and conservation assertions computable over
// a storm.
func TestStormInvariants(t *testing.T) {
	w := stormWorkload(t)
	out := New(7).Storm(w.Packets, StormConfig{DupFactor: 2, ReorderSpan: 128})

	var originals, dups int
	seenSYN := map[int]bool{}
	for _, p := range out {
		if p.Flags&byte(dpi.FlagSYN) != 0 {
			seenSYN[p.FlowID] = true
		} else if !seenSYN[p.FlowID] {
			t.Fatalf("flow %d packet (seq %d) emitted before its SYN", p.FlowID, p.Seq)
		}
		if p.Retransmit {
			dups++
		} else {
			originals++
		}
	}
	// The generator itself emits no retransmissions here, so originals in
	// the storm must be exactly the input packets.
	if originals != len(w.Packets) {
		t.Fatalf("storm has %d originals, want %d", originals, len(w.Packets))
	}
	if dups == 0 {
		t.Fatal("DupFactor 2 produced no duplicates")
	}
	// Per flow, the multiset of original segments is preserved.
	want := map[int]int{}
	for _, p := range w.Packets {
		want[p.FlowID]++
	}
	got := map[int]int{}
	for _, p := range out {
		if !p.Retransmit {
			got[p.FlowID]++
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("per-flow original counts drifted: want %v got %v", want, got)
	}
}

// TestMangleNeverPanicsCapture: every mangled pcap variant must be
// digestible by the capture reader/translator — errors and skips are fine,
// a panic is not, and the translator's ledger must account every frame it
// saw (the same invariant FuzzCaptureTranslate fuzzes at the root).
func TestMangleNeverPanicsCapture(t *testing.T) {
	var buf bytes.Buffer
	pw, err := capture.NewWriter(&buf, capture.WriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tup := nids.FiveTuple{SrcIP: nids.IPv4(10, 0, 0, 1), DstIP: nids.IPv4(10, 0, 0, 2),
		SrcPort: 1234, DstPort: 80, Proto: nids.ProtoTCP}
	frames := [][]byte{
		capture.TCPFrame(tup, 1000, 0x02, nil, capture.FrameOptions{}),
		capture.TCPFrame(tup, 1001, 0x10, []byte("GET / HTTP/1.1\r\n"), capture.FrameOptions{}),
		capture.UDPFrame(tup, []byte("payload"), capture.FrameOptions{}),
		capture.ARPFrame(),
	}
	for i, f := range frames {
		if err := pw.WriteRecord(uint32(i), 0, f, len(f)); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range New(99).Mangle(buf.Bytes(), 64) {
		src, err := capture.NewSource(bytes.NewReader(m))
		if err != nil {
			continue // corrupted file header: rejected cleanly, good
		}
		frames := 0
		for {
			_, err := src.Next()
			if err != nil {
				if err != io.EOF && frames > 10000 {
					t.Fatal("translator failed to terminate on corrupt input")
				}
				break
			}
			frames++
		}
		st := src.Stats()
		sum := st.TCPSegments + st.UDPPackets + st.OtherIP + st.NonIP +
			st.Fragments + st.Short + st.EmptyTCP
		if st.Frames != sum {
			t.Fatalf("translator ledger leaked on mangled input: Frames=%d sum=%d (%+v)", st.Frames, sum, st)
		}
	}
}

// TestMangleDeterministic pins the corpus-reproducibility contract.
func TestMangleDeterministic(t *testing.T) {
	base := bytes.Repeat([]byte{0xd4, 0xc3, 0xb2, 0xa1, 0x55}, 40)
	a := New(3).Mangle(base, 16)
	b := New(3).Mangle(base, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different mangled corpora")
	}
}

// TestPanicOnceFiresExactlyOnce: the trigger detonates on one match only,
// even under concurrent emission, and all other matches pass through.
func TestPanicOnceFiresExactlyOnce(t *testing.T) {
	var mu sync.Mutex
	var forwarded, panics int
	emit := PanicOnce(func(dpi.FlowMatch) {
		mu.Lock()
		forwarded++
		mu.Unlock()
	}, func(dpi.FlowMatch) bool { return true })

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				func() {
					defer func() {
						if recover() != nil {
							mu.Lock()
							panics++
							mu.Unlock()
						}
					}()
					emit(dpi.FlowMatch{})
				}()
			}
		}()
	}
	wg.Wait()
	if panics != 1 {
		t.Fatalf("injected panic fired %d times, want exactly 1", panics)
	}
	if forwarded != 8*100-1 {
		t.Fatalf("forwarded %d matches, want %d", forwarded, 8*100-1)
	}
}

// TestStallOnceReleases: the stalled emission resumes when released and
// nothing is lost.
func TestStallOnceReleases(t *testing.T) {
	release := make(chan struct{})
	got := make(chan dpi.FlowMatch, 2)
	emit := StallOnce(func(m dpi.FlowMatch) { got <- m }, func(dpi.FlowMatch) bool { return true }, release)

	done := make(chan struct{})
	go func() {
		emit(dpi.FlowMatch{RuleID: 1})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("stalled emission returned before release")
	default:
	}
	close(release)
	<-done
	emit(dpi.FlowMatch{RuleID: 2})
	if len(got) != 2 {
		t.Fatalf("%d matches forwarded, want 2", len(got))
	}
}
