package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Validate strictly checks one text exposition: every line must be a
// well-formed HELP/TYPE comment or sample, label syntax and escaping must
// be exact, every sample's family must have been declared by a preceding
// TYPE line, and a family must not be declared twice. It returns the
// number of samples on success.
func Validate(exposition []byte) (samples int, err error) {
	typed := map[string]string{} // family → counter|gauge
	lines := strings.Split(string(exposition), "\n")
	for i, line := range lines {
		lineNo := i + 1
		if line == "" {
			// Only legal as the trailing newline's empty remainder.
			if i != len(lines)-1 {
				return samples, fmt.Errorf("line %d: empty line inside exposition", lineNo)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed); err != nil {
				return samples, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, typed); err != nil {
			return samples, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
	}
	if len(exposition) > 0 && exposition[len(exposition)-1] != '\n' {
		return samples, fmt.Errorf("exposition does not end with a newline")
	}
	return samples, nil
}

func validateComment(line string, typed map[string]string) error {
	parts := strings.SplitN(line, " ", 4)
	if len(parts) < 3 || parts[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch parts[1] {
	case "HELP":
		if !validMetricName(parts[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", parts[2])
		}
		return nil
	case "TYPE":
		if !validMetricName(parts[2]) {
			return fmt.Errorf("TYPE for invalid metric name %q", parts[2])
		}
		if len(parts) != 4 {
			return fmt.Errorf("TYPE line missing type: %q", line)
		}
		switch parts[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", parts[3])
		}
		if _, dup := typed[parts[2]]; dup {
			return fmt.Errorf("family %q declared twice", parts[2])
		}
		typed[parts[2]] = parts[3]
		return nil
	}
	return fmt.Errorf("unknown comment keyword %q", parts[1])
}

func validateSample(line string, typed map[string]string) error {
	rest := line
	// Metric name.
	end := 0
	for end < len(rest) && isNameChar(rest[end], end == 0) {
		end++
	}
	if end == 0 {
		return fmt.Errorf("sample does not start with a metric name: %q", line)
	}
	name := rest[:end]
	if _, ok := typed[name]; !ok {
		return fmt.Errorf("sample for undeclared family %q", name)
	}
	rest = rest[end:]
	// Optional label set.
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = validateLabels(rest)
		if err != nil {
			return fmt.Errorf("sample %q: %w", line, err)
		}
	}
	// Mandatory " value", optional " timestamp" (we emit none; reject to
	// stay strict about what our own writer produces).
	if !strings.HasPrefix(rest, " ") {
		return fmt.Errorf("sample %q: missing space before value", line)
	}
	val := rest[1:]
	switch val {
	case "+Inf", "-Inf", "NaN":
		return nil
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("sample %q: bad value %q", line, val)
	}
	if math.IsInf(f, 0) {
		return fmt.Errorf("sample %q: non-canonical infinity", line)
	}
	return nil
}

// validateLabels consumes a {name="value",...} block, returning the
// remainder of the line.
func validateLabels(rest string) (string, error) {
	rest = rest[1:] // consume '{'
	for {
		end := 0
		for end < len(rest) && isLabelChar(rest[end], end == 0) {
			end++
		}
		if end == 0 {
			return "", fmt.Errorf("empty label name")
		}
		rest = rest[end:]
		if !strings.HasPrefix(rest, `="`) {
			return "", fmt.Errorf("label missing =\"")
		}
		rest = rest[2:]
		for {
			if len(rest) == 0 {
				return "", fmt.Errorf("unterminated label value")
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\\' {
				if len(rest) < 2 || (rest[1] != '\\' && rest[1] != '"' && rest[1] != 'n') {
					return "", fmt.Errorf("bad escape in label value")
				}
				rest = rest[2:]
				continue
			}
			if c == '\n' {
				return "", fmt.Errorf("raw newline in label value")
			}
			rest = rest[1:]
		}
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		return "", fmt.Errorf("expected ',' or '}' after label")
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
