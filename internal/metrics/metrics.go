// Package metrics renders and validates the Prometheus text exposition
// format (version 0.0.4) with no dependencies — the observability half of
// the capture-to-verdict edge. The repo's rule is that operational truth
// lives in counters the pipeline already keeps (GatewayStats, EngineStats,
// flow-table stats, per-rule counters); this package only formats a
// snapshot of them, so scraping costs one snapshot and one buffer render,
// and nothing here touches the packet hot path.
//
// The Validate half is a strict parser for the same format. It exists so
// the scrape-under-load race test and the sensor's self-scrape can assert
// "this is well-formed Prometheus text" without importing a Prometheus
// client: every HELP/TYPE/sample line is checked, including label escaping
// and sample-to-TYPE consistency.
package metrics

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Content-Type a /metrics response must carry for the
// text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Writer renders one exposition. Typical use: declare each metric family
// with Metric, emit its samples with Sample, then hand Bytes to the
// response. A Writer is single-use and not safe for concurrent use; build
// a fresh one per scrape (the snapshot it renders is point-in-time anyway).
type Writer struct {
	buf  bytes.Buffer
	name string // current family, for bare Sample calls
}

// Metric opens a metric family: it writes the # HELP and # TYPE comments.
// typ is "counter" or "gauge". Subsequent Sample calls emit samples of
// this family until the next Metric call.
func (w *Writer) Metric(name, typ, help string) {
	w.name = name
	w.buf.WriteString("# HELP ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	w.buf.WriteString(escapeHelp(help))
	w.buf.WriteString("\n# TYPE ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	w.buf.WriteString(typ)
	w.buf.WriteByte('\n')
}

// Sample emits one sample of the current family.
func (w *Writer) Sample(value float64, labels ...Label) {
	w.buf.WriteString(w.name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			w.buf.WriteString(l.Name)
			w.buf.WriteString(`="`)
			w.buf.WriteString(escapeLabel(l.Value))
			w.buf.WriteByte('"')
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatValue(value))
	w.buf.WriteByte('\n')
}

// Bytes returns the rendered exposition.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }

// WriteTo writes the rendered exposition to out.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	n, err := out.Write(w.buf.Bytes())
	return int64(n), err
}

// formatValue renders a sample value: integers without an exponent or
// decimal point (counters read naturally), everything else in Go's
// shortest-roundtrip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// escapeLabel escapes a label value: backslash, double-quote and newline.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// Handler serves an exposition rendered per request by render. The
// response carries the exposition Content-Type, and GET/HEAD are the only
// accepted methods — the endpoint is a read-only scrape surface.
func Handler(render func(w *Writer)) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			rw.Header().Set("Allow", "GET, HEAD")
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var w Writer
		render(&w)
		rw.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		rw.Write(w.Bytes())
	})
}

// Healthz adapts a liveness check to an HTTP health endpoint: 200 when the
// check reports ok, 503 otherwise, with the check's body (typically a JSON
// snapshot) either way. check runs per request, so the probe always sees a
// fresh reading; mount it at /healthz next to the /metrics Handler.
func Healthz(check func() (ok bool, body []byte)) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			rw.Header().Set("Allow", "GET, HEAD")
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		ok, body := check()
		rw.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !ok {
			rw.WriteHeader(http.StatusServiceUnavailable)
		}
		if req.Method == http.MethodHead {
			return
		}
		rw.Write(body)
	})
}
