package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriterAndValidateRoundTrip(t *testing.T) {
	var w Writer
	w.Metric("dpi_packets_total", "counter", "Packets ingested.")
	w.Sample(12345)
	w.Metric("dpi_rule_flows_total", "counter", `Flows per rule, with "quotes" and back\slash.`)
	w.Sample(3, Label{"rule_id", "7"}, Label{"rule", `quo"te\d`}, Label{"verdict", "alert"})
	w.Sample(0, Label{"rule_id", "8"}, Label{"rule", "plain"}, Label{"verdict", "drop"})
	w.Metric("dpi_flows_live", "gauge", "Live flows.")
	w.Sample(17.5)

	n, err := Validate(w.Bytes())
	if err != nil {
		t.Fatalf("Validate: %v\n%s", err, w.Bytes())
	}
	if n != 4 {
		t.Errorf("Validate counted %d samples, want 4", n)
	}
	out := string(w.Bytes())
	for _, want := range []string{
		"# TYPE dpi_packets_total counter\n",
		"dpi_packets_total 12345\n",
		`rule="quo\"te\\d"`,
		"dpi_flows_live 17.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"undeclared family":  "dpi_x 1\n",
		"missing newline":    "# HELP a b\n# TYPE a counter\na 1",
		"bad value":          "# HELP a b\n# TYPE a counter\na one\n",
		"bad type":           "# HELP a b\n# TYPE a meter\na 1\n",
		"empty label name":   "# HELP a b\n# TYPE a counter\na{=\"x\"} 1\n",
		"unterminated label": "# HELP a b\n# TYPE a counter\na{l=\"x} 1\n",
		"bad escape":         "# HELP a b\n# TYPE a counter\na{l=\"\\x\"} 1\n",
		"duplicate family":   "# HELP a b\n# TYPE a counter\n# TYPE a counter\na 1\n",
		"name starts digit":  "# HELP a b\n# TYPE a counter\n9a 1\n",
	}
	for what, in := range cases {
		if _, err := Validate([]byte(in)); err == nil {
			t.Errorf("%s: Validate accepted %q", what, in)
		}
	}
}

func TestHandler(t *testing.T) {
	h := Handler(func(w *Writer) {
		w.Metric("dpi_up", "gauge", "Always one.")
		w.Sample(1)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	buf := make([]byte, 1<<12)
	n, _ := resp.Body.Read(buf)
	if _, err := Validate(buf[:n]); err != nil {
		t.Errorf("served exposition invalid: %v", err)
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}
