// Package device models the two FPGAs the paper targets (§V.B, Table I):
// the low-power Altera Cyclone III EP3C120F484C7 and the high-performance
// Stratix III EP3SE260H780C2, both 65 nm TSMC parts. The model covers what
// the architecture-level evaluation needs:
//
//   - M9K block-RAM allocation for the three memories of a string matching
//     block (state memory, match-number memory, lookup table);
//   - a logic-element estimate calibrated to the paper's synthesis results;
//   - throughput arithmetic: a block's 6 engines each consume 1 byte per
//     engine cycle at one third of the memory clock, so a block's
//     throughput is 16 × fmax bits/s, and an accelerator's aggregate
//     throughput is blockThroughput × blocks / groupsPerPacket.
//
// fmax and the logic-element coefficients are calibration constants taken
// from Table I — they come from Quartus II synthesis, which a functional
// model cannot re-derive. Everything else is computed.
package device

import (
	"fmt"
	"math"
)

// M9K geometry: a 9-kbit block RAM usable in the aspect ratios below
// (width in bits × depth in words), true dual port.
const M9KBits = 9216

// m9kDepthFor maps a column width to the deepest supported configuration.
var m9kAspects = []struct {
	Width int
	Depth int
}{
	{36, 256},
	{18, 512},
	{9, 1024},
	{4, 2048},
	{2, 4096},
	{1, 8192},
}

// Device describes one FPGA target.
type Device struct {
	Name      string
	Part      string
	VoltageV  float64
	ProcessNm int

	// Capacity.
	LogicCells int // LEs (Cyclone) / ALUTs (Stratix)
	M9Ks       int
	M144Ks     int // Stratix III also carries 144-kbit blocks (§V.D headroom)

	// Calibrated synthesis results from Table I.
	FmaxHz float64 // maximum memory clock of the paper's implementation

	// Paper configuration of the accelerator on this device.
	Blocks             int // string matching blocks instantiated
	StateWordsPerBlock int // 324-bit words of state memory per block

	// Logic-element cost model, calibrated so that the paper configuration
	// reproduces Table I's usage (see LogicEstimate).
	leFixed    int // dispatch, clocking, I/O glue
	lePerBlock int // 6 engines + comparators + match scheduler + muxing
}

// Cyclone3 is the low-power target: 4 blocks of 2,560 words, 233.15 MHz.
var Cyclone3 = Device{
	Name:      "Cyclone III",
	Part:      "EP3C120F484C7",
	VoltageV:  1.2,
	ProcessNm: 65,

	LogicCells: 119088,
	M9Ks:       432,

	FmaxHz: 233.15e6,

	Blocks:             4,
	StateWordsPerBlock: 2560,

	leFixed:    671, // 35,511 = 671 + 4 × 8,710
	lePerBlock: 8710,
}

// Stratix3 is the high-throughput target: 6 blocks of 3,584 words,
// 460.19 MHz.
var Stratix3 = Device{
	Name:      "Stratix III",
	Part:      "EP3SE260H780C2",
	VoltageV:  1.1,
	ProcessNm: 65,

	LogicCells: 254400,
	M9Ks:       864,
	M144Ks:     48,

	FmaxHz: 460.19e6,

	Blocks:             6,
	StateWordsPerBlock: 3584,

	leFixed:    585, // 69,585 = 585 + 6 × 11,500
	lePerBlock: 11500,
}

// MemoryConfig describes the three memories of one string matching block.
type MemoryConfig struct {
	StateWords int // 324-bit words
	MatchWords int // 27-bit words (paper: 2,048)
	LUTRows    int // 49-bit rows (paper: 256)
}

// PaperMemoryConfig returns the block memory configuration the paper
// implements on d.
func (d Device) PaperMemoryConfig() MemoryConfig {
	return MemoryConfig{
		StateWords: d.StateWordsPerBlock,
		MatchWords: 2048,
		LUTRows:    256,
	}
}

// m9ksFor computes the minimum number of M9Ks implementing a depth×width
// memory, choosing column widths by exact cover over the supported aspect
// ratios.
func m9ksFor(depth, width int) int {
	if depth <= 0 || width <= 0 {
		return 0
	}
	// best[w] = fewest blocks to cover w bits of width at this depth.
	best := make([]int, width+1)
	for w := 1; w <= width; w++ {
		best[w] = math.MaxInt32
		for _, a := range m9kAspects {
			cols := 1
			blocksPerCol := (depth + a.Depth - 1) / a.Depth
			rem := w - a.Width
			if rem < 0 {
				rem = 0
			}
			if best[rem] != math.MaxInt32 {
				if v := cols*blocksPerCol + best[rem]; v < best[w] {
					best[w] = v
				}
			}
		}
	}
	return best[width]
}

// BlockM9Ks returns the number of M9Ks one string matching block needs
// under cfg.
func (d Device) BlockM9Ks(cfg MemoryConfig) int {
	state := m9ksFor(cfg.StateWords, 324)
	match := m9ksFor(cfg.MatchWords, 27)
	lut := m9ksFor(cfg.LUTRows, 49)
	return state + match + lut
}

// M9KEstimate returns the total M9K usage for the paper configuration:
// per-block memories only (the paper: "our hardware implementation only
// used the M9K block RAM on the FPGA and none of the M144K").
func (d Device) M9KEstimate() int {
	return d.Blocks * d.BlockM9Ks(d.PaperMemoryConfig())
}

// LogicEstimate returns the logic-cell usage for n blocks under the
// calibrated cost model.
func (d Device) LogicEstimate(blocks int) int {
	return d.leFixed + blocks*d.lePerBlock
}

// BlockThroughputBps is the scan rate of one string matching block:
// 6 engines × 8 bits × fmax/3 = 16 × fmax (§IV.B).
func (d Device) BlockThroughputBps() float64 {
	return 16 * d.FmaxHz
}

// AggregateThroughputBps is the accelerator's scan rate when each packet
// must be scanned by `groups` blocks (the ruleset was split into that many
// groups). blocks/groups packet sets run concurrently; blocks that cannot
// form a complete set idle.
func (d Device) AggregateThroughputBps(groups int) (float64, error) {
	if groups < 1 {
		return 0, fmt.Errorf("device: groups must be >= 1, got %d", groups)
	}
	if groups > d.Blocks {
		return 0, fmt.Errorf("device: ruleset needs %d groups but %s has only %d blocks",
			groups, d.Name, d.Blocks)
	}
	sets := d.Blocks / groups
	return float64(sets) * d.BlockThroughputBps(), nil
}

// ThroughputAtClock scales AggregateThroughputBps to an arbitrary memory
// clock (used by the power figures, which sweep the clock).
func (d Device) ThroughputAtClock(groups int, clockHz float64) (float64, error) {
	full, err := d.AggregateThroughputBps(groups)
	if err != nil {
		return 0, err
	}
	return full * clockHz / d.FmaxHz, nil
}

// GroupsNeeded returns how many blocks a machine occupying stateWords
// 324-bit words (total across groups — callers pass per-group fit checks
// separately) requires, i.e. the smallest number of groups such that each
// group fits a block's state memory. It is a convenience for sizing; exact
// packing is validated by the hwsim packer.
func (d Device) GroupsNeeded(totalStateWords int) int {
	g := (totalStateWords + d.StateWordsPerBlock - 1) / d.StateWordsPerBlock
	if g < 1 {
		g = 1
	}
	return g
}

// StateMemoryBits returns the bit capacity of one block's state memory.
func (d Device) StateMemoryBits() int {
	return d.StateWordsPerBlock * 324
}

// WithDoubledBlockMemory returns a copy of d with twice the state words per
// block, modelling §V.D's observation that the unused M144K blocks could
// double the memory available to the string matching blocks.
func (d Device) WithDoubledBlockMemory() Device {
	d2 := d
	d2.Name = d.Name + " (+M144K)"
	d2.StateWordsPerBlock *= 2
	return d2
}
