package device

import (
	"math"
	"testing"
)

func TestM9ksForSimpleShapes(t *testing.T) {
	cases := []struct {
		depth, width, want int
	}{
		{256, 36, 1},  // exactly one block at 256×36
		{256, 72, 2},  // two 36-bit columns
		{512, 36, 2},  // two rows of 256×36 (or 2 cols 512×18)
		{1024, 9, 1},  // one block at 1024×9
		{2048, 27, 6}, // match memory: 3 columns of 9 bits × 2 deep
		{256, 49, 2},  // lookup table: 36+18 columns (paper: 49-bit rows)
		{8192, 1, 1},  // deepest aspect
		{0, 36, 0},    // empty
		{256, 0, 0},   // zero width
	}
	for _, tc := range cases {
		if got := m9ksFor(tc.depth, tc.width); got != tc.want {
			t.Errorf("m9ksFor(%d, %d) = %d, want %d", tc.depth, tc.width, got, tc.want)
		}
	}
}

func TestStateMemoryM9Ks(t *testing.T) {
	// 3,584 × 324: nine 36-bit columns, each 14 blocks deep = 126.
	if got := m9ksFor(3584, 324); got != 126 {
		t.Fatalf("Stratix state memory = %d M9Ks, want 126", got)
	}
	// 2,560 × 324: nine columns × 10 = 90.
	if got := m9ksFor(2560, 324); got != 90 {
		t.Fatalf("Cyclone state memory = %d M9Ks, want 90", got)
	}
}

func TestM9KEstimateNearTableI(t *testing.T) {
	// Table I reports 404 (Cyclone, 4 blocks) and 822 (Stratix, 6 blocks).
	// The analytic allocator reproduces the per-block memories; Quartus adds
	// a few blocks for FIFOs/buffers, so allow a one-sided tolerance.
	cases := []struct {
		d     Device
		paper int
		slack float64
	}{
		{Cyclone3, 404, 0.08},
		{Stratix3, 822, 0.08},
	}
	for _, tc := range cases {
		got := tc.d.M9KEstimate()
		lo := int(float64(tc.paper) * (1 - tc.slack))
		if got < lo || got > tc.paper {
			t.Errorf("%s: M9K estimate %d outside [%d, %d] (paper %d)",
				tc.d.Name, got, lo, tc.paper, tc.paper)
		}
		if got > tc.d.M9Ks {
			t.Errorf("%s: estimate %d exceeds device capacity %d", tc.d.Name, got, tc.d.M9Ks)
		}
	}
}

func TestLogicEstimateMatchesTableI(t *testing.T) {
	if got := Cyclone3.LogicEstimate(Cyclone3.Blocks); got != 35511 {
		t.Errorf("Cyclone LE estimate = %d, want 35,511", got)
	}
	if got := Stratix3.LogicEstimate(Stratix3.Blocks); got != 69585 {
		t.Errorf("Stratix LE estimate = %d, want 69,585", got)
	}
}

func TestBlockThroughput(t *testing.T) {
	// §V: 16 × fmax — 7.36 Gbps higher for Stratix (paper rounds to 7.4),
	// 3.73 Gbps for Cyclone (paper: 3.7).
	if got := Stratix3.BlockThroughputBps() / 1e9; math.Abs(got-7.363) > 0.01 {
		t.Errorf("Stratix block throughput = %.3f Gbps, want ≈7.363", got)
	}
	if got := Cyclone3.BlockThroughputBps() / 1e9; math.Abs(got-3.730) > 0.01 {
		t.Errorf("Cyclone block throughput = %.3f Gbps, want ≈3.730", got)
	}
}

func TestAggregateThroughputTableII(t *testing.T) {
	// Table II "Speed(Gbps)" row.
	cases := []struct {
		d      Device
		groups int
		want   float64 // Gbps, paper value
		tol    float64
	}{
		{Stratix3, 1, 44.2, 0.1},
		{Stratix3, 2, 22.1, 0.1},
		{Stratix3, 3, 14.7, 0.1},
		{Stratix3, 6, 7.4, 0.1},
		{Cyclone3, 1, 14.9, 0.1},
		{Cyclone3, 2, 7.5, 0.1},
		{Cyclone3, 4, 3.7, 0.1},
	}
	for _, tc := range cases {
		got, err := tc.d.AggregateThroughputBps(tc.groups)
		if err != nil {
			t.Fatalf("%s groups=%d: %v", tc.d.Name, tc.groups, err)
		}
		if math.Abs(got/1e9-tc.want) > tc.tol {
			t.Errorf("%s groups=%d: %.2f Gbps, want %.1f", tc.d.Name, tc.groups, got/1e9, tc.want)
		}
	}
}

func TestAggregateThroughputErrors(t *testing.T) {
	if _, err := Stratix3.AggregateThroughputBps(0); err == nil {
		t.Error("groups=0 accepted")
	}
	if _, err := Stratix3.AggregateThroughputBps(7); err == nil {
		t.Error("groups beyond block count accepted")
	}
}

func TestOC768AndOC192Targets(t *testing.T) {
	// Abstract: >40 Gbps (OC-768) on Stratix III, >10 Gbps (OC-192) on
	// Cyclone III, both with single-group rulesets.
	s, _ := Stratix3.AggregateThroughputBps(1)
	if s <= 40e9 {
		t.Errorf("Stratix peak %.1f Gbps does not exceed OC-768", s/1e9)
	}
	c, _ := Cyclone3.AggregateThroughputBps(1)
	if c <= 10e9 {
		t.Errorf("Cyclone peak %.1f Gbps does not exceed OC-192", c/1e9)
	}
}

func TestThroughputAtClockScalesLinearly(t *testing.T) {
	half, err := Stratix3.ThroughputAtClock(1, Stratix3.FmaxHz/2)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := Stratix3.AggregateThroughputBps(1)
	if math.Abs(half*2-full) > 1 {
		t.Fatalf("half-clock throughput %f not half of %f", half, full)
	}
}

func TestGroupsNeeded(t *testing.T) {
	d := Stratix3
	cases := []struct{ words, want int }{
		{0, 1},
		{1, 1},
		{3584, 1},
		{3585, 2},
		{3584 * 6, 6},
	}
	for _, tc := range cases {
		if got := d.GroupsNeeded(tc.words); got != tc.want {
			t.Errorf("GroupsNeeded(%d) = %d, want %d", tc.words, got, tc.want)
		}
	}
}

func TestWithDoubledBlockMemory(t *testing.T) {
	d2 := Stratix3.WithDoubledBlockMemory()
	if d2.StateWordsPerBlock != 2*Stratix3.StateWordsPerBlock {
		t.Fatal("memory not doubled")
	}
	if Stratix3.StateWordsPerBlock != 3584 {
		t.Fatal("original device mutated")
	}
	// §V.D: doubling halves the groups a large machine needs.
	if g := d2.GroupsNeeded(3584 * 6); g != 3 {
		t.Fatalf("doubled device needs %d groups for a 6-block machine, want 3", g)
	}
}

func TestPaperMemoryConfig(t *testing.T) {
	cfg := Cyclone3.PaperMemoryConfig()
	if cfg.StateWords != 2560 || cfg.MatchWords != 2048 || cfg.LUTRows != 256 {
		t.Fatalf("unexpected paper config: %+v", cfg)
	}
}
