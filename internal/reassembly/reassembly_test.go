package reassembly

// Stream-level tests: every permutation property here is re-proven end to
// end through the Gateway in the root package; these pin the mechanism in
// isolation — overlap policies, cap eviction ordering, gap skip, lifecycle
// flags, and sequence wraparound.

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

// feed pushes one segment and returns the delivered bytes (concatenated)
// plus the skip amount reported before the first chunk.
func feed(t *testing.T, s *Stream, seq uint32, payload string, flags Flags, tick uint64) (string, int, Result) {
	t.Helper()
	var got bytes.Buffer
	skip := 0
	r := s.Segment(seq, []byte(payload), flags, tick, func(chunk []byte, skippedBefore int) {
		if skippedBefore > 0 {
			if skip != 0 {
				t.Fatal("two skips reported in one call")
			}
			skip = skippedBefore
		}
		got.Write(chunk)
	})
	return got.String(), skip, r
}

func TestInOrderDelivery(t *testing.T) {
	s := NewStream(Config{})
	out, _, r := feed(t, s, 1000, "hello ", 0, 0)
	if out != "hello " || r.Delivered != 6 {
		t.Fatalf("first segment: %q %+v", out, r)
	}
	out, _, r = feed(t, s, 1006, "world", FIN, 1)
	if out != "world" || r.Event != EventFinished {
		t.Fatalf("second segment: %q %+v", out, r)
	}
	if !s.Finished() || s.Pos() != 11 {
		t.Fatalf("finished=%v pos=%d", s.Finished(), s.Pos())
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	s := NewStream(Config{})
	// Segments arrive 2, 0, 1 — delivery must come out in stream order.
	if out, _, r := feed(t, s, 1000, "", SYN, 0); out != "" || r.Buffered != 0 {
		t.Fatalf("syn: %+v", r)
	}
	out, _, r := feed(t, s, 1011, "cccc", 0, 1)
	if out != "" || r.Buffered != 4 {
		t.Fatalf("future segment delivered early: %q %+v", out, r)
	}
	out, _, _ = feed(t, s, 1001, "aaaaa", 0, 2)
	if out != "aaaaa" {
		t.Fatalf("in-order head: %q", out)
	}
	out, _, r = feed(t, s, 1006, "bbbbb", 0, 3)
	if out != "bbbbbcccc" {
		t.Fatalf("hole fill must drain the buffer: %q", out)
	}
	if r.Delivered != 9 || s.HeldBytes() != 0 {
		t.Fatalf("drain accounting: %+v held=%d", r, s.HeldBytes())
	}
}

func TestSequenceWraparound(t *testing.T) {
	s := NewStream(Config{})
	isn := uint32(0xFFFFFFF8) // 8 bytes before wrap
	feed(t, s, isn, "", SYN, 0)
	out, _, _ := feed(t, s, isn+1, "0123456", 0, 1) // crosses 2^32
	if out != "0123456" {
		t.Fatalf("pre-wrap: %q", out)
	}
	out, _, _ = feed(t, s, isn+8, "89", 0, 2) // seq wrapped to 0x00000000
	if out != "89" || s.Pos() != 9 {
		t.Fatalf("post-wrap: %q pos=%d", out, s.Pos())
	}
}

func TestRetransmitExactDuplicate(t *testing.T) {
	for _, pol := range []Policy{FirstWins, LastWins} {
		s := NewStream(Config{Policy: pol})
		feed(t, s, 0, "abcdef", 0, 0)
		out, _, r := feed(t, s, 0, "abcdef", 0, 1)
		if out != "" || r.Duplicate != 6 || r.Delivered != 0 {
			t.Fatalf("%v: delivered retransmit: %q %+v", pol, out, r)
		}
		// Partial overlap with new tail: only the tail is delivered.
		out, _, r = feed(t, s, 3, "defghi", 0, 2)
		if out != "ghi" || r.Duplicate != 3 {
			t.Fatalf("%v: overlap tail: %q %+v", pol, out, r)
		}
	}
}

// TestConflictingRetransmitPolicies is the policy-divergence case: the
// same undelivered range is sent twice with different bytes.
func TestConflictingRetransmitPolicies(t *testing.T) {
	run := func(pol Policy) string {
		s := NewStream(Config{Policy: pol})
		feed(t, s, 0, "", SYN, 0)
		// Hole at [0,4); first copy of [4,8) says AAAA, second says BBBB.
		feed(t, s, 5, "AAAA", 0, 1)
		feed(t, s, 5, "BBBB", 0, 2)
		out, _, _ := feed(t, s, 1, "head", 0, 3)
		return out
	}
	if got := run(FirstWins); got != "headAAAA" {
		t.Fatalf("FirstWins reassembled %q, want headAAAA", got)
	}
	if got := run(LastWins); got != "headBBBB" {
		t.Fatalf("LastWins reassembled %q, want headBBBB", got)
	}
}

// TestInOrderOverlapRespectsPolicy: a hole-filling segment that also
// overlaps buffered bytes must obey the policy for the overlapped part.
func TestInOrderOverlapRespectsPolicy(t *testing.T) {
	run := func(pol Policy) string {
		s := NewStream(Config{Policy: pol})
		feed(t, s, 0, "", SYN, 0)
		feed(t, s, 5, "XXXX", 0, 1) // buffered at [4,8)
		// Fills [0,4), overlaps [4,8) with conflicting bytes, extends to [0,10).
		out, _, _ := feed(t, s, 1, "aaaabbbbcc", 0, 2)
		return out
	}
	if got := run(FirstWins); got != "aaaaXXXXcc" {
		t.Fatalf("FirstWins: %q, want aaaaXXXXcc", got)
	}
	if got := run(LastWins); got != "aaaabbbbcc" {
		t.Fatalf("LastWins: %q, want aaaabbbbcc", got)
	}
}

func TestGapSkip(t *testing.T) {
	s := NewStream(Config{GapTimeout: 3})
	feed(t, s, 0, "", SYN, 0)
	// Segment [10,14) arrives; bytes [0,10) are lost forever.
	if out, _, _ := feed(t, s, 11, "tail", 0, 5); out != "" {
		t.Fatalf("delivered across gap: %q", out)
	}
	// Ticks 6,7: timer armed at 5, not yet expired.
	if out, _, _ := feed(t, s, 11, "tail", 0, 6); out != "" {
		t.Fatal("skipped too early")
	}
	out, skip, r := feed(t, s, 11, "tail", 0, 9)
	if out != "tail" || skip != 10 || r.Skipped != 10 {
		t.Fatalf("skip: out=%q skip=%d %+v", out, skip, r)
	}
	if s.Pos() != 14 {
		t.Fatalf("pos=%d, want 14 (10 skipped + 4 delivered)", s.Pos())
	}
	// Stream continues normally after the skip.
	if out, _, _ := feed(t, s, 15, "more", 0, 10); out != "more" {
		t.Fatalf("post-skip delivery: %q", out)
	}
}

func TestGapSkipDisabled(t *testing.T) {
	s := NewStream(Config{GapTimeout: 0})
	feed(t, s, 0, "", SYN, 0)
	feed(t, s, 11, "tail", 0, 1)
	if out, _, r := feed(t, s, 11, "tail", 0, 1<<40); out != "" || r.Skipped != 0 {
		t.Fatalf("skipped with timeout disabled: %q %+v", out, r)
	}
}

// TestFlowCapEvictionOrder: under the per-flow cap, bytes furthest from
// the delivery point are evicted first, and a piece further out than
// everything held is dropped rather than admitted.
func TestFlowCapEvictionOrder(t *testing.T) {
	s := NewStream(Config{MaxFlowBytes: 8})
	feed(t, s, 0, "", SYN, 0)
	feed(t, s, 5, "AAAA", 0, 1)  // [4,8)
	feed(t, s, 13, "CCCC", 0, 2) // [12,16)
	if s.HeldBytes() != 8 {
		t.Fatalf("held=%d", s.HeldBytes())
	}
	// [8,12) is closer than [12,16): the far piece must be evicted.
	_, _, r := feed(t, s, 9, "BBBB", 0, 3)
	if r.Buffered != 4 || r.Dropped != 4 {
		t.Fatalf("eviction accounting: %+v", r)
	}
	// A piece beyond everything held is the one dropped.
	_, _, r = feed(t, s, 21, "EEEE", 0, 4)
	if r.Dropped != 4 || r.Buffered != 0 {
		t.Fatalf("furthest new piece kept: %+v", r)
	}
	// Filling the head delivers the two surviving runs.
	out, _, _ := feed(t, s, 1, "head", 0, 5)
	if out != "headAAAABBBB" {
		t.Fatalf("survivors: %q, want headAAAABBBB", out)
	}
}

func TestSharedBudget(t *testing.T) {
	b := NewBudget(6)
	s1 := NewStream(Config{Budget: b})
	s2 := NewStream(Config{Budget: b})
	feed(t, s1, 0, "", SYN, 0)
	feed(t, s2, 0, "", SYN, 0)
	if _, _, r := feed(t, s1, 11, "aaaa", 0, 1); r.Buffered != 4 {
		t.Fatalf("first reserve: %+v", r)
	}
	// 4 of 6 used: s2 can only fail a 4-byte reservation.
	if _, _, r := feed(t, s2, 11, "bbbb", 0, 1); r.Dropped != 4 {
		t.Fatalf("budget not enforced: %+v", r)
	}
	if b.Used() != 4 {
		t.Fatalf("budget used=%d", b.Used())
	}
	// Releasing s1 (eviction mid-gap) frees the budget for s2.
	s1.Release()
	if b.Used() != 0 {
		t.Fatalf("release leaked: used=%d", b.Used())
	}
	if _, _, r := feed(t, s2, 11, "bbbb", 0, 2); r.Buffered != 4 {
		t.Fatalf("post-release reserve: %+v", r)
	}
}

func TestLifecycleFinRstSyn(t *testing.T) {
	s := NewStream(Config{})
	feed(t, s, 100, "", SYN, 0)
	// FIN arrives out of order: finish only once the hole fills.
	if _, _, r := feed(t, s, 104, "df", FIN, 1); r.Event != EventNone {
		t.Fatalf("finished with a hole open: %+v", r)
	}
	out, _, r := feed(t, s, 101, "abc", 0, 2)
	if out != "abcdf" || r.Event != EventFinished {
		t.Fatalf("fin completion: %q %+v", out, r)
	}
	// Stragglers after FIN are discarded.
	if out, _, r := feed(t, s, 101, "abc", 0, 3); out != "" || r.Duplicate != 3 {
		t.Fatalf("straggler delivered: %q %+v", out, r)
	}
	// A SYN restarts the stream for a new connection on the same tuple.
	out, _, _ = feed(t, s, 9000, "fresh", SYN, 4)
	if out != "fresh" || s.Pos() != 5 || s.Finished() {
		t.Fatalf("restart: %q pos=%d", out, s.Pos())
	}
	// RST tears down immediately, discarding held bytes.
	feed(t, s, 9020, "held", 0, 5)
	if _, _, r := feed(t, s, 0, "", RST, 6); r.Event != EventReset {
		t.Fatalf("rst: %+v", r)
	}
	if s.HeldBytes() != 0 {
		t.Fatalf("rst left %d held bytes", s.HeldBytes())
	}
	if out, _, _ := feed(t, s, 9020, "held", 0, 7); out != "" {
		t.Fatalf("post-rst delivery: %q", out)
	}
}

// TestPermutationEquivalence is the package-level property: any segment
// permutation with exact-copy retransmits reassembles to the original
// stream under either policy.
func TestPermutationEquivalence(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		pol := Policy(trial % 2)
		streamLen := 1 + src.Intn(600)
		orig := make([]byte, streamLen)
		for i := range orig {
			orig[i] = src.Byte()
		}
		// Random segmentation.
		type segment struct {
			seq  uint32
			data []byte
			last bool
		}
		isn := uint32(src.Uint64()) // any ISN, wrap included
		var segs []segment
		for at := 0; at < streamLen; {
			n := 1 + src.Intn(64)
			if at+n > streamLen {
				n = streamLen - at
			}
			segs = append(segs, segment{seq: isn + 1 + uint32(at), data: orig[at : at+n], last: at+n == streamLen})
			at += n
		}
		// Emission order: shuffled, with duplicates sprinkled in.
		order := src.Perm(len(segs))
		var emit []segment
		for _, i := range order {
			emit = append(emit, segs[i])
			if src.Bool(0.3) {
				emit = append(emit, segs[src.Intn(len(segs))])
			}
		}
		s := NewStream(Config{Policy: pol})
		var got bytes.Buffer
		deliver := func(chunk []byte, _ int) { got.Write(chunk) }
		s.Segment(isn, nil, SYN, 0, deliver)
		var finished bool
		for i, e := range emit {
			f := Flags(0)
			if e.last {
				f = FIN
			}
			r := s.Segment(e.seq, e.data, f, uint64(i), deliver)
			if r.Event == EventFinished {
				finished = true
			}
		}
		if !bytes.Equal(got.Bytes(), orig) {
			t.Fatalf("trial %d (%v, %d segs): reassembled %d bytes != original %d",
				trial, pol, len(segs), got.Len(), streamLen)
		}
		if !finished {
			t.Fatalf("trial %d: never finished", trial)
		}
		if s.HeldBytes() != 0 {
			t.Fatalf("trial %d: %d bytes still held", trial, s.HeldBytes())
		}
	}
}
