// Package reassembly rebuilds each TCP connection's contiguous byte stream
// from out-of-order, overlapping and retransmitted segments, so the string
// matcher downstream sees exactly the bytes the endpoint would — the
// precondition for the paper's per-flow scanning model, and the defence
// against the segmentation-evasion class the DPI literature warns about
// (an attacker splitting or overlapping segments so a signature never
// appears contiguously to the sensor).
//
// One Stream holds one direction of one connection. Segments arrive tagged
// with their absolute TCP sequence number; in-order bytes are delivered to
// the caller immediately, out-of-order bytes are buffered (bounded per
// flow and, via a shared Budget, globally) until the hole fills. Sequence
// arithmetic is uint32 with wraparound, so initial sequence numbers near
// 2^32 work unchanged.
//
// Three policies keep a hostile or lossy feed from wedging the scanner:
//
//   - Overlap policy: when a later segment's bytes overlap data already
//     buffered, FirstWins keeps the bytes that arrived first (Snort's
//     default) and LastWins lets the retransmission overwrite them.
//     Bytes already delivered to the scanner are immutable under either
//     policy — delivery is the commit point.
//   - Buffer caps: MaxFlowBytes bounds one flow's held bytes and Budget
//     bounds the sum across flows. Under pressure the bytes furthest from
//     the delivery point are dropped first (they are the least likely to
//     become deliverable soon); a drop becomes a gap handled like loss.
//   - Gap timeout: when delivery has been stalled on a missing segment for
//     GapTimeout ticks, the stream skips to the first buffered byte. The
//     caller is told how many bytes were skipped so it can invalidate
//     scanner state across the unseen region (a match cannot span bytes
//     the sensor never saw).
//
// A Stream is not safe for concurrent use; the gateway serializes all
// calls per flow through its flow-table entry lock.
package reassembly

import "sync/atomic"

// Policy selects which bytes win when segments overlap in the undelivered
// buffer.
type Policy int

const (
	// FirstWins keeps the bytes that arrived first; later overlapping
	// bytes are discarded.
	FirstWins Policy = iota
	// LastWins lets later segments overwrite previously buffered (but not
	// yet delivered) bytes.
	LastWins
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == LastWins {
		return "last-wins"
	}
	return "first-wins"
}

// Flags carries the TCP control bits the reassembler acts on.
type Flags uint8

const (
	FIN Flags = 1 << 0
	SYN Flags = 1 << 1
	RST Flags = 1 << 2
)

// Event reports a lifecycle transition caused by a Segment call.
type Event int

const (
	// EventNone: the stream is still live.
	EventNone Event = iota
	// EventFinished: a FIN was seen and every byte up to it has been
	// delivered; the flow's scanner state can be released.
	EventFinished
	// EventReset: an RST arrived; the flow must be torn down immediately
	// and buffered bytes have been discarded.
	EventReset
)

// Budget is a buffered-bytes budget shared by many streams — the global
// cap on out-of-order memory across all flows. A nil *Budget is unlimited.
type Budget struct {
	max  int64
	used atomic.Int64
}

// NewBudget returns a budget allowing max buffered bytes in total.
func NewBudget(max int) *Budget { return &Budget{max: int64(max)} }

// Used returns the bytes currently reserved.
func (b *Budget) Used() int {
	if b == nil {
		return 0
	}
	return int(b.used.Load())
}

func (b *Budget) reserve(n int) bool {
	if b == nil {
		return true
	}
	for {
		u := b.used.Load()
		if u+int64(n) > b.max {
			return false
		}
		if b.used.CompareAndSwap(u, u+int64(n)) {
			return true
		}
	}
}

func (b *Budget) release(n int) {
	if b != nil {
		b.used.Add(int64(-n))
	}
}

// Config parameterizes one Stream.
type Config struct {
	// Policy is the overlap policy for undelivered bytes.
	Policy Policy
	// MaxFlowBytes caps this stream's held (out-of-order) bytes; <= 0
	// selects 256 KiB.
	MaxFlowBytes int
	// Budget, when non-nil, additionally caps held bytes across all
	// streams sharing it.
	Budget *Budget
	// GapTimeout is how many ticks delivery may stall on a missing
	// segment before the stream skips to the first buffered byte;
	// 0 disables skipping (a gap then stalls until eviction).
	GapTimeout uint64
}

func (c Config) withDefaults() Config {
	if c.MaxFlowBytes <= 0 {
		c.MaxFlowBytes = 256 << 10
	}
	return c
}

// Result accounts one Segment call, in payload bytes. Every payload byte of
// the call lands in exactly one of Delivered, Buffered, Duplicate or
// Dropped; Abandoned re-classifies previously Buffered bytes the stream
// discarded this call (RST, or bytes held beyond a just-completed FIN), and
// Skipped counts stream positions never carried by any payload. Together
// these make the caller's byte ledger exact: held-bytes deltas are always
// explained by Buffered - Delivered(drained) - Duplicate(trimmed) -
// Dropped(evicted) - Abandoned.
type Result struct {
	Delivered int // bytes handed to deliver (from this and drained segments)
	Buffered  int // bytes newly held out of order
	Duplicate int // bytes discarded as retransmissions/overlaps per policy
	Dropped   int // bytes discarded to the flow cap or shared budget
	Skipped   int // gap bytes skipped past on timeout
	Abandoned int // held bytes discarded on RST or beyond a completed FIN
	Event     Event
}

// seg is one held out-of-order run. off is a stream offset (bytes from the
// start of the stream); held segs are sorted by off and non-overlapping.
type seg struct {
	off  int64
	data []byte
}

// Stream reassembles one flow direction.
type Stream struct {
	cfg      Config
	started  bool
	finished bool
	wasReset bool
	next     uint32 // absolute seq of the next in-order byte
	pos      int64  // stream offset of next (bytes delivered + skipped)
	held     []seg
	heldBy   int    // sum of held data lengths
	gapSince uint64 // tick+1 when delivery first stalled on the current gap
	finSeen  bool
	finOff   int64 // stream offset one past the last byte (FIN position)
}

// NewStream returns an empty stream; the first segment (or SYN)
// establishes the sequence base.
func NewStream(cfg Config) *Stream {
	return &Stream{cfg: cfg.withDefaults()}
}

// Pos returns the stream offset of the next in-order byte: bytes delivered
// plus bytes skipped past gaps.
func (s *Stream) Pos() int64 { return s.pos }

// HeldBytes returns the bytes currently buffered out of order.
func (s *Stream) HeldBytes() int { return s.heldBy }

// Finished reports whether the stream completed via FIN.
func (s *Stream) Finished() bool { return s.finished }

// Release discards all held bytes, returning them to the shared budget, and
// reports how many bytes it discarded so the caller can account them (a
// byte-conservation ledger must not lose eviction-released bytes). Call it
// when the flow is evicted mid-gap; it is idempotent.
func (s *Stream) Release() int {
	n := s.heldBy
	if n > 0 {
		s.cfg.Budget.release(n)
	}
	s.held, s.heldBy = nil, 0
	return n
}

// Segment ingests one TCP segment: seq is the sequence number of
// payload[0] (of the SYN itself when the SYN flag is set — SYN consumes
// one sequence number, so its payload logically starts at seq+1). deliver
// receives contiguous in-order chunks; skippedBefore is non-zero on the
// first chunk after a gap skip and tells the caller how many stream bytes
// were never seen (scanner state must not carry matches across them).
// tick is the caller's logical clock, used only for the gap timeout.
//
// Chunks delivered in the same call reference payload directly (consume or
// copy before the next Segment call); bytes that have to be buffered out of
// order are copied, so the stream never retains payload's backing array.
func (s *Stream) Segment(seq uint32, payload []byte, flags Flags, tick uint64, deliver func(chunk []byte, skippedBefore int)) Result {
	var r Result
	if s.finished || s.wasReset {
		if flags&SYN == 0 {
			// A straggling retransmission of a completed connection.
			r.Duplicate = len(payload)
			return r
		}
		s.restart()
	}
	if flags&RST != 0 {
		r.Abandoned = s.Release()
		s.wasReset = true
		r.Event = EventReset
		return r
	}
	dataSeq := seq
	if flags&SYN != 0 {
		dataSeq = seq + 1 // SYN occupies one sequence number
	}
	if !s.started {
		s.started = true
		s.next = dataSeq
		s.pos = 0
	}
	// Stream offset of payload[0]: signed 32-bit distance from the
	// delivery point handles sequence wraparound.
	off := s.pos + int64(int32(dataSeq-s.next))
	if flags&FIN != 0 && !s.finSeen {
		s.finSeen = true
		s.finOff = off + int64(len(payload))
	}
	data := payload
	// Bytes at or before the delivery point are already committed.
	if off < s.pos {
		cut := s.pos - off
		if cut >= int64(len(data)) {
			r.Duplicate += len(data)
			data = nil
		} else {
			r.Duplicate += int(cut)
			data = data[cut:]
			off = s.pos
		}
	}
	if len(data) > 0 {
		// Resolve overlaps with held bytes per policy first, producing
		// pieces disjoint from the buffer; then each piece is either
		// contiguous with the delivery point (deliver now, drain holes it
		// fills behind it) or buffered.
		var pieces []seg
		if s.cfg.Policy == FirstWins {
			pieces = []seg{{off: off, data: data}}
			for _, h := range s.held {
				pieces = subtract(pieces, h.off, h.off+int64(len(h.data)), &r)
			}
		} else {
			s.trimHeld(off, off+int64(len(data)), &r)
			pieces = []seg{{off: off, data: data}}
		}
		for _, p := range pieces {
			if p.off > s.pos {
				s.addPiece(p.off, p.data, &r)
				continue
			}
			chunk := p.data
			if cut := s.pos - p.off; cut > 0 {
				if cut >= int64(len(chunk)) {
					r.Duplicate += len(chunk)
					continue
				}
				r.Duplicate += int(cut)
				chunk = chunk[cut:]
			}
			deliver(chunk, 0)
			r.Delivered += len(chunk)
			s.advance(len(chunk))
			s.drain(deliver, &r, 0)
		}
	}
	s.checkFinished(&r)
	s.checkGap(tick, deliver, &r)
	return r
}

// restart re-arms a finished or reset stream for a new connection reusing
// the same 5-tuple (a SYN after FIN/RST): all positions and buffers clear;
// the caller is responsible for fresh scanner state.
func (s *Stream) restart() {
	s.Release()
	s.started = false
	s.finished = false
	s.wasReset = false
	s.finSeen = false
	s.finOff = 0
	s.gapSince = 0
	s.pos = 0
	s.next = 0
}

// advance moves the delivery point n committed bytes forward.
func (s *Stream) advance(n int) {
	s.pos += int64(n)
	s.next += uint32(n)
}

// drain delivers every held segment that is now contiguous with the
// delivery point. skippedBefore is attached to the first delivered chunk
// (non-zero only when a gap skip led here).
func (s *Stream) drain(deliver func([]byte, int), r *Result, skippedBefore int) {
	for len(s.held) > 0 && s.held[0].off <= s.pos {
		h := s.held[0]
		s.held = s.held[1:]
		s.heldBy -= len(h.data)
		s.cfg.Budget.release(len(h.data))
		data := h.data
		if h.off < s.pos { // partially covered by a just-delivered overlap
			cut := s.pos - h.off
			if cut >= int64(len(data)) {
				r.Duplicate += len(data)
				continue
			}
			r.Duplicate += int(cut)
			data = data[cut:]
		}
		deliver(data, skippedBefore)
		skippedBefore = 0
		r.Delivered += len(data)
		s.advance(len(data))
	}
}

// checkFinished flips the stream to finished once every byte up to the FIN
// has been delivered (or skipped past).
func (s *Stream) checkFinished(r *Result) {
	if s.finSeen && !s.finished && s.pos >= s.finOff {
		s.finished = true
		r.Abandoned += s.Release() // anything held beyond the FIN is bogus
		r.Event = EventFinished
	}
}

// checkGap maintains the gap timer and, once the timeout expires, skips
// the delivery point to the first held byte so a lost segment cannot wedge
// the flow. The timer is armed when delivery first stalls with bytes
// waiting and re-armed after every skip for the next gap.
func (s *Stream) checkGap(tick uint64, deliver func([]byte, int), r *Result) {
	if s.finished || len(s.held) == 0 {
		s.gapSince = 0
		return
	}
	if s.gapSince == 0 {
		s.gapSince = tick + 1 // +1 so tick 0 still arms the timer
		return
	}
	if s.cfg.GapTimeout == 0 || tick+1-s.gapSince < s.cfg.GapTimeout {
		return
	}
	skipped := int(s.held[0].off - s.pos)
	s.pos = s.held[0].off
	s.next += uint32(skipped)
	s.gapSince = 0
	r.Skipped += skipped
	s.drain(deliver, r, skipped)
	s.checkFinished(r)
	if len(s.held) > 0 { // a further gap: arm its timer now
		s.gapSince = tick + 1
	}
}

// trimHeld removes [off, end) from the held buffer (LastWins: the new
// bytes will overwrite), splitting segments that straddle the range. The
// discarded bytes count as Duplicate.
func (s *Stream) trimHeld(off, end int64, r *Result) {
	kept := make([]seg, 0, len(s.held))
	for _, h := range s.held {
		hEnd := h.off + int64(len(h.data))
		if hEnd <= off || h.off >= end { // disjoint
			kept = append(kept, h)
			continue
		}
		// Remainders are copied, not subsliced: a tiny kept remnant would
		// otherwise pin the overwritten segment's whole backing array
		// while its budget charge is released — repeated overwrites could
		// then grow real memory far past the caps.
		freed := len(h.data)
		if h.off < off { // left remainder survives
			left := seg{off: h.off, data: append([]byte(nil), h.data[:off-h.off]...)}
			freed -= len(left.data)
			kept = append(kept, left)
		}
		if hEnd > end { // right remainder survives
			right := seg{off: end, data: append([]byte(nil), h.data[end-h.off:]...)}
			freed -= len(right.data)
			kept = append(kept, right)
		}
		r.Duplicate += freed
		s.heldBy -= freed
		s.cfg.Budget.release(freed)
	}
	s.held = kept
}

// subtract removes [lo, hi) from every piece, counting removed bytes as
// Duplicate. Pieces stay sorted and disjoint.
func subtract(pieces []seg, lo, hi int64, r *Result) []seg {
	var out []seg
	for _, p := range pieces {
		pEnd := p.off + int64(len(p.data))
		if pEnd <= lo || p.off >= hi { // disjoint
			out = append(out, p)
			continue
		}
		if p.off < lo {
			out = append(out, seg{off: p.off, data: p.data[:lo-p.off]})
		}
		if pEnd > hi {
			out = append(out, seg{off: hi, data: p.data[hi-p.off:]})
		}
		removed := min(pEnd, hi) - max(p.off, lo)
		r.Duplicate += int(removed)
	}
	return out
}

// addPiece inserts one non-overlapping piece, enforcing the per-flow cap
// and the shared budget. Under pressure the held bytes furthest from the
// delivery point are evicted first — but never to admit bytes that are
// themselves further out than everything already held.
func (s *Stream) addPiece(off int64, data []byte, r *Result) {
	if s.finSeen {
		// Bytes at or past the FIN cannot be part of this connection.
		if off >= s.finOff {
			r.Duplicate += len(data)
			return
		}
		if over := off + int64(len(data)) - s.finOff; over > 0 {
			r.Duplicate += int(over)
			data = data[:int64(len(data))-over]
		}
	}
	need := len(data)
	if need == 0 {
		return
	}
	max := s.cfg.MaxFlowBytes
	for s.heldBy+need > max && len(s.held) > 0 {
		last := &s.held[len(s.held)-1]
		if last.off <= off {
			break // the new piece is the furthest; drop it instead
		}
		trim := s.heldBy + need - max
		if trim >= len(last.data) {
			freed := len(last.data)
			s.heldBy -= freed
			s.cfg.Budget.release(freed)
			r.Dropped += freed
			s.held = s.held[:len(s.held)-1]
		} else {
			// Copy the kept prefix so the evicted tail's memory is really
			// returned, not just uncharged (see the remnant note above).
			last.data = append([]byte(nil), last.data[:len(last.data)-trim]...)
			s.heldBy -= trim
			s.cfg.Budget.release(trim)
			r.Dropped += trim
		}
	}
	if s.heldBy+need > max {
		fit := max - s.heldBy
		if fit <= 0 {
			r.Dropped += need
			return
		}
		r.Dropped += need - fit
		data = data[:fit]
		need = fit
	}
	if !s.cfg.Budget.reserve(need) {
		r.Dropped += need
		return
	}
	s.heldBy += need
	// Own the buffered bytes: a retained subslice would pin the caller's
	// whole payload array while the caps charge only the slice length,
	// letting a hostile feed (e.g. 1-byte keepable pieces carved from
	// 1 MiB segments) amplify real memory far past MaxFlowBytes/Budget.
	// After this copy every held byte was charged at admission, so later
	// trims/splits of held data stay within the already-charged bound.
	data = append([]byte(nil), data...)
	// Sorted insert; held segments are few in practice (one per open gap).
	i := len(s.held)
	for i > 0 && s.held[i-1].off > off {
		i--
	}
	s.held = append(s.held, seg{})
	copy(s.held[i+1:], s.held[i:])
	s.held[i] = seg{off: off, data: data}
	r.Buffered += need
}
