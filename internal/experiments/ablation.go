package experiments

import (
	"repro/internal/ac"
	"repro/internal/core"
	"repro/internal/traffic"
	"repro/internal/tuck"
)

// --- Depth-2 default count ablation (§III.B: "We found through testing of
// strings used in the Snort ruleset that 4 was the optimum value.") ---

// D2SweepRow reports the memory trade-off at one depth-2 defaults-per-
// character setting.
type D2SweepRow struct {
	D2PerChar      int
	StoredPointers int64
	AvgStored      float64
	// StateBytes is the analytic state-machine size: 12 bits per state +
	// 24 per stored pointer (packing granularity excluded so the trend is
	// not quantized by word fill).
	StateBytes int
	// LUTBytes grows with the per-row entry count: 1 + 8k + 16 bits × 256.
	LUTBytes int
	// TotalBytes is what the optimum minimizes.
	TotalBytes int
}

// D2Sweep varies the depth-2 default count on the n-string set. The paper's
// claim reproduces as a memory-vs-k curve that flattens at k ≈ 4: beyond
// that, each added lookup-table column buys almost no pointer removals.
func (c *Context) D2Sweep(n int, ks []int) ([]D2SweepRow, error) {
	set, err := c.SetOf(n)
	if err != nil {
		return nil, err
	}
	var rows []D2SweepRow
	for _, k := range ks {
		m, err := core.Build(set, core.Options{D2PerChar: k})
		if err != nil {
			return nil, err
		}
		stateBits := 12*m.Stats.States + 24*int(m.Stats.StoredPointers)
		lutBits := 256 * (1 + 8*k + 16)
		rows = append(rows, D2SweepRow{
			D2PerChar:      k,
			StoredPointers: m.Stats.StoredPointers,
			AvgStored:      m.Stats.AvgStored,
			StateBytes:     (stateBits + 7) / 8,
			LUTBytes:       (lutBits + 7) / 8,
			TotalBytes:     (stateBits+lutBits+7)/8 + 1,
		})
	}
	return rows, nil
}

// --- Worst-case throughput (the fail-pointer contrast of §III.A) ---

// AdversarialRow compares matching disciplines on a worst-case stream.
type AdversarialRow struct {
	Approach     string
	StepsPerChar float64
	// ThroughputFraction is the worst-case fraction of nominal line rate a
	// hardware engine taking one memory access per automaton step would
	// sustain: 1/StepsPerChar.
	ThroughputFraction float64
}

// Adversarial scans a fail-chain-stressing payload with the paper's
// machine (guaranteed 1 transition/char), the classic goto/fail automaton
// and the two [13] baselines, which all use fail pointers.
func (c *Context) Adversarial(n, payloadBytes int) ([]AdversarialRow, error) {
	set, err := c.SetOf(n)
	if err != nil {
		return nil, err
	}
	payload, err := traffic.Adversarial(set, payloadBytes, c.Seed)
	if err != nil {
		return nil, err
	}

	trie, err := ac.New(set)
	if err != nil {
		return nil, err
	}
	fm := ac.NewFailMatcher(trie)
	fm.FindAll(payload)

	bm, err := tuck.BuildBitmap(set)
	if err != nil {
		return nil, err
	}
	bm.FindAll(payload)

	pc, err := tuck.BuildPath(set)
	if err != nil {
		return nil, err
	}
	pc.FindAll(payload)

	// The paper's machine takes exactly one transition per character by
	// construction; assert it anyway via the scanner position accounting.
	m, err := core.Build(set, core.Options{})
	if err != nil {
		return nil, err
	}
	sc := m.NewScanner()
	sc.Scan(payload, func(ac.Match) {})
	oursSteps := float64(sc.Pos()) / float64(len(payload))

	rows := []AdversarialRow{
		{"Our method (move function + DTP)", oursSteps, 1 / oursSteps},
		{"Aho-Corasick goto/fail", fm.StepsPerChar(), 1 / fm.StepsPerChar()},
		{"Bitmap [13]", bm.StepsPerChar(), 1 / bm.StepsPerChar()},
		{"Path compression [13]", pc.StepsPerChar(), 1 / pc.StepsPerChar()},
	}
	return rows, nil
}
