package experiments

import (
	"math"
	"testing"
)

// The context is expensive (full 6,275-string generation + reductions);
// share one across tests.
var sharedCtx *Context

func ctx(t *testing.T) *Context {
	t.Helper()
	if sharedCtx == nil {
		c, err := NewContext(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		sharedCtx = c
	}
	return sharedCtx
}

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LogicModel != r.LogicPaper {
			t.Errorf("%s: LE model %d != paper %d (calibrated constants must agree)",
				r.Device, r.LogicModel, r.LogicPaper)
		}
		if r.M9KModel > r.M9KPaper || float64(r.M9KModel) < 0.9*float64(r.M9KPaper) {
			t.Errorf("%s: M9K model %d outside [0.9×%d, %d]", r.Device, r.M9KModel, r.M9KPaper, r.M9KPaper)
		}
		if r.M9KModel > r.M9KCap || r.LogicModel > r.LogicCap {
			t.Errorf("%s: usage exceeds capacity", r.Device)
		}
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II build")
	}
	rows, err := ctx(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	speeds := []float64{44.2, 22.1, 14.7, 7.4, 14.9, 7.5, 3.7} // Table II row "Speed"
	for i, r := range rows {
		if math.Abs(r.SpeedGbps-speeds[i]) > 0.1 {
			t.Errorf("col %d: speed %.2f, want %.1f", i, r.SpeedGbps, speeds[i])
		}
		if r.ReductionPct < 93 {
			t.Errorf("col %d (%d strings): reduction %.1f%% below the paper's ≥96.5%% band (floor 93%%)",
				i, r.N, r.ReductionPct)
		}
		if !(r.OrigAvg > r.AvgAfterD1 && r.AvgAfterD1 > r.AvgAfterD12 && r.AvgAfterD12 >= r.AvgAfterD123) {
			t.Errorf("col %d: averages not decreasing: %.2f %.2f %.2f %.2f",
				i, r.OrigAvg, r.AvgAfterD1, r.AvgAfterD12, r.AvgAfterD123)
		}
		if r.States < r.OrigStates {
			t.Errorf("col %d: grouped states %d < ungrouped %d", i, r.States, r.OrigStates)
		}
	}
	// The key scaling claim: bytes per string decreases as rulesets grow
	// ("The number of bits needed to store each string actually decreases
	// as the number of strings increase").
	stratix := rows[:4]
	perString := func(r Table2Row) float64 { return float64(r.MemoryBytes) / float64(r.N) }
	if !(perString(stratix[3]) < perString(stratix[0])) {
		t.Errorf("memory per string did not shrink: %.1f (634) vs %.1f (6275)",
			perString(stratix[0]), perString(stratix[3]))
	}
	// Original average pointers grow with ruleset size (68→87 in the paper).
	if !(stratix[0].OrigAvg < stratix[3].OrigAvg) {
		t.Errorf("original avg did not grow: %.1f vs %.1f", stratix[0].OrigAvg, stratix[3].OrigAvg)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table III build")
	}
	rows, err := ctx(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	ours := rows[0].MemoryBytes
	if ours <= 0 {
		t.Fatal("our memory not measured")
	}
	// Who-wins, by roughly what factor: the paper reports 20× vs bitmap and
	// 8× vs path compression against [13]'s published numbers.
	if ratio := float64(rows[2].MemoryBytes) / float64(ours); ratio < 8 {
		t.Errorf("bitmap[13]/ours = %.1f, want the paper's ≈20× (floor 8)", ratio)
	}
	if ratio := float64(rows[3].MemoryBytes) / float64(ours); ratio < 3 {
		t.Errorf("path[13]/ours = %.1f, want the paper's ≈8× (floor 3)", ratio)
	}
	// Our reimplementations must also lose to our method.
	if rows[4].MemoryBytes <= ours || rows[5].MemoryBytes <= ours {
		t.Errorf("reimplemented baselines not larger: bitmap %d path %d ours %d",
			rows[4].MemoryBytes, rows[5].MemoryBytes, ours)
	}
	// And Cyclone/Stratix throughputs match Table III (7.5 / 22.1 Gbps).
	if math.Abs(rows[0].Throughput-7.5) > 0.1 || math.Abs(rows[1].Throughput-22.1) > 0.1 {
		t.Errorf("our throughputs %.2f/%.2f, want 7.5/22.1", rows[0].Throughput, rows[1].Throughput)
	}
}

func TestFigure2ExactValues(t *testing.T) {
	rows, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// Stages after the original must match the paper exactly.
	for _, r := range rows[1:] {
		if math.Abs(r.AvgStored-r.PaperValue) > 1e-9 {
			t.Errorf("%s: avg %.3f, paper %.1f", r.Stage, r.AvgStored, r.PaperValue)
		}
	}
	// The original stage differs by one self-transition counting convention
	// (we count 2.6, the paper prints 2.5); hold it to that band.
	if rows[0].AvgStored < 2.5 || rows[0].AvgStored > 2.6 {
		t.Errorf("original avg %.3f outside [2.5, 2.6]", rows[0].AvgStored)
	}
}

func TestFigure6Series(t *testing.T) {
	if testing.Short() {
		t.Skip("full set generation")
	}
	series, err := ctx(t).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 50 {
			t.Fatalf("%s: %d points, want 50", s.Name, len(s.Points))
		}
	}
	// The 6,275 curve dominates every other curve in total mass and its
	// peak sits in the paper's 4-13 byte band.
	last := series[5]
	peakX, peakY := 0.0, 0.0
	for _, p := range last.Points {
		if p[1] > peakY {
			peakX, peakY = p[0], p[1]
		}
	}
	if peakX < 4 || peakX > 13 {
		t.Errorf("6275-set peak at length %.0f, want 4..13", peakX)
	}
	if peakY < 300 {
		t.Errorf("6275-set peak %f strings, want ≥300 (paper ≈430)", peakY)
	}
}

func TestFigure7And8Endpoints(t *testing.T) {
	f7, err := Figure7(10)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Figure8(10)
	if err != nil {
		t.Fatal(err)
	}
	ends7 := []float64{14.9, 7.5, 3.7}
	for i, s := range f7 {
		last := s.Points[len(s.Points)-1]
		if math.Abs(last[0]-2.78) > 1e-9 {
			t.Errorf("Figure 7 %s ends at %.3f W, want 2.78", s.Name, last[0])
		}
		if math.Abs(last[1]-ends7[i]) > 0.1 {
			t.Errorf("Figure 7 %s tops at %.2f Gbps, want %.1f", s.Name, last[1], ends7[i])
		}
	}
	ends8 := []float64{44.2, 22.1, 14.7, 7.4}
	for i, s := range f8 {
		last := s.Points[len(s.Points)-1]
		if math.Abs(last[0]-13.28) > 1e-9 {
			t.Errorf("Figure 8 %s ends at %.3f W, want 13.28", s.Name, last[0])
		}
		if math.Abs(last[1]-ends8[i]) > 0.1 {
			t.Errorf("Figure 8 %s tops at %.2f Gbps, want %.1f", s.Name, last[1], ends8[i])
		}
	}
}

func TestD2SweepFlattensAtFour(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep build")
	}
	rows, err := ctx(t).D2Sweep(634, []int{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Stored pointers monotonically decrease with k...
	for i := 1; i < len(rows); i++ {
		if rows[i].StoredPointers > rows[i-1].StoredPointers {
			t.Fatalf("stored pointers increased at k=%d", rows[i].D2PerChar)
		}
	}
	// ...but the marginal removals collapse after k=4: the savings from
	// k=4→8 must be well below the savings from k=1→4 ("4 was the optimum
	// value").
	gainTo4 := rows[0].StoredPointers - rows[3].StoredPointers
	gainPast4 := rows[3].StoredPointers - rows[7].StoredPointers
	if gainPast4*5 > gainTo4 {
		t.Errorf("k>4 still profitable: 1→4 removed %d, 4→8 removed %d", gainTo4, gainPast4)
	}
}

func TestAdversarialGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial build")
	}
	rows, err := ctx(t).Adversarial(634, 16384)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].StepsPerChar != 1.0 {
		t.Fatalf("our method %.3f steps/char, want exactly 1.0", rows[0].StepsPerChar)
	}
	for _, r := range rows[1:] {
		if r.StepsPerChar <= 1.0 {
			t.Errorf("%s: %.3f steps/char, expected > 1 on adversarial input", r.Approach, r.StepsPerChar)
		}
	}
}
