package experiments

import (
	"math"
	"testing"
)

// Golden regression values for the default seed (2010). These are the
// exact numbers recorded in EXPERIMENTS.md; the test freezes them so that
// accidental changes to the generator, reducer, grouping or compression
// pipeline are caught immediately. If you change any of those components
// deliberately, regenerate EXPERIMENTS.md and update this table.
func TestGoldenTable2Seed2010(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II build")
	}
	rows, err := ctx(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		n          int
		origStates int
		states     int
		d1         int
		d1d2       int
		d1d2d3     int
		memBytes   int
	}{
		{634, 7664, 7664, 72, 244, 364, 43925},
		{1603, 18600, 18605, 105, 399, 610, 108704},
		{2588, 29347, 29355, 114, 451, 743, 178194},
		{6275, 68274, 68296, 129, 663, 1147, 377269},
		{500, 6154, 6154, 69, 233, 346, 34967},
		{1204, 14142, 14148, 90, 338, 536, 83422},
		{2588, 29347, 29362, 115, 482, 818, 167774},
	}
	if len(rows) != len(golden) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, g := range golden {
		r := rows[i]
		if r.N != g.n {
			t.Fatalf("col %d: n = %d, want %d", i, r.N, g.n)
		}
		if r.OrigStates != g.origStates || r.States != g.states {
			t.Errorf("col %d (%d strings): states %d/%d, golden %d/%d",
				i, g.n, r.OrigStates, r.States, g.origStates, g.states)
		}
		if r.D1 != g.d1 || r.D1D2 != g.d1d2 || r.D1D2D3 != g.d1d2d3 {
			t.Errorf("col %d (%d strings): defaults %d/%d/%d, golden %d/%d/%d",
				i, g.n, r.D1, r.D1D2, r.D1D2D3, g.d1, g.d1d2, g.d1d2d3)
		}
		if r.MemoryBytes != g.memBytes {
			t.Errorf("col %d (%d strings): memory %d, golden %d", i, g.n, r.MemoryBytes, g.memBytes)
		}
	}
}

// The toy example's numbers are structural, not workload-dependent: they
// must hold under any seed and any refactor.
func TestGoldenFigure2(t *testing.T) {
	rows, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.6, 1.1, 0.5, 0.1}
	for i, r := range rows {
		if math.Abs(r.AvgStored-want[i]) > 1e-9 {
			t.Errorf("stage %d: %.3f, golden %.1f", i, r.AvgStored, want[i])
		}
	}
}
