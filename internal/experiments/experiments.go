// Package experiments implements the paper-reproduction harness shared by
// cmd/dpibench and the top-level benchmarks: one entry point per table and
// figure of the evaluation section (§V), each returning structured rows so
// callers can render, benchmark or assert on them.
//
// Workloads follow §V.A: a 6,275-string Snort-like ruleset (synthetic — see
// DESIGN.md §2) plus reductions to 500, 634, 1204, 1603 and 2588 strings
// preserving the length distribution. Grouping follows Table II: on
// Stratix III, 634→1, 1603→2, 2588→3, 6275→6 blocks; on Cyclone III,
// 500→1, 1204→2, 2588→4.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hwsim"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/ruleset"
	"repro/internal/tuck"
)

// DefaultSeed regenerates the exact workloads in EXPERIMENTS.md.
const DefaultSeed = 2010

// FullSetSize is the Snort ruleset size the paper evaluates.
const FullSetSize = 6275

// Context carries the generated workloads.
type Context struct {
	Seed int64
	Full *ruleset.Set
	sub  map[int]*ruleset.Set
}

// NewContext generates the full synthetic ruleset and its reductions.
func NewContext(seed int64) (*Context, error) {
	full, err := ruleset.Generate(ruleset.GenConfig{N: FullSetSize, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Context{Seed: seed, Full: full, sub: map[int]*ruleset.Set{FullSetSize: full}}, nil
}

// SetOf returns the n-string reduction (cached).
func (c *Context) SetOf(n int) (*ruleset.Set, error) {
	if s, ok := c.sub[n]; ok {
		return s, nil
	}
	s, err := c.Full.Reduce(n, c.Seed+int64(n))
	if err != nil {
		return nil, err
	}
	c.sub[n] = s
	return s, nil
}

// --- Table I ---

// Table1Row compares modeled resource usage against the paper's synthesis
// results for one device.
type Table1Row struct {
	Device     string
	LogicModel int
	LogicPaper int
	LogicCap   int
	M9KModel   int
	M9KPaper   int
	M9KCap     int
	FmaxMHz    float64 // calibration constant from the paper
}

// Table1 reproduces Table I (resource utilization).
func Table1() []Table1Row {
	paper := map[string]struct{ le, m9k int }{
		device.Cyclone3.Part: {35511, 404},
		device.Stratix3.Part: {69585, 822},
	}
	var rows []Table1Row
	for _, d := range []device.Device{device.Cyclone3, device.Stratix3} {
		p := paper[d.Part]
		rows = append(rows, Table1Row{
			Device:     d.Name,
			LogicModel: d.LogicEstimate(d.Blocks),
			LogicPaper: p.le,
			LogicCap:   d.LogicCells,
			M9KModel:   d.M9KEstimate(),
			M9KPaper:   p.m9k,
			M9KCap:     d.M9Ks,
			FmaxMHz:    d.FmaxHz / 1e6,
		})
	}
	return rows
}

// --- Table II ---

// Table2Config is one column of Table II.
type Table2Config struct {
	Device device.Device
	N      int
	Groups int
}

// Table2Configs returns the paper's seven columns.
func Table2Configs() []Table2Config {
	return []Table2Config{
		{device.Stratix3, 634, 1},
		{device.Stratix3, 1603, 2},
		{device.Stratix3, 2588, 3},
		{device.Stratix3, 6275, 6},
		{device.Cyclone3, 500, 1},
		{device.Cyclone3, 1204, 2},
		{device.Cyclone3, 2588, 4},
	}
}

// Table2Row holds every quantity of one Table II column.
type Table2Row struct {
	Device string
	N      int
	Blocks int // groups the ruleset splits into

	// Original Aho-Corasick (ungrouped machine).
	OrigStates int
	OrigAvg    float64

	// Our method (grouped machines; counts summed over groups).
	States       int
	D1           int
	AvgAfterD1   float64
	D1D2         int
	AvgAfterD12  float64
	D1D2D3       int
	AvgAfterD123 float64
	ReductionPct float64
	MemoryBytes  int // packed: state words + match words + LUT rows
	SpeedGbps    float64
}

// Table2One computes one Table II column.
func (c *Context) Table2One(cfg Table2Config) (Table2Row, error) {
	set, err := c.SetOf(cfg.N)
	if err != nil {
		return Table2Row{}, err
	}
	// Original Aho-Corasick stats come from the ungrouped machine.
	single, err := core.Build(set, core.Options{})
	if err != nil {
		return Table2Row{}, err
	}
	grouped, err := core.BuildGrouped(set, cfg.Groups, core.Options{})
	if err != nil {
		return Table2Row{}, err
	}
	gs := grouped.CombinedStats()
	row := Table2Row{
		Device:       cfg.Device.Name,
		N:            cfg.N,
		Blocks:       cfg.Groups,
		OrigStates:   single.Stats.States,
		OrigAvg:      single.Stats.OriginalAvg,
		States:       gs.States,
		D1:           gs.D1Count,
		AvgAfterD1:   gs.AvgAfterD1,
		D1D2:         gs.D1Count + gs.D2Count,
		AvgAfterD12:  gs.AvgAfterD12,
		D1D2D3:       gs.D1Count + gs.D2Count + gs.D3Count,
		AvgAfterD123: gs.AvgAfterD123,
		// Reduction vs the ungrouped original, as the paper reports it.
		ReductionPct: 100 * (1 - float64(gs.StoredPointers)/float64(single.Stats.OriginalPointers)),
	}
	mem := 0
	for _, m := range grouped.Machines {
		img, err := hwsim.Pack(m)
		if err != nil {
			return Table2Row{}, err
		}
		if img.Stats.StateWords > cfg.Device.StateWordsPerBlock {
			return Table2Row{}, fmt.Errorf("experiments: %d-string group overflows a %s block (%d > %d words)",
				cfg.N, cfg.Device.Name, img.Stats.StateWords, cfg.Device.StateWordsPerBlock)
		}
		mem += img.Stats.TotalBytesPaper
	}
	row.MemoryBytes = mem
	tput, err := cfg.Device.AggregateThroughputBps(cfg.Groups)
	if err != nil {
		return Table2Row{}, err
	}
	row.SpeedGbps = tput / 1e9
	return row, nil
}

// Table2 computes all columns.
func (c *Context) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, cfg := range Table2Configs() {
		row, err := c.Table2One(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Table III ---

// Table3Row is one comparison entry.
type Table3Row struct {
	Approach    string
	Device      string
	MemoryBytes int
	Throughput  float64 // Gbps
	Source      string  // "measured" or "reported in [13]"
}

// Table3 reproduces the performance comparison on a 19,124-character
// subset: our method (measured, packed), the paper's citations of [13]
// (reported constants), and our reimplementations of [13] (measured), so
// both the paper's exact comparison and an independently reproduced one
// are visible.
func (c *Context) Table3() ([]Table3Row, error) {
	sub, err := c.Full.ReduceToChars(19124, c.Seed+3)
	if err != nil {
		return nil, err
	}
	grouped, err := core.BuildGrouped(sub, 2, core.Options{})
	if err != nil {
		return nil, err
	}
	ours := 0
	for _, m := range grouped.Machines {
		img, err := hwsim.Pack(m)
		if err != nil {
			return nil, err
		}
		ours += img.Stats.TotalBytesPaper
	}
	cyc, err := device.Cyclone3.AggregateThroughputBps(2)
	if err != nil {
		return nil, err
	}
	str, err := device.Stratix3.AggregateThroughputBps(2)
	if err != nil {
		return nil, err
	}

	bm, err := tuck.BuildBitmap(sub)
	if err != nil {
		return nil, err
	}
	pc, err := tuck.BuildPath(sub)
	if err != nil {
		return nil, err
	}
	return []Table3Row{
		{"Our method", "Cyclone 3", ours, cyc / 1e9, "measured"},
		{"Our method", "Stratix 3", ours, str / 1e9, "measured"},
		{"Bitmap [13]", "ASIC", 2800000, 7.8, "reported in [13]"},
		{"Path compression [13]", "ASIC", 1100000, 7.8, "reported in [13]"},
		{"Bitmap (reimplemented)", "model", bm.MemoryBytes(true), 7.8, "measured"},
		{"Path compression (reimplemented)", "model", pc.MemoryBytes(), 7.8, "measured"},
	}, nil
}

// --- Figure 2 (§III.B walkthrough) ---

// Figure2Row is the toy-example compression trace.
type Figure2Row struct {
	Stage      string
	AvgStored  float64
	PaperValue float64
}

// Figure2 reproduces the he/she/his/hers example: average stored pointers
// 1.1 → 0.5 → 0.1 as default depths are added.
func Figure2() ([]Figure2Row, error) {
	toy := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("he")},
		{ID: 1, Data: []byte("she")},
		{ID: 2, Data: []byte("his")},
		{ID: 3, Data: []byte("hers")},
	}}
	m, err := core.Build(toy, core.Options{})
	if err != nil {
		return nil, err
	}
	st := m.Stats
	return []Figure2Row{
		{"original (Figure 1)", st.OriginalAvg, 2.5},
		{"+ depth-1 defaults (Figure 2A)", st.AvgAfterD1, 1.1},
		{"+ depth-2 defaults (Figure 2B)", st.AvgAfterD12, 0.5},
		{"+ depth-3 defaults (Figure 2C)", st.AvgAfterD123, 0.1},
	}, nil
}

// --- Figure 6 ---

// Figure6 returns one series per ruleset size: x = string length (50 means
// 50+), y = number of strings.
func (c *Context) Figure6() ([]report.Series, error) {
	var out []report.Series
	for _, n := range []int{500, 634, 1204, 1603, 2588, 6275} {
		set, err := c.SetOf(n)
		if err != nil {
			return nil, err
		}
		s := report.Series{Name: fmt.Sprintf("%d Rules", n)}
		for _, b := range ruleset.LengthHistogram(set) {
			s.Points = append(s.Points, [2]float64{float64(b.Length), float64(b.Count)})
		}
		out = append(out, s)
	}
	return out, nil
}

// --- Figures 7 and 8 ---

// powerFigure builds the power-vs-throughput series for one device.
func powerFigure(d device.Device, curves []struct {
	n      int
	groups int
}, steps int) ([]report.Series, error) {
	model, err := power.ModelFor(d)
	if err != nil {
		return nil, err
	}
	var out []report.Series
	for _, cv := range curves {
		pts, err := model.Sweep(cv.groups, steps)
		if err != nil {
			return nil, err
		}
		s := report.Series{Name: fmt.Sprintf("%d Strings", cv.n)}
		for _, p := range pts {
			s.Points = append(s.Points, [2]float64{p.PowerW, p.ThroughputGbps})
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure7 is the Cyclone III power sweep (x = power W, y = throughput
// Gbps) for the 500/1204/2588-string rulesets.
func Figure7(steps int) ([]report.Series, error) {
	return powerFigure(device.Cyclone3, []struct {
		n      int
		groups int
	}{{500, 1}, {1204, 2}, {2588, 4}}, steps)
}

// Figure8 is the Stratix III power sweep for 634/1603/2588/6275 strings.
func Figure8(steps int) ([]report.Series, error) {
	return powerFigure(device.Stratix3, []struct {
		n      int
		groups int
	}{{634, 1}, {1603, 2}, {2588, 3}, {6275, 6}}, steps)
}
