package nids

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPrefixContains(t *testing.T) {
	cases := []struct {
		prefix string
		ip     uint32
		want   bool
	}{
		{"10.0.0.0/8", IPv4(10, 1, 2, 3), true},
		{"10.0.0.0/8", IPv4(11, 0, 0, 1), false},
		{"192.168.1.0/24", IPv4(192, 168, 1, 255), true},
		{"192.168.1.0/24", IPv4(192, 168, 2, 0), false},
		{"1.2.3.4/32", IPv4(1, 2, 3, 4), true},
		{"1.2.3.4/32", IPv4(1, 2, 3, 5), false},
		{"any", IPv4(8, 8, 8, 8), true},
	}
	for _, tc := range cases {
		p, err := parsePrefix(tc.prefix)
		if err != nil {
			t.Fatalf("%s: %v", tc.prefix, err)
		}
		if got := p.Contains(tc.ip); got != tc.want {
			t.Errorf("%s.Contains(%#x) = %v, want %v", tc.prefix, tc.ip, got, tc.want)
		}
	}
}

func TestPortRange(t *testing.T) {
	if !AnyPort.Contains(1) || !AnyPort.Contains(65535) {
		t.Fatal("AnyPort not matching everything")
	}
	r := PortRange{Lo: 80, Hi: 90}
	for port, want := range map[uint16]bool{79: false, 80: true, 85: true, 90: true, 91: false} {
		if got := r.Contains(port); got != want {
			t.Errorf("Contains(%d) = %v, want %v", port, got, want)
		}
	}
}

func TestHeaderRuleMatches(t *testing.T) {
	h := HeaderRule{
		Proto:    ProtoTCP,
		SrcNet:   AnyPrefix,
		DstNet:   Prefix{Addr: IPv4(10, 0, 0, 0), Bits: 8},
		DstPorts: PortRange{Lo: 80, Hi: 80},
	}
	ok := FiveTuple{SrcIP: IPv4(1, 2, 3, 4), DstIP: IPv4(10, 9, 8, 7), SrcPort: 5555, DstPort: 80, Proto: ProtoTCP}
	if !h.Matches(ok) {
		t.Fatal("matching tuple rejected")
	}
	bad := ok
	bad.Proto = ProtoUDP
	if h.Matches(bad) {
		t.Error("wrong proto accepted")
	}
	bad = ok
	bad.DstIP = IPv4(11, 0, 0, 1)
	if h.Matches(bad) {
		t.Error("wrong dst net accepted")
	}
	bad = ok
	bad.DstPort = 81
	if h.Matches(bad) {
		t.Error("wrong port accepted")
	}
}

func TestContentLocationSemantics(t *testing.T) {
	// "abc" within the 5-byte window [4, 9): allowed starts are 4, 5, 6.
	c := Content{Data: []byte("abc"), Offset: 4, Depth: 5}
	for start, want := range map[int]bool{3: false, 4: true, 5: true, 6: true, 7: false} {
		if got := c.allows(start); got != want {
			t.Errorf("allows(%d) = %v, want %v", start, got, want)
		}
	}
	unbounded := Content{Data: []byte("abc"), Offset: 2}
	if unbounded.allows(1) || !unbounded.allows(2) || !unbounded.allows(1000) {
		t.Error("offset-only constraint wrong")
	}
}

func testRules(t *testing.T) []Rule {
	t.Helper()
	src := `
# web attacks
alert tcp any any -> 10.0.0.0/8 80 (msg:"phf"; content:"/cgi-bin/phf";)
alert udp any any -> any 1434 (msg:"slammer"; content:"|04 01 01 01 01|"; offset:0; depth:5;)
alert tcp any any -> any 80:88 (msg:"two-part"; content:"GET "; offset:0; depth:4; content:"../../";)
`
	rules, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

func TestParseRules(t *testing.T) {
	rules := testRules(t)
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].Name != "phf" || rules[0].Header.Proto != ProtoTCP {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Contents[0].Depth != 5 || rules[1].Contents[0].Offset != 0 {
		t.Fatalf("slammer content constraint = %+v", rules[1].Contents[0])
	}
	if len(rules[2].Contents) != 2 {
		t.Fatalf("two-part rule has %d contents", len(rules[2].Contents))
	}
	if rules[2].Header.DstPorts != (PortRange{Lo: 80, Hi: 88}) {
		t.Fatalf("port range = %+v", rules[2].Header.DstPorts)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"",
		"alert tcp any any -> any 80", // no options
		"drop tcp any any -> any 80 (content:\"x\";)",              // action
		"alert tcp any any any 80 (content:\"x\";)",                // missing ->
		"alert xxx any any -> any 80 (content:\"x\";)",             // proto
		"alert tcp 1.2.3/8 any -> any 80 (content:\"x\";)",         // bad ip
		"alert tcp any 99999 -> any 80 (content:\"x\";)",           // bad port
		"alert tcp any 90:80 -> any 80 (content:\"x\";)",           // inverted range
		"alert tcp any any -> any 80 (msg:\"no content\";)",        // no content
		"alert tcp any any -> any 80 (offset:3; content:\"x\";)",   // offset first
		"alert tcp any any -> any 80 (content:\"x\"; offset:-1;)",  // negative
		"alert tcp any any -> any 80 (content:\"|zz|\";)",          // bad hex
		"alert tcp any any -> any 80 (content:\"x\"; nonsense:1;)", // unknown opt
		"alert tcp any any -> any 80 (msg:\"unterminated; content:\"x\";)",
	}
	for _, line := range bad {
		if _, err := ParseRule(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestEngineDeduplicatesContents(t *testing.T) {
	rules := []Rule{
		{ID: 0, Name: "a", Contents: []Content{{Data: []byte("shared")}}},
		{ID: 1, Name: "b", Contents: []Content{{Data: []byte("shared")}, {Data: []byte("extra")}}},
	}
	e, err := NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumPatterns() != 2 {
		t.Fatalf("patterns = %d, want 2 (shared deduplicated)", e.NumPatterns())
	}
}

func TestEngineInspect(t *testing.T) {
	rules := testRules(t)
	e, err := NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	web := FiveTuple{SrcIP: IPv4(1, 2, 3, 4), DstIP: IPv4(10, 0, 0, 5), SrcPort: 40000, DstPort: 80, Proto: ProtoTCP}

	// phf rule fires on matching header + payload.
	alerts := e.Inspect(0, web, []byte("GET /cgi-bin/phf HTTP/1.0"))
	if len(alerts) != 1 || alerts[0].RuleName != "phf" {
		t.Fatalf("alerts = %+v", alerts)
	}

	// Same payload to a destination outside 10/8: header gate blocks it.
	outside := web
	outside.DstIP = IPv4(11, 0, 0, 5)
	if alerts := e.Inspect(1, outside, []byte("GET /cgi-bin/phf HTTP/1.0")); len(alerts) != 0 {
		t.Fatalf("header gate failed: %+v", alerts)
	}

	// Two-part rule: both contents must match, with GET at offset 0.
	payload := []byte("GET /a/../../etc/passwd HTTP/1.0")
	alerts = e.Inspect(2, web, payload)
	names := map[string]bool{}
	for _, a := range alerts {
		names[a.RuleName] = true
	}
	if !names["two-part"] {
		t.Fatalf("two-part rule did not fire: %+v", alerts)
	}
	// "GET " not at the start → the offset/depth constraint must block it.
	shifted := append([]byte("xx"), payload...)
	alerts = e.Inspect(3, web, shifted)
	for _, a := range alerts {
		if a.RuleName == "two-part" {
			t.Fatalf("two-part fired despite GET at offset 2: %+v", alerts)
		}
	}

	// Slammer: UDP/1434, preamble byte must be at offset 0 exactly.
	slam := FiveTuple{SrcIP: IPv4(9, 9, 9, 9), DstIP: IPv4(10, 1, 1, 1), SrcPort: 1025, DstPort: 1434, Proto: ProtoUDP}
	body := []byte{0x04, 0x01, 0x01, 0x01, 0x01, 0x99}
	if alerts := e.Inspect(4, slam, body); len(alerts) != 1 || alerts[0].RuleName != "slammer" {
		t.Fatalf("slammer alerts = %+v", alerts)
	}
	late := append([]byte{0x00}, body...)
	if alerts := e.Inspect(5, slam, late); len(alerts) != 0 {
		t.Fatalf("slammer fired at offset 1: %+v", alerts)
	}
}

func TestEngineAlertOncePerRule(t *testing.T) {
	rules := []Rule{{ID: 7, Name: "x", Contents: []Content{{Data: []byte("dup")}}}}
	e, err := NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	alerts := e.Inspect(0, FiveTuple{}, []byte("dup dup dup dup"))
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (deduplicated per packet)", len(alerts))
	}
	if alerts[0].RuleID != 7 {
		t.Fatalf("rule ID = %d", alerts[0].RuleID)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Error("empty rules accepted")
	}
	if _, err := NewEngine([]Rule{{ID: 0}}); err == nil {
		t.Error("rule without contents accepted")
	}
	if _, err := NewEngine([]Rule{
		{ID: 0, Contents: []Content{{Data: []byte("a")}}},
		{ID: 0, Contents: []Content{{Data: []byte("b")}}},
	}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := NewEngine([]Rule{{ID: 0, Contents: []Content{{Data: []byte("a"), Offset: -1}}}}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := NewEngine([]Rule{{ID: 0, Contents: []Content{{Data: []byte("abc"), Depth: 2}}}}); err == nil {
		t.Error("depth below content length accepted")
	}
	big := Rule{ID: 0}
	for i := 0; i < 33; i++ {
		big.Contents = append(big.Contents, Content{Data: []byte{byte(i), byte(i + 1)}})
	}
	if _, err := NewEngine([]Rule{big}); err == nil {
		t.Error("33 contents accepted")
	}
}

// Property: prefix matching agrees with brute-force mask arithmetic.
func TestQuickPrefixContains(t *testing.T) {
	f := func(addr, ip uint32, bits8 uint8) bool {
		bits := int(bits8) % 33
		p := Prefix{Addr: addr, Bits: bits}
		want := true
		for b := 0; b < bits; b++ {
			shift := uint(31 - b)
			if (addr>>shift)&1 != (ip>>shift)&1 {
				want = false
				break
			}
		}
		if bits == 0 {
			want = true
		}
		return p.Contains(ip) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
