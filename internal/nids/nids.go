// Package nids implements the intrusion-detection rule model the paper's
// accelerator serves (§I): "The rules used for DPI in an intrusion
// detection system such as Snort consist of two parts. The first part is a
// header rule which involves performing 5-tuple packet classification on a
// packet's header. The second part is a content rule where a specific
// string or strings must be searched for in a packet's payload at given
// locations."
//
// The package provides the 5-tuple header classifier, location-constrained
// content requirements (Snort offset/depth semantics), a rule compiler that
// deduplicates content strings into one string-matching pass, and the
// evaluation engine that turns raw matches into per-rule alerts.
package nids

import (
	"fmt"

	"repro/internal/ac"
	"repro/internal/core"
	"repro/internal/ruleset"
)

// Proto numbers follow IP.
const (
	ProtoAny  byte = 0
	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// FiveTuple is a packet's classification header.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   byte
}

// Hash64 returns a well-mixed 64-bit hash of the tuple, suitable for
// sharding flow tables and pinning flows to scan lanes. All five fields
// feed the hash; the SplitMix64 finalizer spreads them so that flows
// differing only in a port still land on different shards.
func (t FiveTuple) Hash64() uint64 {
	h := uint64(t.SrcIP)<<32 | uint64(t.DstIP)
	h ^= uint64(t.SrcPort)<<16 ^ uint64(t.DstPort) ^ uint64(t.Proto)<<40
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	return h ^ h>>31
}

// String renders the tuple in the usual "proto src > dst" form.
func (t FiveTuple) String() string {
	proto := fmt.Sprintf("ip(%d)", t.Proto)
	switch t.Proto {
	case ProtoAny:
		proto = "any"
	case ProtoICMP:
		proto = "icmp"
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d > %s:%d", proto, ipString(t.SrcIP), t.SrcPort, ipString(t.DstIP), t.DstPort)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Prefix is an IPv4 CIDR prefix. Bits==0 matches any address.
type Prefix struct {
	Addr uint32
	Bits int
}

// AnyPrefix is the match-all prefix.
var AnyPrefix = Prefix{}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip uint32) bool {
	if p.Bits <= 0 {
		return true
	}
	if p.Bits > 32 {
		return false
	}
	mask := ^uint32(0) << uint(32-p.Bits)
	return ip&mask == p.Addr&mask
}

// PortRange is an inclusive port interval. The zero value (0,0) matches
// any port.
type PortRange struct {
	Lo, Hi uint16
}

// AnyPort matches every port.
var AnyPort = PortRange{}

// Contains reports whether port falls inside the range.
func (r PortRange) Contains(port uint16) bool {
	if r.Lo == 0 && r.Hi == 0 {
		return true
	}
	return port >= r.Lo && port <= r.Hi
}

// HeaderRule is the 5-tuple classification part of a rule.
type HeaderRule struct {
	Proto    byte // ProtoAny matches everything
	SrcNet   Prefix
	DstNet   Prefix
	SrcPorts PortRange
	DstPorts PortRange
}

// Matches classifies one header.
func (h HeaderRule) Matches(t FiveTuple) bool {
	if h.Proto != ProtoAny && h.Proto != t.Proto {
		return false
	}
	return h.SrcNet.Contains(t.SrcIP) && h.DstNet.Contains(t.DstIP) &&
		h.SrcPorts.Contains(t.SrcPort) && h.DstPorts.Contains(t.DstPort)
}

// Content is one payload requirement with Snort location semantics: the
// string must start at or after Offset, and when Depth > 0 it must lie
// entirely within the Depth-byte search window starting at Offset (so
// Depth must be at least len(Data); NewEngine validates this, as Snort
// does).
type Content struct {
	Data   []byte
	Offset int
	Depth  int
}

// allows reports whether a match starting at `start` satisfies the
// location constraint.
func (c Content) allows(start int) bool {
	if start < c.Offset {
		return false
	}
	if c.Depth > 0 && start+len(c.Data) > c.Offset+c.Depth {
		return false
	}
	return true
}

// Rule is one complete NIDS rule: header classification plus one or more
// content requirements, all of which must be satisfied.
type Rule struct {
	ID       int
	Name     string
	Header   HeaderRule
	Contents []Content
}

// Alert reports one rule firing on one packet.
type Alert struct {
	PacketID int
	RuleID   int
	RuleName string
}

// contentRef ties a deduplicated pattern back to (rule, content index).
type contentRef struct {
	rule int // index into Engine.rules
	idx  int // index into Rule.Contents
}

// Engine is a compiled NIDS: one string-matching machine over the union of
// all content strings (deduplicated — the paper's accelerator searches
// "6,275 unique strings" extracted from many more rules), plus the header
// classifier and per-rule content accounting.
type Engine struct {
	rules   []Rule
	machine *core.Machine
	// refs[patternID] lists every (rule, content) the pattern serves.
	refs map[int32][]contentRef
	set  *ruleset.Set
}

// NewEngine compiles rules. Every rule must have at least one content
// requirement (pure header rules belong to a classifier, not a DPI
// engine) and a unique ID.
func NewEngine(rules []Rule) (*Engine, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("nids: no rules")
	}
	e := &Engine{refs: make(map[int32][]contentRef)}
	seenID := map[int]bool{}
	byContent := map[string]int{} // content bytes -> pattern ID
	e.set = &ruleset.Set{}
	for ri, r := range rules {
		if len(r.Contents) == 0 {
			return nil, fmt.Errorf("nids: rule %d (%s) has no content requirements", r.ID, r.Name)
		}
		if len(r.Contents) > 32 {
			return nil, fmt.Errorf("nids: rule %d has %d contents; the evaluator tracks at most 32", r.ID, len(r.Contents))
		}
		if seenID[r.ID] {
			return nil, fmt.Errorf("nids: duplicate rule ID %d", r.ID)
		}
		seenID[r.ID] = true
		for ci, c := range r.Contents {
			if len(c.Data) == 0 {
				return nil, fmt.Errorf("nids: rule %d content %d is empty", r.ID, ci)
			}
			if c.Offset < 0 || c.Depth < 0 {
				return nil, fmt.Errorf("nids: rule %d content %d has negative offset/depth", r.ID, ci)
			}
			if c.Depth > 0 && c.Depth < len(c.Data) {
				return nil, fmt.Errorf("nids: rule %d content %d: depth %d below content length %d",
					r.ID, ci, c.Depth, len(c.Data))
			}
			key := string(c.Data)
			pid, ok := byContent[key]
			if !ok {
				pid = len(e.set.Patterns)
				byContent[key] = pid
				e.set.Patterns = append(e.set.Patterns, ruleset.Pattern{
					ID:   pid,
					Data: append([]byte(nil), c.Data...),
					Name: fmt.Sprintf("content-%d", pid),
				})
			}
			e.refs[int32(pid)] = append(e.refs[int32(pid)], contentRef{rule: ri, idx: ci})
		}
		e.rules = append(e.rules, r)
	}
	m, err := core.Build(e.set, core.Options{})
	if err != nil {
		return nil, err
	}
	e.machine = m
	return e, nil
}

// NumPatterns returns the number of unique content strings compiled — the
// quantity the paper's Table II columns are parameterized by.
func (e *Engine) NumPatterns() int { return e.set.Len() }

// Rules returns the compiled rules.
func (e *Engine) Rules() []Rule { return e.rules }

// Inspect evaluates one packet: header classification gates which rules
// are candidates, a single scan of the payload finds all content strings,
// and a rule fires when every one of its contents matched within its
// location constraint. Alerts are reported in rule order, at most once per
// rule per packet.
func (e *Engine) Inspect(packetID int, hdr FiveTuple, payload []byte) []Alert {
	// Candidate rules by header.
	candidate := make([]bool, len(e.rules))
	anyCandidate := false
	for i, r := range e.rules {
		if r.Header.Matches(hdr) {
			candidate[i] = true
			anyCandidate = true
		}
	}
	if !anyCandidate || len(payload) == 0 {
		return nil
	}
	// One matching pass over the payload, shared by every rule.
	satisfied := make([]int, len(e.rules)) // bitmask of satisfied contents
	sc := e.machine.NewScanner()
	sc.Scan(payload, func(m ac.Match) {
		start := m.End - len(e.set.Patterns[m.PatternID].Data)
		for _, ref := range e.refs[m.PatternID] {
			if !candidate[ref.rule] {
				continue
			}
			if e.rules[ref.rule].Contents[ref.idx].allows(start) {
				satisfied[ref.rule] |= 1 << uint(ref.idx)
			}
		}
	})
	var alerts []Alert
	for i, r := range e.rules {
		if !candidate[i] {
			continue
		}
		want := 1<<uint(len(r.Contents)) - 1
		if satisfied[i] == want {
			alerts = append(alerts, Alert{PacketID: packetID, RuleID: r.ID, RuleName: r.Name})
		}
	}
	return alerts
}

// IPv4 packs four octets into the uint32 address form used here.
func IPv4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}
