package nids

// A parser for a compact Snort-style rule syntax:
//
//	alert tcp 10.0.0.0/8 any -> any 80 (msg:"phf access"; content:"/cgi-bin/phf"; offset:0; depth:64;)
//	alert udp any any -> any 1434 (msg:"slammer"; content:"|04 01 01 01|";)
//
// Supported header fields: action (alert only), protocol (tcp/udp/icmp/ip),
// source/destination as CIDR or "any", ports as N, N:M or "any". Options:
// msg, content (ParseContent syntax with |hex|), and offset/depth, which
// qualify the preceding content.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ruleset"
)

// ParseRules reads one rule per line; blank lines and #-comments skipped.
// Rule IDs are assigned sequentially from 0.
func ParseRules(r io.Reader) ([]Rule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var rules []Rule
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		rule.ID = len(rules)
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("nids: no rules")
	}
	return rules, nil
}

// ParseRule parses one rule line (without assigning an ID).
func ParseRule(line string) (Rule, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(line), ")") {
		return Rule{}, fmt.Errorf("nids: missing option block in %q", line)
	}
	head := strings.Fields(strings.TrimSpace(line[:open]))
	if len(head) != 7 {
		return Rule{}, fmt.Errorf("nids: header needs 7 fields (action proto src sport -> dst dport), got %d", len(head))
	}
	if head[0] != "alert" {
		return Rule{}, fmt.Errorf("nids: unsupported action %q", head[0])
	}
	if head[4] != "->" {
		return Rule{}, fmt.Errorf("nids: expected '->', got %q", head[4])
	}
	var hr HeaderRule
	var err error
	if hr.Proto, err = parseProto(head[1]); err != nil {
		return Rule{}, err
	}
	if hr.SrcNet, err = parsePrefix(head[2]); err != nil {
		return Rule{}, err
	}
	if hr.SrcPorts, err = parsePorts(head[3]); err != nil {
		return Rule{}, err
	}
	if hr.DstNet, err = parsePrefix(head[5]); err != nil {
		return Rule{}, err
	}
	if hr.DstPorts, err = parsePorts(head[6]); err != nil {
		return Rule{}, err
	}

	body := strings.TrimSpace(line[open:])
	body = strings.TrimPrefix(body, "(")
	body = strings.TrimSuffix(body, ")")
	opts, err := splitOptions(body)
	if err != nil {
		return Rule{}, err
	}
	rule := Rule{Header: hr}
	for _, opt := range opts {
		key, val, found := strings.Cut(opt, ":")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if !found {
			return Rule{}, fmt.Errorf("nids: malformed option %q", opt)
		}
		switch key {
		case "msg":
			rule.Name = strings.Trim(val, `"`)
		case "content":
			content := strings.Trim(val, `"`)
			data, err := ruleset.ParseContent(content)
			if err != nil {
				return Rule{}, fmt.Errorf("nids: content: %w", err)
			}
			rule.Contents = append(rule.Contents, Content{Data: data})
		case "offset", "depth":
			if len(rule.Contents) == 0 {
				return Rule{}, fmt.Errorf("nids: %s before any content", key)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("nids: bad %s %q", key, val)
			}
			c := &rule.Contents[len(rule.Contents)-1]
			if key == "offset" {
				c.Offset = n
			} else {
				c.Depth = n
			}
		default:
			return Rule{}, fmt.Errorf("nids: unsupported option %q", key)
		}
	}
	if len(rule.Contents) == 0 {
		return Rule{}, fmt.Errorf("nids: rule has no content option")
	}
	return rule, nil
}

// splitOptions splits "a:1; b:\"x;y\"; c:2" on semicolons outside quotes.
func splitOptions(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ';' && !inQuote:
			if t := strings.TrimSpace(cur.String()); t != "" {
				out = append(out, t)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("nids: unterminated quote in options %q", s)
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out, nil
}

func parseProto(s string) (byte, error) {
	switch s {
	case "ip", "any":
		return ProtoAny, nil
	case "tcp":
		return ProtoTCP, nil
	case "udp":
		return ProtoUDP, nil
	case "icmp":
		return ProtoICMP, nil
	}
	return 0, fmt.Errorf("nids: unsupported protocol %q", s)
}

func parsePrefix(s string) (Prefix, error) {
	if s == "any" {
		return AnyPrefix, nil
	}
	addr, bitsStr, hasBits := strings.Cut(s, "/")
	bits := 32
	if hasBits {
		var err error
		bits, err = strconv.Atoi(bitsStr)
		if err != nil || bits < 0 || bits > 32 {
			return Prefix{}, fmt.Errorf("nids: bad prefix length in %q", s)
		}
	}
	parts := strings.Split(addr, ".")
	if len(parts) != 4 {
		return Prefix{}, fmt.Errorf("nids: bad IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		o, err := strconv.Atoi(p)
		if err != nil || o < 0 || o > 255 {
			return Prefix{}, fmt.Errorf("nids: bad IPv4 octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(o)
	}
	return Prefix{Addr: ip, Bits: bits}, nil
}

func parsePorts(s string) (PortRange, error) {
	if s == "any" {
		return AnyPort, nil
	}
	lo, hi, isRange := strings.Cut(s, ":")
	l, err := strconv.Atoi(lo)
	if err != nil || l < 1 || l > 65535 {
		return PortRange{}, fmt.Errorf("nids: bad port %q", s)
	}
	h := l
	if isRange {
		h, err = strconv.Atoi(hi)
		if err != nil || h < l || h > 65535 {
			return PortRange{}, fmt.Errorf("nids: bad port range %q", s)
		}
	}
	return PortRange{Lo: uint16(l), Hi: uint16(h)}, nil
}
