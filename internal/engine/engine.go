// Package engine runs many scans concurrently over one shared compressed
// automaton, mirroring the paper's hardware parallelism in software: an
// FPGA string matching block holds 6 engines reading the same block memory,
// and a device holds several blocks (§IV.B). Here the immutable
// core.Grouped plays the role of the block memory, and a pooled set of
// Scanners — one per group machine — plays the role of one hardware engine.
//
// Two usage shapes are exposed, matching the two ways traffic reaches a
// DPI system:
//
//   - ScanPackets: batch mode. A slice of independent payloads is sharded
//     across a worker pool; results come back merged in canonical order.
//   - Flow: streaming mode. Each concurrent TCP/UDP flow gets its own
//     scanner state (checked out of the pool) while sharing the compiled
//     automaton, so millions of flows cost per-flow state only, never
//     per-flow automata.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ac"
	"repro/internal/core"
)

// Engine is a fixed-size worker pool over a shared immutable automaton.
// The Engine itself is safe for concurrent use: ScanPackets may be called
// from many goroutines at once, and Flows may be opened and written
// concurrently (each individual Flow is single-goroutine, like a socket).
//
// Engines replicate freely: because the automaton is immutable, any number
// of Engines may be built over the same core.Grouped and run side by side —
// the software analogue of the paper's replicated string matching blocks. A
// sharding front-end (the gateway) builds one Engine per shard and routes
// partitioned traffic at them; Stats gives each shard's handle its own work
// counters so the fan-out is observable per replica.
type Engine struct {
	g       *core.Grouped
	workers int
	// scanners pools scanner sets (one Scanner per group machine). A set is
	// the software analogue of one hardware engine; pooling keeps steady-
	// state scanning allocation-free however many batches and flows come
	// and go.
	scanners sync.Pool

	batches     atomic.Uint64
	batchPkts   atomic.Uint64
	batchBytes  atomic.Uint64
	flowsOpened atomic.Uint64
	streamBytes atomic.Uint64
	panics      atomic.Uint64

	// recoverOn arms per-packet panic containment on the batch path and
	// onPanic, when non-nil, observes every recovered panic (see SetRecover).
	// Both are written before the engine is shared.
	recoverOn bool
	onPanic   func(v any)
}

// Stats is a point-in-time snapshot of one engine's work, split by the two
// usage shapes. A multi-engine front-end reads one Stats per shard to see
// how traffic fanned out across its replicas.
type Stats struct {
	Batches     uint64 // ScanPackets/ScanPacketsInto calls
	BatchPkts   uint64 // payloads scanned across those batches
	BatchBytes  uint64 // payload bytes scanned in batch mode
	FlowsOpened uint64 // Flow checkouts from the pool
	StreamBytes uint64 // bytes written through flows (gap skips excluded)
	Panics      uint64 // panics recovered inside batch workers (see SetRecover)
}

// scannerSet is one pooled scan lane: one Scanner per group machine. The
// pool stores *scannerSet so checking a lane in and out never boxes a
// slice header into an interface — that single allocation per batch (and
// per flow open) is visible at gateway packet rates.
type scannerSet struct {
	set []*core.Scanner
}

// New builds an engine over g with the given worker-pool size for batch
// scans. workers <= 0 selects GOMAXPROCS — one lane per available core.
func New(g *core.Grouped, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{g: g, workers: workers}
	e.scanners.New = func() any {
		ss := &scannerSet{set: make([]*core.Scanner, len(g.Machines))}
		for i, m := range g.Machines {
			ss.set[i] = m.NewScanner()
		}
		return ss
	}
	return e
}

// Workers returns the batch-scan worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Backend reports the scan backend every pooled scanner lane runs, as
// resolved by the group machines at build time (all group machines share
// one Options, so one name describes the whole set).
func (e *Engine) Backend() string {
	if len(e.g.Machines) == 0 {
		return ""
	}
	return e.g.Machines[0].DefaultBackend()
}

// Generation reports the compile generation of the automaton this engine
// scans with (core.Grouped.Generation) — every scanner set the pool hands
// out carries the same tag, so an engine is generation-homogeneous by
// construction. A multi-generation front-end (hot ruleset reload) builds
// one engine per (shard, generation) and retires whole engines, never
// mixing scanner state across automatons.
func (e *Engine) Generation() uint64 { return e.g.Generation }

// Stats returns this engine's work counters. Counters are monotone but
// mutually unsynchronized, like every stats surface in the pipeline.
func (e *Engine) Stats() Stats {
	return Stats{
		Batches:     e.batches.Load(),
		BatchPkts:   e.batchPkts.Load(),
		BatchBytes:  e.batchBytes.Load(),
		FlowsOpened: e.flowsOpened.Load(),
		StreamBytes: e.streamBytes.Load(),
		Panics:      e.panics.Load(),
	}
}

// SetRecover arms per-packet panic containment on the batch path: a panic
// while scanning one payload (a scanner bug, a hostile input tripping an
// invariant) is recovered inside the worker goroutine — where it would
// otherwise kill the whole process — that payload's matches come back
// empty, the possibly-corrupt scanner set is discarded instead of repooled,
// and fn (when non-nil) observes the panic value. Call before the engine is
// shared across goroutines; fn itself must not panic.
//
// The streaming path (Flow) deliberately does NOT recover: a Flow runs on
// its caller's goroutine, so the caller (the gateway's stream lane) recovers
// at a point where it still knows which flow to quarantine.
func (e *Engine) SetRecover(fn func(v any)) {
	e.recoverOn = true
	e.onPanic = fn
}

// recovered counts one contained batch-worker panic and notifies the hook.
func (e *Engine) recovered(v any) {
	e.panics.Add(1)
	if e.onPanic != nil {
		e.onPanic(v)
	}
}

func (e *Engine) acquire() *scannerSet {
	return e.scanners.Get().(*scannerSet)
}

func (e *Engine) release(ss *scannerSet) {
	e.scanners.Put(ss)
}

// scanPacket scans one payload with a fresh (Reset) scanner set into buf
// (a reusable worker-local buffer) and returns an exact-size copy of the
// packet's matches in canonical (End, PatternID) order, plus the grown
// buffer for the next packet.
func scanPacket(set []*core.Scanner, payload []byte, buf []ac.Match) ([]ac.Match, []ac.Match) {
	buf = buf[:0]
	for _, sc := range set {
		sc.Reset()
		buf = sc.ScanAppend(payload, buf)
	}
	if len(buf) == 0 {
		return nil, buf
	}
	ac.SortMatches(buf)
	out := make([]ac.Match, len(buf))
	copy(out, buf)
	return out, buf
}

// ScanPackets scans each payload as an independent packet across the
// worker pool and returns one match slice per payload, each in canonical
// (End, PatternID) order — element i is exactly what Grouped.FindAll
// would return for payloads[i]. Packets are handed to workers via a shared
// counter, so a batch of wildly mixed payload sizes still load-balances.
func (e *Engine) ScanPackets(payloads [][]byte) [][]ac.Match {
	return e.ScanPacketsInto(payloads, nil)
}

// ScanPacketsInto is ScanPackets reusing results' backing array when it is
// large enough, for callers (like a gateway scanning an endless burst
// sequence) that want steady-state batch scans free of per-batch slice
// allocation. The per-packet match slices are still freshly allocated —
// they are the scan's output and may be retained by the caller.
func (e *Engine) ScanPacketsInto(payloads [][]byte, results [][]ac.Match) [][]ac.Match {
	if cap(results) >= len(payloads) {
		results = results[:len(payloads)]
		for i := range results {
			results[i] = nil
		}
	} else {
		results = make([][]ac.Match, len(payloads))
	}
	if len(payloads) == 0 {
		return results
	}
	e.batches.Add(1)
	e.batchPkts.Add(uint64(len(payloads)))
	var nbytes uint64
	for _, p := range payloads {
		nbytes += uint64(len(p))
	}
	e.batchBytes.Add(nbytes)
	workers := e.workers
	if workers > len(payloads) {
		workers = len(payloads)
	}
	if workers == 1 {
		if !e.recoverOn {
			// The dedicated inline loop (no shared counter, no recover
			// scope) is what the zero-alloc steady-state contract pins.
			ss := e.acquire()
			var buf []ac.Match
			for i, p := range payloads {
				results[i], buf = scanPacket(ss.set, p, buf)
			}
			e.release(ss)
			return results
		}
		var next atomic.Int64
		e.scanLoop(payloads, results, &next)
		return results
	}
	// The goroutine fan-out lives in its own method so its closure does not
	// capture this function's parameters: a captured `results` would be
	// moved to the heap on every call, including single-worker gateways in
	// their zero-alloc steady state.
	e.scanParallel(payloads, results, workers)
	return results
}

// scanParallel shards payloads over workers goroutines via a shared
// counter; workers write disjoint results indices, so no synchronization
// beyond the WaitGroup is needed.
func (e *Engine) scanParallel(payloads [][]byte, results [][]ac.Match, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.scanLoop(payloads, results, &next)
		}()
	}
	wg.Wait()
}

// scanLoop drains payload indices from the shared counter until exhausted.
// With containment armed (SetRecover), the drain runs in recoverable
// segments: a panic ends one segment, discards its possibly-corrupt scanner
// set, and the loop resumes with a fresh one — so one hostile payload costs
// exactly its own matches, never the batch or the process.
func (e *Engine) scanLoop(payloads [][]byte, results [][]ac.Match, next *atomic.Int64) {
	if !e.recoverOn {
		ss := e.acquire()
		defer e.release(ss)
		var buf []ac.Match
		for {
			i := int(next.Add(1)) - 1
			if i >= len(payloads) {
				return
			}
			results[i], buf = scanPacket(ss.set, payloads[i], buf)
		}
	}
	for e.scanSome(payloads, results, next) {
	}
}

// scanSome is one recoverable segment of scanLoop's drain: it reports true
// when a panic was contained (the caller restarts with a fresh scanner set)
// and false when the counter is exhausted. The panicking payload's results
// slot keeps the nil that ScanPacketsInto pre-cleared — no matches — and its
// scanner set is dropped on the floor instead of repooled, because a panic
// mid-scan may have left the set's registers in a state Reset cannot be
// trusted to repair.
func (e *Engine) scanSome(payloads [][]byte, results [][]ac.Match, next *atomic.Int64) (contained bool) {
	ss := e.acquire()
	defer func() {
		if v := recover(); v != nil {
			e.recovered(v)
			contained = true
			return
		}
		e.release(ss)
	}()
	var buf []ac.Match
	for {
		i := int(next.Add(1)) - 1
		if i >= len(payloads) {
			return false
		}
		results[i], buf = scanPacket(ss.set, payloads[i], buf)
	}
}

// Flow is the streaming per-flow scan state: one scanner per group machine,
// checked out of the engine's pool. A Flow is single-goroutine (like the
// socket it shadows); open one Flow per concurrent stream.
type Flow struct {
	e        *Engine
	ss       *scannerSet
	buf      []ac.Match
	consumed int
}

// Flow checks a scanner set out of the pool and returns it as a fresh
// stream positioned at start-of-packet. Call Close when the flow ends to
// return the state to the pool.
func (e *Engine) Flow() *Flow {
	e.flowsOpened.Add(1)
	ss := e.acquire()
	for _, sc := range ss.set {
		sc.Reset()
	}
	return &Flow{e: e, ss: ss}
}

// Write consumes the next chunk and returns the matches whose final byte
// lies in this chunk, sorted by (End, PatternID) with End relative to the
// start of the flow. The returned slice is reused by the next Write; the
// caller must consume (or copy) it before writing again.
func (f *Flow) Write(p []byte) []ac.Match {
	f.buf = f.buf[:0]
	for _, sc := range f.ss.set {
		f.buf = sc.ScanAppend(p, f.buf)
	}
	ac.SortMatches(f.buf)
	f.consumed += len(p)
	f.e.streamBytes.Add(uint64(len(p)))
	return f.buf
}

// Reset rewinds the flow to start-of-packet without returning its scanners
// to the pool: states and the 2-byte default-rule histories are cleared.
func (f *Flow) Reset() {
	for _, sc := range f.ss.set {
		sc.Reset()
	}
	f.consumed = 0
}

// Consumed returns the bytes scanned since the flow was opened or Reset.
func (f *Flow) Consumed() int { return f.consumed }

// Generation reports the compile generation of the scanners backing this
// flow — the same tag for every scanner in the set, since a flow's set
// comes from one engine over one automaton. Zero after Discard or Close.
// The hot-reload oracle audits this against the flow's pinned generation
// to prove no scanner state leaked across a ruleset swap.
func (f *Flow) Generation() uint64 {
	if f.ss == nil || len(f.ss.set) == 0 {
		return 0
	}
	return f.ss.set[0].Generation()
}

// SkipGap records n stream bytes the flow will never see (a reassembly
// gap skipped on timeout): scanner states and histories are invalidated —
// no match may span unseen bytes — while the stream position advances, so
// subsequent matches keep absolute offsets into the flow's true stream.
// n <= 0 is a no-op, mirroring Scanner.SkipAhead: no bytes were skipped,
// so neither the scanners' registers nor the consumed count may move.
func (f *Flow) SkipGap(n int) {
	if n <= 0 {
		return
	}
	for _, sc := range f.ss.set {
		sc.SkipAhead(n)
	}
	f.consumed += n
}

// Discard drops the flow's scanner state WITHOUT returning it to the pool.
// Panic containment uses it for a flow whose scan panicked: the set's
// registers may be mid-update, and repooling it would hand corrupt state to
// an unrelated future flow or batch. The Flow must not be used afterwards;
// Close becomes a no-op.
func (f *Flow) Discard() {
	f.ss = nil
}

// Close returns the flow's scanner state to the engine pool. The Flow must
// not be used afterwards.
func (f *Flow) Close() {
	if f.ss == nil {
		return
	}
	f.e.release(f.ss)
	f.ss = nil
}
