//go:build !race

package engine

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation makes testing.AllocsPerRun unstable.
const raceEnabled = false
