package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ac"
	"repro/internal/core"
	"repro/internal/ruleset"
)

func buildGrouped(t testing.TB, n, groups int) *core.Grouped {
	t.Helper()
	set, err := ruleset.Generate(ruleset.GenConfig{N: n, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.BuildGrouped(set, groups, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func payloadWith(set *ruleset.Set, id int) []byte {
	for _, p := range set.Patterns {
		if p.ID == id {
			return append(append([]byte(".. "), p.Data...), []byte(" ..")...)
		}
	}
	return nil
}

func TestScanPacketsPerPacketEqualsFindAll(t *testing.T) {
	g := buildGrouped(t, 300, 2)
	var payloads [][]byte
	for id := 0; id < 40; id++ {
		payloads = append(payloads, payloadWith(g.Sets[id%2], id))
	}
	e := New(g, 4)
	got := e.ScanPackets(payloads)
	if len(got) != len(payloads) {
		t.Fatalf("got %d results for %d payloads", len(got), len(payloads))
	}
	for i, p := range payloads {
		want := g.FindAll(p)
		if !ac.MatchesEqual(append([]ac.Match(nil), got[i]...), want) {
			t.Fatalf("packet %d: engine %v, FindAll %v", i, got[i], want)
		}
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	g := buildGrouped(t, 200, 1)
	var payloads [][]byte
	for id := 0; id < 17; id++ {
		payloads = append(payloads, payloadWith(g.Sets[0], id))
	}
	want := New(g, 1).ScanPackets(payloads)
	for _, workers := range []int{2, 3, 8, 64} {
		got := New(g, workers).ScanPackets(payloads)
		for i := range want {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("workers=%d packet %d: %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestFlowPoolReuseIsClean(t *testing.T) {
	g := buildGrouped(t, 100, 1)
	e := New(g, 1)
	target := g.Sets[0].Patterns[0].Data

	// Leave a flow mid-pattern, close it, and ensure the recycled state
	// does not leak into the next flow.
	f := e.Flow()
	f.Write(target[:len(target)-1])
	f.Close()

	f2 := e.Flow()
	defer f2.Close()
	if ms := f2.Write(target[len(target)-1:]); len(ms) != 0 {
		t.Fatalf("stale pooled scanner state produced matches: %v", ms)
	}
}

func TestConcurrentFlowsShareOneAutomaton(t *testing.T) {
	g := buildGrouped(t, 300, 3)
	e := New(g, 0)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := i % 60
			payload := payloadWith(g.Sets[id%3], id)
			want := g.FindAll(payload)
			f := e.Flow()
			defer f.Close()
			var got []ac.Match
			for off := 0; off < len(payload); off++ {
				got = append(got, f.Write(payload[off:off+1])...)
			}
			if !ac.MatchesEqual(got, want) {
				errs <- fmt.Sprintf("flow %d: got %v, want %v", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestFlowSkipGap: a gap skip invalidates match state across the unseen
// bytes while keeping later match offsets absolute in the stream.
func TestFlowSkipGap(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{{ID: 0, Data: []byte("needle"), Name: "needle"}}}
	g, err := core.BuildGrouped(set, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, 1)
	f := e.Flow()
	defer f.Close()
	f.Write([]byte("xxneed")) // half a match, then 10 unseen bytes
	f.SkipGap(10)
	if ms := f.Write([]byte("le")); len(ms) != 0 {
		t.Fatalf("match spans a gap: %+v", ms)
	}
	if f.Consumed() != 18 {
		t.Fatalf("Consumed = %d, want 18", f.Consumed())
	}
	ms := f.Write([]byte("..needle"))
	if len(ms) != 1 || ms[0].End != 26 {
		t.Fatalf("post-gap match = %+v, want End 26 (absolute)", ms)
	}
}

// TestStatsCounters pins the per-engine work accounting a sharded
// front-end reads per replica: batch calls/packets/bytes from
// ScanPackets, flow checkouts and streamed bytes from the Flow API, and
// independence between two engines over the same automaton.
func TestStatsCounters(t *testing.T) {
	g := buildGrouped(t, 100, 1)
	e := New(g, 2)
	other := New(g, 2) // a sibling shard: its counters must stay untouched

	payloads := [][]byte{[]byte("abcd"), []byte("efghij"), nil}
	e.ScanPackets(payloads)
	e.ScanPackets(payloads[:1])

	f := e.Flow()
	f.Write([]byte("hello"))
	f.Write([]byte("wo"))
	f.SkipGap(100) // unseen bytes: not streamed through the scanner
	f.Close()

	st := e.Stats()
	want := Stats{Batches: 2, BatchPkts: 4, BatchBytes: 14, FlowsOpened: 1, StreamBytes: 7}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
	if o := other.Stats(); o != (Stats{}) {
		t.Fatalf("sibling engine counters moved: %+v", o)
	}
	// An empty batch is a no-op, not a counted batch.
	e.ScanPackets(nil)
	if st := e.Stats(); st.Batches != 2 {
		t.Fatalf("empty batch counted: %+v", st)
	}
}

// TestScanPacketsIntoSteadyStateZeroAlloc locks in the batch lane's
// contract: with a single worker (no goroutine fan-out) and a reused
// results buffer, a match-free burst costs zero allocations per batch.
// (Packets with matches still allocate their exact-size output slices —
// those are the scan's product and may be retained by the caller.)
func TestScanPacketsIntoSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("needle"), Name: "needle"},
		{ID: 1, Data: []byte("haystack"), Name: "haystack"},
	}}
	g, err := core.BuildGrouped(set, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, 1)
	payloads := make([][]byte, 16)
	for i := range payloads {
		payloads[i] = []byte("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	}
	results := e.ScanPacketsInto(payloads, nil) // warm-up sizes the buffer
	allocs := testing.AllocsPerRun(20, func() {
		results = e.ScanPacketsInto(payloads, results)
	})
	if allocs != 0 {
		t.Fatalf("ScanPacketsInto allocated %.1f times per batch in steady state", allocs)
	}
	for i, ms := range results {
		if len(ms) != 0 {
			t.Fatalf("packet %d unexpectedly matched: %+v", i, ms)
		}
	}
}
