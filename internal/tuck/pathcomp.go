package tuck

import (
	"fmt"
	"math/bits"

	"repro/internal/ac"
	"repro/internal/ruleset"
)

// Path compression ([13] §4.2) collapses maximal chains of single-child
// states into byte-run segments. A state of the compressed automaton is a
// (node, offset) pair: branch nodes keep the 256-bit bitmap discipline,
// path nodes are indexed by position within the run. Failure pointers must
// be kept per position, because a mismatch can occur anywhere inside a run.

// Memory layout constants per the structure description in [13]:
// a path node position stores its character (1 byte), a failure pointer
// (4 bytes) and a match-list reference (4 bytes); a path node additionally
// stores a 4-byte next pointer and a 1-byte length; branch nodes reuse the
// bitmap node layout with a 4-byte per-child reference table (children are
// heterogeneous, so popcount indexes into a pointer table rather than a
// contiguous node array).
const (
	pathPosBytes        = 1 + 4 + 4
	pathHeaderBytes     = 4 + 1
	branchNodeBaseBytes = 32 + 4 + 4 // bitmap + fail + match reference
	branchChildRefBytes = 4
)

// Ref addresses a state of the path-compressed automaton.
type Ref struct {
	Node int32 // index into PathAC.Branches (Kind false) or PathAC.Paths (Kind true)
	Off  int32 // position within a path run; 0 for branch nodes
	Path bool  // true when the ref points into a path node
}

// RootRef is the start state.
var RootRef = Ref{Node: 0}

// PathPos is one collapsed trie state inside a run.
type PathPos struct {
	Char    byte
	Fail    Ref
	Out     []int32
	OutLink Ref
	HasOutL bool
}

// PathNode is a maximal single-child chain.
type PathNode struct {
	Run      []PathPos
	Next     Ref  // the branch state reached on NextChar from the last position
	NextChar byte // character labeling the transition into Next
	Leaf     bool // true when the chain ends the string (Next invalid)
}

// BranchNode is a state with 0 or ≥2 children (or the root).
type BranchNode struct {
	Bitmap   [4]uint64
	Children []Ref // sorted by character, popcount-indexed
	Fail     Ref
	Out      []int32
	OutLink  Ref
	HasOutL  bool
}

// PathAC is the path-compressed automaton.
type PathAC struct {
	Branches []BranchNode
	Paths    []PathNode
	Steps    int64
	Chars    int64
}

// BuildPath constructs the path-compressed automaton for set.
func BuildPath(set *ruleset.Set) (*PathAC, error) {
	trie, err := ac.New(set)
	if err != nil {
		return nil, fmt.Errorf("tuck: %w", err)
	}
	p := &PathAC{}
	refOf := make([]Ref, trie.NumStates())

	// Pass 1: partition trie states into branch nodes and path runs.
	// A state joins a run when it has exactly one child and is not the
	// root; runs are maximal downward chains.
	isPathState := func(s int32) bool {
		return s != ac.Root && len(trie.Nodes[s].Edges) == 1
	}
	// Allocate refs: walk from the root; chains started by a branch node's
	// child are collapsed greedily.
	var walk func(s int32)
	walk = func(s int32) {
		if isPathState(s) {
			// Collapse the maximal chain starting at s.
			pn := PathNode{}
			idx := int32(len(p.Paths))
			p.Paths = append(p.Paths, PathNode{})
			cur := s
			for {
				refOf[cur] = Ref{Node: idx, Off: int32(len(pn.Run)), Path: true}
				pn.Run = append(pn.Run, PathPos{Char: trie.Nodes[cur].Char})
				child := trie.Nodes[cur].Edges[0].To
				if !isPathState(child) {
					// Child is a branch (or leaf with 0/≥2 edges): close run.
					if len(trie.Nodes[child].Edges) == 0 && child != ac.Root {
						// The chain ends in a leaf state: absorb it too.
						refOf[child] = Ref{Node: idx, Off: int32(len(pn.Run)), Path: true}
						pn.Run = append(pn.Run, PathPos{Char: trie.Nodes[child].Char})
						pn.Leaf = true
						p.Paths[idx] = pn
						return
					}
					p.Paths[idx] = pn // Next filled in pass 2
					walk(child)
					return
				}
				cur = child
			}
		}
		// Branch node (root, leaf, or fan-out state).
		refOf[s] = Ref{Node: int32(len(p.Branches))}
		p.Branches = append(p.Branches, BranchNode{})
		for _, e := range trie.Nodes[s].Edges {
			walk(e.To)
		}
	}
	// The walk must start runs at children of branch nodes, so handle the
	// root first and descend.
	refOf[ac.Root] = Ref{Node: 0}
	p.Branches = append(p.Branches, BranchNode{})
	for _, e := range trie.Nodes[ac.Root].Edges {
		walk(e.To)
	}

	// Pass 2: fill node contents now that every state has a ref.
	for s := int32(0); s < int32(trie.NumStates()); s++ {
		nd := trie.Nodes[s]
		ref := refOf[s]
		fail := refOf[nd.Fail]
		outLink, hasOutL := Ref{}, false
		if nd.OutLink != ac.None {
			outLink, hasOutL = refOf[nd.OutLink], true
		}
		if ref.Path {
			pos := &p.Paths[ref.Node].Run[ref.Off]
			pos.Fail = fail
			pos.Out = append([]int32(nil), nd.Out...)
			pos.OutLink = outLink
			pos.HasOutL = hasOutL
			// Close the run's Next when this is the last position and the
			// chain continues into a branch node.
			pn := &p.Paths[ref.Node]
			if int(ref.Off) == len(pn.Run)-1 && !pn.Leaf {
				next := nd.Edges[0].To
				pn.Next = refOf[next]
				pn.NextChar = trie.Nodes[next].Char
			}
		} else {
			bn := &p.Branches[ref.Node]
			bn.Fail = fail
			bn.Out = append([]int32(nil), nd.Out...)
			bn.OutLink = outLink
			bn.HasOutL = hasOutL
			for _, e := range nd.Edges {
				bn.Bitmap[e.Char>>6] |= 1 << (uint(e.Char) & 63)
				bn.Children = append(bn.Children, refOf[e.To])
			}
		}
	}
	if got := p.countStates(); got != trie.NumStates() {
		return nil, fmt.Errorf("tuck: path compression lost states: %d != %d", got, trie.NumStates())
	}
	return p, nil
}

func (p *PathAC) countStates() int {
	n := len(p.Branches)
	for i := range p.Paths {
		n += len(p.Paths[i].Run)
	}
	return n
}

// gotoStep attempts the goto transition from state r on c; ok reports
// whether one exists.
func (p *PathAC) gotoStep(r Ref, c byte) (Ref, bool) {
	if r.Path {
		pn := &p.Paths[r.Node]
		if int(r.Off) < len(pn.Run)-1 {
			if pn.Run[r.Off+1].Char == c {
				return Ref{Node: r.Node, Off: r.Off + 1, Path: true}, true
			}
			return Ref{}, false
		}
		// Last position of the run: the only goto leads into the branch
		// node that terminated the chain.
		if pn.Leaf || pn.NextChar != c {
			return Ref{}, false
		}
		return pn.Next, true
	}
	bn := &p.Branches[r.Node]
	if bn.Bitmap[c>>6]&(1<<(uint(c)&63)) == 0 {
		return Ref{}, false
	}
	// Popcount rank into the child table.
	rank := 0
	for w := 0; w < int(c>>6); w++ {
		rank += bits.OnesCount64(bn.Bitmap[w])
	}
	rank += bits.OnesCount64(bn.Bitmap[c>>6] & ((1 << (uint(c) & 63)) - 1))
	return bn.Children[rank], true
}

func (p *PathAC) failOf(r Ref) Ref {
	if r.Path {
		return p.Paths[r.Node].Run[r.Off].Fail
	}
	return p.Branches[r.Node].Fail
}

// Scan matches data, counting automaton steps.
func (p *PathAC) Scan(data []byte, emit func(ac.Match)) {
	s := RootRef
	for i, c := range data {
		p.Chars++
		for {
			p.Steps++
			if next, ok := p.gotoStep(s, c); ok {
				s = next
				break
			}
			if s == RootRef {
				break
			}
			s = p.failOf(s)
		}
		p.emitOutputs(s, i+1, emit)
	}
}

func (p *PathAC) emitOutputs(r Ref, end int, emit func(ac.Match)) {
	for {
		var out []int32
		var link Ref
		var hasLink bool
		if r.Path {
			pos := &p.Paths[r.Node].Run[r.Off]
			out, link, hasLink = pos.Out, pos.OutLink, pos.HasOutL
		} else {
			bn := &p.Branches[r.Node]
			out, link, hasLink = bn.Out, bn.OutLink, bn.HasOutL
		}
		for _, id := range out {
			emit(ac.Match{PatternID: id, End: end})
		}
		if !hasLink {
			return
		}
		r = link
	}
}

// FindAll returns all matches in data.
func (p *PathAC) FindAll(data []byte) []ac.Match {
	var out []ac.Match
	p.Scan(data, func(m ac.Match) { out = append(out, m) })
	return out
}

// StepsPerChar reports average automaton steps per scanned character.
func (p *PathAC) StepsPerChar() float64 {
	if p.Chars == 0 {
		return 0
	}
	return float64(p.Steps) / float64(p.Chars)
}

// MemoryBytes returns the structure's footprint under the documented
// layout constants.
func (p *PathAC) MemoryBytes() int {
	total := 0
	for i := range p.Branches {
		bn := &p.Branches[i]
		total += branchNodeBaseBytes + len(bn.Children)*branchChildRefBytes
		total += len(bn.Out) * matchEntryBytes
	}
	for i := range p.Paths {
		pn := &p.Paths[i]
		total += pathHeaderBytes + len(pn.Run)*pathPosBytes
		for j := range pn.Run {
			total += len(pn.Run[j].Out) * matchEntryBytes
		}
	}
	return total
}
