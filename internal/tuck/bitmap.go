// Package tuck implements the two baselines the paper compares against in
// Table III, from Tuck, Sherwood, Calder and Varghese, "Deterministic
// memory-efficient string matching algorithms for intrusion detection"
// (INFOCOM 2004) — reference [13]:
//
//   - bitmap compression: every node carries a 256-bit bitmap; child
//     pointers are recovered by population count over the bitmap prefix, so
//     a node stores one base pointer instead of 256;
//   - path compression: maximal chains of single-child nodes are collapsed
//     into byte-run segments with per-position failure pointers.
//
// Both schemes keep the Aho-Corasick *failure* discipline, so they cannot
// guarantee one character per cycle — the paper's central contrast: "Both
// schemes also use fail pointers, meaning that they cannot guarantee the
// processing of a character on every clock cycle." The matchers here count
// automaton steps to expose exactly that behaviour, and the memory
// accounting reproduces the node layouts for Table III.
package tuck

import (
	"fmt"
	"math/bits"

	"repro/internal/ac"
	"repro/internal/ruleset"
)

// Memory layout constants for the bitmap scheme, per node:
// 32-byte bitmap + 4-byte first-child base pointer + 4-byte failure pointer
// + 4-byte match-list reference. Hardware implementations pad nodes to an
// aligned power-of-two line; MemoryBytes exposes both raw and aligned
// figures.
const (
	bitmapNodeRawBytes     = 32 + 4 + 4 + 4
	bitmapNodeAlignedBytes = 64
	matchEntryBytes        = 4 // one stored pattern ID in the match lists
)

// BitmapNode is one state of the bitmap-compressed automaton. Children are
// stored contiguously (BFS order) starting at FirstChild and indexed by the
// population count of the bitmap below the input character.
type BitmapNode struct {
	Bitmap     [4]uint64
	FirstChild int32
	Fail       int32
	OutLink    int32
	Out        []int32
}

// HasChild reports whether the node has a goto transition on c.
func (n *BitmapNode) HasChild(c byte) bool {
	return n.Bitmap[c>>6]&(1<<(uint(c)&63)) != 0
}

// ChildIndex returns the rank of c among the node's set bitmap bits; only
// valid when HasChild(c).
func (n *BitmapNode) ChildIndex(c byte) int32 {
	word := int(c >> 6)
	bit := uint(c) & 63
	rank := 0
	for w := 0; w < word; w++ {
		rank += bits.OnesCount64(n.Bitmap[w])
	}
	rank += bits.OnesCount64(n.Bitmap[word] & ((1 << bit) - 1))
	return int32(rank)
}

// BitmapAC is the bitmap-compressed Aho-Corasick automaton of [13] §4.1.
type BitmapAC struct {
	Nodes []BitmapNode
	// Steps / Chars count automaton transitions and input characters, as in
	// ac.FailMatcher; fail transitions make Steps/Chars exceed 1.
	Steps int64
	Chars int64
}

// BuildBitmap constructs the automaton for set. Nodes are renumbered in BFS
// order so that each node's children occupy a contiguous block, which is
// what makes popcount indexing possible.
func BuildBitmap(set *ruleset.Set) (*BitmapAC, error) {
	trie, err := ac.New(set)
	if err != nil {
		return nil, fmt.Errorf("tuck: %w", err)
	}
	n := trie.NumStates()
	order := make([]int32, 0, n) // BFS order of old IDs
	newID := make([]int32, n)    // old -> new
	order = append(order, ac.Root)
	for i := 0; i < len(order); i++ {
		for _, e := range trie.Nodes[order[i]].Edges {
			order = append(order, e.To)
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("tuck: BFS visited %d of %d states", len(order), n)
	}
	for idx, old := range order {
		newID[old] = int32(idx)
	}
	b := &BitmapAC{Nodes: make([]BitmapNode, n)}
	// Children of order[i] appear contiguously in BFS order; compute each
	// node's FirstChild as a running offset.
	next := int32(1)
	for idx, old := range order {
		src := trie.Nodes[old]
		node := &b.Nodes[idx]
		node.FirstChild = next
		next += int32(len(src.Edges))
		for _, e := range src.Edges {
			node.Bitmap[e.Char>>6] |= 1 << (uint(e.Char) & 63)
		}
		node.Fail = newID[src.Fail]
		if src.OutLink == ac.None {
			node.OutLink = -1
		} else {
			node.OutLink = newID[src.OutLink]
		}
		node.Out = append([]int32(nil), src.Out...)
	}
	return b, nil
}

// step performs one goto/fail resolution from state s on input c,
// counting every probe as an automaton step (one memory access each).
func (b *BitmapAC) step(s int32, c byte) int32 {
	for {
		b.Steps++
		node := &b.Nodes[s]
		if node.HasChild(c) {
			return node.FirstChild + node.ChildIndex(c)
		}
		if s == 0 {
			return 0
		}
		s = node.Fail
	}
}

// Scan matches data against the automaton, emitting matches.
func (b *BitmapAC) Scan(data []byte, emit func(ac.Match)) {
	s := int32(0)
	for i, c := range data {
		b.Chars++
		s = b.step(s, c)
		for cur := s; cur != -1; {
			node := &b.Nodes[cur]
			for _, id := range node.Out {
				emit(ac.Match{PatternID: id, End: i + 1})
			}
			cur = node.OutLink
		}
	}
}

// FindAll returns all matches in data.
func (b *BitmapAC) FindAll(data []byte) []ac.Match {
	var out []ac.Match
	b.Scan(data, func(m ac.Match) { out = append(out, m) })
	return out
}

// StepsPerChar reports average automaton steps per scanned character.
func (b *BitmapAC) StepsPerChar() float64 {
	if b.Chars == 0 {
		return 0
	}
	return float64(b.Steps) / float64(b.Chars)
}

// MemoryBytes returns the structure's memory footprint. aligned pads each
// node to a 64-byte line as an ASIC implementation would.
func (b *BitmapAC) MemoryBytes(aligned bool) int {
	per := bitmapNodeRawBytes
	if aligned {
		per = bitmapNodeAlignedBytes
	}
	total := len(b.Nodes) * per
	for i := range b.Nodes {
		total += len(b.Nodes[i].Out) * matchEntryBytes
	}
	return total
}

// UncompressedBytes returns the memory an uncompressed move-table
// Aho-Corasick automaton would need at 4 bytes per transition pointer plus
// a 4-byte match reference per state — the baseline [13] starts from.
func UncompressedBytes(states int) int {
	return states * (256*4 + 4)
}
