package tuck

import (
	"testing"
	"testing/quick"

	"repro/internal/ac"
	"repro/internal/rng"
	"repro/internal/ruleset"
)

func toySet() *ruleset.Set {
	return &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("he")},
		{ID: 1, Data: []byte("she")},
		{ID: 2, Data: []byte("his")},
		{ID: 3, Data: []byte("hers")},
	}}
}

func randomSet(t *testing.T, seed int64, n, alpha, maxLen int) *ruleset.Set {
	t.Helper()
	src := rng.New(seed)
	set := &ruleset.Set{}
	seen := map[string]bool{}
	for len(set.Patterns) < n {
		l := 1 + src.Intn(maxLen)
		d := make([]byte, l)
		for i := range d {
			d[i] = byte('a' + src.Intn(alpha))
		}
		if seen[string(d)] {
			continue
		}
		seen[string(d)] = true
		set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: d})
	}
	return set
}

func randomPayload(seed int64, n, alpha int) []byte {
	src := rng.New(seed)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte('a' + src.Intn(alpha))
	}
	return data
}

func TestBitmapToyMatches(t *testing.T) {
	b, err := BuildBitmap(toySet())
	if err != nil {
		t.Fatal(err)
	}
	got := b.FindAll([]byte("ushers"))
	want := []ac.Match{
		{PatternID: 0, End: 4},
		{PatternID: 1, End: 4},
		{PatternID: 3, End: 6},
	}
	if !ac.MatchesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestBitmapNodeCount(t *testing.T) {
	b, err := BuildBitmap(toySet())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Nodes) != 10 {
		t.Fatalf("nodes = %d, want 10", len(b.Nodes))
	}
}

func TestBitmapChildIndexRank(t *testing.T) {
	var n BitmapNode
	for _, c := range []byte{'a', 'm', 'z', 0x80, 0xFF} {
		n.Bitmap[c>>6] |= 1 << (uint(c) & 63)
	}
	cases := []struct {
		c    byte
		rank int32
	}{{'a', 0}, {'m', 1}, {'z', 2}, {0x80, 3}, {0xFF, 4}}
	for _, tc := range cases {
		if !n.HasChild(tc.c) {
			t.Fatalf("HasChild(%q) false", tc.c)
		}
		if got := n.ChildIndex(tc.c); got != tc.rank {
			t.Errorf("ChildIndex(%#x) = %d, want %d", tc.c, got, tc.rank)
		}
	}
	if n.HasChild('b') {
		t.Error("HasChild(b) true")
	}
}

func TestBitmapAgainstOracle(t *testing.T) {
	set := randomSet(t, 1, 40, 4, 8)
	b, err := BuildBitmap(set)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ac.NewOracle(set)
	for trial := int64(0); trial < 10; trial++ {
		data := randomPayload(trial, 500, 4)
		if !ac.MatchesEqual(b.FindAll(data), oracle.FindAll(data)) {
			t.Fatalf("trial %d: bitmap and oracle disagree", trial)
		}
	}
}

func TestBitmapStepsExceedOneOnAdversarialInput(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("aaaaaaab")},
		{ID: 1, Data: []byte("ab")},
	}}
	b, err := BuildBitmap(set)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 0, 800)
	for i := 0; i < 100; i++ {
		data = append(data, []byte("aaaaaaac")...)
	}
	b.FindAll(data)
	if spc := b.StepsPerChar(); spc <= 1.05 {
		t.Fatalf("steps/char = %.3f, want > 1.05 (fail pointers cost cycles)", spc)
	}
}

func TestBitmapMemoryAccounting(t *testing.T) {
	set := toySet()
	b, err := BuildBitmap(set)
	if err != nil {
		t.Fatal(err)
	}
	raw := b.MemoryBytes(false)
	aligned := b.MemoryBytes(true)
	wantRaw := 10*44 + 4*4 // 10 nodes, 4 pattern-end entries
	if raw != wantRaw {
		t.Fatalf("raw memory = %d, want %d", raw, wantRaw)
	}
	if aligned <= raw {
		t.Fatalf("aligned (%d) should exceed raw (%d)", aligned, raw)
	}
}

func TestUncompressedBytes(t *testing.T) {
	if got := UncompressedBytes(10); got != 10*1028 {
		t.Fatalf("UncompressedBytes(10) = %d", got)
	}
}

func TestPathToyMatches(t *testing.T) {
	p, err := BuildPath(toySet())
	if err != nil {
		t.Fatal(err)
	}
	got := p.FindAll([]byte("ushers"))
	want := []ac.Match{
		{PatternID: 0, End: 4},
		{PatternID: 1, End: 4},
		{PatternID: 3, End: 6},
	}
	if !ac.MatchesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestPathStateConservation(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		set := randomSet(t, seed, 30, 5, 12)
		p, err := BuildPath(set)
		if err != nil {
			t.Fatal(err)
		}
		trie, _ := ac.New(set)
		if p.countStates() != trie.NumStates() {
			t.Fatalf("seed %d: %d compressed states, trie has %d", seed, p.countStates(), trie.NumStates())
		}
	}
}

func TestPathCompressionCollapsesChains(t *testing.T) {
	// One long lonely string: everything below the root collapses into a
	// single path node.
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("abcdefghij")},
	}}
	p, err := BuildPath(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(p.Paths))
	}
	if len(p.Paths[0].Run) != 10 {
		t.Fatalf("run length = %d, want 10", len(p.Paths[0].Run))
	}
	if len(p.Branches) != 1 { // just the root
		t.Fatalf("branches = %d, want 1", len(p.Branches))
	}
	got := p.FindAll([]byte("xxabcdefghijxx"))
	if len(got) != 1 || got[0].End != 12 {
		t.Fatalf("matches = %v", got)
	}
}

func TestPathAgainstOracle(t *testing.T) {
	set := randomSet(t, 2, 40, 4, 10)
	p, err := BuildPath(set)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ac.NewOracle(set)
	for trial := int64(10); trial < 20; trial++ {
		data := randomPayload(trial, 500, 4)
		if !ac.MatchesEqual(p.FindAll(data), oracle.FindAll(data)) {
			t.Fatalf("trial %d: path-compressed and oracle disagree", trial)
		}
	}
}

func TestPathMatchInsideRun(t *testing.T) {
	// Patterns that end mid-run must still report: "abcde" contains "abc".
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("abcde")},
		{ID: 1, Data: []byte("abc")},
	}}
	p, err := BuildPath(set)
	if err != nil {
		t.Fatal(err)
	}
	got := p.FindAll([]byte("abcde"))
	want := []ac.Match{
		{PatternID: 1, End: 3},
		{PatternID: 0, End: 5},
	}
	if !ac.MatchesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestPathFailIntoRunMiddle(t *testing.T) {
	// "xabcd" and "abce": scanning "xabce" walks into the long run and must
	// fail from its middle into the other pattern's states.
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("xabcd")},
		{ID: 1, Data: []byte("abce")},
	}}
	p, err := BuildPath(set)
	if err != nil {
		t.Fatal(err)
	}
	got := p.FindAll([]byte("xabce"))
	want := []ac.Match{{PatternID: 1, End: 5}}
	if !ac.MatchesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestPathMemorySmallerThanBitmap(t *testing.T) {
	// Table III: path compression ≈ 2.5x smaller than bitmap on Snort-like
	// sets (1.1 MB vs 2.8 MB). Require it to win on synthetic sets too.
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 500, Seed: 42})
	b, err := BuildBitmap(set)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPath(set)
	if err != nil {
		t.Fatal(err)
	}
	bm, pm := b.MemoryBytes(true), p.MemoryBytes()
	if pm >= bm {
		t.Fatalf("path-compressed (%d B) not smaller than bitmap (%d B)", pm, bm)
	}
	// And both far below uncompressed.
	if un := UncompressedBytes(len(b.Nodes)); bm >= un/5 {
		t.Fatalf("bitmap (%d B) not far below uncompressed (%d B)", bm, un)
	}
}

func TestBitmapAndPathAgreeOnSnortLikeSet(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 300, Seed: 50})
	b, err := BuildBitmap(set)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPath(set)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(60)
	for trial := 0; trial < 5; trial++ {
		data := make([]byte, 2000)
		for i := range data {
			data[i] = src.Byte()
		}
		for k := 0; k < 5; k++ {
			pat := set.Patterns[src.Intn(set.Len())]
			if len(pat.Data) < len(data) {
				copy(data[src.Intn(len(data)-len(pat.Data)):], pat.Data)
			}
		}
		if !ac.MatchesEqual(b.FindAll(data), p.FindAll(data)) {
			t.Fatalf("trial %d: bitmap and path-compressed disagree", trial)
		}
	}
}

// Property: both baselines agree with the oracle on random instances.
func TestQuickBaselineEquivalence(t *testing.T) {
	f := func(seed int64, nData uint16) bool {
		src := rng.New(seed)
		set := &ruleset.Set{}
		seen := map[string]bool{}
		for len(set.Patterns) < 8 {
			l := 1 + src.Intn(7)
			d := make([]byte, l)
			for i := range d {
				d[i] = byte('a' + src.Intn(3))
			}
			if seen[string(d)] {
				continue
			}
			seen[string(d)] = true
			set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: d})
		}
		b, err := BuildBitmap(set)
		if err != nil {
			return false
		}
		p, err := BuildPath(set)
		if err != nil {
			return false
		}
		data := make([]byte, 1+int(nData)%300)
		for i := range data {
			data[i] = byte('a' + src.Intn(3))
		}
		want := ac.NewOracle(set).FindAll(data)
		return ac.MatchesEqual(b.FindAll(data), want) &&
			ac.MatchesEqual(p.FindAll(data), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
