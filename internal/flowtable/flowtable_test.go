package flowtable

// Race-oriented tests for the flow table: the interesting properties are
// all concurrent — ingest across many 5-tuples, eviction racing in-flight
// writes, and the clean-state guarantee for evicted-then-recreated flows.
// Run with -race (CI does).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/nids"
)

// fakeFlow records writes and guards against use-after-evict: every table
// bug of interest (double close, write racing close, resurrection after
// eviction) trips one of its atomic checks.
type fakeFlow struct {
	key    Key
	data   []byte
	inUse  atomic.Bool
	closed atomic.Bool
}

type harness struct {
	t       *testing.T
	table   *Table[*fakeFlow]
	mu      sync.Mutex
	evicted []*fakeFlow
}

func newHarness(t *testing.T, maxFlows int, idleTicks uint64, shards int) *harness {
	h := &harness{t: t}
	h.table = New(Config[*fakeFlow]{
		New: func(k Key) *fakeFlow { return &fakeFlow{key: k} },
		Evict: func(k Key, f *fakeFlow) {
			if f.inUse.Load() {
				t.Error("flow evicted while a write was in flight")
			}
			if f.closed.Swap(true) {
				t.Error("flow evicted twice")
			}
			h.mu.Lock()
			h.evicted = append(h.evicted, f)
			h.mu.Unlock()
		},
		MaxFlows:  maxFlows,
		IdleTicks: idleTicks,
		Shards:    shards,
	})
	return h
}

// write appends p to the keyed flow through the table, with the
// use-after-evict tripwires armed.
func (h *harness) write(k Key, p []byte) bool {
	return h.table.Do(k, func(f *fakeFlow) {
		if f.closed.Load() {
			h.t.Error("write reached a closed flow")
		}
		if f.inUse.Swap(true) {
			h.t.Error("two writes on one flow at once")
		}
		f.data = append(f.data, p...)
		f.inUse.Store(false)
	})
}

func tuple(i int) Key {
	return Key{
		SrcIP:   nids.IPv4(10, byte(i>>16), byte(i>>8), byte(i)),
		DstIP:   nids.IPv4(192, 168, 0, 1),
		SrcPort: uint16(1024 + i%50000),
		DstPort: 80,
		Proto:   nids.ProtoTCP,
	}
}

func TestDoCreatesThenReuses(t *testing.T) {
	h := newHarness(t, 0, 0, 1)
	if created := h.write(tuple(1), []byte("ab")); !created {
		t.Fatal("first Do did not create")
	}
	if created := h.write(tuple(1), []byte("cd")); created {
		t.Fatal("second Do recreated the flow")
	}
	h.table.Do(tuple(1), func(f *fakeFlow) {
		if string(f.data) != "abcd" {
			t.Fatalf("flow data = %q", f.data)
		}
	})
	if h.table.Len() != 1 {
		t.Fatalf("Len = %d", h.table.Len())
	}
}

func TestCapacityEvictionIsLRU(t *testing.T) {
	// One shard so LRU order is global and deterministic.
	h := newHarness(t, 3, 0, 1)
	for i := 0; i < 3; i++ {
		h.write(tuple(i), []byte("x"))
	}
	h.write(tuple(0), nil) // touch 0: LRU order is now 1, 2, 0
	h.write(tuple(3), nil) // over cap: evicts 1
	h.write(tuple(4), nil) // over cap: evicts 2
	if h.table.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.table.Len())
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.evicted) != 2 || h.evicted[0].key != tuple(1) || h.evicted[1].key != tuple(2) {
		keys := make([]Key, len(h.evicted))
		for i, f := range h.evicted {
			keys[i] = f.key
		}
		t.Fatalf("evicted %v, want tuples 1 then 2", keys)
	}
	st := h.table.Stats()
	if st.EvictedCap != 2 || st.EvictedIdle != 0 || st.Created != 5 || st.Live != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIdleEviction(t *testing.T) {
	h := newHarness(t, 0, 4, 1)
	h.write(tuple(0), nil) // tick 1
	for i := 0; i < 6; i++ {
		h.write(tuple(1), nil) // ticks 2..7; tuple 0 idle for >4 by tick 6
	}
	if h.table.Len() != 1 {
		t.Fatalf("opportunistic idle eviction missed: Len = %d", h.table.Len())
	}
	if st := h.table.Stats(); st.EvictedIdle != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// EvictIdle sweeps everything left once the clock has moved on.
	for i := 0; i < 10; i++ {
		h.write(tuple(2), nil)
	}
	live := h.table.Len()
	h.table.clock.Add(100)
	if n := h.table.EvictIdle(); n != live {
		t.Fatalf("EvictIdle = %d, want %d", n, live)
	}
	if h.table.Len() != 0 {
		t.Fatalf("Len = %d after sweep", h.table.Len())
	}
}

// TestIdleEvictionTickSkewDoesNotEvictFreshFlows is the regression test
// for the unsigned-underflow bug: Do draws its tick before taking the
// shard lock, so a concurrent touch can stamp an entry with a tick ahead
// of the one running the idle check. The subtraction must not underflow
// and evict a flow that was active moments ago.
func TestIdleEvictionTickSkewDoesNotEvictFreshFlows(t *testing.T) {
	h := newHarness(t, 0, 5, 1)
	h.write(tuple(0), nil)
	// Simulate the racing touch: stamp the entry with a tick the next Do
	// has not reached yet.
	s := &h.table.shards[0]
	s.mu.Lock()
	for _, e := range s.flows {
		e.last = h.table.clock.Load() + 3
	}
	s.mu.Unlock()
	h.write(tuple(1), nil) // opportunistic idle check sees tick < tail.last
	if st := h.table.Stats(); st.EvictedIdle != 0 {
		t.Fatalf("fresh flow evicted by tick skew: %+v", st)
	}
	if n := h.table.EvictIdle(); n != 0 {
		t.Fatalf("EvictIdle evicted %d fresh flows under tick skew", n)
	}
	if h.table.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.table.Len())
	}
}

func TestEvictedThenRecreatedStartsClean(t *testing.T) {
	h := newHarness(t, 2, 0, 1)
	h.write(tuple(0), []byte("xy")) // partial state in flow 0
	h.write(tuple(1), nil)
	h.write(tuple(2), nil) // evicts 0 (LRU)
	created := h.write(tuple(0), []byte("z"))
	if !created {
		t.Fatal("evicted flow was not recreated")
	}
	h.table.Do(tuple(0), func(f *fakeFlow) {
		if string(f.data) != "z" {
			t.Fatalf("recreated flow carried stale state: %q", f.data)
		}
	})
}

func TestCloseEvictsEverything(t *testing.T) {
	h := newHarness(t, 0, 0, 4)
	for i := 0; i < 100; i++ {
		h.write(tuple(i), []byte("p"))
	}
	h.table.Close()
	if h.table.Len() != 0 {
		t.Fatalf("Len = %d after Close", h.table.Len())
	}
	h.mu.Lock()
	n := len(h.evicted)
	h.mu.Unlock()
	if n != 100 {
		t.Fatalf("evicted %d flows, want 100", n)
	}
	// The table stays usable: a Do after Close recreates.
	if !h.write(tuple(7), nil) {
		t.Fatal("Do after Close did not create")
	}
}

func TestConcurrentIngestManyTuples(t *testing.T) {
	h := newHarness(t, 0, 0, 16)
	const goroutines = 8
	const flowsPer = 64
	const writes = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for w := 0; w < writes; w++ {
				for i := 0; i < flowsPer; i++ {
					// Goroutines own disjoint tuples, so each flow sees
					// single-writer traffic like a real demultiplexer lane.
					h.write(tuple(g*flowsPer+i), []byte{byte(w)})
				}
			}
		}(g)
	}
	wg.Wait()
	if h.table.Len() != goroutines*flowsPer {
		t.Fatalf("Len = %d, want %d", h.table.Len(), goroutines*flowsPer)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < flowsPer; i++ {
			h.table.Do(tuple(g*flowsPer+i), func(f *fakeFlow) {
				if len(f.data) != writes {
					t.Errorf("flow (%d,%d) saw %d writes, want %d", g, i, len(f.data), writes)
				}
			})
		}
	}
}

func TestEvictionRacingWrites(t *testing.T) {
	// Heavy churn through a tiny table: every write risks racing a
	// capacity eviction of the very flow it is writing. The fakeFlow
	// tripwires plus -race verify the entry-lock protocol.
	h := newHarness(t, 8, 16, 4)
	const goroutines = 8
	const writes = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for w := 0; w < writes; w++ {
				// 32 hot tuples shared by all goroutines, hashed over 4
				// shards with room for only 8 flows: constant evict/recreate.
				h.write(tuple(w%32), []byte{byte(g)})
			}
		}(g)
	}
	wg.Wait()
	st := h.table.Stats()
	if st.EvictedCap == 0 {
		t.Fatal("churn produced no capacity evictions; test is vacuous")
	}
	if st.Live > 8+4 { // soft cap: MaxFlows + Shards
		t.Fatalf("live flows %d exceed soft cap", st.Live)
	}
	if got := uint64(st.Live) + st.EvictedCap + st.EvictedIdle; got != st.Created {
		t.Fatalf("accounting: live+evicted = %d, created = %d", got, st.Created)
	}
	h.table.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	if uint64(len(h.evicted)) != st.Created {
		t.Fatalf("evict callbacks %d != created %d after Close", len(h.evicted), st.Created)
	}
}

func TestShardRoundingAndDefaults(t *testing.T) {
	tb := New(Config[*fakeFlow]{
		New:    func(k Key) *fakeFlow { return &fakeFlow{key: k} },
		Evict:  func(Key, *fakeFlow) {},
		Shards: 5,
	})
	if len(tb.shards) != 8 {
		t.Fatalf("shards = %d, want 8", len(tb.shards))
	}
	if d := New(Config[*fakeFlow]{New: func(k Key) *fakeFlow { return nil }, Evict: func(Key, *fakeFlow) {}}); len(d.shards) != 64 {
		t.Fatalf("default shards = %d, want 64", len(d.shards))
	}
}

func TestHash64Spreads(t *testing.T) {
	// Sanity: tuples differing in one field land on many shards.
	seen := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		k := tuple(0)
		k.SrcPort = uint16(i)
		seen[k.Hash64()&63] = true
	}
	if len(seen) < 32 {
		t.Fatalf("256 port-varied tuples hit only %d of 64 shards", len(seen))
	}
}

func BenchmarkDoHit(b *testing.B) {
	tb := New(Config[*fakeFlow]{
		New:   func(k Key) *fakeFlow { return &fakeFlow{key: k} },
		Evict: func(Key, *fakeFlow) {},
	})
	k := tuple(1)
	tb.Do(k, func(*fakeFlow) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Do(k, func(*fakeFlow) {})
	}
}

func BenchmarkDoChurn(b *testing.B) {
	tb := New(Config[*fakeFlow]{
		New:      func(k Key) *fakeFlow { return &fakeFlow{key: k} },
		Evict:    func(Key, *fakeFlow) {},
		MaxFlows: 1024,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Do(tuple(i%8192), func(*fakeFlow) {})
	}
}

func ExampleTable() {
	tb := New(Config[*fakeFlow]{
		New:      func(k Key) *fakeFlow { return &fakeFlow{key: k} },
		Evict:    func(Key, *fakeFlow) {},
		MaxFlows: 2,
		Shards:   1,
	})
	for i := 0; i < 3; i++ {
		tb.Do(tuple(i), func(*fakeFlow) {})
	}
	fmt.Println(tb.Len(), tb.Stats().EvictedCap)
	// Output: 2 1
}

func TestRemoveEvictsImmediately(t *testing.T) {
	h := newHarness(t, 0, 0, 4)
	h.write(tuple(1), []byte("a"))
	h.write(tuple(2), []byte("b"))
	if !h.table.Remove(tuple(1)) {
		t.Fatal("Remove missed a live flow")
	}
	if h.table.Remove(tuple(1)) {
		t.Fatal("Remove found an already-removed flow")
	}
	if h.table.Len() != 1 {
		t.Fatalf("Len = %d after Remove", h.table.Len())
	}
	st := h.table.Stats()
	if st.Removed != 1 || st.Created != 2 {
		t.Fatalf("stats = %+v", st)
	}
	h.mu.Lock()
	evicted := len(h.evicted)
	h.mu.Unlock()
	if evicted != 1 {
		t.Fatalf("Evict ran %d times", evicted)
	}
	// A recreated flow after Remove starts clean.
	h.write(tuple(1), []byte("x"))
	h.table.Do(tuple(1), func(f *fakeFlow) {
		if string(f.data) != "x" {
			t.Fatalf("recreated flow data = %q", f.data)
		}
	})
}

func TestRemoveRacingWrites(t *testing.T) {
	h := newHarness(t, 0, 0, 2)
	const writers, rounds = 4, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := tuple(i % 8)
				if w == 0 && i%5 == 0 {
					h.table.Remove(k)
				} else {
					h.write(k, []byte{byte(i)})
				}
			}
		}(w)
	}
	wg.Wait()
	h.table.Close()
	// The fakeFlow tripwires (double close, write-after-close) are the
	// assertions; run under -race.
}
