// Package flowtable maps 5-tuples to pooled per-flow scan state — the
// demultiplexing layer an edge-gateway NIDS needs in front of the string
// matcher. The paper's deployment target scans millions of concurrent
// connections against one shared automaton (§I, §IV.B); the automaton is
// immutable and shared, so the only per-connection cost is the flow's
// scanner registers, and this package owns their lifecycle: lookup-or-create
// keyed by the 5-tuple, LRU tracking of last activity on a logical clock,
// and eviction (capacity and idle) that returns state to the owner's pool.
//
// The table is safe for fully concurrent ingest. Keys are sharded by
// FiveTuple.Hash64 so unrelated flows never contend; within a shard a
// mutex guards the map and the intrusive LRU list, while each entry carries
// its own mutex serializing flow writes against eviction. An entry selected
// for eviction is first unlinked from its shard (so no new lookup can reach
// it), then closed only after any in-flight write finishes; a writer that
// raced the eviction observes the entry's dead mark and transparently
// retries, creating a fresh flow — an evicted-then-recreated flow therefore
// always starts from clean scanner state.
//
// Time is a logical clock: every Do ticks it once, so "idle for N ticks"
// means "N packets crossed the whole table since this flow last saw one".
// That keeps eviction deterministic and testable, and matches how a
// line-rate gateway actually experiences time — in packets, not seconds.
package flowtable

import (
	"sync"
	"sync/atomic"

	"repro/internal/nids"
)

// Key identifies one flow: the classifier 5-tuple from internal/nids.
type Key = nids.FiveTuple

// Config parameterizes a Table over its flow type F.
type Config[F any] struct {
	// New creates the flow state for a key. Called under the key's shard
	// lock, so it must be cheap (e.g. a pool checkout).
	New func(Key) F
	// Evict releases a flow's resources. Called exactly once per created
	// flow — on capacity eviction, idle eviction, or table Close — outside
	// all table locks and never while a Do is using the flow.
	Evict func(Key, F)
	// MaxFlows is the soft cap on live flows; 0 means unlimited. When an
	// insert pushes the table past the cap, least-recently-active flows are
	// evicted from the inserting shard, so the live count stays within
	// MaxFlows + Shards in the worst case.
	MaxFlows int
	// IdleTicks evicts flows untouched for more than this many logical
	// clock ticks (table-wide Do calls); 0 disables idle eviction. Idle
	// flows are collected opportunistically (a bounded check per Do) and
	// exhaustively by EvictIdle.
	IdleTicks uint64
	// Shards is the number of lock shards, rounded up to a power of two;
	// 0 selects 64.
	Shards int
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Live        int
	Created     uint64
	EvictedIdle uint64
	EvictedCap  uint64
	Removed     uint64 // explicit Remove calls (connection teardown)
	Clock       uint64
}

// Table is a sharded 5-tuple → flow map with LRU and idle eviction.
type Table[F any] struct {
	cfg    Config[F]
	shards []shard[F]
	mask   uint64

	clock       atomic.Uint64
	live        atomic.Int64
	created     atomic.Uint64
	evictedIdle atomic.Uint64
	evictedCap  atomic.Uint64
	removed     atomic.Uint64
}

type shard[F any] struct {
	mu    sync.Mutex
	flows map[Key]*entry[F]
	// Intrusive LRU list: head is most recently active, tail the least.
	head, tail *entry[F]
}

type entry[F any] struct {
	key        Key
	flow       F
	last       uint64 // shard-lock guarded: logical tick of last activity
	prev, next *entry[F]

	// mu serializes flow use (Do's callback) against eviction; dead marks
	// an entry whose flow has been (or is being) released.
	mu   sync.Mutex
	dead bool
}

// New builds a table. Config.New and Config.Evict are required.
func New[F any](cfg Config[F]) *Table[F] {
	if cfg.New == nil || cfg.Evict == nil {
		panic("flowtable: Config.New and Config.Evict are required")
	}
	n := cfg.Shards
	if n <= 0 {
		n = 64
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	t := &Table[F]{cfg: cfg, shards: make([]shard[F], pow), mask: uint64(pow - 1)}
	for i := range t.shards {
		t.shards[i].flows = make(map[Key]*entry[F])
	}
	return t
}

// Do runs fn on key's flow, creating it if absent, and reports whether this
// call created it. The flow is exclusively held for the duration of fn: no
// other Do on the same key runs concurrently and eviction waits for fn to
// return. Do also ticks the logical clock and touches the flow's LRU
// position. fn must not call back into the table.
func (t *Table[F]) Do(key Key, fn func(F)) (created bool) {
	return t.DoHashed(key, key.Hash64(), fn)
}

// DoHashed is Do with a caller-supplied hash, which must equal
// key.Hash64(). A sharding front-end derives every ownership decision for a
// packet — engine shard, scan lane, and this table's lock shard — from one
// tuple hash; passing it through keeps the table from rehashing the key on
// every packet of every flow.
func (t *Table[F]) DoHashed(key Key, hash uint64, fn func(F)) (created bool) {
	tick := t.clock.Add(1)
	for {
		e, isNew := t.touch(key, hash, tick)
		if t.withEntry(e, fn) {
			return isNew
		}
		// Evicted between lookup and lock; retry against a fresh entry.
	}
}

// withEntry runs fn under e's entry lock, reporting false when e was already
// dead. The unlock is deferred so a panic inside fn (a scanner bug, a hostile
// payload tripping an invariant) unwinds with the entry unlocked — the
// gateway's panic containment can then quarantine the flow with a normal
// Remove instead of deadlocking against a lock the dead goroutine still holds.
func (t *Table[F]) withEntry(e *entry[F], fn func(F)) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return false
	}
	fn(e.flow)
	return true
}

// Has reports whether key's flow is currently live, without creating it,
// touching its LRU position, or ticking the clock. hash must equal
// key.Hash64(). Admission control uses it to distinguish packets of
// established flows from packets that would create new state.
func (t *Table[F]) Has(key Key, hash uint64) bool {
	s := &t.shards[hash&t.mask]
	s.mu.Lock()
	_, ok := s.flows[key]
	s.mu.Unlock()
	return ok
}

// touch looks up or creates key's entry, moves it to the LRU front, and
// runs bounded opportunistic eviction on the entry's shard.
func (t *Table[F]) touch(key Key, hash, tick uint64) (*entry[F], bool) {
	s := &t.shards[hash&t.mask]
	e, created, victims := func() (*entry[F], bool, []*entry[F]) {
		// Deferred unlock: Config.New runs under the shard lock, and a panic
		// there must not wedge the whole shard (see withEntry).
		s.mu.Lock()
		defer s.mu.Unlock()
		e, ok := s.flows[key]
		created := false
		if !ok {
			e = &entry[F]{key: key, flow: t.cfg.New(key)}
			s.flows[key] = e
			t.live.Add(1)
			t.created.Add(1)
			created = true
		} else {
			s.unlink(e)
		}
		e.last = tick
		s.pushFront(e)
		return e, created, t.collect(s, e, tick)
	}()
	t.finish(victims)
	return e, created
}

// collect removes eviction victims from the shard under its lock: first
// capacity pressure (table-wide live count over MaxFlows), then a bounded
// idle check of the shard's LRU tail. keep is never selected.
func (t *Table[F]) collect(s *shard[F], keep *entry[F], tick uint64) []*entry[F] {
	var victims []*entry[F]
	if t.cfg.MaxFlows > 0 {
		for int(t.live.Load()) > t.cfg.MaxFlows {
			v := s.tail
			if v == nil || v == keep {
				break
			}
			s.remove(v)
			t.live.Add(-1)
			t.evictedCap.Add(1)
			victims = append(victims, v)
		}
	}
	if t.cfg.IdleTicks > 0 {
		// Amortized idle collection: at most two tail entries per touch, so
		// a steadily-ticking table drains idle flows without full sweeps.
		// Ticks are drawn before the shard lock, so a concurrent touch can
		// leave v.last ahead of tick; such an entry is fresh by definition
		// and must not fall into the unsigned subtraction.
		for i := 0; i < 2; i++ {
			v := s.tail
			if v == nil || v == keep || v.last > tick || tick-v.last <= t.cfg.IdleTicks {
				break
			}
			s.remove(v)
			t.live.Add(-1)
			t.evictedIdle.Add(1)
			victims = append(victims, v)
		}
	}
	return victims
}

// finish releases victims outside all shard locks: mark dead under the
// entry lock (waiting out any in-flight Do callback), then hand the flow to
// Evict.
func (t *Table[F]) finish(victims []*entry[F]) {
	for _, v := range victims {
		v.mu.Lock()
		v.dead = true
		v.mu.Unlock()
		t.cfg.Evict(v.key, v.flow)
	}
}

// Remove evicts key's flow immediately, reporting whether it was present.
// The gateway uses it for TCP lifecycle teardown (an RST aborts the
// connection): the entry is unlinked under the shard lock, then released
// like any eviction — after any in-flight Do on it has finished.
func (t *Table[F]) Remove(key Key) bool {
	s := &t.shards[key.Hash64()&t.mask]
	s.mu.Lock()
	e, ok := s.flows[key]
	if ok {
		s.remove(e)
		t.live.Add(-1)
		t.removed.Add(1)
	}
	s.mu.Unlock()
	if ok {
		t.finish([]*entry[F]{e})
	}
	return ok
}

// EvictIdle exhaustively evicts every flow idle for more than the
// configured IdleTicks and returns how many it evicted. It is a no-op when
// idle eviction is disabled.
func (t *Table[F]) EvictIdle() int {
	if t.cfg.IdleTicks == 0 {
		return 0
	}
	tick := t.clock.Load()
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		var victims []*entry[F]
		for v := s.tail; v != nil && v.last <= tick && tick-v.last > t.cfg.IdleTicks; v = s.tail {
			s.remove(v)
			t.live.Add(-1)
			t.evictedIdle.Add(1)
			victims = append(victims, v)
		}
		s.mu.Unlock()
		t.finish(victims)
		n += len(victims)
	}
	return n
}

// Range runs fn on every live flow, shard by shard, each flow held under
// its entry lock exactly as Do holds it (no Do on that key runs
// concurrently, eviction waits). Unlike Do it never creates flows, never
// ticks the clock and never touches LRU positions — a pure diagnostic
// sweep, used by the hot-reload control plane's audits (every pinned flow's
// scanner generation matches its pin). Flows created or evicted while the
// sweep runs may or may not be visited; fn must not call back into the
// table.
func (t *Table[F]) Range(fn func(Key, F)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		entries := make([]*entry[F], 0, len(s.flows))
		for _, e := range s.flows {
			entries = append(entries, e)
		}
		s.mu.Unlock()
		for _, e := range entries {
			e.mu.Lock()
			if !e.dead {
				fn(e.key, e.flow)
			}
			e.mu.Unlock()
		}
	}
}

// Close evicts every live flow. The table remains usable afterwards (a Do
// recreates flows), so Close doubles as a drain for gateway shutdown.
func (t *Table[F]) Close() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		var victims []*entry[F]
		for v := s.tail; v != nil; v = s.tail {
			s.remove(v)
			t.live.Add(-1)
			victims = append(victims, v)
		}
		s.mu.Unlock()
		t.finish(victims)
	}
}

// Len returns the number of live flows.
func (t *Table[F]) Len() int { return int(t.live.Load()) }

// Stats returns a counter snapshot.
func (t *Table[F]) Stats() Stats {
	return Stats{
		Live:        int(t.live.Load()),
		Created:     t.created.Load(),
		EvictedIdle: t.evictedIdle.Load(),
		EvictedCap:  t.evictedCap.Load(),
		Removed:     t.removed.Load(),
		Clock:       t.clock.Load(),
	}
}

func (s *shard[F]) pushFront(e *entry[F]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[F]) unlink(e *entry[F]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[F]) remove(e *entry[F]) {
	s.unlink(e)
	delete(s.flows, e.key)
}
