package hwsim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bitpack"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/ruleset"
)

func randomWords(seed int64, n, width int) []*bitpack.Vector {
	src := rng.New(seed)
	out := make([]*bitpack.Vector, n)
	for i := range out {
		v := bitpack.New(width)
		for b := 0; b < width; b++ {
			v.SetBit(b, src.Uint64()&1)
		}
		out[i] = v
	}
	return out
}

func TestMIFRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, width, depth int }{
		{5, 324, 8},
		{3, 27, 3},
		{256, 54, 256},
		{1, 1, 4},
	} {
		words := randomWords(int64(tc.width), tc.n, tc.width)
		var buf bytes.Buffer
		if err := WriteMIF(&buf, words, tc.depth); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		got, err := ParseMIF(&buf)
		if err != nil {
			t.Fatalf("%+v: parse: %v", tc, err)
		}
		if len(got) != tc.depth {
			t.Fatalf("%+v: parsed %d words, want %d", tc, len(got), tc.depth)
		}
		for i, w := range words {
			if !got[i].Equal(w) {
				t.Fatalf("%+v: word %d mismatch", tc, i)
			}
		}
		for i := tc.n; i < tc.depth; i++ {
			if !got[i].Zero() {
				t.Fatalf("%+v: fill word %d not zero", tc, i)
			}
		}
	}
}

func TestMIFHeaders(t *testing.T) {
	words := randomWords(1, 2, 324)
	var buf bytes.Buffer
	if err := WriteMIF(&buf, words, 3584); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DEPTH = 3584;", "WIDTH = 324;", "ADDRESS_RADIX = HEX;", "CONTENT BEGIN", "END;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestWriteMIFErrors(t *testing.T) {
	if err := WriteMIF(&bytes.Buffer{}, nil, 4); err == nil {
		t.Error("empty words accepted")
	}
	words := randomWords(2, 4, 27)
	if err := WriteMIF(&bytes.Buffer{}, words, 2); err == nil {
		t.Error("depth below word count accepted")
	}
	mixed := []*bitpack.Vector{bitpack.New(27), bitpack.New(28)}
	if err := WriteMIF(&bytes.Buffer{}, mixed, 4); err == nil {
		t.Error("mixed widths accepted")
	}
}

func TestParseMIFErrors(t *testing.T) {
	cases := []string{
		"WIDTH = 8;\nCONTENT BEGIN\n0 : 00;\nEND;",                      // no depth
		"DEPTH = 2;\nWIDTH = 8;\nADDRESS_RADIX = BIN;\nCONTENT BEGIN\n", // radix
		"DEPTH = 2;\nWIDTH = 8;\nCONTENT BEGIN\n0 : 00;\nEND;",          // addr 1 missing
		"DEPTH = 1;\nWIDTH = 8;\nCONTENT BEGIN\n0 : 00;\n0 : 11;\nEND;", // double init
		"DEPTH = 1;\nWIDTH = 8;\nCONTENT BEGIN\n5 : 00;\nEND;",          // out of range
		"DEPTH = 1;\nWIDTH = 8;\nCONTENT BEGIN\n0 : 0;\nEND;",           // short data
		"DEPTH = 1;\nWIDTH = 8;\nCONTENT BEGIN\n0 : ZZ;\nEND;",          // bad hex
		"DEPTH = 1;\nWIDTH = 8;\nCONTENT BEGIN\n0 : 00;",                // missing END
		"DEPTH = 1;\nWIDTH = 5;\nCONTENT BEGIN\n0 : FF;\nEND;",          // stray bits
	}
	for i, c := range cases {
		if _, err := ParseMIF(strings.NewReader(c)); err == nil {
			t.Errorf("case %d parsed without error", i)
		}
	}
}

func TestParseMIFRangeFill(t *testing.T) {
	src := "DEPTH = 4;\nWIDTH = 8;\nCONTENT BEGIN\n[0..3] : A5;\nEND;"
	words, err := ParseMIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w.Field(0, 8) != 0xA5 {
			t.Fatalf("word %d = %#x", i, w.Field(0, 8))
		}
	}
}

func TestExportMIFsEndToEnd(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 200, Seed: 90})
	m, err := core.Build(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	mifs, err := img.ExportMIFs(3584)
	if err != nil {
		t.Fatal(err)
	}

	// State memory round-trips and matches the image bit for bit.
	state, err := ParseMIF(bytes.NewReader(mifs.State))
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 3584 {
		t.Fatalf("state depth %d", len(state))
	}
	for i, w := range img.Words {
		if !state[i].Equal(w) {
			t.Fatalf("state word %d mismatch", i)
		}
	}

	// Match memory round-trips.
	match, err := ParseMIF(bytes.NewReader(mifs.Match))
	if err != nil {
		t.Fatal(err)
	}
	if len(match) != MaxMatchWords {
		t.Fatalf("match depth %d", len(match))
	}
	for i, w := range img.Match {
		if got := uint32(match[i].Field(0, MatchWordBits)); got != w {
			t.Fatalf("match word %d = %#x, want %#x", i, got, w)
		}
	}

	// Lookup table round-trips.
	lut, err := ParseMIF(bytes.NewReader(mifs.LUT))
	if err != nil {
		t.Fatal(err)
	}
	if len(lut) != LUTRows {
		t.Fatalf("lut depth %d", len(lut))
	}
	for c := 0; c < LUTRows; c++ {
		if !lut[c].Equal(img.LUT[c].Packed) {
			t.Fatalf("lut row %#x mismatch", c)
		}
	}
}

func TestExportMIFsRejectsOverflow(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 500, Seed: 91})
	m, err := core.Build(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := img.ExportMIFs(1); err == nil {
		t.Fatal("state depth 1 accepted for a multi-word machine")
	}
}
