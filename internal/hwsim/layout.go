// Package hwsim is a functional, cycle-accounted simulator of the paper's
// hardware accelerator (§IV): the bit-exact memory images (324-bit state
// words with 15 state types, 27-bit match-number words, 49-bit lookup-table
// rows), the string matching engine register machine (Figure 5), the string
// matching block with 6 phase-interleaved engines sharing a true-dual-port
// memory and a match scheduler (Figure 4), and the multi-block accelerator.
package hwsim

import "fmt"

// Memory geometry constants from §IV.
const (
	// WordBits is the width of one state-memory word.
	WordBits = 324
	// UnitBits is the granularity of state placement: 9 units per word.
	UnitBits = 36
	// UnitsPerWord is WordBits / UnitBits.
	UnitsPerWord = 9

	// PtrBits is one transition pointer: 8-bit character + 12-bit word
	// address + 4-bit target state type.
	PtrBits     = 24
	ptrCharOff  = 0
	ptrAddrOff  = 8
	ptrTypeOff  = 20
	ptrAddrBits = 12
	ptrTypeBits = 4

	// MatchFieldBits is the per-state match information: 1 valid bit +
	// 11-bit match-memory address ("Each state contains 12 bits to indicate
	// if it has any matching strings and if so the location of the string
	// numbers in memory").
	MatchFieldBits = 12
	matchAddrBits  = 11
	MaxStateWords  = 1 << ptrAddrBits // 12-bit addressing: 4,096 words
	MaxMatchWords  = 2048             // paper: 2,048 27-bit words per block
	MatchWordBits  = 27               // two 13-bit string numbers + last flag
	matchIDBits    = 13
	// MatchPadID fills the unused second slot of an odd final match word.
	MatchPadID = 1<<matchIDBits - 1

	// MaxStoredPtrs is the widest state the engines handle (§IV.A: "states
	// with up to 13 transition pointers, which is adequate once the memory
	// reduction techniques have been applied").
	MaxStoredPtrs = 13

	// LUT geometry: 256 rows. The paper's row is 49 bits (1 depth-1 bit +
	// 4×8 depth-2 preceding characters + 16 depth-3 preceding characters);
	// the model appends 5 validity bits (4 depth-2 + 1 depth-3) because a
	// row with fewer than 4 depth-2 defaults must not misfire — see
	// DESIGN.md §2.
	LUTRows         = 256
	LUTRowBitsPaper = 49
	LUTRowBitsModel = 54
)

// StateType is the 4-bit type tag of a stored state. Type 0 is reserved to
// mark an empty pointer slot; types 1..15 follow Figure 3:
//
//	types 1..9   36-bit state (0-1 pointers)  at word units 0..8
//	types 10..12 108-bit state (2-4 pointers) at word units 0, 3, 6
//	type 13      180-bit state (5-7 pointers) at unit 0
//	type 14      252-bit state (8-10 pointers) at unit 0
//	type 15      324-bit state (11-13 pointers) at unit 0
type StateType uint8

// TypeInfo describes where a state of the given type lives in its word and
// how many pointers it can hold.
type TypeInfo struct {
	UnitOffset int // starting 36-bit unit within the word
	Units      int // size in units
	MaxPtrs    int // pointer capacity
}

// Info returns the layout of t. It panics on type 0 or out-of-range values,
// which can only arise from corrupted memory images.
func (t StateType) Info() TypeInfo {
	switch {
	case t >= 1 && t <= 9:
		return TypeInfo{UnitOffset: int(t) - 1, Units: 1, MaxPtrs: 1}
	case t >= 10 && t <= 12:
		return TypeInfo{UnitOffset: int(t-10) * 3, Units: 3, MaxPtrs: 4}
	case t == 13:
		return TypeInfo{UnitOffset: 0, Units: 5, MaxPtrs: 7}
	case t == 14:
		return TypeInfo{UnitOffset: 0, Units: 7, MaxPtrs: 10}
	case t == 15:
		return TypeInfo{UnitOffset: 0, Units: 9, MaxPtrs: 13}
	}
	panic(fmt.Sprintf("hwsim: invalid state type %d", t))
}

// unitsForPtrs returns the state size class (in units) for a pointer count.
func unitsForPtrs(n int) (int, error) {
	switch {
	case n <= 1:
		return 1, nil
	case n <= 4:
		return 3, nil
	case n <= 7:
		return 5, nil
	case n <= 10:
		return 7, nil
	case n <= MaxStoredPtrs:
		return 9, nil
	}
	return 0, fmt.Errorf("hwsim: state with %d stored pointers exceeds the hardware maximum %d (split the ruleset into more groups or regenerate with narrower branching)",
		n, MaxStoredPtrs)
}

// typeFor returns the StateType of a state of `units` size placed at
// unit offset `off`.
func typeFor(units, off int) (StateType, error) {
	switch units {
	case 1:
		if off >= 0 && off < 9 {
			return StateType(1 + off), nil
		}
	case 3:
		switch off {
		case 0, 3, 6:
			return StateType(10 + off/3), nil
		}
	case 5:
		if off == 0 {
			return 13, nil
		}
	case 7:
		if off == 0 {
			return 14, nil
		}
	case 9:
		if off == 0 {
			return 15, nil
		}
	}
	return 0, fmt.Errorf("hwsim: no state type for %d units at offset %d", units, off)
}

// StateLoc addresses a stored state: the word address plus the type, which
// encodes the in-word position. This pair is exactly what a transition
// pointer carries.
type StateLoc struct {
	Word uint16
	Type StateType
}

// bitOffset returns the state's first bit within its word.
func (l StateLoc) bitOffset() int {
	return l.Type.Info().UnitOffset * UnitBits
}
