package hwsim

import (
	"fmt"

	"repro/internal/ac"
	"repro/internal/bitpack"
	"repro/internal/core"
)

// LUTD2 is one decoded depth-2 lookup-table entry.
type LUTD2 struct {
	Valid bool
	Prev  byte
	Loc   StateLoc
}

// LUTD3 is the decoded depth-3 lookup-table entry.
type LUTD3 struct {
	Valid        bool
	Prev2, Prev1 byte
	Loc          StateLoc
}

// LUTRow is one lookup-table row: the packed bit image plus the decoded
// form the simulator executes. The packed image carries the comparison
// characters and validity only; target addresses are implied by the fixed
// placement of default states ("A default pointer does not need to store
// the address of the state it points to ... each default pointer points to
// a fixed address", §IV.B) — the decoded Loc fields model that fixed
// address derivation.
type LUTRow struct {
	Packed  *bitpack.Vector
	D1Valid bool
	D1      StateLoc
	D2      [4]LUTD2
	D3      LUTD3
}

// PackStats summarizes a packed machine for Table II's memory column.
type PackStats struct {
	States         int
	StateWords     int // 324-bit words used
	UsedStateBits  int // bits occupied by real state content
	MatchWordsUsed int // 27-bit match words used
	MatchStates    int // states carrying match information
	FillRatio      float64

	// TotalBytesPaper counts memory as the paper does: used state words ×
	// 324 bits + used match words × 27 bits + 256 LUT rows × 49 bits.
	TotalBytesPaper int
	// TotalBytesModel replaces the LUT rows with the model's 54-bit rows
	// (49 + 5 validity bits).
	TotalBytesModel int
}

// Image is the complete memory content of one string matching block for
// one group machine.
type Image struct {
	Machine *core.Machine
	Words   []*bitpack.Vector
	Loc     []StateLoc
	Match   []uint32
	LUT     [LUTRows]LUTRow
	Root    StateLoc
	Stats   PackStats

	// packing bookkeeping
	matchAddr     []int32
	wordPlanCount int
}

// Pack lowers a compressed machine into hardware memory images. It fails
// when a state exceeds 13 stored pointers, when the state machine exceeds
// 12-bit word addressing, when the match lists overflow the 2,048-word
// match memory, or when the machine's default configuration does not fit
// the lookup-table row format (at most 4 depth-2 and 1 depth-3 defaults
// per character).
func Pack(m *core.Machine) (*Image, error) {
	if m.Opts.D2PerChar > 4 {
		return nil, fmt.Errorf("hwsim: D2PerChar=%d does not fit the 49-bit row format (max 4)", m.Opts.D2PerChar)
	}
	if m.Opts.D3PerChar > 1 {
		return nil, fmt.Errorf("hwsim: D3PerChar=%d does not fit the 49-bit row format (max 1)", m.Opts.D3PerChar)
	}
	img := &Image{Machine: m}
	if err := img.packMatchMemory(); err != nil {
		return nil, err
	}
	if err := img.placeStates(); err != nil {
		return nil, err
	}
	img.packLUT()
	if err := img.writeStateWords(); err != nil {
		return nil, err
	}
	img.finishStats()
	return img, nil
}

// packMatchMemory lays out every matching state's full string-number list
// (own outputs plus those inherited along the fail chain — hardware stores
// the complete list so the match scheduler never walks links), two 13-bit
// numbers per 27-bit word, final word flagged. States with identical output
// sets share one list: many states inherit exactly one pattern through
// their fail chain, and the match memory is read-only, so aliasing their
// 11-bit match addresses is free and roughly halves occupancy.
func (img *Image) packMatchMemory() error {
	m := img.Machine
	n := m.Trie.NumStates()
	img.Stats.States = n
	matchAddr := make([]int32, n)
	listAddr := make(map[string]int32)
	var key []byte
	for s := int32(0); s < int32(n); s++ {
		matchAddr[s] = -1
		if !m.Trie.HasOutput(s) {
			continue
		}
		var ids []int32
		m.Trie.EmitOutputs(s, 0, func(mt ac.Match) { ids = append(ids, mt.PatternID) })
		if len(ids) == 0 {
			continue
		}
		key = key[:0]
		for _, id := range ids {
			key = append(key, byte(id), byte(id>>8))
		}
		if addr, ok := listAddr[string(key)]; ok {
			matchAddr[s] = addr
			img.Stats.MatchStates++
			continue
		}
		base := len(img.Match)
		for i := 0; i < len(ids); i += 2 {
			id1 := uint32(ids[i])
			id2 := uint32(MatchPadID)
			if i+1 < len(ids) {
				id2 = uint32(ids[i+1])
			}
			word := id1 | id2<<matchIDBits
			if i+2 >= len(ids) {
				word |= 1 << (2 * matchIDBits) // last flag
			}
			img.Match = append(img.Match, word)
		}
		matchAddr[s] = int32(base)
		listAddr[string(key)] = int32(base)
		img.Stats.MatchStates++
	}
	if len(img.Match) > MaxMatchWords {
		return fmt.Errorf("hwsim: match lists need %d words, block memory holds %d (split the ruleset into more groups)",
			len(img.Match), MaxMatchWords)
	}
	img.matchAddr = matchAddr
	img.Stats.MatchWordsUsed = len(img.Match)
	return nil
}

// placeStates runs the no-gap word assembly of §IV.A: size classes of 1, 3,
// 5, 7 and 9 units; 5/7/9-unit states anchor at unit 0, 3-unit states at
// units 0/3/6, 1-unit states anywhere. The start state is pinned at word 0
// unit 0 so engines and the lookup table can address it canonically.
func (img *Image) placeStates() error {
	m := img.Machine
	n := m.Trie.NumStates()
	img.Loc = make([]StateLoc, n)

	var ones, threes, fives, sevens, nines []int32
	for s := int32(1); s < int32(n); s++ {
		units, err := unitsForPtrs(len(m.Stored[s]))
		if err != nil {
			return fmt.Errorf("state %d (depth %d): %w", s, m.Trie.Nodes[s].Depth, err)
		}
		switch units {
		case 1:
			ones = append(ones, s)
		case 3:
			threes = append(threes, s)
		case 5:
			fives = append(fives, s)
		case 7:
			sevens = append(sevens, s)
		default:
			nines = append(nines, s)
		}
	}
	if len(m.Stored[ac.Root]) != 0 {
		// Cannot happen: every root transition targets a depth-1 state,
		// which is by construction a depth-1 default.
		return fmt.Errorf("hwsim: start state has %d stored pointers", len(m.Stored[ac.Root]))
	}

	type slot struct {
		state int32
		units int
		off   int
	}
	var words [][]slot
	newWord := func(slots ...slot) int {
		words = append(words, slots)
		return len(words) - 1
	}
	takeOne := func() (int32, bool) {
		if len(ones) == 0 {
			return 0, false
		}
		s := ones[0]
		ones = ones[1:]
		return s, true
	}

	// Word 0: the start state plus up to eight 1-unit states.
	rootWord := []slot{{state: ac.Root, units: 1, off: 0}}
	for off := 1; off < UnitsPerWord; off++ {
		if s, ok := takeOne(); ok {
			rootWord = append(rootWord, slot{state: s, units: 1, off: off})
		}
	}
	newWord(rootWord...)

	// 9-unit states own a full word (type 15).
	for _, s := range nines {
		newWord(slot{state: s, units: 9, off: 0})
	}
	// 7-unit states anchor at 0; units 7..8 take 1-unit states.
	for _, s := range sevens {
		w := []slot{{state: s, units: 7, off: 0}}
		for off := 7; off < UnitsPerWord; off++ {
			if o, ok := takeOne(); ok {
				w = append(w, slot{state: o, units: 1, off: off})
			}
		}
		newWord(w...)
	}
	// 5-unit states anchor at 0; unit 5 takes a 1-unit state, units 6..8 a
	// 3-unit state (type 12) or more 1-unit states.
	for _, s := range fives {
		w := []slot{{state: s, units: 5, off: 0}}
		if o, ok := takeOne(); ok {
			w = append(w, slot{state: o, units: 1, off: 5})
		}
		if len(threes) > 0 {
			w = append(w, slot{state: threes[0], units: 3, off: 6})
			threes = threes[1:]
		} else {
			for off := 6; off < UnitsPerWord; off++ {
				if o, ok := takeOne(); ok {
					w = append(w, slot{state: o, units: 1, off: off})
				}
			}
		}
		newWord(w...)
	}
	// Remaining 3-unit states: three per word at units 0/3/6; a final
	// partial word tops up with 1-unit states.
	for len(threes) > 0 {
		var w []slot
		for _, off := range []int{0, 3, 6} {
			if len(threes) > 0 {
				w = append(w, slot{state: threes[0], units: 3, off: off})
				threes = threes[1:]
			} else {
				for u := off; u < off+3; u++ {
					if o, ok := takeOne(); ok {
						w = append(w, slot{state: o, units: 1, off: u})
					}
				}
			}
		}
		newWord(w...)
	}
	// Remaining 1-unit states: nine per word.
	for len(ones) > 0 {
		var w []slot
		for off := 0; off < UnitsPerWord && len(ones) > 0; off++ {
			s, _ := takeOne()
			w = append(w, slot{state: s, units: 1, off: off})
		}
		newWord(w...)
	}

	if len(words) > MaxStateWords {
		return fmt.Errorf("hwsim: machine needs %d words, 12-bit addressing allows %d (split the ruleset into more groups)",
			len(words), MaxStateWords)
	}

	// Materialize locations and check overlap invariants.
	used := 0
	for wi, w := range words {
		var occupied [UnitsPerWord]bool
		for _, sl := range w {
			st, err := typeFor(sl.units, sl.off)
			if err != nil {
				return err
			}
			for u := sl.off; u < sl.off+sl.units; u++ {
				if occupied[u] {
					return fmt.Errorf("hwsim: packing overlap in word %d unit %d", wi, u)
				}
				occupied[u] = true
			}
			img.Loc[sl.state] = StateLoc{Word: uint16(wi), Type: st}
			used += sl.units * UnitBits
		}
	}
	img.Root = img.Loc[ac.Root]
	img.Stats.StateWords = len(words)
	img.Stats.UsedStateBits = used
	img.wordPlanCount = len(words)
	return nil
}

// packLUT builds the 256 lookup-table rows from the machine's defaults.
func (img *Image) packLUT() {
	m := img.Machine
	for c := 0; c < LUTRows; c++ {
		row := &img.LUT[c]
		row.Packed = bitpack.New(LUTRowBitsModel)
		if d1 := m.Defaults.D1[c]; d1 != ac.None {
			row.D1Valid = true
			row.D1 = img.Loc[d1]
			row.Packed.SetBit(0, 1)
		} else {
			row.D1 = img.Root
		}
		for i, e := range m.Defaults.D2[c] {
			if i >= 4 {
				break // guarded by Pack's option check; defensive only
			}
			row.D2[i] = LUTD2{Valid: true, Prev: e.Prev, Loc: img.Loc[e.State]}
			row.Packed.SetField(1+8*i, 8, uint64(e.Prev))
			row.Packed.SetBit(49+i, 1)
		}
		if len(m.Defaults.D3[c]) > 0 {
			e := m.Defaults.D3[c][0]
			row.D3 = LUTD3{Valid: true, Prev2: e.Prev2, Prev1: e.Prev1, Loc: img.Loc[e.State]}
			row.Packed.SetField(33, 8, uint64(e.Prev2))
			row.Packed.SetField(41, 8, uint64(e.Prev1))
			row.Packed.SetBit(53, 1)
		}
	}
}

// writeStateWords emits the bit-exact 324-bit words.
func (img *Image) writeStateWords() error {
	m := img.Machine
	img.Words = make([]*bitpack.Vector, img.wordPlanCount)
	for i := range img.Words {
		img.Words[i] = bitpack.New(WordBits)
	}
	for s := int32(0); s < int32(len(img.Loc)); s++ {
		loc := img.Loc[s]
		word := img.Words[loc.Word]
		base := loc.bitOffset()
		info := loc.Type.Info()
		if len(m.Stored[s]) > info.MaxPtrs {
			return fmt.Errorf("hwsim: state %d has %d pointers, type %d holds %d",
				s, len(m.Stored[s]), loc.Type, info.MaxPtrs)
		}
		// Match field.
		if addr := img.matchAddr[s]; addr >= 0 {
			word.SetBit(base, 1)
			word.SetField(base+1, matchAddrBits, uint64(addr))
		}
		// Pointers, sorted by character (core keeps them sorted).
		for i, tr := range m.Stored[s] {
			off := base + MatchFieldBits + i*PtrBits
			to := img.Loc[tr.To]
			word.SetField(off+ptrCharOff, 8, uint64(tr.Char))
			word.SetField(off+ptrAddrOff, ptrAddrBits, uint64(to.Word))
			word.SetField(off+ptrTypeOff, ptrTypeBits, uint64(to.Type))
		}
	}
	return nil
}

func (img *Image) finishStats() {
	st := &img.Stats
	st.FillRatio = float64(st.UsedStateBits) / float64(st.StateWords*WordBits)
	stateBits := st.StateWords * WordBits
	matchBits := st.MatchWordsUsed * MatchWordBits
	st.TotalBytesPaper = (stateBits + matchBits + LUTRows*LUTRowBitsPaper + 7) / 8
	st.TotalBytesModel = (stateBits + matchBits + LUTRows*LUTRowBitsModel + 7) / 8
}

// readPtr decodes pointer slot i of the state at loc; ok is false when the
// slot is empty (type nibble 0).
func (img *Image) readPtr(loc StateLoc, i int) (char byte, to StateLoc, ok bool) {
	word := img.Words[loc.Word]
	off := loc.bitOffset() + MatchFieldBits + i*PtrBits
	t := StateType(word.Field(off+ptrTypeOff, ptrTypeBits))
	if t == 0 {
		return 0, StateLoc{}, false
	}
	return byte(word.Field(off+ptrCharOff, 8)),
		StateLoc{Word: uint16(word.Field(off+ptrAddrOff, ptrAddrBits)), Type: t},
		true
}

// readMatchField decodes the 12-bit match field of the state at loc.
func (img *Image) readMatchField(loc StateLoc) (valid bool, addr uint16) {
	word := img.Words[loc.Word]
	base := loc.bitOffset()
	return word.Bit(base) == 1, uint16(word.Field(base+1, matchAddrBits))
}
