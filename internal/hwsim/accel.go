package hwsim

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/device"
)

// Accelerator simulates the full FPGA design: device.Blocks string matching
// blocks organized into sets. A ruleset split into G groups occupies G
// blocks per set, every block of a set scanning the same packets for its
// group's strings; blocks/G independent sets scan distinct packets
// concurrently (§IV.B: "For rulesets containing fewer strings, the entire
// search structure can be placed on a single memory block, with the search
// engines working separately on individual packets, achieving maximum
// throughput").
type Accelerator struct {
	Device device.Device
	Images []*Image // one per group
	Groups int
	Sets   int
	Blocks []*Block // Sets × Groups blocks; block i serves group i%Groups
}

// NewAccelerator packs each group machine and validates it against the
// device's per-block memory.
func NewAccelerator(dev device.Device, grouped *core.Grouped) (*Accelerator, error) {
	groups := len(grouped.Machines)
	if groups == 0 {
		return nil, fmt.Errorf("hwsim: no group machines")
	}
	if groups > dev.Blocks {
		return nil, fmt.Errorf("hwsim: ruleset needs %d groups but %s has %d blocks",
			groups, dev.Name, dev.Blocks)
	}
	a := &Accelerator{Device: dev, Groups: groups, Sets: dev.Blocks / groups}
	for gi, m := range grouped.Machines {
		img, err := Pack(m)
		if err != nil {
			return nil, fmt.Errorf("hwsim: group %d: %w", gi, err)
		}
		if img.Stats.StateWords > dev.StateWordsPerBlock {
			return nil, fmt.Errorf(
				"hwsim: group %d needs %d state words, a %s block holds %d (split into more groups)",
				gi, img.Stats.StateWords, dev.Name, dev.StateWordsPerBlock)
		}
		a.Images = append(a.Images, img)
	}
	for set := 0; set < a.Sets; set++ {
		for g := 0; g < groups; g++ {
			a.Blocks = append(a.Blocks, NewBlock(a.Images[g]))
		}
	}
	return a, nil
}

// ScanPackets distributes packets round-robin over the sets, broadcasts
// each set's share to all blocks of the set, and merges the outputs.
func (a *Accelerator) ScanPackets(packets []Packet) ([]Output, error) {
	shares := make([][]Packet, a.Sets)
	for i, p := range packets {
		s := i % a.Sets
		shares[s] = append(shares[s], p)
	}
	var outputs []Output
	for set := 0; set < a.Sets; set++ {
		for g := 0; g < a.Groups; g++ {
			block := a.Blocks[set*a.Groups+g]
			out, err := block.ScanPackets(shares[set])
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, out...)
		}
	}
	sort.Slice(outputs, func(i, j int) bool {
		x, y := outputs[i], outputs[j]
		if x.PacketID != y.PacketID {
			return x.PacketID < y.PacketID
		}
		if x.End != y.End {
			return x.End < y.End
		}
		return x.PatternID < y.PatternID
	})
	return outputs, nil
}

// Stats aggregates block statistics.
type AccelStats struct {
	Blocks        int
	Groups        int
	Sets          int
	MemCycles     int64 // max over blocks: wall-clock in memory ticks
	BytesScanned  int64 // unique payload bytes scanned (one set's share each)
	Matches       int64
	ThroughputBps float64 // modeled steady-state rate at the device clock
	StateWords    int     // max words over group images
	MatchWords    int
	TotalBytes    int // paper-metric memory across groups
	FillRatio     float64
}

// Stats summarizes the accelerator after one or more ScanPackets calls.
func (a *Accelerator) Stats() AccelStats {
	st := AccelStats{Blocks: len(a.Blocks), Groups: a.Groups, Sets: a.Sets}
	var usedBits, capBits int
	for _, img := range a.Images {
		if img.Stats.StateWords > st.StateWords {
			st.StateWords = img.Stats.StateWords
		}
		st.MatchWords += img.Stats.MatchWordsUsed
		st.TotalBytes += img.Stats.TotalBytesPaper
		usedBits += img.Stats.UsedStateBits
		capBits += img.Stats.StateWords * WordBits
	}
	if capBits > 0 {
		st.FillRatio = float64(usedBits) / float64(capBits)
	}
	for i, b := range a.Blocks {
		if b.Stats.MemCycles > st.MemCycles {
			st.MemCycles = b.Stats.MemCycles
		}
		st.Matches += b.Stats.Matches
		// Count each set's bytes once (group 0 of each set).
		if i%a.Groups == 0 {
			st.BytesScanned += b.Stats.BytesScanned
		}
	}
	if t, err := a.Device.AggregateThroughputBps(a.Groups); err == nil {
		st.ThroughputBps = t
	}
	return st
}
