package hwsim

import (
	"testing"
	"testing/quick"

	"repro/internal/ac"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/ruleset"
)

func toySet() *ruleset.Set {
	return &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("he")},
		{ID: 1, Data: []byte("she")},
		{ID: 2, Data: []byte("his")},
		{ID: 3, Data: []byte("hers")},
	}}
}

func mustPack(t *testing.T, set *ruleset.Set, opts core.Options) *Image {
	t.Helper()
	m, err := core.Build(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// --- layout ---

func TestTypeInfoTable(t *testing.T) {
	cases := []struct {
		st   StateType
		off  int
		unit int
		max  int
	}{
		{1, 0, 1, 1}, {2, 1, 1, 1}, {9, 8, 1, 1},
		{10, 0, 3, 4}, {11, 3, 3, 4}, {12, 6, 3, 4},
		{13, 0, 5, 7}, {14, 0, 7, 10}, {15, 0, 9, 13},
	}
	for _, tc := range cases {
		info := tc.st.Info()
		if info.UnitOffset != tc.off || info.Units != tc.unit || info.MaxPtrs != tc.max {
			t.Errorf("type %d: got %+v, want off=%d units=%d max=%d",
				tc.st, info, tc.off, tc.unit, tc.max)
		}
	}
}

func TestTypeInfoInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("type 0 did not panic")
		}
	}()
	StateType(0).Info()
}

func TestStateSizesMatchFigure3(t *testing.T) {
	// Figure 3 caption arithmetic: 12-bit match field + 24 bits per pointer.
	sizes := []struct {
		ptrs, units int
	}{
		{0, 1}, {1, 1}, // 12+24 = 36
		{2, 3}, {4, 3}, // 12+96 = 108
		{5, 5}, {7, 5}, // 12+168 = 180
		{8, 7}, {10, 7}, // 12+240 = 252
		{11, 9}, {13, 9}, // 12+312 = 324
	}
	for _, tc := range sizes {
		got, err := unitsForPtrs(tc.ptrs)
		if err != nil || got != tc.units {
			t.Errorf("unitsForPtrs(%d) = %d, %v; want %d", tc.ptrs, got, err, tc.units)
		}
	}
	if _, err := unitsForPtrs(14); err == nil {
		t.Error("14 pointers accepted; hardware maximum is 13")
	}
}

func TestTypeForPlacements(t *testing.T) {
	valid := []struct {
		units, off int
		want       StateType
	}{
		{1, 0, 1}, {1, 8, 9}, {3, 0, 10}, {3, 3, 11}, {3, 6, 12},
		{5, 0, 13}, {7, 0, 14}, {9, 0, 15},
	}
	for _, tc := range valid {
		got, err := typeFor(tc.units, tc.off)
		if err != nil || got != tc.want {
			t.Errorf("typeFor(%d,%d) = %d, %v; want %d", tc.units, tc.off, got, err, tc.want)
		}
	}
	invalid := [][2]int{{3, 1}, {3, 7}, {5, 3}, {7, 2}, {9, 1}, {1, 9}}
	for _, tc := range invalid {
		if _, err := typeFor(tc[0], tc[1]); err == nil {
			t.Errorf("typeFor(%d,%d) accepted", tc[0], tc[1])
		}
	}
}

// --- packing ---

func TestPackToy(t *testing.T) {
	img := mustPack(t, toySet(), core.Options{})
	if img.Root != (StateLoc{Word: 0, Type: 1}) {
		t.Fatalf("root at %+v, want word 0 type 1", img.Root)
	}
	// 10 states, 9 of them 1-unit (≤1 stored pointer each after the Figure 2
	// compression) and one with exactly 1 pointer: everything fits 2 words.
	if img.Stats.StateWords > 2 {
		t.Fatalf("toy machine used %d words, want ≤2", img.Stats.StateWords)
	}
	if img.Stats.MatchStates != 5 {
		// States with outputs: he, she, his, hers, and "she"'s he-suffix
		// state... (she inherits he via fail) — recount: he, she(+he), his,
		// hers. The trie states carrying output sets are he, she, his, hers
		// and the hers-prefix state "her"? No — her has no output. she's
		// output set is {she, he}. So 4 matching states.
		if img.Stats.MatchStates != 4 {
			t.Fatalf("match states = %d, want 4", img.Stats.MatchStates)
		}
	}
}

func TestPackMatchMemoryContents(t *testing.T) {
	img := mustPack(t, toySet(), core.Options{})
	// "she" ends at a state matching both she (1) and he (0): one word with
	// two IDs and the last flag.
	m := img.Machine
	var sheState int32 = -1
	for s := int32(0); s < int32(m.Trie.NumStates()); s++ {
		if m.Trie.Nodes[s].Depth == 3 && m.Trie.Nodes[s].Char == 'e' {
			// depth-3 ending in 'e' is "she"
			sheState = s
		}
	}
	if sheState < 0 {
		t.Fatal("state for 'she' not found")
	}
	valid, addr := img.readMatchField(img.Loc[sheState])
	if !valid {
		t.Fatal("'she' state has no match field")
	}
	word := img.Match[addr]
	id1 := word & 0x1FFF
	id2 := word >> 13 & 0x1FFF
	last := word>>26&1 == 1
	if !last {
		t.Fatal("last flag not set on single match word")
	}
	ids := map[uint32]bool{id1: true, id2: true}
	if !ids[1] || !ids[0] {
		t.Fatalf("match word holds %d,%d; want {0,1}", id1, id2)
	}
}

func TestPackOddMatchListUsesPad(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 7, Data: []byte("abc")},
	}}
	img := mustPack(t, set, core.Options{})
	if img.Stats.MatchWordsUsed != 1 {
		t.Fatalf("match words = %d, want 1", img.Stats.MatchWordsUsed)
	}
	word := img.Match[0]
	if word&0x1FFF != 7 {
		t.Fatalf("first ID = %d, want 7", word&0x1FFF)
	}
	if word>>13&0x1FFF != MatchPadID {
		t.Fatalf("second ID = %d, want pad %d", word>>13&0x1FFF, MatchPadID)
	}
}

func TestPackNoGaps(t *testing.T) {
	// §IV.A: "states are carefully assigned a state type and memory word
	// after it has been built to insure no gaps of unused memory". With a
	// big machine, fill ratio must be near 1 (only the final partial words
	// of each class may leak units).
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 1500, Seed: 61})
	img := mustPack(t, set, core.Options{})
	if img.Stats.FillRatio < 0.95 {
		t.Fatalf("fill ratio %.3f, want >= 0.95", img.Stats.FillRatio)
	}
}

func TestPackLocTypesMatchStoredCounts(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 800, Seed: 62})
	img := mustPack(t, set, core.Options{})
	for s, loc := range img.Loc {
		info := loc.Type.Info()
		n := len(img.Machine.Stored[s])
		if n > info.MaxPtrs {
			t.Fatalf("state %d: %d pointers in type %d (max %d)", s, n, loc.Type, info.MaxPtrs)
		}
		// No over-allocation either: the packer must use the smallest class.
		units, _ := unitsForPtrs(n)
		if info.Units != units {
			t.Fatalf("state %d: %d pointers placed in %d-unit class, want %d",
				s, n, info.Units, units)
		}
	}
}

func TestPackPointerRoundTrip(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 500, Seed: 63})
	img := mustPack(t, set, core.Options{})
	m := img.Machine
	for s := int32(0); s < int32(len(img.Loc)); s++ {
		for i, tr := range m.Stored[s] {
			char, to, ok := img.readPtr(img.Loc[s], i)
			if !ok {
				t.Fatalf("state %d pointer %d: slot empty", s, i)
			}
			if char != tr.Char || to != img.Loc[tr.To] {
				t.Fatalf("state %d pointer %d: decoded (%#x,%+v), want (%#x,%+v)",
					s, i, char, to, tr.Char, img.Loc[tr.To])
			}
		}
		// The slot after the last pointer must be empty (or out of range).
		info := img.Loc[s].Type.Info()
		if n := len(m.Stored[s]); n < info.MaxPtrs {
			if _, _, ok := img.readPtr(img.Loc[s], n); ok {
				t.Fatalf("state %d: phantom pointer in slot %d", s, n)
			}
		}
	}
}

func TestPackRejectsOversizedLUTOptions(t *testing.T) {
	set := toySet()
	m, err := core.Build(set, core.Options{D2PerChar: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pack(m); err == nil {
		t.Fatal("D2PerChar=6 packed; row format holds 4")
	}
	m, err = core.Build(set, core.Options{D3PerChar: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pack(m); err == nil {
		t.Fatal("D3PerChar=2 packed; row format holds 1")
	}
}

func TestPackedLUTRowBits(t *testing.T) {
	img := mustPack(t, toySet(), core.Options{})
	// Row for 'e': d1 absent (no pattern starts with e), one d2 entry
	// (prev 'h' → "he"), one d3 entry (prev "sh" → "she").
	row := img.LUT['e']
	if row.D1Valid {
		t.Error("d1['e'] valid; no pattern starts with e")
	}
	if row.Packed.Bit(0) != 0 {
		t.Error("packed d1 bit set")
	}
	if !row.D2[0].Valid || row.D2[0].Prev != 'h' {
		t.Errorf("d2['e'][0] = %+v, want prev 'h'", row.D2[0])
	}
	if got := row.Packed.Field(1, 8); got != 'h' {
		t.Errorf("packed d2 prev = %#x, want 'h'", got)
	}
	if row.Packed.Bit(49) != 1 {
		t.Error("packed d2 valid bit clear")
	}
	if !row.D3.Valid || row.D3.Prev2 != 's' || row.D3.Prev1 != 'h' {
		t.Errorf("d3['e'] = %+v, want prev2 's' prev1 'h'", row.D3)
	}
	if got := row.Packed.Field(33, 8); got != 's' {
		t.Errorf("packed d3 prev2 = %#x", got)
	}
	if row.Packed.Bit(53) != 1 {
		t.Error("packed d3 valid bit clear")
	}
	if row.Packed.Len() != LUTRowBitsModel {
		t.Errorf("row width %d, want %d", row.Packed.Len(), LUTRowBitsModel)
	}
}

// --- engine ---

func TestEngineMatchesSoftwareMachine(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 400, Seed: 64})
	img := mustPack(t, set, core.Options{})
	m := img.Machine
	e := NewEngine(img)
	sc := m.NewScanner()

	src := rng.New(99)
	data := make([]byte, 4000)
	for i := range data {
		data[i] = src.Byte()
	}
	for k := 0; k < 8; k++ {
		p := set.Patterns[src.Intn(set.Len())]
		copy(data[src.Intn(len(data)-len(p.Data)):], p.Data)
	}
	for i, c := range data {
		res := e.Step(c)
		state := sc.Step(c)
		if res.Loc != img.Loc[state] {
			t.Fatalf("byte %d: engine at %+v, software at state %d (%+v)",
				i, res.Loc, state, img.Loc[state])
		}
		wantMatch := m.Trie.HasOutput(state)
		if res.Match != wantMatch {
			t.Fatalf("byte %d: engine match=%v, software=%v", i, res.Match, wantMatch)
		}
	}
	if e.Cycles != int64(len(data)) {
		t.Fatalf("engine spent %d cycles on %d bytes", e.Cycles, len(data))
	}
}

func TestEngineOneCyclePerByteOnAdversarialInput(t *testing.T) {
	// Input engineered to maximize default-transition misses and stored-
	// pointer hits: repeated prefixes of the longest pattern. The cycle
	// count must stay exactly len(input) — the architecture's guarantee.
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 200, Seed: 65})
	img := mustPack(t, set, core.Options{})
	longest := set.Patterns[0]
	for _, p := range set.Patterns {
		if len(p.Data) > len(longest.Data) {
			longest = p
		}
	}
	var data []byte
	for len(data) < 4096 {
		for l := 1; l <= len(longest.Data) && len(data) < 4096; l++ {
			data = append(data, longest.Data[:l]...)
		}
	}
	e := NewEngine(img)
	for _, c := range data {
		e.Step(c)
	}
	if e.Cycles != int64(len(data)) {
		t.Fatalf("%d cycles for %d bytes; 1 char/cycle violated", e.Cycles, len(data))
	}
}

func TestEngineResetClearsHistory(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("abc")},
		{ID: 1, Data: []byte("c")},
	}}
	img := mustPack(t, set, core.Options{})
	e := NewEngine(img)
	e.Step('a')
	e.Step('b')
	e.Reset()
	res := e.Step('c')
	// Without the reset the depth-3 default for 'c' (history "ab") could
	// fire and falsely match "abc"; with it we must land on the depth-1
	// state for 'c' (matching only pattern 1).
	valid, addr := img.readMatchField(res.Loc)
	if !valid {
		t.Fatal("no match after c")
	}
	word := img.Match[addr]
	if word&0x1FFF != 1 {
		t.Fatalf("matched pattern %d, want 1", word&0x1FFF)
	}
	if word>>26&1 != 1 {
		t.Fatal("last flag missing")
	}
}

// --- block ---

func TestBlockFindsEmbeddedPatterns(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 300, Seed: 66})
	img := mustPack(t, set, core.Options{})
	block := NewBlock(img)

	src := rng.New(100)
	var packets []Packet
	type want struct {
		packet int
		id     int32
	}
	var embedded []want
	for pid := 0; pid < 12; pid++ {
		payload := make([]byte, 600+src.Intn(400))
		for i := range payload {
			payload[i] = src.Byte()
		}
		p := set.Patterns[src.Intn(set.Len())]
		copy(payload[src.Intn(len(payload)-len(p.Data)):], p.Data)
		embedded = append(embedded, want{packet: pid, id: int32(p.ID)})
		packets = append(packets, Packet{ID: pid, Payload: payload})
	}
	outputs, err := block.ScanPackets(packets)
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[want]bool)
	for _, o := range outputs {
		found[want{packet: o.PacketID, id: o.PatternID}] = true
	}
	for _, w := range embedded {
		if !found[w] {
			t.Errorf("embedded pattern %d in packet %d not reported", w.id, w.packet)
		}
	}
}

func TestBlockAgreesWithOracle(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 150, Seed: 67})
	img := mustPack(t, set, core.Options{})
	block := NewBlock(img)
	oracle := ac.NewOracle(set)

	src := rng.New(101)
	var packets []Packet
	for pid := 0; pid < 9; pid++ {
		payload := make([]byte, 500)
		for i := range payload {
			payload[i] = src.Byte()
		}
		for k := 0; k < 3; k++ {
			p := set.Patterns[src.Intn(set.Len())]
			copy(payload[src.Intn(len(payload)-len(p.Data)):], p.Data)
		}
		packets = append(packets, Packet{ID: pid, Payload: payload})
	}
	outputs, err := block.ScanPackets(packets)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range packets {
		var got []ac.Match
		for _, o := range outputs {
			if o.PacketID == p.ID {
				got = append(got, ac.Match{PatternID: o.PatternID, End: o.End})
			}
		}
		want := oracle.FindAll(p.Payload)
		if !ac.MatchesEqual(got, want) {
			t.Fatalf("packet %d: block found %d matches, oracle %d", p.ID, len(got), len(want))
		}
	}
}

func TestBlockThroughputUtilization(t *testing.T) {
	// With ≥6 equal packets, all engines stay busy: utilization ≈ 1.
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 100, Seed: 68})
	img := mustPack(t, set, core.Options{})
	block := NewBlock(img)
	var packets []Packet
	for pid := 0; pid < 12; pid++ {
		payload := make([]byte, 1000)
		for i := range payload {
			payload[i] = byte(pid + i)
		}
		packets = append(packets, Packet{ID: pid, Payload: payload})
	}
	if _, err := block.ScanPackets(packets); err != nil {
		t.Fatal(err)
	}
	if u := block.Stats.PortUtilization(); u < 0.95 {
		t.Fatalf("port utilization %.3f, want >= 0.95", u)
	}
	if block.Stats.BytesScanned != 12000 {
		t.Fatalf("scanned %d bytes, want 12000", block.Stats.BytesScanned)
	}
}

func TestBlockSinglePacketUsesOneEngine(t *testing.T) {
	// One packet can only keep one engine busy: a block needs 6 packets to
	// reach full throughput ("A string matching block needs 6 packets to
	// keep its engines busy").
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 100, Seed: 69})
	img := mustPack(t, set, core.Options{})
	block := NewBlock(img)
	payload := make([]byte, 3000)
	if _, err := block.ScanPackets([]Packet{{ID: 0, Payload: payload}}); err != nil {
		t.Fatal(err)
	}
	u := block.Stats.PortUtilization()
	if u > 0.2 {
		t.Fatalf("single-packet utilization %.3f, want ≈ 1/6", u)
	}
}

func TestBlockRejectsEmptyPayload(t *testing.T) {
	img := mustPack(t, toySet(), core.Options{})
	if _, err := NewBlock(img).ScanPackets([]Packet{{ID: 0}}); err == nil {
		t.Fatal("empty payload accepted")
	}
}

// --- accelerator ---

func TestAcceleratorSingleGroupReplication(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 400, Seed: 70})
	g, err := core.BuildGrouped(set, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccelerator(device.Stratix3, g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sets != 6 || a.Groups != 1 || len(a.Blocks) != 6 {
		t.Fatalf("sets=%d groups=%d blocks=%d, want 6/1/6", a.Sets, a.Groups, len(a.Blocks))
	}
	st := a.Stats()
	if st.ThroughputBps < 44e9 {
		t.Fatalf("throughput %.1f Gbps, want 44.2", st.ThroughputBps/1e9)
	}
}

func TestAcceleratorGroupedScanEqualsOracle(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 900, Seed: 71})
	g, err := core.BuildGrouped(set, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccelerator(device.Stratix3, g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sets != 2 {
		t.Fatalf("sets = %d, want 2", a.Sets)
	}
	oracle := ac.NewOracle(set)
	src := rng.New(102)
	var packets []Packet
	for pid := 0; pid < 8; pid++ {
		payload := make([]byte, 700)
		for i := range payload {
			payload[i] = src.Byte()
		}
		for k := 0; k < 4; k++ {
			p := set.Patterns[src.Intn(set.Len())]
			copy(payload[src.Intn(len(payload)-len(p.Data)):], p.Data)
		}
		packets = append(packets, Packet{ID: pid, Payload: payload})
	}
	outputs, err := a.ScanPackets(packets)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range packets {
		var got []ac.Match
		for _, o := range outputs {
			if o.PacketID == p.ID {
				got = append(got, ac.Match{PatternID: o.PatternID, End: o.End})
			}
		}
		want := oracle.FindAll(p.Payload)
		if !ac.MatchesEqual(got, want) {
			t.Fatalf("packet %d: accelerator %d matches, oracle %d", p.ID, len(got), len(want))
		}
	}
}

func TestAcceleratorRejectsTooManyGroups(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 400, Seed: 72})
	g, err := core.BuildGrouped(set, 5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccelerator(device.Cyclone3, g); err == nil {
		t.Fatal("5 groups accepted on a 4-block device")
	}
}

// Property: the full hardware pipeline (pack + engine) agrees with the
// oracle on random instances.
func TestQuickHardwareEquivalence(t *testing.T) {
	f := func(seed int64, nData uint16) bool {
		src := rng.New(seed)
		set := &ruleset.Set{}
		seen := map[string]bool{}
		for len(set.Patterns) < 8 {
			l := 1 + src.Intn(6)
			d := make([]byte, l)
			for i := range d {
				d[i] = byte('a' + src.Intn(3))
			}
			if seen[string(d)] {
				continue
			}
			seen[string(d)] = true
			set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: d})
		}
		m, err := core.Build(set, core.Options{})
		if err != nil {
			return false
		}
		img, err := Pack(m)
		if err != nil {
			return false
		}
		data := make([]byte, 1+int(nData)%250)
		for i := range data {
			data[i] = byte('a' + src.Intn(3))
		}
		block := NewBlock(img)
		outputs, err := block.ScanPackets([]Packet{{ID: 0, Payload: data}})
		if err != nil {
			return false
		}
		var got []ac.Match
		for _, o := range outputs {
			got = append(got, ac.Match{PatternID: o.PatternID, End: o.End})
		}
		return ac.MatchesEqual(got, ac.NewOracle(set).FindAll(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
