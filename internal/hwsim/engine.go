package hwsim

// Engine simulates one string matching engine (Figure 5). Its registers
// are the current state location, the input character history (previous two
// characters with validity, cleared at packet start), and the match field
// returned by the last state fetch. Each Step consumes exactly one input
// byte and performs exactly one state transition — the architecture's
// guaranteed 1 character/cycle property; Cycles counts them.
//
// The hardware pipelines the lookup-table read, the state-memory read and
// the comparator stage across consecutive cycles; the functional simulator
// performs them within one Step, which is behaviourally identical because
// the pipeline has no feedback hazards (the paper's §IV.B walkthrough: the
// character registers its default information one cycle ahead of the state
// information it is compared against).
type Engine struct {
	img *Image

	cur     StateLoc
	h1, h2  int16 // previous input characters; -1 = invalid (packet start)
	Cycles  int64
	scanned int
}

// NewEngine returns an engine bound to a packed memory image, positioned at
// start-of-packet.
func NewEngine(img *Image) *Engine {
	e := &Engine{img: img}
	e.Reset()
	return e
}

// Reset rewinds to the start state and invalidates the character history.
func (e *Engine) Reset() {
	e.cur = e.img.Root
	e.h1, e.h2 = -1, -1
	e.scanned = 0
}

// Loc returns the current state location.
func (e *Engine) Loc() StateLoc { return e.cur }

// Scanned returns bytes consumed since Reset.
func (e *Engine) Scanned() int { return e.scanned }

// StepResult reports one transition's outcome.
type StepResult struct {
	Loc       StateLoc
	Match     bool
	MatchAddr uint16
}

// Step consumes one byte: it compares c against the stored pointers of the
// current state, falls back to the lookup table's default transitions
// (depth 3, then depth 2, then depth 1, then the start state), updates the
// history registers, and reports the new state's match field.
func (e *Engine) Step(c byte) StepResult {
	next, ok := e.matchStored(c)
	if !ok {
		next = e.resolveDefault(c)
	}
	e.h2 = e.h1
	e.h1 = int16(c)
	e.cur = next
	e.Cycles++
	e.scanned++
	valid, addr := e.img.readMatchField(next)
	return StepResult{Loc: next, Match: valid, MatchAddr: addr}
}

// matchStored runs the 15 comparator blocks of Figure 5: it scans the
// current state's pointer slots for a character match.
func (e *Engine) matchStored(c byte) (StateLoc, bool) {
	info := e.cur.Type.Info()
	for i := 0; i < info.MaxPtrs; i++ {
		char, to, ok := e.img.readPtr(e.cur, i)
		if !ok {
			break // slots fill front-to-back; first empty ends the list
		}
		if char == c {
			return to, true
		}
	}
	return StateLoc{}, false
}

// resolveDefault runs the default-transition comparator: the deepest
// lookup-table entry whose preceding-character comparison succeeds wins.
func (e *Engine) resolveDefault(c byte) StateLoc {
	row := &e.img.LUT[c]
	if row.D3.Valid && e.h2 >= 0 && e.h1 >= 0 &&
		int16(row.D3.Prev2) == e.h2 && int16(row.D3.Prev1) == e.h1 {
		return row.D3.Loc
	}
	if e.h1 >= 0 {
		for i := range row.D2 {
			if row.D2[i].Valid && int16(row.D2[i].Prev) == e.h1 {
				return row.D2[i].Loc
			}
		}
	}
	if row.D1Valid {
		return row.D1
	}
	return e.img.Root
}
