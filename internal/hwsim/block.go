package hwsim

import (
	"fmt"
	"sort"
)

// EnginesPerBlock is fixed by the architecture: 3 engines share each port
// of the true-dual-port state memory, their clocks 120° out of phase, with
// the memory running at 3× the engine clock (§IV.B, Figure 4).
const (
	EnginesPerBlock   = 6
	EnginesPerPort    = 3
	memClockPerEngine = 3
)

// Output is one reported match: pattern PatternID ends at byte offset End
// (exclusive) of packet PacketID.
type Output struct {
	PacketID  int
	PatternID int32
	End       int
}

// matchEvent is a scheduler queue entry: engine engineID hit a matching
// state whose string numbers start at Addr.
type matchEvent struct {
	packetID int
	end      int
	addr     uint16
}

// BlockStats instruments one block's run.
type BlockStats struct {
	MemCycles      int64 // memory-clock ticks simulated
	BytesScanned   int64
	Matches        int64
	MatchWordsRead int64
	MaxSchedQueue  int // high-water mark of the match scheduler buffer
}

// Block simulates one string matching block: 6 engines fed round-robin
// from a packet queue, both memory ports serving 3 engines each, and a
// match scheduler draining string numbers from the match memory two per
// memory cycle.
type Block struct {
	Img     *Image
	Engines [EnginesPerBlock]*Engine
	Stats   BlockStats

	sched     []matchEvent
	schedAddr uint16 // current read address within the front event's list
	schedBusy bool
}

// NewBlock builds a block over a packed image.
func NewBlock(img *Image) *Block {
	b := &Block{Img: img}
	for i := range b.Engines {
		b.Engines[i] = NewEngine(img)
	}
	return b
}

// Packet is one unit of work for a block.
type Packet struct {
	ID      int
	Payload []byte
}

// ScanPackets runs the block until every packet is scanned and the match
// scheduler has drained, returning all matches in canonical order. The
// simulation advances in memory-clock ticks; on each tick, one engine per
// port consumes one payload byte (engines take ticks t, t+1, t+2 round
// robin — the 120° phase offsets), and the scheduler performs at most one
// match-memory read.
func (b *Block) ScanPackets(packets []Packet) ([]Output, error) {
	for _, p := range packets {
		if len(p.Payload) == 0 {
			return nil, fmt.Errorf("hwsim: packet %d has empty payload", p.ID)
		}
	}
	queue := packets
	type job struct {
		packet Packet
		pos    int
	}
	var jobs [EnginesPerBlock]*job
	var outputs []Output

	takeJob := func(engine int) bool {
		if len(queue) == 0 {
			return false
		}
		jobs[engine] = &job{packet: queue[0]}
		queue = queue[1:]
		b.Engines[engine].Reset()
		return true
	}
	busy := func() bool {
		if len(queue) > 0 || b.schedBusy || len(b.sched) > 0 {
			return true
		}
		for _, j := range jobs {
			if j != nil {
				return true
			}
		}
		return false
	}

	for tick := int64(0); busy(); tick++ {
		phase := int(tick % memClockPerEngine)
		// Port A serves engines 0..2, port B engines 3..5.
		for port := 0; port < 2; port++ {
			engine := port*EnginesPerPort + phase
			if jobs[engine] == nil && !takeJob(engine) {
				continue
			}
			j := jobs[engine]
			res := b.Engines[engine].Step(j.packet.Payload[j.pos])
			j.pos++
			b.Stats.BytesScanned++
			if res.Match {
				b.sched = append(b.sched, matchEvent{
					packetID: j.packet.ID,
					end:      j.pos,
					addr:     res.MatchAddr,
				})
				if len(b.sched) > b.Stats.MaxSchedQueue {
					b.Stats.MaxSchedQueue = len(b.sched)
				}
			}
			if j.pos == len(j.packet.Payload) {
				jobs[engine] = nil
			}
		}
		// Match scheduler: one match-memory read per memory cycle.
		b.schedulerTick(&outputs)
		b.Stats.MemCycles++
	}
	sort.Slice(outputs, func(i, j int) bool {
		a, c := outputs[i], outputs[j]
		if a.PacketID != c.PacketID {
			return a.PacketID < c.PacketID
		}
		if a.End != c.End {
			return a.End < c.End
		}
		return a.PatternID < c.PatternID
	})
	return outputs, nil
}

// schedulerTick processes the front of the match buffer: it reads one
// 27-bit word, emits up to two string numbers, and advances to the next
// buffered match when the word's last flag is set.
func (b *Block) schedulerTick(outputs *[]Output) {
	if !b.schedBusy {
		if len(b.sched) == 0 {
			return
		}
		b.schedAddr = b.sched[0].addr
		b.schedBusy = true
	}
	ev := b.sched[0]
	word := b.Img.Match[b.schedAddr]
	b.Stats.MatchWordsRead++
	id1 := int32(word & (1<<matchIDBits - 1))
	id2 := int32(word >> matchIDBits & (1<<matchIDBits - 1))
	last := word>>(2*matchIDBits)&1 == 1

	*outputs = append(*outputs, Output{PacketID: ev.packetID, PatternID: id1, End: ev.end})
	b.Stats.Matches++
	if id2 != MatchPadID {
		*outputs = append(*outputs, Output{PacketID: ev.packetID, PatternID: id2, End: ev.end})
		b.Stats.Matches++
	}
	if last {
		b.sched = b.sched[1:]
		b.schedBusy = false
	} else {
		b.schedAddr++
	}
}

// PortUtilization reports the fraction of port-cycles that carried a byte:
// 1.0 means both ports streamed continuously (6 busy engines).
func (s BlockStats) PortUtilization() float64 {
	if s.MemCycles == 0 {
		return 0
	}
	return float64(s.BytesScanned) / float64(2*s.MemCycles)
}
