package hwsim

import (
	"testing"

	"repro/internal/ac"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ruleset"
)

// padMachine returns a structurally valid machine whose Stored lists have
// been padded with extra (fake but well-formed) transitions so that every
// state-type class appears. Pack only requires structural consistency, so
// this exercises the 108/180/252/324-bit layouts that organically built
// machines rarely need.
func padMachine(t *testing.T, wantCounts []int) *core.Machine {
	t.Helper()
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 60, Seed: 95})
	m, err := core.Build(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := int32(m.Trie.NumStates())
	state := int32(1)
	for _, want := range wantCounts {
		// Find a state (skipping the root) and pad its stored list to the
		// requested count with ascending characters.
		for ; state < n; state++ {
			if len(m.Stored[state]) <= want {
				break
			}
		}
		if state >= n {
			t.Fatalf("no state available to pad to %d", want)
		}
		list := m.Stored[state]
		used := map[byte]bool{}
		for _, tr := range list {
			used[tr.Char] = true
		}
		for c := 0; len(list) < want && c < 256; c++ {
			if used[byte(c)] {
				continue
			}
			list = append(list, core.Transition{Char: byte(c), To: (state + int32(c)) % n})
		}
		// Keep sorted by char as core guarantees.
		for i := 1; i < len(list); i++ {
			for j := i; j > 0 && list[j-1].Char > list[j].Char; j-- {
				list[j-1], list[j] = list[j], list[j-1]
			}
		}
		m.Stored[state] = list
		state++
	}
	return m
}

func TestPackAllStateTypes(t *testing.T) {
	// Force stored counts hitting every class boundary: 2 (type 10-12),
	// 5 and 7 (type 13), 8 and 10 (type 14), 11 and 13 (type 15).
	m := padMachine(t, []int{2, 4, 5, 7, 8, 10, 11, 13})
	img, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	var seen [16]bool
	for _, loc := range img.Loc {
		seen[loc.Type] = true
	}
	for _, class := range []StateType{13, 14, 15} {
		if !seen[class] {
			t.Errorf("state type %d never used", class)
		}
	}
	any3 := seen[10] || seen[11] || seen[12]
	if !any3 {
		t.Error("no 108-bit state type used")
	}
	// Bit-exact readback of every padded pointer.
	for s := int32(0); s < int32(len(img.Loc)); s++ {
		for i, tr := range m.Stored[s] {
			char, to, ok := img.readPtr(img.Loc[s], i)
			if !ok || char != tr.Char || to != img.Loc[tr.To] {
				t.Fatalf("state %d ptr %d decode mismatch", s, i)
			}
		}
	}
}

func TestPackDeterministic(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 300, Seed: 96})
	m, err := core.Build(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Words) != len(b.Words) {
		t.Fatal("word counts differ across packs")
	}
	for i := range a.Words {
		if !a.Words[i].Equal(b.Words[i]) {
			t.Fatalf("word %d differs across packs", i)
		}
	}
	for c := 0; c < LUTRows; c++ {
		if !a.LUT[c].Packed.Equal(b.LUT[c].Packed) {
			t.Fatalf("LUT row %#x differs across packs", c)
		}
	}
}

func TestSchedulerBurst(t *testing.T) {
	// A payload that is wall-to-wall matches: every byte of "aaaa..." ends
	// patterns "a", "aa", "aaa" — the scheduler queue must absorb the burst
	// and still emit every match.
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("a")},
		{ID: 1, Data: []byte("aa")},
		{ID: 2, Data: []byte("aaa")},
	}}
	m, err := core.Build(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	block := NewBlock(img)
	n := 300
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = 'a'
	}
	// Six all-match packets keep every engine producing one match event per
	// engine cycle: 2 events arrive per memory tick (one per port) while
	// the scheduler drains at most 1 — the buffer must absorb the excess.
	packets := make([]Packet, EnginesPerBlock)
	for i := range packets {
		packets[i] = Packet{ID: i, Payload: payload}
	}
	outputs, err := block.ScanPackets(packets)
	if err != nil {
		t.Fatal(err)
	}
	// Expected per packet: n of "a", n-1 of "aa", n-2 of "aaa".
	want := EnginesPerBlock * (n + (n - 1) + (n - 2))
	if len(outputs) != want {
		t.Fatalf("outputs = %d, want %d", len(outputs), want)
	}
	if block.Stats.MaxSchedQueue < 10 {
		t.Errorf("scheduler queue high-water %d; burst not exercised", block.Stats.MaxSchedQueue)
	}
	// Drain-bound run: the scheduler needs more memory ticks than the scan
	// itself (engines finish after 3n ticks; ~n·6 events × up to 2 words).
	if block.Stats.MemCycles <= int64(3*n) {
		t.Errorf("mem cycles %d suspiciously low for %d drain-bound matches", block.Stats.MemCycles, want)
	}
	// Oracle cross-check on one packet's share.
	var got []ac.Match
	for _, o := range outputs {
		if o.PacketID == 0 {
			got = append(got, ac.Match{PatternID: o.PatternID, End: o.End})
		}
	}
	if !ac.MatchesEqual(got, ac.NewOracle(set).FindAll(payload)) {
		t.Fatal("burst outputs incorrect")
	}
}

func TestAcceleratorCycloneTwoGroups(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 700, Seed: 97})
	g, err := core.BuildGrouped(set, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccelerator(device.Cyclone3, g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sets != 2 || len(a.Blocks) != 4 {
		t.Fatalf("sets=%d blocks=%d, want 2/4", a.Sets, len(a.Blocks))
	}
	st := a.Stats()
	if st.ThroughputBps < 7.4e9 || st.ThroughputBps > 7.5e9 {
		t.Fatalf("throughput %.2f Gbps, want 7.46 (Table II)", st.ThroughputBps/1e9)
	}
	// Packets must distribute over both sets.
	payloads := make([]Packet, 8)
	for i := range payloads {
		payloads[i] = Packet{ID: i, Payload: []byte("some payload data for set distribution")}
	}
	if _, err := a.ScanPackets(payloads); err != nil {
		t.Fatal(err)
	}
	bytesSet0 := a.Blocks[0].Stats.BytesScanned
	bytesSet1 := a.Blocks[2].Stats.BytesScanned // first block of set 1
	if bytesSet0 == 0 || bytesSet1 == 0 {
		t.Fatalf("a set idled: %d / %d bytes", bytesSet0, bytesSet1)
	}
}

func TestEngineHistoryAcrossManyPackets(t *testing.T) {
	// Repeatedly scanning packets through one engine with Reset in between
	// must behave identically to fresh engines: no state leaks.
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 100, Seed: 98})
	m, err := core.Build(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Pack(m)
	if err != nil {
		t.Fatal(err)
	}
	shared := NewEngine(img)
	payloads := [][]byte{
		[]byte("first packet payload x"),
		set.Patterns[3].Data,
		[]byte{0x90, 0x00, 0xFF},
		set.Patterns[7].Data,
	}
	for _, p := range payloads {
		fresh := NewEngine(img)
		shared.Reset()
		for i, c := range p {
			a := shared.Step(c)
			b := fresh.Step(c)
			if a != b {
				t.Fatalf("byte %d of %q: shared %+v, fresh %+v", i, p, a, b)
			}
		}
	}
}

func TestEngineCorrectForAblationMachines(t *testing.T) {
	// A machine compressed with MaxDepth=1 still carries depth-2/3 defaults
	// in its lookup table, and the engine evaluates the full default rule.
	// That is safe: a deeper default can only fire when its target is a
	// suffix of the input, in which case the DFA transition could not have
	// been removed under the depth-1 rule — so the default is never
	// consulted. Verify empirically against the oracle.
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 150, Seed: 99})
	for depth := 1; depth <= 3; depth++ {
		m, err := core.Build(set, core.Options{MaxDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		img, err := Pack(m)
		if err != nil {
			t.Fatal(err)
		}
		block := NewBlock(img)
		payload := append([]byte("noise "), set.Patterns[11].Data...)
		payload = append(payload, []byte(" more ")...)
		payload = append(payload, set.Patterns[42].Data...)
		outputs, err := block.ScanPackets([]Packet{{ID: 0, Payload: payload}})
		if err != nil {
			t.Fatal(err)
		}
		var got []ac.Match
		for _, o := range outputs {
			got = append(got, ac.Match{PatternID: o.PatternID, End: o.End})
		}
		want := ac.NewOracle(set).FindAll(payload)
		if !ac.MatchesEqual(got, want) {
			t.Fatalf("MaxDepth=%d: hardware %d matches, oracle %d", depth, len(got), len(want))
		}
	}
}
