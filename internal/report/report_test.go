package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "TABLE I. RESOURCE UTILIZATION",
		Headers: []string{"Device", "LEs", "fmax"},
	}
	tb.AddRow("Cyclone 3", 35511, "233.15 MHz")
	tb.AddRow("Stratix 3", 69585, "460.19 MHz")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TABLE I", "Device", "Cyclone 3", "35511", "460.19 MHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: each data line must be at least as long as the header.
	if len(lines[3]) < len("Cyclone 3") {
		t.Error("row shorter than content")
	}
}

func TestTableFloatTrimming(t *testing.T) {
	tb := &Table{Headers: []string{"v"}}
	tb.AddRow(2.50)
	tb.AddRow(2.39)
	tb.AddRow(98.0)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2.5", "2.39", "98"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2.50") || strings.Contains(out, "98.00") {
		t.Errorf("trailing zeros not trimmed:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"a"}}
	tb.AddRow("x", "y", "z")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "z") {
		t.Error("extra columns dropped")
	}
}

func TestWriteTSV(t *testing.T) {
	series := []Series{
		{Name: "634 Strings", Points: [][2]float64{{1, 2}, {3, 4.5}}},
		{Name: "1603 Strings", Points: [][2]float64{{5, 6}}},
	}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, "Power (W)", "Throughput (Gbps)", series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# 634 Strings") || !strings.Contains(out, "3\t4.5") {
		t.Errorf("TSV malformed:\n%s", out)
	}
	if !strings.Contains(out, "\n\n#") {
		t.Error("series not blank-line separated")
	}
}

func TestAsciiPlotBasic(t *testing.T) {
	series := []Series{{
		Name:   "line",
		Points: [][2]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}},
	}}
	var buf bytes.Buffer
	if err := AsciiPlot(&buf, series, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "*") < 3 {
		t.Errorf("plot missing points:\n%s", out)
	}
	if !strings.Contains(out, "line") {
		t.Error("legend missing")
	}
}

func TestAsciiPlotErrors(t *testing.T) {
	if err := AsciiPlot(&bytes.Buffer{}, nil, 40, 10); err == nil {
		t.Error("empty series accepted")
	}
	series := []Series{{Name: "x", Points: [][2]float64{{0, 0}}}}
	if err := AsciiPlot(&bytes.Buffer{}, series, 2, 2); err == nil {
		t.Error("tiny plot area accepted")
	}
}

func TestAsciiPlotMultipleSeriesDistinctMarks(t *testing.T) {
	series := []Series{
		{Name: "a", Points: [][2]float64{{0, 0}}},
		{Name: "b", Points: [][2]float64{{1, 1}}},
	}
	var buf bytes.Buffer
	if err := AsciiPlot(&buf, series, 30, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("marks not distinct:\n%s", out)
	}
}
