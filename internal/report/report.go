// Package report renders the tables and figure series the bench harness
// emits: fixed-width ASCII tables mirroring the paper's layout, TSV series
// for plotting, and a rough ASCII scatter for quick visual checks of the
// figure shapes.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Series is one plottable line of (x, y) points.
type Series struct {
	Name   string
	Points [][2]float64
}

// WriteTSV emits series in a gnuplot-friendly tab-separated layout:
// a header line, then x<TAB>y rows per series separated by blank lines.
func WriteTSV(w io.Writer, xLabel, yLabel string, series []Series) error {
	for si, s := range series {
		if si > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s: %s vs %s\n", s.Name, yLabel, xLabel); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%g\t%g\n", p[0], p[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// AsciiPlot draws the series as a crude scatter in a width×height grid,
// each series marked with a distinct rune. It is meant for eyeballing the
// shape of Figures 6-8 in terminal output, not for publication.
func AsciiPlot(w io.Writer, series []Series, width, height int) error {
	if width < 8 || height < 4 {
		return fmt.Errorf("report: plot area %dx%d too small", width, height)
	}
	minX, maxX, minY, maxY := 0.0, 0.0, 0.0, 0.0
	first := true
	for _, s := range series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p[0], p[0], p[1], p[1]
				first = false
				continue
			}
			if p[0] < minX {
				minX = p[0]
			}
			if p[0] > maxX {
				maxX = p[0]
			}
			if p[1] < minY {
				minY = p[1]
			}
			if p[1] > maxY {
				maxY = p[1]
			}
		}
	}
	if first {
		return fmt.Errorf("report: no points to plot")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune("*o+x#@%&")
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			x := int(float64(width-1) * (p[0] - minX) / (maxX - minX))
			y := int(float64(height-1) * (p[1] - minY) / (maxY - minY))
			grid[height-1-y][x] = mark
		}
	}
	var sb strings.Builder
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.1f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%9.1f ", minY)
		}
		sb.WriteString(label)
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", 10))
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	sb.WriteString(fmt.Sprintf("%10s%-*.1f%*.1f\n", "", width/2, minX, width/2, maxX))
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", marks[si%len(marks)], s.Name))
	}
	sb.WriteString("          " + strings.Join(legend, "   ") + "\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
