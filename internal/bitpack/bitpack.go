// Package bitpack provides fixed-width bit vectors with arbitrary bit-field
// access. It is the foundation of the bit-exact memory images used by the
// hardware simulator: 324-bit state-memory words, 27-bit match-memory words
// and 49/54-bit lookup-table rows are all represented as Vectors.
//
// Bit numbering is little-endian: bit 0 is the least significant bit of the
// first 64-bit limb. Fields are identified by (offset, width) pairs with
// width up to 64 bits and may straddle limb boundaries.
package bitpack

import (
	"fmt"
	"strings"
)

// Vector is a fixed-width string of bits. The zero value is unusable; create
// Vectors with New or FromBytes.
type Vector struct {
	nbits int
	limbs []uint64
}

// New returns a zeroed Vector that is nbits wide. It panics if nbits is
// negative.
func New(nbits int) *Vector {
	if nbits < 0 {
		panic(fmt.Sprintf("bitpack: negative width %d", nbits))
	}
	return &Vector{
		nbits: nbits,
		limbs: make([]uint64, (nbits+63)/64),
	}
}

// Len returns the width of the vector in bits.
func (v *Vector) Len() int { return v.nbits }

// Bit returns bit i (0 or 1).
func (v *Vector) Bit(i int) uint64 {
	v.check(i, 1)
	return (v.limbs[i/64] >> (uint(i) % 64)) & 1
}

// SetBit sets bit i to the low bit of b.
func (v *Vector) SetBit(i int, b uint64) {
	v.check(i, 1)
	mask := uint64(1) << (uint(i) % 64)
	if b&1 == 1 {
		v.limbs[i/64] |= mask
	} else {
		v.limbs[i/64] &^= mask
	}
}

// Field reads the width-bit field starting at bit offset off.
func (v *Vector) Field(off, width int) uint64 {
	v.checkField(off, width)
	if width == 0 {
		return 0
	}
	limb := off / 64
	shift := uint(off % 64)
	val := v.limbs[limb] >> shift
	if rem := 64 - int(shift); rem < width {
		val |= v.limbs[limb+1] << uint(rem)
	}
	if width < 64 {
		val &= (1 << uint(width)) - 1
	}
	return val
}

// SetField writes val into the width-bit field starting at bit offset off.
// It panics if val does not fit in width bits, which catches packing bugs at
// the point of corruption rather than at readback.
func (v *Vector) SetField(off, width int, val uint64) {
	v.checkField(off, width)
	if width == 0 {
		if val != 0 {
			panic("bitpack: nonzero value in zero-width field")
		}
		return
	}
	if width < 64 && val >= 1<<uint(width) {
		panic(fmt.Sprintf("bitpack: value %#x overflows %d-bit field", val, width))
	}
	limb := off / 64
	shift := uint(off % 64)
	var mask uint64
	if width == 64 {
		mask = ^uint64(0)
	} else {
		mask = (1 << uint(width)) - 1
	}
	v.limbs[limb] = v.limbs[limb]&^(mask<<shift) | val<<shift
	if rem := 64 - int(shift); rem < width {
		hi := uint(rem)
		v.limbs[limb+1] = v.limbs[limb+1]&^(mask>>hi) | val>>hi
	}
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := New(v.nbits)
	copy(c.limbs, v.limbs)
	return c
}

// Equal reports whether v and o have identical width and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.nbits != o.nbits {
		return false
	}
	for i := range v.limbs {
		if v.limbs[i] != o.limbs[i] {
			return false
		}
	}
	return true
}

// Zero reports whether every bit of v is clear.
func (v *Vector) Zero() bool {
	for _, l := range v.limbs {
		if l != 0 {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	n := 0
	for i := 0; i < v.nbits; i++ {
		if v.Bit(i) == 1 {
			n++
		}
	}
	return n
}

// Bytes serializes the vector to ceil(nbits/8) little-endian bytes.
func (v *Vector) Bytes() []byte {
	out := make([]byte, (v.nbits+7)/8)
	for i := range out {
		out[i] = byte(v.Field8(i * 8))
	}
	return out
}

// Field8 reads up to 8 bits starting at off, clamped to the vector width.
// It exists so Bytes can serialize vectors whose width is not a multiple
// of 8.
func (v *Vector) Field8(off int) uint64 {
	w := 8
	if off+w > v.nbits {
		w = v.nbits - off
	}
	return v.Field(off, w)
}

// FromBytes deserializes a Vector of width nbits from little-endian bytes
// produced by Bytes. Trailing bits beyond nbits in the final byte must be
// zero.
func FromBytes(nbits int, b []byte) (*Vector, error) {
	want := (nbits + 7) / 8
	if len(b) != want {
		return nil, fmt.Errorf("bitpack: need %d bytes for %d bits, got %d", want, nbits, len(b))
	}
	v := New(nbits)
	for i, by := range b {
		w := 8
		if i*8+w > nbits {
			w = nbits - i*8
			if by>>uint(w) != 0 {
				return nil, fmt.Errorf("bitpack: stray bits beyond width %d in final byte %#x", nbits, by)
			}
		}
		if w > 0 {
			v.SetField(i*8, w, uint64(by)&((1<<uint(w))-1))
		}
	}
	return v, nil
}

// String renders the vector as big-endian hex, most significant nibble
// first, for debugging.
func (v *Vector) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'h", v.nbits)
	nibbles := (v.nbits + 3) / 4
	for i := nibbles - 1; i >= 0; i-- {
		off := i * 4
		w := 4
		if off+w > v.nbits {
			w = v.nbits - off
		}
		fmt.Fprintf(&sb, "%x", v.Field(off, w))
	}
	return sb.String()
}

func (v *Vector) check(i, w int) {
	if i < 0 || i+w > v.nbits {
		panic(fmt.Sprintf("bitpack: access [%d,%d) out of range of %d-bit vector", i, i+w, v.nbits))
	}
}

func (v *Vector) checkField(off, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitpack: field width %d out of range [0,64]", width))
	}
	if off < 0 || off+width > v.nbits {
		panic(fmt.Sprintf("bitpack: field [%d,%d) out of range of %d-bit vector", off, off+width, v.nbits))
	}
}
