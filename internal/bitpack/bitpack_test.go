package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(324)
	if v.Len() != 324 {
		t.Fatalf("Len = %d, want 324", v.Len())
	}
	if !v.Zero() {
		t.Fatal("new vector is not zero")
	}
	for i := 0; i < 324; i++ {
		if v.Bit(i) != 0 {
			t.Fatalf("bit %d set in new vector", i)
		}
	}
}

func TestSetBitGetBit(t *testing.T) {
	v := New(100)
	idx := []int{0, 1, 63, 64, 65, 98, 99}
	for _, i := range idx {
		v.SetBit(i, 1)
	}
	for _, i := range idx {
		if v.Bit(i) != 1 {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := v.OnesCount(); got != len(idx) {
		t.Errorf("OnesCount = %d, want %d", got, len(idx))
	}
	v.SetBit(63, 0)
	if v.Bit(63) != 0 {
		t.Error("bit 63 still set after clearing")
	}
}

func TestFieldRoundTripAligned(t *testing.T) {
	v := New(128)
	v.SetField(0, 64, 0xDEADBEEFCAFEF00D)
	if got := v.Field(0, 64); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("Field(0,64) = %#x", got)
	}
	v.SetField(64, 64, 0x0123456789ABCDEF)
	if got := v.Field(64, 64); got != 0x0123456789ABCDEF {
		t.Fatalf("Field(64,64) = %#x", got)
	}
	// First field must be untouched by the second write.
	if got := v.Field(0, 64); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("Field(0,64) clobbered: %#x", got)
	}
}

func TestFieldStraddlesLimbBoundary(t *testing.T) {
	v := New(128)
	v.SetField(60, 12, 0xABC)
	if got := v.Field(60, 12); got != 0xABC {
		t.Fatalf("straddling field = %#x, want 0xabc", got)
	}
	// Neighbours unchanged.
	if got := v.Field(0, 60); got != 0 {
		t.Fatalf("low neighbour dirtied: %#x", got)
	}
	if got := v.Field(72, 56); got != 0 {
		t.Fatalf("high neighbour dirtied: %#x", got)
	}
}

func TestSetFieldOverwrite(t *testing.T) {
	v := New(64)
	v.SetField(8, 24, 0xFFFFFF)
	v.SetField(8, 24, 0x000001)
	if got := v.Field(8, 24); got != 1 {
		t.Fatalf("overwrite failed: %#x", got)
	}
}

func TestSetFieldOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized value")
		}
	}()
	New(64).SetField(0, 4, 16)
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(10).Bit(10) },
		func() { New(10).SetBit(-1, 1) },
		func() { New(10).Field(8, 4) },
		func() { New(10).SetField(0, 65, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestZeroWidthField(t *testing.T) {
	v := New(8)
	if got := v.Field(3, 0); got != 0 {
		t.Fatalf("zero-width read = %d", got)
	}
	v.SetField(3, 0, 0) // must not panic
}

func TestCloneIndependence(t *testing.T) {
	v := New(324)
	v.SetField(100, 24, 0xABCDEF)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.SetField(100, 24, 0x123456)
	if v.Field(100, 24) != 0xABCDEF {
		t.Fatal("mutating clone changed original")
	}
}

func TestEqualWidthMismatch(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Fatal("vectors of different widths reported equal")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, nbits := range []int{1, 7, 8, 9, 27, 49, 54, 63, 64, 65, 324} {
		v := New(nbits)
		rng := rand.New(rand.NewSource(int64(nbits)))
		for i := 0; i < nbits; i++ {
			v.SetBit(i, uint64(rng.Intn(2)))
		}
		b := v.Bytes()
		got, err := FromBytes(nbits, b)
		if err != nil {
			t.Fatalf("nbits=%d: FromBytes: %v", nbits, err)
		}
		if !v.Equal(got) {
			t.Fatalf("nbits=%d: round trip mismatch", nbits)
		}
	}
}

func TestFromBytesRejectsBadLength(t *testing.T) {
	if _, err := FromBytes(27, make([]byte, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestFromBytesRejectsStrayBits(t *testing.T) {
	b := []byte{0xFF, 0xFF, 0xFF, 0xFF} // 27-bit vector: top 5 bits of byte 3 stray
	if _, err := FromBytes(27, b); err == nil {
		t.Fatal("expected stray-bit error")
	}
}

func TestStringFormat(t *testing.T) {
	v := New(12)
	v.SetField(0, 12, 0xABC)
	if got := v.String(); got != "12'habc" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: writing a set of non-overlapping fields and reading them back
// returns exactly the written values.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(vals []uint16, seed int64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 20 {
			vals = vals[:20]
		}
		v := New(20 * 16)
		for i, val := range vals {
			v.SetField(i*16, 16, uint64(val))
		}
		for i, val := range vals {
			if v.Field(i*16, 16) != uint64(val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Bytes/FromBytes round-trips arbitrary vectors.
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(seed int64, widthSel uint8) bool {
		nbits := 1 + int(widthSel)%512
		v := New(nbits)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < nbits; i++ {
			v.SetBit(i, uint64(rng.Intn(2)))
		}
		got, err := FromBytes(nbits, v.Bytes())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a field write never disturbs bits outside the field.
func TestQuickFieldIsolation(t *testing.T) {
	f := func(seed int64, off8 uint8, w6 uint8, val uint64) bool {
		nbits := 324
		off := int(off8) % 260
		w := 1 + int(w6)%64
		if off+w > nbits {
			w = nbits - off
		}
		v := New(nbits)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < nbits; i++ {
			v.SetBit(i, uint64(rng.Intn(2)))
		}
		before := v.Clone()
		if w < 64 {
			val &= (1 << uint(w)) - 1
		}
		v.SetField(off, w, val)
		if v.Field(off, w) != val {
			return false
		}
		for i := 0; i < nbits; i++ {
			if i >= off && i < off+w {
				continue
			}
			if v.Bit(i) != before.Bit(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
