// Package ruleset models the fixed-string content of DPI rulesets.
//
// The paper evaluates on 6,275 unique content strings extracted from the
// Snort ruleset, plus five reduced sets (500, 634, 1204, 1603 and 2588
// strings) produced by "randomly extracting strings while keeping the same
// character distribution" (§V.A). The real Snort strings are not
// redistributable, so this package provides:
//
//   - a deterministic synthetic generator (Generate) whose string-length
//     histogram reproduces Figure 6 and whose byte content mimics the three
//     dominant Snort content classes (ASCII keywords/URI fragments, binary
//     shellcode bytes, and mixed text), including the saturating growth of
//     first-character diversity that drives the original-AC pointer counts;
//   - the paper's distribution-preserving reducer (Reduce, ReduceToChars);
//   - a parser for Snort-style content strings with |hex| escapes.
package ruleset

import (
	"fmt"
	"sort"
)

// Pattern is one fixed string to be matched. ID is the string number
// reported on a match; the hardware stores it as a 13-bit value.
type Pattern struct {
	ID   int
	Data []byte
	Name string // optional source rule name
}

// Clone returns a deep copy of the pattern.
func (p Pattern) Clone() Pattern {
	d := make([]byte, len(p.Data))
	copy(d, p.Data)
	return Pattern{ID: p.ID, Data: d, Name: p.Name}
}

// Set is an ordered collection of unique patterns.
type Set struct {
	Patterns []Pattern
}

// Len returns the number of patterns.
func (s *Set) Len() int { return len(s.Patterns) }

// CharCount returns the total number of characters across all patterns,
// the size metric used by Table III (19,124 characters).
func (s *Set) CharCount() int {
	n := 0
	for _, p := range s.Patterns {
		n += len(p.Data)
	}
	return n
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{Patterns: make([]Pattern, len(s.Patterns))}
	for i, p := range s.Patterns {
		out.Patterns[i] = p.Clone()
	}
	return out
}

// FirstCharCount returns the number of distinct first bytes across the set.
// This equals the number of depth-1 states in the Aho-Corasick machine and
// hence the number of non-start depth-1 default transition pointers
// (Table II row "d1" for single-group machines).
func (s *Set) FirstCharCount() int {
	var seen [256]bool
	n := 0
	for _, p := range s.Patterns {
		if len(p.Data) > 0 && !seen[p.Data[0]] {
			seen[p.Data[0]] = true
			n++
		}
	}
	return n
}

// Dedup returns a new set with byte-identical patterns removed (first
// occurrence wins) and IDs renumbered densely from 0.
func (s *Set) Dedup() *Set {
	seen := make(map[string]bool, len(s.Patterns))
	out := &Set{}
	for _, p := range s.Patterns {
		k := string(p.Data)
		if seen[k] {
			continue
		}
		seen[k] = true
		q := p.Clone()
		q.ID = len(out.Patterns)
		out.Patterns = append(out.Patterns, q)
	}
	return out
}

// Renumber assigns IDs 0..n-1 in current order, in place.
func (s *Set) Renumber() {
	for i := range s.Patterns {
		s.Patterns[i].ID = i
	}
}

// Validate checks set invariants: non-empty patterns, unique IDs, unique
// content, and IDs small enough for the 13-bit hardware string-number field.
func (s *Set) Validate() error {
	ids := make(map[int]bool, len(s.Patterns))
	content := make(map[string]bool, len(s.Patterns))
	for i, p := range s.Patterns {
		if len(p.Data) == 0 {
			return fmt.Errorf("ruleset: pattern %d is empty", i)
		}
		if ids[p.ID] {
			return fmt.Errorf("ruleset: duplicate pattern ID %d", p.ID)
		}
		ids[p.ID] = true
		// The hardware stores string numbers in 13-bit fields, two per
		// 27-bit match-memory word; the all-ones value 8191 pads the unused
		// half of an odd final word, so it cannot name a pattern.
		if p.ID < 0 || p.ID >= 1<<13-1 {
			return fmt.Errorf("ruleset: pattern ID %d outside the usable 13-bit range [0,8190]", p.ID)
		}
		k := string(p.Data)
		if content[k] {
			return fmt.Errorf("ruleset: duplicate pattern content %q", p.Data)
		}
		content[k] = true
	}
	return nil
}

// SortLex sorts patterns lexicographically by content, in place. The group
// splitter uses lexicographic order so that strings sharing prefixes land in
// the same group, minimizing duplicated trie states across groups.
func (s *Set) SortLex() {
	sort.Slice(s.Patterns, func(i, j int) bool {
		return string(s.Patterns[i].Data) < string(s.Patterns[j].Data)
	})
}

// SplitChars splits the set into n groups of roughly equal character count,
// taking contiguous runs in lexicographic order so shared prefixes stay
// together. This mirrors the paper's splitting of large rulesets across
// string matching blocks (§IV.B). IDs are preserved so matches from any
// group report the global string number.
func (s *Set) SplitChars(n int) []*Set {
	if n <= 1 {
		return []*Set{s.Clone()}
	}
	sorted := s.Clone()
	sorted.SortLex()
	total := sorted.CharCount()
	groups := make([]*Set, 0, n)
	cur := &Set{}
	curChars := 0
	remaining := total
	for i := 0; i < len(sorted.Patterns); i++ {
		p := sorted.Patterns[i]
		target := remaining / (n - len(groups))
		if curChars > 0 && curChars+len(p.Data) > target && len(groups) < n-1 {
			groups = append(groups, cur)
			remaining -= curChars
			cur = &Set{}
			curChars = 0
		}
		cur.Patterns = append(cur.Patterns, p.Clone())
		curChars += len(p.Data)
	}
	groups = append(groups, cur)
	for len(groups) < n {
		groups = append(groups, &Set{})
	}
	return groups
}
