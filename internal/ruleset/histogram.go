package ruleset

// Figure 6 plots the number of strings at each length, with the axis
// labelled at 1, 5, 10, ..., 45 and a final 50+ bucket. LengthHistogram
// reproduces that series.

// HistBucket is one point of the Figure 6 series.
type HistBucket struct {
	// Length is the exact string length for buckets below 50; the final
	// bucket aggregates lengths >= 50 and is reported with Length == 50 and
	// Plus == true.
	Length int
	Plus   bool
	Count  int
}

// LengthHistogram returns the per-length counts of s in Figure 6 form:
// one bucket per exact length 1..49 and a final aggregated 50+ bucket.
func LengthHistogram(s *Set) []HistBucket {
	counts := make([]int, 51)
	for _, p := range s.Patterns {
		l := len(p.Data)
		if l >= 50 {
			counts[50]++
		} else if l >= 1 {
			counts[l]++
		}
	}
	out := make([]HistBucket, 0, 50)
	for l := 1; l <= 49; l++ {
		out = append(out, HistBucket{Length: l, Count: counts[l]})
	}
	out = append(out, HistBucket{Length: 50, Plus: true, Count: counts[50]})
	return out
}

// HistogramDistance returns the L1 distance between the *normalized* length
// histograms of two sets. The reducer's contract is to preserve the length
// distribution; tests assert this distance stays small.
func HistogramDistance(a, b *Set) float64 {
	ha, hb := LengthHistogram(a), LengthHistogram(b)
	na, nb := float64(a.Len()), float64(b.Len())
	d := 0.0
	for i := range ha {
		pa := float64(ha[i].Count) / na
		pb := float64(hb[i].Count) / nb
		if pa > pb {
			d += pa - pb
		} else {
			d += pb - pa
		}
	}
	return d
}

// PeakRange returns the inclusive length range holding the highest counts:
// the smallest window [lo, hi] capturing at least frac of all strings,
// grown greedily from the modal length. The paper observes the peak of the
// Snort distribution lies between 4 and 13 bytes.
func PeakRange(s *Set, frac float64) (lo, hi int) {
	h := LengthHistogram(s)
	mode, best := 1, -1
	for _, b := range h {
		if b.Count > best {
			best = b.Count
			mode = b.Length
		}
	}
	lo, hi = mode, mode
	captured := best
	target := int(frac * float64(s.Len()))
	count := func(l int) int {
		if l < 1 || l > 50 {
			return 0
		}
		return h[l-1].Count
	}
	for captured < target && (lo > 1 || hi < 50) {
		left, right := count(lo-1), count(hi+1)
		if left >= right && lo > 1 {
			lo--
			captured += left
		} else if hi < 50 {
			hi++
			captured += right
		} else {
			lo--
			captured += left
		}
	}
	return lo, hi
}
