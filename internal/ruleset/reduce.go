package ruleset

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Reduce returns a new set of exactly n patterns sampled from s while
// preserving the string-length distribution, reproducing the paper's
// reduction procedure: "we created a program which reduced the number of
// strings by randomly extracting strings while keeping the same character
// distribution" (§V.A). Pattern IDs are preserved so reduced sets report the
// same string numbers as the full set.
func (s *Set) Reduce(n int, seed int64) (*Set, error) {
	if n <= 0 || n > s.Len() {
		return nil, fmt.Errorf("ruleset: Reduce target %d out of range (set has %d)", n, s.Len())
	}
	if n == s.Len() {
		return s.Clone(), nil
	}
	src := rng.New(seed)
	bins := binByLength(s)
	lengths := sortedKeys(bins)

	// Proportional allocation with largest-remainder rounding so the
	// per-length share of the reduced set matches the full set.
	type alloc struct {
		length int
		take   int
		frac   float64
	}
	allocs := make([]alloc, 0, len(bins))
	total := s.Len()
	taken := 0
	for _, l := range lengths {
		exact := float64(len(bins[l])) * float64(n) / float64(total)
		take := int(exact)
		if take > len(bins[l]) {
			take = len(bins[l])
		}
		allocs = append(allocs, alloc{length: l, take: take, frac: exact - float64(take)})
		taken += take
	}
	// Distribute the remainder to the largest fractional parts.
	sort.SliceStable(allocs, func(i, j int) bool { return allocs[i].frac > allocs[j].frac })
	for i := 0; taken < n; i = (i + 1) % len(allocs) {
		a := &allocs[i]
		if a.take < len(bins[a.length]) {
			a.take++
			taken++
		}
	}

	out := &Set{}
	sort.Slice(allocs, func(i, j int) bool { return allocs[i].length < allocs[j].length })
	for _, a := range allocs {
		idx := bins[a.length]
		src.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, k := range idx[:a.take] {
			out.Patterns = append(out.Patterns, s.Patterns[k].Clone())
		}
	}
	// Restore original relative order (by ID) for determinism downstream.
	sort.Slice(out.Patterns, func(i, j int) bool { return out.Patterns[i].ID < out.Patterns[j].ID })
	return out, nil
}

// ReduceToChars samples a subset whose total character count is as close as
// possible to chars while preserving the length distribution. This
// reproduces the Table III comparison set: the paper reduced its 6,275
// strings "until it had 19,124 characters, while keeping the original
// character distribution".
func (s *Set) ReduceToChars(chars int, seed int64) (*Set, error) {
	total := s.CharCount()
	if chars <= 0 || chars > total {
		return nil, fmt.Errorf("ruleset: ReduceToChars target %d out of range (set has %d)", chars, total)
	}
	// First pass: proportional by count, scaled by character mass.
	n := int(float64(s.Len()) * float64(chars) / float64(total))
	if n < 1 {
		n = 1
	}
	out, err := s.Reduce(n, seed)
	if err != nil {
		return nil, err
	}
	// Greedy trim/grow with random singles until within one mean length.
	src := rng.New(seed ^ 0x5DEECE66D)
	chosen := make(map[int]bool, out.Len())
	for _, p := range out.Patterns {
		chosen[p.ID] = true
	}
	meanLen := total / s.Len()
	for i := 0; i < 4*s.Len(); i++ {
		diff := out.CharCount() - chars
		if abs(diff) <= meanLen {
			break
		}
		if diff > 0 {
			// Remove a random chosen pattern.
			k := src.Intn(out.Len())
			delete(chosen, out.Patterns[k].ID)
			out.Patterns = append(out.Patterns[:k], out.Patterns[k+1:]...)
		} else {
			// Add a random unchosen pattern.
			k := src.Intn(s.Len())
			if chosen[s.Patterns[k].ID] {
				continue
			}
			chosen[s.Patterns[k].ID] = true
			out.Patterns = append(out.Patterns, s.Patterns[k].Clone())
		}
	}
	sort.Slice(out.Patterns, func(i, j int) bool { return out.Patterns[i].ID < out.Patterns[j].ID })
	return out, nil
}

func binByLength(s *Set) map[int][]int {
	bins := make(map[int][]int)
	for i, p := range s.Patterns {
		bins[len(p.Data)] = append(bins[len(p.Data)], i)
	}
	return bins
}

func sortedKeys(m map[int][]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
