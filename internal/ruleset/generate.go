package ruleset

import (
	"fmt"

	"repro/internal/rng"
)

// GenConfig controls synthetic ruleset generation.
type GenConfig struct {
	// N is the number of unique patterns to generate.
	N int
	// Seed makes generation deterministic.
	Seed int64
}

// Content class mix. Snort contents are dominated by URI/path fragments,
// protocol keywords, and raw shellcode bytes; the weights below set the
// class share of generated patterns.
const (
	classURI = iota
	classKeyword
	classBinary
)

var classWeights = []float64{0.45, 0.25, 0.30}

// lengthWeights[i] is the sampling weight of pattern length i+1 for lengths
// 1..49. The shape reproduces Figure 6: low mass at 1-3 characters, a broad
// peak across 4-13 (the paper: "the peak in the character distribution is
// between 4 and 13 bytes"), a declining shoulder to ~20, and a thin tail.
// Lengths of 50 and over are sampled separately with total weight
// longTailWeight and a geometric-decay profile.
var lengthWeights = []float64{
	6, 12, 22, // 1-3
	48, 58, 62, 62, 58, 54, 48, 44, 38, 33, // 4-13: the Figure 6 peak
	28, 24, 21, 18, 16, 14, 13, // 14-20
	12, 11, 10, 9, 8, 8, 7, 7, 6, 6, // 21-30
	5, 5, 4, 4, 4, 3, 3, 3, 3, 3, // 31-40
	2, 2, 2, 2, 2, 2, 2, 2, 2, // 41-49
}

const (
	longTailWeight = 30.0 // total weight of the 50+ bucket
	longTailMaxLen = 122  // longest generated pattern
)

// firstBytePool returns the candidate first bytes of fresh patterns together
// with Zipf-like weights. Pool size and the Zipf exponent are tuned so the
// number of distinct first characters saturates the way Table II reports
// (≈68 distinct at 634 strings growing to ≈110 at 6,275).
func firstBytePool() (pool []byte, weights []float64) {
	add := func(b byte) {
		pool = append(pool, b)
	}
	// Common textual starters first (they receive the largest weights).
	for _, b := range []byte("/.|%&?=_-~ ") {
		add(b)
	}
	for b := byte('a'); b <= 'z'; b++ {
		add(b)
	}
	for b := byte('A'); b <= 'Z'; b++ {
		add(b)
	}
	for b := byte('0'); b <= '9'; b++ {
		add(b)
	}
	// Binary starters seen in shellcode/exploit contents: x86 opcodes,
	// control bytes and high-bit constants. A wide tail here sets the
	// ceiling on first-character diversity.
	for _, b := range []byte{
		0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x0A,
		0x0B, 0x0C, 0x0D, 0x10, 0x16, 0x1B, 0x1F, 0x21, 0x23, 0x24,
		0x7F, 0x80, 0x81, 0x83, 0x85, 0x88, 0x89, 0x8B, 0x90, 0x99,
		0xA0, 0xA1, 0xB0, 0xB8, 0xBB, 0xBE, 0xBF, 0xC0, 0xC3, 0xC7,
		0xC9, 0xCC, 0xCD, 0xD0, 0xE8, 0xE9, 0xEB, 0xF0, 0xF4, 0xFE,
		0xFF, 0x31, 0x33, 0x40, 0x50, 0x5B, 0x5E, 0x68, 0x6A, 0x74,
	} {
		add(b)
	}
	// Zipf with exponent 1.4 over rank, tuned so distinct-first-character
	// counts track Table II (≈68 at 634 strings saturating to ≈110 at
	// 6,275).
	weights = make([]float64, len(pool))
	for i := range weights {
		weights[i] = 1 / pow14(float64(i+1))
	}
	return pool, weights
}

// pow14 computes r^1.4 without importing math (r > 0): r^1.4 ≈ r·r^0.4 and
// r^0.4 = exp(0.4 ln r) is approximated by sqrt(sqrt(r))·sqrt(sqrt(sqrt(r)))
// = r^0.375, close enough for a sampling-weight profile.
func pow14(r float64) float64 {
	return r * sqrt(sqrt(r)) * sqrt(sqrt(sqrt(r)))
}

// sqrt is a Newton iteration sufficient for the smooth weights above; it
// avoids pulling math into a hot deterministic path and keeps results
// identical across platforms (no FMA contraction differences: operations
// below are explicit).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 30; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// branchCap bounds how many distinct continuation bytes may follow a prefix
// of the given depth. Real Snort contents are distinctive — strings share
// stems (think "/cgi-bin/") but diverge through a narrow set of next
// characters at any one point, which is what lets the paper's hardware cap
// states at 13 stored pointers. Unbounded divergence (e.g. 50 different
// bytes following one hot stem) would force >13 pointers into single
// states, which the 324-bit word format cannot hold.
func branchCap(depth int) int {
	switch {
	case depth == 1:
		return 8 // sets the ceiling on depth-2 states: ≈ firstChars × 8
	case depth == 2:
		return 5
	case depth <= 9:
		return 4
	default:
		return 3
	}
}

// pFollow is the probability of reusing an existing continuation byte when
// one exists (before the branch cap forces reuse). High values near the
// root give Snort-like shared stems; low values deep down keep long strings
// distinctive.
func pFollow(depth int) float64 {
	switch {
	case depth <= 1:
		return 0.60
	case depth <= 4:
		return 0.45
	case depth <= 8:
		return 0.25
	default:
		return 0.08
	}
}

// Generate produces a deterministic synthetic Snort-like ruleset. Strings
// are grown through a shared prefix trie with bounded branching, giving the
// prefix-sharing structure and bounded per-state divergence of hand-written
// signature sets. The returned set passes Validate, has unique contents,
// and IDs 0..N-1.
func Generate(cfg GenConfig) (*Set, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("ruleset: GenConfig.N must be positive, got %d", cfg.N)
	}
	if cfg.N >= 1<<13-1 {
		return nil, fmt.Errorf("ruleset: N %d exceeds the 13-bit string-number space", cfg.N)
	}
	src := rng.New(cfg.Seed)
	pool, poolWeights := firstBytePool()

	seen := make(map[string]bool, cfg.N)
	conts := make(map[string][]byte) // prefix -> continuation bytes in use
	set := &Set{Patterns: make([]Pattern, 0, cfg.N)}

	extend := func(data []byte, class int) []byte {
		key := string(data)
		existing := conts[key]
		depth := len(data)
		var b byte
		switch {
		case len(existing) > 0 && src.Bool(pFollow(depth)):
			b = existing[src.Intn(len(existing))]
		case len(existing) < branchCap(depth):
			b = nextByte(src, class)
			found := false
			for _, e := range existing {
				if e == b {
					found = true
					break
				}
			}
			if !found {
				conts[key] = append(existing, b)
			}
		default:
			b = existing[src.Intn(len(existing))]
		}
		return append(data, b)
	}

	for attempts := 0; len(set.Patterns) < cfg.N; attempts++ {
		if attempts > 50*cfg.N {
			return nil, fmt.Errorf("ruleset: could not generate %d unique patterns (stuck at %d)",
				cfg.N, len(set.Patterns))
		}
		length := sampleLength(src)
		class := src.WeightedPick(classWeights)
		data := []byte{pool[src.WeightedPick(poolWeights)]}
		for len(data) < length {
			data = extend(data, class)
		}
		// If the sampled path collides with an existing pattern, extend a
		// little to find a unique string before giving up on this draw.
		for grow := 0; seen[string(data)] && grow < 8; grow++ {
			data = extend(data, class)
		}
		if seen[string(data)] {
			continue
		}
		seen[string(data)] = true
		id := len(set.Patterns)
		set.Patterns = append(set.Patterns, Pattern{
			ID:   id,
			Data: data,
			Name: fmt.Sprintf("synth-%d", id),
		})
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("ruleset: generated set invalid: %w", err)
	}
	return set, nil
}

// MustGenerate is Generate for tests and examples with known-good configs.
func MustGenerate(cfg GenConfig) *Set {
	s, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func sampleLength(src *rng.Source) int {
	total := longTailWeight
	for _, w := range lengthWeights {
		total += w
	}
	x := src.Float64() * total
	for i, w := range lengthWeights {
		x -= w
		if x < 0 {
			return i + 1
		}
	}
	// 50+ tail: geometric decay from 50 to longTailMaxLen.
	l := 50
	for l < longTailMaxLen && src.Bool(0.92) {
		l++
	}
	return l
}

// nextByte emits a class-conditioned content byte. URI bytes favour
// lowercase letters and path separators; keyword bytes favour letters and
// spaces; binary bytes are entropy-heavy (distinctive shellcode fragments,
// not repetitive padding — signature writers strip NOP sleds because they
// are poor discriminators, and repetitive infixes would create hot suffix
// states that no depth-3 default can absorb).
func nextByte(src *rng.Source, class int) byte {
	switch class {
	case classURI:
		switch src.WeightedPick([]float64{55, 12, 10, 6, 5, 12}) {
		case 0:
			return byte('a' + src.Intn(26))
		case 1:
			return byte('0' + src.Intn(10))
		case 2:
			return '/'
		case 3:
			return '.'
		case 4:
			return byte('A' + src.Intn(26))
		default:
			seps := []byte("_-=?&%+;")
			return seps[src.Intn(len(seps))]
		}
	case classKeyword:
		switch src.WeightedPick([]float64{40, 35, 12, 8, 5}) {
		case 0:
			return byte('A' + src.Intn(26))
		case 1:
			return byte('a' + src.Intn(26))
		case 2:
			return ' '
		case 3:
			return byte('0' + src.Intn(10))
		default:
			puncts := []byte(":()<>\"'")
			return puncts[src.Intn(len(puncts))]
		}
	default: // classBinary
		switch src.WeightedPick([]float64{8, 5, 4, 3, 3, 3, 74}) {
		case 0:
			return 0x90
		case 1:
			return 0x00
		case 2:
			return 0xFF
		case 3:
			return 0xCC
		case 4:
			return 0xE8
		case 5:
			return 0xEB
		default:
			return src.Byte()
		}
	}
}
