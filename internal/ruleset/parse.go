package ruleset

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseContent decodes one Snort-style content string. The syntax is the
// body of a Snort content option: printable characters stand for
// themselves, and |..| brackets enclose space-separated hex byte pairs,
// e.g. `|90 90 90|/bin/sh|00|`. The characters '|', '"' and '\' must be
// escaped as hex inside brackets, per Snort convention.
func ParseContent(s string) ([]byte, error) {
	var out []byte
	inHex := false
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '|' {
			inHex = !inHex
			i++
			continue
		}
		if inHex {
			if c == ' ' {
				i++
				continue
			}
			if i+1 >= len(s) {
				return nil, fmt.Errorf("ruleset: truncated hex pair at offset %d in %q", i, s)
			}
			hi, err1 := hexVal(s[i])
			lo, err2 := hexVal(s[i+1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("ruleset: bad hex pair %q at offset %d in %q", s[i:i+2], i, s)
			}
			out = append(out, hi<<4|lo)
			i += 2
			continue
		}
		if c == '"' || c == '\\' {
			return nil, fmt.Errorf("ruleset: character %q at offset %d must be hex-escaped", c, i)
		}
		if c < 0x20 || c > 0x7E {
			return nil, fmt.Errorf("ruleset: non-printable byte %#x at offset %d must be hex-escaped", c, i)
		}
		out = append(out, c)
		i++
	}
	if inHex {
		return nil, fmt.Errorf("ruleset: unterminated hex bracket in %q", s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ruleset: empty content")
	}
	return out, nil
}

// FormatContent renders data in Snort content syntax, inverse of
// ParseContent.
func FormatContent(data []byte) string {
	var sb strings.Builder
	inHex := false
	setHex := func(want bool) {
		if inHex != want {
			sb.WriteByte('|')
			inHex = want
		}
	}
	for _, b := range data {
		printable := b >= 0x20 && b <= 0x7E && b != '|' && b != '"' && b != '\\'
		if printable {
			setHex(false)
			sb.WriteByte(b)
		} else {
			if inHex {
				sb.WriteByte(' ')
			}
			setHex(true)
			fmt.Fprintf(&sb, "%02X", b)
		}
	}
	setHex(false)
	return sb.String()
}

// ParseFile reads a ruleset from r: one content string per line in
// ParseContent syntax. Blank lines and lines starting with '#' are skipped.
// An optional "name:" prefix before the content names the rule. Duplicate
// contents are rejected.
func ParseFile(r io.Reader) (*Set, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	set := &Set{}
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := ""
		if idx := strings.Index(line, ":"); idx > 0 && isIdent(line[:idx]) {
			name = line[:idx]
			line = strings.TrimSpace(line[idx+1:])
		}
		data, err := ParseContent(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		set.Patterns = append(set.Patterns, Pattern{
			ID:   len(set.Patterns),
			Data: data,
			Name: name,
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// WriteFile renders the set in ParseFile format.
func WriteFile(w io.Writer, s *Set) error {
	for _, p := range s.Patterns {
		var err error
		if p.Name != "" {
			_, err = fmt.Fprintf(w, "%s: %s\n", p.Name, FormatContent(p.Data))
		} else {
			_, err = fmt.Fprintf(w, "%s\n", FormatContent(p.Data))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func hexVal(c byte) (byte, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, nil
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, nil
	}
	return 0, fmt.Errorf("not hex: %q", c)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
