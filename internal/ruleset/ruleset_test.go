package ruleset

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mustGen(t *testing.T, n int, seed int64) *Set {
	t.Helper()
	s, err := Generate(GenConfig{N: n, Seed: seed})
	if err != nil {
		t.Fatalf("Generate(%d): %v", n, err)
	}
	return s
}

func TestGenerateCountAndValidity(t *testing.T) {
	for _, n := range []int{1, 10, 500, 2000} {
		s := mustGen(t, n, 1)
		if s.Len() != n {
			t.Fatalf("Generate(%d) produced %d patterns", n, s.Len())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Generate(%d) invalid: %v", n, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGen(t, 300, 42)
	b := mustGen(t, 300, 42)
	for i := range a.Patterns {
		if !bytes.Equal(a.Patterns[i].Data, b.Patterns[i].Data) {
			t.Fatalf("pattern %d differs between identically seeded runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := mustGen(t, 100, 1)
	b := mustGen(t, 100, 2)
	same := 0
	for i := range a.Patterns {
		if bytes.Equal(a.Patterns[i].Data, b.Patterns[i].Data) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d/100 identical patterns across different seeds", same)
	}
}

func TestGenerateRejectsBadN(t *testing.T) {
	for _, n := range []int{0, -1, 1 << 13} {
		if _, err := Generate(GenConfig{N: n}); err == nil {
			t.Errorf("Generate(N=%d) succeeded, want error", n)
		}
	}
}

func TestGeneratePeakMatchesFigure6(t *testing.T) {
	s := mustGen(t, 6275, 2010)
	lo, hi := PeakRange(s, 0.5)
	// Paper: "the peak in the character distribution is between 4 and 13
	// bytes". Allow one length of slack each side for sampling noise.
	if lo < 3 || hi > 15 {
		t.Fatalf("peak range [%d,%d], want within [3,15]", lo, hi)
	}
}

func TestGenerateFirstCharDiversitySaturates(t *testing.T) {
	// Table II: 68 distinct first characters at 634 strings growing to
	// ~110 at 6,275 — i.e. saturating growth, not linear.
	full := mustGen(t, 6275, 2010)
	small, err := full.Reduce(634, 7)
	if err != nil {
		t.Fatal(err)
	}
	fcSmall, fcFull := small.FirstCharCount(), full.FirstCharCount()
	if fcSmall < 45 || fcSmall > 95 {
		t.Errorf("first chars at 634 strings = %d, want ≈68 (45..95)", fcSmall)
	}
	if fcFull < 90 || fcFull > 145 {
		t.Errorf("first chars at 6275 strings = %d, want ≈110 (90..145)", fcFull)
	}
	if fcFull <= fcSmall {
		t.Errorf("diversity did not grow: %d -> %d", fcSmall, fcFull)
	}
	// Saturation: 10x the strings should yield far less than 10x the chars.
	if float64(fcFull) > 3*float64(fcSmall) {
		t.Errorf("growth not saturating: %d -> %d", fcSmall, fcFull)
	}
}

func TestGenerateSharesStems(t *testing.T) {
	s := mustGen(t, 1000, 5)
	prefixes := make(map[string]int)
	for _, p := range s.Patterns {
		if len(p.Data) >= 3 {
			prefixes[string(p.Data[:3])]++
		}
	}
	shared := 0
	for _, c := range prefixes {
		if c >= 2 {
			shared += c
		}
	}
	// Prefix sharing drives trie compactness; require a meaningful fraction.
	if shared < 100 {
		t.Fatalf("only %d patterns share a 3-byte prefix; stems not working", shared)
	}
}

func TestCharCount(t *testing.T) {
	s := &Set{Patterns: []Pattern{
		{ID: 0, Data: []byte("abc")},
		{ID: 1, Data: []byte("de")},
	}}
	if got := s.CharCount(); got != 5 {
		t.Fatalf("CharCount = %d, want 5", got)
	}
}

func TestFirstCharCount(t *testing.T) {
	s := &Set{Patterns: []Pattern{
		{ID: 0, Data: []byte("abc")},
		{ID: 1, Data: []byte("axe")},
		{ID: 2, Data: []byte("bcd")},
	}}
	if got := s.FirstCharCount(); got != 2 {
		t.Fatalf("FirstCharCount = %d, want 2", got)
	}
}

func TestDedup(t *testing.T) {
	s := &Set{Patterns: []Pattern{
		{ID: 0, Data: []byte("abc")},
		{ID: 1, Data: []byte("abc")},
		{ID: 2, Data: []byte("xyz")},
	}}
	d := s.Dedup()
	if d.Len() != 2 {
		t.Fatalf("Dedup len = %d, want 2", d.Len())
	}
	if d.Patterns[0].ID != 0 || d.Patterns[1].ID != 1 {
		t.Fatalf("Dedup did not renumber: %v", d.Patterns)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		set  *Set
	}{
		{"empty pattern", &Set{Patterns: []Pattern{{ID: 0, Data: nil}}}},
		{"dup id", &Set{Patterns: []Pattern{{ID: 0, Data: []byte("a")}, {ID: 0, Data: []byte("b")}}}},
		{"dup content", &Set{Patterns: []Pattern{{ID: 0, Data: []byte("a")}, {ID: 1, Data: []byte("a")}}}},
		{"id too large", &Set{Patterns: []Pattern{{ID: 8191, Data: []byte("a")}}}},
		{"negative id", &Set{Patterns: []Pattern{{ID: -1, Data: []byte("a")}}}},
	}
	for _, tc := range cases {
		if err := tc.set.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", tc.name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := &Set{Patterns: []Pattern{{ID: 0, Data: []byte("abc")}}}
	c := s.Clone()
	c.Patterns[0].Data[0] = 'X'
	if s.Patterns[0].Data[0] != 'a' {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestReducePreservesDistribution(t *testing.T) {
	full := mustGen(t, 6275, 2010)
	for _, n := range []int{500, 634, 1204, 1603, 2588} {
		r, err := full.Reduce(n, 99)
		if err != nil {
			t.Fatalf("Reduce(%d): %v", n, err)
		}
		if r.Len() != n {
			t.Fatalf("Reduce(%d) returned %d patterns", n, r.Len())
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("Reduce(%d) invalid: %v", n, err)
		}
		if d := HistogramDistance(full, r); d > 0.12 {
			t.Errorf("Reduce(%d): histogram L1 distance %.3f too large", n, d)
		}
	}
}

func TestReduceKeepsIDs(t *testing.T) {
	full := mustGen(t, 100, 3)
	r, err := full.Reduce(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[int][]byte)
	for _, p := range full.Patterns {
		byID[p.ID] = p.Data
	}
	for _, p := range r.Patterns {
		if !bytes.Equal(byID[p.ID], p.Data) {
			t.Fatalf("pattern ID %d content changed after Reduce", p.ID)
		}
	}
}

func TestReduceBounds(t *testing.T) {
	s := mustGen(t, 10, 1)
	for _, n := range []int{0, -5, 11} {
		if _, err := s.Reduce(n, 1); err == nil {
			t.Errorf("Reduce(%d) succeeded, want error", n)
		}
	}
	same, err := s.Reduce(10, 1)
	if err != nil || same.Len() != 10 {
		t.Fatalf("Reduce(full size) = %v, %v", same, err)
	}
}

func TestReduceToChars(t *testing.T) {
	full := mustGen(t, 6275, 2010)
	// Table III target: 19,124 characters.
	r, err := full.ReduceToChars(19124, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := r.CharCount()
	mean := full.CharCount() / full.Len()
	if got < 19124-2*mean || got > 19124+2*mean {
		t.Fatalf("ReduceToChars hit %d chars, want 19124 ± %d", got, 2*mean)
	}
	if d := HistogramDistance(full, r); d > 0.15 {
		t.Errorf("ReduceToChars: histogram distance %.3f too large", d)
	}
}

func TestLengthHistogramBuckets(t *testing.T) {
	s := &Set{Patterns: []Pattern{
		{ID: 0, Data: bytes.Repeat([]byte("a"), 1)},
		{ID: 1, Data: bytes.Repeat([]byte("b"), 49)},
		{ID: 2, Data: bytes.Repeat([]byte("c"), 50)},
		{ID: 3, Data: bytes.Repeat([]byte("d"), 120)},
	}}
	h := LengthHistogram(s)
	if len(h) != 50 {
		t.Fatalf("histogram has %d buckets, want 50", len(h))
	}
	if h[0].Count != 1 || h[48].Count != 1 {
		t.Fatalf("exact-length buckets wrong: %+v %+v", h[0], h[48])
	}
	last := h[49]
	if !last.Plus || last.Count != 2 {
		t.Fatalf("50+ bucket wrong: %+v", last)
	}
}

func TestSplitCharsBalancedAndComplete(t *testing.T) {
	s := mustGen(t, 1000, 8)
	for _, n := range []int{1, 2, 3, 6} {
		groups := s.SplitChars(n)
		if len(groups) != n {
			t.Fatalf("SplitChars(%d) returned %d groups", n, len(groups))
		}
		totalPatterns := 0
		seen := make(map[int]bool)
		for _, g := range groups {
			totalPatterns += g.Len()
			for _, p := range g.Patterns {
				if seen[p.ID] {
					t.Fatalf("pattern %d in multiple groups", p.ID)
				}
				seen[p.ID] = true
			}
		}
		if totalPatterns != s.Len() {
			t.Fatalf("SplitChars(%d) lost patterns: %d != %d", n, totalPatterns, s.Len())
		}
		if n > 1 {
			min, max := 1<<30, 0
			for _, g := range groups {
				c := g.CharCount()
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if max > min*2 {
				t.Errorf("SplitChars(%d) imbalanced: min %d max %d chars", n, min, max)
			}
		}
	}
}

func TestParseContentRoundTrip(t *testing.T) {
	cases := [][]byte{
		[]byte("/cgi-bin/phf"),
		{0x90, 0x90, 0x90},
		[]byte("a|b"),                      // '|' must round-trip via hex
		{0x00, 'G', 'E', 'T', ' ', 0xFF},   // mixed
		{'"', '\\'},                        // escapes
		bytes.Repeat([]byte{0xCC, 'x'}, 8), // alternating
	}
	for _, want := range cases {
		got, err := ParseContent(FormatContent(want))
		if err != nil {
			t.Fatalf("%q: %v", want, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round trip %q -> %q", want, got)
		}
	}
}

func TestParseContentHexForms(t *testing.T) {
	got, err := ParseContent("|90 90|sh|00|")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x90, 0x90, 's', 'h', 0x00}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestParseContentErrors(t *testing.T) {
	bad := []string{
		"",         // empty
		"|90",      // unterminated
		"|9|",      // odd hex
		"|zz|",     // not hex
		"a\"b",     // unescaped quote
		"a\\b",     // unescaped backslash
		"caf\xc3e", // raw non-printable
		"|90 9|",   // truncated pair
	}
	for _, s := range bad {
		if _, err := ParseContent(s); err == nil {
			t.Errorf("ParseContent(%q) succeeded, want error", s)
		}
	}
}

func TestParseFileAndWriteFile(t *testing.T) {
	input := "# comment\n\nweb-phf: /cgi-bin/phf\n|90 90|/bin/sh\n"
	set, err := ParseFile(bytes.NewReader([]byte(input)))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("parsed %d patterns, want 2", set.Len())
	}
	if set.Patterns[0].Name != "web-phf" {
		t.Fatalf("name = %q", set.Patterns[0].Name)
	}
	if !bytes.Equal(set.Patterns[1].Data, []byte{0x90, 0x90, '/', 'b', 'i', 'n', '/', 's', 'h'}) {
		t.Fatalf("pattern 1 = %v", set.Patterns[1].Data)
	}

	var buf bytes.Buffer
	if err := WriteFile(&buf, set); err != nil {
		t.Fatal(err)
	}
	set2, err := ParseFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if set2.Len() != set.Len() {
		t.Fatal("write/parse round trip lost patterns")
	}
	for i := range set.Patterns {
		if !bytes.Equal(set.Patterns[i].Data, set2.Patterns[i].Data) {
			t.Fatalf("pattern %d round trip mismatch", i)
		}
	}
}

func TestParseFileRejectsDuplicates(t *testing.T) {
	input := "abc\nabc\n"
	if _, err := ParseFile(bytes.NewReader([]byte(input))); err == nil {
		t.Fatal("duplicate contents accepted")
	}
}

// Property: FormatContent always produces a string ParseContent accepts and
// inverts, for arbitrary byte content.
func TestQuickContentRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		got, err := ParseContent(FormatContent(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Reduce output is always a subset of its input.
func TestQuickReduceSubset(t *testing.T) {
	full := mustGen(t, 400, 77)
	contents := make(map[string]bool, full.Len())
	for _, p := range full.Patterns {
		contents[string(p.Data)] = true
	}
	f := func(seed int64, nSel uint16) bool {
		n := 1 + int(nSel)%400
		r, err := full.Reduce(n, seed)
		if err != nil || r.Len() != n {
			return false
		}
		for _, p := range r.Patterns {
			if !contents[string(p.Data)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
