package power

import (
	"math"
	"testing"

	"repro/internal/device"
)

func mustModel(t *testing.T, d device.Device) Model {
	t.Helper()
	m, err := ModelFor(d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCalibrationHitsPaperMaxima(t *testing.T) {
	// Figure 7: Cyclone max 2.78 W; Figure 8: Stratix max 13.28 W.
	if got := mustModel(t, device.Cyclone3).MaxPower(); math.Abs(got-2.78) > 1e-9 {
		t.Errorf("Cyclone max power = %v, want 2.78", got)
	}
	if got := mustModel(t, device.Stratix3).MaxPower(); math.Abs(got-13.28) > 1e-9 {
		t.Errorf("Stratix max power = %v, want 13.28", got)
	}
}

func TestPowerIsLinearInClock(t *testing.T) {
	m := mustModel(t, device.Stratix3)
	p1 := m.PowerAt(100e6, m.Device.Blocks)
	p2 := m.PowerAt(200e6, m.Device.Blocks)
	p3 := m.PowerAt(300e6, m.Device.Blocks)
	if math.Abs((p3-p2)-(p2-p1)) > 1e-9 {
		t.Fatal("power not linear in clock")
	}
	if p1 <= m.StaticW {
		t.Fatal("dynamic component missing")
	}
}

func TestZeroClockIsStaticOnly(t *testing.T) {
	m := mustModel(t, device.Cyclone3)
	if got := m.PowerAt(0, m.Device.Blocks); got != m.StaticW {
		t.Fatalf("idle power = %v, want static %v", got, m.StaticW)
	}
}

func TestModelForUnknownDevice(t *testing.T) {
	if _, err := ModelFor(device.Device{Part: "XC7V2000T"}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestSweepShapeFigure7(t *testing.T) {
	// Figure 7: at max clock, Cyclone reaches 14.9 / 7.5 / 3.7 Gbps for
	// rulesets needing 1 / 2 / 4 groups, all at 2.78 W.
	m := mustModel(t, device.Cyclone3)
	for _, tc := range []struct {
		groups int
		gbps   float64
	}{{1, 14.9}, {2, 7.5}, {4, 3.7}} {
		pts, err := m.Sweep(tc.groups, 10)
		if err != nil {
			t.Fatal(err)
		}
		last := pts[len(pts)-1]
		if math.Abs(last.ThroughputGbps-tc.gbps) > 0.1 {
			t.Errorf("groups=%d: top throughput %.2f, want %.1f", tc.groups, last.ThroughputGbps, tc.gbps)
		}
		if math.Abs(last.PowerW-2.78) > 1e-9 {
			t.Errorf("groups=%d: top power %.3f, want 2.78", tc.groups, last.PowerW)
		}
	}
}

func TestSweepShapeFigure8(t *testing.T) {
	// Figure 8: Stratix curves top out at 44.2 / 22.1 / 14.7 / 7.4 Gbps.
	m := mustModel(t, device.Stratix3)
	for _, tc := range []struct {
		groups int
		gbps   float64
	}{{1, 44.2}, {2, 22.1}, {3, 14.7}, {6, 7.4}} {
		pts, err := m.Sweep(tc.groups, 8)
		if err != nil {
			t.Fatal(err)
		}
		last := pts[len(pts)-1]
		if math.Abs(last.ThroughputGbps-tc.gbps) > 0.1 {
			t.Errorf("groups=%d: top throughput %.2f, want %.1f", tc.groups, last.ThroughputGbps, tc.gbps)
		}
	}
}

func TestSweepMonotone(t *testing.T) {
	m := mustModel(t, device.Stratix3)
	pts, err := m.Sweep(2, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PowerW <= pts[i-1].PowerW || pts[i].ThroughputGbps <= pts[i-1].ThroughputGbps {
			t.Fatalf("sweep not strictly increasing at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestSweepErrors(t *testing.T) {
	m := mustModel(t, device.Cyclone3)
	if _, err := m.Sweep(1, 0); err == nil {
		t.Error("steps=0 accepted")
	}
	if _, err := m.Sweep(99, 5); err == nil {
		t.Error("groups beyond blocks accepted")
	}
}

func TestEnergyPerBitOrdering(t *testing.T) {
	// The architectural efficiency claim: Cyclone spends less energy per
	// bit than Stratix at their respective full-speed single-group points.
	cy := mustModel(t, device.Cyclone3)
	st := mustModel(t, device.Stratix3)
	cyT, _ := device.Cyclone3.AggregateThroughputBps(1)
	stT, _ := device.Stratix3.AggregateThroughputBps(1)
	cyJ := cy.MaxPower() / cyT
	stJ := st.MaxPower() / stT
	if cyJ >= stJ {
		t.Fatalf("Cyclone J/bit %.3e not below Stratix %.3e", cyJ, stJ)
	}
}
