// Package power models the accelerator's power consumption for Figures 7
// and 8. The paper measured post-place-and-route power with the Quartus II
// PowerPlay analyzer while sweeping the clock; a functional model cannot
// re-run PowerPlay, so we use the standard CMOS decomposition
//
//	P(f) = P_static + k_dyn × activeBlocks × f
//
// with per-device constants calibrated to the two maxima the paper reports:
// 2.78 W for the Cyclone III implementation at full speed and 13.28 W for
// the Stratix III implementation. Static power is the device's published
// idle draw class (Cyclone III is the low-static family); everything between
// the calibration points follows the linear dynamic-power law, which is also
// the shape of the paper's curves.
package power

import (
	"fmt"

	"repro/internal/device"
)

// Model holds the calibrated coefficients for one device.
type Model struct {
	Device  device.Device
	StaticW float64
	// DynWPerBlockHz is dynamic watts per active block per Hz of memory
	// clock.
	DynWPerBlockHz float64
}

// Calibration constants: the paper's reported maxima.
const (
	cycloneMaxW = 2.78  // §V.D, Figure 7
	stratixMaxW = 13.28 // §V.D, Figure 8

	// Static draw estimates for the 65 nm families at their core voltages.
	cycloneStaticW = 0.30
	stratixStaticW = 1.60
)

// ModelFor returns the calibrated power model for d. Only the two paper
// devices have calibration data.
func ModelFor(d device.Device) (Model, error) {
	switch d.Part {
	case device.Cyclone3.Part:
		return calibrate(d, cycloneStaticW, cycloneMaxW), nil
	case device.Stratix3.Part:
		return calibrate(d, stratixStaticW, stratixMaxW), nil
	}
	return Model{}, fmt.Errorf("power: no calibration for device %q", d.Part)
}

func calibrate(d device.Device, staticW, maxW float64) Model {
	return Model{
		Device:  d,
		StaticW: staticW,
		// All blocks toggle at full clock when the accelerator runs flat out.
		DynWPerBlockHz: (maxW - staticW) / (float64(d.Blocks) * d.FmaxHz),
	}
}

// PowerAt returns total watts at the given memory clock with the given
// number of active blocks.
func (m Model) PowerAt(clockHz float64, activeBlocks int) float64 {
	return m.StaticW + m.DynWPerBlockHz*float64(activeBlocks)*clockHz
}

// MaxPower returns the consumption at full clock with every block active —
// the right end of the paper's curves.
func (m Model) MaxPower() float64 {
	return m.PowerAt(m.Device.FmaxHz, m.Device.Blocks)
}

// Point is one sample of a Figure 7/8 series.
type Point struct {
	ClockHz        float64
	ThroughputGbps float64
	PowerW         float64
}

// Sweep produces the power-vs-throughput series for a ruleset needing
// `groups` blocks per packet, sampling `steps` clock frequencies from
// fmax/steps to fmax. All blocks are active regardless of grouping — with
// one group every block scans its own packet; with G groups, blocks gang up
// in sets of G on shared packets — so power depends only on the clock while
// throughput shrinks with G. That is why the paper's per-ruleset curves fan
// out: same power axis, different throughput at each clock.
func (m Model) Sweep(groups, steps int) ([]Point, error) {
	if steps < 1 {
		return nil, fmt.Errorf("power: steps must be >= 1, got %d", steps)
	}
	out := make([]Point, 0, steps)
	for i := 1; i <= steps; i++ {
		clock := m.Device.FmaxHz * float64(i) / float64(steps)
		tput, err := m.Device.ThroughputAtClock(groups, clock)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{
			ClockHz:        clock,
			ThroughputGbps: tput / 1e9,
			PowerW:         m.PowerAt(clock, m.Device.Blocks),
		})
	}
	return out, nil
}
