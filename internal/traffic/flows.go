package traffic

// Multi-flow workload synthesis for the gateway layer: many concurrent
// connections, each delivered as an interleaved sequence of segments, with
// exact ground truth for planted patterns — including plants deliberately
// straddling segment boundaries, which only survive demultiplexing if the
// scanner carries per-flow state across packets.

import (
	"fmt"

	"repro/internal/nids"
	"repro/internal/rng"
	"repro/internal/ruleset"
)

// TCP control-flag bits for FlowPacket.Flags. The values mirror the
// gateway's TCPFlags so a feed can pass them through unchanged.
const (
	FlagFIN byte = 1 << 0
	FlagSYN byte = 1 << 1
	FlagRST byte = 1 << 2
	FlagSeq byte = 1 << 7 // TCPSeq is meaningful: reassemble by sequence
)

// FlowPacket is one segment of one flow, tagged for demultiplexing.
type FlowPacket struct {
	FlowID  int
	Tuple   nids.FiveTuple
	Seq     int // position within the flow's in-order segmentation, 0-based
	Payload []byte
	Last    bool // final segment of its flow (carries FIN when Sequenced)
	// TCPSeq and Flags are populated by Sequenced workloads: TCPSeq is the
	// TCP sequence number of Payload[0] (of the SYN itself on the SYN
	// segment), and Flags carries FlagSeq plus SYN on the first segment and
	// FIN on the last.
	TCPSeq uint32
	Flags  byte
	// Retransmit marks a duplicate emission of an earlier segment (exact
	// byte copy), so consumers can separate originals from retransmissions.
	Retransmit bool
}

// Plant records one intact planted pattern occurrence in a flow's stream.
// Unlike Packet.Planted, plants never overlap each other, so every Plant is
// guaranteed to appear verbatim in the final stream: an exhaustive matcher
// must report (PatternID, End) for each one.
type Plant struct {
	PatternID   int32
	End         int  // stream offset one past the pattern's last byte
	CrossPacket bool // spans at least one segment boundary
}

// FlowWorkload is an interleaved multi-flow packet sequence with oracle
// material: the per-flow reassembled streams and the exact plants.
type FlowWorkload struct {
	Packets []FlowPacket     // ingest order: per-flow in order, flows interleaved
	Tuples  []nids.FiveTuple // per flow
	Streams [][]byte         // per flow: the concatenation of its segments
	Planted [][]Plant        // per flow, in planting order
}

// CrossPlants counts the boundary-straddling plants across all flows.
func (w *FlowWorkload) CrossPlants() int {
	n := 0
	for _, plants := range w.Planted {
		for _, p := range plants {
			if p.CrossPacket {
				n++
			}
		}
	}
	return n
}

// FlowConfig controls multi-flow workload synthesis.
type FlowConfig struct {
	Flows           int
	SegmentsPerFlow int
	SegmentBytes    int
	Seed            int64
	// CrossDensity is the expected number of plants per flow that straddle
	// a segment boundary (requires SegmentsPerFlow >= 2).
	CrossDensity float64
	// AttackDensity is the expected number of additional plants per flow
	// placed anywhere in the stream.
	AttackDensity float64
	Profile       Profile
	// Proto tags every generated tuple; 0 selects TCP (the stream-routed
	// protocol).
	Proto byte
	// Sequenced assigns each flow a random ISN and stamps every segment
	// with its TCP sequence number and flags (FlagSeq everywhere, SYN on
	// the first segment, FIN on the last), making the workload consumable
	// by a reassembling gateway. Off, the TCPSeq/Flags fields stay zero and
	// generation is byte-identical to earlier versions for a given seed.
	Sequenced bool
	// ReorderWindow shuffles each flow's segment delivery order (segments
	// after the SYN segment, which always goes first so the sequence base
	// is known) with every segment displaced at most this many positions —
	// an out-of-order network path. Requires Sequenced. 0 keeps order.
	ReorderWindow int
	// RetransmitDensity is the expected number of duplicated segment
	// emissions per flow (exact byte copies of an earlier segment,
	// delivered again later — what a retransmitting sender produces).
	// Requires Sequenced. The SYN segment is never duplicated, so a
	// retransmission can't restart a completed connection as a new one.
	RetransmitDensity float64
}

// GenerateFlows produces a deterministic interleaved multi-flow workload
// over the given pattern set. Plants are non-overlapping within a flow, so
// the recorded ground truth is exact: every Plant appears verbatim in the
// flow's stream (background bytes may still produce additional matches).
// Sequenced workloads additionally carry TCP sequence numbers and flags
// and may deliver segments out of order and retransmitted — duplicates are
// exact byte copies and every original segment is eventually delivered, so
// the ground truth stays exact for a reassembling consumer: the
// reassembled stream equals Streams[f] under either overlap policy.
func GenerateFlows(set *ruleset.Set, cfg FlowConfig) (*FlowWorkload, error) {
	if cfg.Flows <= 0 || cfg.SegmentsPerFlow <= 0 || cfg.SegmentBytes <= 0 {
		return nil, fmt.Errorf("traffic: need positive Flows/SegmentsPerFlow/SegmentBytes, got %d/%d/%d",
			cfg.Flows, cfg.SegmentsPerFlow, cfg.SegmentBytes)
	}
	if cfg.CrossDensity > 0 && cfg.SegmentsPerFlow < 2 {
		return nil, fmt.Errorf("traffic: cross-packet plants need at least 2 segments per flow")
	}
	if (cfg.ReorderWindow > 0 || cfg.RetransmitDensity > 0) && !cfg.Sequenced {
		return nil, fmt.Errorf("traffic: ReorderWindow/RetransmitDensity need Sequenced (segments must carry TCP seqs to be reorderable)")
	}
	proto := cfg.Proto
	if proto == 0 {
		proto = nids.ProtoTCP
	}
	src := rng.New(cfg.Seed)
	w := &FlowWorkload{
		Tuples:  make([]nids.FiveTuple, cfg.Flows),
		Streams: make([][]byte, cfg.Flows),
		Planted: make([][]Plant, cfg.Flows),
	}
	streamLen := cfg.SegmentsPerFlow * cfg.SegmentBytes
	for f := 0; f < cfg.Flows; f++ {
		w.Tuples[f] = flowTuple(f, proto)
		stream := make([]byte, streamLen)
		fillBackground(src, stream, cfg.Profile)
		var occupied []span
		if set != nil && set.Len() > 0 {
			if cfg.CrossDensity > 0 {
				n := poissonish(src, cfg.CrossDensity)
				for k := 0; k < n; k++ {
					if pl, ok := plantCross(src, set, stream, cfg.SegmentBytes, &occupied); ok {
						w.Planted[f] = append(w.Planted[f], pl)
					}
				}
			}
			if cfg.AttackDensity > 0 {
				n := poissonish(src, cfg.AttackDensity)
				for k := 0; k < n; k++ {
					if pl, ok := plantAnywhere(src, set, stream, cfg.SegmentBytes, &occupied); ok {
						w.Planted[f] = append(w.Planted[f], pl)
					}
				}
			}
		}
		w.Streams[f] = stream
	}

	// Per-flow emission schedule: segment indices in delivery order. The
	// in-order identity schedule reproduces the historical byte stream;
	// Sequenced workloads may shuffle it within the reorder window (SYN
	// segment pinned first, so the receiver knows the sequence base before
	// any data) and splice in exact-copy retransmissions.
	sched := make([][]int, cfg.Flows)
	var isn []uint32
	if cfg.Sequenced {
		isn = make([]uint32, cfg.Flows)
	}
	for f := range sched {
		order := make([]int, cfg.SegmentsPerFlow)
		for i := range order {
			order[i] = i
		}
		if cfg.Sequenced {
			isn[f] = uint32(src.Uint64()) // any ISN; wraparound included
			if cfg.ReorderWindow > 0 {
				// Windowed shuffle: each position trades with one at most
				// ReorderWindow back, displacing segments on the order of
				// the window while keeping position 0 (the SYN) fixed.
				for i := 1; i < len(order); i++ {
					lo := i - cfg.ReorderWindow
					if lo < 1 {
						lo = 1
					}
					j := lo + src.Intn(i-lo+1)
					order[i], order[j] = order[j], order[i]
				}
			}
			if cfg.RetransmitDensity > 0 {
				n := poissonish(src, cfg.RetransmitDensity)
				for k := 0; k < n && len(order) > 1; k++ {
					a := src.Intn(len(order))
					if order[a] == 0 {
						continue // never duplicate the SYN segment
					}
					b := a + 1 + src.Intn(len(order)-a) // strictly after a
					order = append(order, 0)
					copy(order[b+1:], order[b:])
					order[b] = order[a]
				}
			}
		}
		sched[f] = order
	}

	// Interleave: repeatedly pick a random non-exhausted flow and emit its
	// next scheduled segment, so segments of concurrent connections arrive
	// shuffled while each flow follows its own delivery schedule — what an
	// edge link (plus a lossy, reordering path) actually delivers.
	total := 0
	for _, o := range sched {
		total += len(o)
	}
	w.Packets = make([]FlowPacket, 0, total)
	alive := make([]int, cfg.Flows) // flow indices with segments remaining
	next := make([]int, cfg.Flows)  // next schedule position per flow
	seen := make([]uint64, cfg.Flows*((cfg.SegmentsPerFlow+63)/64))
	wordsPerFlow := (cfg.SegmentsPerFlow + 63) / 64
	for f := range alive {
		alive[f] = f
	}
	for len(alive) > 0 {
		ai := src.Intn(len(alive))
		f := alive[ai]
		s := sched[f][next[f]]
		next[f]++
		seg := w.Streams[f][s*cfg.SegmentBytes : (s+1)*cfg.SegmentBytes]
		fp := FlowPacket{
			FlowID:  f,
			Tuple:   w.Tuples[f],
			Seq:     s,
			Payload: seg,
			Last:    s == cfg.SegmentsPerFlow-1,
		}
		if cfg.Sequenced {
			fp.Flags = FlagSeq
			fp.TCPSeq = isn[f] + 1 + uint32(s*cfg.SegmentBytes)
			if s == 0 {
				fp.Flags |= FlagSYN
				fp.TCPSeq = isn[f] // data logically starts at ISN+1
			}
			if fp.Last {
				fp.Flags |= FlagFIN
			}
			word, bit := f*wordsPerFlow+s/64, uint(s%64)
			fp.Retransmit = seen[word]&(1<<bit) != 0
			seen[word] |= 1 << bit
		}
		w.Packets = append(w.Packets, fp)
		if next[f] == len(sched[f]) {
			alive[ai] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		}
	}
	return w, nil
}

// flowTuple derives a unique, deterministic 5-tuple for flow index f.
func flowTuple(f int, proto byte) nids.FiveTuple {
	return nids.FiveTuple{
		SrcIP:   nids.IPv4(10, byte(f>>16), byte(f>>8), byte(f)),
		DstIP:   nids.IPv4(192, 168, 0, 1),
		SrcPort: uint16(1024 + f%50000),
		DstPort: 80,
		Proto:   proto,
	}
}

type span struct{ lo, hi int } // [lo, hi)

func overlaps(occupied []span, lo, hi int) bool {
	for _, s := range occupied {
		if lo < s.hi && s.lo < hi {
			return true
		}
	}
	return false
}

// plantCross copies a pattern into stream so it straddles a segment
// boundary, avoiding previously planted spans. Returns false if no
// placement was found in a bounded number of attempts.
func plantCross(src *rng.Source, set *ruleset.Set, stream []byte, segBytes int, occupied *[]span) (Plant, bool) {
	segments := len(stream) / segBytes
	for attempt := 0; attempt < 16; attempt++ {
		p := set.Patterns[src.Intn(set.Len())]
		if len(p.Data) < 2 || len(p.Data) > len(stream) {
			continue
		}
		cut := (1 + src.Intn(segments-1)) * segBytes
		// Start k bytes before the boundary, 1 <= k <= len-1, so at least
		// one byte lands on each side.
		maxK := len(p.Data) - 1
		if maxK > cut {
			maxK = cut
		}
		k := 1 + src.Intn(maxK)
		start := cut - k
		end := start + len(p.Data)
		if end > len(stream) || end <= cut {
			continue
		}
		if overlaps(*occupied, start, end) {
			continue
		}
		copy(stream[start:], p.Data)
		*occupied = append(*occupied, span{start, end})
		return Plant{PatternID: int32(p.ID), End: end, CrossPacket: true}, true
	}
	return Plant{}, false
}

// plantAnywhere copies a pattern into a random non-overlapping position.
func plantAnywhere(src *rng.Source, set *ruleset.Set, stream []byte, segBytes int, occupied *[]span) (Plant, bool) {
	for attempt := 0; attempt < 16; attempt++ {
		p := set.Patterns[src.Intn(set.Len())]
		if len(p.Data) >= len(stream) {
			continue
		}
		start := src.Intn(len(stream) - len(p.Data))
		end := start + len(p.Data)
		if overlaps(*occupied, start, end) {
			continue
		}
		copy(stream[start:], p.Data)
		*occupied = append(*occupied, span{start, end})
		cross := start/segBytes != (end-1)/segBytes
		return Plant{PatternID: int32(p.ID), End: end, CrossPacket: cross}, true
	}
	return Plant{}, false
}
