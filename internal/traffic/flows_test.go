package traffic

import (
	"bytes"
	"testing"

	"repro/internal/ruleset"
)

func flowSet(t *testing.T) *ruleset.Set {
	t.Helper()
	set, err := ruleset.Generate(ruleset.GenConfig{N: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestGenerateFlowsStructure(t *testing.T) {
	set := flowSet(t)
	cfg := FlowConfig{
		Flows: 12, SegmentsPerFlow: 5, SegmentBytes: 120, Seed: 99,
		CrossDensity: 2, AttackDensity: 1, Profile: Textual,
	}
	w, err := GenerateFlows(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Packets) != cfg.Flows*cfg.SegmentsPerFlow {
		t.Fatalf("packets = %d", len(w.Packets))
	}
	// Per-flow packets arrive in seq order and reassemble to the stream.
	nextSeq := make([]int, cfg.Flows)
	rebuilt := make([][]byte, cfg.Flows)
	for _, p := range w.Packets {
		if p.Seq != nextSeq[p.FlowID] {
			t.Fatalf("flow %d got seq %d, want %d", p.FlowID, p.Seq, nextSeq[p.FlowID])
		}
		nextSeq[p.FlowID]++
		if len(p.Payload) != cfg.SegmentBytes {
			t.Fatalf("segment size %d", len(p.Payload))
		}
		if p.Tuple != w.Tuples[p.FlowID] {
			t.Fatalf("flow %d tuple mismatch", p.FlowID)
		}
		if got, want := p.Last, p.Seq == cfg.SegmentsPerFlow-1; got != want {
			t.Fatalf("flow %d seq %d Last = %v", p.FlowID, p.Seq, got)
		}
		rebuilt[p.FlowID] = append(rebuilt[p.FlowID], p.Payload...)
	}
	for f := range rebuilt {
		if !bytes.Equal(rebuilt[f], w.Streams[f]) {
			t.Fatalf("flow %d segments do not reassemble to its stream", f)
		}
	}
	// Tuples are unique per flow.
	seen := map[string]bool{}
	for _, tp := range w.Tuples {
		k := tp.String()
		if seen[k] {
			t.Fatalf("duplicate tuple %s", k)
		}
		seen[k] = true
	}
}

func TestGenerateFlowsPlantsAreExact(t *testing.T) {
	set := flowSet(t)
	cfg := FlowConfig{
		Flows: 20, SegmentsPerFlow: 4, SegmentBytes: 200, Seed: 7,
		CrossDensity: 2, AttackDensity: 2, Profile: Uniform,
	}
	w, err := GenerateFlows(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int32][]byte{}
	for _, p := range set.Patterns {
		byID[int32(p.ID)] = p.Data
	}
	total, cross := 0, 0
	for f, plants := range w.Planted {
		for _, pl := range plants {
			data := byID[pl.PatternID]
			if data == nil {
				t.Fatalf("plant references unknown pattern %d", pl.PatternID)
			}
			start := pl.End - len(data)
			if !bytes.Equal(w.Streams[f][start:pl.End], data) {
				t.Fatalf("flow %d: plant %d not intact at [%d,%d)", f, pl.PatternID, start, pl.End)
			}
			straddles := start/cfg.SegmentBytes != (pl.End-1)/cfg.SegmentBytes
			if straddles != pl.CrossPacket {
				t.Fatalf("flow %d: plant at [%d,%d) CrossPacket=%v, boundaries say %v",
					f, start, pl.End, pl.CrossPacket, straddles)
			}
			total++
			if pl.CrossPacket {
				cross++
			}
		}
	}
	if total == 0 || cross == 0 {
		t.Fatalf("workload planted %d patterns (%d cross-packet); test is vacuous", total, cross)
	}
	if w.CrossPlants() != cross {
		t.Fatalf("CrossPlants() = %d, counted %d", w.CrossPlants(), cross)
	}
}

func TestGenerateFlowsDeterministic(t *testing.T) {
	set := flowSet(t)
	cfg := FlowConfig{Flows: 6, SegmentsPerFlow: 3, SegmentBytes: 64, Seed: 42, CrossDensity: 1}
	a, err := GenerateFlows(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFlows(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("packet counts differ")
	}
	for i := range a.Packets {
		if a.Packets[i].FlowID != b.Packets[i].FlowID || !bytes.Equal(a.Packets[i].Payload, b.Packets[i].Payload) {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}
}

func TestGenerateFlowsValidation(t *testing.T) {
	set := flowSet(t)
	if _, err := GenerateFlows(set, FlowConfig{Flows: 0, SegmentsPerFlow: 1, SegmentBytes: 1}); err == nil {
		t.Fatal("accepted zero flows")
	}
	if _, err := GenerateFlows(set, FlowConfig{Flows: 1, SegmentsPerFlow: 1, SegmentBytes: 64, CrossDensity: 1}); err == nil {
		t.Fatal("accepted cross plants with a single segment")
	}
}

func TestGenerateFlowsSequenced(t *testing.T) {
	set := flowSet(t)
	w, err := GenerateFlows(set, FlowConfig{
		Flows: 12, SegmentsPerFlow: 8, SegmentBytes: 50, Seed: 9,
		Sequenced: true, ReorderWindow: 3, RetransmitDensity: 1.5, CrossDensity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every flow: SYN first, each original segment exactly once, seqs
	// consistent with the ISN derived from the SYN packet, duplicates
	// byte-identical to their originals, FIN on the last segment.
	type flowCheck struct {
		isn      uint32
		synSeen  bool
		origSeen map[int]bool
		retrans  int
	}
	checks := map[int]*flowCheck{}
	for _, p := range w.Packets {
		c := checks[p.FlowID]
		if c == nil {
			c = &flowCheck{origSeen: map[int]bool{}}
			checks[p.FlowID] = c
		}
		if p.Flags&FlagSeq == 0 {
			t.Fatalf("flow %d packet without FlagSeq", p.FlowID)
		}
		if !c.synSeen {
			if p.Flags&FlagSYN == 0 || p.Seq != 0 {
				t.Fatalf("flow %d: first emission is segment %d flags %#x, want the SYN segment", p.FlowID, p.Seq, p.Flags)
			}
			c.isn = p.TCPSeq
			c.synSeen = true
		}
		wantSeq := c.isn + 1 + uint32(p.Seq*50)
		if p.Seq == 0 {
			wantSeq = c.isn
		}
		if p.TCPSeq != wantSeq {
			t.Fatalf("flow %d seg %d: TCPSeq %d, want %d", p.FlowID, p.Seq, p.TCPSeq, wantSeq)
		}
		if (p.Flags&FlagFIN != 0) != p.Last {
			t.Fatalf("flow %d seg %d: FIN/Last mismatch", p.FlowID, p.Seq)
		}
		if p.Retransmit {
			if p.Seq == 0 {
				t.Fatalf("flow %d: SYN segment retransmitted", p.FlowID)
			}
			if !c.origSeen[p.Seq] {
				t.Fatalf("flow %d seg %d: marked retransmit before its original", p.FlowID, p.Seq)
			}
			c.retrans++
		} else if c.origSeen[p.Seq] {
			t.Fatalf("flow %d seg %d: original emitted twice", p.FlowID, p.Seq)
		}
		c.origSeen[p.Seq] = true
		if !bytes.Equal(p.Payload, w.Streams[p.FlowID][p.Seq*50:(p.Seq+1)*50]) {
			t.Fatalf("flow %d seg %d: payload does not match the stream slice", p.FlowID, p.Seq)
		}
	}
	totalRetrans := 0
	reordered := false
	for f, c := range checks {
		if len(c.origSeen) != 8 {
			t.Fatalf("flow %d: %d distinct segments emitted, want 8", f, len(c.origSeen))
		}
		totalRetrans += c.retrans
	}
	// With window 3 over 12 flows, at least one flow must actually be
	// out of order (probabilistically certain at this size).
	lastSeq := map[int]int{}
	for _, p := range w.Packets {
		if p.Retransmit {
			continue
		}
		if p.Seq < lastSeq[p.FlowID] {
			reordered = true
		}
		lastSeq[p.FlowID] = p.Seq
	}
	if !reordered {
		t.Fatal("ReorderWindow produced a fully in-order workload")
	}
	if totalRetrans == 0 {
		t.Fatal("RetransmitDensity produced no retransmissions")
	}
}

// TestGenerateFlowsLegacyUnchanged pins that non-sequenced generation is
// byte-identical to the pre-reassembly generator for a given seed: the new
// schedule machinery must consume no extra randomness when off.
func TestGenerateFlowsLegacyUnchanged(t *testing.T) {
	set := flowSet(t)
	w, err := GenerateFlows(set, FlowConfig{
		Flows: 5, SegmentsPerFlow: 4, SegmentBytes: 32, Seed: 7, CrossDensity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range w.Packets {
		if p.TCPSeq != 0 || p.Flags != 0 || p.Retransmit {
			t.Fatalf("packet %d: sequenced fields set on a legacy workload: %+v", i, p)
		}
	}
	// Per-flow segment order strictly ascending.
	next := map[int]int{}
	for _, p := range w.Packets {
		if p.Seq != next[p.FlowID] {
			t.Fatalf("flow %d delivered segment %d, want %d", p.FlowID, p.Seq, next[p.FlowID])
		}
		next[p.FlowID]++
	}
	if _, err := GenerateFlows(set, FlowConfig{
		Flows: 1, SegmentsPerFlow: 2, SegmentBytes: 8, ReorderWindow: 1,
	}); err == nil {
		t.Fatal("accepted ReorderWindow without Sequenced")
	}
}
