// Package traffic synthesizes packet workloads for the scanner: clean
// background traffic, attack-laden streams with known ground truth, and the
// adversarial worst-case streams the paper's throughput guarantee is about
// ("This prevents attacks being constructed which flood a system with
// packets it performs poorly on", §I) — inputs that force fail-pointer
// matchers to their worst case while the paper's architecture still scans
// one byte per cycle.
package traffic

import (
	"fmt"

	"repro/internal/ac"
	"repro/internal/rng"
	"repro/internal/ruleset"
)

// Packet is one payload with provenance metadata.
type Packet struct {
	ID      int
	Payload []byte
	// Planted records ground truth: pattern IDs copied into the payload by
	// the generator (matches may exceed this — random bytes can collide
	// with short patterns).
	Planted []int32
}

// Config controls workload synthesis.
type Config struct {
	Packets int
	// Bytes is the payload size of each packet; typical MTU-ish values
	// (500-1500) exercise the per-packet reset paths.
	Bytes int
	Seed  int64
	// AttackDensity is the expected number of planted patterns per packet
	// (0 = clean traffic).
	AttackDensity float64
	// Profile shapes the background bytes.
	Profile Profile
}

// Profile selects the background byte distribution.
type Profile int

const (
	// Uniform is uniformly random bytes — maximum-entropy background.
	Uniform Profile = iota
	// Textual mimics ASCII-heavy application traffic (HTTP, SMTP).
	Textual
	// Zeroish mimics padding-heavy binary protocols.
	Zeroish
)

// Generate produces a deterministic workload over the given pattern set.
func Generate(set *ruleset.Set, cfg Config) ([]Packet, error) {
	if cfg.Packets <= 0 || cfg.Bytes <= 0 {
		return nil, fmt.Errorf("traffic: need positive Packets and Bytes, got %d/%d", cfg.Packets, cfg.Bytes)
	}
	src := rng.New(cfg.Seed)
	packets := make([]Packet, cfg.Packets)
	for i := range packets {
		payload := make([]byte, cfg.Bytes)
		fillBackground(src, payload, cfg.Profile)
		var planted []int32
		if cfg.AttackDensity > 0 && set != nil && set.Len() > 0 {
			n := poissonish(src, cfg.AttackDensity)
			for k := 0; k < n; k++ {
				p := set.Patterns[src.Intn(set.Len())]
				if len(p.Data) >= cfg.Bytes {
					continue
				}
				off := src.Intn(cfg.Bytes - len(p.Data))
				copy(payload[off:], p.Data)
				planted = append(planted, int32(p.ID))
			}
		}
		packets[i] = Packet{ID: i, Payload: payload, Planted: planted}
	}
	return packets, nil
}

func fillBackground(src *rng.Source, payload []byte, profile Profile) {
	switch profile {
	case Textual:
		for i := range payload {
			switch src.WeightedPick([]float64{60, 12, 10, 8, 10}) {
			case 0:
				payload[i] = byte('a' + src.Intn(26))
			case 1:
				payload[i] = byte('A' + src.Intn(26))
			case 2:
				payload[i] = ' '
			case 3:
				payload[i] = byte('0' + src.Intn(10))
			default:
				puncts := []byte("./:?=&-_\r\n")
				payload[i] = puncts[src.Intn(len(puncts))]
			}
		}
	case Zeroish:
		for i := range payload {
			if src.Bool(0.6) {
				payload[i] = 0
			} else {
				payload[i] = src.Byte()
			}
		}
	default:
		for i := range payload {
			payload[i] = src.Byte()
		}
	}
}

// poissonish draws a small non-negative count with the given mean using a
// simple inversion that is adequate for means below ~10.
func poissonish(src *rng.Source, mean float64) int {
	n := 0
	budget := mean
	for budget > 0 {
		if budget >= 1 || src.Bool(budget) {
			if src.Bool(1 - 1/(1+mean)) {
				n++
			}
		}
		budget--
	}
	if n == 0 && src.Bool(mean/(1+mean)) {
		n = 1
	}
	return n
}

// Adversarial builds a payload that maximizes goto/fail automaton stress.
// It analyses the ruleset's Aho-Corasick failure structure, finds the
// states whose fail chains are deepest relative to their trie depth, and
// emits their path strings each followed by a "breaker" byte that has no
// goto transition anywhere on the fail chain — forcing the matcher to walk
// the entire chain for a single input character. The paper's architecture
// scans any such stream at exactly one byte per cycle; a fail-pointer
// design does not ("This prevents attacks being constructed which flood a
// system with packets it performs poorly on").
func Adversarial(set *ruleset.Set, size int, seed int64) ([]byte, error) {
	if set.Len() == 0 {
		return nil, fmt.Errorf("traffic: empty pattern set")
	}
	if size <= 0 {
		return nil, fmt.Errorf("traffic: need positive size, got %d", size)
	}
	trie, err := ac.New(set)
	if err != nil {
		return nil, err
	}
	// failDepth[s] = number of fail transitions from s down to the root.
	n := trie.NumStates()
	failDepth := make([]int, n)
	for s := int32(1); s < int32(n); s++ {
		// Nodes are created parents-first but fail targets may be later
		// states; compute lazily with memoized chain walks.
		if failDepth[s] == 0 {
			var chain []int32
			cur := s
			for cur != ac.Root && failDepth[cur] == 0 {
				chain = append(chain, cur)
				cur = trie.Nodes[cur].Fail
			}
			d := failDepth[cur]
			for i := len(chain) - 1; i >= 0; i-- {
				d++
				failDepth[chain[i]] = d
			}
		}
	}
	// Score states by amortized steps per byte of their attack unit:
	// (depth + 1 goto steps + failDepth fail steps) / (depth + 1 bytes).
	type cand struct {
		state int32
		score float64
	}
	var best []cand
	for s := int32(1); s < int32(n); s++ {
		depth := int(trie.Nodes[s].Depth)
		score := float64(depth+1+failDepth[s]) / float64(depth+1)
		best = append(best, cand{state: s, score: score})
	}
	// Partial selection of the top 8 scorers.
	for i := 0; i < len(best) && i < 8; i++ {
		max := i
		for j := i + 1; j < len(best); j++ {
			if best[j].score > best[max].score {
				max = j
			}
		}
		best[i], best[max] = best[max], best[i]
	}
	if len(best) > 8 {
		best = best[:8]
	}

	// Build each candidate's attack unit: path string + breaker byte.
	units := make([][]byte, 0, len(best))
	for _, c := range best {
		var path []byte
		for cur := c.state; cur != ac.Root; cur = trie.Nodes[cur].Parent {
			path = append(path, trie.Nodes[cur].Char)
		}
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		unit := append(path, breakerByte(trie, c.state))
		units = append(units, unit)
	}

	src := rng.New(seed)
	payload := make([]byte, 0, size)
	for len(payload) < size {
		u := units[src.Intn(len(units))]
		take := len(u)
		if rem := size - len(payload); take > rem {
			take = rem
		}
		payload = append(payload, u[:take]...)
	}
	return payload, nil
}

// breakerByte picks an input byte with no goto transition at any state on
// s's fail chain, so a goto/fail matcher walks the whole chain. Falls back
// to 0xFE if every byte is covered somewhere on the chain.
func breakerByte(trie *ac.Trie, s int32) byte {
	var covered [256]bool
	for cur := s; ; cur = trie.Nodes[cur].Fail {
		for _, e := range trie.Nodes[cur].Edges {
			covered[e.Char] = true
		}
		if cur == ac.Root {
			break
		}
	}
	for c := 0; c < 256; c++ {
		if !covered[c] {
			return byte(c)
		}
	}
	return 0xFE
}
