package traffic

import (
	"bytes"
	"testing"

	"repro/internal/ac"
	"repro/internal/ruleset"
)

func set(t *testing.T) *ruleset.Set {
	t.Helper()
	return ruleset.MustGenerate(ruleset.GenConfig{N: 100, Seed: 5})
}

func TestGenerateShape(t *testing.T) {
	pkts, err := Generate(set(t), Config{Packets: 20, Bytes: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 20 {
		t.Fatalf("packets = %d", len(pkts))
	}
	for i, p := range pkts {
		if p.ID != i {
			t.Fatalf("packet %d has ID %d", i, p.ID)
		}
		if len(p.Payload) != 512 {
			t.Fatalf("packet %d size %d", i, len(p.Payload))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(set(t), Config{Packets: 5, Bytes: 256, Seed: 9})
	b, _ := Generate(set(t), Config{Packets: 5, Bytes: 256, Seed: 9})
	for i := range a {
		if !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Fatalf("packet %d differs across identical seeds", i)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{{Packets: 0, Bytes: 10}, {Packets: 5, Bytes: 0}} {
		if _, err := Generate(nil, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestPlantedPatternsArePresent(t *testing.T) {
	s := set(t)
	pkts, err := Generate(s, Config{Packets: 30, Bytes: 800, Seed: 2, AttackDensity: 2})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int32][]byte{}
	for _, p := range s.Patterns {
		byID[int32(p.ID)] = p.Data
	}
	planted := 0
	for _, pkt := range pkts {
		for _, id := range pkt.Planted {
			planted++
			if !bytes.Contains(pkt.Payload, byID[id]) {
				// A later plant may overwrite an earlier one; only the last
				// plant at each offset is guaranteed. Verify at least that
				// most planted patterns survive.
				planted--
			}
		}
	}
	if planted < 20 {
		t.Fatalf("only %d planted patterns survive in 30 packets at density 2", planted)
	}
}

func TestCleanTrafficHasNoPlants(t *testing.T) {
	pkts, err := Generate(set(t), Config{Packets: 10, Bytes: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if len(p.Planted) != 0 {
			t.Fatalf("clean packet %d has plants", p.ID)
		}
	}
}

func TestProfilesDiffer(t *testing.T) {
	mk := func(pr Profile) []byte {
		pkts, err := Generate(nil, Config{Packets: 1, Bytes: 4096, Seed: 4, Profile: pr})
		if err != nil {
			t.Fatal(err)
		}
		return pkts[0].Payload
	}
	uniform, textual, zeroish := mk(Uniform), mk(Textual), mk(Zeroish)
	countASCII := func(b []byte) int {
		n := 0
		for _, c := range b {
			if c >= 0x20 && c < 0x7F {
				n++
			}
		}
		return n
	}
	countZero := func(b []byte) int {
		n := 0
		for _, c := range b {
			if c == 0 {
				n++
			}
		}
		return n
	}
	if a := countASCII(textual); a < 4000 {
		t.Errorf("textual profile only %d/4096 ASCII", a)
	}
	if z := countZero(zeroish); z < 2000 {
		t.Errorf("zeroish profile only %d/4096 zeros", z)
	}
	if a := countASCII(uniform); a < 1000 || a > 2200 {
		t.Errorf("uniform profile ASCII count %d implausible", a)
	}
}

func TestAdversarialStressesFailMatcher(t *testing.T) {
	s := set(t)
	payload, err := Adversarial(s, 8192, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 8192 {
		t.Fatalf("payload size %d", len(payload))
	}
	trie, err := ac.New(s)
	if err != nil {
		t.Fatal(err)
	}
	fm := ac.NewFailMatcher(trie)
	fm.FindAll(payload)
	if spc := fm.StepsPerChar(); spc < 1.10 {
		t.Fatalf("adversarial payload yields %.3f steps/char on the fail matcher, want >= 1.10", spc)
	}
}

func TestAdversarialErrors(t *testing.T) {
	if _, err := Adversarial(&ruleset.Set{}, 100, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Adversarial(set(t), 0, 1); err == nil {
		t.Error("zero size accepted")
	}
}
