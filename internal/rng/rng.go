// Package rng provides a small, deterministic pseudo-random number generator
// used by the ruleset and traffic generators. Experiments must be exactly
// reproducible from a seed across Go releases, so we implement our own
// generator (SplitMix64) instead of relying on math/rand, whose unseeded
// stream and helper behaviours are not pinned by the Go compatibility
// promise.
package rng

// Source is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free reduction is overkill here; modulo bias is
	// negligible for the small n used by the generators, but we still avoid
	// it with a simple rejection loop for exactness.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Byte returns a pseudo-random byte.
func (s *Source) Byte() byte {
	return byte(s.Uint64())
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// WeightedPick returns an index into weights chosen with probability
// proportional to its weight. Weights must be non-negative with a positive
// sum; otherwise WeightedPick panics.
func (s *Source) WeightedPick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: zero total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
