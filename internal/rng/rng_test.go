package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently seeded streams", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 255, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnRoughlyUniform(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d: count %d far from %d", i, c, want)
		}
	}
}

func TestWeightedPickProportions(t *testing.T) {
	s := New(13)
	weights := []float64{1, 3, 6}
	var counts [3]int
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[s.WeightedPick(weights)]++
	}
	// Expected: 6000, 18000, 36000 with generous tolerance.
	if counts[0] < 4500 || counts[0] > 7500 {
		t.Errorf("weight-1 bucket: %d", counts[0])
	}
	if counts[2] < 32000 || counts[2] > 40000 {
		t.Errorf("weight-6 bucket: %d", counts[2])
	}
}

func TestWeightedPickPanics(t *testing.T) {
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", w)
				}
			}()
			New(1).WeightedPick(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8)%50 + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(17)
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if hits < draws/5 || hits > draws*3/10 {
		t.Fatalf("Bool(0.25) hit rate %d/%d", hits, draws)
	}
}
