package core

import (
	"bytes"
	"hash/crc32"
	"testing"

	"repro/internal/ac"
	"repro/internal/rng"
	"repro/internal/ruleset"
)

func snapshotOf(t *testing.T, m *Machine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 300, Seed: 81})
	orig := mustBuild(t, set, Options{})
	data := snapshotOf(t, orig)
	loaded, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Stats != orig.Stats {
		t.Fatalf("stats changed:\n%+v\n%+v", loaded.Stats, orig.Stats)
	}
	if loaded.Opts != orig.Opts.withDefaults() {
		t.Fatalf("opts changed: %+v vs %+v", loaded.Opts, orig.Opts)
	}
	if loaded.Trie.NumStates() != orig.Trie.NumStates() {
		t.Fatalf("state count changed")
	}
	// The loaded machine must still be structurally equivalent to the DFA.
	if err := loaded.VerifyTransitions(); err != nil {
		t.Fatal(err)
	}
	// And produce identical matches.
	src := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		payload := make([]byte, 800)
		for i := range payload {
			payload[i] = src.Byte()
		}
		p := set.Patterns[src.Intn(set.Len())]
		copy(payload[100:], p.Data)
		got := loaded.FindAll(payload)
		want := orig.FindAll(payload)
		if !ac.MatchesEqual(got, want) {
			t.Fatalf("trial %d: loaded machine found %d matches, original %d", trial, len(got), len(want))
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 100, Seed: 82})
	m := mustBuild(t, set, Options{})
	a, b := snapshotOf(t, m), snapshotOf(t, m)
	if !bytes.Equal(a, b) {
		t.Fatal("snapshots of the same machine differ")
	}
}

func TestSnapshotPreservesAblationOptions(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 80, Seed: 83})
	m := mustBuild(t, set, Options{D2PerChar: 2, MaxDepth: 2})
	loaded, err := Load(snapshotOf(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Opts.D2PerChar != 2 || loaded.Opts.MaxDepth != 2 {
		t.Fatalf("opts = %+v", loaded.Opts)
	}
	if err := loaded.VerifyTransitions(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 60, Seed: 84})
	m := mustBuild(t, set, Options{})
	data := snapshotOf(t, m)

	// Truncation.
	for _, cut := range []int{0, 1, 4, len(data) / 2, len(data) - 1} {
		if _, err := Load(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	// Bit flips anywhere must fail the checksum (or a structural check).
	src := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		corrupted := append([]byte(nil), data...)
		corrupted[src.Intn(len(corrupted))] ^= 1 << uint(src.Intn(8))
		if _, err := Load(corrupted); err == nil {
			t.Errorf("trial %d: corrupted snapshot accepted", trial)
		}
	}
}

func TestLoadRejectsBadMagicAndVersion(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 20, Seed: 85})
	m := mustBuild(t, set, Options{})
	data := snapshotOf(t, m)

	bad := append([]byte(nil), data...)
	copy(bad, "XXXX")
	fixCRC(bad)
	if _, err := Load(bad); err == nil {
		t.Error("bad magic accepted")
	}

	bad = append([]byte(nil), data...)
	bad[4] = 99 // version
	fixCRC(bad)
	if _, err := Load(bad); err == nil {
		t.Error("future version accepted")
	}
}

// fixCRC recomputes the trailing checksum so structural validation (not
// the CRC) is what must reject the blob.
func fixCRC(data []byte) {
	body := data[:len(data)-4]
	crc := crc32ChecksumIEEE(body)
	data[len(data)-4] = byte(crc)
	data[len(data)-3] = byte(crc >> 8)
	data[len(data)-2] = byte(crc >> 16)
	data[len(data)-1] = byte(crc >> 24)
}

// crc32ChecksumIEEE is a local alias so the test file reads clearly.
func crc32ChecksumIEEE(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}
