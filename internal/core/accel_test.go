package core

import (
	"math/rand"
	"testing"

	"repro/internal/ac"
	"repro/internal/ruleset"
)

// toyAccelSet is the paper's Figure 1 set: two escaping bytes ('h', 's'),
// so the compiled Accel exercises the IndexByte probe path, the pair
// tables and the skim action table at once.
func toyAccelSet() *ruleset.Set {
	return &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("he")},
		{ID: 1, Data: []byte("she")},
		{ID: 2, Data: []byte("his")},
		{ID: 3, Data: []byte("hers")},
	}}
}

// TestAccelCompileLayout pins the compiled layout on the toy machine:
// escape set, probe mode, pair-table allocation and the stats accounting.
func TestAccelCompileLayout(t *testing.T) {
	m, err := Build(toyAccelSet(), Options{Backend: BackendAccelerated})
	if err != nil {
		t.Fatal(err)
	}
	a := m.acc
	if a == nil {
		t.Fatal("accelerated kernel did not compile")
	}
	if a.escapeSize != 2 || a.escape == nil {
		t.Fatalf("escape set: size %d probe %v, want 2 bytes probed", a.escapeSize, a.escape != nil)
	}
	for _, c := range []byte{'h', 's'} {
		found := false
		for _, e := range a.escape {
			found = found || e == c
		}
		if !found {
			t.Fatalf("escape set %q missing %q", a.escape, c)
		}
	}
	if a.pairIdx[ac.Root] != 0 {
		t.Fatalf("start state owns pair table %d, want 0", a.pairIdx[ac.Root])
	}
	if a.advTab == nil {
		t.Fatal("skim action table not built despite a root pair table")
	}
	st := a.Stats()
	if !st.Probe || st.EscapeBytes != 2 {
		t.Fatalf("stats escape: %+v", st)
	}
	if st.PairStates != len(a.pair)>>16 || st.PairBytes != len(a.pair)*2 {
		t.Fatalf("stats pair accounting: %+v vs %d entries", st, len(a.pair))
	}
	want := len(a.pair)*2 + len(a.advTab)*8 + len(a.pairIdx)*4 + len(a.escape)
	if st.TotalBytes != want {
		t.Fatalf("stats TotalBytes = %d, want %d (advTab must be counted)", st.TotalBytes, want)
	}
}

// TestAccelAdvTabOracle checks every one of the 65536 skim actions against
// the trie itself: action 2 must mean "both bytes compose back to the
// start state, no output crossed", action 1 must mean "restart-equivalent
// at the second byte" (the composite state equals Move(Root, c2), no
// output crossed), and everything else must hand off. The skim's
// exactness argument rests on precisely these side conditions.
func TestAccelAdvTabOracle(t *testing.T) {
	m, err := Build(toyAccelSet(), Options{Backend: BackendAccelerated})
	if err != nil {
		t.Fatal(err)
	}
	a, tr := m.acc, m.Trie
	for c1 := 0; c1 < 256; c1++ {
		s1 := tr.Move(ac.Root, byte(c1))
		for c2 := 0; c2 < 256; c2++ {
			s2 := tr.Move(s1, byte(c2))
			crossesOut := tr.HasOutput(s1) || tr.HasOutput(s2)
			idx := uint32(c1)<<8 | uint32(c2)
			adv := a.advTab[idx>>5] >> ((idx & 31) << 1) & 3
			var want uint64
			switch {
			case !crossesOut && s2 == ac.Root:
				want = 2
			case !crossesOut && s2 == tr.Move(ac.Root, byte(c2)):
				want = 1
			}
			if adv != want {
				t.Fatalf("window (%#02x,%#02x): action %d, want %d (s1=%d s2=%d out=%v)",
					c1, c2, adv, want, s1, s2, crossesOut)
			}
		}
	}
}

// TestAccelPairStatesConfig drives the PairStates knob: negative disables
// the pair tier (probe + scalar only), 1 keeps just the start state, and
// every shape scans byte-exact against the reference backend.
func TestAccelPairStatesConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	set := randBakedSet(rng)
	payload := randBakedPayload(rng, 4096)
	ref, err := Build(set, Options{Backend: BackendReference})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.FindAll(payload)
	for _, tc := range []struct {
		pairStates int
		wantTables int // -1 = don't check
	}{
		{-1, 0},
		{1, 1},
		{0, -1}, // DefaultPairStates, capped by the dense tier
	} {
		m, err := Build(set, Options{Backend: BackendAccelerated, PairStates: tc.pairStates})
		if err != nil {
			t.Fatalf("PairStates %d: %v", tc.pairStates, err)
		}
		if m.acc == nil {
			t.Fatalf("PairStates %d: accelerated backend unavailable", tc.pairStates)
		}
		st := m.acc.Stats()
		if tc.wantTables >= 0 && st.PairStates != tc.wantTables {
			t.Fatalf("PairStates %d: %d tables, want %d", tc.pairStates, st.PairStates, tc.wantTables)
		}
		if tc.wantTables < 0 && st.PairStates < 1 {
			t.Fatalf("PairStates %d: no pair tables under the default budget", tc.pairStates)
		}
		got := m.FindAll(payload)
		if !ac.MatchesEqual(got, want) {
			t.Fatalf("PairStates %d: %d matches, reference %d", tc.pairStates, len(got), len(want))
		}
	}
}

// TestAccelSingleEscapeProbe pins the single-escape IndexByte fast path: a
// one-pattern machine has exactly one escaping byte, long clean spans are
// bulk-skipped, and matches land at exact offsets with true history.
func TestAccelSingleEscapeProbe(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{{ID: 0, Data: []byte("xyz")}}}
	m, err := Build(set, Options{Backend: BackendAccelerated})
	if err != nil {
		t.Fatal(err)
	}
	if m.acc.escapeSize != 1 || len(m.acc.escape) != 1 || m.acc.escape[0] != 'x' {
		t.Fatalf("escape set %q (size %d), want exactly {x}", m.acc.escape, m.acc.escapeSize)
	}
	payload := make([]byte, 0, 3000)
	for i := 0; i < 3; i++ {
		payload = append(payload, make([]byte, 900)...) // NUL runs: pure skip
		payload = append(payload, 'x', 'y', 'z')
	}
	got := m.FindAll(payload)
	if len(got) != 3 {
		t.Fatalf("%d matches, want 3", len(got))
	}
	for i, mt := range got {
		if wantEnd := (i+1)*903 + 0; mt.End != wantEnd {
			t.Fatalf("match %d ends at %d, want %d", i, mt.End, wantEnd)
		}
	}
}

// TestAccelBackendSelection pins the registry plumbing: a bakeable build
// defaults to the accelerated backend, lists it, and the scanner the
// default path hands out runs it; DisableBaked machines have no trace of
// it; SkipAhead(n <= 0) is a no-op on the accelerated backend too.
func TestAccelBackendSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, err := Build(randBakedSet(rng), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.DefaultBackend(); got != BackendAccelerated {
		t.Fatalf("auto default backend %q, want %q", got, BackendAccelerated)
	}
	found := false
	for _, name := range m.Backends() {
		found = found || name == BackendAccelerated
	}
	if !found {
		t.Fatalf("Backends() %v missing %q", m.Backends(), BackendAccelerated)
	}
	sc := m.NewScanner()
	if sc.Backend() != BackendAccelerated {
		t.Fatalf("NewScanner runs %q, want %q", sc.Backend(), BackendAccelerated)
	}
	sc.ScanAppend([]byte("abcab"), nil)
	before := sc.Registers()
	sc.SkipAhead(0)
	sc.SkipAhead(-7)
	if got := sc.Registers(); got != before {
		t.Fatalf("SkipAhead(<=0) moved registers %+v -> %+v", before, got)
	}

	off, err := Build(randBakedSet(rng), Options{DisableBaked: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.acc != nil {
		t.Fatal("DisableBaked machine still compiled the accelerated kernel")
	}
	if _, err := off.NewScannerFor(BackendAccelerated); err == nil {
		t.Fatal("NewScannerFor(accelerated) succeeded without a baked program")
	}
}
