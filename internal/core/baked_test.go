package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ac"
	"repro/internal/ruleset"
)

// randBakedSet builds a small random pattern set over a deliberately tiny
// alphabet so trie states overlap heavily (deep fail chains, busy default
// rows) plus occasional full-range bytes.
func randBakedSet(rng *rand.Rand) *ruleset.Set {
	n := 1 + rng.Intn(16)
	seen := map[string]bool{}
	set := &ruleset.Set{}
	for len(set.Patterns) < n {
		l := 1 + rng.Intn(10)
		data := make([]byte, l)
		for i := range data {
			if rng.Intn(8) == 0 {
				data[i] = byte(rng.Intn(256))
			} else {
				data[i] = byte('a' + rng.Intn(4))
			}
		}
		if seen[string(data)] {
			continue
		}
		seen[string(data)] = true
		set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: data})
	}
	return set
}

// randBakedPayload emits bytes biased toward the pattern alphabet so the
// scan actually walks deep states and fires matches.
func randBakedPayload(rng *rand.Rand, n int) []byte {
	data := make([]byte, n)
	for i := range data {
		if rng.Intn(6) == 0 {
			data[i] = byte(rng.Intn(256))
		} else {
			data[i] = byte('a' + rng.Intn(4))
		}
	}
	return data
}

// TestBakedEquivalenceProperty drives every registered backend — the
// reference slice walker, the baked kernel, the prefiltered pipeline — in
// lockstep over random machines, random payload chunks, interleaved
// single-byte Steps and mid-stream SkipAhead/Reset, asserting byte-exact
// register equivalence (state, h1/h2 history, pos) after every operation,
// identical match sequences, and — per contiguous visible segment — exact
// agreement with the uncompressed-DFA oracle.
func TestBakedEquivalenceProperty(t *testing.T) {
	configs := []Options{
		{},
		{MaxDepth: 1},
		{MaxDepth: 2},
		{D2PerChar: 2},
		{D2PerChar: 1, D3PerChar: 1},
		{DenseStates: -1},      // compressed tier only
		{DenseStates: 3},       // nearly everything on the CSR path
		{DenseStates: 1 << 20}, // pure flat DFA
	}
	for ci, opts := range configs {
		opts := opts
		t.Run(fmt.Sprintf("config-%d", ci), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			for trial := 0; trial < 20; trial++ {
				set := randBakedSet(rng)
				m, err := Build(set, opts)
				if err != nil {
					t.Fatal(err)
				}
				if m.prog == nil {
					t.Fatalf("trial %d: configuration unexpectedly not baked", trial)
				}
				if m.pre == nil {
					t.Fatalf("trial %d: prefilter unexpectedly unavailable", trial)
				}
				if m.acc == nil {
					t.Fatalf("trial %d: accelerated kernel unexpectedly unavailable", trial)
				}
				driveLockstep(t, m, rng)
			}
		})
	}
}

// driveLockstep runs one randomized op sequence over one scanner per
// registered backend, diffing registers and match streams after every op.
// Backends[0] is always the reference interpreter; the others are held to
// its behavior.
func driveLockstep(t *testing.T, m *Machine, rng *rand.Rand) {
	t.Helper()
	names := m.Backends()
	if len(names) < 4 {
		t.Fatalf("expected at least 4 backends, registry lists %v", names)
	}
	scs := make([]*Scanner, len(names))
	outs := make([][]ac.Match, len(names))
	for i, name := range names {
		sc, err := m.NewScannerFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Backend() != name {
			t.Fatalf("NewScannerFor(%q) built a %q scanner", name, sc.Backend())
		}
		scs[i] = sc
	}

	var seg []byte // bytes of the current contiguous visible segment
	segStart := 0  // stream position where the segment began
	segMark := 0   // len(outs[0]) when the segment began

	// checkSegment verifies the matches emitted during the segment against
	// the uncompressed DFA scanning the same bytes.
	checkSegment := func() {
		t.Helper()
		want := m.Trie.FindAll(seg)
		got := outs[0][segMark:]
		if len(got) != len(want) {
			t.Fatalf("segment at %d: %d matches, oracle %d", segStart, len(got), len(want))
		}
		for i := range want {
			if got[i].PatternID != want[i].PatternID || got[i].End != want[i].End+segStart {
				t.Fatalf("segment at %d: match %d = %+v, oracle %+v (+%d)", segStart, i, got[i], want[i], segStart)
			}
		}
	}
	checkRegisters := func(op string) {
		t.Helper()
		ref := scs[0].Registers()
		for bi := 1; bi < len(scs); bi++ {
			if got := scs[bi].Registers(); got != ref {
				t.Fatalf("%s: %s registers %+v != reference %+v", op, names[bi], got, ref)
			}
			if len(outs[bi]) != len(outs[0]) {
				t.Fatalf("%s: %s emitted %d matches, reference %d", op, names[bi], len(outs[bi]), len(outs[0]))
			}
			for i := range outs[bi] {
				if outs[bi][i] != outs[0][i] {
					t.Fatalf("%s: match %d %s %+v reference %+v", op, i, names[bi], outs[bi][i], outs[0][i])
				}
			}
		}
	}

	ops := 3 + rng.Intn(12)
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0: // Reset: segment ends, stream position restarts
			checkSegment()
			for _, sc := range scs {
				sc.Reset()
			}
			seg, segStart, segMark = seg[:0], 0, len(outs[0])
			checkRegisters("Reset")
		case 1: // SkipAhead: segment ends, position advances over unseen bytes
			checkSegment()
			n := 1 + rng.Intn(64)
			for _, sc := range scs {
				sc.SkipAhead(n)
			}
			seg, segStart, segMark = seg[:0], scs[0].Pos(), len(outs[0])
			checkRegisters("SkipAhead")
		case 3: // SkipAhead(n <= 0): documented no-op — no register moves
			before := scs[0].Registers()
			for _, sc := range scs {
				sc.SkipAhead(0)
				sc.SkipAhead(-1 - rng.Intn(16))
			}
			if got := scs[0].Registers(); got != before {
				t.Fatalf("SkipAhead(<=0) moved reference registers %+v -> %+v", before, got)
			}
			checkRegisters("SkipAhead no-op")
		case 2: // single-byte Steps (the register-machine view, no outputs)
			// Steps leave matches unemitted, so the segment oracle no
			// longer applies: fold the stepped bytes into the *next*
			// segment boundary by restarting segment accounting after.
			checkSegment()
			for _, c := range randBakedPayload(rng, 1+rng.Intn(4)) {
				for _, sc := range scs {
					sc.Step(c)
				}
				checkRegisters("Step")
			}
			for _, sc := range scs {
				sc.Reset()
			}
			seg, segStart, segMark = seg[:0], 0, len(outs[0])
			checkRegisters("Reset after Step")
		default: // write a chunk (empty chunks included)
			chunk := randBakedPayload(rng, rng.Intn(80))
			seg = append(seg, chunk...)
			for bi, sc := range scs {
				outs[bi] = sc.ScanAppend(chunk, outs[bi])
			}
			checkRegisters("ScanAppend")
		}
	}
	checkSegment()

	// Scan must replay exactly the ScanAppend sequence on every backend.
	payload := randBakedPayload(rng, 200)
	scanOuts := make([][]ac.Match, len(scs))
	for bi, sc := range scs {
		sc.Reset()
		sc.Scan(payload, func(mt ac.Match) { scanOuts[bi] = append(scanOuts[bi], mt) })
	}
	for bi := 1; bi < len(scs); bi++ {
		if len(scanOuts[bi]) != len(scanOuts[0]) {
			t.Fatalf("Scan: %s %d matches, reference %d", names[bi], len(scanOuts[bi]), len(scanOuts[0]))
		}
		for i := range scanOuts[bi] {
			if scanOuts[bi][i] != scanOuts[0][i] {
				t.Fatalf("Scan: match %d %s %+v reference %+v", i, names[bi], scanOuts[bi][i], scanOuts[0][i])
			}
		}
	}
}

// TestScanEmitReentrancy: an emit callback that reenters the same
// scanner's Scan must not corrupt the outer replay — the baked path
// detaches its scratch buffer while iterating it.
func TestScanEmitReentrancy(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{{ID: 0, Data: []byte("ab")}}}
	m, err := Build(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := m.NewScanner()
	sc.Scan([]byte("abab"), func(ac.Match) {}) // grow the scratch buffer
	sc.Reset()
	var outer []ac.Match
	depth := 0
	sc.Scan([]byte("abab"), func(mt ac.Match) {
		outer = append(outer, mt)
		if depth == 0 {
			depth++
			// The inner scan continues the stream (two more matches the
			// outer callback also receives) and, crucially, recycles the
			// scanner's scratch storage.
			sc.Scan([]byte("abab"), func(ac.Match) {})
		}
	})
	want := []ac.Match{{PatternID: 0, End: 2}, {PatternID: 0, End: 4}}
	if len(outer) != len(want) {
		t.Fatalf("outer emit saw %d matches, want %d: %+v", len(outer), len(want), outer)
	}
	for i := range want {
		if outer[i] != want[i] {
			t.Fatalf("outer match %d = %+v, want %+v (scratch aliasing)", i, outer[i], want[i])
		}
	}
}

// TestCompileFallback proves that machines whose default rows overflow the
// fixed row format refuse to bake and stay on the (still correct)
// reference path. The sets are crafted so the ablation-sized row widths
// are actually populated: six depth-2 states and two depth-3 states all
// ending in 'x'. Compile bails on actual row widths, not the configured
// limits — an oversized D2PerChar on a sparse set still bakes.
func TestCompileFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	wideD2 := &ruleset.Set{}
	for i, p := range []string{"ax", "bx", "cx", "dx", "ex", "fx"} {
		wideD2.Patterns = append(wideD2.Patterns, ruleset.Pattern{ID: i, Data: []byte(p)})
	}
	wideD3 := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("aax")},
		{ID: 1, Data: []byte("abx")},
	}}
	for _, tc := range []struct {
		set  *ruleset.Set
		opts Options
	}{
		{wideD2, Options{D2PerChar: 8}}, // 6 depth-2 defaults for 'x' > 4 slots
		{wideD3, Options{D3PerChar: 2}}, // 2 depth-3 defaults for 'x' > 1 word
	} {
		m, err := Build(tc.set, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if m.prog != nil {
			t.Fatalf("options %+v: expected Compile fallback, got a program", tc.opts)
		}
		if err := m.VerifyScan([][]byte{randBakedPayload(rng, 512)}); err != nil {
			t.Fatalf("options %+v: fallback path broken: %v", tc.opts, err)
		}
	}
	// A sparse set bakes even under ablation-wide limits...
	sparse, err := Build(randBakedSet(rng), Options{D2PerChar: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.prog == nil && sparse.Stats.D2Count <= 4*256 {
		// (only fails if the random set really overflowed a row, which
		// randBakedSet's 16 short patterns cannot)
		t.Fatal("sparse machine under D2PerChar=8 did not bake")
	}
	// ...and DisableBaked skips compilation outright.
	m, err := Build(randBakedSet(rng), Options{DisableBaked: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.prog != nil {
		t.Fatal("DisableBaked still compiled a program")
	}
}

// TestSnapshotLoadBakes proves a Load-ed machine compiles its kernel (via
// the re-tallied popularity pass) and scans identically to the original.
func TestSnapshotLoadBakes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	set := randBakedSet(rng)
	m, err := Build(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.prog == nil {
		t.Fatal("loaded machine has no baked program")
	}
	if loaded.acc == nil {
		t.Fatal("loaded machine has no accelerated kernel")
	}
	if got := loaded.DefaultBackend(); got != BackendAccelerated {
		t.Fatalf("loaded machine defaults to backend %q, want %q", got, BackendAccelerated)
	}
	payload := randBakedPayload(rng, 4096)
	got := loaded.FindAll(payload)
	want := m.FindAll(payload)
	if !ac.MatchesEqual(got, want) {
		t.Fatalf("loaded machine found %d matches, original %d", len(got), len(want))
	}
}

// TestProgramStats sanity-checks the layout report against the machine.
func TestProgramStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := randBakedSet(rng)
	m, err := Build(set, Options{DenseStates: 8})
	if err != nil {
		t.Fatal(err)
	}
	st := m.prog.Stats()
	if st.States != m.Trie.NumStates() {
		t.Fatalf("States = %d, machine has %d", st.States, m.Trie.NumStates())
	}
	wantDense := 8
	if n := m.Trie.NumStates(); n < wantDense {
		wantDense = n
	}
	if st.DenseStates != wantDense {
		t.Fatalf("DenseStates = %d, want %d", st.DenseStates, wantDense)
	}
	var stored int
	promoted := m.pickDense()
	for s, list := range m.Stored {
		if !promoted[s] {
			stored += len(list)
		}
	}
	if st.StoredEntries != stored {
		t.Fatalf("StoredEntries = %d, want %d", st.StoredEntries, stored)
	}
	if st.TotalBytes != st.DenseBytes+st.StoredBytes+st.LookupBytes+st.OutputBytes {
		t.Fatal("TotalBytes does not add up")
	}
}

// TestFusedHistoryRoundTrip pins the sentinel encoding: every (h2, h1)
// register pair survives fuse/split, and unknown lanes can never compare
// equal to a key built from real bytes.
func TestFusedHistoryRoundTrip(t *testing.T) {
	vals := []int16{HistNone, 0, 1, 'a', 0xFE, 0xFF}
	for _, h2 := range vals {
		for _, h1 := range vals {
			g2, g1 := splitHist(fuseHist(h2, h1))
			if g2 != h2 || g1 != h1 {
				t.Fatalf("fuse/split (%d,%d) -> (%d,%d)", h2, h1, g2, g1)
			}
		}
	}
	for c := 0; c < 256; c++ {
		if fuseHist(HistNone, int16(c))>>histLaneBits == uint32(c) {
			t.Fatalf("unknown h2 lane collides with byte %#x", c)
		}
		if fuseHist(int16(c), HistNone)&histLaneMask == uint32(c) {
			t.Fatalf("unknown h1 lane collides with byte %#x", c)
		}
	}
}
