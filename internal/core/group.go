package core

import (
	"fmt"

	"repro/internal/ac"
	"repro/internal/ruleset"
)

// Grouped is a ruleset split across several independent machines, one per
// string matching block (§IV.B): "For large rulesets containing many
// thousands of strings the search structures can be split across the memory
// of multiple engines with the engines working together to scan a packet."
// Every group scans the same packet; matches carry global string numbers so
// results merge trivially.
type Grouped struct {
	Machines []*Machine
	Sets     []*ruleset.Set
	Opts     Options
	// Generation is the process-unique compile generation shared by every
	// machine in the group — the identity a hot-reload control plane pins
	// flows to. See generation.go.
	Generation uint64
}

// BuildGrouped splits set into groups lexicographic-contiguous groups of
// balanced character count and compresses each independently.
func BuildGrouped(set *ruleset.Set, groups int, opts Options) (*Grouped, error) {
	if groups < 1 {
		return nil, fmt.Errorf("core: groups must be >= 1, got %d", groups)
	}
	if groups > set.Len() {
		return nil, fmt.Errorf("core: %d groups for %d patterns", groups, set.Len())
	}
	parts := set.SplitChars(groups)
	g := &Grouped{Sets: parts, Opts: opts}
	for i, part := range parts {
		if part.Len() == 0 {
			return nil, fmt.Errorf("core: group %d is empty; too many groups for this set", i)
		}
		m, err := Build(part, opts)
		if err != nil {
			return nil, fmt.Errorf("core: group %d: %w", i, err)
		}
		g.Machines = append(g.Machines, m)
	}
	// One generation for the whole group: the machines were compiled
	// together and are swapped together, so they share one identity.
	g.Generation = nextGeneration()
	for _, m := range g.Machines {
		m.generation = g.Generation
	}
	return g, nil
}

// FindAll scans data with every group machine and merges the matches in
// canonical (End, PatternID) order. (The engine layer has its own variant
// over pooled, Reset scanners — internal/engine.scanPacket.)
func (g *Grouped) FindAll(data []byte) []ac.Match {
	var out []ac.Match
	for _, m := range g.Machines {
		out = m.NewScanner().ScanAppend(data, out)
	}
	ac.SortMatches(out)
	return out
}

// CombinedStats aggregates Table II quantities across groups: state counts
// and pointer counts add (each block holds its own state machine and lookup
// table), averages weight by state count.
func (g *Grouped) CombinedStats() BuildStats {
	var st BuildStats
	maxStored := 0
	for _, m := range g.Machines {
		s := m.Stats
		st.States += s.States
		st.OriginalPointers += s.OriginalPointers
		st.D1Count += s.D1Count
		st.D2Count += s.D2Count
		st.D3Count += s.D3Count
		st.StoredAfterD1 += s.StoredAfterD1
		st.StoredAfterD12 += s.StoredAfterD12
		st.StoredAfterD123 += s.StoredAfterD123
		st.StoredPointers += s.StoredPointers
		if s.MaxStoredPerState > maxStored {
			maxStored = s.MaxStoredPerState
		}
	}
	fn := float64(st.States)
	st.OriginalAvg = float64(st.OriginalPointers) / fn
	st.AvgAfterD1 = float64(st.StoredAfterD1) / fn
	st.AvgAfterD12 = float64(st.StoredAfterD12) / fn
	st.AvgAfterD123 = float64(st.StoredAfterD123) / fn
	st.AvgStored = float64(st.StoredPointers) / fn
	st.MaxStoredPerState = maxStored
	if st.OriginalPointers > 0 {
		st.Reduction = 1 - float64(st.StoredPointers)/float64(st.OriginalPointers)
	}
	return st
}
