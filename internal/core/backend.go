package core

// The scan-backend seam: every way of executing the DTP machine — the
// slice-walking reference interpreter, the baked flat Program, the
// two-stage approximate-prefilter pipeline, the accelerated skip/pair
// kernel — implements ScanBackend, and
// the Scanner is a thin facade over whichever backend the machine (or an
// explicit caller) selected. Backends are registered in scanBackends so
// equivalence harnesses (VerifyScan, the lockstep property tests, the
// fuzzers) iterate every implementation a machine supports instead of
// hardcoding pairs; a new backend added here is automatically pulled into
// the oracle proofs.

import (
	"fmt"

	"repro/internal/ac"
)

// Backend names accepted by Options.Backend and Machine.NewScannerFor.
// BackendAuto (or "") resolves to the fastest always-exact default:
// accelerated when the machine bakes, baked if only the flat Program
// compiled, reference otherwise.
const (
	BackendAuto        = "auto"
	BackendReference   = "reference"
	BackendBaked       = "baked"
	BackendPrefiltered = "prefiltered"
	BackendAccelerated = "accelerated"
)

// Registers is the architectural register file of one scan lane, mirroring
// the hardware engine (Figure 5): current state, the previous two input
// characters the default rule compares against, and the absolute stream
// position. Every backend must expose the same register values after every
// operation — the register-level lockstep property tests diff snapshots
// across backends after each op. Backends that internally defer work (the
// prefiltered pipeline parks the exact machine while skimming) materialize
// the true registers on demand.
type Registers struct {
	State  int32
	H2, H1 int16
	Pos    int
}

// ScanBackend is one scan implementation bound to per-stream state over a
// shared immutable Machine. All backends must be byte-exact equivalent:
// same states, same histories, same positions, same canonical match
// sequences, on every input, including mid-stream Reset and SkipAhead.
// A ScanBackend is single-goroutine, like the Scanner wrapping it.
type ScanBackend interface {
	// Name reports the registry name of this backend.
	Name() string
	// Step consumes one input byte and reports the new state — exactly one
	// transition per byte, the paper's 1 character/cycle property. Step
	// does not emit matches; it is the register-machine view used by the
	// ablation harness and the lockstep tests.
	Step(c byte) int32
	// ScanAppend consumes data, appending every match to out in canonical
	// ascending-End order (ties in output-chain order, as AppendOutputs
	// emits them).
	ScanAppend(data []byte, out []ac.Match) []ac.Match
	// Reset rewinds to start-of-packet: start state, empty history,
	// position zero.
	Reset()
	// SkipAhead invalidates state and history like Reset (a match must
	// never span bytes the backend did not see) but advances the position
	// by n unseen bytes. n <= 0 is a no-op on every backend: no bytes were
	// skipped, so the registers — including position — must not move.
	SkipAhead(n int)
	// Registers returns the architectural register snapshot. Exactness is
	// defined on this view: after any operation sequence, all backends
	// report identical Registers.
	Registers() Registers
}

// backendSpec is one registry entry: a name, an availability predicate
// (some backends need compiled artifacts the machine may lack), and a
// constructor for per-stream backend state.
type backendSpec struct {
	name      string
	available func(*Machine) bool
	build     func(*Machine) ScanBackend
}

// scanBackends is the backend registry, ordered reference-first so
// verification sweeps always include the oracle-shaped interpreter.
var scanBackends = []backendSpec{
	{
		name:      BackendReference,
		available: func(*Machine) bool { return true },
		build:     func(m *Machine) ScanBackend { return &referenceBackend{m: m} },
	},
	{
		name:      BackendBaked,
		available: func(m *Machine) bool { return m.prog != nil },
		build:     func(m *Machine) ScanBackend { return &bakedBackend{prog: m.prog} },
	},
	{
		name:      BackendPrefiltered,
		available: func(m *Machine) bool { return m.prog != nil && m.pre != nil },
		build: func(m *Machine) ScanBackend {
			return &prefilterBackend{m: m, pf: m.pre, prog: m.prog}
		},
	},
	{
		name:      BackendAccelerated,
		available: func(m *Machine) bool { return m.prog != nil && m.acc != nil },
		build: func(m *Machine) ScanBackend {
			return &accelBackend{prog: m.prog, acc: m.acc}
		},
	},
}

// RegisteredBackends lists every backend name in the registry, registry
// order, regardless of per-machine availability — the vocabulary
// Options.Backend and NewScannerFor accept besides BackendAuto. Error
// messages and flag validation derive from this list so a new backend is
// never silently missing from them.
func RegisteredBackends() []string {
	names := make([]string, len(scanBackends))
	for i, spec := range scanBackends {
		names[i] = spec.name
	}
	return names
}

// Backends lists the backend names available on this machine, registry
// order (reference first). Every listed backend is byte-exact equivalent;
// VerifyScan and the lockstep tests iterate exactly this list.
func (m *Machine) Backends() []string {
	var names []string
	for _, spec := range scanBackends {
		if spec.available(m) {
			names = append(names, spec.name)
		}
	}
	return names
}

// DefaultBackend reports the backend NewScanner selects: the machine's
// configured backend, or the auto resolution — accelerated when the bake
// succeeded, baked if only the flat Program compiled, reference otherwise.
func (m *Machine) DefaultBackend() string {
	if m.backend != "" && m.backend != BackendAuto {
		return m.backend
	}
	if m.acc != nil {
		return BackendAccelerated
	}
	if m.prog != nil {
		return BackendBaked
	}
	return BackendReference
}

// NewScannerFor returns a scanner pinned to the named backend, resolving
// BackendAuto (and "") like DefaultBackend. It fails when the backend is
// unknown or unavailable on this machine (e.g. prefiltered on a machine
// whose configuration did not bake).
func (m *Machine) NewScannerFor(name string) (*Scanner, error) {
	if name == "" || name == BackendAuto {
		name = m.DefaultBackend()
	}
	for _, spec := range scanBackends {
		if spec.name != name {
			continue
		}
		if !spec.available(m) {
			return nil, fmt.Errorf("core: backend %q unavailable on this machine (available: %v)", name, m.Backends())
		}
		s := &Scanner{b: spec.build(m), gen: m.generation}
		s.Reset()
		return s, nil
	}
	return nil, fmt.Errorf("core: unknown scan backend %q", name)
}

// referenceBackend is the slice-walking interpreter over the builder's
// Machine structures — Machine.Next per byte. It is deliberately kept
// closest to the paper's hardware description and serves as the oracle
// shape every other backend is verified against.
type referenceBackend struct {
	m      *Machine
	state  int32
	h2, h1 int16
	pos    int
}

func (b *referenceBackend) Name() string { return BackendReference }

func (b *referenceBackend) Reset() {
	b.state = ac.Root
	b.h2, b.h1 = HistNone, HistNone
	b.pos = 0
}

func (b *referenceBackend) SkipAhead(n int) {
	if n <= 0 {
		return
	}
	b.state = ac.Root
	b.h2, b.h1 = HistNone, HistNone
	b.pos += n
}

func (b *referenceBackend) Step(c byte) int32 {
	b.state = b.m.Next(b.state, c, b.h2, b.h1)
	b.h2, b.h1 = b.h1, int16(c)
	b.pos++
	return b.state
}

func (b *referenceBackend) Registers() Registers {
	return Registers{State: b.state, H2: b.h2, H1: b.h1, Pos: b.pos}
}

// ScanAppend inlines the reference transition step so the oracle
// transition logic lives in exactly two places: Machine.Next and this
// loop. Any change to the stored-pointer or default-rule step applies to
// both and to every compiled backend.
func (b *referenceBackend) ScanAppend(data []byte, out []ac.Match) []ac.Match {
	m, t := b.m, b.m.Trie
	state, h2, h1, pos := b.state, b.h2, b.h1, b.pos
	maxDepth := m.Opts.MaxDepth
	for _, c := range data {
		if to := m.StoredAt(state, c); to != ac.None {
			state = to
		} else {
			state = m.Defaults.Resolve(c, h2, h1, maxDepth)
		}
		h2, h1 = h1, int16(c)
		pos++
		if t.HasOutput(state) {
			out = t.AppendOutputs(state, pos, out)
		}
	}
	b.state, b.h2, b.h1, b.pos = state, h2, h1, pos
	return out
}

// bakedBackend executes the flat compiled Program — dense rows for the hot
// near-root states, packed CSR stored pointers and the fused-history
// lookup table elsewhere. Registers are kept in the kernel's fused form
// and split only for snapshots.
type bakedBackend struct {
	prog  *Program
	state int32
	hist  uint32
	pos   int
}

func (b *bakedBackend) Name() string { return BackendBaked }

func (b *bakedBackend) Reset() {
	b.state = ac.Root
	b.hist = histUnknown
	b.pos = 0
}

func (b *bakedBackend) SkipAhead(n int) {
	if n <= 0 {
		return
	}
	b.state = ac.Root
	b.hist = histUnknown
	b.pos += n
}

func (b *bakedBackend) Step(c byte) int32 {
	b.state, b.hist = b.prog.step(b.state, b.hist, c)
	b.pos++
	return b.state
}

func (b *bakedBackend) Registers() Registers {
	h2, h1 := splitHist(b.hist)
	return Registers{State: b.state, H2: h2, H1: h1, Pos: b.pos}
}

func (b *bakedBackend) ScanAppend(data []byte, out []ac.Match) []ac.Match {
	b.state, b.hist, b.pos, out = b.prog.scanAppend(b.state, b.hist, b.pos, data, out)
	return out
}
