// Package core implements the paper's primary contribution: the default
// transition pointer (DTP) compression of the Aho-Corasick move-function
// DFA (§III.B).
//
// The observation driving the scheme is that in DPI rulesets most stored
// transition pointers target one of a few states close to the start state.
// Those popular targets are promoted to *default transition pointers* held
// in a 256-entry lookup table indexed by the current input character:
//
//   - depth 1: one default per character — the unique depth-1 state labeled
//     with that character, or the start state if none exists;
//   - depth 2: the 4 most commonly targeted depth-2 states per character,
//     each tagged with the 8-bit character of its preceding state;
//   - depth 3: the single most commonly targeted depth-3 state per
//     character, tagged with the 16 bits of its 2 preceding characters.
//
// An engine tracks the previous two input characters. On each input byte it
// first compares against the (few) transitions still stored at the current
// state; on a miss it takes the deepest default whose preceding-character
// comparison succeeds, falling through depth 3 → depth 2 → depth 1 → start
// state. Because a transition is only removed from a state when the default
// rule provably reproduces it, matching is exactly equivalent to the full
// DFA while storing >96% fewer pointers — and, unlike fail-pointer schemes,
// one input character is consumed every cycle regardless of input.
//
// Execution is organized behind the ScanBackend seam (see backend.go):
// every way of running the machine is a registered backend and all of them
// are byte-exact equivalent — same states, histories, positions and match
// sequences on every input. Three backends ship today. The "reference"
// backend walks the Machine itself — slice-of-slices Stored rows, D2/D3
// entry lists, Machine.Next — and is kept deliberately close to the
// paper's hardware description. The "baked" backend runs the Program (see
// baked.go), a pure re-layout into fixed arrays and a two-tier
// dense/compressed format that Build compiles by default. The
// "prefiltered" backend (see prefilter.go) is a two-stage pipeline: a tiny
// lossy automaton skims clean traffic and only suspect byte windows run
// through the exact baked kernel. The lossy stage admits false positives
// but provably never false negatives — VerifySuperset proves the contract
// structurally at bake time, in the spirit of VerifyTransitions — so even
// the approximate pipeline stays exactly equivalent. VerifyScan iterates
// every registered backend against the uncompressed-DFA oracle; the
// lockstep property tests and fuzzers enforce register-level equivalence
// continuously.
//
// Removal correctness. For a state s at depth ≥ 2 the previous two
// characters are determined by s's path, so the default rule is evaluated
// exactly. For depth ≤ 1 the unknown history positions cannot cause a
// misfire: a depth-3 default for character c only matches histories h2 h1
// for which the trie node [h2 h1 c] — and therefore [h2 h1] — exists, and
// if [h2 h1] existed the automaton could not currently be at a state of
// depth ≤ 1 (the current state is always the *longest* suffix of the input
// that is a trie node). The same argument applies one level down for
// depth-2 defaults at the start state. Machine.VerifyTransitions checks the
// resulting structural equivalence exhaustively; the matcher tests check it
// empirically against the oracle.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ac"
	"repro/internal/ruleset"
)

// Options configures compression.
type Options struct {
	// D2PerChar is the number of depth-2 defaults per character value.
	// The paper found 4 optimal for Snort-derived sets; 0 means 4.
	D2PerChar int
	// D3PerChar is the number of depth-3 defaults per character value.
	// The paper uses 1; 0 means 1. (Values >1 are supported for ablation
	// studies; the hardware lookup-table row format fits exactly 1.)
	D3PerChar int
	// MaxDepth limits which default depths are used: 1 = d1 only,
	// 2 = d1+d2, 3 = d1+d2+d3. 0 means 3. Used by the Table II progressive
	// rows and the ablation benches.
	MaxDepth int
	// DenseStates budgets the baked kernel's dense tier: how many states
	// are promoted to full 256-entry move rows (0 = DefaultDenseStates,
	// negative disables the tier). Runtime-only tuning; not serialized in
	// snapshots.
	DenseStates int
	// PairStates budgets the accelerated kernel's fused 2-byte tier: how
	// many dense-tier states get 16-bit-indexed row-pair tables (0 =
	// DefaultPairStates, negative disables the tier). Runtime-only tuning;
	// not serialized in snapshots.
	PairStates int
	// DisableBaked keeps the machine on the slice-walking reference scan
	// path instead of compiling the baked Program.
	//
	// Deprecated: DisableBaked is an alias for Backend: BackendReference,
	// kept for existing callers. An explicit Backend wins where the two
	// can agree: with Backend empty or BackendAuto the machine resolves to
	// the reference path; combining DisableBaked with a pinned kernel
	// backend is a Build error. Runtime-only, not serialized.
	DisableBaked bool
	// Backend selects the scan implementation NewScanner hands out:
	// BackendAuto (or "") picks the fastest always-exact default —
	// accelerated when the machine bakes, baked if only the flat Program
	// compiled, reference otherwise. BackendReference pins the
	// slice-walking interpreter (and skips compiling the kernels);
	// BackendBaked, BackendPrefiltered and BackendAccelerated pin those
	// kernels and make Build fail if the configuration cannot compile
	// them. Unknown names are a Build error listing RegisteredBackends.
	// Runtime-only, not serialized; NewScannerFor overrides it per
	// scanner.
	Backend string
}

func (o Options) withDefaults() Options {
	if o.D2PerChar == 0 {
		o.D2PerChar = 4
	}
	if o.D3PerChar == 0 {
		o.D3PerChar = 1
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 3
	}
	if o.Backend == "" || o.Backend == BackendAuto {
		// The deprecated DisableBaked alias only resolves an unpinned
		// Backend; an explicitly pinned backend wins (validate rejects the
		// conflicting combinations).
		if o.DisableBaked {
			o.Backend = BackendReference
		} else {
			o.Backend = BackendAuto
		}
	}
	return o
}

// Validate resolves defaults exactly as Build does and reports whether the
// options are buildable: range checks, backend-name resolution against the
// registry, and the DisableBaked/Backend precedence rules. It is the one
// home of that logic — dpi.Config.Validate delegates here, and Build runs
// the same pair, so a configuration that passes Validate cannot fail
// Build's option checks later.
func (o Options) Validate() error { return o.withDefaults().validate() }

func (o Options) validate() error {
	if o.D2PerChar < 0 || o.D3PerChar < 0 {
		return fmt.Errorf("core: negative default counts %+v", o)
	}
	if o.MaxDepth < 1 || o.MaxDepth > 3 {
		return fmt.Errorf("core: MaxDepth %d out of range [1,3]", o.MaxDepth)
	}
	switch o.Backend {
	case "", BackendAuto:
	default:
		known := false
		for _, name := range RegisteredBackends() {
			if o.Backend == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("core: unknown backend %q (want %s)",
				o.Backend, strings.Join(append([]string{BackendAuto}, RegisteredBackends()...), "|"))
		}
	}
	if o.DisableBaked && o.Backend != BackendReference {
		return fmt.Errorf("core: DisableBaked (deprecated alias for Backend %q) conflicts with pinned Backend %q",
			BackendReference, o.Backend)
	}
	return nil
}

// D2Entry is a depth-2 default: taken when the previous input character
// equals Prev and no stored transition matched.
type D2Entry struct {
	Prev  byte
	State int32
}

// D3Entry is a depth-3 default: taken when the previous two input
// characters equal (Prev2, Prev1).
type D3Entry struct {
	Prev2, Prev1 byte
	State        int32
}

// Defaults is the content of the 256-row lookup table.
type Defaults struct {
	// D1[c] is the depth-1 state labeled c, or ac.None. In hardware this is
	// a single bit per row because the target address is fixed.
	D1 [256]int32
	// D2[c] holds up to D2PerChar depth-2 defaults whose final character is
	// c, most popular first.
	D2 [256][]D2Entry
	// D3[c] holds up to D3PerChar depth-3 defaults whose final character is
	// c, most popular first.
	D3 [256][]D3Entry
}

// HistNone marks an invalid history byte (start of packet).
const HistNone int16 = -1

// Resolve evaluates the default rule for input character c given the
// previous two characters (HistNone when unknown): the deepest matching
// default wins, falling back to the start state. maxDepth limits the
// depths consulted (3 for the full scheme).
func (d *Defaults) Resolve(c byte, h2, h1 int16, maxDepth int) int32 {
	if maxDepth >= 3 && h2 != HistNone && h1 != HistNone {
		for _, e := range d.D3[c] {
			if int16(e.Prev2) == h2 && int16(e.Prev1) == h1 {
				return e.State
			}
		}
	}
	if maxDepth >= 2 && h1 != HistNone {
		for _, e := range d.D2[c] {
			if int16(e.Prev) == h1 {
				return e.State
			}
		}
	}
	if s := d.D1[c]; s != ac.None {
		return s
	}
	return ac.Root
}

// Transition is a pointer still stored at a state after compression.
type Transition struct {
	Char byte
	To   int32
}

// BuildStats reports the Table II quantities for one machine.
type BuildStats struct {
	States           int
	OriginalPointers int64   // non-root pointers of the uncompressed DFA
	OriginalAvg      float64 // "Avg.Pointers" under Original Aho-Corasick

	D1Count int // depth-1 defaults in the lookup table ("d1" row)
	D2Count int // depth-2 defaults added
	D3Count int // depth-3 defaults added

	StoredAfterD1   int64   // pointers left with d1 defaults only
	StoredAfterD12  int64   // ... with d1+d2
	StoredAfterD123 int64   // ... with d1+d2+d3
	AvgAfterD1      float64 // "Avg.Pointers" after the "d1" row
	AvgAfterD12     float64 // after "d1+d2"
	AvgAfterD123    float64 // after "d1+d2+d3"

	StoredPointers    int64 // pointers stored under the configured MaxDepth
	AvgStored         float64
	MaxStoredPerState int
	// Reduction is the fractional cut vs the original DFA under the
	// configured MaxDepth (Table II "Reduction" row).
	Reduction float64
}

// Machine is a DTP-compressed Aho-Corasick automaton.
type Machine struct {
	Trie     *ac.Trie
	Opts     Options
	Defaults Defaults
	// Stored[s] holds the transitions kept at state s, sorted by Char.
	Stored [][]Transition
	Stats  BuildStats

	// popularity[s] counts how often state s is a non-root transition
	// target across the full DFA — the tally the default-selection pass
	// ranks by. Transient: it lets Build's Compile promote the hottest
	// states to the dense tier without re-walking every move row, and is
	// dropped once Build finishes (8 bytes per state of dead weight on a
	// long-lived machine otherwise). When nil — snapshot Load, or a
	// manual Compile later — pickDense re-tallies from the move rows,
	// deterministically reproducing the same promotion.
	popularity []int64
	// prog is the baked scan kernel, nil when the configured backend is
	// reference, when the machine was hand-assembled, or when the
	// configuration does not fit the fixed row format. Scanners fall back
	// to the slice-walking reference path when nil.
	prog *Program
	// pre is the lossy prefilter stage, compiled (and superset-verified)
	// alongside prog; nil whenever prog is nil or the collapsed machine
	// does not fit the packed entry format. The prefiltered backend needs
	// both.
	pre *Prefilter
	// acc is the accelerated runtime layered over prog — escape set for
	// root-resident bulk skip plus the fused 2-byte pair tables; nil
	// whenever prog is nil.
	acc *Accel
	// backend is the resolved Options.Backend, consulted by NewScanner;
	// empty (auto) on hand-assembled machines.
	backend string
	// generation is the process-unique compile generation stamped by Build
	// (shared across a BuildGrouped); zero on hand-assembled machines. See
	// generation.go.
	generation uint64
}

// Build compresses the move-function DFA for set under opts.
func Build(set *ruleset.Set, opts Options) (*Machine, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	trie, err := ac.New(set)
	if err != nil {
		return nil, err
	}
	m := &Machine{Trie: trie, Opts: opts, backend: opts.Backend, generation: nextGeneration()}
	m.selectDefaults()
	m.compress()
	if err := m.compileBackends(); err != nil {
		return nil, err
	}
	m.popularity = nil
	return m, nil
}

// compileBackends bakes the kernels the configured backend needs: the flat
// Program and, on top of it, the lossy prefilter stage (which must pass
// VerifySuperset to be kept — a prefilter that could miss is discarded,
// never silently used). Under BackendAuto compilation is best-effort and
// unbakeable configurations fall back to the reference path; an explicitly
// pinned kernel backend turns the same condition into a Build error.
func (m *Machine) compileBackends() error {
	if m.backend == BackendReference {
		return nil
	}
	m.prog = Compile(m)
	if m.prog != nil {
		m.acc = CompileAccel(m)
		m.pre = CompilePrefilter(m)
		if m.pre != nil {
			if err := m.VerifySuperset(); err != nil {
				m.pre = nil
				if m.backend == BackendPrefiltered {
					return err
				}
			}
		}
	}
	switch m.backend {
	case BackendBaked:
		if m.prog == nil {
			return fmt.Errorf("core: Backend %q pinned but the configuration does not fit the baked row format", m.backend)
		}
	case BackendPrefiltered:
		if m.prog == nil || m.pre == nil {
			return fmt.Errorf("core: Backend %q pinned but the configuration does not fit the kernel formats", m.backend)
		}
	case BackendAccelerated:
		if m.prog == nil || m.acc == nil {
			return fmt.Errorf("core: Backend %q pinned but the configuration does not fit the baked row format", m.backend)
		}
	}
	return nil
}

// Program returns the machine's baked scan kernel, or nil when the machine
// runs on the slice-walking reference path.
func (m *Machine) Program() *Program { return m.prog }

// Prefilter returns the machine's lossy first-stage automaton, or nil when
// the prefiltered backend is unavailable.
func (m *Machine) Prefilter() *Prefilter { return m.pre }

// Accel returns the machine's accelerated runtime, or nil when the
// accelerated backend is unavailable (reference-pinned or unbaked
// configurations).
func (m *Machine) Accel() *Accel { return m.acc }

// selectDefaults runs the popularity pass: it counts, over every (state,
// character) pair of the full DFA, how often each state is the transition
// target, then promotes the most popular depth-1/2/3 states per
// lookup-table row. The full (all-depth) tally is kept on m.popularity
// until Build finishes so Compile can rank dense-tier promotion by the
// same numbers.
func (m *Machine) selectDefaults() {
	t := m.Trie
	n := t.NumStates()
	popularity := make([]int64, n)
	var original int64
	t.ForEachMoveRow(func(s int32, row []int32) {
		for c := 0; c < 256; c++ {
			to := row[c]
			if to == ac.Root {
				continue
			}
			original++
			// Tally every non-root target: depths 1-3 rank the default
			// candidates below, and the full tally ranks dense-tier
			// promotion in Compile.
			popularity[to]++
		}
	})
	m.popularity = popularity
	m.Stats.States = n
	m.Stats.OriginalPointers = original
	m.Stats.OriginalAvg = float64(original) / float64(n)

	for c := range m.Defaults.D1 {
		m.Defaults.D1[c] = ac.None
	}
	// Candidates per (depth, final character) row.
	d2cand := make(map[byte][]int32)
	d3cand := make(map[byte][]int32)
	for i := 1; i < n; i++ {
		nd := t.Nodes[i]
		switch nd.Depth {
		case 1:
			m.Defaults.D1[nd.Char] = int32(i)
			m.Stats.D1Count++
		case 2:
			d2cand[nd.Char] = append(d2cand[nd.Char], int32(i))
		case 3:
			d3cand[nd.Char] = append(d3cand[nd.Char], int32(i))
		}
	}
	pickTop := func(cands []int32, k int) []int32 {
		sort.Slice(cands, func(a, b int) bool {
			pa, pb := popularity[cands[a]], popularity[cands[b]]
			if pa != pb {
				return pa > pb
			}
			return cands[a] < cands[b]
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		return cands
	}
	for c, cands := range d2cand {
		for _, s := range pickTop(cands, m.Opts.D2PerChar) {
			prev := t.Nodes[t.Nodes[s].Parent].Char
			m.Defaults.D2[c] = append(m.Defaults.D2[c], D2Entry{Prev: prev, State: s})
			m.Stats.D2Count++
		}
	}
	for c, cands := range d3cand {
		for _, s := range pickTop(cands, m.Opts.D3PerChar) {
			p1 := t.Nodes[s].Parent
			p2 := t.Nodes[p1].Parent
			m.Defaults.D3[c] = append(m.Defaults.D3[c], D3Entry{
				Prev2: t.Nodes[p2].Char,
				Prev1: t.Nodes[p1].Char,
				State: s,
			})
			m.Stats.D3Count++
		}
	}
}

// staticHistory returns the previous-two-character history known statically
// at state s: fully determined for depth ≥ 2, partially for depth 1, empty
// at the start state. The unknown positions are HistNone, which the default
// rule treats as never-matching — sound by the feasibility argument in the
// package comment.
func (m *Machine) staticHistory(s int32) (h2, h1 int16) {
	nd := m.Trie.Nodes[s]
	switch {
	case nd.Depth >= 2:
		return int16(m.Trie.Nodes[nd.Parent].Char), int16(nd.Char)
	case nd.Depth == 1:
		return HistNone, int16(nd.Char)
	default:
		return HistNone, HistNone
	}
}

// compress walks every DFA row and keeps only the transitions the default
// rule cannot reproduce, simultaneously tallying the progressive d1 /
// d1+d2 / d1+d2+d3 pointer counts for Table II.
func (m *Machine) compress() {
	t := m.Trie
	n := t.NumStates()
	m.Stored = make([][]Transition, n)
	maxStored := 0
	t.ForEachMoveRow(func(s int32, row []int32) {
		h2, h1 := m.staticHistory(s)
		for c := 0; c < 256; c++ {
			to := row[c]
			if to == ac.Root {
				continue
			}
			ch := byte(c)
			if m.Defaults.Resolve(ch, h2, h1, 1) != to {
				m.Stats.StoredAfterD1++
			}
			if m.Defaults.Resolve(ch, h2, h1, 2) != to {
				m.Stats.StoredAfterD12++
			}
			if m.Defaults.Resolve(ch, h2, h1, 3) != to {
				m.Stats.StoredAfterD123++
			}
			if m.Defaults.Resolve(ch, h2, h1, m.Opts.MaxDepth) != to {
				m.Stored[s] = append(m.Stored[s], Transition{Char: ch, To: to})
			}
		}
		if len(m.Stored[s]) > maxStored {
			maxStored = len(m.Stored[s])
		}
	})
	fn := float64(n)
	st := &m.Stats
	st.AvgAfterD1 = float64(st.StoredAfterD1) / fn
	st.AvgAfterD12 = float64(st.StoredAfterD12) / fn
	st.AvgAfterD123 = float64(st.StoredAfterD123) / fn
	switch m.Opts.MaxDepth {
	case 1:
		st.StoredPointers = st.StoredAfterD1
	case 2:
		st.StoredPointers = st.StoredAfterD12
	default:
		st.StoredPointers = st.StoredAfterD123
	}
	st.AvgStored = float64(st.StoredPointers) / fn
	st.MaxStoredPerState = maxStored
	if st.OriginalPointers > 0 {
		st.Reduction = 1 - float64(st.StoredPointers)/float64(st.OriginalPointers)
	}
}

// StoredAt returns the stored transition target of (s, c), or ac.None.
func (m *Machine) StoredAt(s int32, c byte) int32 {
	list := m.Stored[s]
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].Char < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo].Char == c {
		return list[lo].To
	}
	return ac.None
}

// Next performs one hardware-equivalent transition from state s on input c
// with runtime history (h2, h1): stored pointers first, then the default
// rule.
func (m *Machine) Next(s int32, c byte, h2, h1 int16) int32 {
	if to := m.StoredAt(s, c); to != ac.None {
		return to
	}
	return m.Defaults.Resolve(c, h2, h1, m.Opts.MaxDepth)
}
