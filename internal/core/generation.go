package core

import "sync/atomic"

// Ruleset generations. Every compiled automaton — each Build, and each
// BuildGrouped as a whole — is stamped with a process-unique, monotonically
// increasing generation number. The generation is an identity, not a
// version string: two compiles of byte-identical rules get distinct
// generations, because what the control plane above (hot ruleset reload)
// pins flows to is *this compiled artifact*, not "rules that look the
// same". The tag is threaded through scanner checkout so any holder of a
// Scanner can prove which automaton generation produced its matches.
var generationCounter atomic.Uint64

// nextGeneration issues the next process-unique generation number.
// Generation 0 is never issued; it marks hand-assembled machines that
// bypassed Build.
func nextGeneration() uint64 { return generationCounter.Add(1) }

// Generation reports the machine's compile generation: process-unique,
// monotonically increasing across Builds. Machines built together by
// BuildGrouped share one generation. Zero for hand-assembled machines.
func (m *Machine) Generation() uint64 { return m.generation }

// Generation reports the scanner's automaton generation — the generation
// of the machine it was checked out from. A flow pinned to generation G
// can assert every scanner it touches carries G.
func (s *Scanner) Generation() uint64 { return s.gen }
