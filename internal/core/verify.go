package core

import (
	"fmt"

	"repro/internal/ac"
)

// VerifyTransitions proves structural equivalence between the compressed
// machine and the full move-function DFA: for every state s and every
// character c, the hardware transition (stored pointer if present,
// otherwise the default rule under s's statically known history) must equal
// the DFA's move target. Combined with the depth ≤ 1 feasibility argument
// (see the package comment) this implies the two machines accept identical
// transition sequences on all inputs.
//
// The walk covers |states| × 256 transitions; for the full 6,275-string
// machine that is ≈28M checks, a few seconds of CPU.
func (m *Machine) VerifyTransitions() error {
	var firstErr error
	m.Trie.ForEachMoveRow(func(s int32, row []int32) {
		if firstErr != nil {
			return
		}
		h2, h1 := m.staticHistory(s)
		for c := 0; c < 256; c++ {
			got := m.Next(s, byte(c), h2, h1)
			if got != row[c] {
				firstErr = fmt.Errorf(
					"core: state %d (depth %d) char %#02x: compressed machine gives %d, DFA gives %d",
					s, m.Trie.Nodes[s].Depth, c, got, row[c])
				return
			}
		}
	})
	return firstErr
}

// VerifyScan cross-checks matcher output against the uncompressed DFA on
// the given payloads (each treated as one packet). Every backend the
// machine supports (Backends: reference, baked, prefiltered, …) is run
// against the oracle, so a layout bug in one kernel cannot hide behind
// another implementation's semantics. A backend added to the registry is
// pulled into this proof automatically.
func (m *Machine) VerifyScan(payloads [][]byte) error {
	backends := m.Backends()
	for i, p := range payloads {
		want := m.Trie.FindAll(p)
		for _, name := range backends {
			sc, err := m.NewScannerFor(name)
			if err != nil {
				return fmt.Errorf("core: payload %d: backend %s: %w", i, name, err)
			}
			got := sc.ScanAppend(p, nil)
			if !ac.MatchesEqual(got, want) {
				return fmt.Errorf("core: payload %d (%d bytes): backend %s found %d matches, DFA %d",
					i, len(p), name, len(got), len(want))
			}
		}
	}
	return nil
}
