package core

import (
	"fmt"

	"repro/internal/ac"
)

// VerifyTransitions proves structural equivalence between the compressed
// machine and the full move-function DFA: for every state s and every
// character c, the hardware transition (stored pointer if present,
// otherwise the default rule under s's statically known history) must equal
// the DFA's move target. Combined with the depth ≤ 1 feasibility argument
// (see the package comment) this implies the two machines accept identical
// transition sequences on all inputs.
//
// The walk covers |states| × 256 transitions; for the full 6,275-string
// machine that is ≈28M checks, a few seconds of CPU.
func (m *Machine) VerifyTransitions() error {
	var firstErr error
	m.Trie.ForEachMoveRow(func(s int32, row []int32) {
		if firstErr != nil {
			return
		}
		h2, h1 := m.staticHistory(s)
		for c := 0; c < 256; c++ {
			got := m.Next(s, byte(c), h2, h1)
			if got != row[c] {
				firstErr = fmt.Errorf(
					"core: state %d (depth %d) char %#02x: compressed machine gives %d, DFA gives %d",
					s, m.Trie.Nodes[s].Depth, c, got, row[c])
				return
			}
		}
	})
	return firstErr
}

// VerifyScan cross-checks matcher output against the uncompressed DFA on
// the given payloads (each treated as one packet). On a baked machine both
// the flat kernel (the default scan path) and the slice-walking reference
// path are checked, so a layout bug in Compile cannot hide behind the
// reference semantics.
func (m *Machine) VerifyScan(payloads [][]byte) error {
	for i, p := range payloads {
		want := m.Trie.FindAll(p)
		got := m.FindAll(p)
		if !ac.MatchesEqual(got, want) {
			return fmt.Errorf("core: payload %d (%d bytes): compressed machine found %d matches, DFA %d",
				i, len(p), len(got), len(want))
		}
		if m.prog != nil {
			ref := m.newReferenceScanner().ScanAppend(p, nil)
			if !ac.MatchesEqual(ref, want) {
				return fmt.Errorf("core: payload %d (%d bytes): reference path found %d matches, DFA %d",
					i, len(p), len(ref), len(want))
			}
		}
	}
	return nil
}
