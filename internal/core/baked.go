package core

// The baked scan kernel: Compile flattens a DTP Machine into a Program, a
// cache-line-friendly runtime representation that the Scanner hot loop
// executes instead of walking the builder's slice-of-slices structures.
// The Machine remains the reference semantics (Machine.Next is the oracle
// the Program is verified against); the Program is a pure re-layout and
// must stay byte-exact equivalent — same state, same history, same match
// order — on every input.
//
// Layout, mirroring the hardware's fixed-width single-access RAMs:
//
//   - The 256-row lookup table becomes three fixed arrays. d1 is a plain
//     [256]int32 with the start-state fallback pre-resolved into the row,
//     so the depth-1 default is one indexed load with no comparison at
//     all. d2 packs each row's ≤4 depth-2 defaults as uint64 words,
//     preceding-character key in the high half and target state in the low
//     half, so the hardware's comparator block is one load plus one
//     32-bit compare per slot. d3 is one packed word per character keyed
//     on both history characters at once.
//
//   - The per-byte history pair (h2, h1) fuses into a single register of
//     two 9-bit lanes: hist = h2<<9 | h1. A lane holds 0x000-0x0FF for a
//     real byte and histUnknownLane (0x100) when that position precedes
//     the start of the visible stream, so "unknown never matches" costs
//     nothing — the sentinel simply never equals a key built from real
//     bytes. This removes the per-byte int16 widening and the two-field
//     compare of the builder path.
//
//   - Stored transitions live in one CSR arena: rows[s] is a packed row
//     descriptor and stored[] holds char/state entries as single uint64
//     words. Because MaxStoredPerState is small on Snort-like sets (the
//     whole point of the paper's compression), a row descriptor carries
//     the entry count inline — the common ≤4-entry row costs one
//     descriptor load plus a short linear scan over adjacent words,
//     replacing the binary search over a []Transition slice header.
//
//   - The output test becomes a bitset probe (outBits), replacing the
//     HasOutput node loads on the no-match fast path.
//
//   - Two-tier fast path: the start state, every depth-1 state, and the
//     most popular remaining states (by the same popularity tally that
//     selects default transition pointers) are promoted to full dense
//     256-entry move rows. This is sound because a DTP machine's move row
//     is statically determined for every state — exactly the property
//     VerifyTransitions proves — so a dense row is the precomputed result
//     of stored-pointer-then-default resolution. Most traffic sits in
//     these near-root states, so the common byte is a single indexed
//     load from a dense row.

import (
	"sort"

	"repro/internal/ac"
)

const (
	histLaneBits    = 9
	histLaneMask    = 1<<histLaneBits - 1     // 0x1FF
	histMask        = 1<<(2*histLaneBits) - 1 // 0x3FFFF
	histUnknownLane = 0x100                   // can never equal a real byte

	// histUnknown is the fused register with both lanes unknown — the value
	// fuseHist(HistNone, HistNone) produces at start-of-packet.
	histUnknown = uint32(histUnknownLane)<<histLaneBits | histUnknownLane

	// Empty d2/d3 slots carry keys no runtime history can produce: a lane
	// is at most histUnknownLane, so 0x1FF (and the all-lanes-0x1FF d3 key)
	// never compares equal.
	emptyD2Key = uint64(histLaneMask) << 32
	emptyD3Key = uint64(histMask) << 32

	// Row descriptor packing: bit 31 selects the dense tier (low 31 bits =
	// dense row index); otherwise bits 24-30 hold the stored-entry count
	// and bits 0-23 the offset into the CSR arena.
	rowDense    = uint32(1) << 31
	rowOffMask  = 1<<24 - 1
	rowCountMax = 127

	// DefaultDenseStates is the dense-tier budget when Options.DenseStates
	// is 0: enough rows for the start state, all depth-1 states and ~128
	// popular deeper states (≈400 KB of rows) without crowding the cache
	// that the CSR arena and the payload itself also want.
	DefaultDenseStates = 384
)

// Program is the compiled, flat form of a Machine. It is immutable after
// Compile and safe for concurrent use by any number of Scanners.
type Program struct {
	trie *ac.Trie

	d1 [256]int32     // depth-1 default, start state pre-resolved in
	d2 [256][4]uint64 // prevKey<<32 | state, empty slots never match
	d3 [256]uint64    // (p2<<9|p1)<<32 | state, empty key never matches

	rows    []uint32 // per-state descriptor: dense index or CSR count+offset
	stored  []uint64 // CSR arena: char<<32 | state, rows sorted by char
	dense   []int32  // denseStates × 256 full move rows
	outBits []uint64 // bit s set iff any pattern ends at state s
}

// fuseHist packs the scanner's (h2, h1) register pair into the kernel's
// fused history register.
func fuseHist(h2, h1 int16) uint32 {
	l2, l1 := uint32(histUnknownLane), uint32(histUnknownLane)
	if h2 != HistNone {
		l2 = uint32(h2) & 0xFF
	}
	if h1 != HistNone {
		l1 = uint32(h1) & 0xFF
	}
	return l2<<histLaneBits | l1
}

// splitHist is the inverse of fuseHist, run once per ScanAppend call to
// restore the scanner-visible registers.
func splitHist(hist uint32) (h2, h1 int16) {
	h2, h1 = HistNone, HistNone
	if l := hist >> histLaneBits & histLaneMask; l != histUnknownLane {
		h2 = int16(l)
	}
	if l := hist & histLaneMask; l != histUnknownLane {
		h1 = int16(l)
	}
	return h2, h1
}

// Compile bakes m into a Program. It returns nil when the machine does not
// fit the fixed row format — more than 4 depth-2 or 1 depth-3 defaults per
// character (ablation configurations), more stored pointers per state or in
// total than the descriptor packs — in which case scanning falls back to
// the slice-walking reference path. Machines from Build and Load are baked
// automatically unless Options.DisableBaked is set.
func Compile(m *Machine) *Program {
	t := m.Trie
	n := t.NumStates()
	maxDepth := m.Opts.MaxDepth
	if maxDepth >= 2 {
		for c := 0; c < 256; c++ {
			if len(m.Defaults.D2[c]) > 4 {
				return nil
			}
		}
	}
	if maxDepth >= 3 {
		for c := 0; c < 256; c++ {
			if len(m.Defaults.D3[c]) > 1 {
				return nil
			}
		}
	}
	for s := 0; s < n; s++ {
		if len(m.Stored[s]) > rowCountMax {
			return nil
		}
	}

	p := &Program{trie: t}

	// Lookup table rows. Depths beyond Opts.MaxDepth stay empty so the
	// kernel needs no runtime depth limit: a disabled tier simply never
	// matches, exactly like Defaults.Resolve skipping it.
	for c := 0; c < 256; c++ {
		if s := m.Defaults.D1[c]; s != ac.None {
			p.d1[c] = s
		} else {
			p.d1[c] = ac.Root
		}
		for j := range p.d2[c] {
			p.d2[c][j] = emptyD2Key
		}
		if maxDepth >= 2 {
			for j, e := range m.Defaults.D2[c] {
				p.d2[c][j] = uint64(e.Prev)<<32 | uint64(uint32(e.State))
			}
		}
		p.d3[c] = emptyD3Key
		if maxDepth >= 3 && len(m.Defaults.D3[c]) == 1 {
			e := m.Defaults.D3[c][0]
			key := uint64(e.Prev2)<<histLaneBits | uint64(e.Prev1)
			p.d3[c] = key<<32 | uint64(uint32(e.State))
		}
	}

	// Output bitset.
	p.outBits = make([]uint64, (n+63)/64)
	for s := int32(0); s < int32(n); s++ {
		if t.HasOutput(s) {
			p.outBits[uint32(s)>>6] |= 1 << (uint32(s) & 63)
		}
	}

	// Dense-tier promotion: start state and depth-1 states first, then the
	// most popular remaining states until the budget is spent.
	promoted := m.pickDense()

	// Row descriptors: dense rows for promoted states, CSR stored-pointer
	// rows (sorted by char, as in Machine.Stored) for the rest.
	p.rows = make([]uint32, n)
	denseCount := 0
	csrEntries := 0
	for s := 0; s < n; s++ {
		if promoted[s] {
			denseCount++
		} else {
			csrEntries += len(m.Stored[s])
		}
	}
	if csrEntries > rowOffMask {
		return nil
	}
	p.dense = make([]int32, denseCount*256)
	p.stored = make([]uint64, 0, csrEntries)
	di := 0
	for s := 0; s < n; s++ {
		if promoted[s] {
			p.rows[s] = rowDense | uint32(di)
			row := p.dense[di*256 : di*256+256]
			for c := 0; c < 256; c++ {
				row[c] = t.Move(int32(s), byte(c))
			}
			di++
			continue
		}
		list := m.Stored[s]
		p.rows[s] = uint32(len(list))<<24 | uint32(len(p.stored))
		for _, tr := range list {
			p.stored = append(p.stored, uint64(tr.Char)<<32|uint64(uint32(tr.To)))
		}
	}
	return p
}

// pickDense selects the states promoted to dense 256-entry move rows: the
// start state, every depth-1 state, then the most popular remaining states
// (ties to the lower state number, for determinism) until the budget —
// Options.DenseStates, defaulting to DefaultDenseStates, negative to
// disable the tier — is exhausted. Machines small enough to fit entirely
// become a pure flat DFA.
func (m *Machine) pickDense() []bool {
	n := m.Trie.NumStates()
	promoted := make([]bool, n)
	budget := m.Opts.DenseStates
	if budget == 0 {
		budget = DefaultDenseStates
	}
	if budget < 0 {
		return promoted
	}
	if budget >= n {
		for s := range promoted {
			promoted[s] = true
		}
		return promoted
	}
	for _, s := range m.denseOrder()[:budget] {
		promoted[s] = true
	}
	return promoted
}

// denseOrder ranks every state for fast-tier promotion: the start state,
// then depth-1 states, then everything else, popularity-descending within
// a tier with ties to the lower state number — fully deterministic, so a
// snapshot Load reproduces the exact promotion Build made. pickDense takes
// the dense-tier budget off the front; pickPair (accel.go) ranks its
// 2-byte pair tables by the same order so the fast tiers nest.
func (m *Machine) denseOrder() []int32 {
	t := m.Trie
	n := t.NumStates()
	pop := m.popularity
	if pop == nil {
		// Load-ed machines skip the builder passes; re-tally here.
		pop = make([]int64, n)
		t.ForEachMoveRow(func(s int32, row []int32) {
			for c := 0; c < 256; c++ {
				if to := row[c]; to != ac.Root {
					pop[to]++
				}
			}
		})
	}
	order := make([]int32, n)
	for s := range order {
		order[s] = int32(s)
	}
	tier := func(s int32) int {
		switch {
		case s == ac.Root:
			return 0
		case t.Nodes[s].Depth == 1:
			return 1
		default:
			return 2
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if ta, tb := tier(a), tier(b); ta != tb {
			return ta < tb
		}
		if pop[a] != pop[b] {
			return pop[a] > pop[b]
		}
		return a < b
	})
	return order
}

// scanAppend is the baked hot loop: one transition per input byte, matches
// appended to out. It must stay byte-exact equivalent to Machine.Next plus
// the history/position bookkeeping of Scanner.Step; the property tests and
// FuzzBakedEquivalence enforce this against both the reference path and
// the uncompressed-DFA oracle.
func (p *Program) scanAppend(state int32, hist uint32, pos int, data []byte, out []ac.Match) (int32, uint32, int, []ac.Match) {
	t := p.trie
	// Locals let the compiler keep the arena headers in registers across
	// the loop instead of reloading them through p on every byte.
	rows, dense, outBits := p.rows, p.dense, p.outBits
	for _, c := range data {
		ref := rows[state]
		if ref >= rowDense {
			state = dense[int(ref-rowDense)<<8|int(c)]
		} else {
			if cnt := ref >> 24; cnt != 0 {
				base := ref & rowOffMask
				key := uint32(c)
				for i := uint32(0); i < cnt; i++ {
					if e := p.stored[base+i]; uint32(e>>32) == key {
						state = int32(uint32(e))
						goto stepped
					}
				}
			}
			if e := p.d3[c]; uint32(e>>32) == hist {
				state = int32(uint32(e))
			} else {
				h1 := hist & histLaneMask
				d2 := &p.d2[c]
				switch {
				case uint32(d2[0]>>32) == h1:
					state = int32(uint32(d2[0]))
				case uint32(d2[1]>>32) == h1:
					state = int32(uint32(d2[1]))
				case uint32(d2[2]>>32) == h1:
					state = int32(uint32(d2[2]))
				case uint32(d2[3]>>32) == h1:
					state = int32(uint32(d2[3]))
				default:
					state = p.d1[c]
				}
			}
		}
	stepped:
		hist = (hist<<histLaneBits | uint32(c)) & histMask
		pos++
		if outBits[uint32(state)>>6]&(1<<(uint32(state)&63)) != 0 {
			out = t.AppendOutputs(state, pos, out)
		}
	}
	return state, hist, pos, out
}

// step executes one baked transition — the single-byte form of the
// scanAppend loop, used by the baked backend's Step and by the prefilter's
// exact re-entry bookkeeping. It takes the transition and shifts the fused
// history but does not probe outputs; like Scanner.Step it is the pure
// register-machine view. It must stay byte-exact equivalent to
// Machine.Next; the lockstep property tests drive it against the reference
// path after every operation.
func (p *Program) step(state int32, hist uint32, c byte) (int32, uint32) {
	ref := p.rows[state]
	if ref >= rowDense {
		state = p.dense[int(ref-rowDense)<<8|int(c)]
	} else {
		if cnt := ref >> 24; cnt != 0 {
			base := ref & rowOffMask
			key := uint32(c)
			for i := uint32(0); i < cnt; i++ {
				if e := p.stored[base+i]; uint32(e>>32) == key {
					state = int32(uint32(e))
					goto stepped
				}
			}
		}
		if e := p.d3[c]; uint32(e>>32) == hist {
			state = int32(uint32(e))
		} else {
			h1 := hist & histLaneMask
			d2 := &p.d2[c]
			switch {
			case uint32(d2[0]>>32) == h1:
				state = int32(uint32(d2[0]))
			case uint32(d2[1]>>32) == h1:
				state = int32(uint32(d2[1]))
			case uint32(d2[2]>>32) == h1:
				state = int32(uint32(d2[2]))
			case uint32(d2[3]>>32) == h1:
				state = int32(uint32(d2[3]))
			default:
				state = p.d1[c]
			}
		}
	}
stepped:
	return state, (hist<<histLaneBits | uint32(c)) & histMask
}

// scanAppendStopRoot is scanAppend with an early exit: it stops as soon as
// a consumed byte lands the machine back on the start state, returning the
// registers at that point (the remaining bytes stay unconsumed — the
// caller reads the advance off the returned position). The prefiltered
// backend uses it to run the exact kernel through a suspect window and
// hand the stream back to the lossy skimmer at the first start-state
// boundary, where skimming is provably sound. The per-byte body must stay
// identical to scanAppend's; the equivalence property tests and fuzzers
// drive both against the oracle.
func (p *Program) scanAppendStopRoot(state int32, hist uint32, pos int, data []byte, out []ac.Match) (int32, uint32, int, []ac.Match) {
	t := p.trie
	rows, dense, outBits := p.rows, p.dense, p.outBits
	for _, c := range data {
		ref := rows[state]
		if ref >= rowDense {
			state = dense[int(ref-rowDense)<<8|int(c)]
		} else {
			if cnt := ref >> 24; cnt != 0 {
				base := ref & rowOffMask
				key := uint32(c)
				for i := uint32(0); i < cnt; i++ {
					if e := p.stored[base+i]; uint32(e>>32) == key {
						state = int32(uint32(e))
						goto stepped
					}
				}
			}
			if e := p.d3[c]; uint32(e>>32) == hist {
				state = int32(uint32(e))
			} else {
				h1 := hist & histLaneMask
				d2 := &p.d2[c]
				switch {
				case uint32(d2[0]>>32) == h1:
					state = int32(uint32(d2[0]))
				case uint32(d2[1]>>32) == h1:
					state = int32(uint32(d2[1]))
				case uint32(d2[2]>>32) == h1:
					state = int32(uint32(d2[2]))
				case uint32(d2[3]>>32) == h1:
					state = int32(uint32(d2[3]))
				default:
					state = p.d1[c]
				}
			}
		}
	stepped:
		hist = (hist<<histLaneBits | uint32(c)) & histMask
		pos++
		if outBits[uint32(state)>>6]&(1<<(uint32(state)&63)) != 0 {
			out = t.AppendOutputs(state, pos, out)
		}
		if state == ac.Root {
			break
		}
	}
	return state, hist, pos, out
}

// ProgramStats reports the memory layout of one compiled program, the
// software analogue of the hwsim block-memory fill statistics.
type ProgramStats struct {
	States        int // automaton states
	DenseStates   int // states promoted to full 256-entry rows
	StoredEntries int // CSR stored-pointer entries across compressed states
	DenseBytes    int // dense tier: DenseStates × 256 × 4
	StoredBytes   int // CSR arena + row descriptors
	LookupBytes   int // d1/d2/d3 fixed lookup rows
	OutputBytes   int // output bitset
	TotalBytes    int
}

// Stats summarizes the program's memory layout.
func (p *Program) Stats() ProgramStats {
	st := ProgramStats{
		States:        len(p.rows),
		DenseStates:   len(p.dense) / 256,
		StoredEntries: len(p.stored),
		DenseBytes:    len(p.dense) * 4,
		StoredBytes:   len(p.stored)*8 + len(p.rows)*4,
		LookupBytes:   256 * (4 + 4*8 + 8),
		OutputBytes:   len(p.outBits) * 8,
	}
	st.TotalBytes = st.DenseBytes + st.StoredBytes + st.LookupBytes + st.OutputBytes
	return st
}
