package core

// The accelerated scan kernel: a thin runtime layer over the baked Program
// that stops paying one dependent load per input byte wherever the machine
// provably does not need it. Two fast paths, both byte-exact:
//
//   - Root-resident bulk skip. At a state of depth ≤ 1 with true stream
//     history the d2/d3 defaults cannot fire (the longest-suffix argument
//     in the core package comment), so at the start state the next state is
//     a function of the input byte alone: Move(Root, c). Compile time
//     computes the escape set — the bytes whose depth-1 trie node exists,
//     the only bytes that can leave the start state. While the scanner sits
//     at the start state and the escape set is small, the kernel probes
//     forward with bytes.IndexByte (SIMD under the hood in the Go runtime)
//     for the nearest escaping byte and bulk-advances position and the
//     fused history register across the skipped span. The start state has
//     no output (patterns are non-empty), so the span emits nothing; the
//     skip cannot miss.
//
//   - Fused 2-byte stepping. For the start state and the hottest states of
//     the dense tier, Compile precomputes 16-bit-indexed row-pair tables:
//     entry (c1<<8 | c2) holds Move(Move(s,c1),c2), with a slow flag when
//     either intermediate or final state carries output (the scalar loop
//     must take those bytes to emit matches). The hot loop consumes two
//     bytes per iteration while the current state owns a pair table,
//     falling back to single-byte stepping at chunk tails, on CSR states
//     and across output boundaries. The pair entry is exact at any history:
//     at every reachable (state, true-history) point the DTP transition
//     equals the full DFA move (VerifyTransitions' invariant), so the
//     two-step composition is the precomputed truth.
//
//     While resident at the start state the kernel runs a skim over a
//     16 KB 2-bit action table (advTab) derived from the start state's
//     pair table: windows that compose back to the start state consume
//     both bytes, windows that are restart-equivalent at their second
//     byte (the composite state equals Move(Root, c2) with no output
//     crossed) consume one byte and realign, and only windows reaching
//     real depth or crossing output hand off to the full pair table.
//     The advance is branch-free and consecutive probes are independent
//     loads, so the CPU pipelines them. This is the big win on
//     low-match-density traffic whose escape set is too large to probe
//     byte-wise.
//
// History bookkeeping: the fast paths leave the fused history register
// stale and rebuild it from the last two consumed stream bytes when they
// hand off (bytes skipped or pair-stepped are real seen bytes, so the
// rebuilt lanes are always true history). The scalar fallback runs the
// baked Program's own loop, so the single-byte semantics live in exactly
// one place.

import (
	"bytes"

	"repro/internal/ac"
)

const (
	// accelSlow flags a pair-table entry whose 2-byte step crosses a state
	// with output; the scalar loop takes those bytes so matches are
	// emitted at their exact positions. Entries are 16-bit so one table is
	// 128 KB and the default budget stays cache-resident; the flag takes
	// bit 15, so machines with accelMaxPairStates or more states skip the
	// pair tier (the escape probe and the scalar loop still run).
	accelSlow = uint16(1) << 15

	// accelMaxPairStates is the largest state count whose ids fit beside
	// the slow flag in a 16-bit pair entry.
	accelMaxPairStates = 1 << 15

	// accelMaxProbe bounds the escape-set size for IndexByte probing: one
	// probe pass per escape byte per window, so past a few distinct bytes
	// the pair-table path wins on uniform traffic.
	accelMaxProbe = 4

	// accelProbeWindow bounds each multi-escape probe pass so one distant
	// escape byte cannot force full-chunk rescans for the others.
	accelProbeWindow = 512

	// DefaultPairStates is the pair-table budget when Options.PairStates
	// is 0: the start state plus the hottest dense-tier states. Each table
	// is 65536 × 2 bytes, so the default spends 512 KB on the two-byte
	// fast path — sized for the states that absorb nearly all clean
	// traffic while staying comfortably inside a typical L2.
	DefaultPairStates = 4
)

// Accel is the compiled accelerated runtime, built by CompileAccel on top
// of a baked Program. It is immutable after compile and safe for
// concurrent use by any number of scanners.
type Accel struct {
	prog *Program

	// escape lists the bytes that can leave the start state, kept only
	// when the set is small enough to probe with bytes.IndexByte; nil
	// disables probing (the start state's pair table covers stepping
	// instead). escapeSize is the true set size either way.
	escape     []byte
	escapeSize int

	// pairIdx[s] is the index of state s's row-pair table, -1 when s
	// steps one byte at a time. pair holds the tables back to back:
	// pair[pi<<16 | c1<<8 | c2] is the state after consuming c1 then c2,
	// or accelSlow when the 2-byte step crosses an output state. The
	// start state, when it owns a table, is always table 0, so its clean
	// self-transition is entry value 0 exactly; in any table an entry of
	// exactly 0 means the machine fell back to the start state.
	pairIdx []int32
	pair    []uint16

	// advTab drives the root-resident skim: a 2-bit action per 16-bit
	// window (c1,c2), evaluated against the start state's pair table.
	//
	//	2 — the window composes back to the start state with no output
	//	    crossed: consume both bytes and stay in the skim.
	//	1 — the window is restart-equivalent: the composite state equals
	//	    Move(Root, c2) with no output crossed, so the machine behaves
	//	    exactly as if it restarted at c2 from the start state.
	//	    Consume c1 alone and realign the window to c2 — this absorbs
	//	    a 1-byte excursion anywhere inside the window, at either
	//	    parity.
	//	0 — genuine hand-off: the window reaches real depth or crosses an
	//	    output state; consult the full pair table.
	//
	// Packed 2 bits per window the table is 16 KB, so the skim's per-pair
	// probe stays L1-resident; the 128 KB table is only consulted on a
	// hand-off. The advance is branch-free (i += action), so the only
	// unpredictable branch in the skim is the rare hand-off itself.
	advTab []uint64
}

// CompileAccel builds the accelerated runtime for a machine whose baked
// Program compiled. It returns nil when the Program is absent (the
// reference path has nothing to accelerate) — unlike the baked and
// prefiltered compiles it cannot otherwise fail: both fast paths degrade
// to the exact scalar loop.
func CompileAccel(m *Machine) *Accel {
	p := m.prog
	t := m.Trie
	if p == nil || t.HasOutput(ac.Root) {
		// A start state with output would make bulk skip unsound; it
		// cannot happen (patterns are non-empty) but a hand-assembled
		// trie should degrade, not miscount.
		return nil
	}
	a := &Accel{prog: p}

	var esc []byte
	for c := 0; c < 256; c++ {
		if t.Move(ac.Root, byte(c)) != ac.Root {
			esc = append(esc, byte(c))
		}
	}
	a.escapeSize = len(esc)
	if len(esc) > 0 && len(esc) <= accelMaxProbe {
		a.escape = esc
	}

	n := t.NumStates()
	a.pairIdx = make([]int32, n)
	for s := range a.pairIdx {
		a.pairIdx[s] = -1
	}
	sel := m.pickPair()
	if len(sel) == 0 || n >= accelMaxPairStates {
		return a
	}
	a.pair = make([]uint16, len(sel)<<16)
	// Cache full move rows per distinct intermediate state: the 256²
	// entries of one pair table reuse at most 256 rows, and the hot
	// intermediates (start state, depth-1) repeat across tables.
	rowCache := make(map[int32]*[256]int32, 256)
	moveRow := func(s int32) *[256]int32 {
		if r, ok := rowCache[s]; ok {
			return r
		}
		r := new([256]int32)
		for c := 0; c < 256; c++ {
			r[c] = t.Move(s, byte(c))
		}
		rowCache[s] = r
		return r
	}
	for pi, s := range sel {
		a.pairIdx[s] = int32(pi)
		row1 := moveRow(s)
		base := pi << 16
		for c1 := 0; c1 < 256; c1++ {
			s1 := row1[c1]
			slow1 := t.HasOutput(s1)
			row2 := moveRow(s1)
			rowBase := base | c1<<8
			for c2 := 0; c2 < 256; c2++ {
				s2 := row2[c2]
				if slow1 || t.HasOutput(s2) {
					a.pair[rowBase|c2] = accelSlow
				} else {
					a.pair[rowBase|c2] = uint16(s2)
				}
			}
		}
	}
	if pi := a.pairIdx[ac.Root]; pi >= 0 {
		a.advTab = make([]uint64, 1<<16/32)
		rootRow := moveRow(ac.Root)
		tbl := a.pair[int(pi)<<16:][:1<<16]
		for idx, e := range tbl {
			var adv uint64
			switch {
			case e == 0:
				adv = 2 // composes back to the start state
			case e&accelSlow == 0 && int32(e) == rootRow[idx&0xff]:
				adv = 1 // restart-equivalent at c2
			}
			a.advTab[idx>>5] |= adv << ((uint(idx) & 31) << 1)
		}
	}
	return a
}

// pickPair selects the states given row-pair tables: the start state
// first, then the hottest dense-promoted states in the same deterministic
// order the dense tier itself uses, up to the Options.PairStates budget
// (0 = DefaultPairStates, negative disables the tier). Restricting the
// pool to the dense tier keeps the two fast tiers nested: a pair-stepped
// state always has a dense row for its scalar fallback.
func (m *Machine) pickPair() []int32 {
	budget := m.Opts.PairStates
	if budget == 0 {
		budget = DefaultPairStates
	}
	if budget < 0 {
		return nil
	}
	promoted := m.pickDense()
	sel := make([]int32, 0, budget)
	for _, s := range m.denseOrder() {
		if len(sel) == budget {
			break
		}
		if s == ac.Root || promoted[s] {
			sel = append(sel, s)
		}
	}
	return sel
}

// AccelStats reports the accelerated layer's layout.
type AccelStats struct {
	EscapeBytes int  // distinct bytes that can leave the start state
	Probe       bool // root-resident IndexByte probing enabled
	PairStates  int  // states owning a 2-byte row-pair table
	PairBytes   int  // pair tables: PairStates × 65536 × 2
	TotalBytes  int  // pair tables + skim action table + pairIdx + escape list
}

// Stats summarizes the accelerated layer's memory layout.
func (a *Accel) Stats() AccelStats {
	return AccelStats{
		EscapeBytes: a.escapeSize,
		Probe:       a.escape != nil,
		PairStates:  len(a.pair) >> 16,
		PairBytes:   len(a.pair) * 2,
		TotalBytes:  len(a.pair)*2 + len(a.advTab)*8 + len(a.pairIdx)*4 + len(a.escape),
	}
}

// bulkHist advances the fused history register across a span of consumed
// bytes without stepping the machine: the result depends only on the last
// two bytes of the span (or one, shifting the old register in from the
// left). Every byte in the span was really seen, so the rebuilt lanes are
// true history.
func bulkHist(hist uint32, data []byte, from, to int) uint32 {
	switch {
	case to-from >= 2:
		return uint32(data[to-2])<<histLaneBits | uint32(data[to-1])
	case to-from == 1:
		return (hist<<histLaneBits | uint32(data[from])) & histMask
	default:
		return hist
	}
}

// nextEscape returns the index of the nearest byte in data that can leave
// the start state, or -1 when no byte of data escapes. Single-escape
// machines are one IndexByte call over the whole span; multi-escape
// machines probe per escape byte over bounded windows, shrinking the
// window to the best hit so later probes only scan what could still win.
func (a *Accel) nextEscape(data []byte) int {
	esc := a.escape
	if len(esc) == 1 {
		return bytes.IndexByte(data, esc[0])
	}
	for off := 0; off < len(data); off += accelProbeWindow {
		end := off + accelProbeWindow
		if end > len(data) {
			end = len(data)
		}
		w := data[off:end]
		best := -1
		for _, c := range esc {
			if j := bytes.IndexByte(w, c); j >= 0 {
				best = j
				w = w[:j]
			}
		}
		if best >= 0 {
			return off + best
		}
	}
	return -1
}

// scanAppend is the accelerated hot loop. One fused loop dispatches
// between three regimes. At the start state: bulk skip (IndexByte probe
// for the nearest escaping byte, when the escape set is small) and the
// root pair skim — the start state is pair table 0, so a clean 2-byte
// self-transition is entry value 0 exactly, one indexed load and one
// compare per two bytes with no load-to-load dependency between
// iterations. When the skim stops on a non-zero entry it takes that
// 2-byte transition directly (unless the slow flag demands scalar
// emission) and chains through further pair tables while the landing
// states own them. Everywhere else: an inlined copy of the baked
// per-byte body — identical to Program.scanAppend's, see the note there —
// so excursions off the root cost exactly the baked kernel plus one
// well-predicted start-state test per byte, with no function-call
// boundary on the way back to the skim.
//
// Every fast-path handoff rebuilds the fused history register from the
// last two consumed stream bytes (all skipped or pair-stepped bytes are
// real seen bytes), so the scalar regime — the only one that emits
// matches or consults d2/d3 defaults — always runs with true registers.
// Equivalence with every other backend is enforced register-for-register
// by the lockstep property tests and the fuzzers.
func (a *Accel) scanAppend(state int32, hist uint32, pos int, data []byte, out []ac.Match) (int32, uint32, int, []ac.Match) {
	p := a.prog
	t := p.trie
	rows, dense, outBits := p.rows, p.dense, p.outBits
	pair, pairIdx, advTab := a.pair, a.pairIdx, a.advTab
	i, n := 0, len(data)
	base := pos // absolute stream position of data[0]
	for i < n {
		if state == ac.Root {
			if a.escape != nil {
				// Bulk skip: probe for the nearest escaping byte; every
				// byte before it keeps the machine at the (output-free)
				// start state.
				j := a.nextEscape(data[i:])
				if j < 0 {
					hist = bulkHist(hist, data, i, n)
					i = n
					break
				}
				if j > 0 {
					hist = bulkHist(hist, data, i, i+j)
					i += j
				}
			}
			if advTab != nil && i+1 < n {
				// Root skim over the 2-bit action table: action 2 consumes
				// a window that composes back to the start state (it may
				// contain a whole 1-byte excursion), action 1 consumes one
				// byte of a restart-equivalent window and realigns at its
				// second byte, action 0 hands off to the full pair table.
				// The advance i += action is branch-free, so the hand-off
				// test is the skim's only unpredictable branch, and the
				// probe loads are independent of each other so the CPU
				// pipelines them. advTab is 16 KB — L1-resident — and the
				// 128 KB pair table is only touched at the hand-off.
				start := i
				var e uint16
				for i+1 < n {
					idx := uint32(data[i])<<8 | uint32(data[i+1])
					adv := advTab[idx>>5] >> ((idx & 31) << 1) & 3
					if adv == 0 {
						e = pair[idx]
						break
					}
					i += int(adv)
				}
				if i > start {
					hist = bulkHist(hist, data, start, i)
				}
				if e != 0 && e&accelSlow == 0 {
					// Take the 2-byte transition the skim stopped on, then
					// chain through pair tables while the landing states
					// own them (the hottest dense states do). The slow flag
					// hands output-crossing steps to the scalar loop; a
					// chain entry of exactly 0 is a fall-back to the root.
					state = int32(e)
					i += 2
					for i+1 < n {
						pi := pairIdx[state]
						if pi < 0 {
							break
						}
						e = pair[uint32(pi)<<16|uint32(data[i])<<8|uint32(data[i+1])]
						if e&accelSlow != 0 {
							break
						}
						state = int32(e)
						i += 2
						if e == 0 {
							break
						}
					}
					hist = uint32(data[i-2])<<histLaneBits | uint32(data[i-1])
					if state == ac.Root {
						continue
					}
				}
			}
			if i >= n {
				break
			}
		}
		// Exact scalar step: a copy of the baked per-byte body (it must
		// stay identical to Program.scanAppend's). One byte per pass; the
		// outer loop's start-state test bounces control back to the fast
		// paths the moment the machine returns to the root.
		c := data[i]
		ref := rows[state]
		if ref >= rowDense {
			state = dense[int(ref-rowDense)<<8|int(c)]
		} else {
			if cnt := ref >> 24; cnt != 0 {
				sbase := ref & rowOffMask
				key := uint32(c)
				for k := uint32(0); k < cnt; k++ {
					if e := p.stored[sbase+k]; uint32(e>>32) == key {
						state = int32(uint32(e))
						goto stepped
					}
				}
			}
			if e := p.d3[c]; uint32(e>>32) == hist {
				state = int32(uint32(e))
			} else {
				h1 := hist & histLaneMask
				d2 := &p.d2[c]
				switch {
				case uint32(d2[0]>>32) == h1:
					state = int32(uint32(d2[0]))
				case uint32(d2[1]>>32) == h1:
					state = int32(uint32(d2[1]))
				case uint32(d2[2]>>32) == h1:
					state = int32(uint32(d2[2]))
				case uint32(d2[3]>>32) == h1:
					state = int32(uint32(d2[3]))
				default:
					state = p.d1[c]
				}
			}
		}
	stepped:
		hist = (hist<<histLaneBits | uint32(c)) & histMask
		i++
		if outBits[uint32(state)>>6]&(1<<(uint32(state)&63)) != 0 {
			out = t.AppendOutputs(state, base+i, out)
		}
	}
	return state, hist, base + n, out
}

// accelBackend executes the accelerated kernel: baked Program semantics
// with root-resident bulk skip and fused 2-byte stepping layered on top.
// Registers are kept in the kernel's fused form, like the baked backend.
type accelBackend struct {
	prog  *Program
	acc   *Accel
	state int32
	hist  uint32
	pos   int
}

func (b *accelBackend) Name() string { return BackendAccelerated }

func (b *accelBackend) Reset() {
	b.state = ac.Root
	b.hist = histUnknown
	b.pos = 0
}

func (b *accelBackend) SkipAhead(n int) {
	if n <= 0 {
		return
	}
	b.state = ac.Root
	b.hist = histUnknown
	b.pos += n
}

func (b *accelBackend) Step(c byte) int32 {
	b.state, b.hist = b.prog.step(b.state, b.hist, c)
	b.pos++
	return b.state
}

func (b *accelBackend) Registers() Registers {
	h2, h1 := splitHist(b.hist)
	return Registers{State: b.state, H2: h2, H1: h1, Pos: b.pos}
}

func (b *accelBackend) ScanAppend(data []byte, out []ac.Match) []ac.Match {
	b.state, b.hist, b.pos, out = b.acc.scanAppend(b.state, b.hist, b.pos, data, out)
	return out
}
