package core

import (
	"math/rand"
	"testing"

	"repro/internal/ac"
	"repro/internal/ruleset"
)

// TestPrefilterSupersetProperty is the runtime form of the no-false-
// negative contract: over random rulesets and random payloads, run the
// lossy machine alone from the start of the payload and record where
// suspect entries fire; every exact match must be preceded (or met) by a
// suspect position — a match the skimmer would sail past is a false
// negative. The structural VerifySuperset proof is checked alongside.
func TestPrefilterSupersetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20100308))
	for trial := 0; trial < 40; trial++ {
		set := randBakedSet(rng)
		m, err := Build(set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pf := m.pre
		if pf == nil {
			t.Fatalf("trial %d: prefilter unavailable", trial)
		}
		if err := m.VerifySuperset(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		payload := randBakedPayload(rng, 256+rng.Intn(1024))
		want := m.Trie.FindAll(payload)

		// Drive the lossy DFA alone over the whole payload.
		suspectAt := make([]bool, len(payload)+1) // position = bytes consumed
		st := 0
		for i, c := range payload {
			e := pf.tab[st<<pfStrideBits|int(pf.class[c])]
			st = int(e & pfStateMask)
			if e&pfSuspect != 0 {
				suspectAt[i+1] = true
			}
		}
		firstSuspect := len(payload) + 1
		for p, s := range suspectAt {
			if s {
				firstSuspect = p
				break
			}
		}
		for _, mt := range want {
			if mt.End < firstSuspect {
				t.Fatalf("trial %d: match %+v ends before first suspect position %d: false negative",
					trial, mt, firstSuspect)
			}
			// The proof gives the stronger pointwise form for matches in a
			// clean prefix: while no suspect has fired, the exact depth is
			// below prefK and a match end itself fires suspect. After the
			// first suspect the pipeline is exact anyway; the lockstep
			// property test covers that regime.
		}
		// Pointwise: a match ending while the stream was still clean (no
		// earlier suspect) must be flagged exactly at its end position.
		for _, mt := range want {
			clean := true
			for p := 1; p < mt.End; p++ {
				if suspectAt[p] {
					clean = false
					break
				}
			}
			if clean && !suspectAt[mt.End] {
				t.Fatalf("trial %d: clean-prefix match %+v not flagged suspect at its end", trial, mt)
			}
		}
	}
}

// TestVerifySupersetDetectsCorruption proves the bake-time check actually
// rejects a prefilter that could miss: erase the suspect flags from a
// compiled table and VerifySuperset must fail.
func TestVerifySupersetDetectsCorruption(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("abc")},
		{ID: 1, Data: []byte("xy")},
	}}
	m, err := Build(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.pre == nil {
		t.Fatal("prefilter unavailable")
	}
	if err := m.VerifySuperset(); err != nil {
		t.Fatalf("pristine table rejected: %v", err)
	}
	saved := make([]uint16, len(m.pre.tab))
	copy(saved, m.pre.tab)
	for i := range m.pre.tab {
		m.pre.tab[i] &^= pfSuspect
	}
	if err := m.VerifySuperset(); err == nil {
		t.Fatal("VerifySuperset accepted a table with no suspect flags")
	}
	copy(m.pre.tab, saved)
	if err := m.VerifySuperset(); err != nil {
		t.Fatalf("restored table rejected: %v", err)
	}
}

// TestPrefilterUnavailableBackendErrors pins the registry contract: a
// machine without compiled kernels lists only the reference backend, and
// pinning an unavailable backend is an explicit error, not a silent
// fallback.
func TestPrefilterUnavailableBackendErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := Build(randBakedSet(rng), Options{DisableBaked: true})
	if err != nil {
		t.Fatal(err)
	}
	names := m.Backends()
	if len(names) != 1 || names[0] != BackendReference {
		t.Fatalf("reference-pinned machine lists backends %v", names)
	}
	if _, err := m.NewScannerFor(BackendPrefiltered); err == nil {
		t.Fatal("NewScannerFor(prefiltered) succeeded without a prefilter")
	}
	if _, err := m.NewScannerFor("warp"); err == nil {
		t.Fatal("NewScannerFor accepted an unknown backend name")
	}
	if m.DefaultBackend() != BackendReference {
		t.Fatalf("DefaultBackend = %q, want reference", m.DefaultBackend())
	}
	// Pinning at Build time errors too: this d2-overflowing set cannot
	// bake, so an explicit kernel backend must refuse to build.
	wide := &ruleset.Set{}
	for i, p := range []string{"ax", "bx", "cx", "dx", "ex", "fx"} {
		wide.Patterns = append(wide.Patterns, ruleset.Pattern{ID: i, Data: []byte(p)})
	}
	if _, err := Build(wide, Options{D2PerChar: 8, Backend: BackendPrefiltered}); err == nil {
		t.Fatal("Build pinned prefiltered on an unbakeable machine without error")
	}
	if _, err := Build(wide, Options{D2PerChar: 8, Backend: BackendBaked}); err == nil {
		t.Fatal("Build pinned baked on an unbakeable machine without error")
	}
	if _, err := Build(wide, Options{D2PerChar: 8}); err != nil {
		t.Fatalf("auto backend must fall back to reference, got error: %v", err)
	}
}

// TestPrefilterStatsAccounting sanity-checks the layout report and the
// runtime skim counters.
func TestPrefilterStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, err := Build(randBakedSet(rng), Options{Backend: BackendPrefiltered})
	if err != nil {
		t.Fatal(err)
	}
	pf := m.pre
	st := pf.Stats()
	if st.States <= 0 || st.States > pfMaxStates {
		t.Fatalf("States = %d", st.States)
	}
	if st.Classes < 1 || st.Classes > pfMaxClasses {
		t.Fatalf("Classes = %d", st.Classes)
	}
	if st.AcceptPaths <= 0 {
		t.Fatalf("AcceptPaths = %d", st.AcceptPaths)
	}
	if want := st.States*pfStride*2 + 512; st.TableBytes != want {
		t.Fatalf("TableBytes = %d, want %d", st.TableBytes, want)
	}
	sc := m.NewScanner()
	if sc.Backend() != BackendPrefiltered {
		t.Fatalf("pinned machine built a %q scanner", sc.Backend())
	}
	// Clean traffic (bytes outside the pattern alphabet) must be fully
	// skimmed; attack-dense traffic must drive the exact kernel.
	clean := make([]byte, 4096)
	for i := range clean {
		clean[i] = 0xF0 | byte(i&3)
	}
	sc.ScanAppend(clean, nil)
	st = pf.Stats()
	if st.SkimmedBytes < uint64(len(clean)) {
		t.Fatalf("SkimmedBytes = %d after %d clean bytes", st.SkimmedBytes, len(clean))
	}
	sc.Reset()
	sc.ScanAppend(randBakedPayload(rng, 4096), nil)
	st = pf.Stats()
	if st.ExactBytes == 0 || st.SuspectWindows == 0 {
		t.Fatalf("attack traffic left no exact work: %+v", st)
	}
	if st.SuspectRate <= 0 {
		t.Fatalf("SuspectRate = %v with %d suspect windows", st.SuspectRate, st.SuspectWindows)
	}
}

// TestPrefilterTailRingBoundary pins the rebuild path's hardest geometry:
// a suspect window that straddles a chunk boundary when the tail ring is
// exactly at capacity (the previous chunk was exactly pfTailLen bytes, so
// every ring slot is live and the rebuild's window and history reads hit
// the ring's oldest entries), plus Reset and SkipAhead landing in the
// middle of a suspect window. Each scenario drives the prefiltered
// backend against the reference interpreter in register lockstep; the
// fuzz seeds in FuzzPrefilterEquivalence cover the same shapes end to
// end through the public API.
func TestPrefilterTailRingBoundary(t *testing.T) {
	if pfTailLen != 5 {
		t.Fatalf("pfTailLen = %d; revisit the chunk geometry below", pfTailLen)
	}
	set := &ruleset.Set{Patterns: []ruleset.Pattern{{ID: 0, Data: []byte("vwxyz")}}}
	m, err := Build(set, Options{Backend: BackendPrefiltered})
	if err != nil {
		t.Fatal(err)
	}

	type op struct {
		kind  string // "write" | "reset" | "skip"
		chunk string
		n     int
	}
	scenarios := []struct {
		name    string
		ops     []op
		matches int
	}{
		// "...vw" fills the ring to capacity; the suspect fires on 'x' at
		// index 0 of the next chunk, so the rebuild window ('v', 'w') and
		// its history bytes ('.', '.') all come from the ring.
		{"straddle-at-ring-capacity", []op{
			{kind: "write", chunk: "...vw"},
			{kind: "write", chunk: "xyz.."},
		}, 1},
		// Same geometry but the straddling window is cut by Reset: the
		// pattern's bytes were never contiguous in one stream, so nothing
		// may match and the ring must restart empty.
		{"reset-mid-suspect-window", []op{
			{kind: "write", chunk: "...vw"},
			{kind: "reset"},
			{kind: "write", chunk: "xyz.."},
			{kind: "write", chunk: "vwxyz"},
		}, 1},
		// A gap skip mid-window: like Reset, but the stream position keeps
		// advancing, so the later match's offset is shifted by the gap.
		{"skip-mid-suspect-window", []op{
			{kind: "write", chunk: "...vw"},
			{kind: "skip", n: 3},
			{kind: "write", chunk: "xyz.."},
			{kind: "write", chunk: "vwxyz"},
		}, 1},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			pre, err := m.NewScannerFor(BackendPrefiltered)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := m.NewScannerFor(BackendReference)
			if err != nil {
				t.Fatal(err)
			}
			var pOut, rOut []ac.Match
			for i, o := range sc.ops {
				switch o.kind {
				case "write":
					pOut = pre.ScanAppend([]byte(o.chunk), pOut)
					rOut = ref.ScanAppend([]byte(o.chunk), rOut)
				case "reset":
					pre.Reset()
					ref.Reset()
				case "skip":
					pre.SkipAhead(o.n)
					ref.SkipAhead(o.n)
				}
				if got, want := pre.Registers(), ref.Registers(); got != want {
					t.Fatalf("op %d (%s): prefiltered registers %+v, reference %+v", i, o.kind, got, want)
				}
				if len(pOut) != len(rOut) {
					t.Fatalf("op %d (%s): prefiltered %d matches, reference %d", i, o.kind, len(pOut), len(rOut))
				}
			}
			if len(pOut) != sc.matches {
				t.Fatalf("%d matches, want %d", len(pOut), sc.matches)
			}
			for i := range pOut {
				if pOut[i] != rOut[i] {
					t.Fatalf("match %d: prefiltered %+v, reference %+v", i, pOut[i], rOut[i])
				}
			}
		})
	}
}
