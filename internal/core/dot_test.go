package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ruleset"
)

func TestWriteDotToyExample(t *testing.T) {
	m := mustBuild(t, toySet(), Options{})
	var buf bytes.Buffer
	if err := m.WriteDot(&buf, DotOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph machine {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a digraph")
	}
	// 10 states → 10 node declarations.
	if got := strings.Count(out, "label=\"start"); got != 1 {
		t.Fatalf("start nodes = %d", got)
	}
	// Match states (he, she, his, hers) are double circles.
	if got := strings.Count(out, "doublecircle"); got != 4 {
		t.Fatalf("doublecircle count = %d, want 4", got)
	}
	// Exactly one stored pointer survives (her -s-> hers): one solid edge
	// with label "s" beyond the dotted skeleton.
	solid := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "->") && !strings.Contains(line, "dotted") &&
			!strings.Contains(line, "dashed") && !strings.Contains(line, "lut") {
			solid++
		}
	}
	if solid != 1 {
		t.Fatalf("solid stored-pointer edges = %d, want 1", solid)
	}
	// The trie skeleton is drawn dotted: 9 goto edges, 8 of them compressed.
	if got := strings.Count(out, "style=dotted"); got != 8 {
		t.Fatalf("dotted skeleton edges = %d, want 8", got)
	}
}

func TestWriteDotWithDefaults(t *testing.T) {
	m := mustBuild(t, toySet(), Options{})
	var buf bytes.Buffer
	if err := m.WriteDot(&buf, DotOptions{ShowDefaults: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "lut [shape=box") {
		t.Fatal("lookup table node missing")
	}
	// d1: h, s; d2: e/h/i rows; d3: e/s/r rows.
	if got := strings.Count(out, "label=\"d1"); got != 2 {
		t.Errorf("d1 edges = %d, want 2", got)
	}
	if got := strings.Count(out, "label=\"d2"); got != 3 {
		t.Errorf("d2 edges = %d, want 3", got)
	}
	if got := strings.Count(out, "label=\"d3"); got != 3 {
		t.Errorf("d3 edges = %d, want 3", got)
	}
}

func TestWriteDotSizeGuard(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 300, Seed: 86})
	m := mustBuild(t, set, Options{})
	if err := m.WriteDot(&bytes.Buffer{}, DotOptions{}); err == nil {
		t.Fatal("oversized machine rendered without MaxStates override")
	}
	if err := m.WriteDot(&bytes.Buffer{}, DotOptions{MaxStates: 1 << 20}); err != nil {
		t.Fatalf("override failed: %v", err)
	}
}

func TestPrintableChar(t *testing.T) {
	cases := map[byte]string{
		'a':  "a",
		'/':  "/",
		0x90: "x90",
		0x00: "x00",
		'"':  "x22",
		'\\': "x5C",
		' ':  "x20",
	}
	for c, want := range cases {
		if got := printableChar(c); got != want {
			t.Errorf("printableChar(%#x) = %q, want %q", c, got, want)
		}
	}
}
