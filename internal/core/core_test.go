package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ac"
	"repro/internal/rng"
	"repro/internal/ruleset"
)

func toySet() *ruleset.Set {
	return &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("he")},
		{ID: 1, Data: []byte("she")},
		{ID: 2, Data: []byte("his")},
		{ID: 3, Data: []byte("hers")},
	}}
}

func mustBuild(t *testing.T, set *ruleset.Set, opts Options) *Machine {
	t.Helper()
	m, err := Build(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPaperToyExample reproduces Figure 2 exactly: for the state machine of
// Figure 1 (he, she, his, hers — 10 states), inserting depth-1 defaults
// leaves an average of 1.1 stored pointers per state (Figure 2A), adding
// depth-2 defaults leaves 0.5 (Figure 2B), and adding depth-3 defaults
// leaves 0.1 (Figure 2C) — i.e. 11, 5 and 1 stored pointers total.
func TestPaperToyExample(t *testing.T) {
	m := mustBuild(t, toySet(), Options{})
	st := m.Stats
	if st.States != 10 {
		t.Fatalf("states = %d, want 10", st.States)
	}
	if st.StoredAfterD1 != 11 {
		t.Errorf("stored after d1 = %d, want 11 (Figure 2A: avg 1.1)", st.StoredAfterD1)
	}
	if st.StoredAfterD12 != 5 {
		t.Errorf("stored after d1+d2 = %d, want 5 (Figure 2B: avg 0.5)", st.StoredAfterD12)
	}
	if st.StoredAfterD123 != 1 {
		t.Errorf("stored after d1+d2+d3 = %d, want 1 (Figure 2C: avg 0.1)", st.StoredAfterD123)
	}
	if st.AvgAfterD123 != 0.1 {
		t.Errorf("avg after full compression = %v, want 0.1", st.AvgAfterD123)
	}
}

// The single surviving pointer in the toy example is state "her" → "hers"
// on 's': the depth-3 default for 's' is "his" (its history comparison
// fails at "her"), there is no depth-2 state ending in 's', and the
// depth-1 default for 's' is the state "s", not "hers".
func TestToySurvivingPointer(t *testing.T) {
	m := mustBuild(t, toySet(), Options{})
	total := 0
	var survivor Transition
	var atState int32
	for s, list := range m.Stored {
		total += len(list)
		if len(list) > 0 {
			survivor = list[0]
			atState = int32(s)
		}
	}
	if total != 1 {
		t.Fatalf("stored pointers = %d, want 1", total)
	}
	if survivor.Char != 's' {
		t.Fatalf("surviving pointer on %q, want 's'", survivor.Char)
	}
	nd := m.Trie.Nodes[atState]
	if nd.Depth != 3 { // "her"
		t.Fatalf("surviving pointer at depth %d, want 3", nd.Depth)
	}
	if to := m.Trie.Nodes[survivor.To]; to.Depth != 4 { // "hers"
		t.Fatalf("surviving pointer targets depth %d, want 4", to.Depth)
	}
}

func TestToyDefaultsContents(t *testing.T) {
	m := mustBuild(t, toySet(), Options{})
	d := &m.Defaults
	if m.Stats.D1Count != 2 {
		t.Fatalf("d1 count = %d, want 2 (h, s)", m.Stats.D1Count)
	}
	if d.D1['h'] == ac.None || d.D1['s'] == ac.None {
		t.Fatal("missing depth-1 defaults for h/s")
	}
	if d.D1['x'] != ac.None {
		t.Fatal("phantom depth-1 default for x")
	}
	// Depth-2 states: he, sh, hi → one default in each of rows e, h, i.
	if m.Stats.D2Count != 3 {
		t.Fatalf("d2 count = %d, want 3", m.Stats.D2Count)
	}
	if len(d.D2['e']) != 1 || d.D2['e'][0].Prev != 'h' {
		t.Fatalf("d2[e] = %+v, want prev h", d.D2['e'])
	}
	// Depth-3 states: she, his, her → rows e, s, r.
	if m.Stats.D3Count != 3 {
		t.Fatalf("d3 count = %d, want 3", m.Stats.D3Count)
	}
	if len(d.D3['s']) != 1 || d.D3['s'][0].Prev2 != 'h' || d.D3['s'][0].Prev1 != 'i' {
		t.Fatalf("d3[s] = %+v, want prev hi", d.D3['s'])
	}
}

func TestVerifyTransitionsToy(t *testing.T) {
	for depth := 1; depth <= 3; depth++ {
		m := mustBuild(t, toySet(), Options{MaxDepth: depth})
		if err := m.VerifyTransitions(); err != nil {
			t.Fatalf("MaxDepth=%d: %v", depth, err)
		}
	}
}

func TestVerifyTransitionsSynthetic(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 400, Seed: 11})
	for depth := 1; depth <= 3; depth++ {
		m := mustBuild(t, set, Options{MaxDepth: depth})
		if err := m.VerifyTransitions(); err != nil {
			t.Fatalf("MaxDepth=%d: %v", depth, err)
		}
	}
}

func TestScanMatchesDFA(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 300, Seed: 12})
	m := mustBuild(t, set, Options{})
	src := rng.New(34)
	payloads := make([][]byte, 25)
	for i := range payloads {
		p := make([]byte, 100+src.Intn(900))
		for j := range p {
			p[j] = src.Byte()
		}
		// Embed genuine patterns to exercise match paths.
		for k := 0; k < 4; k++ {
			pat := set.Patterns[src.Intn(set.Len())]
			if len(pat.Data) < len(p) {
				copy(p[src.Intn(len(p)-len(pat.Data)):], pat.Data)
			}
		}
		payloads[i] = p
	}
	if err := m.VerifyScan(payloads); err != nil {
		t.Fatal(err)
	}
}

func TestScannerResetClearsHistory(t *testing.T) {
	// Patterns chosen so a depth-3 default exists for 'c' with history
	// "ab". If history leaked across packets, scanning "ab" then "c" as two
	// packets could follow the depth-3 default and falsely match "abc".
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("abc")},
		{ID: 1, Data: []byte("c")},
	}}
	m := mustBuild(t, set, Options{})
	sc := m.NewScanner()
	var got []ac.Match
	sc.Scan([]byte("ab"), func(mt ac.Match) { got = append(got, mt) })
	sc.Reset()
	sc.Scan([]byte("c"), func(mt ac.Match) { got = append(got, mt) })
	want := []ac.Match{{PatternID: 1, End: 1}} // only "c" in packet 2
	if !ac.MatchesEqual(got, want) {
		t.Fatalf("cross-packet matches = %v, want %v", got, want)
	}
}

func TestScannerStreamsAcrossCalls(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{{ID: 0, Data: []byte("abcd")}}}
	m := mustBuild(t, set, Options{})
	sc := m.NewScanner()
	var got []ac.Match
	sc.Scan([]byte("ab"), func(mt ac.Match) { got = append(got, mt) })
	sc.Scan([]byte("cd"), func(mt ac.Match) { got = append(got, mt) })
	if len(got) != 1 || got[0].End != 4 {
		t.Fatalf("streamed scan = %v, want one match ending at 4", got)
	}
}

func TestOneTransitionPerByte(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 100, Seed: 13})
	m := mustBuild(t, set, Options{})
	sc := m.NewScanner()
	data := make([]byte, 5000)
	src := rng.New(5)
	for i := range data {
		data[i] = src.Byte()
	}
	sc.Scan(data, func(ac.Match) {})
	if sc.Pos() != len(data) {
		t.Fatalf("consumed %d positions for %d bytes", sc.Pos(), len(data))
	}
}

func TestReductionOnSyntheticSnort(t *testing.T) {
	// Table II: the full scheme removes ≥96.5% of pointers on every tested
	// Snort-derived ruleset.
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 634, Seed: 2010})
	m := mustBuild(t, set, Options{})
	st := m.Stats
	if st.Reduction < 0.93 {
		t.Fatalf("reduction = %.4f, want >= 0.93", st.Reduction)
	}
	// The paper's ordering: original ≈ first-char count, then large drops
	// at each depth.
	if !(st.OriginalAvg > st.AvgAfterD1 && st.AvgAfterD1 > st.AvgAfterD12 &&
		st.AvgAfterD12 > st.AvgAfterD123) {
		t.Fatalf("averages not strictly decreasing: %.2f %.2f %.2f %.2f",
			st.OriginalAvg, st.AvgAfterD1, st.AvgAfterD12, st.AvgAfterD123)
	}
	// Original average tracks the number of distinct first characters
	// (±15%): every state stores a pointer for nearly every depth-1 state.
	fc := float64(set.FirstCharCount())
	if st.OriginalAvg < fc*0.85 || st.OriginalAvg > fc*1.35 {
		t.Errorf("original avg %.2f far from first-char count %.0f", st.OriginalAvg, fc)
	}
}

func TestD1CountEqualsFirstChars(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 500, Seed: 21})
	m := mustBuild(t, set, Options{})
	if m.Stats.D1Count != set.FirstCharCount() {
		t.Fatalf("D1Count = %d, first chars = %d", m.Stats.D1Count, set.FirstCharCount())
	}
}

func TestD2PerCharCap(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 800, Seed: 22})
	for _, k := range []int{1, 2, 4, 8} {
		m := mustBuild(t, set, Options{D2PerChar: k})
		for c := 0; c < 256; c++ {
			if len(m.Defaults.D2[c]) > k {
				t.Fatalf("D2PerChar=%d: row %#x has %d entries", k, c, len(m.Defaults.D2[c]))
			}
		}
		if err := m.VerifyTransitions(); err != nil {
			t.Fatalf("D2PerChar=%d: %v", k, err)
		}
	}
}

func TestMoreD2DefaultsNeverIncreaseStored(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 600, Seed: 23})
	prev := int64(1 << 62)
	for _, k := range []int{1, 2, 3, 4, 6, 8} {
		m := mustBuild(t, set, Options{D2PerChar: k})
		if m.Stats.StoredPointers > prev {
			t.Fatalf("stored pointers increased from %d to %d at D2PerChar=%d",
				prev, m.Stats.StoredPointers, k)
		}
		prev = m.Stats.StoredPointers
	}
}

func TestDefaultsResolveOrder(t *testing.T) {
	var d Defaults
	for c := range d.D1 {
		d.D1[c] = ac.None
	}
	d.D1['x'] = 1
	d.D2['x'] = []D2Entry{{Prev: 'a', State: 2}}
	d.D3['x'] = []D3Entry{{Prev2: 'p', Prev1: 'a', State: 3}}

	cases := []struct {
		h2, h1   int16
		maxDepth int
		want     int32
	}{
		{int16('p'), int16('a'), 3, 3}, // d3 wins
		{int16('q'), int16('a'), 3, 2}, // d3 history miss → d2
		{int16('p'), int16('b'), 3, 1}, // both miss → d1
		{HistNone, int16('a'), 3, 2},   // no h2: d3 cannot fire
		{HistNone, HistNone, 3, 1},     // no history at all
		{int16('p'), int16('a'), 2, 2}, // depth limited to 2
		{int16('p'), int16('a'), 1, 1}, // depth limited to 1
	}
	for i, tc := range cases {
		if got := d.Resolve('x', tc.h2, tc.h1, tc.maxDepth); got != tc.want {
			t.Errorf("case %d: Resolve = %d, want %d", i, got, tc.want)
		}
	}
	if got := d.Resolve('y', int16('p'), int16('a'), 3); got != ac.Root {
		t.Errorf("unknown char resolves to %d, want root", got)
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	set := toySet()
	for _, opts := range []Options{
		{MaxDepth: 4},
		{MaxDepth: -1},
		{D2PerChar: -2},
		{D3PerChar: -1},
	} {
		if _, err := Build(set, opts); err == nil {
			t.Errorf("Build accepted %+v", opts)
		}
	}
}

func TestBuildGroupedCoversAllPatterns(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 900, Seed: 31})
	g, err := BuildGrouped(set, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Machines) != 3 {
		t.Fatalf("groups = %d", len(g.Machines))
	}
	total := 0
	for _, s := range g.Sets {
		total += s.Len()
	}
	if total != set.Len() {
		t.Fatalf("grouped sets hold %d patterns, want %d", total, set.Len())
	}
}

func TestGroupedFindAllEqualsSingle(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 500, Seed: 32})
	single := mustBuild(t, set, Options{})
	g, err := BuildGrouped(set, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(44)
	for trial := 0; trial < 10; trial++ {
		data := make([]byte, 600)
		for i := range data {
			data[i] = src.Byte()
		}
		for k := 0; k < 3; k++ {
			p := set.Patterns[src.Intn(set.Len())]
			if len(p.Data) < len(data) {
				copy(data[src.Intn(len(data)-len(p.Data)):], p.Data)
			}
		}
		got := g.FindAll(data)
		want := single.FindAll(data)
		if !ac.MatchesEqual(got, want) {
			t.Fatalf("trial %d: grouped %d matches, single %d", trial, len(got), len(want))
		}
	}
}

func TestGroupedStatesSlightlyExceedSingle(t *testing.T) {
	// Table II: splitting 6,275 strings over 6 blocks grows the state count
	// only marginally (109,467 → 109,638, +0.16%) because lexicographic
	// grouping keeps shared prefixes together.
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 2000, Seed: 33})
	single := mustBuild(t, set, Options{})
	g, err := BuildGrouped(set, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := g.CombinedStats()
	if cs.States < single.Stats.States {
		t.Fatalf("grouped states %d < single %d", cs.States, single.Stats.States)
	}
	growth := float64(cs.States-single.Stats.States) / float64(single.Stats.States)
	if growth > 0.05 {
		t.Fatalf("state growth %.3f%% too large for lexicographic grouping", growth*100)
	}
}

func TestBuildGroupedRejectsBadCounts(t *testing.T) {
	set := toySet()
	if _, err := BuildGrouped(set, 0, Options{}); err == nil {
		t.Error("groups=0 accepted")
	}
	if _, err := BuildGrouped(set, 10, Options{}); err == nil {
		t.Error("more groups than patterns accepted")
	}
}

func TestMaxStoredPerStateTracked(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 1000, Seed: 35})
	m := mustBuild(t, set, Options{})
	max := 0
	for _, list := range m.Stored {
		if len(list) > max {
			max = len(list)
		}
	}
	if m.Stats.MaxStoredPerState != max {
		t.Fatalf("MaxStoredPerState = %d, recount = %d", m.Stats.MaxStoredPerState, max)
	}
}

// Property: compressed machine ≡ DFA ≡ oracle on random small instances.
func TestQuickEquivalence(t *testing.T) {
	f := func(seed int64, nData uint16) bool {
		src := rng.New(seed)
		set := &ruleset.Set{}
		seen := map[string]bool{}
		for len(set.Patterns) < 10 {
			l := 1 + src.Intn(7)
			d := make([]byte, l)
			for i := range d {
				d[i] = byte('a' + src.Intn(3)) // dense alphabet: many defaults fire
			}
			if seen[string(d)] {
				continue
			}
			seen[string(d)] = true
			set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: d})
		}
		m, err := Build(set, Options{})
		if err != nil {
			return false
		}
		if m.VerifyTransitions() != nil {
			return false
		}
		data := make([]byte, 1+int(nData)%400)
		for i := range data {
			data[i] = byte('a' + src.Intn(3))
		}
		got := m.FindAll(data)
		want := ac.NewOracle(set).FindAll(data)
		return ac.MatchesEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every stored pointer is a true DFA transition (no invented
// transitions), under all depth configurations.
func TestQuickStoredPointersAreDFAMoves(t *testing.T) {
	f := func(seed int64, depthSel uint8) bool {
		src := rng.New(seed)
		set := &ruleset.Set{}
		seen := map[string]bool{}
		for len(set.Patterns) < 6 {
			l := 1 + src.Intn(6)
			d := make([]byte, l)
			for i := range d {
				d[i] = byte('a' + src.Intn(4))
			}
			if seen[string(d)] {
				continue
			}
			seen[string(d)] = true
			set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: d})
		}
		m, err := Build(set, Options{MaxDepth: 1 + int(depthSel)%3})
		if err != nil {
			return false
		}
		for s, list := range m.Stored {
			for _, tr := range list {
				if m.Trie.Move(int32(s), tr.Char) != tr.To {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
