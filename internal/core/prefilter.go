package core

// The two-stage approximate prefilter: a tiny lossy automaton skims clean
// traffic and hands only suspect byte windows to the exact baked kernel.
// The lossy machine may raise false alarms but provably never misses — the
// superset contract below — so the pipeline stays byte-exact equivalent to
// the reference machine while touching most clean bytes with a single
// byte-indexed load.
//
// Construction. Fix a window depth K (prefK). Bytes are collapsed onto a
// small class alphabet: every byte appearing within the first K levels of
// the pattern trie gets a non-zero class, every other byte is class 0.
// Pattern-starting bytes (depth 1) and deeper-only bytes are partitioned
// onto disjoint class ranges — start-state residency is exactly "this byte
// starts no pattern", and the partition keeps class folding from eroding
// it — and each partition folds onto its own share of the budget when
// rulesets use more distinct bytes than classes. Over that alphabet a collapsed Aho-Corasick DFA is built from
// the truncated accept strings: φ(path(s)) for every exact trie state s at
// depth exactly K, plus φ(path(s)) for every shallower state where a whole
// pattern ends. States whose path *ends with* an accept string — the
// accept set closed over fail links — are flagged suspect, and the flag is
// folded into bit 15 of each uint16 transition entry so the skim loop
// tests it for free.
//
// Superset contract (no false negatives). Start both machines at a stream
// position where the exact machine is at the start state. While no suspect
// entry has been hit: (1) the exact machine's depth stays below K — depth
// grows at most one per byte, so first reaching depth K happens at a byte
// whose last K inputs spell a depth-K trie path, whose collapsed form is
// an accept string, and the collapsed DFA state (the longest collapsed
// suffix) then carries that accept in its fail closure, firing suspect;
// (2) no match ends — a pattern ending while depth < K has length < K, is
// inserted as an accept string itself, and fires suspect the same way.
// VerifySuperset checks the accept-string walk structurally at bake time
// (in the spirit of VerifyTransitions); the property test and the
// FuzzPrefilterEquivalence fuzzer check the runtime pipeline end to end.
//
// Suspect-window rebuild. When suspect fires at stream index a, the exact
// kernel restarts from the start state at r = max(a−K+1, skim start) —
// clamped so previously exact-scanned bytes are never rescanned, which
// would double-emit — seeded with the true history bytes r−2, r−1 kept in
// a small tail ring. The rescanned machine's state path is always a real
// suffix of the stream (stored transitions extend it, d2/d3 defaults fire
// only on true history bytes), so it emits only true matches; no true
// match ends strictly before a+1 by the superset contract; and after
// consuming through byte a its registers provably equal the true
// machine's: a pure DFA restart over ≥ depth(a+1) trailing bytes computes
// the true longest-suffix state, the DTP restart is sandwiched between
// that DFA restart and the true machine (defaults only ever jump *deeper*
// along true suffixes), and two identical register files stay identical
// forever after. The pipeline then stays exact until the machine returns
// to the start state, where skimming is sound again.

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ac"
)

const (
	// prefK is the prefilter window depth: the lossy machine proves "the
	// exact machine is below depth K and no match ends here" for clean
	// bytes. 3 matches the DTP default depth — the d2/d3 history window —
	// and keeps the collapsed table a few tens of KB on Snort-scale sets.
	prefK = 3

	// pfSuspect flags a transition entry whose target state ends with an
	// accept string; the low 15 bits are the target state id.
	pfSuspect   = uint16(1) << 15
	pfStateMask = pfSuspect - 1
	pfMaxStates = 1 << 15

	// pfMaxClasses bounds the collapsed alphabet (class 0 = byte absent
	// from all pattern prefixes). Rulesets with more distinct prefix bytes
	// fold classes together — more false suspects, never a miss.
	pfMaxClasses = 64

	// The transition table is laid out at a fixed power-of-two row stride
	// (entry = tab[state<<pfStrideBits | class]) regardless of how many
	// classes are in use, so the skim loop's address arithmetic is a shift
	// and an OR on the load-to-load dependency chain instead of a multiply.
	pfStrideBits = 6
	pfStride     = 1 << pfStrideBits

	// pfTailLen is the left-context ring: a rebuild needs the K−1 bytes
	// before the suspect byte plus their 2 history bytes (one spare).
	pfTailLen = prefK + 2
)

// Prefilter is the compiled lossy first stage, immutable after
// CompilePrefilter except for its runtime counters; safe for concurrent
// use by any number of scanners.
type Prefilter struct {
	class    [256]uint8 // byte → collapsed class, 0 = not in any prefix
	nClasses int
	tab      []uint16    // states × pfStride (row-strided): target | pfSuspect
	rootTab  [256]uint16 // row 0 pre-composed with class[], byte-indexed
	states   int
	accepts  int // accept strings inserted
	folded   bool

	// Runtime counters, accumulated once per ScanAppend chunk.
	skimmedBytes   atomic.Uint64
	exactBytes     atomic.Uint64
	suspectWindows atomic.Uint64
}

// CompilePrefilter builds the lossy first stage for m. It returns nil when
// the collapsed machine does not fit the packed entry format (state ids
// share a uint16 with the suspect flag), in which case the prefiltered
// backend is simply unavailable. Build compiles it automatically alongside
// the baked Program and proves VerifySuperset before keeping it.
func CompilePrefilter(m *Machine) *Prefilter {
	t := m.Trie
	n := t.NumStates()

	pf := &Prefilter{}
	// Partition bytes into first bytes (depth 1) and deeper-only bytes
	// (depth 2..K, never depth 1). The two partitions never share a class:
	// the skim loop's start-state residency — its whole advantage on clean
	// traffic — is exactly "this byte starts no pattern", and folding a
	// deeper-only byte into a first byte's class would make it leave the
	// start state too. Within a partition folding only coarsens depth-2/3
	// discrimination (more false suspects, never a miss), so when the
	// distinct bytes exceed the class budget each partition folds onto its
	// own share, split proportionally.
	var first, deep [256]bool
	for s := 1; s < n; s++ {
		if nd := &t.Nodes[s]; nd.Depth <= prefK {
			if nd.Depth == 1 {
				first[nd.Char] = true
			} else {
				deep[nd.Char] = true
			}
		}
	}
	nFirst, nDeep := 0, 0
	for b := 0; b < 256; b++ {
		if first[b] {
			deep[b] = false
			nFirst++
		} else if deep[b] {
			nDeep++
		}
	}
	budget := pfMaxClasses - 1
	fc, dc := nFirst, nDeep
	if nFirst+nDeep > budget {
		pf.folded = true
		fc = budget * nFirst / (nFirst + nDeep)
		if fc < 1 && nFirst > 0 {
			fc = 1
		}
		if fc > nFirst {
			fc = nFirst
		}
		dc = budget - fc
		if dc > nDeep {
			dc = nDeep
		}
	}
	fi, di := 0, 0
	for b := 0; b < 256; b++ {
		switch {
		case first[b]:
			pf.class[b] = uint8(1 + fi%fc)
			fi++
		case deep[b]:
			pf.class[b] = uint8(1 + fc + di%dc)
			di++
		}
	}
	pf.nClasses = 1 + fc + dc
	nc := pf.nClasses

	// Collapsed goto trie over the truncated accept strings.
	type pnode struct {
		next    []int32
		fail    int32
		accept  bool
		suspect bool
	}
	newNode := func() pnode {
		next := make([]int32, nc)
		for i := range next {
			next[i] = ac.None
		}
		return pnode{next: next}
	}
	nodes := []pnode{newNode()}
	insert := func(classes []uint8) {
		cur := int32(0)
		for _, c := range classes {
			nxt := nodes[cur].next[c]
			if nxt == ac.None {
				nodes = append(nodes, newNode())
				nxt = int32(len(nodes) - 1)
				nodes[cur].next[c] = nxt
			}
			cur = nxt
		}
		if !nodes[cur].accept {
			nodes[cur].accept = true
			pf.accepts++
		}
	}
	var path [prefK]uint8
	for s := 1; s < n; s++ {
		nd := &t.Nodes[s]
		d := int(nd.Depth)
		if d > prefK || (d < prefK && len(nd.Out) == 0) {
			continue
		}
		for j, cur := d-1, int32(s); j >= 0; j-- {
			path[j] = pf.class[t.Nodes[cur].Char]
			cur = t.Nodes[cur].Parent
		}
		insert(path[:d])
	}
	if len(nodes) > pfMaxStates {
		return nil
	}
	pf.states = len(nodes)

	// Breadth-first: fail links, suspect closure (a state is suspect when
	// any suffix of its path is accept), and in-place DFA resolution of
	// missing transitions — a node's fail is shallower, so its row is
	// already resolved when the node is reached.
	queue := make([]int32, 0, len(nodes))
	for c := 0; c < nc; c++ {
		v := nodes[0].next[c]
		if v == ac.None {
			nodes[0].next[c] = 0
			continue
		}
		nodes[v].fail = 0
		queue = append(queue, v)
	}
	nodes[0].suspect = nodes[0].accept
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		nu := &nodes[u]
		nu.suspect = nu.accept || nodes[nu.fail].suspect
		for c := 0; c < nc; c++ {
			v := nu.next[c]
			if v == ac.None {
				nu.next[c] = nodes[nu.fail].next[c]
				continue
			}
			nodes[v].fail = nodes[nu.fail].next[c]
			queue = append(queue, v)
		}
	}

	// Bake the packed table at the fixed row stride. Slots past nClasses
	// are never addressed (class values are always < nClasses); they stay
	// zero, which reads as "start state, not suspect" — consistent, since
	// the start state is never suspect (no pattern is empty).
	pf.tab = make([]uint16, len(nodes)<<pfStrideBits)
	for s := range nodes {
		for c := 0; c < nc; c++ {
			v := nodes[s].next[c]
			e := uint16(v)
			if nodes[v].suspect {
				e |= pfSuspect
			}
			pf.tab[s<<pfStrideBits|c] = e
		}
	}
	// Pre-compose row 0 with the class map: the skim loop's start-state
	// fast path is one byte-indexed load, no class indirection.
	for b := 0; b < 256; b++ {
		pf.rootTab[b] = pf.tab[int(pf.class[b])]
	}
	return pf
}

// PrefilterStats reports the lossy stage's layout and its runtime skim
// accounting across all scanners sharing the machine.
type PrefilterStats struct {
	States      int  // collapsed DFA states
	Classes     int  // collapsed alphabet size (class 0 = non-prefix bytes)
	AcceptPaths int  // truncated accept strings inserted
	TableBytes  int  // transition table + byte-indexed root row
	Folded      bool // distinct prefix bytes exceeded the class budget

	SkimmedBytes   uint64 // bytes cleared by the lossy machine alone
	ExactBytes     uint64 // bytes run through the exact kernel (incl. rescans)
	SuspectWindows uint64 // skim→exact handoffs
	// SuspectRate is SuspectWindows per skimmed byte — the false-alarm
	// density on the traffic actually seen (0 when nothing was skimmed).
	SuspectRate float64
}

// Stats snapshots the prefilter's layout and runtime counters.
func (pf *Prefilter) Stats() PrefilterStats {
	st := PrefilterStats{
		States:         pf.states,
		Classes:        pf.nClasses,
		AcceptPaths:    pf.accepts,
		TableBytes:     len(pf.tab)*2 + len(pf.rootTab)*2,
		Folded:         pf.folded,
		SkimmedBytes:   pf.skimmedBytes.Load(),
		ExactBytes:     pf.exactBytes.Load(),
		SuspectWindows: pf.suspectWindows.Load(),
	}
	if st.SkimmedBytes > 0 {
		st.SuspectRate = float64(st.SuspectWindows) / float64(st.SkimmedBytes)
	}
	return st
}

// VerifySuperset proves the prefilter admits no false negatives, in the
// spirit of VerifyTransitions: for every exact trie state that terminates
// an accept window — depth exactly prefK, or a shallower state where a
// whole pattern ends — walking the collapsed form of its path from the
// prefilter's start state must land on a suspect-flagged entry. Combined
// with the longest-suffix property of the collapsed DFA and the suspect
// closure over fail links, this extends to every runtime position (see the
// file comment); the scan-level property tests and fuzzer check that
// empirically. It also checks the packed table's structural invariant that
// the suspect flag is a pure function of the target state.
func (m *Machine) VerifySuperset() error {
	pf := m.pre
	if pf == nil {
		return fmt.Errorf("core: no prefilter compiled for this machine")
	}
	t := m.Trie

	sus := make([]int8, pf.states) // -1 suspect, +1 clean, 0 unseen
	for i, e := range pf.tab {
		v := int(e & pfStateMask)
		want := int8(1)
		if e&pfSuspect != 0 {
			want = -1
		}
		if sus[v] == 0 {
			sus[v] = want
		} else if sus[v] != want {
			return fmt.Errorf("core: prefilter entry %d disagrees on suspect flag of state %d", i, v)
		}
	}

	var path [prefK]byte
	for s := 1; s < t.NumStates(); s++ {
		nd := &t.Nodes[s]
		d := int(nd.Depth)
		if d > prefK || (d < prefK && len(nd.Out) == 0) {
			continue
		}
		for j, cur := d-1, int32(s); j >= 0; j-- {
			path[j] = t.Nodes[cur].Char
			cur = t.Nodes[cur].Parent
		}
		st, e := 0, uint16(0)
		for _, c := range path[:d] {
			e = pf.tab[st<<pfStrideBits|int(pf.class[c])]
			st = int(e & pfStateMask)
		}
		if e&pfSuspect == 0 {
			return fmt.Errorf(
				"core: prefilter false negative: exact state %d (depth %d, window %q) not flagged suspect",
				s, d, path[:d])
		}
	}
	return nil
}

// prefilterBackend is the two-stage pipeline: skim with the lossy machine
// while the exact machine is provably at the start state, drop to the
// exact baked kernel through suspect windows, return to skimming at the
// next start-state boundary.
type prefilterBackend struct {
	m    *Machine
	pf   *Prefilter
	prog *Program

	// Exact registers. While skimming, state parks at ac.Root (the skim
	// entry condition) and hist goes stale; both are rebuilt from the tail
	// ring when the pipeline drops back to exact.
	state int32
	hist  uint32
	pos   int

	skimming  bool
	skimStart int    // stream position where the current skim segment began
	pfState   uint16 // lossy machine state while skimming

	// tail holds the last tailLen stream bytes actually seen
	// (tail[tailLen-1] is the byte at pos-1), capped at pfTailLen. It is
	// the left context for suspect-window rebuilds and for register
	// materialization during skims. Reset and SkipAhead clear it: bytes
	// across a gap are unseen and must read back as HistNone.
	tail    [pfTailLen]byte
	tailLen int
}

func (b *prefilterBackend) Name() string { return BackendPrefiltered }

func (b *prefilterBackend) enterSkim() {
	b.skimming = true
	b.skimStart = b.pos
	b.pfState = 0
}

func (b *prefilterBackend) Reset() {
	b.state = ac.Root
	b.hist = histUnknown
	b.pos = 0
	b.tailLen = 0
	b.enterSkim()
}

func (b *prefilterBackend) SkipAhead(n int) {
	if n <= 0 {
		return
	}
	b.state = ac.Root
	b.hist = histUnknown
	b.pos += n
	b.tailLen = 0
	b.enterSkim()
}

func (b *prefilterBackend) pushTailByte(c byte) {
	if b.tailLen == pfTailLen {
		copy(b.tail[:], b.tail[1:])
		b.tail[pfTailLen-1] = c
		return
	}
	b.tail[b.tailLen] = c
	b.tailLen++
}

// trueRegisters materializes the exact register file mid-skim. Sound
// because the skim invariant bounds the true depth by prefK−1, so the true
// state — the longest stream suffix that is a trie node — is determined by
// the last prefK−1 seen bytes, all inside the tail ring; a pure DFA walk
// over them from the start state computes it.
func (b *prefilterBackend) trueRegisters() (int32, uint32) {
	h2, h1 := HistNone, HistNone
	if b.tailLen >= 2 {
		h2 = int16(b.tail[b.tailLen-2])
	}
	if b.tailLen >= 1 {
		h1 = int16(b.tail[b.tailLen-1])
	}
	w := prefK - 1
	if b.tailLen < w {
		w = b.tailLen
	}
	st := ac.Root
	for _, c := range b.tail[b.tailLen-w : b.tailLen] {
		st = b.m.Trie.Move(st, c)
	}
	return st, fuseHist(h2, h1)
}

func (b *prefilterBackend) Registers() Registers {
	state, hist := b.state, b.hist
	if b.skimming {
		state, hist = b.trueRegisters()
	}
	h2, h1 := splitHist(hist)
	return Registers{State: state, H2: h2, H1: h1, Pos: b.pos}
}

// Step is the register-machine view: it always runs exact semantics,
// materializing the registers out of a skim first, and re-arms the skimmer
// whenever the machine lands back on the start state.
func (b *prefilterBackend) Step(c byte) int32 {
	if b.skimming {
		b.state, b.hist = b.trueRegisters()
		b.skimming = false
	}
	b.state, b.hist = b.prog.step(b.state, b.hist, c)
	b.pos++
	b.pushTailByte(c)
	if b.state == ac.Root {
		b.enterSkim()
	}
	return b.state
}

// byteAt reads the stream byte at absolute position j from the current
// chunk or the tail ring; ok is false when j precedes the seen window
// (stream start, Reset, or a SkipAhead gap).
func (b *prefilterBackend) byteAt(data []byte, chunkBase, j int) (byte, bool) {
	if j >= chunkBase {
		return data[j-chunkBase], true
	}
	if d := chunkBase - j; d >= 1 && d <= b.tailLen {
		return b.tail[b.tailLen-d], true
	}
	return 0, false
}

// skimChunk advances the lossy machine over data[i:] until a suspect entry
// fires or the chunk ends, returning the next unconsumed index and whether
// the last consumed byte was flagged suspect. The loop is deliberately
// branchless on the state: traffic that hovers near the start state (short
// excursions into depth 1-2 every few bytes) makes any "am I at the start
// state" test an unpredictable branch, and the mispredictions cost more
// than the class indirection they would skip. The only branch taken on
// clean bytes is the rare, well-predicted suspect test; the per-byte
// dependency chain is shift, OR, one strided load.
func (b *prefilterBackend) skimChunk(data []byte, i int) (int, bool) {
	pf := b.pf
	tab, class := pf.tab, &pf.class
	st := uint32(b.pfState)
	n := len(data)
	for i < n {
		e := tab[st<<pfStrideBits|uint32(class[data[i]])]
		i++
		st = uint32(e & pfStateMask)
		if e&pfSuspect != 0 {
			b.pfState = uint16(st)
			return i, true
		}
	}
	b.pfState = uint16(st)
	return i, false
}

// rebuild runs the exact kernel through a suspect window: the skimmer
// flagged the byte at data[i-1] (stream position chunkBase+i-1). Restart
// at r = max(suspect−prefK+1, skim start) — the clamp keeps previously
// exact-scanned bytes from being re-emitted — with the true history bytes
// r−2, r−1, and scan through the suspect byte. Per the soundness argument
// in the file comment this emits exactly the true matches ending at the
// suspect boundary and leaves the registers equal to the true machine's.
func (b *prefilterBackend) rebuild(data []byte, i, chunkBase int, out []ac.Match) []ac.Match {
	a := chunkBase + i - 1
	r := a + 1 - prefK
	if r < b.skimStart {
		r = b.skimStart
	}
	var state int32
	var hist uint32
	if r-2 >= chunkBase {
		// Fast path — the whole window and both history bytes sit in the
		// current chunk (every suspect more than prefK+1 bytes into a
		// chunk), so the exact kernel can run straight over the chunk
		// slice: no tail-ring reads, no window copy.
		lo := r - chunkBase
		state, hist, _, out = b.prog.scanAppend(
			ac.Root, fuseHist(int16(data[lo-2]), int16(data[lo-1])), r, data[lo:i], out)
	} else {
		h2, h1 := HistNone, HistNone
		if c, ok := b.byteAt(data, chunkBase, r-2); ok {
			h2 = int16(c)
		}
		if c, ok := b.byteAt(data, chunkBase, r-1); ok {
			h1 = int16(c)
		}
		// The window bytes [r, a] are always within the seen region: r is
		// at most prefK−1 bytes behind the suspect byte and never precedes
		// the skim segment start.
		var win [prefK]byte
		w := 0
		for j := r; j <= a; j++ {
			win[w], _ = b.byteAt(data, chunkBase, j)
			w++
		}
		state, hist, _, out = b.prog.scanAppend(ac.Root, fuseHist(h2, h1), r, win[:w], out)
	}
	b.state, b.hist = state, hist
	if state == ac.Root {
		b.enterSkim()
	} else {
		b.skimming = false
	}
	return out
}

func (b *prefilterBackend) ScanAppend(data []byte, out []ac.Match) []ac.Match {
	chunkBase := b.pos
	i, n := 0, len(data)
	var skimmed, exact, suspects uint64
	for i < n {
		if b.skimming {
			start := i
			var hit bool
			i, hit = b.skimChunk(data, i)
			skimmed += uint64(i - start)
			b.pos = chunkBase + i
			if !hit {
				break
			}
			suspects++
			exact += uint64(prefK) // rebuild rescan, counted as exact work
			out = b.rebuild(data, i, chunkBase, out)
			continue
		}
		before := b.pos
		b.state, b.hist, b.pos, out = b.prog.scanAppendStopRoot(b.state, b.hist, b.pos, data[i:], out)
		i += b.pos - before
		exact += uint64(b.pos - before)
		if b.state == ac.Root {
			b.enterSkim()
		}
	}
	// Fold the chunk into the tail ring (once per call, not per byte).
	if n >= pfTailLen {
		copy(b.tail[:], data[n-pfTailLen:])
		b.tailLen = pfTailLen
	} else if n > 0 {
		keep := pfTailLen - n
		if keep > b.tailLen {
			keep = b.tailLen
		}
		copy(b.tail[:keep], b.tail[b.tailLen-keep:b.tailLen])
		copy(b.tail[keep:], data)
		b.tailLen = keep + n
	}
	if skimmed != 0 {
		b.pf.skimmedBytes.Add(skimmed)
	}
	if exact != 0 {
		b.pf.exactBytes.Add(exact)
	}
	if suspects != 0 {
		b.pf.suspectWindows.Add(suspects)
	}
	return out
}
