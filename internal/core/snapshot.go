package core

// Snapshot serialization: a compiled Machine can be written to a compact
// binary blob and reloaded without re-running the popularity and
// compression passes — the software analogue of shipping the FPGA's
// initialized memory images. Format (little endian):
//
//	magic "DTPM" | version u16 | options (3×u8 + pad) | node table |
//	pattern lengths | defaults | stored transitions | stats | crc32
//
// The trailing CRC-32 (IEEE) covers everything before it; Load rejects
// truncated or corrupted blobs and unknown versions.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/ac"
)

var snapshotMagic = [4]byte{'D', 'T', 'P', 'M'}

// SnapshotVersion identifies the current blob layout.
const SnapshotVersion uint16 = 1

type countingWriter struct {
	w   io.Writer
	crc uint32
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	cw.n += int64(n)
	cw.err = err
	return n, err
}

func put[T any](cw *countingWriter, v T) {
	if cw.err == nil {
		cw.err = binary.Write(cw, binary.LittleEndian, v)
	}
}

// Save writes the machine snapshot to w.
func (m *Machine) Save(w io.Writer) error {
	cw := &countingWriter{w: w}
	cw.Write(snapshotMagic[:])
	put(cw, SnapshotVersion)
	put(cw, uint8(m.Opts.D2PerChar))
	put(cw, uint8(m.Opts.D3PerChar))
	put(cw, uint8(m.Opts.MaxDepth))
	put(cw, uint8(0)) // pad

	nodes := m.Trie.Nodes
	put(cw, uint32(len(nodes)))
	for i := range nodes {
		nd := &nodes[i]
		put(cw, nd.Parent)
		put(cw, nd.Fail)
		put(cw, nd.OutLink)
		put(cw, nd.Depth)
		put(cw, nd.Char)
		put(cw, uint16(len(nd.Edges)))
		put(cw, uint16(len(nd.Out)))
		for _, e := range nd.Edges {
			put(cw, e.Char)
			put(cw, e.To)
		}
		for _, id := range nd.Out {
			put(cw, id)
		}
	}

	// Pattern lengths, sorted by ID for determinism.
	ids := make([]int32, 0)
	for i := range nodes {
		ids = append(ids, nodes[i].Out...)
	}
	sortInt32(ids)
	put(cw, uint32(len(ids)))
	for _, id := range ids {
		put(cw, id)
		put(cw, int32(m.Trie.PatternLen(id)))
	}

	// Defaults.
	for c := 0; c < 256; c++ {
		put(cw, m.Defaults.D1[c])
	}
	for c := 0; c < 256; c++ {
		put(cw, uint8(len(m.Defaults.D2[c])))
		for _, e := range m.Defaults.D2[c] {
			put(cw, e.Prev)
			put(cw, e.State)
		}
	}
	for c := 0; c < 256; c++ {
		put(cw, uint8(len(m.Defaults.D3[c])))
		for _, e := range m.Defaults.D3[c] {
			put(cw, e.Prev2)
			put(cw, e.Prev1)
			put(cw, e.State)
		}
	}

	// Stored transitions.
	for s := range m.Stored {
		put(cw, uint16(len(m.Stored[s])))
		for _, tr := range m.Stored[s] {
			put(cw, tr.Char)
			put(cw, tr.To)
		}
	}

	// Stats (floats as IEEE bits).
	st := &m.Stats
	put(cw, int64(st.States))
	put(cw, st.OriginalPointers)
	put(cw, math.Float64bits(st.OriginalAvg))
	put(cw, int64(st.D1Count))
	put(cw, int64(st.D2Count))
	put(cw, int64(st.D3Count))
	put(cw, st.StoredAfterD1)
	put(cw, st.StoredAfterD12)
	put(cw, st.StoredAfterD123)
	put(cw, math.Float64bits(st.AvgAfterD1))
	put(cw, math.Float64bits(st.AvgAfterD12))
	put(cw, math.Float64bits(st.AvgAfterD123))
	put(cw, st.StoredPointers)
	put(cw, math.Float64bits(st.AvgStored))
	put(cw, int64(st.MaxStoredPerState))
	put(cw, math.Float64bits(st.Reduction))

	if cw.err != nil {
		return cw.err
	}
	// Trailing checksum (not itself covered).
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

type reader struct {
	r   *bytes.Reader
	err error
}

func get[T any](rd *reader, v *T) {
	if rd.err == nil {
		rd.err = binary.Read(rd.r, binary.LittleEndian, v)
	}
}

// Load reads a snapshot written by Save, validating the checksum and every
// structural invariant of the embedded automaton.
func Load(data []byte) (*Machine, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("core: snapshot too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	wantCRC := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, fmt.Errorf("core: snapshot checksum mismatch (%#x != %#x)", got, wantCRC)
	}
	rd := &reader{r: bytes.NewReader(body)}

	var magic [4]byte
	get(rd, &magic)
	if magic != snapshotMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %q", magic[:])
	}
	var version uint16
	get(rd, &version)
	if version != SnapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d (want %d)", version, SnapshotVersion)
	}
	var d2, d3, maxDepth, pad uint8
	get(rd, &d2)
	get(rd, &d3)
	get(rd, &maxDepth)
	get(rd, &pad)

	var numNodes uint32
	get(rd, &numNodes)
	if rd.err != nil {
		return nil, rd.err
	}
	if numNodes == 0 || numNodes > 1<<24 {
		return nil, fmt.Errorf("core: implausible node count %d", numNodes)
	}
	nodes := make([]ac.Node, numNodes)
	for i := range nodes {
		nd := &nodes[i]
		get(rd, &nd.Parent)
		get(rd, &nd.Fail)
		get(rd, &nd.OutLink)
		get(rd, &nd.Depth)
		get(rd, &nd.Char)
		var numEdges, numOut uint16
		get(rd, &numEdges)
		get(rd, &numOut)
		if rd.err != nil {
			return nil, rd.err
		}
		nd.Edges = make([]ac.Edge, numEdges)
		for j := range nd.Edges {
			get(rd, &nd.Edges[j].Char)
			get(rd, &nd.Edges[j].To)
		}
		nd.Out = make([]int32, numOut)
		for j := range nd.Out {
			get(rd, &nd.Out[j])
		}
	}

	var numPat uint32
	get(rd, &numPat)
	if rd.err != nil {
		return nil, rd.err
	}
	patLen := make(map[int32]int, numPat)
	for i := uint32(0); i < numPat; i++ {
		var id, l int32
		get(rd, &id)
		get(rd, &l)
		if l <= 0 {
			return nil, fmt.Errorf("core: pattern %d has length %d", id, l)
		}
		patLen[id] = int(l)
	}

	trie, err := ac.Rebuild(nodes, patLen)
	if err != nil {
		if rd.err != nil {
			return nil, rd.err
		}
		return nil, err
	}
	m := &Machine{
		Trie:       trie,
		Opts:       Options{D2PerChar: int(d2), D3PerChar: int(d3), MaxDepth: int(maxDepth), Backend: BackendAuto},
		generation: nextGeneration(),
	}
	if err := m.Opts.validate(); err != nil {
		return nil, err
	}

	for c := 0; c < 256; c++ {
		get(rd, &m.Defaults.D1[c])
	}
	for c := 0; c < 256; c++ {
		var n uint8
		get(rd, &n)
		m.Defaults.D2[c] = make([]D2Entry, n)
		for j := range m.Defaults.D2[c] {
			get(rd, &m.Defaults.D2[c][j].Prev)
			get(rd, &m.Defaults.D2[c][j].State)
		}
	}
	for c := 0; c < 256; c++ {
		var n uint8
		get(rd, &n)
		m.Defaults.D3[c] = make([]D3Entry, n)
		for j := range m.Defaults.D3[c] {
			get(rd, &m.Defaults.D3[c][j].Prev2)
			get(rd, &m.Defaults.D3[c][j].Prev1)
			get(rd, &m.Defaults.D3[c][j].State)
		}
	}

	m.Stored = make([][]Transition, numNodes)
	for s := range m.Stored {
		var n uint16
		get(rd, &n)
		if rd.err != nil {
			return nil, rd.err
		}
		m.Stored[s] = make([]Transition, n)
		for j := range m.Stored[s] {
			get(rd, &m.Stored[s][j].Char)
			get(rd, &m.Stored[s][j].To)
		}
	}

	var i64 int64
	var f64 uint64
	st := &m.Stats
	get(rd, &i64)
	st.States = int(i64)
	get(rd, &st.OriginalPointers)
	get(rd, &f64)
	st.OriginalAvg = math.Float64frombits(f64)
	get(rd, &i64)
	st.D1Count = int(i64)
	get(rd, &i64)
	st.D2Count = int(i64)
	get(rd, &i64)
	st.D3Count = int(i64)
	get(rd, &st.StoredAfterD1)
	get(rd, &st.StoredAfterD12)
	get(rd, &st.StoredAfterD123)
	get(rd, &f64)
	st.AvgAfterD1 = math.Float64frombits(f64)
	get(rd, &f64)
	st.AvgAfterD12 = math.Float64frombits(f64)
	get(rd, &f64)
	st.AvgAfterD123 = math.Float64frombits(f64)
	get(rd, &st.StoredPointers)
	get(rd, &f64)
	st.AvgStored = math.Float64frombits(f64)
	get(rd, &i64)
	st.MaxStoredPerState = int(i64)
	get(rd, &f64)
	st.Reduction = math.Float64frombits(f64)
	if rd.err != nil {
		return nil, rd.err
	}
	if rd.r.Len() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in snapshot", rd.r.Len())
	}
	// Validate state references in defaults and stored transitions.
	check := func(s int32) error {
		if s != ac.None && (s < 0 || s >= int32(numNodes)) {
			return fmt.Errorf("core: snapshot references state %d of %d", s, numNodes)
		}
		return nil
	}
	for c := 0; c < 256; c++ {
		if err := check(m.Defaults.D1[c]); err != nil {
			return nil, err
		}
		for _, e := range m.Defaults.D2[c] {
			if err := check(e.State); err != nil {
				return nil, err
			}
		}
		for _, e := range m.Defaults.D3[c] {
			if err := check(e.State); err != nil {
				return nil, err
			}
		}
	}
	for _, list := range m.Stored {
		for _, tr := range list {
			if err := check(tr.To); err != nil {
				return nil, err
			}
		}
	}
	// Bake the scan kernels for the restored machine. The snapshot predates
	// the popularity tally, so Compile re-derives dense-tier promotion
	// from the move rows; runtime-only options (DenseStates/PairStates/
	// Backend) are not part of the format and take their defaults (auto).
	// The lossy prefilter stage only ships if it proves the superset
	// contract, like in Build.
	m.prog = Compile(m)
	if m.prog != nil {
		m.acc = CompileAccel(m)
		m.pre = CompilePrefilter(m)
		if m.pre != nil && m.VerifySuperset() != nil {
			m.pre = nil
		}
	}
	return m, nil
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
