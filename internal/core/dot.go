package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ac"
)

// DotOptions controls WriteDot rendering.
type DotOptions struct {
	// ShowDefaults draws the default transitions resolvable at each state
	// (dashed edges), reconstructing the paper's Figure 2 panels. Without
	// it only the stored pointers are drawn (plus the trie skeleton).
	ShowDefaults bool
	// MaxStates aborts rendering for machines too large to visualize
	// (0 = 200).
	MaxStates int
}

// WriteDot renders the machine as a Graphviz digraph in the style of the
// paper's Figures 1 and 2: one circle per state labeled with the character
// reaching it (double circle for match states), solid edges for stored
// transition pointers, dotted edges for the trie skeleton where no stored
// pointer survived, and optionally dashed edges for the lookup-table
// defaults.
func (m *Machine) WriteDot(w io.Writer, opts DotOptions) error {
	max := opts.MaxStates
	if max == 0 {
		max = 200
	}
	n := m.Trie.NumStates()
	if n > max {
		return fmt.Errorf("core: machine has %d states; raise DotOptions.MaxStates (%d) to render anyway", n, max)
	}
	var sb strings.Builder
	sb.WriteString("digraph machine {\n")
	sb.WriteString("  rankdir=LR;\n  node [shape=circle, fontname=\"Helvetica\"];\n")
	for s := int32(0); s < int32(n); s++ {
		nd := m.Trie.Nodes[s]
		label := "start"
		if s != ac.Root {
			label = printableChar(nd.Char)
		}
		shape := ""
		if m.Trie.HasOutput(s) {
			shape = ", shape=doublecircle"
		}
		fmt.Fprintf(&sb, "  s%d [label=\"%s\\n#%d\"%s];\n", s, label, s, shape)
	}
	// Trie skeleton (dotted when the goto edge was compressed away).
	for s := int32(0); s < int32(n); s++ {
		for _, e := range m.Trie.Nodes[s].Edges {
			if m.StoredAt(s, e.Char) == e.To {
				continue // drawn below as a stored pointer
			}
			fmt.Fprintf(&sb, "  s%d -> s%d [style=dotted, label=\"%s\"];\n",
				s, e.To, printableChar(e.Char))
		}
	}
	// Stored pointers.
	for s := int32(0); s < int32(n); s++ {
		for _, tr := range m.Stored[s] {
			fmt.Fprintf(&sb, "  s%d -> s%d [label=\"%s\"];\n",
				s, tr.To, printableChar(tr.Char))
		}
	}
	if opts.ShowDefaults {
		fmt.Fprintf(&sb, "  lut [shape=box, label=\"lookup\\ntable\"];\n")
		for c := 0; c < 256; c++ {
			ch := byte(c)
			if d1 := m.Defaults.D1[c]; d1 != ac.None {
				fmt.Fprintf(&sb, "  lut -> s%d [style=dashed, label=\"d1 %s\"];\n", d1, printableChar(ch))
			}
			for _, e := range m.Defaults.D2[c] {
				fmt.Fprintf(&sb, "  lut -> s%d [style=dashed, label=\"d2 %s%s\"];\n",
					e.State, printableChar(e.Prev), printableChar(ch))
			}
			for _, e := range m.Defaults.D3[c] {
				fmt.Fprintf(&sb, "  lut -> s%d [style=dashed, label=\"d3 %s%s%s\"];\n",
					e.State, printableChar(e.Prev2), printableChar(e.Prev1), printableChar(ch))
			}
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func printableChar(c byte) string {
	if c >= 0x21 && c <= 0x7E && c != '"' && c != '\\' {
		return string(c)
	}
	return fmt.Sprintf("x%02X", c)
}
