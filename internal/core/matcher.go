package core

import "repro/internal/ac"

// Scanner carries the per-packet scan state of one matching engine. It is
// a thin facade over a ScanBackend: the backend owns the architectural
// registers (Figure 5: input character, previous 2 input characters,
// current state, stream position) and the scan loops; the Scanner adds the
// match scratch buffer that Scan replays through the caller's callback.
//
// Which backend a Scanner runs is decided by the machine's configuration
// (Options.Backend, resolved at Build) or pinned explicitly with
// NewScannerFor. All backends keep identical registers and emit identical
// match sequences, so callers may select purely on performance.
type Scanner struct {
	b ScanBackend
	// gen is the compile generation of the machine this scanner was checked
	// out from, stamped at NewScannerFor — the tag a hot-reload control
	// plane audits to prove no scanner state leaked across generations.
	gen uint64
	// scratch buffers Scan's matches between ScanAppend and the caller's
	// emit callback, reused across calls.
	scratch []ac.Match
}

// NewScanner returns a scanner positioned at the start of a packet,
// running the machine's configured backend.
func (m *Machine) NewScanner() *Scanner {
	s, err := m.NewScannerFor(m.backend)
	if err != nil {
		// Build validates the configured backend against the compiled
		// artifacts, so this is unreachable for built or loaded machines;
		// hand-assembled machines carry no backend name and resolve to
		// auto above.
		panic(err)
	}
	return s
}

// Backend reports the name of the backend this scanner runs.
func (s *Scanner) Backend() string { return s.b.Name() }

// Reset rewinds the scanner to start-of-packet: start state, empty history.
// The history must be invalidated between packets — stale history bytes
// from a previous packet could otherwise satisfy a depth-2/3 default
// comparison that the current packet's bytes do not justify.
func (s *Scanner) Reset() { s.b.Reset() }

// SkipAhead invalidates the scan state as Reset does (start state, empty
// history — a match must never span bytes the scanner did not see) but
// advances the position by n unseen bytes, so match end offsets emitted
// after a reassembly gap skip remain absolute in the flow's byte stream.
// n <= 0 is a no-op: no bytes were skipped, so no register — state,
// history or position — moves, on any backend.
func (s *Scanner) SkipAhead(n int) { s.b.SkipAhead(n) }

// Step consumes one input byte and reports the new state. Exactly one
// transition is taken per byte — the guaranteed 1 character/cycle property.
func (s *Scanner) Step(c byte) int32 { return s.b.Step(c) }

// State returns the current automaton state.
func (s *Scanner) State() int32 { return s.b.Registers().State }

// Pos returns the number of bytes consumed since Reset.
func (s *Scanner) Pos() int { return s.b.Registers().Pos }

// Registers returns the architectural register snapshot — identical across
// backends after any operation sequence; the lockstep equivalence tests
// diff this view.
func (s *Scanner) Registers() Registers { return s.b.Registers() }

// Scan consumes data, invoking emit for every match. It continues from the
// scanner's current state; call Reset first for a fresh packet. Matches are
// emitted in increasing end-offset order (one machine scans left to right),
// exactly the sequence ScanAppend would append. The matches are gathered by
// the backend's chunk loop and replayed to emit — so emit observes the
// scanner's end-of-chunk registers (Pos, State), not the per-match
// position.
func (s *Scanner) Scan(data []byte, emit func(ac.Match)) {
	matches := s.b.ScanAppend(data, s.scratch[:0])
	// Detach the buffer while replaying: an emit callback that reenters
	// this scanner must not rewrite the slice being iterated (it grabs a
	// fresh one, and the headers swap below).
	s.scratch = nil
	for _, m := range matches {
		emit(m)
	}
	s.scratch = matches[:0]
}

// ScanAppend consumes data like Scan but appends matches to out and returns
// the extended slice instead of invoking a callback, so steady-state
// scanning allocates nothing once the caller's buffer has grown. The scan
// loop is the backend's: the baked flat kernel, the reference slice walk,
// or the two-stage prefiltered pipeline. All must stay exactly equivalent
// to Machine.Next; any change to the stored-pointer or default-rule step
// applies to every backend.
func (s *Scanner) ScanAppend(data []byte, out []ac.Match) []ac.Match {
	return s.b.ScanAppend(data, out)
}

// FindAll scans one whole packet and returns its matches.
func (m *Machine) FindAll(data []byte) []ac.Match {
	return m.NewScanner().ScanAppend(data, nil)
}
