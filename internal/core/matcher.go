package core

import "repro/internal/ac"

// Scanner carries the per-packet scan state of one matching engine: the
// current automaton state and the two-character input history the default
// rule compares against. It mirrors the registers of the hardware engine
// (Figure 5): input character, previous 2 input characters, current state.
//
// When the machine has a baked Program (the default), ScanAppend and Scan
// execute the flat kernel; Step and the prog-less fallback run the
// reference Machine.Next path. Both paths keep the same registers, so a
// caller may mix them freely.
type Scanner struct {
	m      *Machine
	prog   *Program
	state  int32
	h1, h2 int16
	pos    int
	// scratch buffers Scan's matches between ScanAppend and the caller's
	// emit callback, reused across calls.
	scratch []ac.Match
}

// NewScanner returns a scanner positioned at the start of a packet.
func (m *Machine) NewScanner() *Scanner {
	s := &Scanner{m: m, prog: m.prog}
	s.Reset()
	return s
}

// newReferenceScanner returns a scanner pinned to the slice-walking
// Machine.Next path regardless of the machine's baked program — the oracle
// the baked kernel is verified against.
func (m *Machine) newReferenceScanner() *Scanner {
	s := &Scanner{m: m}
	s.Reset()
	return s
}

// Reset rewinds the scanner to start-of-packet: start state, empty history.
// The history must be invalidated between packets — stale history bytes
// from a previous packet could otherwise satisfy a depth-2/3 default
// comparison that the current packet's bytes do not justify.
func (s *Scanner) Reset() {
	s.state = ac.Root
	s.h1, s.h2 = HistNone, HistNone
	s.pos = 0
}

// SkipAhead invalidates the scan state as Reset does (start state, empty
// history — a match must never span bytes the scanner did not see) but
// advances the position by n unseen bytes, so match end offsets emitted
// after a reassembly gap skip remain absolute in the flow's byte stream.
func (s *Scanner) SkipAhead(n int) {
	s.state = ac.Root
	s.h1, s.h2 = HistNone, HistNone
	s.pos += n
}

// Step consumes one input byte and reports the new state. Exactly one
// transition is taken per byte — the guaranteed 1 character/cycle property.
func (s *Scanner) Step(c byte) int32 {
	s.state = s.m.Next(s.state, c, s.h2, s.h1)
	s.h2 = s.h1
	s.h1 = int16(c)
	s.pos++
	return s.state
}

// State returns the current automaton state.
func (s *Scanner) State() int32 { return s.state }

// Pos returns the number of bytes consumed since Reset.
func (s *Scanner) Pos() int { return s.pos }

// Scan consumes data, invoking emit for every match. It continues from the
// scanner's current state; call Reset first for a fresh packet. Matches are
// emitted in increasing end-offset order (one machine scans left to right),
// exactly the sequence ScanAppend would append. On a baked machine the
// matches are gathered by the flat kernel and replayed to emit — so emit
// observes the scanner's end-of-chunk registers (Pos, State), not the
// per-match position; the reference path stays on the one-Step-per-byte
// form so the oracle transition logic lives in exactly two places
// (Machine.Next and the inlined reference loop in ScanAppend).
func (s *Scanner) Scan(data []byte, emit func(ac.Match)) {
	if s.prog != nil {
		matches := s.ScanAppend(data, s.scratch[:0])
		// Detach the buffer while replaying: an emit callback that
		// reenters this scanner must not rewrite the slice being
		// iterated (it grabs a fresh one, and the headers swap below).
		s.scratch = nil
		for _, m := range matches {
			emit(m)
		}
		s.scratch = matches[:0]
		return
	}
	t := s.m.Trie
	for _, c := range data {
		st := s.Step(c)
		if t.HasOutput(st) {
			t.EmitOutputs(st, s.pos, emit)
		}
	}
}

// ScanAppend consumes data like Scan but appends matches to out and returns
// the extended slice instead of invoking a callback, so steady-state
// scanning allocates nothing once the caller's buffer has grown. On a
// baked machine this runs the flat Program kernel — dense rows for the hot
// near-root states, packed CSR stored pointers and the fused-history
// lookup table elsewhere; the fallback inlines the reference transition
// step. Both must stay exactly equivalent to Machine.Next; any change to
// the stored-pointer or default-rule step applies to all three.
func (s *Scanner) ScanAppend(data []byte, out []ac.Match) []ac.Match {
	if p := s.prog; p != nil {
		state, hist, pos, out := p.scanAppend(s.state, fuseHist(s.h2, s.h1), s.pos, data, out)
		s.state, s.pos = state, pos
		s.h2, s.h1 = splitHist(hist)
		return out
	}
	m, t := s.m, s.m.Trie
	state, h1, h2, pos := s.state, s.h1, s.h2, s.pos
	maxDepth := m.Opts.MaxDepth
	for _, c := range data {
		if to := m.StoredAt(state, c); to != ac.None {
			state = to
		} else {
			state = m.Defaults.Resolve(c, h2, h1, maxDepth)
		}
		h2, h1 = h1, int16(c)
		pos++
		if t.HasOutput(state) {
			out = t.AppendOutputs(state, pos, out)
		}
	}
	s.state, s.h1, s.h2, s.pos = state, h1, h2, pos
	return out
}

// FindAll scans one whole packet and returns its matches.
func (m *Machine) FindAll(data []byte) []ac.Match {
	return m.NewScanner().ScanAppend(data, nil)
}
