package core

import "repro/internal/ac"

// Scanner carries the per-packet scan state of one matching engine: the
// current automaton state and the two-character input history the default
// rule compares against. It mirrors the registers of the hardware engine
// (Figure 5): input character, previous 2 input characters, current state.
type Scanner struct {
	m      *Machine
	state  int32
	h1, h2 int16
	pos    int
}

// NewScanner returns a scanner positioned at the start of a packet.
func (m *Machine) NewScanner() *Scanner {
	s := &Scanner{m: m}
	s.Reset()
	return s
}

// Reset rewinds the scanner to start-of-packet: start state, empty history.
// The history must be invalidated between packets — stale history bytes
// from a previous packet could otherwise satisfy a depth-2/3 default
// comparison that the current packet's bytes do not justify.
func (s *Scanner) Reset() {
	s.state = ac.Root
	s.h1, s.h2 = HistNone, HistNone
	s.pos = 0
}

// Step consumes one input byte and reports the new state. Exactly one
// transition is taken per byte — the guaranteed 1 character/cycle property.
func (s *Scanner) Step(c byte) int32 {
	s.state = s.m.Next(s.state, c, s.h2, s.h1)
	s.h2 = s.h1
	s.h1 = int16(c)
	s.pos++
	return s.state
}

// State returns the current automaton state.
func (s *Scanner) State() int32 { return s.state }

// Pos returns the number of bytes consumed since Reset.
func (s *Scanner) Pos() int { return s.pos }

// Scan consumes data, invoking emit for every match. It continues from the
// scanner's current state; call Reset first for a fresh packet.
func (s *Scanner) Scan(data []byte, emit func(ac.Match)) {
	t := s.m.Trie
	for _, c := range data {
		st := s.Step(c)
		if t.HasOutput(st) {
			t.EmitOutputs(st, s.pos, emit)
		}
	}
}

// FindAll scans one whole packet and returns its matches.
func (m *Machine) FindAll(data []byte) []ac.Match {
	var out []ac.Match
	sc := m.NewScanner()
	sc.Scan(data, func(mt ac.Match) { out = append(out, mt) })
	return out
}
