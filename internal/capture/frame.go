package capture

import "repro/internal/nids"

// Frame builders — the translator's inverse, used by the committed corpus
// generator (cmd/pcapgen) and the tests. They emit Ethernet II frames with
// deterministic MAC addresses and zero checksums (the translator, like any
// software sensor behind a checksum-offloading NIC, never inspects them),
// and pad every frame to the 60-byte Ethernet minimum the way a real NIC
// would — which is exactly what forces the translator's IP total-length
// clamp to be correct: without it the pad bytes would leak into small
// packets' payloads and corrupt the reassembled stream.

// FrameOptions customizes a built frame beyond the common case.
type FrameOptions struct {
	// VLAN, when non-zero, inserts one 802.1Q tag with this VLAN ID.
	VLAN uint16
	// IPOptions appends raw IPv4 option bytes (length must be a multiple
	// of 4, at most 40), growing the IHL accordingly.
	IPOptions []byte
	// FragField, when non-zero, is written verbatim into the IPv4
	// flags/fragment-offset field — set 0x2000 (MF) or an offset to build
	// fragment frames.
	FragField uint16
	// NoPad suppresses padding to the 60-byte Ethernet minimum.
	NoPad bool
}

const ethMinFrame = 60 // minimum Ethernet frame length, FCS excluded

// TCPFrame builds Ethernet+IPv4+TCP carrying payload. flags takes the
// capture package's flag bits (FlagSYN/FlagFIN/FlagRST; FlagSeq is
// implied — every TCP segment carries its sequence number on the wire).
func TCPFrame(t nids.FiveTuple, seq uint32, flags byte, payload []byte, opt FrameOptions) []byte {
	tcp := make([]byte, 20+len(payload))
	be16(tcp[0:], t.SrcPort)
	be16(tcp[2:], t.DstPort)
	be32(tcp[4:], seq)
	tcp[12] = 5 << 4   // data offset: 5 words, no TCP options
	var fb byte = 0x10 // ACK, the steady-state bit
	if flags&FlagSYN != 0 {
		fb = 0x02 // a bare SYN has no ACK
	}
	if flags&FlagFIN != 0 {
		fb |= 0x01
	}
	if flags&FlagRST != 0 {
		fb |= 0x04
	}
	tcp[13] = fb
	be16(tcp[14:], 65535) // window
	copy(tcp[20:], payload)
	return frame(t, nids.ProtoTCP, tcp, opt)
}

// UDPFrame builds Ethernet+IPv4+UDP carrying payload.
func UDPFrame(t nids.FiveTuple, payload []byte, opt FrameOptions) []byte {
	udp := make([]byte, 8+len(payload))
	be16(udp[0:], t.SrcPort)
	be16(udp[2:], t.DstPort)
	be16(udp[4:], uint16(8+len(payload)))
	copy(udp[8:], payload)
	return frame(t, nids.ProtoUDP, udp, opt)
}

// IPFrame builds Ethernet+IPv4 with an arbitrary transport payload for the
// protocol in t.Proto (ICMP echo bytes, say).
func IPFrame(t nids.FiveTuple, transport []byte, opt FrameOptions) []byte {
	return frame(t, t.Proto, transport, opt)
}

// ARPFrame builds a broadcast ARP request — a non-IP frame the translator
// must count and skip.
func ARPFrame() []byte {
	f := make([]byte, 14+28)
	fillMACs(f, 0xff)
	f[12], f[13] = 0x08, 0x06 // EtherType ARP
	// Hardware/protocol types and a who-has body; the translator never
	// looks past the EtherType.
	copy(f[14:], []byte{0, 1, 8, 0, 6, 4, 0, 1})
	return pad(f)
}

// frame assembles Ethernet(+VLAN)+IPv4(+options) around a transport PDU.
func frame(t nids.FiveTuple, proto byte, transport []byte, opt FrameOptions) []byte {
	ihl := 20 + len(opt.IPOptions)
	if len(opt.IPOptions)%4 != 0 || len(opt.IPOptions) > 40 {
		panic("capture: IPv4 options must be a multiple of 4 bytes, at most 40")
	}
	ethLen := 14
	if opt.VLAN != 0 {
		ethLen += 4
	}
	f := make([]byte, ethLen+ihl+len(transport))
	fillMACs(f, 0x02)
	if opt.VLAN != 0 {
		f[12], f[13] = 0x81, 0x00
		be16(f[14:], opt.VLAN)
		f[16], f[17] = 0x08, 0x00
	} else {
		f[12], f[13] = 0x08, 0x00
	}
	ip := f[ethLen:]
	ip[0] = 0x40 | byte(ihl/4)
	be16(ip[2:], uint16(ihl+len(transport)))
	be16(ip[6:], opt.FragField)
	ip[8] = 64 // TTL
	ip[9] = proto
	be32(ip[12:], t.SrcIP)
	be32(ip[16:], t.DstIP)
	copy(ip[20:], opt.IPOptions)
	copy(ip[ihl:], transport)
	if opt.NoPad {
		return f
	}
	return pad(f)
}

func pad(f []byte) []byte {
	for len(f) < ethMinFrame {
		f = append(f, 0)
	}
	return f
}

func fillMACs(f []byte, dstFirst byte) {
	f[0] = dstFirst
	for i := 1; i < 6; i++ {
		f[i] = 0x11
	}
	f[6] = 0x02
	for i := 7; i < 12; i++ {
		f[i] = 0x22
	}
}

func be16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func be32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
