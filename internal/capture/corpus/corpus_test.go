package corpus

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/capture"
	"repro/internal/nids"
	"repro/internal/reassembly"
)

// countAll counts every occurrence of pat in b, overlapping included —
// the same semantics as the engine's FindAll.
func countAll(b, pat []byte) int {
	n := 0
	for off := 0; ; {
		i := bytes.Index(b[off:], pat)
		if i < 0 {
			return n
		}
		n++
		off += i + 1
	}
}

// TestCorpusDeterminism: building a corpus twice yields identical bytes —
// the property the committed files and the drift guard depend on.
func TestCorpusDeterminism(t *testing.T) {
	for _, build := range []func() *Corpus{HTTPMixed, EvasionWrap} {
		a, b := build(), build()
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: two builds differ", a.Name)
		}
	}
}

// TestCorpusTruthReassembly replays each corpus through a Translator and
// per-direction reassembly streams — the same machinery the gateway uses —
// and requires the recovered streams, stateless payloads and translator
// accounting to equal the corpus's declared ground truth exactly. This is
// the corpus validating itself bottom-up; the root package's scenario
// tests then validate the full gateway against the same truth.
func TestCorpusTruthReassembly(t *testing.T) {
	for _, c := range All() {
		t.Run(c.Name, func(t *testing.T) {
			src, err := capture.NewSource(bytes.NewReader(c.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			type dir struct {
				asm *reassembly.Stream
				got bytes.Buffer
			}
			flows := map[nids.FiveTuple]*dir{}
			var stateless []PacketTruth
			for {
				pkt, err := src.Next()
				if err != nil {
					break
				}
				if pkt.Flags&capture.FlagSeq == 0 {
					stateless = append(stateless, PacketTruth{Tuple: pkt.Tuple, Payload: pkt.Payload})
					continue
				}
				d := flows[pkt.Tuple]
				if d == nil {
					d = &dir{asm: reassembly.NewStream(reassembly.Config{})}
					flows[pkt.Tuple] = d
				}
				var fl reassembly.Flags
				if pkt.Flags&capture.FlagFIN != 0 {
					fl |= reassembly.FIN
				}
				if pkt.Flags&capture.FlagSYN != 0 {
					fl |= reassembly.SYN
				}
				if pkt.Flags&capture.FlagRST != 0 {
					fl |= reassembly.RST
				}
				d.asm.Segment(pkt.Seq, pkt.Payload, fl, 0, func(chunk []byte, skipped int) {
					if skipped != 0 {
						t.Errorf("flow %v: unexpected gap skip of %d bytes", pkt.Tuple, skipped)
					}
					d.got.Write(chunk)
				})
			}

			if len(flows) != len(c.TCPFlows) {
				t.Errorf("reassembled %d TCP directions, truth has %d", len(flows), len(c.TCPFlows))
			}
			for _, truth := range c.TCPFlows {
				d := flows[truth.Tuple]
				if d == nil {
					t.Errorf("flow %v: never seen", truth.Tuple)
					continue
				}
				if !bytes.Equal(d.got.Bytes(), truth.Stream) {
					t.Errorf("flow %v: reassembled %d bytes != truth %d bytes",
						truth.Tuple, d.got.Len(), len(truth.Stream))
				}
			}

			if len(stateless) != len(c.Stateless) {
				t.Fatalf("delivered %d stateless packets, truth has %d", len(stateless), len(c.Stateless))
			}
			for i, truth := range c.Stateless {
				if stateless[i].Tuple != truth.Tuple || !bytes.Equal(stateless[i].Payload, truth.Payload) {
					t.Errorf("stateless packet %d: delivered payload differs from truth", i)
				}
			}

			got, want := src.Stats(), c.Stats
			got.PayloadBytes, want.PayloadBytes = 0, 0 // derivable, not asserted
			if got != want {
				t.Errorf("translator stats:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestCorpusOracleCounts pins the per-rule oracle counts for both corpora.
// These are the numbers the CI sensor-smoke job gates on; changing a
// corpus definition must consciously update them here and in ci.yml.
func TestCorpusOracleCounts(t *testing.T) {
	want := map[string]int{
		"http-mixed":   9, // one plant per rule, plus etc-passwd again in the truncated UDP record
		"evasion-wrap": 7,
	}
	for _, c := range All() {
		total := 0
		perRule := map[string]int{}
		for _, r := range Rules() {
			pat := []byte(r.Content)
			n := 0
			for _, f := range c.TCPFlows {
				n += countAll(f.Stream, pat)
			}
			for _, p := range c.Stateless {
				n += countAll(p.Payload, pat)
			}
			perRule[r.Name] = n
			total += n
		}
		if total != want[c.Name] {
			t.Errorf("%s: oracle total %d, want %d (per rule: %v)", c.Name, total, want[c.Name], perRule)
		}
		viaMethod := c.OracleMatches(func(stream []byte) int {
			n := 0
			for _, r := range Rules() {
				n += countAll(stream, []byte(r.Content))
			}
			return n
		})
		if viaMethod != total {
			t.Errorf("%s: OracleMatches %d != recount %d", c.Name, viaMethod, total)
		}
	}
}

// TestCorpusPlantsAreIntentional: every rule matches somewhere across the
// corpora (no dead rules), and the fragment canary's pattern appears in
// the skipped frame but not in any truth stream from that tuple.
func TestCorpusPlantsAreIntentional(t *testing.T) {
	for _, r := range Rules() {
		found := false
		for _, c := range All() {
			if c.OracleMatches(func(s []byte) int { return countAll(s, []byte(r.Content)) }) > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("rule %q never matches in any corpus", r.Name)
		}
	}
}

// Example of the expected per-corpus record counts, pinned so that an
// accidental edit to a corpus builder shows up as a diff here before it
// shows up as a binary diff in testdata.
func TestCorpusShape(t *testing.T) {
	for _, c := range All() {
		if len(c.Records) == 0 || len(c.TCPFlows) == 0 {
			t.Fatalf("%s: degenerate corpus", c.Name)
		}
		sum := fmt.Sprintf("%s: %d records, %d flows, %d stateless",
			c.Name, len(c.Records), len(c.TCPFlows), len(c.Stateless))
		want := map[string]string{
			"http-mixed":   "http-mixed: 38 records, 8 flows, 7 stateless",
			"evasion-wrap": "evasion-wrap: 28 records, 5 flows, 0 stateless",
		}[c.Name]
		if sum != want {
			t.Errorf("corpus shape changed:\n got %s\nwant %s", sum, want)
		}
	}
}
