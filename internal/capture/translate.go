package capture

import (
	"fmt"
	"io"

	"repro/internal/nids"
)

// TCP control-flag bits for Packet.Flags. The values mirror the gateway's
// TCPFlags (and internal/traffic's), so a feed can pass them through; the
// gateway still translates explicitly rather than relying on the
// coincidence.
const (
	FlagFIN byte = 1 << 0
	FlagSYN byte = 1 << 1
	FlagRST byte = 1 << 2
	FlagSeq byte = 1 << 7 // Seq is meaningful: route through TCP reassembly
)

// Packet is one translated, scannable packet in the gateway's model. For
// TCP segments, Seq is the raw TCP sequence number of Payload[0] (of the
// SYN itself on a SYN segment — exactly the gateway's contract) and Flags
// carries FlagSeq plus any SYN/FIN/RST bits. For UDP and other IP
// protocols, Seq and Flags are zero and the packet takes the stateless
// batch path. Payload is a copy; it never aliases the capture buffer, so
// handing it to a Gateway (which takes ownership) is safe.
type Packet struct {
	Tuple   nids.FiveTuple
	Seq     uint32
	Flags   byte
	Payload []byte
}

// TranslateStats counts every frame by its fate. Frames is the total;
// TCPSegments+UDPPackets+OtherIP is what was delivered; the remaining
// counters classify the skips. Nothing is ever silently discarded.
type TranslateStats struct {
	Frames      uint64 // frames offered to the translator
	TCPSegments uint64 // delivered TCP segments (reassembly path)
	UDPPackets  uint64 // delivered UDP packets (stateless path)
	OtherIP     uint64 // delivered other-IP-protocol packets (stateless path)

	NonIP     uint64 // skipped: not IPv4 (ARP, IPv6, LLC, unknown EtherType)
	Fragments uint64 // skipped: IPv4 fragments (no IP-level reassembly)
	Short     uint64 // skipped: frame ends inside a link/IP/TCP/UDP header
	EmptyTCP  uint64 // skipped: payload-less TCP with no SYN/FIN/RST (pure ACKs)

	VLANTags     uint64 // 802.1Q/802.1ad tags stripped (tags, not frames)
	Truncated    uint64 // delivered frames whose payload the capture cut short
	PayloadBytes uint64 // payload bytes delivered
}

// Translator turns link-layer frames into Packets. One Translator serves
// one capture (its link type is fixed at construction); it is not safe for
// concurrent use.
type Translator struct {
	link  uint32
	stats TranslateStats
}

// NewTranslator returns a translator for the given pcap link type.
func NewTranslator(linkType uint32) (*Translator, error) {
	switch linkType {
	case LinkEthernet, LinkRawIP:
		return &Translator{link: linkType}, nil
	}
	return nil, fmt.Errorf("capture: unsupported link type %d (want Ethernet %d or raw IP %d)",
		linkType, LinkEthernet, LinkRawIP)
}

// Stats returns the running frame accounting.
func (t *Translator) Stats() TranslateStats { return t.stats }

// EtherType values the Ethernet parser acts on.
const (
	etherTypeIPv4  = 0x0800
	etherTypeVLAN  = 0x8100 // 802.1Q
	etherTypeQinQ  = 0x88a8 // 802.1ad
	etherTypeQinQ2 = 0x9100 // legacy QinQ
)

// Frame translates one captured frame. origLen is the frame's on-the-wire
// length (Record.OrigLen); when the capture truncated the frame, the
// translated payload is clamped to the captured bytes and the frame counts
// as Truncated. ok is false when the frame was skipped (see TranslateStats
// for why).
func (t *Translator) Frame(data []byte, origLen int) (pkt Packet, ok bool) {
	t.stats.Frames++
	ip := data
	if t.link == LinkEthernet {
		ip, ok = t.stripEthernet(data)
		if !ok {
			return Packet{}, false
		}
	}
	return t.ipv4(ip, origLen > len(data))
}

// stripEthernet removes the 14-byte Ethernet II header plus up to two
// stacked VLAN tags, returning the IPv4 payload.
func (t *Translator) stripEthernet(data []byte) ([]byte, bool) {
	if len(data) < 14 {
		t.stats.Short++
		return nil, false
	}
	etherType := uint16(data[12])<<8 | uint16(data[13])
	off := 14
	for tags := 0; tags < 2; tags++ {
		switch etherType {
		case etherTypeVLAN, etherTypeQinQ, etherTypeQinQ2:
			if len(data) < off+4 {
				t.stats.Short++
				return nil, false
			}
			etherType = uint16(data[off+2])<<8 | uint16(data[off+3])
			off += 4
			t.stats.VLANTags++
		default:
			tags = 2
		}
	}
	if etherType != etherTypeIPv4 {
		t.stats.NonIP++
		return nil, false
	}
	return data[off:], true
}

// ipv4 parses the IP header and dispatches on the transport protocol.
// wireTruncated records whether the capture already cut the frame short of
// its wire length; a total-length field pointing past the captured bytes
// independently marks truncation, while a total length *shorter* than the
// captured bytes is Ethernet minimum-frame padding and is stripped.
func (t *Translator) ipv4(b []byte, wireTruncated bool) (Packet, bool) {
	if len(b) < 20 {
		t.stats.Short++
		return Packet{}, false
	}
	if b[0]>>4 != 4 {
		t.stats.NonIP++ // IPv6 or garbage
		return Packet{}, false
	}
	ihl := int(b[0]&0x0f) * 4
	totalLen := int(b[2])<<8 | int(b[3])
	if ihl < 20 || totalLen < ihl {
		t.stats.Short++
		return Packet{}, false
	}
	truncated := wireTruncated
	if totalLen > len(b) {
		truncated = true // snap length cut inside the IP payload
	} else {
		b = b[:totalLen] // strip link-layer padding
	}
	if len(b) < ihl {
		t.stats.Short++
		return Packet{}, false
	}
	// Fragments are skipped whole: first fragments (MF set, offset 0)
	// would deliver a stream prefix with no way to ever complete it, and
	// later fragments carry no transport header at all.
	if fragField := uint16(b[6])<<8 | uint16(b[7]); fragField&0x3fff != 0 {
		t.stats.Fragments++
		return Packet{}, false
	}
	tuple := nids.FiveTuple{
		SrcIP: uint32(b[12])<<24 | uint32(b[13])<<16 | uint32(b[14])<<8 | uint32(b[15]),
		DstIP: uint32(b[16])<<24 | uint32(b[17])<<16 | uint32(b[18])<<8 | uint32(b[19]),
		Proto: b[9],
	}
	payload := b[ihl:]
	switch tuple.Proto {
	case nids.ProtoTCP:
		return t.tcp(tuple, payload, truncated)
	case nids.ProtoUDP:
		return t.udp(tuple, payload, truncated)
	}
	t.stats.OtherIP++
	return t.deliver(tuple, 0, 0, payload, truncated), true
}

func (t *Translator) tcp(tuple nids.FiveTuple, b []byte, truncated bool) (Packet, bool) {
	if len(b) < 20 {
		t.stats.Short++
		return Packet{}, false
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < 20 {
		t.stats.Short++
		return Packet{}, false
	}
	if len(b) < dataOff {
		// The capture cut inside the TCP options; the payload boundary is
		// unknowable, so the segment cannot be delivered.
		t.stats.Short++
		return Packet{}, false
	}
	tuple.SrcPort = uint16(b[0])<<8 | uint16(b[1])
	tuple.DstPort = uint16(b[2])<<8 | uint16(b[3])
	seq := uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7])
	flags := FlagSeq
	if b[13]&0x01 != 0 {
		flags |= FlagFIN
	}
	if b[13]&0x02 != 0 {
		flags |= FlagSYN
	}
	if b[13]&0x04 != 0 {
		flags |= FlagRST
	}
	payload := b[dataOff:]
	if len(payload) == 0 && flags == FlagSeq {
		// A pure ACK moves no stream bytes and no lifecycle state; skipping
		// it here saves the whole pipeline trip for the most common packet
		// on a real link.
		t.stats.EmptyTCP++
		return Packet{}, false
	}
	t.stats.TCPSegments++
	return t.deliver(tuple, seq, flags, payload, truncated), true
}

func (t *Translator) udp(tuple nids.FiveTuple, b []byte, truncated bool) (Packet, bool) {
	if len(b) < 8 {
		t.stats.Short++
		return Packet{}, false
	}
	tuple.SrcPort = uint16(b[0])<<8 | uint16(b[1])
	tuple.DstPort = uint16(b[2])<<8 | uint16(b[3])
	udpLen := int(b[4])<<8 | int(b[5])
	payload := b[8:]
	if udpLen >= 8 && udpLen-8 < len(payload) {
		payload = payload[:udpLen-8]
	} else if udpLen > 8+len(payload) {
		truncated = true
	}
	t.stats.UDPPackets++
	return t.deliver(tuple, 0, 0, payload, truncated), true
}

// deliver finalizes a scannable packet: the payload is copied out of the
// capture buffer (the gateway takes ownership of what it ingests) and the
// delivery counters advance.
func (t *Translator) deliver(tuple nids.FiveTuple, seq uint32, flags byte, payload []byte, truncated bool) Packet {
	if truncated {
		t.stats.Truncated++
	}
	t.stats.PayloadBytes += uint64(len(payload))
	var owned []byte
	if len(payload) > 0 {
		owned = make([]byte, len(payload))
		copy(owned, payload)
	}
	return Packet{Tuple: tuple, Seq: seq, Flags: flags, Payload: owned}
}

// Source fuses a Reader and a Translator into a pull iterator of scannable
// packets — the shape a replaying gateway consumes.
type Source struct {
	r *Reader
	t *Translator
}

// NewSource opens a pcap stream and validates its link type.
func NewSource(r io.Reader) (*Source, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	tr, err := NewTranslator(rd.Header().LinkType)
	if err != nil {
		return nil, err
	}
	return &Source{r: rd, t: tr}, nil
}

// Header returns the underlying pcap file header.
func (s *Source) Header() FileHeader { return s.r.Header() }

// Stats returns the translator's frame accounting so far.
func (s *Source) Stats() TranslateStats { return s.t.Stats() }

// Next returns the next scannable packet, transparently skipping frames
// the translator cannot deliver (each skip is counted in Stats). It
// returns io.EOF at a clean end of file and io.ErrUnexpectedEOF (wrapped)
// on a truncated capture.
func (s *Source) Next() (Packet, error) {
	for {
		rec, err := s.r.Next()
		if err != nil {
			return Packet{}, err
		}
		if pkt, ok := s.t.Frame(rec.Data, int(rec.OrigLen)); ok {
			return pkt, nil
		}
	}
}
