// Package capture is the capture-to-verdict edge: it reads real packet
// captures (classic libpcap files, pure Go, no cgo) and translates their
// link-layer frames into the gateway's packet model — 5-tuple, TCP sequence
// number and control flags, payload — so recorded traffic can flow through
// the same reassembly, verdict and scan pipeline the synthetic workloads
// exercise. The package is the seam ROADMAP item 5 names: the v2 gateway
// frame format was designed for exactly this translation, and committed
// pcap corpora become scenario regression tests with per-flow FindAll
// oracles (see testdata/pcap and the pcap scenario tests in the root
// package).
//
// Three layers, composable separately:
//
//   - Reader/Writer: the classic libpcap container (magic 0xa1b2c3d4 and
//     the nanosecond 0xa1b23c4d variant, both byte orders, snaplen
//     truncation preserved through OrigLen). Next reuses one record buffer,
//     so reading a multi-gigabyte trace allocates per payload, not per
//     record.
//   - Translator: link-layer frame → Packet. Ethernet (including stacked
//     802.1Q/802.1ad VLAN tags) and raw-IP link types; IPv4 with options
//     (IHL honoured, total-length clamp strips Ethernet padding); TCP with
//     options (data offset honoured), sequence numbers and SYN/FIN/RST;
//     UDP and other IP protocols as stateless packets. Frames the pipeline
//     cannot scan (non-IPv4, fragments, header-truncated captures,
//     payload-less ACKs) are counted, never silently dropped.
//   - Source: Reader + Translator fused into a pull iterator of scannable
//     packets, the shape Gateway.ReplayPcap consumes.
//
// The translator is deliberately conservative: anything it cannot parse
// completely and unambiguously is skipped and accounted in Stats rather
// than delivered half-parsed, because a half-parsed segment would corrupt a
// flow's reassembled stream and break the byte-exactness contract the scan
// backends are proven against.
package capture

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Link types (pcap "network" field) the translator understands.
const (
	// LinkEthernet is DLT_EN10MB: 14-byte Ethernet II headers, optionally
	// VLAN-tagged.
	LinkEthernet uint32 = 1
	// LinkRawIP is DLT_RAW: frames begin directly at the IP header.
	LinkRawIP uint32 = 101
)

// pcap container constants. The magic doubles as the byte-order probe: a
// little-endian writer emits d4 c3 b2 a1 on the wire, a big-endian writer
// a1 b2 c3 d4, and the nanosecond variants swap the inner bytes.
const (
	magicMicro       = 0xa1b2c3d4
	magicNano        = 0xa1b23c4d
	fileHeaderLen    = 24
	recordHeaderLen  = 16
	defaultSnapLen   = 65535
	maxSaneRecordLen = 64 << 20 // no real link produces a 64 MiB packet; larger means corruption
)

// FileHeader describes one pcap file's container parameters.
type FileHeader struct {
	BigEndian    bool   // byte order of all container fields
	Nano         bool   // record timestamps carry nanoseconds, not microseconds
	SnapLen      uint32 // capture length limit records were truncated to
	LinkType     uint32 // link-layer type of every record (LinkEthernet, ...)
	VersionMajor uint16
	VersionMinor uint16
}

// Record is one captured frame. Data is valid only until the next call to
// Reader.Next — it aliases the reader's internal buffer; copy to retain.
type Record struct {
	Sec     uint32 // capture timestamp, seconds
	Subsec  uint32 // microseconds, or nanoseconds when the file header says Nano
	OrigLen uint32 // original frame length on the wire; > len(Data) when truncated at SnapLen
	Data    []byte
}

// Truncated reports whether the capture cut this frame short of its
// on-the-wire length.
func (r Record) Truncated() bool { return int(r.OrigLen) > len(r.Data) }

// Reader reads classic libpcap files in either byte order, with either
// timestamp resolution.
type Reader struct {
	r   io.Reader
	hdr FileHeader
	ord binary.ByteOrder
	buf []byte
	max uint32
}

// NewReader reads and validates the 24-byte global header. It rejects
// pcapng files (a different container; convert with `tshark -F libpcap`)
// and unknown magics.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("capture: truncated pcap file header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	rd := &Reader{r: r}
	switch be := binary.BigEndian.Uint32(hdr[:4]); be {
	case magicMicro, magicNano:
		rd.ord = binary.BigEndian
		rd.hdr.BigEndian = true
		rd.hdr.Nano = be == magicNano
	default:
		switch le := binary.LittleEndian.Uint32(hdr[:4]); le {
		case magicMicro, magicNano:
			rd.ord = binary.LittleEndian
			rd.hdr.Nano = le == magicNano
		case 0x0a0d0d0a:
			return nil, fmt.Errorf("capture: pcapng container not supported; convert to classic pcap")
		default:
			return nil, fmt.Errorf("capture: bad pcap magic %#08x", be)
		}
	}
	rd.hdr.VersionMajor = rd.ord.Uint16(hdr[4:6])
	rd.hdr.VersionMinor = rd.ord.Uint16(hdr[6:8])
	// hdr[8:16] is thiszone/sigfigs — always zero in practice, ignored.
	rd.hdr.SnapLen = rd.ord.Uint32(hdr[16:20])
	rd.hdr.LinkType = rd.ord.Uint32(hdr[20:24])
	rd.max = rd.hdr.SnapLen
	if rd.max == 0 || rd.max > maxSaneRecordLen {
		rd.max = maxSaneRecordLen
	}
	return rd, nil
}

// Header returns the validated file header.
func (r *Reader) Header() FileHeader { return r.hdr }

// Next returns the next record. It returns io.EOF exactly at a record
// boundary and io.ErrUnexpectedEOF when the file ends inside a record — a
// truncated capture file is a distinct, detectable condition, not a clean
// end of feed. Record.Data aliases an internal buffer reused across calls.
func (r *Reader) Next() (Record, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("capture: truncated record header: %w", err)
		}
		return Record{}, err // io.EOF: clean end of file
	}
	rec := Record{
		Sec:     r.ord.Uint32(hdr[0:4]),
		Subsec:  r.ord.Uint32(hdr[4:8]),
		OrigLen: r.ord.Uint32(hdr[12:16]),
	}
	incl := r.ord.Uint32(hdr[8:12])
	if incl > r.max {
		return Record{}, fmt.Errorf("capture: record capture length %d exceeds limit %d (corrupt file?)", incl, r.max)
	}
	if incl > rec.OrigLen {
		return Record{}, fmt.Errorf("capture: record capture length %d exceeds wire length %d", incl, rec.OrigLen)
	}
	if cap(r.buf) < int(incl) {
		r.buf = make([]byte, incl)
	}
	r.buf = r.buf[:incl]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("capture: truncated record body: %w", err)
	}
	rec.Data = r.buf
	return rec, nil
}

// WriterConfig parameterizes a pcap Writer. The zero value writes a
// little-endian, microsecond, Ethernet file with the conventional 65535
// snap length.
type WriterConfig struct {
	BigEndian bool
	Nano      bool
	SnapLen   uint32 // 0 selects 65535
	LinkType  uint32 // 0 selects LinkEthernet
}

// Writer writes classic libpcap files, byte-for-byte deterministic for a
// given configuration and record sequence — which is what lets the
// committed corpora under testdata/pcap be regenerated and diffed.
type Writer struct {
	w   io.Writer
	ord binary.ByteOrder
	cfg WriterConfig
}

// NewWriter writes the global header and returns a record writer.
func NewWriter(w io.Writer, cfg WriterConfig) (*Writer, error) {
	if cfg.SnapLen == 0 {
		cfg.SnapLen = defaultSnapLen
	}
	if cfg.LinkType == 0 {
		cfg.LinkType = LinkEthernet
	}
	var ord binary.ByteOrder = binary.LittleEndian
	if cfg.BigEndian {
		ord = binary.BigEndian
	}
	magic := uint32(magicMicro)
	if cfg.Nano {
		magic = magicNano
	}
	var hdr [fileHeaderLen]byte
	ord.PutUint32(hdr[0:4], magic)
	ord.PutUint16(hdr[4:6], 2)
	ord.PutUint16(hdr[6:8], 4)
	ord.PutUint32(hdr[16:20], cfg.SnapLen)
	ord.PutUint32(hdr[20:24], cfg.LinkType)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w, ord: ord, cfg: cfg}, nil
}

// WriteRecord writes one frame. origLen is the frame's on-the-wire length;
// pass len(data) for untruncated frames, or more to record a frame the
// capture cut short at the snap length.
func (w *Writer) WriteRecord(sec, subsec uint32, data []byte, origLen int) error {
	if origLen < len(data) {
		return fmt.Errorf("capture: origLen %d shorter than captured data %d", origLen, len(data))
	}
	if uint32(len(data)) > w.cfg.SnapLen {
		return fmt.Errorf("capture: record length %d exceeds snap length %d", len(data), w.cfg.SnapLen)
	}
	var hdr [recordHeaderLen]byte
	w.ord.PutUint32(hdr[0:4], sec)
	w.ord.PutUint32(hdr[4:8], subsec)
	w.ord.PutUint32(hdr[8:12], uint32(len(data)))
	w.ord.PutUint32(hdr[12:16], uint32(origLen))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}
