package capture

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/nids"
)

func tcpTuple(sport, dport uint16) nids.FiveTuple {
	return nids.FiveTuple{
		SrcIP:   nids.IPv4(10, 0, 0, 1),
		DstIP:   nids.IPv4(192, 168, 0, 1),
		SrcPort: sport, DstPort: dport,
		Proto: nids.ProtoTCP,
	}
}

// TestPcapRoundTrip writes and re-reads files in every container variant:
// both byte orders × both timestamp resolutions, truncation preserved.
func TestPcapRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 100)
	for _, cfg := range []WriterConfig{
		{},
		{BigEndian: true},
		{Nano: true},
		{BigEndian: true, Nano: true},
	} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(1000, 42, payload, len(payload)); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(1001, 43, payload[:60], len(payload)); err != nil { // snap-truncated
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		hdr := r.Header()
		if hdr.BigEndian != cfg.BigEndian || hdr.Nano != cfg.Nano {
			t.Fatalf("%+v: header round-trip got %+v", cfg, hdr)
		}
		if hdr.SnapLen != 65535 || hdr.LinkType != LinkEthernet || hdr.VersionMajor != 2 || hdr.VersionMinor != 4 {
			t.Fatalf("%+v: bad defaults in header %+v", cfg, hdr)
		}
		rec, err := r.Next()
		if err != nil || rec.Sec != 1000 || rec.Subsec != 42 || !bytes.Equal(rec.Data, payload) || rec.Truncated() {
			t.Fatalf("%+v: record 1 = %+v, %v", cfg, rec, err)
		}
		rec, err = r.Next()
		if err != nil || !rec.Truncated() || len(rec.Data) != 60 || rec.OrigLen != 100 {
			t.Fatalf("%+v: record 2 = %+v, %v", cfg, rec, err)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("%+v: want clean EOF, got %v", cfg, err)
		}
	}
}

// TestPcapTruncatedFile proves every mid-structure cut is a detectable
// error, never a silent clean EOF — a rotated-out or disk-full capture
// must fail loudly, not lose its tail.
func TestPcapTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, WriterConfig{})
	if err := w.WriteRecord(1, 2, bytes.Repeat([]byte("y"), 80), 80); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Inside the global header.
	if _, err := NewReader(bytes.NewReader(full[:10])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("global header cut: got %v", err)
	}
	// Inside a record header.
	r, err := NewReader(bytes.NewReader(full[:fileHeaderLen+7]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("record header cut: got %v", err)
	}
	// Inside a record body.
	r, err = NewReader(bytes.NewReader(full[:len(full)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("record body cut: got %v", err)
	}
}

func TestPcapBadHeaders(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("zero magic accepted")
	}
	png := append([]byte{0x0a, 0x0d, 0x0d, 0x0a}, make([]byte, 20)...)
	if _, err := NewReader(bytes.NewReader(png)); err == nil || !bytes.Contains([]byte(err.Error()), []byte("pcapng")) {
		t.Fatalf("pcapng magic: got %v", err)
	}

	// A record claiming more captured bytes than wire bytes is corrupt.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, WriterConfig{})
	_ = w.WriteRecord(0, 0, []byte("abc"), 3)
	raw := buf.Bytes()
	// orig_len is at offset 12 of the record header; shrink it below incl_len.
	raw[fileHeaderLen+12] = 1
	raw[fileHeaderLen+13] = 0
	raw[fileHeaderLen+14] = 0
	raw[fileHeaderLen+15] = 0
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("incl_len > orig_len accepted")
	}
}

func TestTranslateTCP(t *testing.T) {
	tr, err := NewTranslator(LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	tup := tcpTuple(1234, 80)
	payload := []byte("GET /cgi-bin/phf HTTP/1.0")
	f := TCPFrame(tup, 0xdeadbeef, FlagSYN, payload, FrameOptions{})
	pkt, ok := tr.Frame(f, len(f))
	if !ok {
		t.Fatal("TCP frame skipped")
	}
	if pkt.Tuple != tup || pkt.Seq != 0xdeadbeef || pkt.Flags != FlagSeq|FlagSYN {
		t.Fatalf("translated %+v", pkt)
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Fatalf("payload %q", pkt.Payload)
	}
	// The payload must be an owned copy: the gateway takes ownership while
	// the reader reuses its record buffer.
	f[len(f)-1] ^= 0xff
	if !bytes.Equal(pkt.Payload, payload) {
		t.Fatal("payload aliases the frame buffer")
	}

	// FIN and RST map; a pure ACK is skipped.
	f = TCPFrame(tup, 5, FlagFIN, nil, FrameOptions{})
	if pkt, ok = tr.Frame(f, len(f)); !ok || pkt.Flags != FlagSeq|FlagFIN || len(pkt.Payload) != 0 {
		t.Fatalf("FIN: ok=%v %+v", ok, pkt)
	}
	f = TCPFrame(tup, 6, FlagRST, nil, FrameOptions{})
	if pkt, ok = tr.Frame(f, len(f)); !ok || pkt.Flags != FlagSeq|FlagRST {
		t.Fatalf("RST: ok=%v %+v", ok, pkt)
	}
	f = TCPFrame(tup, 7, 0, nil, FrameOptions{})
	if _, ok = tr.Frame(f, len(f)); ok {
		t.Fatal("pure ACK delivered")
	}
	st := tr.Stats()
	if st.TCPSegments != 3 || st.EmptyTCP != 1 || st.Frames != 4 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTranslateEthernetPadding: a 1-byte payload rides a frame padded to
// the 60-byte Ethernet minimum; the IP total-length clamp must shed the
// pad bytes or the flow's stream gains garbage.
func TestTranslateEthernetPadding(t *testing.T) {
	tr, _ := NewTranslator(LinkEthernet)
	f := TCPFrame(tcpTuple(1, 2), 9, 0, []byte("Z"), FrameOptions{})
	if len(f) != ethMinFrame {
		t.Fatalf("frame not padded: %d", len(f))
	}
	pkt, ok := tr.Frame(f, len(f))
	if !ok || string(pkt.Payload) != "Z" {
		t.Fatalf("ok=%v payload=%q", ok, pkt.Payload)
	}
}

func TestTranslateIPv4Options(t *testing.T) {
	tr, _ := NewTranslator(LinkEthernet)
	opts := []byte{0x07, 0x04, 0x00, 0x00, 0x01, 0x01, 0x01, 0x00} // record-route + NOPs, 8 bytes
	payload := []byte("/etc/passwd")
	f := TCPFrame(tcpTuple(4444, 80), 77, 0, payload, FrameOptions{IPOptions: opts})
	pkt, ok := tr.Frame(f, len(f))
	if !ok || !bytes.Equal(pkt.Payload, payload) || pkt.Seq != 77 {
		t.Fatalf("IPv4 options: ok=%v %+v", ok, pkt)
	}
}

func TestTranslateVLAN(t *testing.T) {
	tr, _ := NewTranslator(LinkEthernet)
	payload := []byte("tagged")
	f := TCPFrame(tcpTuple(5, 6), 1, 0, payload, FrameOptions{VLAN: 42})
	pkt, ok := tr.Frame(f, len(f))
	if !ok || !bytes.Equal(pkt.Payload, payload) {
		t.Fatalf("VLAN: ok=%v %+v", ok, pkt)
	}
	if tr.Stats().VLANTags != 1 {
		t.Fatalf("stats %+v", tr.Stats())
	}
}

func TestTranslateNonTCP(t *testing.T) {
	tr, _ := NewTranslator(LinkEthernet)
	udpT := nids.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 53, DstPort: 4242, Proto: nids.ProtoUDP}
	f := UDPFrame(udpT, []byte("dns-ish payload bytes"), FrameOptions{})
	pkt, ok := tr.Frame(f, len(f))
	if !ok || pkt.Tuple != udpT || pkt.Flags != 0 || string(pkt.Payload) != "dns-ish payload bytes" {
		t.Fatalf("UDP: ok=%v %+v", ok, pkt)
	}

	icmpT := nids.FiveTuple{SrcIP: 3, DstIP: 4, Proto: nids.ProtoICMP}
	f = IPFrame(icmpT, []byte{8, 0, 0, 0, 0, 1, 0, 1, 'p', 'i', 'n', 'g'}, FrameOptions{})
	pkt, ok = tr.Frame(f, len(f))
	if !ok || pkt.Tuple.Proto != nids.ProtoICMP || len(pkt.Payload) != 12 {
		t.Fatalf("ICMP: ok=%v %+v", ok, pkt)
	}

	if _, ok = tr.Frame(ARPFrame(), ethMinFrame); ok {
		t.Fatal("ARP delivered")
	}
	// An IPv6 frame: EtherType 0x86dd.
	v6 := ARPFrame()
	v6[12], v6[13] = 0x86, 0xdd
	if _, ok = tr.Frame(v6, len(v6)); ok {
		t.Fatal("IPv6 delivered")
	}
	st := tr.Stats()
	if st.UDPPackets != 1 || st.OtherIP != 1 || st.NonIP != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTranslateFragmentsAndShort(t *testing.T) {
	tr, _ := NewTranslator(LinkEthernet)
	tup := tcpTuple(1, 2)
	// First fragment (MF set) and a continuation fragment (offset 100).
	for _, frag := range []uint16{0x2000, 100} {
		f := TCPFrame(tup, 1, 0, []byte("fragmented-data"), FrameOptions{FragField: frag})
		if _, ok := tr.Frame(f, len(f)); ok {
			t.Fatalf("fragment %#x delivered", frag)
		}
	}
	// Cut inside the IP header, and inside the TCP header.
	f := TCPFrame(tup, 1, 0, []byte("body"), FrameOptions{NoPad: true})
	if _, ok := tr.Frame(f[:20], len(f)); ok {
		t.Fatal("IP-header stub delivered")
	}
	if _, ok := tr.Frame(f[:14+20+10], len(f)); ok {
		t.Fatal("TCP-header stub delivered")
	}
	st := tr.Stats()
	if st.Fragments != 2 || st.Short != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTranslateSnapTruncation: a record whose capture stopped mid-payload
// delivers the captured prefix and is counted Truncated.
func TestTranslateSnapTruncation(t *testing.T) {
	tr, _ := NewTranslator(LinkEthernet)
	payload := bytes.Repeat([]byte("A"), 200)
	f := TCPFrame(tcpTuple(1, 2), 1, 0, payload, FrameOptions{})
	cut := f[:len(f)-150]
	pkt, ok := tr.Frame(cut, len(f))
	if !ok || len(pkt.Payload) != 50 || !bytes.Equal(pkt.Payload, payload[:50]) {
		t.Fatalf("truncated: ok=%v len=%d", ok, len(pkt.Payload))
	}
	if tr.Stats().Truncated != 1 {
		t.Fatalf("stats %+v", tr.Stats())
	}
}

func TestRawIPLinkType(t *testing.T) {
	tr, err := NewTranslator(LinkRawIP)
	if err != nil {
		t.Fatal(err)
	}
	eth := TCPFrame(tcpTuple(9, 10), 3, 0, []byte("raw"), FrameOptions{NoPad: true})
	ip := eth[14:] // strip the Ethernet header: raw-IP frames start at IP
	pkt, ok := tr.Frame(ip, len(ip))
	if !ok || string(pkt.Payload) != "raw" {
		t.Fatalf("raw IP: ok=%v %+v", ok, pkt)
	}
	if _, err := NewTranslator(113); err == nil {
		t.Fatal("unknown link type accepted")
	}
}

// TestSourceSkipsAndEOF: the fused Source yields only scannable packets
// and distinguishes clean EOF from truncation.
func TestSourceSkipsAndEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, WriterConfig{})
	tup := tcpTuple(1000, 80)
	_ = w.WriteRecord(1, 0, ARPFrame(), ethMinFrame)
	f1 := TCPFrame(tup, 10, FlagSYN, nil, FrameOptions{})
	_ = w.WriteRecord(1, 1, f1, len(f1))
	f2 := TCPFrame(tup, 11, 0, []byte("hello"), FrameOptions{})
	_ = w.WriteRecord(1, 2, f2, len(f2))

	s, err := NewSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.Next()
	if err != nil || p1.Flags != FlagSeq|FlagSYN {
		t.Fatalf("p1 %+v %v", p1, err)
	}
	p2, err := s.Next()
	if err != nil || string(p2.Payload) != "hello" {
		t.Fatalf("p2 %+v %v", p2, err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if st := s.Stats(); st.NonIP != 1 || st.TCPSegments != 2 {
		t.Fatalf("stats %+v", st)
	}

	if _, err := s2OrErr(buf.Bytes()[:len(buf.Bytes())-3]); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated source: got %v", err)
	}
}

// s2OrErr drains a source built over raw bytes, returning the terminal
// error.
func s2OrErr(raw []byte) (TranslateStats, error) {
	s, err := NewSource(bytes.NewReader(raw))
	if err != nil {
		return TranslateStats{}, err
	}
	for {
		if _, err := s.Next(); err != nil {
			return s.Stats(), err
		}
	}
}
