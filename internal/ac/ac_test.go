package ac

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/ruleset"
)

// toySet is the paper's running example (Figure 1): he, she, his, hers.
func toySet() *ruleset.Set {
	return &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("he")},
		{ID: 1, Data: []byte("she")},
		{ID: 2, Data: []byte("his")},
		{ID: 3, Data: []byte("hers")},
	}}
}

func mustTrie(t *testing.T, set *ruleset.Set) *Trie {
	t.Helper()
	tr, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestToyTrieShape(t *testing.T) {
	tr := mustTrie(t, toySet())
	// Figure 1: root + h, he, s, sh, she, hi, his, her, hers = 10 states.
	if tr.NumStates() != 10 {
		t.Fatalf("states = %d, want 10", tr.NumStates())
	}
	// Root has exactly two goto edges: h and s.
	if got := len(tr.Nodes[Root].Edges); got != 2 {
		t.Fatalf("root edges = %d, want 2", got)
	}
}

func TestToyFailFunction(t *testing.T) {
	tr := mustTrie(t, toySet())
	// Locate states by walking goto edges.
	h := tr.edgeTo(Root, 'h')
	he := tr.edgeTo(h, 'e')
	her := tr.edgeTo(he, 'r')
	hers := tr.edgeTo(her, 's')
	hi := tr.edgeTo(h, 'i')
	his := tr.edgeTo(hi, 's')
	s := tr.edgeTo(Root, 's')
	sh := tr.edgeTo(s, 'h')
	she := tr.edgeTo(sh, 'e')
	for name, st := range map[string]int32{"h": h, "he": he, "her": her,
		"hers": hers, "hi": hi, "his": his, "s": s, "sh": sh, "she": she} {
		if st == None {
			t.Fatalf("state %q missing", name)
		}
	}
	cases := []struct {
		name string
		st   int32
		fail int32
	}{
		{"h", h, Root},
		{"he", he, Root},
		{"her", her, Root},
		{"hers", hers, s},
		{"hi", hi, Root},
		{"his", his, s},
		{"s", s, Root},
		{"sh", sh, h},
		{"she", she, he},
	}
	for _, tc := range cases {
		if got := tr.Nodes[tc.st].Fail; got != tc.fail {
			t.Errorf("fail(%s) = %d, want %d", tc.name, got, tc.fail)
		}
	}
}

func TestToyMatchUshers(t *testing.T) {
	tr := mustTrie(t, toySet())
	got := tr.FindAll([]byte("ushers"))
	want := []Match{
		{PatternID: 0, End: 4}, // "he" in us[he]rs
		{PatternID: 1, End: 4}, // "she" in u[she]rs
		{PatternID: 3, End: 6}, // "hers" in us[hers]
	}
	if !MatchesEqual(got, want) {
		t.Fatalf("FindAll(ushers) = %v, want %v", got, want)
	}
}

func TestToyMoveStats(t *testing.T) {
	tr := mustTrie(t, toySet())
	st := tr.ComputeMoveStats()
	// Hand count of non-root move targets per state:
	// root:2 h:4 he:3 s:2 sh:4 she:3 hi:2 his:2 her:2 hers:2 = 26.
	// (The paper's §III.B quotes an average of 2.5 for Figure 1; exhaustive
	// enumeration gives 26/10 = 2.6 — the paper appears not to count one of
	// the self-transitions. The compressed counts in Figure 2 (1.1, 0.5,
	// 0.1) are reproduced exactly; see package core's tests.)
	if st.NonRootPointers != 26 {
		t.Fatalf("non-root pointers = %d, want 26", st.NonRootPointers)
	}
	if st.States != 10 {
		t.Fatalf("states = %d, want 10", st.States)
	}
}

func TestMoveMatchesRowIteration(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 200, Seed: 3})
	tr := mustTrie(t, set)
	tr.ForEachMoveRow(func(s int32, row []int32) {
		// Spot-check 16 characters per state to bound test time.
		for c := 0; c < 256; c += 16 {
			if got := tr.Move(s, byte(c)); got != row[c] {
				t.Fatalf("state %d char %#x: Move=%d row=%d", s, c, got, row[c])
			}
		}
	})
}

func TestForEachMoveRowVisitsAllStatesOnce(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 100, Seed: 4})
	tr := mustTrie(t, set)
	seen := make(map[int32]int)
	tr.ForEachMoveRow(func(s int32, row []int32) { seen[s]++ })
	if len(seen) != tr.NumStates() {
		t.Fatalf("visited %d states, trie has %d", len(seen), tr.NumStates())
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("state %d visited %d times", s, n)
		}
	}
}

func TestFindAllAgainstOracleRandom(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 150, Seed: 5})
	tr := mustTrie(t, set)
	oracle := NewOracle(set)
	src := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		n := 200 + src.Intn(800)
		data := make([]byte, n)
		for i := range data {
			data[i] = src.Byte()
		}
		// Seed some true matches.
		for k := 0; k < 5; k++ {
			p := set.Patterns[src.Intn(set.Len())]
			if len(p.Data) < n {
				off := src.Intn(n - len(p.Data))
				copy(data[off:], p.Data)
			}
		}
		got := tr.FindAll(data)
		want := oracle.FindAll(data)
		if !MatchesEqual(got, want) {
			t.Fatalf("trial %d: DFA %d matches, oracle %d", trial, len(got), len(want))
		}
	}
}

func TestFailMatcherAgreesWithDFA(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 150, Seed: 6})
	tr := mustTrie(t, set)
	fm := NewFailMatcher(tr)
	src := rng.New(88)
	data := make([]byte, 3000)
	for i := range data {
		data[i] = src.Byte()
	}
	for k := 0; k < 10; k++ {
		p := set.Patterns[src.Intn(set.Len())]
		copy(data[src.Intn(len(data)-len(p.Data)):], p.Data)
	}
	got := fm.FindAll(data)
	want := tr.FindAll(data)
	if !MatchesEqual(got, want) {
		t.Fatalf("fail matcher %d matches, DFA %d", len(got), len(want))
	}
}

func TestFailMatcherStepsExceedOneOnAdversarialInput(t *testing.T) {
	// Patterns engineered so scanning text full of near-misses forces fail
	// transitions: "aaab" makes runs of 'a' walk deep, then each 'c' falls
	// all the way back.
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("aaaaaaab")},
		{ID: 1, Data: []byte("ab")},
	}}
	tr := mustTrie(t, set)
	fm := NewFailMatcher(tr)
	data := bytes.Repeat([]byte("aaaaaaac"), 100)
	fm.FindAll(data)
	if spc := fm.StepsPerChar(); spc <= 1.05 {
		t.Fatalf("adversarial steps/char = %.3f, want > 1.05", spc)
	}
	// The move-function DFA by construction takes exactly 1 step per char;
	// there is nothing to measure — Move is called once per input byte.
}

func TestEmitOutputsIncludesSuffixPatterns(t *testing.T) {
	// "abcde" ends at a state whose fail chain contains "cde" and "e".
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("abcde")},
		{ID: 1, Data: []byte("cde")},
		{ID: 2, Data: []byte("e")},
	}}
	tr := mustTrie(t, set)
	got := tr.FindAll([]byte("abcde"))
	want := []Match{
		{PatternID: 2, End: 5},
		{PatternID: 1, End: 5},
		{PatternID: 0, End: 5},
	}
	if !MatchesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestPatternContainedInAnother(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("issi")},
		{ID: 1, Data: []byte("mississippi")},
		{ID: 2, Data: []byte("ss")},
	}}
	tr := mustTrie(t, set)
	got := tr.FindAll([]byte("mississippi"))
	want := []Match{
		{PatternID: 2, End: 4},
		{PatternID: 0, End: 5},
		{PatternID: 2, End: 7},
		{PatternID: 0, End: 8},
		{PatternID: 1, End: 11},
	}
	if !MatchesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestOverlappingMatchesAllReported(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("aa")},
	}}
	tr := mustTrie(t, set)
	got := tr.FindAll([]byte("aaaa"))
	if len(got) != 3 {
		t.Fatalf("got %d matches of 'aa' in 'aaaa', want 3", len(got))
	}
}

func TestBinaryPatterns(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte{0x90, 0x90, 0x90}},
		{ID: 1, Data: []byte{0x00, 0xFF}},
	}}
	tr := mustTrie(t, set)
	data := []byte{0x90, 0x90, 0x90, 0x90, 0x00, 0xFF}
	got := tr.FindAll(data)
	want := []Match{
		{PatternID: 0, End: 3},
		{PatternID: 0, End: 4},
		{PatternID: 1, End: 6},
	}
	if !MatchesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestNoMatchesInCleanData(t *testing.T) {
	set := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("virus")},
	}}
	tr := mustTrie(t, set)
	if got := tr.FindAll([]byte("perfectly ordinary text")); len(got) != 0 {
		t.Fatalf("unexpected matches: %v", got)
	}
}

func TestEmptyInput(t *testing.T) {
	tr := mustTrie(t, toySet())
	if got := tr.FindAll(nil); len(got) != 0 {
		t.Fatalf("matches on empty input: %v", got)
	}
}

func TestNewRejectsEmptySet(t *testing.T) {
	if _, err := New(&ruleset.Set{}); err == nil {
		t.Fatal("New accepted empty set")
	}
}

func TestNewRejectsInvalidSet(t *testing.T) {
	bad := &ruleset.Set{Patterns: []ruleset.Pattern{{ID: 0, Data: nil}}}
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted invalid set")
	}
}

func TestPatternLen(t *testing.T) {
	tr := mustTrie(t, toySet())
	if got := tr.PatternLen(3); got != 4 {
		t.Fatalf("PatternLen(3) = %d, want 4 (hers)", got)
	}
	if got := tr.PatternLen(99); got != 0 {
		t.Fatalf("PatternLen(99) = %d, want 0", got)
	}
}

func TestDepthsAreTrieDepths(t *testing.T) {
	tr := mustTrie(t, toySet())
	for i, n := range tr.Nodes {
		if i == 0 {
			if n.Depth != 0 {
				t.Fatal("root depth != 0")
			}
			continue
		}
		if n.Depth != tr.Nodes[n.Parent].Depth+1 {
			t.Fatalf("state %d depth %d, parent depth %d", i, n.Depth, tr.Nodes[n.Parent].Depth)
		}
	}
}

func TestMoveNeverReturnsNone(t *testing.T) {
	set := ruleset.MustGenerate(ruleset.GenConfig{N: 50, Seed: 9})
	tr := mustTrie(t, set)
	for s := int32(0); s < int32(tr.NumStates()); s += 7 {
		for c := 0; c < 256; c += 5 {
			if got := tr.Move(s, byte(c)); got < 0 || got >= int32(tr.NumStates()) {
				t.Fatalf("Move(%d,%#x) = %d out of range", s, c, got)
			}
		}
	}
}

// Property: the DFA and the oracle agree on random small instances.
func TestQuickDFAEquivalence(t *testing.T) {
	f := func(seed int64, nPat uint8, nData uint16) bool {
		src := rng.New(seed)
		np := 1 + int(nPat)%12
		set := &ruleset.Set{}
		seen := map[string]bool{}
		for len(set.Patterns) < np {
			l := 1 + src.Intn(6)
			d := make([]byte, l)
			for i := range d {
				d[i] = byte('a' + src.Intn(4)) // tiny alphabet → dense overlaps
			}
			if seen[string(d)] {
				continue
			}
			seen[string(d)] = true
			set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: d})
		}
		tr, err := New(set)
		if err != nil {
			return false
		}
		n := 1 + int(nData)%300
		data := make([]byte, n)
		for i := range data {
			data[i] = byte('a' + src.Intn(4))
		}
		return MatchesEqual(tr.FindAll(data), NewOracle(set).FindAll(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: fail matcher and DFA agree on random small instances.
func TestQuickFailMatcherEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		set := &ruleset.Set{}
		seen := map[string]bool{}
		for len(set.Patterns) < 8 {
			l := 1 + src.Intn(5)
			d := make([]byte, l)
			for i := range d {
				d[i] = byte('x' + src.Intn(3))
			}
			if seen[string(d)] {
				continue
			}
			seen[string(d)] = true
			set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: d})
		}
		tr, err := New(set)
		if err != nil {
			return false
		}
		data := make([]byte, 200)
		for i := range data {
			data[i] = byte('x' + src.Intn(3))
		}
		return MatchesEqual(NewFailMatcher(tr).FindAll(data), tr.FindAll(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
