// Package ac implements the Aho-Corasick multi-pattern matching substrate
// the paper builds on (§III.A): the pattern trie, the failure function, and
// the two classic matching disciplines —
//
//   - the goto/fail automaton, which is memory-lean but may spend several
//     cycles per input character following fail transitions, and
//   - the move-function DFA, which stores every possible transition and
//     guarantees exactly one state transition per input character.
//
// The paper's contribution (package core) compresses the move-function DFA;
// this package supplies the uncompressed machine, bulk iteration over its
// transition rows, and a naive oracle used to cross-check every matcher.
package ac

import (
	"fmt"

	"repro/internal/ruleset"
)

// Root is the state number of the start state.
const Root int32 = 0

// None marks an absent state reference.
const None int32 = -1

// Edge is a goto transition: consuming Char moves to state To, one level
// deeper in the trie.
type Edge struct {
	Char byte
	To   int32
}

// Node is one state of the automaton. Edges hold only the trie (goto)
// transitions, sorted by character; the full move function is derived via
// the fail chain.
type Node struct {
	Parent  int32
	Fail    int32
	OutLink int32 // nearest fail-ancestor with its own outputs, or None
	Depth   int32
	Char    byte    // label of the edge from Parent (undefined for Root)
	Edges   []Edge  // sorted by Char
	Out     []int32 // pattern IDs ending exactly at this state
}

// Trie is the Aho-Corasick automaton for a pattern set.
type Trie struct {
	Nodes []Node
	// patLen maps pattern ID to its length in bytes, for match start
	// computation. IDs are the (possibly sparse) ruleset IDs.
	patLen map[int32]int
}

// Match reports one pattern occurrence. End is the byte offset one past the
// last matched byte; the match occupies [End-Len, End).
type Match struct {
	PatternID int32
	End       int
}

// New builds the trie, failure function and output links for set.
func New(set *ruleset.Set) (*Trie, error) {
	if set.Len() == 0 {
		return nil, fmt.Errorf("ac: empty pattern set")
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("ac: %w", err)
	}
	t := &Trie{
		Nodes:  []Node{{Parent: None, Fail: Root, OutLink: None}},
		patLen: make(map[int32]int, set.Len()),
	}
	for _, p := range set.Patterns {
		t.insert(p)
	}
	t.buildFails()
	return t, nil
}

func (t *Trie) insert(p ruleset.Pattern) {
	cur := Root
	for _, c := range p.Data {
		next := t.edgeTo(cur, c)
		if next == None {
			t.Nodes = append(t.Nodes, Node{
				Parent:  cur,
				Fail:    Root,
				OutLink: None,
				Depth:   t.Nodes[cur].Depth + 1,
				Char:    c,
			})
			next = int32(len(t.Nodes) - 1)
			t.insertEdge(cur, Edge{Char: c, To: next})
		}
		cur = next
	}
	t.Nodes[cur].Out = append(t.Nodes[cur].Out, int32(p.ID))
	t.patLen[int32(p.ID)] = len(p.Data)
}

// edgeTo returns the goto target of (s, c), or None.
func (t *Trie) edgeTo(s int32, c byte) int32 {
	edges := t.Nodes[s].Edges
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if edges[mid].Char < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(edges) && edges[lo].Char == c {
		return edges[lo].To
	}
	return None
}

func (t *Trie) insertEdge(s int32, e Edge) {
	edges := t.Nodes[s].Edges
	lo := 0
	for lo < len(edges) && edges[lo].Char < e.Char {
		lo++
	}
	edges = append(edges, Edge{})
	copy(edges[lo+1:], edges[lo:])
	edges[lo] = e
	t.Nodes[s].Edges = edges
}

// buildFails computes the failure function and output links breadth-first,
// exactly as in Aho & Corasick (1975).
func (t *Trie) buildFails() {
	queue := make([]int32, 0, len(t.Nodes))
	for _, e := range t.Nodes[Root].Edges {
		t.Nodes[e.To].Fail = Root
		queue = append(queue, e.To)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range t.Nodes[u].Edges {
			v := e.To
			// Follow u's fail chain to find the deepest proper suffix state
			// with a goto on e.Char.
			f := t.Nodes[u].Fail
			for f != Root && t.edgeTo(f, e.Char) == None {
				f = t.Nodes[f].Fail
			}
			if w := t.edgeTo(f, e.Char); w != None && w != v {
				t.Nodes[v].Fail = w
			} else {
				t.Nodes[v].Fail = Root
			}
			fail := t.Nodes[v].Fail
			if len(t.Nodes[fail].Out) > 0 {
				t.Nodes[v].OutLink = fail
			} else {
				t.Nodes[v].OutLink = t.Nodes[fail].OutLink
			}
			queue = append(queue, v)
		}
	}
}

// NumStates returns the number of states including the start state. This is
// the "States" column of Table II.
func (t *Trie) NumStates() int { return len(t.Nodes) }

// PatternLen returns the length of pattern id, or 0 if unknown.
func (t *Trie) PatternLen(id int32) int { return t.patLen[id] }

// Move is the full-DFA move function: the state reached from s on input c,
// following the fail chain as needed. It never returns None; missing
// transitions resolve to Root.
func (t *Trie) Move(s int32, c byte) int32 {
	for {
		if next := t.edgeTo(s, c); next != None {
			return next
		}
		if s == Root {
			return Root
		}
		s = t.Nodes[s].Fail
	}
}

// EmitOutputs invokes fn for every pattern that ends at state s (own
// outputs plus those inherited along the fail chain). end is the payload
// offset one past the current byte.
func (t *Trie) EmitOutputs(s int32, end int, fn func(Match)) {
	for cur := s; cur != None; {
		for _, id := range t.Nodes[cur].Out {
			fn(Match{PatternID: id, End: end})
		}
		cur = t.Nodes[cur].OutLink
	}
}

// AppendOutputs appends a Match to out for every pattern that ends at
// state s, walking the same own-outputs-plus-fail-chain as EmitOutputs.
// It is the allocation-free form for hot scan loops: the caller owns the
// buffer and amortizes its growth across packets.
func (t *Trie) AppendOutputs(s int32, end int, out []Match) []Match {
	for cur := s; cur != None; cur = t.Nodes[cur].OutLink {
		for _, id := range t.Nodes[cur].Out {
			out = append(out, Match{PatternID: id, End: end})
		}
	}
	return out
}

// HasOutput reports whether any pattern ends at state s.
func (t *Trie) HasOutput(s int32) bool {
	return len(t.Nodes[s].Out) > 0 || t.Nodes[s].OutLink != None
}

// FindAll scans data with move-function semantics and returns every match
// in order of match end (ties in insertion order).
func (t *Trie) FindAll(data []byte) []Match {
	var out []Match
	s := Root
	for i, c := range data {
		s = t.Move(s, c)
		if t.HasOutput(s) {
			t.EmitOutputs(s, i+1, func(m Match) { out = append(out, m) })
		}
	}
	return out
}

// ForEachMoveRow calls fn once per state with that state's complete
// 256-entry move row (row[c] = Move(s, c)). Rows are computed by a
// depth-first walk of the *fail tree*: a state's row equals its fail
// parent's row overridden by its own goto edges, so the walk reuses one row
// buffer per tree level instead of materializing |states|×256 tables
// (which for the 6,275-string machine would be >100 MB).
//
// The row slice passed to fn is reused after fn returns; copy it to retain.
func (t *Trie) ForEachMoveRow(fn func(s int32, row []int32)) {
	// Children lists of the fail tree.
	failKids := make([][]int32, len(t.Nodes))
	for i := 1; i < len(t.Nodes); i++ {
		f := t.Nodes[i].Fail
		failKids[f] = append(failKids[f], int32(i))
	}
	rootRow := make([]int32, 256)
	for c := 0; c < 256; c++ {
		rootRow[c] = Root
	}
	for _, e := range t.Nodes[Root].Edges {
		rootRow[e.Char] = e.To
	}
	fn(Root, rootRow)

	// Iterative DFS with an explicit stack of (state, row) frames. Row
	// buffers are pooled per depth level.
	type frame struct {
		state int32
		kidIx int
		row   []int32
	}
	var pool [][]int32
	getRow := func() []int32 {
		if n := len(pool); n > 0 {
			r := pool[n-1]
			pool = pool[:n-1]
			return r
		}
		return make([]int32, 256)
	}
	derive := func(parentRow []int32, s int32) []int32 {
		row := getRow()
		copy(row, parentRow)
		for _, e := range t.Nodes[s].Edges {
			row[e.Char] = e.To
		}
		return row
	}
	stack := []frame{{state: Root, row: rootRow}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		kids := failKids[top.state]
		if top.kidIx >= len(kids) {
			if top.state != Root {
				pool = append(pool, top.row)
			}
			stack = stack[:len(stack)-1]
			continue
		}
		child := kids[top.kidIx]
		top.kidIx++
		row := derive(top.row, child)
		fn(child, row)
		stack = append(stack, frame{state: child, row: row})
	}
}

// MoveStats summarizes the uncompressed move-function DFA: the "Original
// Aho-Corasick" block of Table II.
type MoveStats struct {
	States int
	// NonRootPointers counts transitions whose target is not the start
	// state — the pointers that must be stored ("Even only storing the
	// pointers which point to a state other than the start state can lead
	// to large memory usage", §III.B).
	NonRootPointers int64
	AvgPointers     float64
}

// ComputeMoveStats walks every move row and tallies stored-pointer counts.
func (t *Trie) ComputeMoveStats() MoveStats {
	var st MoveStats
	st.States = len(t.Nodes)
	t.ForEachMoveRow(func(s int32, row []int32) {
		for c := 0; c < 256; c++ {
			if row[c] != Root {
				st.NonRootPointers++
			}
		}
	})
	st.AvgPointers = float64(st.NonRootPointers) / float64(st.States)
	return st
}
