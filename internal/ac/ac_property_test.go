package ac

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/ruleset"
)

// pathOf reconstructs the byte string spelled by the path from the root to
// state s.
func pathOf(tr *Trie, s int32) []byte {
	var rev []byte
	for cur := s; cur != Root; cur = tr.Nodes[cur].Parent {
		rev = append(rev, tr.Nodes[cur].Char)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// stateOf returns the trie state spelling exactly s, or None.
func stateOf(tr *Trie, s []byte) int32 {
	cur := Root
	for _, c := range s {
		cur = tr.edgeTo(cur, c)
		if cur == None {
			return None
		}
	}
	return cur
}

// smallTrie builds a trie over a dense random pattern set.
func smallTrie(t testing.TB, seed int64, npat, alpha, maxLen int) *Trie {
	src := rng.New(seed)
	set := &ruleset.Set{}
	seen := map[string]bool{}
	for len(set.Patterns) < npat {
		l := 1 + src.Intn(maxLen)
		d := make([]byte, l)
		for i := range d {
			d[i] = byte('a' + src.Intn(alpha))
		}
		if seen[string(d)] {
			continue
		}
		seen[string(d)] = true
		set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: d})
	}
	tr, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFailIsLongestProperSuffix checks the defining property of the
// Aho-Corasick failure function: fail(s) spells the longest proper suffix
// of path(s) that is itself a trie path.
func TestFailIsLongestProperSuffix(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tr := smallTrie(t, seed, 15, 3, 6)
		for s := int32(1); s < int32(tr.NumStates()); s++ {
			path := pathOf(tr, s)
			want := Root
			for cut := 1; cut < len(path); cut++ {
				if cand := stateOf(tr, path[cut:]); cand != None {
					want = cand
					break // longest first: cut from the left
				}
			}
			if got := tr.Nodes[s].Fail; got != want {
				t.Fatalf("seed %d state %d (%q): fail = %d, want %d",
					seed, s, path, got, want)
			}
		}
	}
}

// TestMoveIsLongestSuffix checks the move function's defining property:
// Move(s, c) spells the longest suffix of path(s)+c that is a trie path.
func TestMoveIsLongestSuffix(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		tr := smallTrie(t, seed, 12, 3, 5)
		for s := int32(0); s < int32(tr.NumStates()); s++ {
			path := pathOf(tr, s)
			for ci := 0; ci < 3; ci++ {
				c := byte('a' + ci)
				full := append(append([]byte{}, path...), c)
				want := Root
				for cut := 0; cut < len(full); cut++ {
					if cand := stateOf(tr, full[cut:]); cand != None {
						want = cand
						break
					}
				}
				if got := tr.Move(s, c); got != want {
					t.Fatalf("seed %d: Move(%q, %q) = %d, want %d", seed, path, c, got, want)
				}
			}
		}
	}
}

// TestOutLinkIsNearestOutputAncestor checks OutLink against a brute-force
// fail-chain walk.
func TestOutLinkIsNearestOutputAncestor(t *testing.T) {
	tr := smallTrie(t, 20, 20, 3, 6)
	for s := int32(1); s < int32(tr.NumStates()); s++ {
		want := None
		for cur := tr.Nodes[s].Fail; ; cur = tr.Nodes[cur].Fail {
			if len(tr.Nodes[cur].Out) > 0 {
				want = cur
				break
			}
			if cur == Root {
				break
			}
		}
		if got := tr.Nodes[s].OutLink; got != want {
			t.Fatalf("state %d: outlink %d, want %d", s, got, want)
		}
	}
}

// TestEmitOutputsExactlySuffixPatterns: the outputs of state s are exactly
// the patterns that are suffixes of path(s).
func TestEmitOutputsExactlySuffixPatterns(t *testing.T) {
	src := rng.New(31)
	set := &ruleset.Set{}
	seen := map[string]bool{}
	for len(set.Patterns) < 12 {
		l := 1 + src.Intn(5)
		d := make([]byte, l)
		for i := range d {
			d[i] = byte('x' + src.Intn(2))
		}
		if seen[string(d)] {
			continue
		}
		seen[string(d)] = true
		set.Patterns = append(set.Patterns, ruleset.Pattern{ID: len(set.Patterns), Data: d})
	}
	tr, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	isSuffix := func(pat, path []byte) bool {
		if len(pat) > len(path) {
			return false
		}
		tail := path[len(path)-len(pat):]
		for i := range pat {
			if tail[i] != pat[i] {
				return false
			}
		}
		return true
	}
	for s := int32(0); s < int32(tr.NumStates()); s++ {
		path := pathOf(tr, s)
		got := map[int32]bool{}
		tr.EmitOutputs(s, 0, func(m Match) {
			if got[m.PatternID] {
				t.Fatalf("state %d emits pattern %d twice", s, m.PatternID)
			}
			got[m.PatternID] = true
		})
		for _, p := range set.Patterns {
			want := isSuffix(p.Data, path)
			if got[int32(p.ID)] != want {
				t.Fatalf("state %d (%q): pattern %d (%q) emitted=%v want %v",
					s, path, p.ID, p.Data, got[int32(p.ID)], want)
			}
		}
	}
}

// Property: rebuilding a trie from its own nodes reproduces an equivalent
// automaton (exercises ac.Rebuild validation on good input).
func TestQuickRebuildRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := smallTrie(t, seed, 10, 3, 5)
		patLen := map[int32]int{}
		for s := range tr.Nodes {
			for _, id := range tr.Nodes[s].Out {
				patLen[id] = tr.PatternLen(id)
			}
		}
		rb, err := Rebuild(tr.Nodes, patLen)
		if err != nil {
			return false
		}
		data := []byte("xyxyyxzabacabxy")
		return MatchesEqual(rb.FindAll(data), tr.FindAll(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildRejectsCorruptNodes(t *testing.T) {
	tr := smallTrie(t, 40, 8, 3, 4)
	patLen := map[int32]int{}
	for s := range tr.Nodes {
		for _, id := range tr.Nodes[s].Out {
			patLen[id] = tr.PatternLen(id)
		}
	}
	corrupt := func(mutate func(nodes []Node)) []Node {
		nodes := make([]Node, len(tr.Nodes))
		copy(nodes, tr.Nodes)
		for i := range nodes {
			nodes[i].Edges = append([]Edge(nil), nodes[i].Edges...)
			nodes[i].Out = append([]int32(nil), nodes[i].Out...)
		}
		mutate(nodes)
		return nodes
	}
	cases := []func(nodes []Node){
		func(n []Node) { n[1].Parent = 9999 },
		func(n []Node) { n[1].Fail = int32(len(n)) },
		func(n []Node) { n[1].Depth = 5 },
		func(n []Node) { n[0].Parent = 0 },
		func(n []Node) {
			if len(n[0].Edges) >= 2 {
				n[0].Edges[0], n[0].Edges[1] = n[0].Edges[1], n[0].Edges[0]
			}
		},
		func(n []Node) { n[2].Out = append(n[2].Out, 9999) },
	}
	for i, mutate := range cases {
		nodes := corrupt(mutate)
		if _, err := Rebuild(nodes, patLen); err == nil {
			t.Errorf("case %d: corrupted nodes accepted", i)
		}
	}
}
