package ac

import "fmt"

// Rebuild reconstructs a Trie from raw node data and pattern lengths, for
// deserialization. It validates the structural invariants a BFS-built trie
// guarantees: indices in range, root at 0, parent depth monotonicity,
// sorted edges, and fail targets strictly shallower than their states.
func Rebuild(nodes []Node, patLen map[int32]int) (*Trie, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ac: no nodes")
	}
	root := nodes[0]
	if root.Parent != None || root.Depth != 0 {
		return nil, fmt.Errorf("ac: state 0 is not a root (parent %d, depth %d)", root.Parent, root.Depth)
	}
	n := int32(len(nodes))
	for i := int32(1); i < n; i++ {
		nd := nodes[i]
		if nd.Parent < 0 || nd.Parent >= n {
			return nil, fmt.Errorf("ac: state %d parent %d out of range", i, nd.Parent)
		}
		if nd.Depth != nodes[nd.Parent].Depth+1 {
			return nil, fmt.Errorf("ac: state %d depth %d inconsistent with parent depth %d",
				i, nd.Depth, nodes[nd.Parent].Depth)
		}
		if nd.Fail < 0 || nd.Fail >= n {
			return nil, fmt.Errorf("ac: state %d fail %d out of range", i, nd.Fail)
		}
		if nodes[nd.Fail].Depth >= nd.Depth {
			return nil, fmt.Errorf("ac: state %d fail %d not shallower", i, nd.Fail)
		}
		if nd.OutLink != None {
			if nd.OutLink < 0 || nd.OutLink >= n {
				return nil, fmt.Errorf("ac: state %d outlink %d out of range", i, nd.OutLink)
			}
			if len(nodes[nd.OutLink].Out) == 0 {
				return nil, fmt.Errorf("ac: state %d outlink %d has no outputs", i, nd.OutLink)
			}
		}
	}
	for i := int32(0); i < n; i++ {
		edges := nodes[i].Edges
		for j, e := range edges {
			if j > 0 && edges[j-1].Char >= e.Char {
				return nil, fmt.Errorf("ac: state %d edges not strictly sorted", i)
			}
			if e.To <= 0 || e.To >= n {
				return nil, fmt.Errorf("ac: state %d edge to %d out of range", i, e.To)
			}
			if nodes[e.To].Parent != i || nodes[e.To].Char != e.Char {
				return nil, fmt.Errorf("ac: state %d edge %q does not match child %d", i, e.Char, e.To)
			}
		}
		for _, id := range nodes[i].Out {
			if _, ok := patLen[id]; !ok {
				return nil, fmt.Errorf("ac: state %d outputs unknown pattern %d", i, id)
			}
		}
	}
	return &Trie{Nodes: nodes, patLen: patLen}, nil
}
