package ac

// FailMatcher scans with the classic goto/fail discipline (§III.A "failure
// function" solution). It produces the same matches as the move-function
// DFA but may take several automaton steps per input character, which is
// exactly the worst-case weakness the paper's architecture eliminates:
// "Multiple fail transitions may have to be followed until the correct
// state is found, wasting many cycles."
//
// Steps counts every goto probe or fail-transition taken, modelling cycles
// spent by a hardware engine that stores only goto transitions. The bench
// harness uses it to demonstrate the guaranteed-throughput advantage on
// adversarial traffic.
type FailMatcher struct {
	t *Trie
	// Steps accumulates automaton transitions across calls to Scan.
	Steps int64
	// Chars accumulates input characters consumed.
	Chars int64
}

// NewFailMatcher wraps t in a goto/fail scanner.
func NewFailMatcher(t *Trie) *FailMatcher {
	return &FailMatcher{t: t}
}

// Scan matches data and appends matches via emit, counting transition steps.
func (m *FailMatcher) Scan(data []byte, emit func(Match)) {
	t := m.t
	s := Root
	for i, c := range data {
		m.Chars++
		for {
			m.Steps++
			if next := t.edgeTo(s, c); next != None {
				s = next
				break
			}
			if s == Root {
				break
			}
			s = t.Nodes[s].Fail
		}
		if t.HasOutput(s) {
			t.EmitOutputs(s, i+1, emit)
		}
	}
}

// FindAll scans data and returns all matches.
func (m *FailMatcher) FindAll(data []byte) []Match {
	var out []Match
	m.Scan(data, func(mt Match) { out = append(out, mt) })
	return out
}

// StepsPerChar reports the average automaton steps per input character over
// everything scanned so far; 1.0 is the ideal the move-function DFA
// guarantees.
func (m *FailMatcher) StepsPerChar() float64 {
	if m.Chars == 0 {
		return 0
	}
	return float64(m.Steps) / float64(m.Chars)
}

// Reset clears the step counters.
func (m *FailMatcher) Reset() {
	m.Steps = 0
	m.Chars = 0
}
