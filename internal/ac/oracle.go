package ac

import (
	"bytes"
	"sort"

	"repro/internal/ruleset"
)

// Oracle is a deliberately naive multi-pattern matcher used as the ground
// truth in tests: no automaton, no shared state, just byte comparisons.
// It is quadratic and must only be used on test-sized inputs.
type Oracle struct {
	patterns []ruleset.Pattern
}

// NewOracle builds an oracle over set.
func NewOracle(set *ruleset.Set) *Oracle {
	o := &Oracle{patterns: make([]ruleset.Pattern, len(set.Patterns))}
	for i, p := range set.Patterns {
		o.patterns[i] = p.Clone()
	}
	return o
}

// FindAll returns every occurrence of every pattern in data, sorted by
// (End, PatternID) so results are directly comparable after normalization.
func (o *Oracle) FindAll(data []byte) []Match {
	var out []Match
	for _, p := range o.patterns {
		for i := 0; i+len(p.Data) <= len(data); i++ {
			if bytes.Equal(data[i:i+len(p.Data)], p.Data) {
				out = append(out, Match{PatternID: int32(p.ID), End: i + len(p.Data)})
			}
		}
	}
	SortMatches(out)
	return out
}

// SortMatches orders matches by (End, PatternID), the canonical order used
// to compare matcher outputs.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		return ms[i].PatternID < ms[j].PatternID
	})
}

// MatchesEqual reports whether two match sets are identical after
// canonical sorting. Both slices are sorted in place.
func MatchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	SortMatches(a)
	SortMatches(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
