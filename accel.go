package dpi

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/hwsim"
	"repro/internal/power"
)

// Device selects an FPGA target for the hardware model.
type Device int

// The two devices the paper implements (§V.B, Table I).
const (
	// Cyclone3 is the low-power Altera Cyclone III EP3C120F484C7:
	// 4 string matching blocks, 233.15 MHz, up to 14.9 Gbps.
	Cyclone3 Device = iota
	// Stratix3 is the Altera Stratix III EP3SE260H780C2: 6 blocks,
	// 460.19 MHz, up to 44.2 Gbps (OC-768).
	Stratix3
	// Stratix3Doubled models §V.D's headroom observation: repurposing the
	// unused M144K RAM doubles each block's state memory.
	Stratix3Doubled
)

func (d Device) model() (device.Device, error) {
	switch d {
	case Cyclone3:
		return device.Cyclone3, nil
	case Stratix3:
		return device.Stratix3, nil
	case Stratix3Doubled:
		return device.Stratix3.WithDoubledBlockMemory(), nil
	}
	return device.Device{}, fmt.Errorf("dpi: unknown device %d", d)
}

// String returns the device name.
func (d Device) String() string {
	m, err := d.model()
	if err != nil {
		return "unknown"
	}
	return m.Name
}

// Accelerator is a functional model of the paper's FPGA design built from
// a compiled matcher: bit-packed block memory images, 6 engines per block,
// group replication or splitting across blocks.
type Accelerator struct {
	matcher *Matcher
	dev     device.Device
	hw      *hwsim.Accelerator
}

// NewAccelerator packs the matcher's group machines into block memory
// images for the device. It fails when a group machine does not fit a
// block (compile with more Groups) or when the device has fewer blocks
// than the matcher has groups.
func NewAccelerator(m *Matcher, d Device) (*Accelerator, error) {
	dev, err := d.model()
	if err != nil {
		return nil, err
	}
	hw, err := hwsim.NewAccelerator(dev, m.grouped)
	if err != nil {
		return nil, err
	}
	return &Accelerator{matcher: m, dev: dev, hw: hw}, nil
}

// ScanPackets scans each payload as an independent packet across the
// accelerator's block sets and returns all matches with PacketID set to the
// payload index, in canonical (PacketID, End, PatternID) order — the same
// guarantee as Engine.ScanPackets, so the hardware model and the software
// engine are byte-for-byte comparable.
func (a *Accelerator) ScanPackets(payloads [][]byte) ([]Match, error) {
	packets := make([]hwsim.Packet, len(payloads))
	for i, p := range payloads {
		packets[i] = hwsim.Packet{ID: i, Payload: p}
	}
	outs, err := a.hw.ScanPackets(packets)
	if err != nil {
		return nil, err
	}
	matches := make([]Match, len(outs))
	for i, o := range outs {
		m := a.matcher.convert(acMatch(o.PatternID, o.End), o.PacketID)
		matches[i] = m
	}
	return matches, nil
}

// Report summarizes the accelerator's modeled implementation.
type Report struct {
	Device         string
	Blocks         int
	Groups         int
	ConcurrentSets int
	StateWordsMax  int // widest group image, per block (capacity check)
	StateWordsCap  int
	MatchWords     int
	MemoryBytes    int // paper-metric total across groups
	FillRatio      float64
	ThroughputGbps float64
	M9KBlocks      int
	LogicElements  int
	MaxPowerW      float64
	PowerAtIdleW   float64
}

// Report returns the modeled resource/performance summary (Tables I-II).
func (a *Accelerator) Report() Report {
	st := a.hw.Stats()
	r := Report{
		Device:         a.dev.Name,
		Blocks:         a.dev.Blocks,
		Groups:         st.Groups,
		ConcurrentSets: st.Sets,
		StateWordsMax:  st.StateWords,
		StateWordsCap:  a.dev.StateWordsPerBlock,
		MatchWords:     st.MatchWords,
		MemoryBytes:    st.TotalBytes,
		FillRatio:      st.FillRatio,
		ThroughputGbps: st.ThroughputBps / 1e9,
		M9KBlocks:      a.dev.M9KEstimate(),
		LogicElements:  a.dev.LogicEstimate(a.dev.Blocks),
	}
	if pm, err := power.ModelFor(a.dev); err == nil {
		r.MaxPowerW = pm.MaxPower()
		r.PowerAtIdleW = pm.PowerAt(0, a.dev.Blocks)
	}
	return r
}

// PowerSweep returns (throughput Gbps, power W) samples across the clock
// range, the series plotted in Figures 7 and 8.
func (a *Accelerator) PowerSweep(steps int) ([][2]float64, error) {
	pm, err := power.ModelFor(a.dev)
	if err != nil {
		return nil, err
	}
	pts, err := pm.Sweep(a.hw.Groups, steps)
	if err != nil {
		return nil, err
	}
	out := make([][2]float64, len(pts))
	for i, p := range pts {
		out[i] = [2]float64{p.ThroughputGbps, p.PowerW}
	}
	return out, nil
}
