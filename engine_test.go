package dpi

// Concurrency and ordering tests for the engine layer: batched ScanPackets
// across the worker pool, concurrent Flow writers, and the canonical
// match-order guarantees shared by FindAll, Scan, Stream and Engine. Run
// with -race to exercise the shared-automaton paths.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/traffic"
)

// enginePayloads builds a deterministic attack-laden workload over rules.
func enginePayloads(t testing.TB, rules *Ruleset, packets, bytes int) [][]byte {
	t.Helper()
	pkts, err := traffic.Generate(rules.InternalSet(), traffic.Config{
		Packets: packets, Bytes: bytes, Seed: 17, AttackDensity: 2, Profile: traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, len(pkts))
	for i, p := range pkts {
		payloads[i] = p.Payload
	}
	return payloads
}

func engineMatcher(t testing.TB, groups int) (*Matcher, [][]byte) {
	t.Helper()
	rules, err := GenerateSnortLike(500, 23)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rules, Config{Groups: groups})
	if err != nil {
		t.Fatal(err)
	}
	return m, enginePayloads(t, rules, 24, 1200)
}

func TestEngineScanPacketsMatchesFindAll(t *testing.T) {
	for _, groups := range []int{1, 3} {
		t.Run(fmt.Sprintf("groups=%d", groups), func(t *testing.T) {
			m, payloads := engineMatcher(t, groups)
			e := m.NewEngine(4)
			got := e.ScanPackets(payloads)

			var want []Match
			total := 0
			for pid, p := range payloads {
				for _, mt := range m.FindAll(p) {
					mt.PacketID = pid
					want = append(want, mt)
				}
				total += len(p)
			}
			if total == 0 || len(want) == 0 {
				t.Fatal("workload produced no matches; test is vacuous")
			}
			if len(got) != len(want) {
				t.Fatalf("engine found %d matches, FindAll %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("match %d: engine %+v, FindAll %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestEngineScanPacketsCanonicalOrder(t *testing.T) {
	m, payloads := engineMatcher(t, 2)
	got := m.NewEngine(8).ScanPackets(payloads)
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		inOrder := a.PacketID < b.PacketID ||
			(a.PacketID == b.PacketID && (a.End < b.End ||
				(a.End == b.End && a.PatternID <= b.PatternID)))
		if !inOrder {
			t.Fatalf("matches %d..%d out of canonical order: %+v then %+v", i-1, i, a, b)
		}
	}
}

func TestEngineEmptyAndTinyBatches(t *testing.T) {
	m, payloads := engineMatcher(t, 1)
	e := m.NewEngine(8)
	if got := e.ScanPackets(nil); len(got) != 0 {
		t.Fatalf("nil batch produced matches: %v", got)
	}
	if got := e.ScanPackets([][]byte{nil, {}}); len(got) != 0 {
		t.Fatalf("empty payloads produced matches: %v", got)
	}
	// A 1-packet batch must not deadlock or skew ordering with 8 workers.
	one := e.ScanPackets(payloads[:1])
	want := m.FindAll(payloads[0])
	if len(one) != len(want) {
		t.Fatalf("1-packet batch found %d, FindAll %d", len(one), len(want))
	}
}

func TestEngineScanPacketsConcurrentCallers(t *testing.T) {
	m, payloads := engineMatcher(t, 2)
	e := m.NewEngine(0)
	want := e.ScanPackets(payloads)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := e.ScanPackets(payloads)
			if len(got) != len(want) {
				errs <- fmt.Sprintf("concurrent caller found %d matches, want %d", len(got), len(want))
				return
			}
			for i := range got {
				if got[i] != want[i] {
					errs <- fmt.Sprintf("concurrent caller match %d = %+v, want %+v", i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestEngineConcurrentFlows(t *testing.T) {
	m, payloads := engineMatcher(t, 2)
	e := m.NewEngine(0)
	var wg sync.WaitGroup
	errs := make(chan string, len(payloads))
	for pid, payload := range payloads {
		wg.Add(1)
		go func(pid int, payload []byte) {
			defer wg.Done()
			var got []Match
			f := e.Flow(func(mt Match) { got = append(got, mt) })
			defer f.Close()
			// Deliver in uneven chunks to cross scanner-state boundaries.
			for off := 0; off < len(payload); {
				n := 1 + (off*7+pid)%97
				if off+n > len(payload) {
					n = len(payload) - off
				}
				if _, err := f.Write(payload[off : off+n]); err != nil {
					errs <- err.Error()
					return
				}
				off += n
			}
			if f.Consumed() != len(payload) {
				errs <- fmt.Sprintf("flow %d consumed %d of %d", pid, f.Consumed(), len(payload))
				return
			}
			want := m.FindAll(payload)
			if len(got) != len(want) {
				errs <- fmt.Sprintf("flow %d found %d matches, FindAll %d", pid, len(got), len(want))
				return
			}
			for i := range got {
				if got[i] != want[i] {
					errs <- fmt.Sprintf("flow %d match %d = %+v, want %+v", pid, i, got[i], want[i])
					return
				}
			}
		}(pid, payload)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestFlowResetAndClose(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("p", []byte("xyz"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := m.NewEngine(1)
	var got []Match
	f := e.Flow(func(mt Match) { got = append(got, mt) })
	f.Write([]byte("xy"))
	f.Reset() // packet boundary: partial "xy" must not combine with "z"
	f.Write([]byte("z"))
	if len(got) != 0 {
		t.Fatalf("cross-packet match: %v", got)
	}
	if f.Consumed() != 1 {
		t.Fatalf("consumed = %d after reset", f.Consumed())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xyz")); err == nil {
		t.Fatal("write to closed flow succeeded")
	}
	if err := f.Close(); err != nil {
		t.Fatal("double close errored")
	}
	// Pooled state must come back clean for the next flow.
	got = nil
	f2 := e.Flow(func(mt Match) { got = append(got, mt) })
	defer f2.Close()
	f2.Write([]byte("xyz"))
	if len(got) != 1 || got[0].Start != 0 || got[0].End != 3 {
		t.Fatalf("fresh pooled flow matches = %v", got)
	}
}

// TestScanStreamOrderEquivalence is the regression test for the ordering
// bugfix: Scan and Stream must emit the exact FindAll sequence even when
// the ruleset is split across group machines.
func TestScanStreamOrderEquivalence(t *testing.T) {
	m, payloads := engineMatcher(t, 3)
	for pid, payload := range payloads {
		want := m.FindAll(payload)

		var scanned []Match
		m.Scan(payload, func(mt Match) { scanned = append(scanned, mt) })
		if len(scanned) != len(want) {
			t.Fatalf("packet %d: Scan emitted %d matches, FindAll %d", pid, len(scanned), len(want))
		}
		for i := range scanned {
			if scanned[i] != want[i] {
				t.Fatalf("packet %d: Scan match %d = %+v, FindAll %+v", pid, i, scanned[i], want[i])
			}
		}

		var streamed []Match
		s := m.NewStream(func(mt Match) { streamed = append(streamed, mt) })
		for off := 0; off < len(payload); {
			n := 1 + (off*13+pid)%61
			if off+n > len(payload) {
				n = len(payload) - off
			}
			s.Write(payload[off : off+n])
			off += n
		}
		if len(streamed) != len(want) {
			t.Fatalf("packet %d: Stream emitted %d matches, FindAll %d", pid, len(streamed), len(want))
		}
		for i := range streamed {
			if streamed[i] != want[i] {
				t.Fatalf("packet %d: Stream match %d = %+v, FindAll %+v", pid, i, streamed[i], want[i])
			}
		}
	}
}

// TestEngineAgreesWithAccelerator pins the cross-layer guarantee: software
// engine batch scan-out and the hardware-model accelerator return the same
// matches in the same canonical order.
func TestEngineAgreesWithAccelerator(t *testing.T) {
	rules, err := GenerateSnortLike(600, 31)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rules, Config{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccelerator(m, Stratix3)
	if err != nil {
		t.Fatal(err)
	}
	payloads := enginePayloads(t, rules, 12, 900)
	hw, err := a.ScanPackets(payloads)
	if err != nil {
		t.Fatal(err)
	}
	sw := m.NewEngine(4).ScanPackets(payloads)
	if len(hw) != len(sw) {
		t.Fatalf("accelerator found %d matches, engine %d", len(hw), len(sw))
	}
	for i := range hw {
		if hw[i] != sw[i] {
			t.Fatalf("match %d: accelerator %+v, engine %+v", i, hw[i], sw[i])
		}
	}
}

// TestScanAPIEquivalenceProperty is the FindAll-equivalence contract as a
// property over randomized rulesets: for any compiled ruleset and any
// packet batch, Engine.ScanPackets, Accelerator.ScanPackets and per-packet
// Flow writes must produce the identical match multiset in the identical
// canonical (PacketID, End, PatternID) order as the FindAll oracle.
func TestScanAPIEquivalenceProperty(t *testing.T) {
	profiles := []traffic.Profile{traffic.Uniform, traffic.Textual, traffic.Zeroish}
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			seed := int64(1000 + 37*trial)
			rules, err := GenerateSnortLike(80+40*trial, seed)
			if err != nil {
				t.Fatal(err)
			}
			groups := 1 + trial%3
			m, err := Compile(rules, Config{Groups: groups})
			if err != nil {
				t.Fatal(err)
			}
			pkts, err := traffic.Generate(rules.InternalSet(), traffic.Config{
				Packets: 10, Bytes: 300 + 50*trial, Seed: seed,
				AttackDensity: 1.5, Profile: profiles[trial%len(profiles)],
			})
			if err != nil {
				t.Fatal(err)
			}
			payloads := make([][]byte, len(pkts))
			for i, p := range pkts {
				payloads[i] = p.Payload
			}

			// Oracle: FindAll per payload, stamped with the packet index.
			var want []Match
			for pid, p := range payloads {
				for _, mt := range m.FindAll(p) {
					mt.PacketID = pid
					want = append(want, mt)
				}
			}

			check := func(api string, got []Match) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("%s: %d matches, oracle %d", api, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: match %d = %+v, oracle %+v", api, i, got[i], want[i])
					}
				}
			}

			check("Engine.ScanPackets", m.NewEngine(1+trial%4).ScanPackets(payloads))

			a, err := NewAccelerator(m, Stratix3)
			if err != nil {
				t.Fatal(err)
			}
			hw, err := a.ScanPackets(payloads)
			if err != nil {
				t.Fatal(err)
			}
			check("Accelerator.ScanPackets", hw)

			// Per-packet Flow writes: one pooled flow, Reset between
			// packets, payload delivered in uneven chunks, matches stamped
			// with the packet index via WritePacket.
			e := m.NewEngine(2)
			var flowed []Match
			f := e.Flow(func(mt Match) { flowed = append(flowed, mt) })
			for pid, p := range payloads {
				for off := 0; off < len(p); {
					n := 1 + (off*11+pid+trial)%73
					if off+n > len(p) {
						n = len(p) - off
					}
					if _, err := f.WritePacket(p[off:off+n], pid); err != nil {
						t.Fatal(err)
					}
					off += n
				}
				f.Reset()
			}
			f.Close()
			check("Flow.WritePacket", flowed)
		})
	}
}

func TestRulesetLargeAddAndLookup(t *testing.T) {
	// 10k adds with per-add duplicate checks; quadratic scans would make
	// this test conspicuously slow.
	r := NewRuleset()
	for i := 0; i < 10000; i++ {
		r.MustAdd(fmt.Sprintf("r%d", i), []byte(fmt.Sprintf("pattern-%08d", i)))
	}
	if r.Len() != 10000 {
		t.Fatalf("Len = %d", r.Len())
	}
	if _, err := r.Add("dup", []byte("pattern-00004567")); err == nil {
		t.Fatal("duplicate accepted")
	}
	if r.Name(9999) != "r9999" {
		t.Fatalf("Name(9999) = %q", r.Name(9999))
	}
	if !bytes.Equal(r.Content(1234), []byte("pattern-00001234")) {
		t.Fatalf("Content(1234) = %q", r.Content(1234))
	}
}
