package dpi

import "errors"

// Sentinel errors. Constructor and control-plane failures wrap one of
// these, so callers branch with errors.Is instead of string matching:
//
//	if errors.Is(err, dpi.ErrStaleGeneration) { /* rebuild and retry */ }
//
// The returned error always carries the specific detail (which option
// conflicted, which generation was stale) in its message; the sentinel is
// the stable, programmatic part.
var (
	// ErrBadConfig marks a configuration rejected by Config.Validate —
	// out-of-range knobs, an unknown Backend name, or the deprecated
	// DisableBakedKernel alias conflicting with a pinned kernel backend.
	// Compile and NewGateway wrap it for every configuration failure.
	ErrBadConfig = errors.New("dpi: invalid configuration")

	// ErrClosed marks an operation on a Gateway that has been Closed:
	// Ingest, TryIngest, Flush and SwapRules all wrap it once Close has
	// begun.
	ErrClosed = errors.New("dpi: gateway closed")

	// ErrStaleGeneration marks a SwapRules call whose matcher is not newer
	// than the installed one — same matcher again, or an older compile
	// delivered late (e.g. two reloaders racing). The gateway keeps the
	// installed ruleset; recompile from current rules and retry.
	ErrStaleGeneration = errors.New("dpi: stale ruleset generation")
)
