package dpi

// Gateway tests: demultiplexing correctness against the per-flow FindAll
// oracle (cross-packet plants included), eviction bounds under 10k-flow
// churn, framed ingestion, backpressure accounting, and frame-format
// fuzzing. Run with -race; every interesting path here is concurrent.

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/ruleset"
	"repro/internal/traffic"
)

// collector gathers FlowMatches keyed by tuple; emit is called from
// several pipeline goroutines, so it locks.
type collector struct {
	mu      sync.Mutex
	byTuple map[FiveTuple][]Match
}

func newCollector() *collector {
	return &collector{byTuple: map[FiveTuple][]Match{}}
}

func (c *collector) emit(fm FlowMatch) {
	c.mu.Lock()
	c.byTuple[fm.Tuple] = append(c.byTuple[fm.Tuple], fm.Match)
	c.mu.Unlock()
}

// gatewayMatcher compiles a mid-size grouped matcher and returns its
// internal pattern-set view for the traffic generators.
func gatewayMatcher(t testing.TB, strings int, groups int) (*Matcher, *ruleset.Set) {
	return gatewayMatcherBackend(t, strings, groups, BackendAuto)
}

func gatewayMatcherBackend(t testing.TB, strings, groups int, backend string) (*Matcher, *ruleset.Set) {
	t.Helper()
	rules, err := GenerateSnortLike(strings, 77)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rules, Config{Groups: groups, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	return m, rules.InternalSet()
}

// sameMatchSeq compares got against want ignoring PacketID (the oracle
// scans whole streams, the gateway attributes segments).
func sameMatchSeq(got, want []Match) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].PatternID != want[i].PatternID || got[i].Start != want[i].Start || got[i].End != want[i].End {
			return false
		}
	}
	return true
}

func TestGatewayDemuxMatchesPerFlowOracle(t *testing.T) {
	m, set := gatewayMatcher(t, 300, 2)
	w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
		Flows: 40, SegmentsPerFlow: 6, SegmentBytes: 150, Seed: 11,
		CrossDensity: 2, AttackDensity: 1, Profile: traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.CrossPlants() == 0 {
		t.Fatal("workload has no cross-packet plants; test is vacuous")
	}
	c := newCollector()
	gw := m.NewEngine(4).Gateway(GatewayConfig{StreamWorkers: 3}, c.emit)
	for _, p := range w.Packets {
		if err := gw.Ingest(GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}

	// (flow, seq) -> global ingest sequence number, for PacketID checks.
	globalSeq := map[[2]int]int{}
	for i, p := range w.Packets {
		globalSeq[[2]int{p.FlowID, p.Seq}] = i
	}

	segBytes := 150
	matched := 0
	for f, tuple := range w.Tuples {
		want := m.FindAll(w.Streams[f])
		got := c.byTuple[tuple]
		if !sameMatchSeq(got, want) {
			t.Fatalf("flow %d: gateway reported %d matches, oracle %d (or order differs)\ngot  %+v\nwant %+v",
				f, len(got), len(want), got, want)
		}
		matched += len(got)
		// Every match must be attributed to the ingest sequence number of
		// the segment holding its final byte.
		for _, mt := range got {
			seg := (mt.End - 1) / segBytes
			if wantSeq, ok := globalSeq[[2]int{f, seg}]; !ok || mt.PacketID != wantSeq {
				t.Fatalf("flow %d match %+v: PacketID %d, want ingest seq %d of segment %d",
					f, mt, mt.PacketID, wantSeq, seg)
			}
		}
		// Exactly the planted cross-packet matches (and all other plants)
		// must be present.
		reported := map[[2]int]bool{}
		for _, mt := range got {
			reported[[2]int{mt.PatternID, mt.End}] = true
		}
		for _, pl := range w.Planted[f] {
			if !reported[[2]int{int(pl.PatternID), pl.End}] {
				t.Fatalf("flow %d: planted pattern %d ending at %d (cross=%v) unreported",
					f, pl.PatternID, pl.End, pl.CrossPacket)
			}
		}
	}
	if matched == 0 {
		t.Fatal("no matches at all; test is vacuous")
	}
	st := gw.Stats()
	if st.Packets != uint64(len(w.Packets)) || st.StreamPackets != st.Packets || st.BatchPackets != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.FlowsCreated != uint64(len(w.Tuples)) || st.FlowsEvicted != 0 || st.FlowsLive != 0 {
		t.Fatalf("flow accounting after Close: %+v", st)
	}
	if st.Matches != uint64(matched) {
		t.Fatalf("match counter %d, collected %d", st.Matches, matched)
	}
}

func TestGatewayMixedProtocolRouting(t *testing.T) {
	m, set := gatewayMatcher(t, 200, 1)
	w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
		Flows: 10, SegmentsPerFlow: 4, SegmentBytes: 120, Seed: 3,
		CrossDensity: 1, Profile: traffic.Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	dgrams, err := traffic.Generate(set, traffic.Config{
		Packets: 30, Bytes: 300, Seed: 4, AttackDensity: 1.5, Profile: traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	gw := m.NewEngine(2).Gateway(GatewayConfig{BatchPackets: 8}, c.emit)

	// Interleave: a datagram between stream segments; record each
	// datagram's ingest seq and distinct UDP tuple.
	type dgram struct {
		tuple FiveTuple
		seq   int
		data  []byte
	}
	var sent []dgram
	seq := 0
	di := 0
	for _, p := range w.Packets {
		if di < len(dgrams) {
			tup := FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: uint16(40000 + di), DstPort: 53, Proto: ProtoUDP}
			if err := gw.Ingest(GatewayPacket{Tuple: tup, Payload: dgrams[di].Payload}); err != nil {
				t.Fatal(err)
			}
			sent = append(sent, dgram{tuple: tup, seq: seq, data: dgrams[di].Payload})
			seq++
			di++
		}
		if err := gw.Ingest(GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}

	// Stream side still matches the oracle exactly.
	for f, tuple := range w.Tuples {
		if !sameMatchSeq(c.byTuple[tuple], m.FindAll(w.Streams[f])) {
			t.Fatalf("flow %d diverged from oracle with mixed traffic", f)
		}
	}
	// Each datagram behaves as an independent packet: FindAll of its
	// payload, attributed to its own tuple and ingest seq.
	for _, d := range sent {
		want := m.FindAll(d.data)
		got := c.byTuple[d.tuple]
		if !sameMatchSeq(got, want) {
			t.Fatalf("datagram %v: got %d matches, want %d", d.tuple, len(got), len(want))
		}
		for _, mt := range got {
			if mt.PacketID != d.seq {
				t.Fatalf("datagram match %+v: PacketID %d, want %d", mt, mt.PacketID, d.seq)
			}
		}
	}
	st := gw.Stats()
	if st.BatchPackets != uint64(len(sent)) || st.StreamPackets != uint64(len(w.Packets)) {
		t.Fatalf("routing stats = %+v", st)
	}
	if st.Batches == 0 {
		t.Fatal("no bursts flushed")
	}
}

// TestGatewayChurnKeepsLiveFlowsBounded is the acceptance churn test: 10k
// flows through a 256-flow table must stay bounded by eviction the whole
// way through.
func TestGatewayChurnKeepsLiveFlowsBounded(t *testing.T) {
	m, set := gatewayMatcher(t, 120, 1)
	const maxFlows, shards = 256, 16
	w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
		Flows: 10000, SegmentsPerFlow: 2, SegmentBytes: 48, Seed: 21,
		CrossDensity: 0.1, Profile: traffic.Zeroish,
	})
	if err != nil {
		t.Fatal(err)
	}
	var matches atomic64
	gw := m.NewEngine(2).Gateway(GatewayConfig{
		MaxFlows: maxFlows, FlowShards: shards, StreamWorkers: 4,
	}, func(FlowMatch) { matches.add(1) })
	peak := 0
	for i, p := range w.Packets {
		if err := gw.Ingest(GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
			t.Fatal(err)
		}
		if i%512 == 0 {
			if live := gw.Stats().FlowsLive; live > peak {
				peak = live
			}
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if live := st.FlowsLive; live != 0 {
		t.Fatalf("%d flows live after Close", live)
	}
	if peak > maxFlows+shards {
		t.Fatalf("live flows peaked at %d, soft cap is %d", peak, maxFlows+shards)
	}
	if st.FlowsEvicted == 0 || st.FlowsCreated < 10000 {
		t.Fatalf("churn stats = %+v", st)
	}
	if st.Packets != 20000 {
		t.Fatalf("ingested %d packets", st.Packets)
	}
}

type atomic64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }

// TestGatewayEvictedFlowRestartsClean pins the matcher-level consequence
// of eviction: scanner state does not survive an evict/recreate cycle, so
// a pattern split around the eviction is (correctly) not matched, while an
// undisturbed split is.
func TestGatewayEvictedFlowRestartsClean(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("split", []byte("abcdef"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	// One lane and a 1-flow table make eviction order deterministic.
	gw := m.NewEngine(1).Gateway(GatewayConfig{
		MaxFlows: 1, FlowShards: 1, StreamWorkers: 1,
	}, c.emit)
	a := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 80, Proto: ProtoTCP}
	b := FiveTuple{SrcIP: 3, DstIP: 4, SrcPort: 11, DstPort: 80, Proto: ProtoTCP}
	ingest := func(tup FiveTuple, s string) {
		t.Helper()
		if err := gw.Ingest(GatewayPacket{Tuple: tup, Payload: []byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	ingest(a, "abc")
	ingest(b, "zz")  // evicts a's half-fed flow
	ingest(a, "def") // recreated: must NOT complete the split match
	ingest(a, "abc")
	ingest(a, "def") // undisturbed split across packets: must match
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	got := c.byTuple[a]
	if len(got) != 1 {
		t.Fatalf("matches on recreated flow = %+v, want exactly the undisturbed split", got)
	}
	// Offsets are relative to the recreated flow's stream: "def"+"abc"+"def".
	if got[0].Start != 3 || got[0].End != 9 {
		t.Fatalf("match offsets = %+v, want [3,9)", got[0])
	}
	if st := gw.Stats(); st.FlowsEvicted == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
}

func TestGatewayIngestReaderFrames(t *testing.T) {
	m, set := gatewayMatcher(t, 150, 1)
	w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
		Flows: 8, SegmentsPerFlow: 5, SegmentBytes: 100, Seed: 13,
		CrossDensity: 1.5, Profile: traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	var feed bytes.Buffer
	for _, p := range w.Packets {
		if err := WriteFrame(&feed, GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
			t.Fatal(err)
		}
	}
	c := newCollector()
	gw := m.NewEngine(2).Gateway(GatewayConfig{}, c.emit)
	n, err := gw.IngestReader(&feed)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(w.Packets) {
		t.Fatalf("ingested %d frames, want %d", n, len(w.Packets))
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	for f, tuple := range w.Tuples {
		if !sameMatchSeq(c.byTuple[tuple], m.FindAll(w.Streams[f])) {
			t.Fatalf("flow %d diverged from oracle over framed ingestion", f)
		}
	}
}

func TestReadFrameErrors(t *testing.T) {
	pkt := GatewayPacket{
		Tuple:   FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP},
		Payload: []byte("hello"),
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, pkt); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Clean EOF at a frame boundary.
	if _, err := ReadFrame(bytes.NewReader(nil), 100); err != io.EOF {
		t.Fatalf("empty feed: err = %v, want io.EOF", err)
	}
	// Truncation anywhere inside a frame is ErrUnexpectedEOF.
	for _, cut := range []int{1, frameHeaderLen - 1, frameHeaderLen, len(full) - 1} {
		if _, err := ReadFrame(bytes.NewReader(full[:cut]), 100); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	// Oversize payload is rejected before allocation.
	if _, err := ReadFrame(bytes.NewReader(full), len(pkt.Payload)-1); err == nil {
		t.Fatal("oversize frame accepted")
	}
	// Round trip.
	got, err := ReadFrame(bytes.NewReader(full), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuple != pkt.Tuple || !bytes.Equal(got.Payload, pkt.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestGatewayBackpressureLosesNothing(t *testing.T) {
	m, set := gatewayMatcher(t, 100, 1)
	pkts, err := traffic.Generate(set, traffic.Config{
		Packets: 400, Bytes: 200, Seed: 5, AttackDensity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	// A tiny queue and burst size force constant backpressure stalls.
	gw := m.NewEngine(1).Gateway(GatewayConfig{BatchPackets: 2, QueueDepth: 2, StreamWorkers: 1}, c.emit)
	var wg sync.WaitGroup
	const ingesters = 4
	for gi := 0; gi < ingesters; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := gi; i < len(pkts); i += ingesters {
				tup := FiveTuple{SrcIP: uint32(i), DstIP: 9, SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
				if i%3 == 0 {
					tup.Proto = ProtoTCP // mix both pipeline paths
				}
				if err := gw.Ingest(GatewayPacket{Tuple: tup, Payload: pkts[i].Payload}); err != nil {
					t.Error(err)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.Packets != uint64(len(pkts)) {
		t.Fatalf("ingested %d, want %d", st.Packets, len(pkts))
	}
	if st.StreamPackets+st.BatchPackets != st.Packets {
		t.Fatalf("pipeline lost packets: %+v", st)
	}
	// Every payload went through exactly one scan path; with per-packet
	// unique tuples the total match count must equal the per-payload oracle.
	want := 0
	for _, p := range pkts {
		want += len(m.FindAll(p.Payload))
	}
	if int(st.Matches) != want {
		t.Fatalf("matches = %d, oracle %d", st.Matches, want)
	}
}

func TestGatewayClosedBehaviour(t *testing.T) {
	m, _ := gatewayMatcher(t, 60, 1)
	gw := m.NewEngine(1).Gateway(GatewayConfig{}, func(FlowMatch) {})
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if err := gw.Ingest(GatewayPacket{}); err == nil {
		t.Fatal("Ingest after Close succeeded")
	}
	if _, err := gw.IngestReader(bytes.NewReader(make([]byte, frameHeaderLen))); err == nil {
		t.Fatal("IngestReader after Close succeeded")
	}
}

func TestGatewayIdleEviction(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("p", []byte("needle"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gw := m.NewEngine(1).Gateway(GatewayConfig{IdleTimeout: 8, StreamWorkers: 1, FlowShards: 1}, func(FlowMatch) {})
	a := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 1, DstPort: 2, Proto: ProtoTCP}
	if err := gw.Ingest(GatewayPacket{Tuple: a, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b := FiveTuple{SrcIP: 7, DstIP: 8, SrcPort: uint16(i), DstPort: 2, Proto: ProtoTCP}
		if err := gw.Ingest(GatewayPacket{Tuple: b, Payload: []byte("y")}); err != nil {
			t.Fatal(err)
		}
	}
	gw.Flush()
	gw.EvictIdleFlows()
	st := gw.Stats()
	if st.StreamPackets != 21 || st.FlowsCreated != 21 {
		t.Fatalf("pipeline not drained by Flush: %+v", st)
	}
	if st.FlowsEvicted == 0 {
		t.Fatalf("idle flow never evicted: %+v", st)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzReadFrame: arbitrary bytes must never panic the frame parser, and
// any successfully parsed frame must re-encode to exactly the bytes
// consumed.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, GatewayPacket{
		Tuple:   FiveTuple{SrcIP: 0x01020304, DstIP: 0x05060708, SrcPort: 80, DstPort: 443, Proto: ProtoTCP},
		Payload: []byte("GET /cgi-bin/phf"),
	})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, frameHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		pkt, err := ReadFrame(r, 1<<16)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		var re bytes.Buffer
		if err := WriteFrame(&re, pkt); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re.Bytes(), data[:consumed]) {
			t.Fatalf("re-encoded frame differs from consumed bytes:\n% x\n% x", re.Bytes(), data[:consumed])
		}
	})
}

func ExampleGateway() {
	rules := NewRuleset()
	rules.MustAdd("traversal", []byte("../../"))
	m, err := Compile(rules, Config{})
	if err != nil {
		panic(err)
	}
	var mu sync.Mutex
	gw := m.NewEngine(2).Gateway(GatewayConfig{}, func(fm FlowMatch) {
		mu.Lock()
		fmt.Printf("%s: %s at [%d,%d)\n", fm.Tuple, "traversal", fm.Start, fm.End)
		mu.Unlock()
	})
	web := FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 3333, DstPort: 80, Proto: ProtoTCP}
	// The attack spans two TCP segments; per-flow state catches it.
	gw.Ingest(GatewayPacket{Tuple: web, Payload: []byte("GET /..")})
	gw.Ingest(GatewayPacket{Tuple: web, Payload: []byte("/../etc/passwd")})
	gw.Close()
	// Output: tcp 10.0.0.1:3333 > 10.0.0.2:80: traversal at [5,11)
}

// TestGatewayStreamLaneSteadyStateZeroAlloc locks in the per-flow lane's
// contract: once a TCP flow exists, pushing an in-order match-free segment
// through the lane's per-packet path (flow-table touch + verdict check +
// scanner write) allocates nothing. This is exactly the work streamWorker
// performs per packet, driven synchronously so the allocation count is
// attributable.
func TestGatewayStreamLaneSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	rules := NewRuleset()
	rules.MustAdd("sig", []byte("attack-signature"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := m.NewEngine(1)
	gw := e.Gateway(GatewayConfig{}, func(FlowMatch) {})
	defer gw.Close()

	tuple := FiveTuple{
		SrcIP: IPv4(10, 0, 0, 1), DstIP: IPv4(10, 0, 0, 2),
		SrcPort: 40000, DstPort: 443, Proto: ProtoTCP,
	}
	payload := bytes.Repeat([]byte("x"), 1200)
	p := seqPacket{tuple: tuple, payload: payload}
	var tick uint64
	lane := func() {
		tick++
		gw.table.Do(tuple, func(fl *gwFlow) { fl.ingest(p, 0, tick) })
	}
	lane() // warm-up creates the flow and checks its scanners out of the pool
	allocs := testing.AllocsPerRun(50, lane)
	if allocs != 0 {
		t.Fatalf("gateway stream lane allocated %.1f times per packet in steady state", allocs)
	}
}

// TestGatewayShardedStreamLaneZeroAlloc extends the steady-state
// zero-alloc contract to the sharded gateway: with four engine shards, the
// per-packet lane work — hash computed once, hash-pinned flow-table touch,
// verdict check, scanner write against the flow's own shard engine —
// allocates nothing, on every shard. Shard routing must be free: the whole
// point of EngineShards is multiplying throughput, so the router cannot
// spend allocations per packet.
func TestGatewayShardedStreamLaneZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	rules := NewRuleset()
	rules.MustAdd("sig", []byte("attack-signature"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	gw := m.NewEngine(1).Gateway(GatewayConfig{EngineShards: shards}, func(FlowMatch) {})
	defer gw.Close()

	// One tuple pinned to each shard, so every shard's scanner pool and
	// lane path is exercised in the measured loop.
	tuples := make([]FiveTuple, 0, shards)
	seen := map[uint64]bool{}
	for p := uint16(40000); len(tuples) < shards; p++ {
		tup := FiveTuple{
			SrcIP: IPv4(10, 0, 0, 1), DstIP: IPv4(10, 0, 0, 2),
			SrcPort: p, DstPort: 443, Proto: ProtoTCP,
		}
		s := tup.Hash64() % shards
		if !seen[s] {
			seen[s] = true
			tuples = append(tuples, tup)
			// The flow's scanner state must come from the shard the
			// collector routes its packets at.
			if got := gw.shardIndex(tup); got != int(s) {
				t.Fatalf("shardIndex pinned tuple %v to shard %d, want %d", tup, got, s)
			}
		}
	}
	payload := bytes.Repeat([]byte("x"), 1200)
	var tick uint64
	lane := func() {
		for _, tup := range tuples {
			tick++
			p := seqPacket{tuple: tup, payload: payload, hash: tup.Hash64()}
			gw.table.DoHashed(tup, p.hash, func(fl *gwFlow) { fl.ingest(p, 0, tick) })
		}
	}
	lane() // warm-up creates one flow per shard
	allocs := testing.AllocsPerRun(50, lane)
	if allocs != 0 {
		t.Fatalf("sharded stream lanes allocated %.1f times per %d-packet round in steady state", allocs, shards)
	}
	var opened uint64
	for _, ss := range gw.ShardStats() {
		if ss.FlowsOpened != 1 {
			t.Fatalf("shard opened %d flows, want exactly 1: %+v", ss.FlowsOpened, gw.ShardStats())
		}
		opened += ss.FlowsOpened
	}
	if opened != shards {
		t.Fatalf("%d flows opened across %d shards", opened, shards)
	}
}

// TestGatewayShardedConcurrentIngestFlush is the sharded pipeline's race
// and accounting proof (run with -race): several goroutines ingest mixed
// TCP/UDP traffic into a 4-shard gateway while another hammers Flush and
// Stats. Every Flush return must be a true all-shards drain barrier
// (scanned == ingested at that instant), nothing may be lost across the
// shard fan-out, and the total match count must equal the per-payload
// oracle.
func TestGatewayShardedConcurrentIngestFlush(t *testing.T) {
	m, set := gatewayMatcher(t, 120, 1)
	pkts, err := traffic.Generate(set, traffic.Config{
		Packets: 600, Bytes: 160, Seed: 9, AttackDensity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	// Small queue and bursts keep every stage (and its backpressure)
	// constantly active across all four shards.
	gw := m.NewEngine(2).Gateway(GatewayConfig{
		EngineShards: 4, BatchPackets: 4, QueueDepth: 4, StreamWorkers: 2,
	}, c.emit)
	var wg sync.WaitGroup
	const ingesters = 4
	for gi := 0; gi < ingesters; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := gi; i < len(pkts); i += ingesters {
				tup := FiveTuple{SrcIP: uint32(i), DstIP: 9, SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
				if i%3 == 0 {
					tup.Proto = ProtoTCP
				}
				if err := gw.Ingest(GatewayPacket{Tuple: tup, Payload: pkts[i].Payload}); err != nil {
					t.Error(err)
					return
				}
			}
		}(gi)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			// The barrier property that survives concurrent ingesters:
			// everything counted before Flush began must be scanned by the
			// time it returns. (Packets ingested after Flush releases the
			// lock may already be counted but not yet scanned when Stats is
			// read, so exact equality is not assertable here.)
			pre := gw.Stats().Packets
			gw.Flush()
			st := gw.Stats()
			if st.StreamPackets+st.BatchPackets < pre {
				t.Errorf("Flush returned with %d of the %d pre-flush packets unscanned",
					pre-(st.StreamPackets+st.BatchPackets), pre)
				return
			}
			gw.ShardStats() // concurrent per-shard reads must be race-clean
		}
	}()
	wg.Wait()
	<-done
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.EngineShards != 4 {
		t.Fatalf("EngineShards = %d", st.EngineShards)
	}
	if st.Packets != uint64(len(pkts)) || st.StreamPackets+st.BatchPackets != st.Packets {
		t.Fatalf("sharded pipeline lost packets: %+v", st)
	}
	want := 0
	for _, p := range pkts {
		want += len(m.FindAll(p.Payload))
	}
	if int(st.Matches) != want {
		t.Fatalf("matches = %d, oracle %d", st.Matches, want)
	}
	// The stateless bursts must actually have fanned out: with per-packet
	// unique tuples and 400 UDP packets, all four shards see batch work.
	busy := 0
	var batchPkts uint64
	for _, ss := range gw.ShardStats() {
		batchPkts += ss.BatchPkts
		if ss.BatchPkts > 0 {
			busy++
		}
	}
	if batchPkts != st.BatchPackets {
		t.Fatalf("shard batch counters sum to %d, gateway scanned %d", batchPkts, st.BatchPackets)
	}
	if busy < 2 {
		t.Fatalf("stateless traffic landed on %d of 4 shards", busy)
	}
}
