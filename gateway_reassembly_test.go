package dpi

// Reassembly + verdict tests for the Gateway: the acceptance property
// (any segment permutation with overlaps/retransmits reassembles to the
// in-order per-flow FindAll oracle, and header-gated rules never fire on
// flows whose 5-tuple fails the rule), the policy-divergence and
// gap-skip edge cases, lifecycle flags, buffer-cap pressure, eviction
// mid-gap under race, and the Flush/Ingest serialization guard.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/traffic"
)

// fmCollector keeps whole FlowMatches (the plain collector in
// gateway_test.go keeps only the embedded Match), for verdict/rule
// attribution checks.
type fmCollector struct {
	mu      sync.Mutex
	byTuple map[FiveTuple][]FlowMatch
}

func newFMCollector() *fmCollector {
	return &fmCollector{byTuple: map[FiveTuple][]FlowMatch{}}
}

func (c *fmCollector) emit(fm FlowMatch) {
	c.mu.Lock()
	c.byTuple[fm.Tuple] = append(c.byTuple[fm.Tuple], fm)
	c.mu.Unlock()
}

// matches projects the embedded Matches for oracle comparison.
func (c *fmCollector) matches(t FiveTuple) []Match {
	ms := make([]Match, len(c.byTuple[t]))
	for i, fm := range c.byTuple[t] {
		ms[i] = fm.Match
	}
	return ms
}

// TestTrafficFlagValuesAlign pins the bit-for-bit agreement between
// traffic's flag constants and the gateway's TCPFlags: every sequenced
// workload consumer converts with a raw dpi.TCPFlags(p.Flags) cast, which
// compiles regardless of the values — this test is what breaks if either
// side renumbers.
func TestTrafficFlagValuesAlign(t *testing.T) {
	pairs := []struct {
		name    string
		gateway TCPFlags
		traffic byte
	}{
		{"FIN", FlagFIN, traffic.FlagFIN},
		{"SYN", FlagSYN, traffic.FlagSYN},
		{"RST", FlagRST, traffic.FlagRST},
		{"Seq", FlagSeq, traffic.FlagSeq},
	}
	for _, p := range pairs {
		if byte(p.gateway) != p.traffic {
			t.Errorf("%s: dpi bit %#x != traffic bit %#x", p.name, byte(p.gateway), p.traffic)
		}
	}
}

// ingestWorkload feeds a traffic.FlowWorkload through the gateway,
// carrying the sequenced TCP fields when present.
func ingestWorkload(t testing.TB, gw *Gateway, w *traffic.FlowWorkload) {
	t.Helper()
	for _, p := range w.Packets {
		err := gw.Ingest(GatewayPacket{
			Tuple: p.Tuple, Seq: p.TCPSeq, Flags: TCPFlags(p.Flags), Payload: p.Payload,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestGatewayReassemblyPermutationProperty is the acceptance property:
// across engine shard counts, reorder windows, retransmit densities and
// both overlap policies, every flow's gateway matches equal the in-order
// FindAll oracle (same (End, PatternID) sequence — retransmissions are
// exact copies, so the policies agree), verdict-gated flows are never
// scanned, and every rule-attributed match points at a rule whose header
// matches the tuple. Running the identical workloads at shards ∈ {1, 2, 4}
// is the sharding equivalence proof: the fan-out across engine replicas
// must be invisible in every per-flow result and every global counter — and
// the cross with every registered scan backend proves backend selection is
// equally invisible: the lossy prefilter stage in particular may change how
// bytes are scanned but never what the gateway reports.
func TestGatewayReassemblyPermutationProperty(t *testing.T) {
	for _, backend := range []string{BackendReference, BackendBaked, BackendPrefiltered, BackendAccelerated} {
		for _, engineShards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("backend=%s/shards=%d", backend, engineShards), func(t *testing.T) {
				testGatewayReassemblyPermutation(t, backend, engineShards)
			})
		}
	}
}

func testGatewayReassemblyPermutation(t *testing.T, backend string, engineShards int) {
	m, set := gatewayMatcherBackend(t, 250, 2, backend)
	if got := m.Backend(); got != backend {
		t.Fatalf("matcher resolved backend %q, want pinned %q", got, backend)
	}
	rules := []VerdictRule{
		{ID: 1, Name: "drop-block", Verdict: VerdictDrop,
			Header: HeaderRule{Proto: ProtoTCP, SrcPorts: PortRange{Lo: 1024, Hi: 1026}}},
		{ID: 2, Name: "pass-trusted", Verdict: VerdictPass,
			Header: HeaderRule{Proto: ProtoTCP, SrcPorts: PortRange{Lo: 1027, Hi: 1029}}},
		{ID: 3, Name: "alert-web", Verdict: VerdictAlert,
			Header: HeaderRule{Proto: ProtoTCP, DstPorts: PortRange{Lo: 80, Hi: 80}}},
	}
	const flows = 24
	cases := []struct {
		window  int
		retrans float64
		pol     OverlapPolicy
	}{
		{0, 0, FirstWins}, // in-order baseline through the reassembly path
		{2, 0.5, FirstWins},
		{4, 1.5, LastWins},
		{6, 1, FirstWins},
		{3, 2, LastWins},
	}
	for trial, tc := range cases {
		w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
			Flows: flows, SegmentsPerFlow: 7, SegmentBytes: 120, Seed: int64(100 + trial),
			CrossDensity: 1.5, AttackDensity: 1, Profile: traffic.Textual,
			Sequenced: true, ReorderWindow: tc.window, RetransmitDensity: tc.retrans,
		})
		if err != nil {
			t.Fatal(err)
		}
		if w.CrossPlants() == 0 {
			t.Fatal("no cross-packet plants; property is vacuous")
		}
		c := newFMCollector()
		var vmu sync.Mutex
		verdicts := map[FiveTuple]FlowVerdict{}
		gw := m.NewEngine(4).Gateway(GatewayConfig{
			EngineShards:  engineShards,
			StreamWorkers: 3, OverlapPolicy: tc.pol, Rules: rules,
			OnVerdict: func(fv FlowVerdict) {
				vmu.Lock()
				verdicts[fv.Tuple] = fv
				vmu.Unlock()
			},
		}, c.emit)
		ingestWorkload(t, gw, w)
		if err := gw.Close(); err != nil {
			t.Fatal(err)
		}

		gated := 0
		for f, tuple := range w.Tuples {
			got := c.byTuple[tuple]
			if tuple.SrcPort >= 1024 && tuple.SrcPort <= 1029 {
				// Drop or pass verdict: the flow must never reach a scanner.
				if len(got) != 0 {
					t.Fatalf("trial %d: verdict-gated flow %d produced %d matches", trial, f, len(got))
				}
				gated++
				continue
			}
			want := m.FindAll(w.Streams[f])
			if !sameMatchSeq(c.matches(tuple), want) {
				t.Fatalf("trial %d (window=%d retrans=%.1f %v): flow %d diverged from oracle: got %d matches, want %d\ngot  %+v\nwant %+v",
					trial, tc.window, tc.retrans, tc.pol, f, len(got), len(want), got, want)
			}
			reported := map[[2]int]bool{}
			for _, mt := range got {
				if mt.RuleID != 3 || mt.Verdict != VerdictAlert {
					t.Fatalf("trial %d flow %d: match attribution %+v, want rule 3 alert", trial, f, mt)
				}
				if !rules[2].Header.Matches(tuple) {
					t.Fatalf("trial %d flow %d: rule fired on tuple %v that fails its header", trial, f, tuple)
				}
				reported[[2]int{mt.PatternID, mt.End}] = true
			}
			for _, pl := range w.Planted[f] {
				if !reported[[2]int{int(pl.PatternID), pl.End}] {
					t.Fatalf("trial %d flow %d: planted pattern %d ending at %d (cross=%v) unreported",
						trial, f, pl.PatternID, pl.End, pl.CrossPacket)
				}
			}
		}
		if gated != 6 {
			t.Fatalf("trial %d: %d gated flows, want 6", trial, gated)
		}
		st := gw.Stats()
		if tc.window > 0 && st.OutOfOrderSegs == 0 {
			t.Errorf("trial %d: reorder window %d buffered nothing; test is vacuous", trial, tc.window)
		}
		if tc.retrans > 0 && st.DuplicateBytes == 0 {
			t.Errorf("trial %d: retransmit density %.1f discarded nothing", trial, tc.retrans)
		}
		if st.BufferedBytes != 0 {
			t.Errorf("trial %d: %d bytes still buffered after Close", trial, st.BufferedBytes)
		}
		if st.VerdictDrops != 3 || st.VerdictPasses != 3 || st.VerdictAlerts != flows-6 {
			t.Errorf("trial %d: verdict counters %+v", trial, st)
		}
		if st.FlowsFinished != flows-6 {
			t.Errorf("trial %d: %d flows finished via FIN, want %d", trial, st.FlowsFinished, flows-6)
		}
		if st.ReassemblyDrops != 0 || st.GapSkips != 0 {
			t.Errorf("trial %d: lossless workload dropped/skipped: %+v", trial, st)
		}
		if st.EngineShards != engineShards {
			t.Errorf("trial %d: Stats reports %d engine shards, want %d", trial, st.EngineShards, engineShards)
		}
		// Per-shard fan-out accounting: only scanned flows check scanner
		// state out of a shard's pool (gated flows never do), and with
		// several shards the hash must actually spread the flows around.
		var opened uint64
		busyShards := 0
		for _, ss := range gw.ShardStats() {
			opened += ss.FlowsOpened
			if ss.FlowsOpened > 0 {
				busyShards++
			}
		}
		if opened != flows-6 {
			t.Errorf("trial %d: %d flows opened across shards, want %d", trial, opened, flows-6)
		}
		if engineShards > 1 && busyShards < 2 {
			t.Errorf("trial %d: all %d scanned flows landed on one of %d shards", trial, opened, engineShards)
		}
		vmu.Lock()
		if len(verdicts) != flows {
			t.Errorf("trial %d: %d verdict callbacks, want one per flow", trial, len(verdicts))
		}
		for f, tuple := range w.Tuples {
			fv, ok := verdicts[tuple]
			if !ok {
				t.Fatalf("trial %d: flow %d got no verdict", trial, f)
			}
			want := VerdictAlert
			if tuple.SrcPort <= 1026 {
				want = VerdictDrop
			} else if tuple.SrcPort <= 1029 {
				want = VerdictPass
			}
			if fv.Verdict != want {
				t.Fatalf("trial %d flow %d: verdict %v, want %v", trial, f, fv.Verdict, want)
			}
		}
		vmu.Unlock()
	}
}

// TestGatewayRetransmitConflictPolicies pins the end-to-end consequence of
// the overlap policy when a retransmission carries different bytes: the
// first copy of an undelivered range says "needle", the second says
// garbage — FirstWins alerts, LastWins does not (and vice versa).
func TestGatewayRetransmitConflictPolicies(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("sig", []byte("needle"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tup := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 80, Proto: ProtoTCP}
	run := func(pol OverlapPolicy, first, second string) []Match {
		c := newCollector()
		gw := m.NewEngine(1).Gateway(GatewayConfig{StreamWorkers: 1, OverlapPolicy: pol}, c.emit)
		ingest := func(seq uint32, payload string, flags TCPFlags) {
			t.Helper()
			if err := gw.Ingest(GatewayPacket{Tuple: tup, Seq: seq, Flags: flags | FlagSeq, Payload: []byte(payload)}); err != nil {
				t.Fatal(err)
			}
		}
		ingest(1000, "", FlagSYN) // data base 1001
		// Range [6,12) sent twice with different bytes while [0,6) is
		// still missing, then the hole fills.
		ingest(1007, first, 0)
		ingest(1007, second, 0)
		ingest(1001, "AAAAAA", 0)
		if err := gw.Close(); err != nil {
			t.Fatal(err)
		}
		return c.byTuple[tup]
	}
	if got := run(FirstWins, "needle", "nXXdle"); len(got) != 1 || got[0].End != 12 {
		t.Fatalf("FirstWins with good first copy: %+v, want one match ending at 12", got)
	}
	if got := run(FirstWins, "nXXdle", "needle"); len(got) != 0 {
		t.Fatalf("FirstWins with bad first copy: %+v, want no match", got)
	}
	if got := run(LastWins, "needle", "nXXdle"); len(got) != 0 {
		t.Fatalf("LastWins with bad last copy: %+v, want no match", got)
	}
	if got := run(LastWins, "nXXdle", "needle"); len(got) != 1 || got[0].End != 12 {
		t.Fatalf("LastWins with good last copy: %+v, want one match ending at 12", got)
	}
}

// TestGatewayGapSkipResumption: a lost segment stalls the flow until the
// gap timeout, then scanning resumes at the first buffered byte with
// absolute offsets — and no match may span the unseen bytes.
func TestGatewayGapSkipResumption(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("sig", []byte("needle"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	gw := m.NewEngine(1).Gateway(GatewayConfig{StreamWorkers: 1, GapTimeout: 2}, c.emit)
	tup := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 80, Proto: ProtoTCP}
	ingest := func(seq uint32, payload string, flags TCPFlags) {
		t.Helper()
		if err := gw.Ingest(GatewayPacket{Tuple: tup, Seq: seq, Flags: flags | FlagSeq, Payload: []byte(payload)}); err != nil {
			t.Fatal(err)
		}
	}
	// Stream plan (base 1): [0,4)="xnee" delivered; [4,7) lost forever;
	// [7,11)="dle." buffered. If the skip failed to invalidate scanner
	// state, "xnee"+"dle." would complete a bogus "needle".
	ingest(0, "", FlagSYN)
	ingest(1, "xnee", 0)
	ingest(8, "dle.", 0)
	// Two retransmissions of the buffered segment advance the logical
	// clock past the 2-tick gap timeout without adding bytes.
	ingest(8, "dle.", 0)
	ingest(8, "dle.", 0)
	// Post-skip in-order traffic: the real signature, fully after the gap.
	ingest(12, "..needle", FlagFIN)
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	got := c.byTuple[tup]
	if len(got) != 1 {
		t.Fatalf("matches = %+v, want exactly the post-gap needle", got)
	}
	// Absolute stream offsets: 4 delivered + 3 skipped + 4 buffered +
	// "..needle" → the match ends at 19.
	if got[0].Start != 13 || got[0].End != 19 {
		t.Fatalf("match offsets %+v, want [13,19) absolute in the true stream", got[0])
	}
	st := gw.Stats()
	if st.GapSkips != 1 || st.GapSkippedBytes != 3 {
		t.Fatalf("gap accounting: %+v", st)
	}
	if st.FlowsFinished != 1 {
		t.Fatalf("flow did not finish after the skip: %+v", st)
	}
}

// TestGatewayBufferCapPressure: a flow whose out-of-order buffer exceeds
// MaxFlowBuffer sheds the furthest bytes (accounted as ReassemblyDrops)
// instead of growing without bound, and the shared budget drains to zero
// when the gateway closes.
func TestGatewayBufferCapPressure(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("sig", []byte("needle"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	gw := m.NewEngine(1).Gateway(GatewayConfig{
		StreamWorkers: 1, MaxFlowBuffer: 64, GapTimeout: -1,
	}, c.emit)
	tup := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 80, Proto: ProtoTCP}
	if err := gw.Ingest(GatewayPacket{Tuple: tup, Seq: 0, Flags: FlagSYN | FlagSeq}); err != nil {
		t.Fatal(err)
	}
	// 128 out-of-order bytes against a 64-byte cap, closest-first plants:
	// "needle" sits in the first 64 held bytes and must survive.
	payload := make([]byte, 128)
	copy(payload, "..needle..")
	if err := gw.Ingest(GatewayPacket{Tuple: tup, Seq: 1 + 8, Flags: FlagSeq, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	gw.Flush()
	st := gw.Stats()
	if st.ReassemblyDrops != 64 {
		t.Fatalf("ReassemblyDrops = %d, want the 64 bytes over the cap", st.ReassemblyDrops)
	}
	if st.BufferedBytes != 64 {
		t.Fatalf("BufferedBytes = %d, want 64 held", st.BufferedBytes)
	}
	// Fill the hole: the surviving closest bytes (with the plant) scan.
	if err := gw.Ingest(GatewayPacket{Tuple: tup, Seq: 1, Flags: FlagSeq, Payload: []byte("12345678")}); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.byTuple[tup]; len(got) != 1 || got[0].End != 16 {
		t.Fatalf("matches = %+v, want the surviving needle ending at 16", got)
	}
	if st := gw.Stats(); st.BufferedBytes != 0 {
		t.Fatalf("budget leaked %d bytes after Close", st.BufferedBytes)
	}
}

// TestGatewayEvictionMidGapRace: flows with permanent holes are churned
// through a tiny flow table from several goroutines; eviction mid-gap must
// release every buffered byte back to the shared budget (run with -race).
func TestGatewayEvictionMidGapRace(t *testing.T) {
	m, set := gatewayMatcher(t, 120, 1)
	w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
		Flows: 300, SegmentsPerFlow: 4, SegmentBytes: 64, Seed: 33,
		CrossDensity: 0.5, Profile: traffic.Zeroish,
		Sequenced: true, ReorderWindow: 2, RetransmitDensity: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw := m.NewEngine(2).Gateway(GatewayConfig{
		MaxFlows: 8, FlowShards: 2, StreamWorkers: 4, GapTimeout: -1,
	}, func(FlowMatch) {})
	var wg sync.WaitGroup
	const ingesters = 2
	for gi := 0; gi < ingesters; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := gi; i < len(w.Packets); i += ingesters {
				p := w.Packets[i]
				if p.Seq == 1 && p.FlowID%3 == 0 && !p.Retransmit {
					continue // permanent hole: these flows stall mid-gap
				}
				err := gw.Ingest(GatewayPacket{
					Tuple: p.Tuple, Seq: p.TCPSeq, Flags: TCPFlags(p.Flags), Payload: p.Payload,
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.BufferedBytes != 0 {
		t.Fatalf("eviction mid-gap leaked %d buffered bytes", st.BufferedBytes)
	}
	if st.FlowsEvicted == 0 || st.OutOfOrderSegs == 0 {
		t.Fatalf("churn stats too quiet to be meaningful: %+v", st)
	}
	if st.FlowsLive != 0 {
		t.Fatalf("%d flows live after Close", st.FlowsLive)
	}
}

// TestGatewayLifecycleFlags: RST tears the flow out of the table, FIN
// retires scanner state but leaves a husk that absorbs stragglers, and a
// SYN on a closed tuple starts a clean connection.
func TestGatewayLifecycleFlags(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("sig", []byte("needle"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	gw := m.NewEngine(1).Gateway(GatewayConfig{StreamWorkers: 1, FlowShards: 1}, c.emit)
	tup := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 80, Proto: ProtoTCP}
	ingest := func(seq uint32, payload string, flags TCPFlags) {
		t.Helper()
		if err := gw.Ingest(GatewayPacket{Tuple: tup, Seq: seq, Flags: flags | FlagSeq, Payload: []byte(payload)}); err != nil {
			t.Fatal(err)
		}
	}
	// Half-feed the signature, then RST: the completion must not match.
	ingest(0, "", FlagSYN)
	ingest(1, "nee", 0)
	gw.Flush()
	if live := gw.Stats().FlowsLive; live != 1 {
		t.Fatalf("FlowsLive = %d before RST", live)
	}
	ingest(4, "", FlagRST)
	gw.Flush()
	st := gw.Stats()
	if st.FlowsReset != 1 || st.FlowsLive != 0 {
		t.Fatalf("RST teardown: %+v", st)
	}
	// Same tuple again: a fresh connection completes the pattern cleanly.
	ingest(100, "", FlagSYN)
	ingest(101, "dle", 0) // would complete the pre-RST "nee" if state leaked
	ingest(104, "needle", FlagFIN)
	gw.Flush()
	if got := c.byTuple[tup]; len(got) != 1 || got[0].Start != 3 || got[0].End != 9 {
		t.Fatalf("post-RST matches = %+v, want only the intact needle at [3,9)", got)
	}
	st = gw.Stats()
	if st.FlowsFinished != 1 {
		t.Fatalf("FIN not recorded: %+v", st)
	}
	if st.FlowsLive != 1 {
		t.Fatalf("FIN husk missing: %+v", st)
	}
	// Stragglers hit the husk and are discarded, not rescanned.
	before := gw.Stats().Matches
	ingest(104, "needle", FlagFIN)
	gw.Flush()
	if after := gw.Stats(); after.Matches != before || after.DuplicateBytes == 0 {
		t.Fatalf("straggler after FIN rescanned: %+v", after)
	}
	// A new SYN reopens the tuple as a clean connection, offsets from 0.
	ingest(500, "", FlagSYN)
	ingest(501, "needle", FlagFIN)
	gw.Flush()
	got := c.byTuple[tup]
	if len(got) != 2 || got[1].Start != 0 || got[1].End != 6 {
		t.Fatalf("SYN reopen matches = %+v, want a second needle at [0,6)", got)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayLifecycleAcrossVerdictsAndReopen: RST tears down a
// verdict-dropped flow too (it must not pin a table slot), and a SYN
// reopening a FIN-closed tuple is a new connection with its own OnVerdict
// event.
func TestGatewayLifecycleAcrossVerdictsAndReopen(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("sig", []byte("needle"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	vrules := []VerdictRule{
		{ID: 1, Name: "drop-9", Verdict: VerdictDrop,
			Header: HeaderRule{Proto: ProtoTCP, SrcPorts: PortRange{Lo: 9, Hi: 9}}},
		{ID: 2, Name: "alert-rest", Verdict: VerdictAlert,
			Header: HeaderRule{Proto: ProtoTCP}},
	}
	var vmu sync.Mutex
	var events []FlowVerdict
	gw := m.NewEngine(1).Gateway(GatewayConfig{
		StreamWorkers: 1, FlowShards: 1, Rules: vrules,
		OnVerdict: func(fv FlowVerdict) {
			vmu.Lock()
			events = append(events, fv)
			vmu.Unlock()
		},
	}, func(FlowMatch) {})
	dropped := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 9, DstPort: 80, Proto: ProtoTCP}
	alerted := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 80, Proto: ProtoTCP}
	ingest := func(tup FiveTuple, seq uint32, payload string, flags TCPFlags) {
		t.Helper()
		if err := gw.Ingest(GatewayPacket{Tuple: tup, Seq: seq, Flags: flags | FlagSeq, Payload: []byte(payload)}); err != nil {
			t.Fatal(err)
		}
	}
	// Dropped flow: data then RST — the entry must leave the table.
	ingest(dropped, 0, "", FlagSYN)
	ingest(dropped, 1, "payload", 0)
	gw.Flush()
	if live := gw.Stats().FlowsLive; live != 1 {
		t.Fatalf("FlowsLive = %d with the dropped flow open", live)
	}
	ingest(dropped, 8, "", FlagRST)
	gw.Flush()
	if st := gw.Stats(); st.FlowsLive != 0 || st.FlowsReset != 1 {
		t.Fatalf("RST on a dropped flow did not tear it down: %+v", st)
	}
	// FIN-close a scanned connection, then SYN-reopen the same tuple: two
	// connections, two alert verdict events.
	ingest(alerted, 100, "", FlagSYN)
	ingest(alerted, 101, "abc", FlagFIN)
	ingest(alerted, 500, "", FlagSYN)
	ingest(alerted, 501, "def", FlagFIN)
	gw.Flush()
	vmu.Lock()
	alertEvents := 0
	for _, fv := range events {
		if fv.Tuple == alerted && fv.Verdict == VerdictAlert && fv.RuleID == 2 {
			alertEvents++
		}
	}
	vmu.Unlock()
	if alertEvents != 2 {
		t.Fatalf("SYN reopen produced %d alert verdict events, want one per connection (2)", alertEvents)
	}
	if st := gw.Stats(); st.VerdictAlerts != 2 || st.FlowsFinished != 2 {
		t.Fatalf("reopen accounting: %+v", st)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayVerdictsBatchPath: stateless (UDP) packets are classified per
// packet — drop/pass traffic never reaches the engine, alert matches carry
// the rule attribution, and OnVerdict fires per packet.
func TestGatewayVerdictsBatchPath(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("sig", []byte("needle"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	vrules := []VerdictRule{
		{ID: 7, Name: "drop-dns", Verdict: VerdictDrop,
			Header: HeaderRule{Proto: ProtoUDP, DstPorts: PortRange{Lo: 53, Hi: 53}}},
		{ID: 8, Name: "pass-ntp", Verdict: VerdictPass,
			Header: HeaderRule{Proto: ProtoUDP, DstPorts: PortRange{Lo: 123, Hi: 123}}},
		{ID: 9, Name: "alert-rest", Verdict: VerdictAlert,
			Header: HeaderRule{Proto: ProtoUDP}},
	}
	c := newFMCollector()
	var vmu sync.Mutex
	verdictCount := map[Verdict]int{}
	gw := m.NewEngine(2).Gateway(GatewayConfig{
		BatchPackets: 4, Rules: vrules,
		OnVerdict: func(fv FlowVerdict) {
			vmu.Lock()
			verdictCount[fv.Verdict]++
			vmu.Unlock()
		},
	}, c.emit)
	mk := func(port uint16, i int) FiveTuple {
		return FiveTuple{SrcIP: uint32(i), DstIP: 9, SrcPort: 1000, DstPort: port, Proto: ProtoUDP}
	}
	payload := []byte("..needle..")
	const per = 5
	for i := 0; i < per; i++ {
		for _, port := range []uint16{53, 123, 4444} {
			if err := gw.Ingest(GatewayPacket{Tuple: mk(port, i), Payload: payload}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.VerdictDrops != per || st.VerdictPasses != per || st.VerdictAlerts != per {
		t.Fatalf("per-packet verdict counters: %+v", st)
	}
	if st.DroppedBytes != uint64(per*len(payload)) {
		t.Fatalf("DroppedBytes = %d", st.DroppedBytes)
	}
	if st.Matches != per {
		t.Fatalf("matches = %d, want one per alert packet", st.Matches)
	}
	for i := 0; i < per; i++ {
		if got := c.byTuple[mk(53, i)]; len(got) != 0 {
			t.Fatalf("dropped packet scanned: %+v", got)
		}
		if got := c.byTuple[mk(123, i)]; len(got) != 0 {
			t.Fatalf("passed packet scanned: %+v", got)
		}
		got := c.byTuple[mk(4444, i)]
		if len(got) != 1 || got[0].RuleID != 9 || got[0].Verdict != VerdictAlert {
			t.Fatalf("alert packet attribution: %+v", got)
		}
	}
	vmu.Lock()
	if verdictCount[VerdictDrop] != per || verdictCount[VerdictPass] != per || verdictCount[VerdictAlert] != per {
		t.Fatalf("OnVerdict counts: %+v", verdictCount)
	}
	vmu.Unlock()
}

// TestGatewayFlushSerializesWithIngest is the guard for the Flush/Ingest
// race: Flush must be a true drain barrier even while other goroutines
// ingest concurrently — no deadlock, no packets counted but unscanned at
// the moment Flush returns once ingestion stops.
func TestGatewayFlushSerializesWithIngest(t *testing.T) {
	m, set := gatewayMatcher(t, 80, 1)
	pkts, err := traffic.Generate(set, traffic.Config{Packets: 300, Bytes: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gw := m.NewEngine(1).Gateway(GatewayConfig{BatchPackets: 2, QueueDepth: 2, StreamWorkers: 1}, func(FlowMatch) {})
	var wg sync.WaitGroup
	const ingesters = 3
	for gi := 0; gi < ingesters; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := gi; i < len(pkts); i += ingesters {
				tup := FiveTuple{SrcIP: uint32(i), DstIP: 9, SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
				if i%3 == 0 {
					tup.Proto = ProtoTCP
				}
				if err := gw.Ingest(GatewayPacket{Tuple: tup, Payload: pkts[i].Payload}); err != nil {
					t.Error(err)
					return
				}
			}
		}(gi)
	}
	// Hammer Flush while the ingesters run: every packet counted before a
	// Flush begins must be scanned by its return (Flush holds out new
	// Ingests while it drains; packets admitted after it releases the lock
	// may be counted-but-unscanned by the time Stats is read, so the
	// assertion is against the pre-flush count).
	for i := 0; i < 50; i++ {
		pre := gw.Stats().Packets
		gw.Flush()
		st := gw.Stats()
		if st.StreamPackets+st.BatchPackets < pre {
			t.Fatalf("Flush returned with %d of the %d pre-flush packets unscanned",
				pre-(st.StreamPackets+st.BatchPackets), pre)
		}
	}
	wg.Wait()
	gw.Flush()
	st := gw.Stats()
	if st.Packets != uint64(len(pkts)) || st.StreamPackets+st.BatchPackets != st.Packets {
		t.Fatalf("final accounting: %+v", st)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzReassemblyEquivalence: any segmentation, permutation and duplicate
// schedule of a byte stream must scan identically to the in-order FindAll
// oracle — the fuzz form of the acceptance property.
func FuzzReassemblyEquivalence(f *testing.F) {
	f.Add([]byte("the needle in the haystack, and abc bcd zz"), []byte{5, 16, 3}, uint64(0x9E3779B97F4A7C15), false)
	f.Add([]byte("needleneedleneedle"), []byte{1, 2, 3}, uint64(42), true)
	f.Add([]byte("zzabczz"), []byte{1}, uint64(0xFFFFFFFF00000001), false)
	f.Fuzz(func(t *testing.T, stream []byte, cuts []byte, order uint64, lastWins bool) {
		if len(stream) == 0 || len(stream) > 2048 {
			t.Skip()
		}
		m := fuzzMatcher(t)
		// Segmentation driven by cuts; permutation and duplicates by an
		// LCG seeded from order.
		type span struct{ at, n int }
		var segs []span
		ci := 0
		for at := 0; at < len(stream); {
			n := 1
			if len(cuts) > 0 {
				n = 1 + int(cuts[ci%len(cuts)])%48
				ci++
			}
			if at+n > len(stream) {
				n = len(stream) - at
			}
			segs = append(segs, span{at, n})
			at += n
		}
		perm := make([]int, len(segs))
		for i := range perm {
			perm[i] = i
		}
		lcg := order | 1
		next := func(n int) int {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			return int((lcg >> 33) % uint64(n))
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := next(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		pol := FirstWins
		if lastWins {
			pol = LastWins
		}
		isn := uint32(order >> 32) // any base, wraparound included
		tup := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP}
		c := newCollector()
		gw := m.NewEngine(1).Gateway(GatewayConfig{
			StreamWorkers: 1, OverlapPolicy: pol, GapTimeout: -1,
		}, c.emit)
		// The SYN announces the base up front, so any data permutation is
		// reassemblable.
		if err := gw.Ingest(GatewayPacket{Tuple: tup, Seq: isn, Flags: FlagSYN | FlagSeq}); err != nil {
			t.Fatal(err)
		}
		send := func(s span) {
			fl := FlagSeq
			if s.at+s.n == len(stream) {
				fl |= FlagFIN
			}
			err := gw.Ingest(GatewayPacket{
				Tuple: tup, Seq: isn + 1 + uint32(s.at), Flags: fl, Payload: stream[s.at : s.at+s.n],
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, pi := range perm {
			send(segs[pi])
			if next(4) == 0 { // exact-copy retransmission of a random segment
				send(segs[next(len(segs))])
			}
		}
		if err := gw.Close(); err != nil {
			t.Fatal(err)
		}
		want := m.FindAll(stream)
		got := c.byTuple[tup]
		if !sameMatchSeq(got, want) {
			t.Fatalf("%d segs, policy %v: gateway %d matches, oracle %d\ngot  %+v\nwant %+v",
				len(segs), pol, len(got), len(want), got, want)
		}
		if st := gw.Stats(); st.BufferedBytes != 0 {
			t.Fatalf("%d bytes buffered after Close", st.BufferedBytes)
		}
	})
}

var (
	fuzzMatcherOnce sync.Once
	fuzzMatcherVal  *Matcher
	fuzzMatcherErr  error
)

// fuzzMatcher compiles a small overlap-heavy ruleset once for the fuzzer.
func fuzzMatcher(t *testing.T) *Matcher {
	fuzzMatcherOnce.Do(func() {
		rs := NewRuleset()
		for _, p := range []string{"ab", "abc", "bcd", "needle", "eedl", "zz", "haystack"} {
			rs.MustAdd(p, []byte(p))
		}
		fuzzMatcherVal, fuzzMatcherErr = Compile(rs, Config{})
	})
	if fuzzMatcherErr != nil {
		t.Fatal(fuzzMatcherErr)
	}
	return fuzzMatcherVal
}
