package dpi

// The gateway layer turns the library into the NIDS front-end the paper
// deploys (§I): packets arrive tagged with their 5-tuple, are demultiplexed
// into per-connection streams, and every payload byte flows through the
// shared compressed automaton at one transition per byte. The software
// pipeline mirrors the hardware's structure — a bounded ingest queue plays
// the role of the input FIFO, stateless packets are batched into bursts
// across the engine's worker lanes, and TCP packets are pinned to a lane by
// flow hash so each connection's scanner registers see its bytes in order,
// exactly as a hardware engine owns a packet stream.
//
// The scan back-end replicates like the hardware does: the paper's device
// reaches its throughput by instantiating many identical string matching
// blocks and fanning partitioned traffic across them (§IV.B), and
// GatewayConfig.EngineShards is the software analogue — M independent
// Engines (each with its own worker pool, scanner-state pool, stream lanes
// and burst scanner) over the one immutable compiled automaton, with every
// flow and stateless packet pinned to a shard by the same tuple hash that
// pins lanes and flow-table shards. Sharding is invisible in results and
// accounting; ShardStats exposes the per-replica fan-out.
//
// Two stages sit between a lane and the scanner, completing the NIDS model:
//
//   - TCP reassembly (internal/reassembly): segments carrying a sequence
//     number (FlagSeq) are reordered into the connection's contiguous byte
//     stream before scanning, with a configurable overlap policy, bounded
//     buffering, and a gap timeout so loss cannot wedge a flow. This closes
//     the segmentation-evasion hole: a signature split or shuffled across
//     segments is still seen contiguously by the matcher.
//   - Header-rule verdicts (internal/nids): rules classify the 5-tuple
//     before any payload byte is scanned. A pass rule exempts the flow from
//     inspection, a drop rule discards it unscanned, and an alert rule tags
//     every match with the rule that admitted it. The verdict is decided
//     once per flow (per packet for stateless traffic) and reported through
//     OnVerdict before any match from that flow is emitted.
//
// Two seams face outward from this layer. Upstream, the capture edge
// (capture.go, internal/capture) feeds the gateway from classic libpcap
// files: Gateway.ReplayPcap translates Ethernet/IPv4 frames into Ingest
// calls, preserving TCP sequence numbers and SYN/FIN/RST so the
// reassembly and lifecycle paths above see real wire semantics, and a
// replay deliberately does not flush or close the gateway, so rotated
// capture files replay back-to-back with flows continuing across file
// boundaries. Downstream, the observability edge (metrics.go,
// internal/metrics) renders this file's accounting — GatewayStats, the
// flow-table snapshot, per-shard EngineStats and the per-rule counters
// kept in ruleFlows/ruleMatches — as a Prometheus text exposition via
// Gateway.Metrics. Both seams are read-only over state the pipeline
// already maintains: the hot path has no capture- or metrics-specific
// branches, and the per-rule counters are position-indexed atomics
// bumped where the verdict and match decisions already happen.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ac"
	"repro/internal/flowtable"
	"repro/internal/nids"
	"repro/internal/reassembly"
)

// FiveTuple is the packet classification header keying flows, shared with
// the internal NIDS rule model.
type FiveTuple = nids.FiveTuple

// HeaderRule is the 5-tuple classification half of a NIDS rule: protocol,
// source/destination CIDR prefixes and port ranges. The zero value matches
// every packet.
type HeaderRule = nids.HeaderRule

// Prefix is an IPv4 CIDR prefix for HeaderRule nets; the zero value
// matches any address.
type Prefix = nids.Prefix

// PortRange is an inclusive port interval for HeaderRule ports; the zero
// value matches any port.
type PortRange = nids.PortRange

// IPv4 packs four octets into the uint32 address form used by FiveTuple
// and Prefix.
func IPv4(a, b, c, d byte) uint32 { return nids.IPv4(a, b, c, d) }

// IP protocol numbers for FiveTuple.Proto.
const (
	ProtoAny  = nids.ProtoAny
	ProtoICMP = nids.ProtoICMP
	ProtoTCP  = nids.ProtoTCP
	ProtoUDP  = nids.ProtoUDP
)

// TCPFlags carries the TCP control bits the gateway acts on, plus FlagSeq,
// which marks the Seq field as meaningful. A packet without FlagSeq takes
// the pre-reassembly path: its bytes append at the flow's current stream
// position, trusting the feed to deliver segments in order.
type TCPFlags uint8

const (
	FlagFIN TCPFlags = 1 << 0 // connection finished after this segment
	FlagSYN TCPFlags = 1 << 1 // connection start; Seq is the ISN
	FlagRST TCPFlags = 1 << 2 // abort: tear the flow down immediately
	// FlagSeq marks Seq as valid, routing the packet through TCP
	// reassembly. Feeds that guarantee in-order delivery may omit it.
	FlagSeq TCPFlags = 1 << 7
)

// OverlapPolicy selects which bytes win when TCP segments overlap in the
// reassembly buffer. Bytes already delivered to the scanner are immutable
// under either policy.
type OverlapPolicy = reassembly.Policy

const (
	// FirstWins keeps the bytes that arrived first (Snort's default).
	FirstWins = reassembly.FirstWins
	// LastWins lets retransmissions overwrite buffered, unscanned bytes.
	LastWins = reassembly.LastWins
)

// GatewayPacket is one ingested packet: a payload tagged with its flow's
// 5-tuple and, for TCP segments from a real capture, the sequence number
// and control flags driving reassembly and connection lifecycle. The
// Gateway takes ownership of Payload; callers that reuse buffers must copy
// first.
type GatewayPacket struct {
	Tuple FiveTuple
	// Seq is the TCP sequence number of Payload[0] (of the SYN itself on a
	// SYN segment). It is honoured only when Flags has FlagSeq set.
	Seq     uint32
	Flags   TCPFlags
	Payload []byte
}

// Verdict is the action a header rule attaches to a flow or packet.
type Verdict uint8

const (
	// VerdictNone: no header rule matched; the payload is scanned and
	// matches carry no rule attribution.
	VerdictNone Verdict = iota
	// VerdictAlert: scan the payload; matches carry the rule's ID.
	VerdictAlert
	// VerdictDrop: discard the flow/packet without scanning.
	VerdictDrop
	// VerdictPass: exempt the flow/packet from inspection.
	VerdictPass
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictAlert:
		return "alert"
	case VerdictDrop:
		return "drop"
	case VerdictPass:
		return "pass"
	}
	return "none"
}

// VerdictRule is one gateway header rule: a 5-tuple classifier plus the
// action to take on flows it matches. Rules are evaluated in slice order
// and the first match wins, so put the most specific rules first. A rule
// whose Verdict is VerdictNone acts as VerdictAlert.
type VerdictRule struct {
	ID      int
	Name    string
	Header  HeaderRule
	Verdict Verdict
}

// FlowVerdict reports one classification decision: for stream (TCP) flows
// it fires once per connection on the first packet, before any match from
// that flow; for stateless packets it fires per packet. Only decisions
// made by a configured rule are reported.
type FlowVerdict struct {
	Tuple    FiveTuple
	Verdict  Verdict
	RuleID   int
	RuleName string
}

// FlowMatch is a match attributed to a flow. For stream-routed (TCP)
// packets, Start/End are offsets into the flow's reassembled byte stream
// and PacketID is the ingest sequence number of the packet whose bytes
// completed the match — for a match completed by buffered out-of-order
// bytes, that is the packet whose arrival released those bytes. For
// batch-routed packets, Start/End are offsets into that packet's payload
// and PacketID is its ingest sequence number.
type FlowMatch struct {
	Tuple FiveTuple
	Match
	// Verdict and RuleID carry the header-rule gate that admitted this
	// flow or packet to scanning: VerdictAlert and the rule's ID when a
	// rule matched, VerdictNone and -1 otherwise.
	Verdict Verdict
	RuleID  int
}

// OverloadPolicy selects what Ingest does when the pipeline is saturated
// and the bounded queue cannot accept a packet within the ingest deadline.
// Whatever the policy, the exactness contract holds over the bytes actually
// delivered to scanning, and every byte not delivered is explicitly
// accounted (see GatewayStats.Ledger): never silently wrong, never wedged.
type OverloadPolicy uint8

const (
	// Block is today's backpressure contract and the default: Ingest waits
	// for queue space, nothing is ever shed, and results are byte-identical
	// to an unloaded run.
	Block OverloadPolicy = iota
	// ShedPackets drops the packet that cannot be queued within
	// IngestDeadline. A shed TCP segment invalidates the flow's scanner
	// across the unseen bytes (SkipGap semantics), so no match can span a
	// shed packet and matches over delivered bytes stay oracle-exact.
	ShedPackets
	// ShedNewFlows sheds only packets that would create new flow state
	// (unknown TCP tuples and stateless packets); packets of established
	// TCP flows still block, protecting connections already under
	// inspection — the classic IDS answer to a SYN-flood style overload.
	ShedNewFlows
)

// String implements fmt.Stringer.
func (p OverloadPolicy) String() string {
	switch p {
	case ShedPackets:
		return "shed_packets"
	case ShedNewFlows:
		return "shed_new_flows"
	}
	return "block"
}

// GatewayConfig sizes the ingest pipeline. The zero value selects sensible
// defaults throughout.
type GatewayConfig struct {
	// EngineShards replicates the scan back-end: the gateway spins up this
	// many independent Engines over the one shared compiled automaton and
	// pins every flow (and every stateless packet) to a shard by tuple
	// hash — the software analogue of the paper's replicated string
	// matching blocks fed by partitioned traffic. Each shard owns its own
	// worker pool, scanner-state pool, per-flow stream lanes and burst
	// scanner, so shards share nothing hot; on a NUMA machine run one
	// shard per node. All ordering and accounting guarantees are
	// per-gateway, unchanged: per-flow packet order holds because a flow's
	// shard and lane are both functions of its tuple hash, nothing is
	// dropped, and Flush drains every shard. Default 1 (a single engine —
	// exactly the pre-sharding gateway).
	EngineShards int
	// BatchPackets is the burst size for stateless (non-TCP) packets: the
	// collector accumulates up to this many packets per engine shard
	// before the burst is scanned by that shard's Engine.ScanPackets.
	// Partial bursts flush whenever the ingest queue goes momentarily
	// idle, so batching never adds unbounded latency. Default 64.
	BatchPackets int
	// QueueDepth bounds the ingest queue; a full queue blocks Ingest,
	// which is the gateway's backpressure. Default 4*BatchPackets.
	QueueDepth int
	// StreamWorkers is the number of per-flow scan lanes per engine shard.
	// Each flow is pinned to one lane of its shard by tuple hash, so
	// per-flow packet order (and therefore cross-packet matching) is
	// preserved while distinct flows scan in parallel. Default
	// Engine.Workers().
	StreamWorkers int
	// MaxFlows softly caps live flow state: when exceeded, the
	// least-recently-active flows are evicted and their scanner state
	// returns to the engine pool. The live count stays within MaxFlows
	// plus the table's shard count. Default 65536; negative disables.
	MaxFlows int
	// IdleTimeout evicts a flow after this many table-wide stream packets
	// pass without it seeing one (a logical clock, deterministic and
	// load-proportional — a line-rate gateway experiences time in packets).
	// 0 disables idle eviction.
	IdleTimeout int
	// FlowShards is the flow table's lock-shard count. Default 64.
	FlowShards int
	// MaxFrameBytes caps the payload length IngestReader accepts per
	// frame, bounding memory against corrupt or hostile feeds. Default 1MiB.
	MaxFrameBytes int

	// OverlapPolicy resolves overlapping TCP segments in the reassembly
	// buffer. Default FirstWins.
	OverlapPolicy OverlapPolicy
	// MaxFlowBuffer caps one flow's buffered out-of-order bytes; under
	// pressure the bytes furthest from the delivery point are dropped
	// first. Default 256 KiB.
	MaxFlowBuffer int
	// MaxTotalBuffer caps buffered out-of-order bytes across all flows.
	// Default 16 MiB; negative disables the cap (held bytes are still
	// tracked for Stats.BufferedBytes).
	MaxTotalBuffer int
	// GapTimeout is how many stream packets (gateway-wide, the same
	// logical clock as IdleTimeout) a flow may stall on a missing segment
	// before the gap is skipped: scanner state is invalidated across the
	// unseen bytes and scanning resumes at the first buffered byte, so a
	// single lost segment cannot wedge a flow. Default 4096; negative
	// disables skipping.
	GapTimeout int

	// OverloadPolicy selects the admission behavior when the ingest queue
	// is full: Block (default, pure backpressure), ShedPackets, or
	// ShedNewFlows. See the OverloadPolicy constants.
	OverloadPolicy OverloadPolicy
	// IngestDeadline bounds how long a shedding policy waits for queue
	// space before shedding the packet. 0 selects 1ms; negative sheds
	// immediately on a full queue. Ignored under Block, which waits
	// indefinitely.
	IngestDeadline time.Duration
	// StallThreshold is the lane-watchdog trigger: a stream lane with
	// queued or in-flight work whose last progress is older than this is
	// reported stalled by Health (and /healthz turns 503). Default 5s.
	StallThreshold time.Duration

	// Rules classify each flow's 5-tuple before payload scanning; see
	// VerdictRule. No rules means every packet is scanned unattributed.
	Rules []VerdictRule
	// OnVerdict, when non-nil, receives every rule classification (see
	// FlowVerdict). Like the match callback it is invoked concurrently
	// from pipeline stages and must be safe for concurrent use.
	OnVerdict func(FlowVerdict)
}

func (c GatewayConfig) withDefaults(e *Engine) GatewayConfig {
	if c.EngineShards <= 0 {
		c.EngineShards = 1
	}
	if c.BatchPackets <= 0 {
		c.BatchPackets = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.BatchPackets
	}
	if c.StreamWorkers <= 0 {
		c.StreamWorkers = e.Workers()
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = 1 << 16
	}
	if c.MaxFlows < 0 {
		c.MaxFlows = 0
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 1 << 20
	}
	if c.MaxFlowBuffer <= 0 {
		c.MaxFlowBuffer = 256 << 10
	}
	if c.MaxTotalBuffer == 0 {
		c.MaxTotalBuffer = 16 << 20
	}
	if c.GapTimeout == 0 {
		c.GapTimeout = 4096
	}
	if c.GapTimeout < 0 {
		c.GapTimeout = 0 // disabled
	}
	if c.IngestDeadline == 0 {
		c.IngestDeadline = time.Millisecond
	}
	if c.IngestDeadline < 0 {
		c.IngestDeadline = 0 // shed immediately on a full queue
	}
	if c.StallThreshold <= 0 {
		c.StallThreshold = 5 * time.Second
	}
	return c
}

// GatewayStats is a point-in-time counter snapshot.
type GatewayStats struct {
	EngineShards  int    // engine replicas behind this gateway
	Packets       uint64 // packets ingested
	Bytes         uint64 // payload bytes ingested
	StreamPackets uint64 // routed through per-flow stream state
	BatchPackets  uint64 // scanned statelessly in bursts
	Batches       uint64 // bursts handed to Engine.ScanPackets
	Matches       uint64 // FlowMatches emitted
	ScannedBytes  uint64 // payload bytes delivered to a scanner (stream + burst)

	// Overload shedding (OverloadPolicy ShedPackets / ShedNewFlows).
	ShedPackets  uint64 // packets shed at admission
	ShedBytes    uint64 // payload bytes of shed packets
	ShedNewFlows uint64 // shed packets that would have created flow state

	// Panic containment.
	Panics             uint64 // panics recovered across all pipeline stages
	QuarantinedFlows   uint64 // flows evicted because their scan panicked
	QuarantinedPackets uint64 // packets discarded on/after a flow quarantine
	QuarantinedBytes   uint64 // payload bytes those packets carried (ledger-exact)

	// TCP reassembly (FlagSeq segments only).
	ReassembledBytes uint64 // bytes delivered to scanners in stream order
	BufferedBytes    int    // out-of-order bytes currently held, all flows
	OutOfOrderSegs   uint64 // segments that had to be buffered
	DuplicateBytes   uint64 // retransmitted/overlapping bytes discarded
	ReassemblyDrops  uint64 // bytes dropped to the flow/global buffer caps
	GapSkips         uint64 // gaps skipped on timeout
	GapSkippedBytes  uint64 // unseen bytes skipped past

	// Header-rule verdicts.
	VerdictAlerts uint64 // flows/packets admitted by an alert rule
	VerdictDrops  uint64 // flows/packets discarded unscanned
	VerdictPasses uint64 // flows/packets exempted unscanned
	DroppedBytes  uint64 // payload bytes of verdict-dropped traffic
	PassedBytes   uint64 // payload bytes of verdict-passed traffic

	// AbandonedBytes counts ingested bytes released unscanned when their
	// connection went away: buffered out-of-order bytes discarded on RST,
	// beyond a completed FIN, or on flow eviction, plus RST payloads.
	AbandonedBytes uint64

	FlowsLive     int
	FlowsCreated  uint64
	FlowsEvicted  uint64 // capacity + idle evictions + RST teardowns
	FlowsFinished uint64 // completed via FIN (scanner state released early)
	FlowsReset    uint64 // torn down by RST

	// Ruleset generations (hot reload; see Gateway.SwapRules).
	Generation           uint64 // installed generation new flows open on
	RulesetSwaps         uint64 // successful SwapRules calls
	GenerationsInstalled uint64 // generations ever installed (initial + swaps)
	GenerationsRetired   uint64 // old generations drained and retired
	GenerationsLive      int    // non-retired generations, current included
}

// GatewayLedger is the byte-conservation view of a stats snapshot: every
// ingested payload byte is in exactly one bucket, so at any Flush
// checkpoint (pipeline drained, counters quiescent)
//
//	Ingested == Scanned + Shed + Skipped + Buffered
//
// holds exactly. Skipped aggregates every byte the gateway explicitly
// declined to scan: duplicates, reassembly cap drops, verdict drops and
// passes, abandoned connection bytes, and quarantined bytes. Reassembly
// gap-skipped bytes are NOT here — they were never ingested (the segments
// carrying them were lost upstream); GatewayStats reports them separately.
type GatewayLedger struct {
	Ingested uint64 `json:"ingested"`
	Scanned  uint64 `json:"scanned"`
	Shed     uint64 `json:"shed"`
	Skipped  uint64 `json:"skipped"`
	Buffered uint64 `json:"buffered"` // out-of-order bytes still held
}

// Ledger buckets the snapshot's byte counters; see GatewayLedger.
func (s GatewayStats) Ledger() GatewayLedger {
	return GatewayLedger{
		Ingested: s.Bytes,
		Scanned:  s.ScannedBytes,
		Shed:     s.ShedBytes,
		Skipped: s.DuplicateBytes + s.ReassemblyDrops + s.DroppedBytes +
			s.PassedBytes + s.AbandonedBytes + s.QuarantinedBytes,
		Buffered: uint64(s.BufferedBytes),
	}
}

// Balanced reports whether the conservation law holds for this snapshot.
// Only a drained snapshot (taken after Flush, or after Close) is required
// to balance; a mid-flight snapshot may be transiently short.
func (l GatewayLedger) Balanced() bool {
	return l.Ingested == l.Scanned+l.Shed+l.Skipped+l.Buffered
}

// Gateway is a pipelined ingestion front-end over one or more engine
// shards: a bounded ingest queue, a collector that routes packets, and per
// shard a set of per-flow stream lanes fed through the shared 5-tuple flow
// table (with TCP reassembly and header-rule verdicts ahead of the
// scanner) plus a burst scanner for stateless packets.
//
//	Ingest ──▶ queue ──▶ collector ──▶ shard[h%M] ──▶ stream lanes ─▶ verdict ─▶ reassembly ─▶ per-flow scan
//	                          └──────▶ shard[h%M] ──▶ burst scanner ─▶ verdict ─▶ Engine.ScanPackets
//
// With EngineShards=1 (the default) this collapses to the single-engine
// pipeline. Ingest and IngestReader may be called from multiple
// goroutines; emit and OnVerdict are invoked concurrently (from the stream
// lanes and the burst scanners) and must be safe for concurrent use. Close
// drains the pipeline, flushes any partial burst, and returns all flow
// state to the engine pools.
type Gateway struct {
	cfg  GatewayConfig
	emit func(FlowMatch)

	in     chan seqPacket
	shards []*gwEngineShard
	table  *flowtable.Table[*gwFlow]
	budget *reassembly.Budget
	asmCfg reassembly.Config

	mu     sync.RWMutex // guards closed vs in-flight Ingest sends; Flush and SwapRules hold it exclusively
	closed bool

	// Ruleset generations — the hot-reload control plane. cur is the
	// generation new flows pin to and bursts scan with; it only changes
	// inside SwapRules, at a drained point (mu held exclusively, inflight
	// zero), so everything processing a packet sees a frozen cur. gens
	// lists every non-retired generation in install order; retiredStats
	// holds, per engine shard, the folded counters of engines whose
	// generation retired, keeping ShardStats monotone across swaps. genMu
	// guards gens, retiredStats and gwGeneration.retired. workers is the
	// per-engine worker-pool size swapped-in generations replicate.
	cur          atomic.Pointer[gwGeneration]
	genMu        sync.Mutex
	gens         []*gwGeneration
	retiredStats []EngineStats
	workers      int
	swaps        atomic.Uint64
	gensInstall  atomic.Uint64
	gensRetired  atomic.Uint64

	collectorWg sync.WaitGroup
	workerWg    sync.WaitGroup

	seq      atomic.Uint64
	inflight atomic.Int64
	bytes    atomic.Uint64
	stream   atomic.Uint64
	batched  atomic.Uint64
	bursts   atomic.Uint64
	matches  atomic.Uint64

	reassembled   atomic.Uint64
	oooSegs       atomic.Uint64
	dupBytes      atomic.Uint64
	asmDropped    atomic.Uint64
	gapSkips      atomic.Uint64
	gapSkipBytes  atomic.Uint64
	flowsFinished atomic.Uint64
	flowsReset    atomic.Uint64
	verdictAlerts atomic.Uint64
	verdictDrops  atomic.Uint64
	verdictPasses atomic.Uint64
	droppedBytes  atomic.Uint64
	passedBytes   atomic.Uint64

	// Byte-conservation buckets (see GatewayStats.Ledger). scannedBytes and
	// its sibling buckets are committed transactionally — only after the
	// operation that consumed the bytes returned — so a mid-scan panic
	// leaves its packet's bytes uncommitted and the quarantine path can
	// charge them exactly.
	scannedBytes   atomic.Uint64
	abandonedBytes atomic.Uint64
	shedPackets    atomic.Uint64
	shedBytes      atomic.Uint64
	shedFlows      atomic.Uint64

	// Panic containment: per-shard recovered-panic counts (the
	// dpi_panics_total{shard} series) and the quarantine set — tuples whose
	// scan panicked. A quarantined tuple's later packets are discarded at
	// the lane, counted, without touching scanner state. quarN is the
	// hot-path gate: lanes pay one atomic load until the first quarantine.
	panics      []atomic.Uint64
	quarMu      sync.Mutex
	quarantined map[FiveTuple]struct{}
	quarN       atomic.Int64
	quarFlows   atomic.Uint64
	quarPackets atomic.Uint64
	quarBytes   atomic.Uint64

	// Pending scanner gaps from shed in-order (non-FlagSeq) TCP segments:
	// the flow's next admitted packet applies SkipGap(n) before scanning,
	// so no match spans the shed bytes and later offsets stay absolute.
	// (Shed FlagSeq segments need none of this — they are ordinary
	// reassembly holes, handled by GapTimeout.) pendingN gates the lookup
	// the same way quarN does.
	pendingMu   sync.Mutex
	pendingGaps map[FiveTuple]int
	pendingN    atomic.Int64

	// Per-rule counters, indexed by the rule's position in cfg.Rules (not
	// its ID — IDs may be sparse). Fixed-size atomic slices allocated at
	// construction keep the hot path allocation-free: counting a verdict or
	// an attributed match is one predictable atomic add.
	ruleFlows   []atomic.Uint64 // classifications decided by this rule
	ruleMatches []atomic.Uint64 // matches attributed to this rule
}

type seqPacket struct {
	tuple   FiveTuple
	payload []byte
	seq     int    // global ingest sequence number (PacketID attribution)
	hash    uint64 // Tuple.Hash64, the single source of shard/lane/table pinning
	seq32   uint32
	flags   TCPFlags
	// gap is the flow's accumulated shed-gap, claimed at admission time.
	// Claiming it here rather than at the lane keeps gap application in
	// admission order: a packet admitted before a shed must not absorb that
	// shed's gap just because the lane processed it later.
	gap int
}

// gwEngineShard is one scan replica's pipeline tail: hash-pinned per-flow
// stream lanes and a burst scanner. The scan engines themselves live on
// the generations (one Engine per (shard, generation), so scanner pools
// never mix automatons); a shard's lanes look up the engine through the
// flow's pinned generation, and its burst scanner through the current one.
// batch is the collector's partial burst for this shard; only the
// collector goroutine touches it.
type gwEngineShard struct {
	streamQ []chan seqPacket
	batchQ  chan []seqPacket
	batch   []seqPacket
	lanes   []laneState // watchdog state, parallel to streamQ
}

// gwGeneration is one installed ruleset generation: the compiled matcher,
// one engine per shard (each with its own worker pool and per-(shard,
// generation) scanner pool over that matcher's automaton), and the live
// refcount of flows pinned to it. A generation retires — engines and
// matcher released, counters folded into the gateway's retired baseline —
// when it is no longer current and its last pinned flow ends; the current
// generation never retires.
type gwGeneration struct {
	id      uint64 // Matcher.Generation of m
	m       *Matcher
	engines []*Engine
	// flows counts live pinned flows. Pinning happens only while the
	// packet that opens the flow is in flight (inflight > 0), and cur only
	// changes at a drained point, so a pin can never land on a generation
	// that is concurrently being swapped out — the race SwapRules'
	// drain barrier exists to exclude.
	flows atomic.Int64
	// retired is guarded by Gateway.genMu; set exactly once.
	retired bool
}

// laneState is one stream lane's watchdog view: how many packets are queued
// or in flight on the lane, and when the lane last made progress. There is
// no watchdog goroutine — the collector stamps lastProgress when a lane
// goes from empty to busy, the worker stamps it after every packet, and
// Health computes staleness on demand, so stall detection is deterministic
// and costs the hot path two atomics per packet.
type laneState struct {
	depth        atomic.Int64
	lastProgress atomic.Int64 // unix nanos
}

// Gateway starts a pipelined ingestion front-end over the engine. emit
// receives every match and must be safe for concurrent use. The returned
// Gateway is running; feed it with Ingest or IngestReader and Close it to
// drain.
//
// With cfg.EngineShards > 1 the receiver becomes shard 0 and the gateway
// builds the remaining shards as fresh Engines with the same worker count
// over the same compiled Matcher.
func (e *Engine) Gateway(cfg GatewayConfig, emit func(FlowMatch)) *Gateway {
	cfg = cfg.withDefaults(e)
	g := &Gateway{
		cfg:         cfg,
		workers:     e.Workers(),
		in:          make(chan seqPacket, cfg.QueueDepth),
		ruleFlows:   make([]atomic.Uint64, len(cfg.Rules)),
		ruleMatches: make([]atomic.Uint64, len(cfg.Rules)),
	}
	// A negative MaxTotalBuffer disables the global cap but the budget is
	// still kept, with an effectively infinite limit, so Stats can always
	// report how many out-of-order bytes are held across flows.
	if cfg.MaxTotalBuffer > 0 {
		g.budget = reassembly.NewBudget(cfg.MaxTotalBuffer)
	} else {
		g.budget = reassembly.NewBudget(math.MaxInt64)
	}
	g.asmCfg = reassembly.Config{
		Policy:       cfg.OverlapPolicy,
		MaxFlowBytes: cfg.MaxFlowBuffer,
		Budget:       g.budget,
		GapTimeout:   uint64(cfg.GapTimeout),
	}
	g.emit = func(fm FlowMatch) {
		g.matches.Add(1)
		emit(fm)
	}
	g.table = flowtable.New(flowtable.Config[*gwFlow]{
		New: func(k flowtable.Key) *gwFlow {
			fl := &gwFlow{g: g, tuple: k, shard: g.shardIndex(k)}
			fl.verdict, fl.ruleIdx = g.classify(k)
			if fl.verdict == VerdictNone || fl.verdict == VerdictAlert {
				fl.open()
			}
			return fl
		},
		Evict:     func(_ flowtable.Key, fl *gwFlow) { fl.close() },
		MaxFlows:  cfg.MaxFlows,
		IdleTicks: uint64(cfg.IdleTimeout),
		Shards:    cfg.FlowShards,
	})
	g.shards = make([]*gwEngineShard, cfg.EngineShards)
	g.panics = make([]atomic.Uint64, cfg.EngineShards)
	g.retiredStats = make([]EngineStats, cfg.EngineShards)
	// Generation 0-in-install-order: the matcher the gateway was started
	// on. Shard 0 reuses the caller's engine (exactly the pre-reload
	// construction); the other shards replicate it. SwapRules installs
	// later generations the same shape.
	gen0 := &gwGeneration{id: e.m.Generation(), m: e.m, engines: make([]*Engine, cfg.EngineShards)}
	for s := range gen0.engines {
		se := e
		if s > 0 {
			se = e.m.NewEngine(e.Workers())
		}
		// Arm the engine's batch-path panic containment: a panic scanning
		// one burst payload is recovered inside the engine worker (where it
		// would otherwise kill the process) and lands on this shard's panic
		// counter. Note this arms the engine itself — on a shared shard-0
		// engine, batch scans fed outside this gateway are contained too.
		shard := s
		se.eng.SetRecover(func(any) { g.panics[shard].Add(1) })
		gen0.engines[s] = se
	}
	g.cur.Store(gen0)
	g.gens = []*gwGeneration{gen0}
	g.gensInstall.Store(1)
	for s := range g.shards {
		shard := s
		sh := &gwEngineShard{
			streamQ: make([]chan seqPacket, cfg.StreamWorkers),
			batchQ:  make(chan []seqPacket, 2),
			lanes:   make([]laneState, cfg.StreamWorkers),
		}
		g.shards[s] = sh
		for w := range sh.streamQ {
			q := make(chan seqPacket, cfg.QueueDepth/cfg.StreamWorkers+1)
			sh.streamQ[w] = q
			g.workerWg.Add(1)
			go g.streamWorker(shard, &sh.lanes[w], q)
		}
		g.workerWg.Add(1)
		go g.burstScanner(shard, sh)
	}
	g.collectorWg.Add(1)
	go g.collect()
	return g
}

// NewGateway is the standalone constructor: it builds a private engine
// over m (default worker count — one per core) and starts the pipeline,
// equivalent to m.NewEngine(0).Gateway(cfg, emit). Nil arguments are
// rejected with a wrapped ErrBadConfig instead of a later panic, making
// this the error-checked seam callers outside a benchmark should use.
func NewGateway(m *Matcher, cfg GatewayConfig, emit func(FlowMatch)) (*Gateway, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: NewGateway with nil Matcher", ErrBadConfig)
	}
	if emit == nil {
		return nil, fmt.Errorf("%w: NewGateway with nil emit callback", ErrBadConfig)
	}
	return m.NewEngine(0).Gateway(cfg, emit), nil
}

// shardIndex returns the engine shard owning key — the same hash-derived
// pinning the collector routes by, so a flow's scanner state always comes
// from (and returns to) the pool of the shard whose lane scans it.
func (g *Gateway) shardIndex(k FiveTuple) int {
	if len(g.shards) == 1 {
		return 0
	}
	return int(k.Hash64() % uint64(len(g.shards)))
}

// classify runs the header rules over one 5-tuple: first matching rule
// wins; no rule means scan without attribution.
func (g *Gateway) classify(t FiveTuple) (Verdict, int) {
	for i := range g.cfg.Rules {
		if g.cfg.Rules[i].Header.Matches(t) {
			v := g.cfg.Rules[i].Verdict
			if v == VerdictNone {
				v = VerdictAlert
			}
			return v, i
		}
	}
	return VerdictNone, -1
}

// notifyVerdict counts a rule decision and forwards it to OnVerdict.
func (g *Gateway) notifyVerdict(t FiveTuple, v Verdict, idx int) {
	if idx < 0 {
		return
	}
	g.ruleFlows[idx].Add(1)
	switch v {
	case VerdictAlert:
		g.verdictAlerts.Add(1)
	case VerdictDrop:
		g.verdictDrops.Add(1)
	case VerdictPass:
		g.verdictPasses.Add(1)
	}
	if g.cfg.OnVerdict != nil {
		r := &g.cfg.Rules[idx]
		g.cfg.OnVerdict(FlowVerdict{Tuple: t, Verdict: v, RuleID: r.ID, RuleName: r.Name})
	}
}

// gwFlow is one connection's gateway-side state: the verdict decided from
// its first packet, the reassembly stream (created on the first FlagSeq
// segment), and the engine flow holding its scanner registers. All methods
// run under the flow-table entry lock, so a gwFlow is effectively
// single-goroutine.
type gwFlow struct {
	g     *Gateway
	shard int // engine shard owning this flow, from the tuple hash
	// gen is the ruleset generation this flow is pinned to, taken at open
	// and held until the flow boundary (FIN/RST/eviction/quarantine/
	// close): every byte of the connection scans against one automaton,
	// whatever reloads happen mid-flow. nil when unpinned (drop/pass
	// verdict flows, or after release). A FIN husk holds no pin — it owns
	// no scanner state — and a SYN re-open pins the then-current
	// generation, because it is a new connection.
	gen      *gwGeneration
	tuple    FiveTuple
	f        *Flow
	asm      *reassembly.Stream
	verdict  Verdict
	ruleIdx  int // index into cfg.Rules; -1 when no rule matched
	notified bool
	// done marks a connection completed by FIN. The entry lingers as a
	// husk (TIME_WAIT, in spirit) so straggling retransmissions are
	// recognized and discarded instead of respawning the flow; a SYN
	// re-opens it as a new connection. An RST, by contrast, removes the
	// entry from the table immediately — a post-RST straggler therefore
	// starts a fresh flow (midstream pickup), like any unseen tuple.
	done bool
}

// open pins the flow to the current ruleset generation and checks scanner
// state out of that generation's engine pool for this flow's shard,
// binding the match emission path with the flow's verdict attribution.
// open only runs while the packet creating (or SYN-reopening) the flow is
// in flight, so cur cannot move underneath it — see gwGeneration.flows.
func (fl *gwFlow) open() {
	v, rid, idx := VerdictNone, -1, fl.ruleIdx
	if idx >= 0 {
		v = VerdictAlert
		rid = fl.g.cfg.Rules[idx].ID
	}
	g := fl.g
	gen := g.cur.Load()
	gen.flows.Add(1)
	fl.gen = gen
	fl.f = gen.engines[fl.shard].Flow(func(m Match) {
		if idx >= 0 {
			g.ruleMatches[idx].Add(1)
		}
		g.emit(FlowMatch{Tuple: fl.tuple, Match: m, Verdict: v, RuleID: rid})
	})
}

// unpin releases the flow's generation pin at a flow boundary. Idempotent;
// when the last pin of a non-current generation drops, that generation is
// retired here, on the goroutine that ended the flow — retirement needs no
// background sweeper.
func (fl *gwFlow) unpin() {
	gen := fl.gen
	if gen == nil {
		return
	}
	fl.gen = nil
	if gen.flows.Add(-1) == 0 {
		fl.g.maybeRetire(gen)
	}
}

// heldBytes reports the flow's buffered out-of-order bytes. The quarantine
// path snapshots it around a panicking packet to charge the ledger exactly.
func (fl *gwFlow) heldBytes() int {
	if fl.asm == nil {
		return 0
	}
	return fl.asm.HeldBytes()
}

// ingest processes one segment. gap is the shed-bytes scanner gap pending
// for this flow (0 almost always; see Gateway.pendingGaps). It reports
// whether the flow should be removed from the table right now (RST
// teardown).
//
// Byte accounting here is transactional: each bucket add happens only after
// the operation that consumed the bytes returned, so when a scan (or a
// user callback) panics mid-packet, none of that packet's bytes are
// committed and the quarantine path charges them in one place.
func (fl *gwFlow) ingest(p seqPacket, gap int, tick uint64) bool {
	g := fl.g
	if !fl.notified {
		fl.notified = true
		g.notifyVerdict(fl.tuple, fl.verdict, fl.ruleIdx)
	}
	// RST tears the connection down whatever its verdict or husk state —
	// a dropped/passed or FIN-closed flow must not pin a table slot after
	// the endpoints abort it. An RST's own payload is never scanned:
	// abandoned, like the buffered bytes teardown releases.
	if p.flags&FlagRST != 0 {
		if !fl.done {
			g.flowsReset.Add(1)
		}
		fl.teardown()
		g.abandonedBytes.Add(uint64(len(p.payload)))
		return true
	}
	switch fl.verdict {
	case VerdictDrop:
		g.droppedBytes.Add(uint64(len(p.payload)))
		return false
	case VerdictPass:
		g.passedBytes.Add(uint64(len(p.payload)))
		return false
	}
	if fl.done {
		if p.flags&FlagSYN == 0 {
			g.dupBytes.Add(uint64(len(p.payload)))
			return false
		}
		// A SYN on a closed tuple is a new connection: fresh scanner
		// state, fresh reassembly positions — and its own verdict event
		// (the once-per-connection contract follows connections, not
		// table entries).
		fl.done = false
		fl.asm = nil
		fl.open()
		g.notifyVerdict(fl.tuple, fl.verdict, fl.ruleIdx)
	}
	if gap > 0 {
		// Bytes shed at admission sit between the flow's last scanned byte
		// and this packet: invalidate scanner state across them so no match
		// spans bytes the scanner never saw, keeping later offsets absolute
		// in the true stream. Not a reassembly gap — GapSkips is untouched;
		// the shed bytes are already in the Shed bucket.
		fl.f.SkipGap(gap)
	}
	if p.flags&FlagSeq == 0 {
		// Pre-reassembly semantics: the feed vouches for ordering and the
		// bytes append at the flow's current stream position.
		fl.f.WritePacket(p.payload, p.seq)
		g.scannedBytes.Add(uint64(len(p.payload)))
		if p.flags&FlagFIN != 0 {
			fl.finish()
		}
		return false
	}
	if fl.asm == nil {
		fl.asm = reassembly.NewStream(g.asmCfg)
	}
	// Explicit flag translation: the gateway and reassembly bit values
	// happen to coincide, but relying on that would let a renumbering in
	// either package silently misroute FIN/SYN. RST never reaches the
	// reassembler — it returned above.
	var rf reassembly.Flags
	if p.flags&FlagFIN != 0 {
		rf |= reassembly.FIN
	}
	if p.flags&FlagSYN != 0 {
		rf |= reassembly.SYN
	}
	res := fl.asm.Segment(p.seq32, p.payload, rf, tick,
		func(chunk []byte, skipped int) {
			if skipped > 0 {
				fl.f.SkipGap(skipped)
			}
			fl.f.WritePacket(chunk, p.seq)
		})
	g.reassembled.Add(uint64(res.Delivered))
	g.scannedBytes.Add(uint64(res.Delivered))
	if res.Buffered > 0 {
		g.oooSegs.Add(1)
	}
	if res.Duplicate > 0 {
		g.dupBytes.Add(uint64(res.Duplicate))
	}
	if res.Dropped > 0 {
		g.asmDropped.Add(uint64(res.Dropped))
	}
	if res.Skipped > 0 {
		g.gapSkips.Add(1)
		g.gapSkipBytes.Add(uint64(res.Skipped))
	}
	if res.Abandoned > 0 {
		g.abandonedBytes.Add(uint64(res.Abandoned))
	}
	if res.Event == reassembly.EventFinished {
		fl.finish()
	}
	return false
}

// finish retires a FIN-completed connection: scanner state returns to the
// pool immediately instead of waiting for table eviction; the husk entry
// stays behind to absorb stragglers.
func (fl *gwFlow) finish() {
	if fl.f != nil {
		fl.f.Close()
		fl.f = nil
	}
	fl.unpin()
	fl.releaseAsm(false)
	fl.done = true
	fl.g.flowsFinished.Add(1)
}

// teardown aborts the connection (RST): buffered bytes and scanner state
// are released; the caller removes the table entry.
func (fl *gwFlow) teardown() {
	if fl.f != nil {
		fl.f.Close()
		fl.f = nil
	}
	fl.unpin()
	fl.releaseAsm(false)
	fl.done = true
}

// close releases everything; the flow-table eviction callback.
func (fl *gwFlow) close() {
	if fl.f != nil {
		fl.f.Close()
		fl.f = nil
	}
	fl.unpin()
	fl.releaseAsm(true)
}

// releaseAsm returns the flow's buffered out-of-order bytes to the shared
// budget, charging them to the abandoned bucket: they were ingested but
// their flow is going away, so they will never be scanned. Release is
// idempotent (a second call frees 0), so finish → later eviction does not
// double-count.
func (fl *gwFlow) releaseAsm(drop bool) {
	if fl.asm == nil {
		return
	}
	if n := fl.asm.Release(); n > 0 {
		fl.g.abandonedBytes.Add(uint64(n))
	}
	if drop {
		fl.asm = nil
	}
}

// quarantine releases a flow whose scan panicked. The scanner state is
// discarded, NOT repooled — the panic may have left its registers
// mid-update, and handing them to an unrelated flow would corrupt that
// flow's matches. Buffered bytes are abandoned like any teardown. The
// caller (Gateway.quarantineFlow) removes the table entry and marks the
// tuple so stragglers are dropped at the lane.
func (fl *gwFlow) quarantine() {
	if fl.f != nil {
		fl.f.Discard()
		fl.f = nil
	}
	fl.unpin()
	fl.releaseAsm(true)
	fl.done = true
}

// Ingest queues one packet. Under OverloadPolicy Block (the default) it
// blocks when the pipeline is saturated — the backpressure contract: a
// caller reading from a NIC or file cannot outrun the scan stages by more
// than the queue and burst buffers. Under a shedding policy it may drop the
// packet instead (fully accounted; see TryIngest to observe which). It
// returns an error only on a closed gateway.
func (g *Gateway) Ingest(pkt GatewayPacket) error {
	_, err := g.TryIngest(pkt)
	return err
}

// TryIngest is Ingest reporting the admission decision: admitted is false
// when the configured shedding policy dropped the packet (always true under
// Block). A shed packet still counts in Packets/Bytes — it reached the
// sensor — and its payload lands in the Shed ledger bucket; a shed in-order
// TCP segment additionally arms a scanner gap so the exactness contract
// holds over the bytes that were delivered.
func (g *Gateway) TryIngest(pkt GatewayPacket) (admitted bool, err error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return false, fmt.Errorf("%w: Ingest", ErrClosed)
	}
	seq := g.seq.Add(1) - 1
	g.bytes.Add(uint64(len(pkt.Payload)))
	// The tuple hash drives every pinning decision downstream (engine
	// shard, stream lane, flow-table shard), so it is computed once here —
	// on the caller's goroutine, off the single-threaded collector — and
	// carried with the packet. Stateless packets on an unsharded gateway
	// never need it, except to answer ShedNewFlows' flow-table probe.
	pol := g.cfg.OverloadPolicy
	var h uint64
	if pkt.Tuple.Proto == ProtoTCP || len(g.shards) > 1 || pol == ShedNewFlows {
		h = pkt.Tuple.Hash64()
	}
	p := seqPacket{tuple: pkt.Tuple, payload: pkt.Payload, seq: int(seq), hash: h, seq32: pkt.Seq, flags: pkt.Flags}
	if pkt.Tuple.Proto == ProtoTCP && pkt.Flags&FlagSeq == 0 {
		// Claim any gap earlier sheds left for this flow, in admission
		// order. One atomic load until something has actually been shed.
		p.gap = g.takePendingGap(pkt.Tuple)
	}
	newFlow := false
	if pol == ShedNewFlows {
		// Established TCP connections keep today's backpressure — a flow
		// already under inspection is never starved mid-stream. Only
		// packets that would create state (unknown TCP tuples, stateless
		// traffic) are sheddable, so overload cannot grow the flow table.
		newFlow = pkt.Tuple.Proto != ProtoTCP || !g.table.Has(pkt.Tuple, h)
	}
	if pol == Block || (pol == ShedNewFlows && !newFlow) {
		g.inflight.Add(1)
		g.in <- p
		return true, nil
	}
	// Shedding admission: try without waiting, then wait out the bounded
	// deadline. inflight is raised across the attempt so a concurrent Flush
	// cannot declare the pipeline drained while this packet may still slip
	// in (TryIngest holds mu shared, Flush takes it exclusively).
	g.inflight.Add(1)
	select {
	case g.in <- p:
		return true, nil
	default:
	}
	if d := g.cfg.IngestDeadline; d > 0 {
		t := time.NewTimer(d)
		select {
		case g.in <- p:
			t.Stop()
			return true, nil
		case <-t.C:
		}
	}
	g.inflight.Add(-1)
	g.shed(p, newFlow)
	return false, nil
}

// shed accounts one dropped packet and, for an in-order TCP segment, arms
// the flow's pending scanner gap. A shed FlagSeq segment needs no gap: in
// sequence space it is indistinguishable from a segment lost upstream, and
// the reassembler's GapTimeout already skips such holes with scanner
// invalidation.
func (g *Gateway) shed(p seqPacket, newFlow bool) {
	g.shedPackets.Add(1)
	g.shedBytes.Add(uint64(len(p.payload)))
	if newFlow {
		g.shedFlows.Add(1)
	}
	if p.tuple.Proto == ProtoTCP && p.flags&FlagSeq == 0 && p.gap+len(p.payload) > 0 {
		// The shed packet's own bytes, plus any gap it had already claimed
		// at admission (which must not be lost with it).
		g.pendingMu.Lock()
		if g.pendingGaps == nil {
			g.pendingGaps = make(map[FiveTuple]int)
		}
		if _, ok := g.pendingGaps[p.tuple]; !ok {
			g.pendingN.Add(1)
		}
		g.pendingGaps[p.tuple] += p.gap + len(p.payload)
		g.pendingMu.Unlock()
	}
}

// takePendingGap consumes the flow's pending shed gap, if any. The atomic
// gate keeps the per-packet cost to one load until something is shed.
func (g *Gateway) takePendingGap(t FiveTuple) int {
	if g.pendingN.Load() == 0 {
		return 0
	}
	g.pendingMu.Lock()
	n, ok := g.pendingGaps[t]
	if ok {
		delete(g.pendingGaps, t)
	}
	g.pendingMu.Unlock()
	if ok {
		g.pendingN.Add(-1)
	}
	return n
}

// Flush blocks until every packet ingested before the call has been
// scanned (the queue is drained, partial bursts included), making Stats
// and EvictIdleFlows deterministic checkpoints. Flush serializes against
// Ingest: concurrent Ingest calls block until the flush completes, so the
// drain barrier cannot be raced past — Flush returns only at a true
// everything-scanned point.
func (g *Gateway) Flush() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.drainLocked()
}

// drainLocked spins until every admitted packet has been scanned. The
// caller holds g.mu exclusively, so no new packet can be admitted while it
// waits; the collector keeps flushing partial bursts whenever the queue
// goes idle, so inflight reaches zero without outside help.
func (g *Gateway) drainLocked() {
	for g.inflight.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
}

// SwapRules atomically installs a newer compiled matcher as the gateway's
// ruleset — the hot-reload control plane. The swap happens at a drained
// pipeline point (serialized against Ingest, Flush and Close exactly like
// Flush), which gives the two cutover guarantees for free:
//
//   - Stateless bursts cut over at a batch boundary: every burst admitted
//     before the swap is scanned with the old generation before the swap
//     completes; every burst after scans with the new one. No burst mixes
//     generations.
//   - Flows pin the generation they opened on. Existing flows keep
//     scanning against their pinned automaton until a flow boundary
//     (FIN/RST, idle or capacity eviction, quarantine, Close); new flows —
//     including SYN re-opens of finished connections — open on the new
//     generation. A match can therefore always be replayed exactly:
//     FindAll with the flow's pinned generation over its delivered bytes.
//
// The old generation retires (engines and matcher released, counters
// folded into the retired baseline) when its last pinned flow ends;
// SwapRules itself retires it immediately when no flow holds a pin.
//
// m must be strictly newer than the installed matcher: re-installing the
// current matcher or delivering an older compile (two reloaders racing)
// fails with ErrStaleGeneration and changes nothing. A nil m is
// ErrBadConfig; a closed gateway is ErrClosed. Shed policies, verdict
// rules and all sizing configuration are untouched by a swap.
func (g *Gateway) SwapRules(m *Matcher) error {
	if m == nil {
		return fmt.Errorf("%w: SwapRules with nil Matcher", ErrBadConfig)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("%w: SwapRules", ErrClosed)
	}
	g.drainLocked()
	old := g.cur.Load()
	if m.Generation() <= old.id {
		return fmt.Errorf("%w: matcher generation %d is not newer than installed generation %d",
			ErrStaleGeneration, m.Generation(), old.id)
	}
	gen := &gwGeneration{id: m.Generation(), m: m, engines: make([]*Engine, len(g.shards))}
	for s := range gen.engines {
		se := m.NewEngine(g.workers)
		shard := s
		se.eng.SetRecover(func(any) { g.panics[shard].Add(1) })
		gen.engines[s] = se
	}
	g.genMu.Lock()
	g.gens = append(g.gens, gen)
	g.genMu.Unlock()
	g.cur.Store(gen)
	g.swaps.Add(1)
	g.gensInstall.Add(1)
	g.maybeRetire(old)
	return nil
}

// maybeRetire retires gen if it can no longer receive work: not the
// current generation, no pinned flows, not already retired. Safe to call
// optimistically — it is invoked from the last unpin of a generation and
// from SwapRules after a cutover, and exactly one caller wins. Retirement
// folds the generation's per-shard engine counters into the gateway
// baseline (ShardStats stays monotone across swaps), drops the generation
// from the live list, and releases the engines and matcher to the
// collector.
func (g *Gateway) maybeRetire(gen *gwGeneration) {
	g.genMu.Lock()
	defer g.genMu.Unlock()
	if gen.retired || gen == g.cur.Load() || gen.flows.Load() != 0 {
		return
	}
	gen.retired = true
	for s, e := range gen.engines {
		g.retiredStats[s].add(e.Stats())
	}
	for i, other := range g.gens {
		if other == gen {
			g.gens = append(g.gens[:i], g.gens[i+1:]...)
			break
		}
	}
	gen.engines = nil
	gen.m = nil
	g.gensRetired.Add(1)
}

// GenerationInfo is one live (non-retired) ruleset generation's view on
// Generations: its identity, how many flows hold a pin to it, and whether
// it is the current generation new flows open on. An old generation
// lingering with Flows > 0 is draining; Flows stuck above zero means some
// long-lived connection is pinning it (see OPERATIONS.md's reload
// runbook).
type GenerationInfo struct {
	Generation uint64 `json:"generation"`
	Flows      int64  `json:"flows"`
	Current    bool   `json:"current"`
}

// Generations snapshots every live generation in install order (the
// current generation is always last and always present). Retired
// generations do not appear — their retirement is visible on
// GatewayStats.GenerationsRetired.
func (g *Gateway) Generations() []GenerationInfo {
	g.genMu.Lock()
	defer g.genMu.Unlock()
	cur := g.cur.Load()
	out := make([]GenerationInfo, 0, len(g.gens))
	for _, gen := range g.gens {
		out = append(out, GenerationInfo{Generation: gen.id, Flows: gen.flows.Load(), Current: gen == cur})
	}
	return out
}

// Generation reports the installed (current) ruleset generation — the
// Matcher.Generation new flows and stateless bursts scan with.
func (g *Gateway) Generation() uint64 { return g.cur.Load().id }

// IngestReader ingests framed packets from r until EOF (see WriteFrame for
// the frame format) and returns how many packets it ingested. Backpressure
// propagates to the reader: when the pipeline is saturated, reading pauses.
func (g *Gateway) IngestReader(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	n := 0
	for {
		pkt, err := ReadFrame(br, g.cfg.MaxFrameBytes)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := g.Ingest(pkt); err != nil {
			return n, err
		}
		n++
	}
}

// collect is the routing stage: one goroutine drains the ingest queue,
// sends TCP-like packets to their flow's lane on their hash-pinned engine
// shard, and accumulates everything else into per-shard ScanPackets-sized
// bursts. Partial bursts (every shard's) are flushed whenever the queue
// goes idle, so batching trades no latency under light load.
func (g *Gateway) collect() {
	defer g.collectorWg.Done()
	defer func() {
		for _, sh := range g.shards {
			close(sh.batchQ)
			for _, q := range sh.streamQ {
				close(q)
			}
		}
	}()
	nshards := uint64(len(g.shards))
	flushAll := func() {
		for _, sh := range g.shards {
			g.flushBurst(sh)
		}
	}
	route := func(p seqPacket) {
		sh := g.shards[p.hash%nshards]
		if p.tuple.Proto == ProtoTCP {
			// Dividing out the shard index decorrelates the lane choice
			// from the shard choice when their counts share factors; with
			// one shard it reduces to hash%lanes, the pre-sharding pinning.
			lane := (p.hash / nshards) % uint64(len(sh.streamQ))
			// Watchdog: raise the lane's depth before the (possibly
			// blocking) send, stamping progress on the empty→busy edge so
			// a lane that never dequeues shows its true stall age.
			if ls := &sh.lanes[lane]; ls.depth.Add(1) == 1 {
				ls.lastProgress.Store(time.Now().UnixNano())
			}
			sh.streamQ[lane] <- p
			return
		}
		sh.batch = append(sh.batch, p)
		if len(sh.batch) >= g.cfg.BatchPackets {
			g.flushBurst(sh)
		}
	}
	for {
		select {
		case p, ok := <-g.in:
			if !ok {
				flushAll()
				return
			}
			route(p)
		default:
			// Queue momentarily idle: don't sit on partial bursts.
			flushAll()
			p, ok := <-g.in
			if !ok {
				return
			}
			route(p)
		}
	}
}

// flushBurst hands a shard's partial burst to its burst scanner; only the
// collector goroutine calls it.
func (g *Gateway) flushBurst(sh *gwEngineShard) {
	if len(sh.batch) > 0 {
		sh.batchQ <- sh.batch
		sh.batch = make([]seqPacket, 0, g.cfg.BatchPackets)
	}
}

// streamWorker owns one per-flow lane: every packet of a given flow lands
// on the same lane (hash-pinned by the collector), so writes into the
// flow's scanner state are ordered without per-packet locking beyond the
// flow table's entry lock. The lane's packet counter doubles as the
// logical clock for reassembly gap timeouts. After every packet —
// including one whose scan panicked and was contained — the lane stamps
// its watchdog progress.
func (g *Gateway) streamWorker(shard int, ls *laneState, q <-chan seqPacket) {
	defer g.workerWg.Done()
	for p := range q {
		g.streamPacket(shard, p)
		ls.depth.Add(-1)
		ls.lastProgress.Store(time.Now().UnixNano())
	}
}

// streamPacket runs one packet through its flow, containing panics: a
// panic anywhere under the flow (a scanner bug, a hostile payload tripping
// an invariant, a user emit/OnVerdict callback) quarantines that one flow
// and the gateway keeps running. inflight is decremented in the same defer
// chain so Flush cannot wedge on a packet that blew up.
func (g *Gateway) streamPacket(shard int, p seqPacket) {
	defer g.inflight.Add(-1)
	if g.quarN.Load() != 0 && g.isQuarantined(p.tuple) {
		// Straggler of a quarantined flow: never touches scanner state.
		g.quarPackets.Add(1)
		g.quarBytes.Add(uint64(len(p.payload)))
		return
	}
	heldBefore := 0
	defer func() {
		if v := recover(); v != nil {
			g.containPanic(shard, v)
			g.quarantineFlow(p, heldBefore)
		}
	}()
	tick := g.stream.Add(1)
	var removeNow bool
	g.table.DoHashed(p.tuple, p.hash, func(fl *gwFlow) {
		heldBefore = fl.heldBytes()
		removeNow = fl.ingest(p, p.gap, tick)
	})
	if removeNow {
		// RST teardown: the same lane owns every packet of this flow,
		// so no concurrent Do on the tuple can interleave here.
		g.table.Remove(p.tuple)
	}
}

// containPanic records one recovered panic against its shard.
func (g *Gateway) containPanic(shard int, _ any) {
	g.panics[shard].Add(1)
}

func (g *Gateway) isQuarantined(t FiveTuple) bool {
	g.quarMu.Lock()
	_, ok := g.quarantined[t]
	g.quarMu.Unlock()
	return ok
}

// quarantineFlow evicts the flow whose packet just panicked and marks its
// tuple so later packets are dropped at the lane. The byte ledger stays
// exact: the panicking packet's bytes were never committed (ingest commits
// transactionally), so the quarantine bucket is charged the packet's
// payload plus whatever buffered bytes the aborted delivery drained before
// blowing up — payload + heldBefore − heldNow; the buffered bytes still
// held land in the abandoned bucket via the flow's release.
//
// Containment is best-effort under one rare race: if another lane's
// capacity eviction closes this flow between the panic and the re-lookup
// here, the lookup recreates (and immediately quarantines) a fresh flow,
// and the drained-held delta is charged against the fresh flow's empty
// buffer. The flow is still contained; only the ledger can overcount held
// bytes in that window. The deterministic chaos soak runs without capacity
// pressure, where the accounting is exact.
func (g *Gateway) quarantineFlow(p seqPacket, heldBefore int) {
	g.quarMu.Lock()
	if g.quarantined == nil {
		g.quarantined = make(map[FiveTuple]struct{})
	}
	g.quarantined[p.tuple] = struct{}{}
	g.quarMu.Unlock()
	g.quarN.Add(1)
	g.quarFlows.Add(1)
	g.quarPackets.Add(1)
	heldNow := heldBefore
	func() {
		// The flow is already poisoned; if releasing it panics too, give
		// up on its resources but keep the gateway (and the ledger's
		// packet charge) intact.
		defer func() { _ = recover() }()
		g.table.DoHashed(p.tuple, p.hash, func(fl *gwFlow) {
			heldNow = fl.heldBytes()
			fl.quarantine()
		})
		g.table.Remove(p.tuple)
	}()
	if delta := len(p.payload) + heldBefore - heldNow; delta > 0 {
		g.quarBytes.Add(uint64(delta))
	}
}

// burstScanner scans one shard's stateless bursts with that shard's
// engine worker pool. The verdict stage runs per packet here (stateless
// traffic has no flow to remember a decision on): drop/pass packets never
// reach the engine, and matches on alert-admitted packets carry the rule
// attribution. One results buffer is reused across bursts so steady-state
// batch scanning does not allocate per burst.
func (g *Gateway) burstScanner(shard int, sh *gwEngineShard) {
	defer g.workerWg.Done()
	var st burstState
	for batch := range sh.batchQ {
		g.scanBurst(shard, batch, &st)
	}
}

// burstState is one burst scanner's reusable working set, so steady-state
// batch scanning does not allocate per burst.
type burstState struct {
	buf      [][]ac.Match
	kept     []seqPacket
	payloads [][]byte
	ruleIdx  []int
}

// scanBurst scans one stateless burst with the shard's engine. Panics
// inside the engine's scan are contained by the engine itself (SetRecover,
// armed at construction); panics in this function — a user OnVerdict or
// emit callback — are contained here, with the batch's not-yet-committed
// bytes charged to the quarantine bucket so the ledger stays exact, and
// inflight decremented in the defer chain so Flush cannot wedge.
func (g *Gateway) scanBurst(shard int, batch []seqPacket, st *burstState) {
	defer g.inflight.Add(-int64(len(batch)))
	// One generation per burst, read once: the batch's packets hold
	// inflight until the deferred decrement above, and SwapRules only
	// moves cur at inflight zero, so cur is frozen for the whole burst —
	// the batch-boundary cutover guarantee.
	gen := g.cur.Load()
	var total, committed uint64
	for _, p := range batch {
		total += uint64(len(p.payload))
	}
	defer func() {
		if v := recover(); v != nil {
			g.containPanic(shard, v)
			if total > committed {
				g.quarBytes.Add(total - committed)
				g.quarPackets.Add(1)
			}
		}
	}()
	g.bursts.Add(1)
	g.batched.Add(uint64(len(batch)))
	st.kept, st.payloads, st.ruleIdx = st.kept[:0], st.payloads[:0], st.ruleIdx[:0]
	var keptBytes uint64
	for _, p := range batch {
		v, idx := g.classify(p.tuple)
		g.notifyVerdict(p.tuple, v, idx)
		switch v {
		case VerdictDrop:
			g.droppedBytes.Add(uint64(len(p.payload)))
			committed += uint64(len(p.payload))
			continue
		case VerdictPass:
			g.passedBytes.Add(uint64(len(p.payload)))
			committed += uint64(len(p.payload))
			continue
		}
		st.kept = append(st.kept, p)
		st.payloads = append(st.payloads, p.payload)
		st.ruleIdx = append(st.ruleIdx, idx)
		keptBytes += uint64(len(p.payload))
	}
	if len(st.kept) > 0 {
		st.buf = gen.engines[shard].eng.ScanPacketsInto(st.payloads, st.buf)
		// The engine delivered every payload to a scanner (a contained
		// engine panic costs only that payload's matches), so the whole
		// kept set commits as scanned.
		g.scannedBytes.Add(keptBytes)
		committed += keptBytes
		for i, ms := range st.buf {
			v, rid := VerdictNone, -1
			if st.ruleIdx[i] >= 0 {
				v = VerdictAlert
				rid = g.cfg.Rules[st.ruleIdx[i]].ID
			}
			for _, am := range ms {
				if st.ruleIdx[i] >= 0 {
					g.ruleMatches[st.ruleIdx[i]].Add(1)
				}
				g.emit(FlowMatch{Tuple: st.kept[i].tuple, Match: gen.m.convert(am, st.kept[i].seq), Verdict: v, RuleID: rid})
			}
		}
	}
}

// Close drains the pipeline: it stops accepting packets, flushes any
// partial burst, waits for the scan stages to finish, and returns all flow
// state to the engine pool. Close is idempotent.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	close(g.in)
	g.collectorWg.Wait()
	g.workerWg.Wait()
	g.table.Close()
	return nil
}

// Backend reports the scan backend the current generation's lanes and
// burst scanners run (see Config.Backend). Matchers swapped in with a
// different Backend configuration change this value at the swap.
func (g *Gateway) Backend() string {
	// genMu keeps maybeRetire from releasing the loaded generation's
	// engines between the Load and the read: the current generation is
	// never retired, and retirement of a just-swapped-out one needs this
	// lock.
	g.genMu.Lock()
	defer g.genMu.Unlock()
	return g.cur.Load().engines[0].Backend()
}

// ShardStats returns one engine-work snapshot per engine shard, in shard
// order — how the ingested traffic fanned out across the scan replicas.
// Each shard's snapshot aggregates every generation that scanned on it:
// the retired baseline plus the live generations' engines, so the
// counters stay monotone across ruleset swaps. Shard 0 of the initial
// generation is the engine the gateway was started on; on a shared
// engine its counters may include work fed outside this gateway.
func (g *Gateway) ShardStats() []EngineStats {
	g.genMu.Lock()
	defer g.genMu.Unlock()
	out := make([]EngineStats, len(g.shards))
	for s := range out {
		st := g.retiredStats[s]
		for _, gen := range g.gens {
			st.add(gen.engines[s].Stats())
		}
		out[s] = st
	}
	return out
}

// RuleStats is one verdict rule's running counters. Flows counts the
// classification decisions the rule made (once per TCP connection, once
// per stateless packet); Matches counts the emitted matches it admitted —
// always zero for drop/pass rules, whose traffic is never scanned.
type RuleStats struct {
	ID      int
	Name    string
	Verdict Verdict // the configured action, with VerdictNone normalized to alert
	Flows   uint64
	Matches uint64
}

// RuleStats returns per-rule counters in cfg.Rules order. Like Stats, it
// may be called while the gateway is running.
func (g *Gateway) RuleStats() []RuleStats {
	out := make([]RuleStats, len(g.cfg.Rules))
	for i := range g.cfg.Rules {
		r := &g.cfg.Rules[i]
		v := r.Verdict
		if v == VerdictNone {
			v = VerdictAlert
		}
		out[i] = RuleStats{
			ID:      r.ID,
			Name:    r.Name,
			Verdict: v,
			Flows:   g.ruleFlows[i].Load(),
			Matches: g.ruleMatches[i].Load(),
		}
	}
	return out
}

// EvictIdleFlows exhaustively evicts flows beyond the configured
// IdleTimeout (the pipeline also evicts opportunistically as packets
// arrive) and returns how many were evicted.
func (g *Gateway) EvictIdleFlows() int { return g.table.EvictIdle() }

// PanicsByShard returns the recovered-panic count per engine shard, in
// shard order — the dpi_panics_total{shard} series. A non-zero cell names
// the shard whose lane or burst scanner contained a panic.
func (g *Gateway) PanicsByShard() []uint64 {
	out := make([]uint64, len(g.panics))
	for i := range g.panics {
		out[i] = g.panics[i].Load()
	}
	return out
}

func (g *Gateway) panicsTotal() uint64 {
	var n uint64
	for i := range g.panics {
		n += g.panics[i].Load()
	}
	return n
}

// LaneHealth is one stream lane's watchdog reading at the time of a Health
// call: its queued-or-in-flight depth and how long ago it last completed a
// packet (or, for a lane that never started, was first handed one).
type LaneHealth struct {
	Shard   int           `json:"shard"`
	Lane    int           `json:"lane"`
	Depth   int64         `json:"depth"`
	Age     time.Duration `json:"age_ns"`
	Stalled bool          `json:"stalled"`
}

// GatewayHealth is a liveness snapshot: Healthy is false exactly when some
// lane holds work older than StallThreshold — a wedged scanner, a blocked
// emit callback, a deadlocked downstream consumer. Contained panics and
// quarantined flows do NOT unhealth the gateway (containment working is
// the healthy outcome); they are included so a /healthz probe can alert on
// their rate without scraping the full metrics surface.
type GatewayHealth struct {
	Healthy          bool         `json:"healthy"`
	Panics           uint64       `json:"panics"`
	QuarantinedFlows uint64       `json:"quarantined_flows"`
	BusyLanes        []LaneHealth `json:"busy_lanes,omitempty"`
}

// Health computes the watchdog snapshot on demand — there is no background
// watchdog goroutine, so detection is deterministic and costs nothing when
// nobody asks. Every lane currently holding work is reported; the stalled
// ones flip Healthy to false.
func (g *Gateway) Health() GatewayHealth {
	now := time.Now().UnixNano()
	h := GatewayHealth{
		Healthy:          true,
		Panics:           g.panicsTotal(),
		QuarantinedFlows: g.quarFlows.Load(),
	}
	for si, sh := range g.shards {
		for li := range sh.lanes {
			ls := &sh.lanes[li]
			d := ls.depth.Load()
			if d <= 0 {
				continue
			}
			age := time.Duration(now - ls.lastProgress.Load())
			lh := LaneHealth{Shard: si, Lane: li, Depth: d, Age: age, Stalled: age > g.cfg.StallThreshold}
			if lh.Stalled {
				h.Healthy = false
			}
			h.BusyLanes = append(h.BusyLanes, lh)
		}
	}
	return h
}

// Stats returns a counter snapshot. It may be called while the gateway is
// running; counters are monotone but mutually unsynchronized.
func (g *Gateway) Stats() GatewayStats {
	ts := g.table.Stats()
	return GatewayStats{
		EngineShards:  len(g.shards),
		Packets:       g.seq.Load(),
		Bytes:         g.bytes.Load(),
		StreamPackets: g.stream.Load(),
		BatchPackets:  g.batched.Load(),
		Batches:       g.bursts.Load(),
		Matches:       g.matches.Load(),
		ScannedBytes:  g.scannedBytes.Load(),

		ShedPackets:  g.shedPackets.Load(),
		ShedBytes:    g.shedBytes.Load(),
		ShedNewFlows: g.shedFlows.Load(),

		Panics:             g.panicsTotal(),
		QuarantinedFlows:   g.quarFlows.Load(),
		QuarantinedPackets: g.quarPackets.Load(),
		QuarantinedBytes:   g.quarBytes.Load(),

		ReassembledBytes: g.reassembled.Load(),
		BufferedBytes:    g.budget.Used(),
		OutOfOrderSegs:   g.oooSegs.Load(),
		DuplicateBytes:   g.dupBytes.Load(),
		ReassemblyDrops:  g.asmDropped.Load(),
		GapSkips:         g.gapSkips.Load(),
		GapSkippedBytes:  g.gapSkipBytes.Load(),

		VerdictAlerts: g.verdictAlerts.Load(),
		VerdictDrops:  g.verdictDrops.Load(),
		VerdictPasses: g.verdictPasses.Load(),
		DroppedBytes:  g.droppedBytes.Load(),
		PassedBytes:   g.passedBytes.Load(),

		AbandonedBytes: g.abandonedBytes.Load(),

		FlowsLive:     ts.Live,
		FlowsCreated:  ts.Created,
		FlowsEvicted:  ts.EvictedCap + ts.EvictedIdle + ts.Removed,
		FlowsFinished: g.flowsFinished.Load(),
		FlowsReset:    g.flowsReset.Load(),

		Generation:           g.cur.Load().id,
		RulesetSwaps:         g.swaps.Load(),
		GenerationsInstalled: g.gensInstall.Load(),
		GenerationsRetired:   g.gensRetired.Load(),
		GenerationsLive:      g.liveGenerations(),
	}
}

// liveGenerations counts the non-retired generations under genMu.
func (g *Gateway) liveGenerations() int {
	g.genMu.Lock()
	defer g.genMu.Unlock()
	return len(g.gens)
}

// Frame format v2 for IngestReader/WriteFrame: a 23-byte big-endian header —
// Version(1)=2 SrcIP(4) DstIP(4) SrcPort(2) DstPort(2) Proto(1) Flags(1)
// Seq(4) PayloadLen(4) — followed by PayloadLen payload bytes. v2 extends
// the original 17-byte format with the leading version byte plus the TCP
// Flags/Seq fields that drive reassembly; v1 frames (which had no version
// byte) are no longer accepted — re-encode feeds with WriteFrame.
const (
	frameVersion   = 2
	frameHeaderLen = 23
)

// WriteFrame writes pkt in the gateway's frame format.
func WriteFrame(w io.Writer, pkt GatewayPacket) error {
	var hdr [frameHeaderLen]byte
	hdr[0] = frameVersion
	binary.BigEndian.PutUint32(hdr[1:], pkt.Tuple.SrcIP)
	binary.BigEndian.PutUint32(hdr[5:], pkt.Tuple.DstIP)
	binary.BigEndian.PutUint16(hdr[9:], pkt.Tuple.SrcPort)
	binary.BigEndian.PutUint16(hdr[11:], pkt.Tuple.DstPort)
	hdr[13] = pkt.Tuple.Proto
	hdr[14] = byte(pkt.Flags)
	binary.BigEndian.PutUint32(hdr[15:], pkt.Seq)
	binary.BigEndian.PutUint32(hdr[19:], uint32(len(pkt.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(pkt.Payload)
	return err
}

// ReadFrame reads one framed packet. It returns io.EOF cleanly at a frame
// boundary and io.ErrUnexpectedEOF on a truncated frame. Frames with an
// unknown version byte are rejected immediately; frames whose payload
// exceeds maxPayload are rejected without allocating.
func ReadFrame(r io.Reader, maxPayload int) (GatewayPacket, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return GatewayPacket{}, err // io.EOF here is a clean end of feed
	}
	if hdr[0] != frameVersion {
		return GatewayPacket{}, fmt.Errorf("dpi: unsupported frame version %d (want %d)", hdr[0], frameVersion)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return GatewayPacket{}, err
	}
	n := binary.BigEndian.Uint32(hdr[19:])
	if int64(n) > int64(maxPayload) {
		return GatewayPacket{}, fmt.Errorf("dpi: frame payload %d exceeds limit %d", n, maxPayload)
	}
	pkt := GatewayPacket{
		Tuple: FiveTuple{
			SrcIP:   binary.BigEndian.Uint32(hdr[1:]),
			DstIP:   binary.BigEndian.Uint32(hdr[5:]),
			SrcPort: binary.BigEndian.Uint16(hdr[9:]),
			DstPort: binary.BigEndian.Uint16(hdr[11:]),
			Proto:   hdr[13],
		},
		Flags: TCPFlags(hdr[14]),
		Seq:   binary.BigEndian.Uint32(hdr[15:]),
	}
	if n > 0 {
		pkt.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, pkt.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return GatewayPacket{}, err
		}
	}
	return pkt, nil
}
