package dpi

// The gateway layer turns the library into the NIDS front-end the paper
// deploys (§I): packets arrive tagged with their 5-tuple, are demultiplexed
// into per-connection streams, and every payload byte flows through the
// shared compressed automaton at one transition per byte. The software
// pipeline mirrors the hardware's structure — a bounded ingest queue plays
// the role of the input FIFO, stateless packets are batched into bursts
// across the engine's worker lanes, and TCP-like packets are pinned to a
// lane by flow hash so each connection's scanner registers see its bytes in
// order, exactly as a hardware engine owns a packet stream.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ac"
	"repro/internal/flowtable"
	"repro/internal/nids"
)

// FiveTuple is the packet classification header keying flows, shared with
// the internal NIDS rule model.
type FiveTuple = nids.FiveTuple

// IP protocol numbers for FiveTuple.Proto.
const (
	ProtoAny  = nids.ProtoAny
	ProtoICMP = nids.ProtoICMP
	ProtoTCP  = nids.ProtoTCP
	ProtoUDP  = nids.ProtoUDP
)

// GatewayPacket is one ingested packet: a payload tagged with its flow's
// 5-tuple. The Gateway takes ownership of Payload; callers that reuse
// buffers must copy first.
type GatewayPacket struct {
	Tuple   FiveTuple
	Payload []byte
}

// FlowMatch is a match attributed to a flow. For stream-routed (TCP)
// packets, Start/End are offsets into the flow's reassembled byte stream
// and PacketID is the ingest sequence number of the packet whose bytes
// completed the match — cross-packet matches carry the sequence number of
// the finishing segment. For batch-routed packets, Start/End are offsets
// into that packet's payload and PacketID is its ingest sequence number.
type FlowMatch struct {
	Tuple FiveTuple
	Match
}

// GatewayConfig sizes the ingest pipeline. The zero value selects sensible
// defaults throughout.
type GatewayConfig struct {
	// BatchPackets is the burst size for stateless (non-TCP) packets: the
	// collector accumulates up to this many packets before a burst is
	// scanned by Engine.ScanPackets. Partial bursts flush whenever the
	// ingest queue goes momentarily idle, so batching never adds unbounded
	// latency. Default 64.
	BatchPackets int
	// QueueDepth bounds the ingest queue; a full queue blocks Ingest,
	// which is the gateway's backpressure. Default 4*BatchPackets.
	QueueDepth int
	// StreamWorkers is the number of per-flow scan lanes. Each flow is
	// pinned to one lane by tuple hash, so per-flow packet order (and
	// therefore cross-packet matching) is preserved while distinct flows
	// scan in parallel. Default Engine.Workers().
	StreamWorkers int
	// MaxFlows softly caps live flow state: when exceeded, the
	// least-recently-active flows are evicted and their scanner state
	// returns to the engine pool. The live count stays within MaxFlows
	// plus the table's shard count. Default 65536; negative disables.
	MaxFlows int
	// IdleTimeout evicts a flow after this many table-wide stream packets
	// pass without it seeing one (a logical clock, deterministic and
	// load-proportional — a line-rate gateway experiences time in packets).
	// 0 disables idle eviction.
	IdleTimeout int
	// FlowShards is the flow table's lock-shard count. Default 64.
	FlowShards int
	// MaxFrameBytes caps the payload length IngestReader accepts per
	// frame, bounding memory against corrupt or hostile feeds. Default 1MiB.
	MaxFrameBytes int
}

func (c GatewayConfig) withDefaults(e *Engine) GatewayConfig {
	if c.BatchPackets <= 0 {
		c.BatchPackets = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.BatchPackets
	}
	if c.StreamWorkers <= 0 {
		c.StreamWorkers = e.Workers()
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = 1 << 16
	}
	if c.MaxFlows < 0 {
		c.MaxFlows = 0
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 1 << 20
	}
	return c
}

// GatewayStats is a point-in-time counter snapshot.
type GatewayStats struct {
	Packets       uint64 // packets ingested
	Bytes         uint64 // payload bytes ingested
	StreamPackets uint64 // routed through per-flow stream state
	BatchPackets  uint64 // scanned statelessly in bursts
	Batches       uint64 // bursts handed to Engine.ScanPackets
	Matches       uint64 // FlowMatches emitted
	FlowsLive     int
	FlowsCreated  uint64
	FlowsEvicted  uint64 // capacity + idle evictions
}

// Gateway is a pipelined ingestion front-end over an Engine: a bounded
// ingest queue, a collector that routes packets, per-flow stream lanes fed
// through a 5-tuple flow table, and a burst scanner for stateless packets.
//
//	Ingest ──▶ queue ──▶ collector ──▶ stream lanes (TCP, per-flow state)
//	                          └──────▶ burst scanner (Engine.ScanPackets)
//
// Ingest and IngestReader may be called from multiple goroutines; emit is
// invoked concurrently (from the stream lanes and the burst scanner) and
// must be safe for concurrent use. Close drains the pipeline, flushes any
// partial burst, and returns all flow state to the engine pool.
type Gateway struct {
	e    *Engine
	cfg  GatewayConfig
	emit func(FlowMatch)

	in      chan seqPacket
	batchQ  chan []seqPacket
	streamQ []chan seqPacket
	table   *flowtable.Table[*Flow]

	mu     sync.RWMutex // guards closed vs in-flight Ingest sends
	closed bool

	collectorWg sync.WaitGroup
	workerWg    sync.WaitGroup

	seq      atomic.Uint64
	inflight atomic.Int64
	bytes    atomic.Uint64
	stream   atomic.Uint64
	batched  atomic.Uint64
	bursts   atomic.Uint64
	matches  atomic.Uint64
}

type seqPacket struct {
	tuple   FiveTuple
	payload []byte
	seq     int
}

// Gateway starts a pipelined ingestion front-end over the engine. emit
// receives every match and must be safe for concurrent use. The returned
// Gateway is running; feed it with Ingest or IngestReader and Close it to
// drain.
func (e *Engine) Gateway(cfg GatewayConfig, emit func(FlowMatch)) *Gateway {
	cfg = cfg.withDefaults(e)
	g := &Gateway{
		e:      e,
		cfg:    cfg,
		in:     make(chan seqPacket, cfg.QueueDepth),
		batchQ: make(chan []seqPacket, 2),
	}
	g.emit = func(fm FlowMatch) {
		g.matches.Add(1)
		emit(fm)
	}
	g.table = flowtable.New(flowtable.Config[*Flow]{
		New: func(k flowtable.Key) *Flow {
			return e.Flow(func(m Match) { g.emit(FlowMatch{Tuple: k, Match: m}) })
		},
		Evict:     func(_ flowtable.Key, f *Flow) { f.Close() },
		MaxFlows:  cfg.MaxFlows,
		IdleTicks: uint64(cfg.IdleTimeout),
		Shards:    cfg.FlowShards,
	})
	g.streamQ = make([]chan seqPacket, cfg.StreamWorkers)
	for w := range g.streamQ {
		q := make(chan seqPacket, cfg.QueueDepth/cfg.StreamWorkers+1)
		g.streamQ[w] = q
		g.workerWg.Add(1)
		go g.streamWorker(q)
	}
	g.workerWg.Add(1)
	go g.burstScanner()
	g.collectorWg.Add(1)
	go g.collect()
	return g
}

// Ingest queues one packet, blocking when the pipeline is saturated (the
// backpressure contract: a caller reading from a NIC or file cannot outrun
// the scan stages by more than the queue and burst buffers). It returns an
// error only on a closed gateway.
func (g *Gateway) Ingest(pkt GatewayPacket) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return fmt.Errorf("dpi: Ingest on closed Gateway")
	}
	seq := g.seq.Add(1) - 1
	g.inflight.Add(1)
	g.bytes.Add(uint64(len(pkt.Payload)))
	g.in <- seqPacket{tuple: pkt.Tuple, payload: pkt.Payload, seq: int(seq)}
	return nil
}

// Flush blocks until every packet ingested before the call has been
// scanned (the queue is drained, partial bursts included), making Stats
// and EvictIdleFlows deterministic checkpoints. Packets ingested
// concurrently with Flush may keep it waiting.
func (g *Gateway) Flush() {
	for g.inflight.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
}

// IngestReader ingests framed packets from r until EOF (see WriteFrame for
// the frame format) and returns how many packets it ingested. Backpressure
// propagates to the reader: when the pipeline is saturated, reading pauses.
func (g *Gateway) IngestReader(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	n := 0
	for {
		pkt, err := ReadFrame(br, g.cfg.MaxFrameBytes)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := g.Ingest(pkt); err != nil {
			return n, err
		}
		n++
	}
}

// collect is the routing stage: one goroutine drains the ingest queue,
// sends TCP-like packets to their flow's lane, and accumulates everything
// else into ScanPackets-sized bursts. A partial burst is flushed whenever
// the queue goes idle, so batching trades no latency under light load.
func (g *Gateway) collect() {
	defer g.collectorWg.Done()
	defer func() {
		close(g.batchQ)
		for _, q := range g.streamQ {
			close(q)
		}
	}()
	batch := make([]seqPacket, 0, g.cfg.BatchPackets)
	flush := func() {
		if len(batch) > 0 {
			g.batchQ <- batch
			batch = make([]seqPacket, 0, g.cfg.BatchPackets)
		}
	}
	route := func(p seqPacket) {
		if p.tuple.Proto == ProtoTCP {
			g.streamQ[int(p.tuple.Hash64()%uint64(len(g.streamQ)))] <- p
			return
		}
		batch = append(batch, p)
		if len(batch) >= g.cfg.BatchPackets {
			flush()
		}
	}
	for {
		select {
		case p, ok := <-g.in:
			if !ok {
				flush()
				return
			}
			route(p)
		default:
			// Queue momentarily idle: don't sit on a partial burst.
			flush()
			p, ok := <-g.in
			if !ok {
				return
			}
			route(p)
		}
	}
}

// streamWorker owns one per-flow lane: every packet of a given flow lands
// on the same lane (hash-pinned by the collector), so writes into the
// flow's scanner state are ordered without per-packet locking beyond the
// flow table's entry lock.
func (g *Gateway) streamWorker(q <-chan seqPacket) {
	defer g.workerWg.Done()
	for p := range q {
		g.stream.Add(1)
		g.table.Do(p.tuple, func(f *Flow) {
			f.WritePacket(p.payload, p.seq)
		})
		g.inflight.Add(-1)
	}
}

// burstScanner scans stateless bursts with the engine's worker pool,
// reusing one results buffer across bursts so steady-state batch scanning
// does not allocate per burst.
func (g *Gateway) burstScanner() {
	defer g.workerWg.Done()
	var buf [][]ac.Match
	for batch := range g.batchQ {
		g.bursts.Add(1)
		g.batched.Add(uint64(len(batch)))
		payloads := make([][]byte, len(batch))
		for i, p := range batch {
			payloads[i] = p.payload
		}
		buf = g.e.eng.ScanPacketsInto(payloads, buf)
		for i, ms := range buf {
			for _, am := range ms {
				g.emit(FlowMatch{Tuple: batch[i].tuple, Match: g.e.m.convert(am, batch[i].seq)})
			}
		}
		g.inflight.Add(-int64(len(batch)))
	}
}

// Close drains the pipeline: it stops accepting packets, flushes any
// partial burst, waits for the scan stages to finish, and returns all flow
// state to the engine pool. Close is idempotent.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	close(g.in)
	g.collectorWg.Wait()
	g.workerWg.Wait()
	g.table.Close()
	return nil
}

// EvictIdleFlows exhaustively evicts flows beyond the configured
// IdleTimeout (the pipeline also evicts opportunistically as packets
// arrive) and returns how many were evicted.
func (g *Gateway) EvictIdleFlows() int { return g.table.EvictIdle() }

// Stats returns a counter snapshot. It may be called while the gateway is
// running; counters are monotone but mutually unsynchronized.
func (g *Gateway) Stats() GatewayStats {
	ts := g.table.Stats()
	return GatewayStats{
		Packets:       g.seq.Load(),
		Bytes:         g.bytes.Load(),
		StreamPackets: g.stream.Load(),
		BatchPackets:  g.batched.Load(),
		Batches:       g.bursts.Load(),
		Matches:       g.matches.Load(),
		FlowsLive:     ts.Live,
		FlowsCreated:  ts.Created,
		FlowsEvicted:  ts.EvictedCap + ts.EvictedIdle,
	}
}

// Frame format for IngestReader/WriteFrame: a 17-byte big-endian header —
// SrcIP(4) DstIP(4) SrcPort(2) DstPort(2) Proto(1) PayloadLen(4) —
// followed by PayloadLen payload bytes.
const frameHeaderLen = 17

// WriteFrame writes pkt in the gateway's frame format.
func WriteFrame(w io.Writer, pkt GatewayPacket) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], pkt.Tuple.SrcIP)
	binary.BigEndian.PutUint32(hdr[4:], pkt.Tuple.DstIP)
	binary.BigEndian.PutUint16(hdr[8:], pkt.Tuple.SrcPort)
	binary.BigEndian.PutUint16(hdr[10:], pkt.Tuple.DstPort)
	hdr[12] = pkt.Tuple.Proto
	binary.BigEndian.PutUint32(hdr[13:], uint32(len(pkt.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(pkt.Payload)
	return err
}

// ReadFrame reads one framed packet. It returns io.EOF cleanly at a frame
// boundary and io.ErrUnexpectedEOF on a truncated frame. Frames whose
// payload exceeds maxPayload are rejected without allocating.
func ReadFrame(r io.Reader, maxPayload int) (GatewayPacket, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return GatewayPacket{}, err // io.EOF here is a clean end of feed
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return GatewayPacket{}, err
	}
	n := binary.BigEndian.Uint32(hdr[13:])
	if int64(n) > int64(maxPayload) {
		return GatewayPacket{}, fmt.Errorf("dpi: frame payload %d exceeds limit %d", n, maxPayload)
	}
	pkt := GatewayPacket{
		Tuple: FiveTuple{
			SrcIP:   binary.BigEndian.Uint32(hdr[0:]),
			DstIP:   binary.BigEndian.Uint32(hdr[4:]),
			SrcPort: binary.BigEndian.Uint16(hdr[8:]),
			DstPort: binary.BigEndian.Uint16(hdr[10:]),
			Proto:   hdr[12],
		},
	}
	if n > 0 {
		pkt.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, pkt.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return GatewayPacket{}, err
		}
	}
	return pkt, nil
}
