package dpi

import (
	"repro/internal/ac"
	"repro/internal/core"
)

// Stream scans a packet delivered in arbitrary chunks — the software
// analogue of an engine consuming bytes as they arrive from the wire.
// Matches spanning chunk boundaries are found; offsets are relative to the
// start of the stream (since the last Reset). Stream implements io.Writer.
type Stream struct {
	m        *Matcher
	scanners []*core.Scanner
	emit     func(Match)
	consumed int
}

// NewStream returns a stream that calls emit for every match. One Stream
// corresponds to one packet/flow; create one per concurrent flow and Reset
// between packets.
func (m *Matcher) NewStream(emit func(Match)) *Stream {
	s := &Stream{m: m, emit: emit}
	for _, machine := range m.grouped.Machines {
		s.scanners = append(s.scanners, machine.NewScanner())
	}
	return s
}

// Write consumes the next chunk of payload. It never fails; the error is
// part of the io.Writer contract. Match offsets emitted by the scanners
// are already stream-relative because each scanner's position persists
// across Write calls.
func (s *Stream) Write(p []byte) (int, error) {
	for _, sc := range s.scanners {
		sc.Scan(p, func(am ac.Match) {
			s.emit(s.m.convert(am, -1))
		})
	}
	s.consumed += len(p)
	return len(p), nil
}

// Reset rewinds the stream to start-of-packet: automaton states and the
// 2-byte histories are cleared, and offsets restart at zero.
func (s *Stream) Reset() {
	for _, sc := range s.scanners {
		sc.Reset()
	}
	s.consumed = 0
}

// Consumed returns the bytes scanned since the last Reset.
func (s *Stream) Consumed() int { return s.consumed }
