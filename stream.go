package dpi

import (
	"repro/internal/ac"
	"repro/internal/core"
)

// Stream scans a packet delivered in arbitrary chunks — the software
// analogue of an engine consuming bytes as they arrive from the wire.
// Matches spanning chunk boundaries are found; offsets are relative to the
// start of the stream (since the last Reset). Stream implements io.Writer.
//
// Ordering guarantee: matches found within one Write call are emitted
// sorted by (End, PatternID). A match is always discovered in the chunk
// containing its final byte and chunks arrive in stream order, so the full
// emission sequence across Writes is exactly the sequence FindAll would
// return for the concatenated stream.
//
// A Stream is not safe for concurrent use; give each concurrent flow its
// own Stream (or use Engine.Flow, which additionally pools scanner state).
type Stream struct {
	m        *Matcher
	scanners []*core.Scanner
	emit     func(Match)
	buf      []ac.Match // per-chunk merge buffer, reused across Writes
	consumed int
}

// NewStream returns a stream that calls emit for every match. One Stream
// corresponds to one packet/flow; create one per concurrent flow and Reset
// between packets.
func (m *Matcher) NewStream(emit func(Match)) *Stream {
	s := &Stream{m: m, emit: emit}
	for _, machine := range m.grouped.Machines {
		s.scanners = append(s.scanners, machine.NewScanner())
	}
	return s
}

// Write consumes the next chunk of payload. It never fails; the error is
// part of the io.Writer contract. Match offsets emitted by the scanners
// are already stream-relative because each scanner's position persists
// across Write calls. Matches for this chunk are emitted in canonical
// (End, PatternID) order — see the Stream ordering guarantee.
func (s *Stream) Write(p []byte) (int, error) {
	return s.WritePacket(p, -1)
}

// WritePacket is Write with match attribution: matches completed by this
// chunk are emitted with PacketID set to packetID (Write uses -1). Start
// and End remain stream-relative. This mirrors Flow.WritePacket so a
// demultiplexer can tie cross-packet matches back to the segment that
// finished them.
func (s *Stream) WritePacket(p []byte, packetID int) (int, error) {
	s.buf = s.buf[:0]
	for _, sc := range s.scanners {
		s.buf = sc.ScanAppend(p, s.buf)
	}
	ac.SortMatches(s.buf)
	for _, am := range s.buf {
		s.emit(s.m.convert(am, packetID))
	}
	s.consumed += len(p)
	return len(p), nil
}

// Reset rewinds the stream to start-of-packet: automaton states and the
// 2-byte histories are cleared, and offsets restart at zero.
func (s *Stream) Reset() {
	for _, sc := range s.scanners {
		sc.Reset()
	}
	s.consumed = 0
}

// Consumed returns the bytes scanned since the last Reset.
func (s *Stream) Consumed() int { return s.consumed }
