package dpi_test

// Example smoke tests: every examples/* binary must build and run to
// completion, and go vet must stay clean, so examples can never silently
// rot as the API moves. CI runs these on every push; `go test -short`
// skips them to keep the inner loop fast.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestGoVet(t *testing.T) {
	if testing.Short() {
		t.Skip("go vet sweep")
	}
	out, err := exec.Command("go", "vet", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet: %v\n%s", err, out)
	}
}

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs every example binary")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		ran++
		t.Run(name, func(t *testing.T) {
			exe := filepath.Join(bin, name)
			build := exec.Command("go", "build", "-o", exe, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(exe)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				cmd.Process.Kill()
				<-done
				t.Fatalf("example did not finish within 3m\n%s", out)
			}
			if runErr != nil {
				t.Fatalf("run: %v\n%s", runErr, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example directories found")
	}
}
