package dpi

// FuzzCaptureTranslate hammers the capture seam — the pure-Go pcap reader
// plus the Ethernet/IPv4 translator — with arbitrary bytes. This is the
// one pipeline stage that parses wire-format input from outside the
// process, so its contract is absolute: whatever the bytes, it never
// panics, always terminates, and its TranslateStats ledger accounts every
// frame it saw (Frames == delivered + each skip reason). Seeds are the
// committed corpus plus truncations chosen to land mid-file-header,
// mid-record-header and mid-frame.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/capture"
)

func FuzzCaptureTranslate(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "pcap", "*.pcap"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no seed corpus under testdata/pcap (err %v)", err)
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		for _, cut := range []int{8, 23, 24, 30, 40, len(raw) / 2, len(raw) - 3} {
			if cut > 0 && cut < len(raw) {
				f.Add(raw[:cut])
			}
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := capture.NewSource(bytes.NewReader(data))
		if err != nil {
			return // malformed file header, rejected cleanly
		}
		frames := 0
		for {
			// io.EOF ends the capture; any other error is a corrupt record
			// rejected cleanly. Both are fine — only a panic or an endless
			// stream of frames would be a bug.
			if _, err := src.Next(); err != nil {
				break
			}
			frames++
			if frames > 1<<20 {
				t.Fatalf("translator failed to terminate: %d frames from %d input bytes", frames, len(data))
			}
		}
		st := src.Stats()
		delivered := st.TCPSegments + st.UDPPackets + st.OtherIP
		skipped := st.NonIP + st.Fragments + st.Short + st.EmptyTCP
		if st.Frames != delivered+skipped {
			t.Fatalf("frame ledger leaked: Frames=%d delivered=%d skipped=%d (%+v)",
				st.Frames, delivered, skipped, st)
		}
	})
}
