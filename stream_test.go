package dpi

import (
	"io"
	"sync"
	"testing"
)

func TestStreamFindsMatchAcrossChunkBoundary(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("split-me", []byte("abcdef"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	s := m.NewStream(func(mt Match) { got = append(got, mt) })
	var w io.Writer = s // compile-time io.Writer check
	w.Write([]byte("xxabc"))
	w.Write([]byte("def"))
	if len(got) != 1 {
		t.Fatalf("matches = %v", got)
	}
	if got[0].Start != 2 || got[0].End != 8 {
		t.Fatalf("offsets = %+v, want [2,8)", got[0])
	}
	if s.Consumed() != 8 {
		t.Fatalf("consumed = %d", s.Consumed())
	}
}

func TestStreamByteAtATime(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("p", []byte("needle"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	s := m.NewStream(func(mt Match) { got = append(got, mt) })
	payload := []byte("hay needle hay needle")
	for _, b := range payload {
		s.Write([]byte{b})
	}
	if len(got) != 2 {
		t.Fatalf("matches = %v", got)
	}
	ref := m.FindAll(payload)
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("streamed match %d = %+v, batch %+v", i, got[i], ref[i])
		}
	}
}

func TestStreamResetSplitsPackets(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("p", []byte("xyz"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	s := m.NewStream(func(mt Match) { got = append(got, mt) })
	s.Write([]byte("xy"))
	s.Reset() // packet boundary: the partial "xy" must not combine with "z"
	s.Write([]byte("z"))
	if len(got) != 0 {
		t.Fatalf("cross-packet match: %v", got)
	}
	if s.Consumed() != 1 {
		t.Fatalf("consumed = %d after reset", s.Consumed())
	}
	s.Reset()
	s.Write([]byte("xyz"))
	if len(got) != 1 || got[0].Start != 0 {
		t.Fatalf("fresh packet matches = %v", got)
	}
}

// fuzzMatchers compiles the shared fuzz corpus matchers once: a ruleset
// mixing pathological hand-picked patterns (overlapping suffixes, shared
// prefixes, binary bytes, length-1) with a generated Snort-like tail, as a
// 1-group and a 3-group machine.
var fuzzMatchers struct {
	once       sync.Once
	one, multi *Matcher
	err        error
}

func getFuzzMatchers(t testing.TB) (one, multi *Matcher) {
	fuzzMatchers.once.Do(func() {
		rules, err := GenerateSnortLike(120, 2010)
		if err != nil {
			fuzzMatchers.err = err
			return
		}
		for _, p := range [][]byte{
			[]byte("he"), []byte("she"), []byte("his"), []byte("hers"),
			[]byte("a"), []byte("ab"), []byte("abc"), []byte("bc"),
			{0x00}, {0x00, 0x01}, {0xff, 0x00, 0xff},
		} {
			// Generated contents can collide with the handcrafted ones;
			// duplicates are simply skipped.
			rules.Add("hand", p)
		}
		if fuzzMatchers.one, err = Compile(rules, Config{}); err != nil {
			fuzzMatchers.err = err
			return
		}
		fuzzMatchers.multi, err = Compile(rules, Config{Groups: 3})
		fuzzMatchers.err = err
	})
	if fuzzMatchers.err != nil {
		t.Fatal(fuzzMatchers.err)
	}
	return fuzzMatchers.one, fuzzMatchers.multi
}

// FuzzStreamChunkEquivalence is the FindAll-equivalence contract under
// fuzz: any payload delivered through a Stream in arbitrary chunks (empty
// chunks and byte-at-a-time included) must emit exactly the FindAll match
// sequence of the concatenation — same matches, same canonical order, for
// single-group and multi-group matchers alike.
func FuzzStreamChunkEquivalence(f *testing.F) {
	f.Add([]byte("she sells hers and his seashells"), []byte{3, 1, 7})
	f.Add([]byte("abcabcabc"), []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x01, 0x00}, []byte{2, 0, 3})
	f.Add([]byte("no matches at all here"), []byte{200})
	f.Add([]byte{}, []byte{5})
	f.Fuzz(func(t *testing.T, payload []byte, cuts []byte) {
		one, multi := getFuzzMatchers(t)
		for name, m := range map[string]*Matcher{"1-group": one, "3-group": multi} {
			want := m.FindAll(payload)
			var got []Match
			s := m.NewStream(func(mt Match) { got = append(got, mt) })
			// cuts drives the chunking: cut value n means "write n bytes
			// next" (0 = an empty write); leftover bytes go in one final
			// write. This lets the fuzzer place boundaries anywhere,
			// including straddling every match.
			off := 0
			for _, c := range cuts {
				n := int(c)
				if n > len(payload)-off {
					n = len(payload) - off
				}
				s.Write(payload[off : off+n])
				off += n
			}
			s.Write(payload[off:])
			if s.Consumed() != len(payload) {
				t.Fatalf("%s: consumed %d of %d", name, s.Consumed(), len(payload))
			}
			if len(got) != len(want) {
				t.Fatalf("%s: stream emitted %d matches, FindAll %d\ncuts %v\ngot  %+v\nwant %+v",
					name, len(got), len(want), cuts, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: match %d = %+v, FindAll %+v (cuts %v)", name, i, got[i], want[i], cuts)
				}
			}
		}
	})
}

func TestStreamGroupedMatchesBatch(t *testing.T) {
	rules, err := GenerateSnortLike(400, 61)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rules, Config{Groups: 3})
	if err != nil {
		t.Fatal(err)
	}
	payload := append(append([]byte("AA "), rules.Content(7)...), []byte(" ZZ")...)
	payload = append(payload, rules.Content(211)...)

	var got []Match
	s := m.NewStream(func(mt Match) { got = append(got, mt) })
	half := len(payload) / 2
	s.Write(payload[:half])
	s.Write(payload[half:])

	want := m.FindAll(payload)
	if len(got) != len(want) {
		t.Fatalf("streamed %d matches, batch %d", len(got), len(want))
	}
	seen := map[Match]int{}
	for _, mt := range got {
		seen[mt]++
	}
	for _, mt := range want {
		if seen[mt] == 0 {
			t.Fatalf("batch match %+v missing from stream", mt)
		}
		seen[mt]--
	}
}
