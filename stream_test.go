package dpi

import (
	"io"
	"testing"
)

func TestStreamFindsMatchAcrossChunkBoundary(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("split-me", []byte("abcdef"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	s := m.NewStream(func(mt Match) { got = append(got, mt) })
	var w io.Writer = s // compile-time io.Writer check
	w.Write([]byte("xxabc"))
	w.Write([]byte("def"))
	if len(got) != 1 {
		t.Fatalf("matches = %v", got)
	}
	if got[0].Start != 2 || got[0].End != 8 {
		t.Fatalf("offsets = %+v, want [2,8)", got[0])
	}
	if s.Consumed() != 8 {
		t.Fatalf("consumed = %d", s.Consumed())
	}
}

func TestStreamByteAtATime(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("p", []byte("needle"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	s := m.NewStream(func(mt Match) { got = append(got, mt) })
	payload := []byte("hay needle hay needle")
	for _, b := range payload {
		s.Write([]byte{b})
	}
	if len(got) != 2 {
		t.Fatalf("matches = %v", got)
	}
	ref := m.FindAll(payload)
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("streamed match %d = %+v, batch %+v", i, got[i], ref[i])
		}
	}
}

func TestStreamResetSplitsPackets(t *testing.T) {
	rules := NewRuleset()
	rules.MustAdd("p", []byte("xyz"))
	m, err := Compile(rules, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	s := m.NewStream(func(mt Match) { got = append(got, mt) })
	s.Write([]byte("xy"))
	s.Reset() // packet boundary: the partial "xy" must not combine with "z"
	s.Write([]byte("z"))
	if len(got) != 0 {
		t.Fatalf("cross-packet match: %v", got)
	}
	if s.Consumed() != 1 {
		t.Fatalf("consumed = %d after reset", s.Consumed())
	}
	s.Reset()
	s.Write([]byte("xyz"))
	if len(got) != 1 || got[0].Start != 0 {
		t.Fatalf("fresh packet matches = %v", got)
	}
}

func TestStreamGroupedMatchesBatch(t *testing.T) {
	rules, err := GenerateSnortLike(400, 61)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rules, Config{Groups: 3})
	if err != nil {
		t.Fatal(err)
	}
	payload := append(append([]byte("AA "), rules.Content(7)...), []byte(" ZZ")...)
	payload = append(payload, rules.Content(211)...)

	var got []Match
	s := m.NewStream(func(mt Match) { got = append(got, mt) })
	half := len(payload) / 2
	s.Write(payload[:half])
	s.Write(payload[half:])

	want := m.FindAll(payload)
	if len(got) != len(want) {
		t.Fatalf("streamed %d matches, batch %d", len(got), len(want))
	}
	seen := map[Match]int{}
	for _, mt := range got {
		seen[mt]++
	}
	for _, mt := range want {
		if seen[mt] == 0 {
			t.Fatalf("batch match %+v missing from stream", mt)
		}
		seen[mt]--
	}
}
