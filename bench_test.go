package dpi

// One benchmark per table and figure of the paper's evaluation (§V), plus
// raw performance benchmarks of the software pipeline. The table/figure
// benches measure the cost of regenerating each artifact and attach the
// headline reproduced values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction run. cmd/dpibench renders the same artifacts
// as human-readable tables.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/ac"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hwsim"
	"repro/internal/ruleset"
	"repro/internal/traffic"
	"repro/internal/tuck"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error
)

func sharedBenchCtx(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx, benchCtxErr = experiments.NewContext(experiments.DefaultSeed)
	})
	if benchCtxErr != nil {
		b.Fatal(benchCtxErr)
	}
	return benchCtx
}

// --- Table I ---

func BenchmarkTable1ResourceUtilization(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1()
	}
	b.ReportMetric(float64(rows[0].M9KModel), "cyclone-M9Ks")
	b.ReportMetric(float64(rows[1].M9KModel), "stratix-M9Ks")
	b.ReportMetric(rows[1].FmaxMHz, "stratix-fmax-MHz")
}

// --- Table II ---

func BenchmarkTable2PointerReduction(b *testing.B) {
	ctx := sharedBenchCtx(b)
	for _, cfg := range experiments.Table2Configs() {
		cfg := cfg
		name := fmt.Sprintf("%s/%dstrings", cfg.Device.Name, cfg.N)
		b.Run(name, func(b *testing.B) {
			var row experiments.Table2Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = ctx.Table2One(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.ReductionPct, "reduction-%")
			b.ReportMetric(row.AvgAfterD123, "avg-ptrs")
			b.ReportMetric(float64(row.MemoryBytes), "mem-bytes")
			b.ReportMetric(row.SpeedGbps, "speed-Gbps")
		})
	}
}

// --- Table III ---

func BenchmarkTable3Comparison(b *testing.B) {
	ctx := sharedBenchCtx(b)
	var rows []experiments.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = ctx.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	ours := float64(rows[0].MemoryBytes)
	b.ReportMetric(ours, "ours-bytes")
	b.ReportMetric(float64(rows[2].MemoryBytes)/ours, "vs-bitmap13-x")
	b.ReportMetric(float64(rows[3].MemoryBytes)/ours, "vs-path13-x")
}

// --- Figures ---

func BenchmarkFigure2ToyExample(b *testing.B) {
	var rows []experiments.Figure2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[3].AvgStored, "avg-after-d123")
}

func BenchmarkFigure6LengthDistribution(b *testing.B) {
	ctx := sharedBenchCtx(b)
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7PowerCyclone(b *testing.B) {
	var series int
	for i := 0; i < b.N; i++ {
		s, err := experiments.Figure7(10)
		if err != nil {
			b.Fatal(err)
		}
		series = len(s)
	}
	b.ReportMetric(float64(series), "curves")
}

func BenchmarkFigure8PowerStratix(b *testing.B) {
	var series int
	for i := 0; i < b.N; i++ {
		s, err := experiments.Figure8(10)
		if err != nil {
			b.Fatal(err)
		}
		series = len(s)
	}
	b.ReportMetric(float64(series), "curves")
}

// --- Ablations ---

func BenchmarkAblationD2Sweep(b *testing.B) {
	ctx := sharedBenchCtx(b)
	var rows []experiments.D2SweepRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = ctx.D2Sweep(634, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[2].TotalBytes), "bytes-at-4")
}

func BenchmarkAblationAdversarial(b *testing.B) {
	ctx := sharedBenchCtx(b)
	var rows []experiments.AdversarialRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = ctx.Adversarial(634, 16384)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].StepsPerChar, "ours-steps-per-char")
	b.ReportMetric(rows[1].StepsPerChar, "gotofail-steps-per-char")
}

// --- Raw performance of the software pipeline ---

func benchPayload(b *testing.B, set *ruleset.Set, n int) []byte {
	b.Helper()
	pkts, err := traffic.Generate(set, traffic.Config{
		Packets: 1, Bytes: n, Seed: 42, AttackDensity: 3, Profile: traffic.Textual,
	})
	if err != nil {
		b.Fatal(err)
	}
	return pkts[0].Payload
}

// TestScanAppendSteadyStateZeroAlloc locks in the baked kernel's hot-path
// contract: once the caller's match buffer has grown, ScanAppend performs
// zero allocations per packet — matches included.
func TestScanAppendSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	set, err := ruleset.Generate(ruleset.GenConfig{N: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Build(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := traffic.Generate(set, traffic.Config{
		Packets: 1, Bytes: 1 << 14, Seed: 42, AttackDensity: 3, Profile: traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := pkts[0].Payload
	sc := m.NewScanner()
	out := sc.ScanAppend(payload, nil) // warm-up grows the buffer
	if len(out) == 0 {
		t.Fatal("payload produced no matches; the assertion would be vacuous")
	}
	allocs := testing.AllocsPerRun(20, func() {
		sc.Reset()
		out = sc.ScanAppend(payload, out[:0])
	})
	if allocs != 0 {
		t.Fatalf("ScanAppend allocated %.1f times per packet in steady state", allocs)
	}
}

func BenchmarkCompile634(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(set, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanCompressed(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Build(set, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPayload(b, set, 1<<16)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := m.NewScanner()
		sc.Scan(payload, func(ac.Match) {})
	}
}

// BenchmarkScanAppend measures the hot scan loop on the 634-string set
// under every registered backend: the baked flat Program (the default scan
// path), the slice-walking reference path it must stay byte-exact
// equivalent to, and the two-stage prefiltered pipeline (whose skim loop is
// tuned for clean traffic; this attack-dense payload is its worst case).
// The matches metric pins all sub-benchmarks to the same output.
func BenchmarkScanAppend(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"baked", core.Options{Backend: core.BackendBaked}},
		{"reference", core.Options{Backend: core.BackendReference}},
		{"prefiltered", core.Options{Backend: core.BackendPrefiltered}},
		{"accelerated", core.Options{Backend: core.BackendAccelerated}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m, err := core.Build(set, tc.opts)
			if err != nil {
				b.Fatal(err)
			}
			payload := benchPayload(b, set, 1<<16)
			sc := m.NewScanner()
			var out []ac.Match
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Reset()
				out = sc.ScanAppend(payload, out[:0])
			}
			b.ReportMetric(float64(len(out)), "matches")
		})
	}
}

func BenchmarkScanGotoFail(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	trie, err := ac.New(set)
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPayload(b, set, 1<<16)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm := ac.NewFailMatcher(trie)
		fm.Scan(payload, func(ac.Match) {})
	}
}

func BenchmarkScanBitmap13(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	bm, err := tuck.BuildBitmap(set)
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPayload(b, set, 1<<16)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Scan(payload, func(ac.Match) {})
	}
}

// BenchmarkEngineParallel measures aggregate batch throughput of the
// concurrent engine versus worker count, with the single-scanner FindAll
// loop as the baseline. Match counts are pinned to the baseline so the
// speedup cannot come from dropped work.
func BenchmarkEngineParallel(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Compile(newRuleset(set), Config{})
	if err != nil {
		b.Fatal(err)
	}
	pkts, err := traffic.Generate(set, traffic.Config{
		Packets: 64, Bytes: 4096, Seed: 42, AttackDensity: 1, Profile: traffic.Textual,
	})
	if err != nil {
		b.Fatal(err)
	}
	payloads := make([][]byte, len(pkts))
	var total int64
	for i, p := range pkts {
		payloads[i] = p.Payload
		total += int64(len(p.Payload))
	}
	wantMatches := 0
	for _, p := range payloads {
		wantMatches += len(m.FindAll(p))
	}

	b.Run("baseline-FindAll", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			for _, p := range payloads {
				m.FindAll(p)
			}
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			e := m.NewEngine(w)
			if got := len(e.ScanPackets(payloads)); got != wantMatches {
				b.Fatalf("engine found %d matches, want %d", got, wantMatches)
			}
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ScanPackets(payloads)
			}
		})
	}
}

func BenchmarkHardwareEngineStep(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Build(set, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	img, err := hwsim.Pack(m)
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPayload(b, set, 1<<14)
	e := hwsim.NewEngine(img)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for _, c := range payload {
			e.Step(c)
		}
	}
}

func BenchmarkHardwareBlockScan(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Build(set, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	img, err := hwsim.Pack(m)
	if err != nil {
		b.Fatal(err)
	}
	var packets []hwsim.Packet
	for pid := 0; pid < 6; pid++ {
		packets = append(packets, hwsim.Packet{ID: pid, Payload: benchPayload(b, set, 4096)})
	}
	total := int64(0)
	for _, p := range packets {
		total += int64(len(p.Payload))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := hwsim.NewBlock(img)
		if _, err := block.ScanPackets(packets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPack634(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Build(set, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var words int
	for i := 0; i < b.N; i++ {
		img, err := hwsim.Pack(m)
		if err != nil {
			b.Fatal(err)
		}
		words = img.Stats.StateWords
	}
	b.ReportMetric(float64(words), "state-words")
}

func BenchmarkSnapshotSaveLoad(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Build(set, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.ReportMetric(float64(len(blob)), "snapshot-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Load(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMIFExport(b *testing.B) {
	ctx := sharedBenchCtx(b)
	set, err := ctx.SetOf(634)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Build(set, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	img, err := hwsim.Pack(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		mifs, err := img.ExportMIFs(3584)
		if err != nil {
			b.Fatal(err)
		}
		size = len(mifs.State) + len(mifs.Match) + len(mifs.LUT)
	}
	b.ReportMetric(float64(size), "mif-bytes")
}
