//go:build race

package dpi

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation makes testing.AllocsPerRun unstable.
const raceEnabled = true
