package dpi

import (
	"fmt"
	"io"

	"repro/internal/ac"
	"repro/internal/core"
	"repro/internal/ruleset"
)

// Ruleset is an ordered set of fixed-string patterns with stable integer
// IDs (the hardware's 13-bit "string numbers"). Content and ID lookups are
// index-backed, so building and querying Snort-scale sets (10k+ patterns)
// stays linear overall.
type Ruleset struct {
	set *ruleset.Set
	// byContent maps pattern bytes to the pattern's index in set.Patterns
	// (duplicate detection in Add); byID maps pattern ID to the same index
	// (Name/Content lookups). IDs may be sparse after Reduce.
	byContent map[string]int
	byID      map[int]int
	// nextID is the ID the next Add assigns: one past the largest existing
	// ID, never a reused one. IDs can be sparse after Reduce, so
	// len(Patterns) alone could collide with a surviving pattern.
	nextID int
}

// newRuleset wraps an internal set and builds the lookup indexes.
func newRuleset(set *ruleset.Set) *Ruleset {
	r := &Ruleset{
		set:       set,
		byContent: make(map[string]int, len(set.Patterns)),
		byID:      make(map[int]int, len(set.Patterns)),
	}
	for i, p := range set.Patterns {
		r.byContent[string(p.Data)] = i
		r.byID[p.ID] = i
		if p.ID >= r.nextID {
			r.nextID = p.ID + 1
		}
	}
	return r
}

// NewRuleset returns an empty ruleset.
func NewRuleset() *Ruleset {
	return newRuleset(&ruleset.Set{})
}

// Add appends a pattern and returns its ID. The content must be non-empty
// and unique within the set.
func (r *Ruleset) Add(name string, content []byte) (int, error) {
	if len(content) == 0 {
		return 0, fmt.Errorf("dpi: empty pattern %q", name)
	}
	if i, dup := r.byContent[string(content)]; dup {
		return 0, fmt.Errorf("dpi: duplicate pattern content for %q (already added as %q)", name, r.set.Patterns[i].Name)
	}
	id := r.nextID
	r.nextID++
	data := make([]byte, len(content))
	copy(data, content)
	r.byContent[string(data)] = len(r.set.Patterns)
	r.byID[id] = len(r.set.Patterns)
	r.set.Patterns = append(r.set.Patterns, ruleset.Pattern{ID: id, Data: data, Name: name})
	return id, nil
}

// MustAdd is Add for static rulesets; it panics on error.
func (r *Ruleset) MustAdd(name string, content []byte) int {
	id, err := r.Add(name, content)
	if err != nil {
		panic(err)
	}
	return id
}

// AddSnortContent parses a Snort-style content string (|hex| escapes
// supported) and adds it.
func (r *Ruleset) AddSnortContent(name, content string) (int, error) {
	data, err := ruleset.ParseContent(content)
	if err != nil {
		return 0, err
	}
	return r.Add(name, data)
}

// ParseRuleset reads a ruleset file: one content string per line, optional
// "name:" prefixes, #-comments.
func ParseRuleset(rd io.Reader) (*Ruleset, error) {
	set, err := ruleset.ParseFile(rd)
	if err != nil {
		return nil, err
	}
	return newRuleset(set), nil
}

// GenerateSnortLike produces a deterministic synthetic ruleset whose
// string-length distribution and first-character diversity reproduce the
// Snort set the paper evaluated (Figure 6).
func GenerateSnortLike(n int, seed int64) (*Ruleset, error) {
	set, err := ruleset.Generate(ruleset.GenConfig{N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	return newRuleset(set), nil
}

// Reduce samples a subset of n patterns preserving the length distribution
// (the paper's §V.A reduction procedure). IDs are preserved.
func (r *Ruleset) Reduce(n int, seed int64) (*Ruleset, error) {
	set, err := r.set.Reduce(n, seed)
	if err != nil {
		return nil, err
	}
	return newRuleset(set), nil
}

// Len returns the number of patterns.
func (r *Ruleset) Len() int { return r.set.Len() }

// InternalSet exposes the ruleset's underlying pattern set for in-module
// tooling: cmd/, examples/ and the test suites hand it to the
// internal/traffic generators so attacks are planted against exactly the
// patterns the matcher holds. The type lives in an internal package, so
// importers outside this module cannot use it; treat the returned set as
// read-only.
func (r *Ruleset) InternalSet() *ruleset.Set { return r.set }

// CharCount returns the total pattern bytes.
func (r *Ruleset) CharCount() int { return r.set.CharCount() }

// Name returns the name of pattern id, or "" if unknown.
func (r *Ruleset) Name(id int) string {
	if i, ok := r.byID[id]; ok {
		return r.set.Patterns[i].Name
	}
	return ""
}

// Content returns the bytes of pattern id, or nil if unknown.
func (r *Ruleset) Content(id int) []byte {
	i, ok := r.byID[id]
	if !ok {
		return nil
	}
	p := r.set.Patterns[i]
	out := make([]byte, len(p.Data))
	copy(out, p.Data)
	return out
}

// Write renders the ruleset in ParseRuleset format.
func (r *Ruleset) Write(w io.Writer) error {
	return ruleset.WriteFile(w, r.set)
}

// Config controls compilation.
type Config struct {
	// D2DefaultsPerChar is the number of depth-2 default transition
	// pointers per character value (0 = the paper's optimum of 4; the
	// hardware row format holds at most 4).
	D2DefaultsPerChar int
	// D3DefaultsPerChar is the number of depth-3 defaults per character
	// (0 = the paper's 1; the hardware row format holds at most 1).
	D3DefaultsPerChar int
	// MaxDefaultDepth limits default depths for ablation: 1, 2 or 3
	// (0 = 3, the full scheme).
	MaxDefaultDepth int
	// Groups splits the ruleset across that many independent machines, one
	// per string matching block (0 = 1). Needed when a machine outgrows a
	// block's memory.
	Groups int
	// DenseStates budgets the baked kernel's dense tier per group machine:
	// states promoted to full 256-entry move rows (0 = the default budget,
	// negative disables the tier). Tuning only — match output is identical
	// at any setting.
	DenseStates int
	// DisableBakedKernel keeps scanning on the reference path.
	//
	// Deprecated: set Backend: BackendReference instead (precedence rules
	// in Config.Validate).
	DisableBakedKernel bool
	// Backend selects the scan implementation every scanner, stream, flow
	// and engine built from this matcher runs:
	//
	//   - BackendAuto (or ""): accelerated when the configuration fits the
	//     flat row format, reference otherwise — the fastest always-exact
	//     default.
	//   - BackendReference: the slice-walking interpreter, closest to the
	//     paper's hardware description.
	//   - BackendBaked: the compiled flat kernel; Compile fails if the
	//     configuration cannot bake.
	//   - BackendPrefiltered: the two-stage pipeline — a lossy
	//     cache-resident automaton skims clean traffic and only suspect
	//     byte windows run through the exact baked kernel. False positives
	//     possible, false negatives provably not (the superset contract is
	//     verified at compile time); Compile fails if unavailable.
	//   - BackendAccelerated: the baked kernel plus exact fast paths —
	//     root-resident bulk skip (SIMD-backed probing for the few bytes
	//     that can leave the start state) and fused 2-byte stepping over
	//     precomputed row-pair tables for the hottest states. No
	//     approximation at all; Compile fails if the configuration cannot
	//     bake.
	//
	// All backends are byte-exact equivalent on every input, so selection
	// is purely a performance choice. Unknown names are a Compile error
	// listing the registered backends.
	Backend string
}

// Backend names for Config.Backend.
const (
	BackendAuto        = core.BackendAuto
	BackendReference   = core.BackendReference
	BackendBaked       = core.BackendBaked
	BackendPrefiltered = core.BackendPrefiltered
	BackendAccelerated = core.BackendAccelerated
)

// Validate reports whether the configuration is compilable, without
// compiling anything. It is the single home of the config precedence and
// conflict rules — Compile runs exactly this check first — covering the
// knob ranges, Groups, Backend-name resolution against the registered
// backends, and the deprecated DisableBakedKernel alias: with Backend
// empty or BackendAuto the alias resolves to BackendReference; combined
// with a pinned kernel backend it is a conflict. Every failure wraps
// ErrBadConfig.
func (c Config) Validate() error {
	if c.Groups < 0 {
		return fmt.Errorf("%w: negative Groups %d", ErrBadConfig, c.Groups)
	}
	if err := c.coreOptions().Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	return nil
}

func (c Config) coreOptions() core.Options {
	return core.Options{
		D2PerChar:    c.D2DefaultsPerChar,
		D3PerChar:    c.D3DefaultsPerChar,
		MaxDepth:     c.MaxDefaultDepth,
		DenseStates:  c.DenseStates,
		DisableBaked: c.DisableBakedKernel,
		Backend:      c.Backend,
	}
}

// Match is one pattern occurrence: pattern PatternID spans [Start, End) of
// the scanned payload. PacketID is set by Accelerator.ScanPackets and -1
// for single-payload scans.
type Match struct {
	PatternID int
	Start     int
	End       int
	PacketID  int
}

// Matcher is a compiled, compressed pattern matcher. A Matcher is immutable
// after Compile and safe for concurrent use; the per-scan state lives in
// Streams, Flows and engine workers.
type Matcher struct {
	rules   *Ruleset
	grouped *core.Grouped
	cfg     Config
	// patLen[id] is the byte length of pattern id, 0 for unused IDs. IDs are
	// bounded by the 13-bit hardware string-number range, so a dense slice
	// beats the per-match linear search over group machines.
	patLen []int32
}

// Compile builds the compressed automaton (or automata, if cfg.Groups > 1)
// for the ruleset. Configuration failures — including an empty ruleset or
// a group split the set cannot satisfy — wrap ErrBadConfig (see
// Config.Validate). Every successful Compile stamps the matcher with a
// fresh generation (Matcher.Generation).
func Compile(r *Ruleset, cfg Config) (*Matcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r.Len() == 0 {
		return nil, fmt.Errorf("%w: cannot compile an empty ruleset", ErrBadConfig)
	}
	groups := cfg.Groups
	if groups == 0 {
		groups = 1
	}
	g, err := core.BuildGrouped(r.set, groups, cfg.coreOptions())
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	maxID := 0
	for _, p := range r.set.Patterns {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	patLen := make([]int32, maxID+1)
	for _, p := range r.set.Patterns {
		patLen[p.ID] = int32(len(p.Data))
	}
	return &Matcher{rules: r, grouped: g, cfg: cfg, patLen: patLen}, nil
}

// Rules returns the matcher's ruleset.
func (m *Matcher) Rules() *Ruleset { return m.rules }

// Generation reports the matcher's compile generation: process-unique and
// monotonically increasing across Compiles. It is an identity for this
// compiled artifact, not a content hash — compiling identical rules twice
// yields two distinct generations. Gateway.SwapRules uses it to order
// reloads (an older or already-installed matcher is ErrStaleGeneration)
// and to label the per-generation flow accounting on Stats and Metrics.
func (m *Matcher) Generation() uint64 { return m.grouped.Generation }

// Backend reports the resolved scan backend every scanner built from this
// matcher runs: Config.Backend, with auto resolved to what actually
// compiled (baked, or reference on configurations outside the row format).
func (m *Matcher) Backend() string {
	return m.grouped.Machines[0].DefaultBackend()
}

// acMatch builds the internal match representation; it exists so sibling
// files can construct matches without importing internal/ac themselves.
func acMatch(id int32, end int) ac.Match {
	return ac.Match{PatternID: id, End: end}
}

func (m *Matcher) convert(am ac.Match, packetID int) Match {
	length := 0
	if int(am.PatternID) < len(m.patLen) {
		length = int(m.patLen[am.PatternID])
	}
	return Match{
		PatternID: int(am.PatternID),
		Start:     am.End - length,
		End:       am.End,
		PacketID:  packetID,
	}
}

// FindAll scans one payload and returns every match in canonical order:
// ascending End, ties broken by ascending PatternID.
func (m *Matcher) FindAll(payload []byte) []Match {
	raw := m.grouped.FindAll(payload)
	out := make([]Match, len(raw))
	for i, am := range raw {
		out[i] = m.convert(am, -1)
	}
	return out
}

// Scan streams matches to fn, one automaton transition per input byte per
// group machine. Emission order is canonical and identical to FindAll —
// ascending End, ties by ascending PatternID — regardless of how the
// ruleset is split across group machines.
func (m *Matcher) Scan(payload []byte, fn func(Match)) {
	for _, am := range m.grouped.FindAll(payload) {
		fn(m.convert(am, -1))
	}
}

// CompressionStats reports the Table II quantities for the compiled
// matcher.
type CompressionStats struct {
	States            int
	OriginalPointers  int64
	OriginalAvg       float64
	D1Defaults        int
	D2Defaults        int
	D3Defaults        int
	AvgAfterD1        float64
	AvgAfterD12       float64
	AvgAfterD123      float64
	StoredPointers    int64
	AvgStored         float64
	Reduction         float64 // fraction of pointers eliminated
	MaxStoredPerState int
	Groups            int
}

// Stats returns compression statistics aggregated over groups.
func (m *Matcher) Stats() CompressionStats {
	cs := m.grouped.CombinedStats()
	return CompressionStats{
		States:            cs.States,
		OriginalPointers:  cs.OriginalPointers,
		OriginalAvg:       cs.OriginalAvg,
		D1Defaults:        cs.D1Count,
		D2Defaults:        cs.D2Count,
		D3Defaults:        cs.D3Count,
		AvgAfterD1:        cs.AvgAfterD1,
		AvgAfterD12:       cs.AvgAfterD12,
		AvgAfterD123:      cs.AvgAfterD123,
		StoredPointers:    cs.StoredPointers,
		AvgStored:         cs.AvgStored,
		Reduction:         cs.Reduction,
		MaxStoredPerState: cs.MaxStoredPerState,
		Groups:            len(m.grouped.Machines),
	}
}

// KernelStats reports the memory layout of the compiled flat scan kernel,
// aggregated across group machines — the software analogue of the
// accelerator's block-memory fill report.
type KernelStats struct {
	// Baked is false when the matcher runs on the slice-walking reference
	// path (Backend: reference, or a configuration outside the fixed row
	// format); the layout fields are then zero.
	Baked bool
	// Backend is the resolved active backend (Matcher.Backend).
	Backend       string
	Groups        int
	States        int // automaton states across groups
	DenseStates   int // states promoted to full 256-entry rows
	StoredEntries int // packed CSR stored-pointer entries
	DenseBytes    int
	StoredBytes   int // CSR arena plus per-state row descriptors
	LookupBytes   int // fixed d1/d2/d3 lookup rows
	OutputBytes   int // output bitsets
	TotalBytes    int

	// Lossy prefilter stage (zero when unavailable). The layout fields
	// aggregate across group machines; the counters accumulate over every
	// scanner sharing this matcher, and SuspectRate is suspect windows per
	// skimmed byte on the traffic actually seen.
	PrefilterStates int
	PrefilterBytes  int
	SkimmedBytes    uint64
	ExactBytes      uint64
	SuspectWindows  uint64
	SuspectRate     float64

	// Accelerated kernel layer (zero when unavailable), aggregated across
	// group machines: states owning fused 2-byte row-pair tables and their
	// footprint, the distinct bytes that can leave the start state, and
	// whether every group machine's escape set is small enough for the
	// SIMD-backed root probe.
	AccelPairStates  int
	AccelPairBytes   int
	AccelEscapeBytes int
	AccelProbe       bool
}

// Kernel summarizes the compiled scan kernels backing this matcher: the
// baked flat layout and, when compiled, the lossy prefilter stage with its
// runtime skim accounting.
func (m *Matcher) Kernel() KernelStats {
	var ks KernelStats
	ks.Baked = true
	ks.AccelProbe = true
	for _, machine := range m.grouped.Machines {
		p := machine.Program()
		if p == nil {
			return KernelStats{Backend: m.Backend()}
		}
		st := p.Stats()
		ks.Groups++
		ks.States += st.States
		ks.DenseStates += st.DenseStates
		ks.StoredEntries += st.StoredEntries
		ks.DenseBytes += st.DenseBytes
		ks.StoredBytes += st.StoredBytes
		ks.LookupBytes += st.LookupBytes
		ks.OutputBytes += st.OutputBytes
		ks.TotalBytes += st.TotalBytes
		if pf := machine.Prefilter(); pf != nil {
			pst := pf.Stats()
			ks.PrefilterStates += pst.States
			ks.PrefilterBytes += pst.TableBytes
			ks.SkimmedBytes += pst.SkimmedBytes
			ks.ExactBytes += pst.ExactBytes
			ks.SuspectWindows += pst.SuspectWindows
		}
		if a := machine.Accel(); a != nil {
			ast := a.Stats()
			ks.AccelPairStates += ast.PairStates
			ks.AccelPairBytes += ast.PairBytes
			ks.AccelEscapeBytes += ast.EscapeBytes
			ks.AccelProbe = ks.AccelProbe && ast.Probe
		} else {
			ks.AccelProbe = false
		}
	}
	ks.Backend = m.Backend()
	if ks.SkimmedBytes > 0 {
		ks.SuspectRate = float64(ks.SuspectWindows) / float64(ks.SkimmedBytes)
	}
	return ks
}

// Verify proves the compressed matcher equivalent to the uncompressed
// Aho-Corasick DFA: an exhaustive per-transition structural check plus a
// scan-level cross-check on the provided payloads (may be nil). On a baked
// matcher the scan check covers both the flat kernel and the reference
// path.
func (m *Matcher) Verify(payloads [][]byte) error {
	for gi, machine := range m.grouped.Machines {
		if err := machine.VerifyTransitions(); err != nil {
			return fmt.Errorf("group %d: %w", gi, err)
		}
		if err := machine.VerifyScan(payloads); err != nil {
			return fmt.Errorf("group %d: %w", gi, err)
		}
	}
	return nil
}
