package dpi

// The capture seam: ReplayPcap is where recorded traffic (classic libpcap
// files, read by internal/capture) enters the gateway pipeline. The
// translator turns each captured Ethernet/IPv4 frame into the gateway's
// packet model — 5-tuple, raw TCP sequence number, SYN/FIN/RST flags —
// and the gateway treats the result exactly like live v2-framed traffic:
// TCP segments route through reassembly (sequence wraparound, overlaps
// and mid-stream pickup included), UDP and other IP protocols take the
// stateless burst path. Frames the translator cannot deliver (non-IPv4,
// fragments, header-truncated records, pure ACKs) are counted in
// ReplayStats, never silently dropped — the same nothing-is-dropped
// accounting contract GatewayStats keeps.

import (
	"io"

	"repro/internal/capture"
)

// ReplayStats accounts one pcap replay: every captured frame is either
// delivered to the gateway (Ingested) or counted under the skip reason
// that excluded it. Frames == Ingested + NonIP + Fragments + ShortHeaders
// + PureAcks.
type ReplayStats struct {
	Frames   uint64 // records read from the pcap
	Ingested uint64 // packets delivered to Gateway.Ingest

	TCPSegments    uint64 // delivered TCP segments (reassembly path)
	UDPPackets     uint64 // delivered UDP packets (stateless path)
	OtherIPPackets uint64 // delivered other-IP packets (stateless path)

	NonIP        uint64 // skipped: not IPv4 (ARP, IPv6, unknown EtherType)
	Fragments    uint64 // skipped: IPv4 fragments
	ShortHeaders uint64 // skipped: capture ends inside a link/IP/transport header
	PureAcks     uint64 // skipped: payload-less TCP with no SYN/FIN/RST

	VLANTags     uint64 // 802.1Q/802.1ad tags stripped
	Truncated    uint64 // delivered packets whose payload the snap length cut
	PayloadBytes uint64 // payload bytes delivered
}

func replayStats(ts capture.TranslateStats, ingested uint64) ReplayStats {
	return ReplayStats{
		Frames:         ts.Frames,
		Ingested:       ingested,
		TCPSegments:    ts.TCPSegments,
		UDPPackets:     ts.UDPPackets,
		OtherIPPackets: ts.OtherIP,
		NonIP:          ts.NonIP,
		Fragments:      ts.Fragments,
		ShortHeaders:   ts.Short,
		PureAcks:       ts.EmptyTCP,
		VLANTags:       ts.VLANTags,
		Truncated:      ts.Truncated,
		PayloadBytes:   ts.PayloadBytes,
	}
}

// ReplayPcap reads one classic libpcap capture from r and ingests every
// translatable packet, blocking on the gateway's backpressure as it goes.
// It does not Flush or Close the gateway, so captures can be replayed
// back-to-back into one gateway (rotated capture files of the same link:
// flows — TCP sequence wraparound included — continue across file
// boundaries); call Flush before reading Stats.
//
// A clean end of file is not an error. A capture truncated mid-record
// returns io.ErrUnexpectedEOF (wrapped) along with the stats accumulated
// up to the cut, so a partial replay is visible rather than mistaken for a
// short capture.
func (g *Gateway) ReplayPcap(r io.Reader) (ReplayStats, error) {
	src, err := capture.NewSource(r)
	if err != nil {
		return ReplayStats{}, err
	}
	var ingested uint64
	for {
		pkt, err := src.Next()
		if err == io.EOF {
			return replayStats(src.Stats(), ingested), nil
		}
		if err != nil {
			return replayStats(src.Stats(), ingested), err
		}
		// Explicit flag translation, mirroring the gateway's own stance on
		// the reassembly flags: the bit values coincide by design, but the
		// seam must not silently depend on that.
		var fl TCPFlags
		if pkt.Flags&capture.FlagSeq != 0 {
			fl |= FlagSeq
		}
		if pkt.Flags&capture.FlagFIN != 0 {
			fl |= FlagFIN
		}
		if pkt.Flags&capture.FlagSYN != 0 {
			fl |= FlagSYN
		}
		if pkt.Flags&capture.FlagRST != 0 {
			fl |= FlagRST
		}
		if err := g.Ingest(GatewayPacket{Tuple: pkt.Tuple, Seq: pkt.Seq, Flags: fl, Payload: pkt.Payload}); err != nil {
			return replayStats(src.Stats(), ingested), err
		}
		ingested++
	}
}
