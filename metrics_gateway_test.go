package dpi

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/capture/corpus"
	"repro/internal/metrics"
)

// metricsTestRules: an alert rule covering web traffic, a drop rule for
// ICMP, a pass rule for the telemetry UDP tuple — one of each action, so
// every verdict series is exercised.
func metricsTestRules() []VerdictRule {
	return []VerdictRule{
		{ID: 1, Name: "web-alert", Header: HeaderRule{Proto: ProtoTCP, DstPorts: PortRange{Lo: 80, Hi: 443}}, Verdict: VerdictAlert},
		{ID: 2, Name: "icmp-drop", Header: HeaderRule{Proto: ProtoICMP}, Verdict: VerdictDrop},
		{ID: 3, Name: "telemetry-pass", Header: HeaderRule{Proto: ProtoUDP, DstPorts: PortRange{Lo: 9999, Hi: 9999}}, Verdict: VerdictPass},
	}
}

// TestGatewayMetricsSeries replays a corpus and checks the exposition:
// valid text format, and the gateway, per-shard, flow-table and per-rule
// series present with values agreeing with the Stats() snapshot.
func TestGatewayMetricsSeries(t *testing.T) {
	c := corpus.HTTPMixed()
	raw, err := os.ReadFile(filepath.Join("testdata", "pcap", c.File))
	if err != nil {
		t.Fatal(err)
	}
	m := corpusMatcher(t, BackendAuto)
	gw := m.NewEngine(2).Gateway(GatewayConfig{EngineShards: 2, Rules: metricsTestRules()}, func(FlowMatch) {})
	defer gw.Close()
	if _, err := gw.ReplayPcap(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	gw.Flush()

	var buf bytes.Buffer
	if _, err := gw.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.Bytes()
	if n, err := metrics.Validate(exp); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, exp)
	} else if n == 0 {
		t.Fatal("empty exposition")
	}

	s := gw.Stats()
	out := string(exp)
	for _, want := range []string{
		fmt.Sprintf("dpi_gateway_packets_total %d\n", s.Packets),
		fmt.Sprintf("dpi_gateway_payload_bytes_total %d\n", s.Bytes),
		fmt.Sprintf("dpi_gateway_matches_total %d\n", s.Matches),
		fmt.Sprintf("dpi_gateway_verdicts_total{verdict=\"alert\"} %d\n", s.VerdictAlerts),
		fmt.Sprintf("dpi_gateway_verdicts_total{verdict=\"drop\"} %d\n", s.VerdictDrops),
		fmt.Sprintf("dpi_gateway_verdicts_total{verdict=\"pass\"} %d\n", s.VerdictPasses),
		"dpi_gateway_engine_shards 2\n",
		fmt.Sprintf("dpi_backend_info{backend=%q} 1\n", gw.Backend()),
		"dpi_gateway_flows_evicted_total{reason=\"capacity\"} ",
		"dpi_gateway_flows_evicted_total{reason=\"idle\"} ",
		"dpi_gateway_flows_evicted_total{reason=\"teardown\"} ",
		"dpi_engine_stream_bytes_total{shard=\"0\"} ",
		"dpi_engine_stream_bytes_total{shard=\"1\"} ",
		"dpi_rule_flows_total{rule_id=\"1\",rule=\"web-alert\",verdict=\"alert\"} ",
		"dpi_rule_flows_total{rule_id=\"2\",rule=\"icmp-drop\",verdict=\"drop\"} 2\n",
		"dpi_rule_flows_total{rule_id=\"3\",rule=\"telemetry-pass\",verdict=\"pass\"} 2\n",
		"dpi_rule_matches_total{rule_id=\"1\",rule=\"web-alert\",verdict=\"alert\"} ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Per-rule accounting must agree with the aggregate verdict counters.
	var flows, matches uint64
	for _, r := range gw.RuleStats() {
		flows += r.Flows
		matches += r.Matches
	}
	if flows != s.VerdictAlerts+s.VerdictDrops+s.VerdictPasses {
		t.Errorf("sum of RuleStats.Flows %d != verdict total %d", flows,
			s.VerdictAlerts+s.VerdictDrops+s.VerdictPasses)
	}
	if matches == 0 {
		t.Error("no matches attributed to the alert rule")
	}
}

// TestGatewayMetricsHTTP mounts the handler and checks the scrape
// response shape: Content-Type, validity, method restriction.
func TestGatewayMetricsHTTP(t *testing.T) {
	m := corpusMatcher(t, BackendAuto)
	gw := m.NewEngine(1).Gateway(GatewayConfig{}, func(FlowMatch) {})
	defer gw.Close()

	srv := httptest.NewServer(gw.Metrics())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	if _, err := metrics.Validate(body); err != nil {
		t.Errorf("scrape invalid: %v", err)
	}
	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", post.StatusCode)
	}
}

// TestGatewayMetricsScrapeUnderLoad scrapes continuously while both
// corpora replay into a sharded gateway — the race test for the metrics
// snapshot path (run under -race in CI). Every concurrent scrape must be
// a well-formed exposition.
func TestGatewayMetricsScrapeUnderLoad(t *testing.T) {
	m := corpusMatcher(t, BackendAuto)
	gw := m.NewEngine(2).Gateway(GatewayConfig{EngineShards: 2, Rules: metricsTestRules()}, func(FlowMatch) {})
	gm := gw.Metrics()

	corpora := [][]byte{corpus.HTTPMixed().Bytes(), corpus.EvasionWrap().Bytes()}
	done := make(chan struct{})
	var feedWg sync.WaitGroup
	feedWg.Add(1)
	go func() {
		defer feedWg.Done()
		for i := 0; i < 20; i++ {
			for _, raw := range corpora {
				if _, err := gw.ReplayPcap(bytes.NewReader(raw)); err != nil {
					t.Errorf("replay: %v", err)
					return
				}
			}
		}
	}()

	var scrapeWg sync.WaitGroup
	for w := 0; w < 4; w++ {
		scrapeWg.Add(1)
		go func() {
			defer scrapeWg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var buf bytes.Buffer
				if _, err := gm.WriteTo(&buf); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				if _, err := metrics.Validate(buf.Bytes()); err != nil {
					t.Errorf("concurrent scrape invalid: %v", err)
					return
				}
			}
		}()
	}

	feedWg.Wait()
	close(done)
	scrapeWg.Wait()
	gw.Flush()
	gw.Close()

	// One final post-drain scrape must still be valid and show the traffic.
	var buf bytes.Buffer
	if _, err := gm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := metrics.Validate(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dpi_gateway_packets_total ") {
		t.Error("final scrape missing packet counter")
	}
}
