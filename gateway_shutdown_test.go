package dpi

// Shutdown semantics: the teardown guarantees operators lean on. Close is
// idempotent; Flush is re-entrant, cheap when drained, and safe after
// Close; ingestion after Close fails with an error instead of wedging or
// panicking; and a scrape or health probe racing the teardown sees a
// consistent snapshot. Run with -race — the concurrent test is the point.

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/traffic"
)

// TestGatewayShutdownUnderConcurrentLoad drives Ingest, Flush, metrics
// scrapes and health probes from separate goroutines while the gateway is
// closed mid-stream. Nothing may race, deadlock or panic; ingestion
// observes either admission or the closed error, never a third state; and
// the final drained snapshot still balances the byte ledger.
func TestGatewayShutdownUnderConcurrentLoad(t *testing.T) {
	m, set := gatewayMatcher(t, 120, 2)
	w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
		Flows: 12, SegmentsPerFlow: 8, SegmentBytes: 120, Seed: 77,
		CrossDensity: 1, AttackDensity: 1, Profile: traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw := m.NewEngine(2).Gateway(GatewayConfig{EngineShards: 2, StreamWorkers: 2}, func(FlowMatch) {})

	var wg sync.WaitGroup
	start := make(chan struct{})
	closed := make(chan struct{})

	// Ingesters: feed until the gateway reports closed.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			<-start
			for {
				for _, p := range w.Packets {
					if int(p.FlowID)%2 != part {
						continue
					}
					if _, err := gw.TryIngest(GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
						if !strings.Contains(err.Error(), "closed") {
							t.Errorf("unexpected ingest error: %v", err)
						}
						return
					}
				}
			}
		}(i)
	}
	// Flusher: drain barriers must stay safe during and after teardown.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for {
			gw.Flush()
			select {
			case <-closed:
				return
			default:
			}
		}
	}()
	// Scraper + prober: observability surfaces racing the teardown.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for {
			var buf bytes.Buffer
			if _, err := gw.Metrics().WriteTo(&buf); err != nil {
				t.Errorf("scrape failed: %v", err)
			}
			if h := gw.Health(); h.Panics != 0 {
				t.Errorf("unexpected panics during shutdown test: %+v", h)
			}
			select {
			case <-closed:
				return
			default:
			}
		}
	}()

	close(start)
	// Let the load run briefly, then tear down underneath it.
	for i := 0; i < 50; i++ {
		gw.Flush()
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	close(closed)
	wg.Wait()

	st := gw.Stats()
	if l := st.Ledger(); !l.Balanced() {
		t.Fatalf("ledger unbalanced after teardown under load: %+v", l)
	}
	// Late ingestion is an error, not a hang or a panic.
	if admitted, err := gw.TryIngest(GatewayPacket{Tuple: w.Tuples[0], Payload: []byte("late")}); err == nil || admitted {
		t.Fatalf("TryIngest after Close: admitted=%v err=%v, want refusal with error", admitted, err)
	}
	// Counters are frozen: the refused packet must not be counted.
	if got := gw.Stats(); got.Packets != st.Packets || got.Bytes != st.Bytes {
		t.Fatalf("closed gateway still counting: before %+v after %+v", st, got)
	}
}

// TestGatewayFlushIdempotent pins Flush's re-entrancy contract: back-to-
// back flushes on a drained gateway return immediately, concurrent flushes
// don't interleave with each other destructively, and Flush after Close
// remains legal (it observes an empty pipeline).
func TestGatewayFlushIdempotent(t *testing.T) {
	m, _ := gatewayMatcher(t, 60, 1)
	gw := m.NewEngine(1).Gateway(GatewayConfig{}, func(FlowMatch) {})
	if err := gw.Ingest(GatewayPacket{Tuple: FiveTuple{Proto: ProtoUDP}, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	gw.Flush()
	gw.Flush() // double-Flush: a no-op on a drained pipeline
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); gw.Flush() }()
	}
	wg.Wait()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	gw.Flush() // Flush after Close: still legal, still returns
	if err := gw.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
}
