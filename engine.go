package dpi

import (
	"fmt"

	"repro/internal/engine"
)

// Engine scans many packets and flows concurrently over one compiled
// Matcher, the software mirror of the paper's hardware parallelism: 6
// engines per string matching block and multiple blocks per device all
// read the same block memory (§IV.B). Here every worker and every flow
// shares the Matcher's immutable automaton and carries only its own
// scanner registers (current state plus 2-byte history), so concurrency
// costs per-lane state, never per-lane automata.
//
// An Engine is safe for concurrent use: ScanPackets may be called from
// many goroutines at once and flows may be opened and written
// concurrently. Each individual Flow is single-goroutine, like the socket
// it shadows.
//
// Stats is the engine's observability seam: every counter in
// EngineStats is an atomic the workers already bump, so a snapshot is
// wait-free and safe while scans run. A sharded Gateway re-exports one
// snapshot per replica through ShardStats, which is what the
// dpi_engine_*_total{shard="i"} series on Gateway.Metrics render —
// shard skew in a dashboard traces directly back to these counters.
type Engine struct {
	m   *Matcher
	eng *engine.Engine
}

// NewEngine returns an engine with the given batch worker-pool size.
// workers <= 0 selects one worker per available core (GOMAXPROCS).
func (m *Matcher) NewEngine(workers int) *Engine {
	return &Engine{m: m, eng: engine.New(m.grouped, workers)}
}

// Workers returns the batch worker-pool size.
func (e *Engine) Workers() int { return e.eng.Workers() }

// Matcher returns the compiled matcher the engine scans with.
func (e *Engine) Matcher() *Matcher { return e.m }

// Backend reports the scan backend every worker lane and flow in this
// engine runs (see Config.Backend).
func (e *Engine) Backend() string { return e.eng.Backend() }

// Generation reports the compile generation of the matcher this engine
// scans with (Matcher.Generation) — every scanner the engine checks out
// carries the same tag.
func (e *Engine) Generation() uint64 { return e.m.Generation() }

// EngineStats is a point-in-time snapshot of one engine's work, split by
// its two usage shapes (batch scans and streaming flows). A sharded
// Gateway exposes one per engine replica through ShardStats, making the
// traffic fan-out across shards observable.
type EngineStats struct {
	Batches     uint64 // ScanPackets batches handed to the worker pool
	BatchPkts   uint64 // payloads scanned across those batches
	BatchBytes  uint64 // payload bytes scanned in batch mode
	FlowsOpened uint64 // Flow checkouts from the scanner-state pool
	StreamBytes uint64 // bytes written through flows
	Panics      uint64 // panics recovered inside batch workers (gateway containment)
}

// add accumulates another snapshot into s — the gateway folds per-shard
// engine counters across ruleset generations with it.
func (s *EngineStats) add(o EngineStats) {
	s.Batches += o.Batches
	s.BatchPkts += o.BatchPkts
	s.BatchBytes += o.BatchBytes
	s.FlowsOpened += o.FlowsOpened
	s.StreamBytes += o.StreamBytes
	s.Panics += o.Panics
}

// Stats returns this engine's work counters. Counters are monotone but
// mutually unsynchronized.
func (e *Engine) Stats() EngineStats {
	s := e.eng.Stats()
	return EngineStats{
		Batches:     s.Batches,
		BatchPkts:   s.BatchPkts,
		BatchBytes:  s.BatchBytes,
		FlowsOpened: s.FlowsOpened,
		StreamBytes: s.StreamBytes,
		Panics:      s.Panics,
	}
}

// ScanPackets scans each payload as an independent packet, sharding the
// batch across the worker pool, and returns all matches in canonical order:
// ascending PacketID, then (End, PatternID). The matches for packet i are
// exactly FindAll(payloads[i]) with PacketID set to i — the same guarantee
// (and the same order) as Accelerator.ScanPackets.
func (e *Engine) ScanPackets(payloads [][]byte) []Match {
	per := e.eng.ScanPackets(payloads)
	total := 0
	for _, ms := range per {
		total += len(ms)
	}
	out := make([]Match, 0, total)
	for pid, ms := range per {
		for _, am := range ms {
			out = append(out, e.m.convert(am, pid))
		}
	}
	return out
}

// Flow is a streaming scan bound to one concurrent stream: it has the
// Stream API (io.Writer, Reset, Consumed) but checks its scanner state out
// of the engine's shared pool, so opening and closing flows at connection
// rate does not allocate in steady state. Close must be called when the
// flow ends; a Flow is not safe for concurrent use.
type Flow struct {
	e    *Engine
	f    *engine.Flow
	emit func(Match)
}

// Flow opens a new per-flow scan that calls emit for every match. Matches
// found within one Write are emitted sorted by (End, PatternID) with
// offsets relative to the start of the flow; as with Stream, the emission
// sequence across Writes equals FindAll of the concatenated stream.
func (e *Engine) Flow(emit func(Match)) *Flow {
	return &Flow{e: e, f: e.eng.Flow(), emit: emit}
}

// Write consumes the next chunk of the flow's payload. It implements
// io.Writer and never fails while the flow is open; writing to a closed
// flow returns an error. Emitted matches carry PacketID -1; use
// WritePacket to attribute matches to an ingest sequence number.
func (f *Flow) Write(p []byte) (int, error) {
	return f.WritePacket(p, -1)
}

// WritePacket is Write with match attribution: matches whose final byte
// lies in p are emitted with PacketID set to packetID. A demultiplexer
// feeding reassembled segments through per-flow state uses this to report
// which ingested packet completed a (possibly cross-packet) match, while
// Start/End stay flow-relative; the Gateway's stream path is built on it.
func (f *Flow) WritePacket(p []byte, packetID int) (int, error) {
	if f.f == nil {
		return 0, fmt.Errorf("dpi: write to closed Flow")
	}
	for _, am := range f.f.Write(p) {
		f.emit(f.e.m.convert(am, packetID))
	}
	return len(p), nil
}

// Reset rewinds the flow to start-of-packet: automaton states and the
// 2-byte histories are cleared, and offsets restart at zero.
func (f *Flow) Reset() {
	if f.f != nil {
		f.f.Reset()
	}
}

// SkipGap advances the flow position by n bytes that were never seen (a
// TCP reassembly gap skipped on loss): scanner registers are invalidated —
// a match cannot span unseen bytes — but offsets of later matches remain
// absolute in the flow's true byte stream. The Gateway calls this when a
// flow's gap timeout expires.
func (f *Flow) SkipGap(n int) {
	if f.f != nil && n > 0 {
		f.f.SkipGap(n)
	}
}

// Consumed returns the bytes scanned since the flow was opened or Reset.
func (f *Flow) Consumed() int {
	if f.f == nil {
		return 0
	}
	return f.f.Consumed()
}

// Generation reports the compile generation of the scanner state backing
// this flow (zero once closed or discarded). It always equals the
// generation of the matcher whose engine opened the flow — the hot-reload
// oracle audits exactly that.
func (f *Flow) Generation() uint64 {
	if f.f == nil {
		return 0
	}
	return f.f.Generation()
}

// Discard drops the flow's scanner state without returning it to the pool,
// then closes the flow. The Gateway's panic containment uses it for a flow
// whose scan panicked: the scanner registers may be mid-update, and
// repooling them would hand corrupt state to an unrelated future flow.
func (f *Flow) Discard() {
	if f.f != nil {
		f.f.Discard()
		f.f = nil
	}
}

// Close returns the flow's scanner state to the engine pool. Closing twice
// is a no-op.
func (f *Flow) Close() error {
	if f.f != nil {
		f.f.Close()
		f.f = nil
	}
	return nil
}
