// Package dpi is a memory-compressed multi-pattern string matcher for deep
// packet inspection, reproducing Kennedy, Wang, Liu and Liu, "Ultra-High
// Throughput String Matching for Deep Packet Inspection" (DATE 2010).
//
// The matcher is an Aho-Corasick automaton using the move function (no fail
// pointers), so it consumes exactly one input byte per transition — worst
// case and average case are identical, which is what lets the hardware
// design guarantee wire-speed scanning. Memory is reduced by more than 96%
// through default transition pointers: the most commonly targeted states at
// depths 1, 2 and 3 are promoted into a 256-entry lookup table shared by
// all states, leaving each state with only the few pointers the table
// cannot reproduce.
//
// Seven layers are exposed:
//
//   - Ruleset: fixed-string pattern sets — parse Snort-style content
//     strings, generate synthetic Snort-like sets, reduce while preserving
//     the length distribution.
//   - Matcher: the compressed software automaton — compile a Ruleset and
//     scan payloads at one transition per byte. Scanning runs behind a
//     backend seam (Config.Backend) with four peer implementations of
//     one contract, registered in one registry (reference, baked,
//     prefiltered, accelerated). Config.Backend names the backend;
//     BackendAuto (the empty default) picks the fastest exact kernel the
//     configuration compiles. Config.Validate checks a configuration
//     without compiling (Compile runs it first); the deprecated
//     DisableBakedKernel flag is an alias for Backend: BackendReference
//     and only resolves an unpinned Backend — an explicitly pinned
//     backend wins where the two can agree, and combining
//     DisableBakedKernel with a pinned kernel backend is rejected by
//     Validate (wrapping ErrBadConfig), never silently overridden.
//     Every compiled Matcher carries a process-unique monotone
//     generation (Matcher.Generation) identifying the ruleset version —
//     the identity the gateway's hot-reload pinning is built on.
//     The baked flat kernel is the workhorse:
//     Compile flattens each machine into a two-tier program whose hot
//     near-root states (the start state, every depth-1 state, and the
//     most popular deeper states) are dense 256-entry move rows — one
//     indexed load per byte — while the long tail keeps the paper's
//     compressed form as packed CSR stored pointers plus the fixed
//     default-transition lookup table, probed through a fused
//     two-character history register. The accelerated backend — the auto
//     default when the bake succeeds — layers two exact fast paths on
//     top, both resting on the root-resident skip invariant: at the
//     start state with true history the next state is a function of the
//     input byte alone, so clean spans can be bulk-skipped (SIMD-backed
//     probing for the few bytes that can leave the root) and the hottest
//     states can step two bytes per iteration through precomputed
//     row-pair tables, with no approximation at all. The prefiltered
//     backend stacks a two-stage pipeline instead: a tiny cache-resident
//     lossy automaton (collapsed alphabet, truncated patterns) skims
//     clean bytes and routes only suspect windows — with enough left
//     context to catch matches straddling the window edge — through the
//     exact baked kernel. The prefilter may raise false positives
//     (wasted exact work) but provably never false negatives: every
//     compile proves the superset contract structurally
//     (core.VerifySuperset) and drops the stage rather than ship a table
//     that could miss. The reference backend is the slice-walking
//     Machine.Next oracle itself. All four are byte-exact equivalent
//     (same states, same history, same match order — fuzz- and
//     property-verified in register-level lockstep) and inspectable
//     through Matcher.Kernel, which reports the active backend, kernel
//     layout, the prefilter's skim/suspect-rate counters and the
//     accelerated layer's pair-table footprint. This invariant is
//     load-bearing: ScanAppend (and every API above it) must behave
//     exactly like the reference Machine.Next transition on all inputs,
//     including mid-stream resets and reassembly gap skips.
//   - Engine: concurrent software scan-out mirroring the hardware's
//     engine/block parallelism — a worker pool with pooled scanner state
//     over the shared immutable automaton. Engine.ScanPackets shards a
//     batch of payloads across workers; Engine.Flow gives each concurrent
//     stream its own scanner registers while sharing the compiled machine.
//     Engines replicate freely over one Matcher (the automaton is
//     immutable), and Engine.Stats reports each replica's work.
//   - Gateway: the NIDS front-end the paper deploys — pipelined packet
//     ingestion (Ingest, or framed feeds via IngestReader; frame format v2
//     carries the TCP seq/flags) behind a bounded queue whose fullness is
//     the backpressure contract. The scan back-end is replicated like the
//     paper's block arrays: GatewayConfig.EngineShards spins up M
//     independent engine shards over the one compiled automaton and pins
//     every flow and stateless packet to a shard by tuple hash — M engines
//     × K workers, invisible in results and accounting, observable through
//     ShardStats. Non-TCP packets are batched into per-shard
//     Engine.ScanPackets-sized bursts; TCP packets are demultiplexed
//     through a sharded 5-tuple flow table into per-flow scanner state
//     pinned to hash-chosen lanes of their shard. Segments tagged FlagSeq pass through
//     TCP reassembly first (configurable overlap policy, bounded per-flow
//     and global buffering, gap timeout/skip, SYN/FIN/RST lifecycle), so
//     matches spanning segment boundaries survive demultiplexing even when
//     segments arrive out of order, overlapping or retransmitted. Header
//     rules (VerdictRule) classify each flow's 5-tuple before any payload
//     byte is scanned — pass exempts, drop discards unscanned, alert tags
//     every match with the admitting rule — with the decision reported
//     through OnVerdict before any match from that flow. Flow state is
//     pooled and bounded: least-recently-active flows are evicted at the
//     MaxFlows cap and after IdleTimeout logical ticks (time measured in
//     packets), a FIN returns scanner state to the pool immediately (the
//     entry lingers to absorb stragglers), an RST tears the flow down, and
//     an evicted-then-recreated flow always starts from clean state.
//     Rulesets hot-reload without a restart: Gateway.SwapRules installs
//     a newly compiled Matcher atomically behind the ingest drain
//     barrier — new flows and stateless bursts scan with the new
//     generation immediately, flows opened earlier stay pinned to their
//     birth generation until they end (no connection ever sees two
//     rulesets), and a generation's automaton is retired when its last
//     pinned flow closes (GatewayStats and Gateway.Generations account
//     for every install and retirement). Swaps only move forward:
//     installing an older compile fails with ErrStaleGeneration. The
//     package's error seam is three wrapped sentinels usable with
//     errors.Is — ErrBadConfig (rejected configuration or ruleset),
//     ErrClosed (use after Gateway.Close), ErrStaleGeneration.
//   - Capture: the ingestion edge — internal/capture reads classic
//     libpcap files (both endiannesses, microsecond and nanosecond
//     timestamps) and translates Ethernet/IPv4 frames (VLAN tags, IPv4
//     options, snap truncation) into the gateway's packet model, carrying
//     TCP sequence numbers and SYN/FIN/RST flags through so reassembly
//     and flow lifecycle see real wire semantics. Gateway.ReplayPcap is
//     the one-call seam: a capture file in, verdicts and matches out,
//     with ReplayStats accounting for every frame skipped and why.
//     Committed corpora under testdata/pcap/ carry their own ground
//     truth (internal/capture/corpus) and gate CI end to end.
//   - Observability: Gateway.Metrics() renders every counter the
//     pipeline already keeps — gateway totals, per-shard engine stats,
//     flow-table occupancy and evictions, reassembly buffer pressure,
//     per-rule verdict and match counts — in the Prometheus text
//     exposition format (internal/metrics, dependency-free). It is an
//     http.Handler; mount it at /metrics. Scrapes snapshot atomics and
//     never touch the packet hot path. OPERATIONS.md documents every
//     series.
//   - Accelerator: a functional model of the paper's FPGA design — packed
//     324-bit memory images, 6-engine string matching blocks, multi-block
//     scan-out with throughput, resource and power reporting for the
//     Cyclone III and Stratix III targets.
//
// Match ordering is canonical everywhere: FindAll and Scan order by
// (End, PatternID); Stream and Flow emit that same sequence incrementally
// (per-chunk sorted, which is globally sorted because a match surfaces in
// the chunk holding its final byte); Engine.ScanPackets and
// Accelerator.ScanPackets order by (PacketID, End, PatternID).
//
// Quickstart:
//
//	rs := dpi.NewRuleset()
//	rs.MustAdd("web-phf", []byte("/cgi-bin/phf"))
//	rs.MustAdd("nop-sled", []byte{0x90, 0x90, 0x90, 0x90})
//	m, err := dpi.Compile(rs, dpi.Config{})
//	if err != nil { ... }
//	for _, match := range m.FindAll(payload) {
//	    fmt.Printf("rule %s at [%d,%d)\n", rs.Name(match.PatternID), match.Start, match.End)
//	}
//
// ARCHITECTURE.md walks the packet lifecycle and names the test that
// enforces each invariant; OPERATIONS.md documents the metrics surface;
// README.md covers the backends and the tooling. cmd/dpibench
// regenerates the paper's evaluation section (dpibench -all) and replays
// the committed capture corpora (dpibench -pcap); examples/sensor is the
// complete capture-to-verdict edge in one binary.
package dpi
