package dpi

// Hot-reload tests: the generation-pinning oracle (flows opened before a
// SwapRules keep scanning — and matching — against the matcher they were
// born under, across backends and shard counts), refcounted retirement
// (old generations free exactly when their last pinned flow ends), the
// race-mode Ingest/SwapRules/Metrics/Flush storm, the wrapped sentinel
// errors, and the swap-equivalence fuzzer.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/traffic"
)

// swapWave is one ruleset generation's share of an oracle run: the
// matcher flows born in this wave must stay pinned to, and the flows
// themselves (tuples remapped to be disjoint across waves).
type swapWave struct {
	m       *Matcher
	tuples  []FiveTuple
	streams [][]byte
	// pkts[f] holds flow f's segments in stream order; the scheduler
	// consumes a prefix before the next swap and the rest after it.
	pkts [][]GatewayPacket
}

// buildSwapWave compiles a fresh ruleset (guaranteeing a strictly higher
// compile generation than any earlier wave) and a flow workload over it,
// with tuples remapped into a per-wave address block so waves never
// collide in the flow table.
func buildSwapWave(t *testing.T, wave, strings int, backend string, seed int64) swapWave {
	t.Helper()
	rules, err := GenerateSnortLike(strings, 1000*int64(wave)+seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rules, Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.GenerateFlows(rules.InternalSet(), traffic.FlowConfig{
		Flows: 8, SegmentsPerFlow: 5, SegmentBytes: 130, Seed: seed + int64(wave),
		CrossDensity: 2, AttackDensity: 1, Profile: traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := swapWave{m: m, streams: w.Streams, pkts: make([][]GatewayPacket, len(w.Tuples))}
	for f := range w.Tuples {
		sw.tuples = append(sw.tuples, FiveTuple{
			SrcIP: 0x0a000000 | uint32(wave)<<8 | uint32(f), DstIP: 0xc0a80001,
			SrcPort: uint16(1024 + f), DstPort: 80, Proto: ProtoTCP,
		})
	}
	for _, p := range w.Packets {
		sw.pkts[p.FlowID] = append(sw.pkts[p.FlowID],
			GatewayPacket{Tuple: sw.tuples[p.FlowID], Payload: p.Payload})
	}
	return sw
}

// TestSwapGenerationOracle is the tentpole invariant end to end: three
// ruleset generations are installed under live traffic with randomized
// swap points, and every flow's emitted matches must equal FindAll of its
// whole stream against the matcher current when the flow opened — not the
// one current when later segments arrived. Then the first two waves FIN
// and both old generations must retire, provably: counters, the live
// generation list, and a flow-table sweep checking no scanner of a
// retired generation is still checked out.
func TestSwapGenerationOracle(t *testing.T) {
	backends := []string{BackendReference, BackendBaked, BackendPrefiltered, BackendAccelerated}
	for bi, backend := range backends {
		for si, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", backend, shards), func(t *testing.T) {
				testSwapGenerationOracle(t, backend, shards, int64(31+7*bi+si))
			})
		}
	}
}

func testSwapGenerationOracle(t *testing.T, backend string, shards int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	waves := []swapWave{
		buildSwapWave(t, 0, 120, backend, seed),
		buildSwapWave(t, 1, 150, backend, seed),
		buildSwapWave(t, 2, 100, backend, seed),
	}
	for i := 1; i < len(waves); i++ {
		if waves[i].m.Generation() <= waves[i-1].m.Generation() {
			t.Fatalf("compile generations not ascending: %d then %d",
				waves[i-1].m.Generation(), waves[i].m.Generation())
		}
	}

	c := newCollector()
	gw := waves[0].m.NewEngine(2).Gateway(
		GatewayConfig{EngineShards: shards, StreamWorkers: 2, BatchPackets: 4}, c.emit)
	if got := gw.Generation(); got != waves[0].m.Generation() {
		t.Fatalf("initial generation %d, matcher has %d", got, waves[0].m.Generation())
	}

	// pending[w][f] is the unsent tail of wave w's flow f. drain ingests
	// randomly interleaved packets from the given waves; ensureOpen sends
	// at least flow f's first segment so the flow pins the current
	// generation before the next swap moves it.
	pending := make([][][]GatewayPacket, len(waves))
	for wv := range waves {
		pending[wv] = append([][]GatewayPacket{}, waves[wv].pkts...)
	}
	send := func(p GatewayPacket) {
		t.Helper()
		if err := gw.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	drainSome := func(upTo int, fraction float64) {
		for wv := 0; wv <= upTo; wv++ {
			for f := range pending[wv] {
				for len(pending[wv][f]) > 0 && rng.Float64() < fraction {
					send(pending[wv][f][0])
					pending[wv][f] = pending[wv][f][1:]
				}
			}
		}
	}
	ensureOpen := func(wv int) {
		for f := range pending[wv] {
			if len(pending[wv][f]) == len(waves[wv].pkts[f]) {
				send(pending[wv][f][0])
				pending[wv][f] = pending[wv][f][1:]
			}
		}
	}

	// Wave 0 flows all open, each with a random share of its stream sent.
	ensureOpen(0)
	drainSome(0, 0.5)
	if err := gw.SwapRules(waves[1].m); err != nil {
		t.Fatal(err)
	}
	if got := gw.Generation(); got != waves[1].m.Generation() {
		t.Fatalf("after first swap generation %d, want %d", got, waves[1].m.Generation())
	}
	// Wave 1 opens on generation B while wave 0 keeps streaming.
	ensureOpen(1)
	drainSome(1, 0.5)
	if err := gw.SwapRules(waves[2].m); err != nil {
		t.Fatal(err)
	}
	ensureOpen(2)
	// Everything else, fully interleaved across all three waves.
	for {
		left := false
		drainSome(2, 0.7)
		for wv := range pending {
			for f := range pending[wv] {
				if len(pending[wv][f]) > 0 {
					left = true
				}
			}
		}
		if !left {
			break
		}
	}
	gw.Flush()

	// Pinning oracle: every flow's full match stream equals FindAll of its
	// whole stream against its birth-generation matcher.
	total := 0
	for wv, sw := range waves {
		for f, tup := range sw.tuples {
			want := sw.m.FindAll(sw.streams[f])
			if got := c.byTuple[tup]; !sameMatchSeq(got, want) {
				t.Fatalf("wave %d flow %d: %d matches vs pinned-matcher oracle %d (or order/offsets differ)",
					wv, f, len(got), len(want))
			}
			total += len(want)
		}
	}
	if total == 0 {
		t.Fatal("no matches across any wave; test is vacuous")
	}

	// No scanner leaks across generations: every live flow still holds a
	// scanner stamped with exactly its pinned generation.
	wantGen := map[FiveTuple]uint64{}
	for wv, sw := range waves {
		for _, tup := range sw.tuples {
			wantGen[tup] = waves[wv].m.Generation()
		}
	}
	swept := 0
	gw.table.Range(func(k FiveTuple, fl *gwFlow) {
		swept++
		want, ok := wantGen[k]
		if !ok {
			t.Errorf("unexpected flow %v in table", k)
			return
		}
		if fl.gen == nil || fl.gen.id != want {
			t.Errorf("flow %v pinned to wrong generation (want %d)", k, want)
			return
		}
		if fl.f == nil || fl.f.Generation() != fl.gen.id {
			t.Errorf("flow %v scanner generation diverges from its pin %d", k, fl.gen.id)
		}
	})
	if swept == 0 {
		t.Fatal("flow-table sweep saw no flows")
	}

	st := gw.Stats()
	if st.GenerationsInstalled != 3 || st.RulesetSwaps != 2 ||
		st.GenerationsRetired != 0 || st.GenerationsLive != 3 {
		t.Fatalf("pre-drain generation counters: %+v", st)
	}
	gens := gw.Generations()
	if len(gens) != 3 || !gens[2].Current || gens[0].Current || gens[1].Current {
		t.Fatalf("Generations() = %+v", gens)
	}
	for wv, gi := range gens {
		if gi.Generation != waves[wv].m.Generation() || gi.Flows != int64(len(waves[wv].tuples)) {
			t.Fatalf("generation %d info %+v, want id %d flows %d",
				wv, gi, waves[wv].m.Generation(), len(waves[wv].tuples))
		}
	}
	preShard := gw.ShardStats()

	// FIN waves 0 and 1: their generations lose the last pin and must
	// retire — no sweeper, the FIN itself does it.
	for wv := 0; wv < 2; wv++ {
		for _, tup := range waves[wv].tuples {
			send(GatewayPacket{Tuple: tup, Flags: FlagFIN})
		}
	}
	gw.Flush()
	st = gw.Stats()
	if st.GenerationsRetired != st.GenerationsInstalled-1 {
		t.Fatalf("after FIN drain: retired %d, installed %d (want installed-1)",
			st.GenerationsRetired, st.GenerationsInstalled)
	}
	if st.GenerationsLive != 1 || st.Generation != waves[2].m.Generation() {
		t.Fatalf("after FIN drain: %d live generations, current %d", st.GenerationsLive, st.Generation)
	}
	gens = gw.Generations()
	if len(gens) != 1 || !gens[0].Current || gens[0].Flows != int64(len(waves[2].tuples)) {
		t.Fatalf("after FIN drain Generations() = %+v", gens)
	}
	// Retirement folds engine counters into the baseline: per-shard stats
	// stay monotone across the fold.
	for i, es := range gw.ShardStats() {
		if es.FlowsOpened < preShard[i].FlowsOpened || es.StreamBytes < preShard[i].StreamBytes {
			t.Fatalf("shard %d stats went backwards across retirement: %+v then %+v",
				i, preShard[i], es)
		}
	}

	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if l := gw.Stats().Ledger(); !l.Balanced() {
		t.Fatalf("ledger unbalanced after close: %+v", l)
	}
}

// TestSwapBurstCutover checks the stateless path: datagrams ingested
// after a swap are scanned by the new generation — matches equal the new
// matcher's FindAll, including for a UDP tuple already seen before the
// swap (bursts carry no pin; they cut over at batch boundaries).
func TestSwapBurstCutover(t *testing.T) {
	mA, setA := gatewayMatcher(t, 150, 1)
	mB, _ := gatewayMatcher(t, 180, 2)
	dgrams, err := traffic.Generate(setA, traffic.Config{
		Packets: 12, Bytes: 200, Seed: 9, AttackDensity: 2, Profile: traffic.Textual,
	})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(i int) FiveTuple {
		return FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002,
			SrcPort: uint16(50000 + i), DstPort: 53, Proto: ProtoUDP}
	}
	c := newCollector()
	gw := mA.NewEngine(2).Gateway(GatewayConfig{EngineShards: 2, BatchPackets: 4}, c.emit)
	half := len(dgrams) / 2
	for i, d := range dgrams[:half] {
		if err := gw.Ingest(GatewayPacket{Tuple: tup(i), Payload: d.Payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.SwapRules(mB); err != nil {
		t.Fatal(err)
	}
	for i, d := range dgrams[half:] {
		// Reuse the pre-swap tuples: stateless packets must not inherit
		// any pin from earlier traffic on the same tuple.
		if err := gw.Ingest(GatewayPacket{Tuple: tup(i), Payload: d.Payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	for i, d := range dgrams[:half] {
		pre := make([]Match, 0, 4)
		for _, m := range c.byTuple[tup(i)] {
			if m.PacketID == i { // pre-swap datagram i was ingest seq i
				pre = append(pre, m)
			}
		}
		if want := mA.FindAll(d.Payload); !sameMatchSeq(pre, want) {
			t.Fatalf("pre-swap datagram %d: %d matches, old-matcher oracle %d", i, len(pre), len(want))
		}
	}
	for i, d := range dgrams[half:] {
		post := make([]Match, 0, 4)
		for _, m := range c.byTuple[tup(i)] {
			if m.PacketID == half+i {
				post = append(post, m)
			}
		}
		if want := mB.FindAll(d.Payload); !sameMatchSeq(post, want) {
			t.Fatalf("post-swap datagram %d: %d matches, new-matcher oracle %d", i, len(post), len(want))
		}
	}
}

// TestSwapUnderConcurrentLoad is the race-mode storm the ISSUE asks for:
// concurrent Ingest, SwapRules, metrics scrapes, Stats/Generations reads
// and Flushes, then a drained close with the conservation ledger and the
// retirement invariant intact. Run with -race; the interesting assertions
// are the ones the race detector makes.
func TestSwapUnderConcurrentLoad(t *testing.T) {
	const gens = 5
	matchers := make([]*Matcher, gens)
	var rules0 *Ruleset
	for i := range matchers {
		rules, err := GenerateSnortLike(80+10*i, int64(400+i))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Compile(rules, Config{})
		if err != nil {
			t.Fatal(err)
		}
		matchers[i] = m
		if i == 0 {
			rules0 = rules
		}
	}
	w, err := traffic.GenerateFlows(rules0.InternalSet(), traffic.FlowConfig{
		Flows: 30, SegmentsPerFlow: 6, SegmentBytes: 120, Seed: 21,
		CrossDensity: 1, AttackDensity: 1, Profile: traffic.Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}

	gw := matchers[0].NewEngine(2).Gateway(
		GatewayConfig{EngineShards: 2, StreamWorkers: 2, BatchPackets: 8}, func(FlowMatch) {})
	gm := gw.Metrics()
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // ingester: the full stream workload plus UDP noise
		defer wg.Done()
		defer close(done)
		for i, p := range w.Packets {
			if err := gw.Ingest(GatewayPacket{Tuple: p.Tuple, Payload: p.Payload}); err != nil {
				t.Error(err)
				return
			}
			if i%7 == 0 {
				u := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: uint16(i), DstPort: 53, Proto: ProtoUDP}
				if err := gw.Ingest(GatewayPacket{Tuple: u, Payload: p.Payload}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // swapper: install every later generation in order
		defer wg.Done()
		for _, m := range matchers[1:] {
			if err := gw.SwapRules(m); err != nil {
				t.Errorf("SwapRules: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // scraper: metrics render + stats + generation list, until ingest ends
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := gm.WriteTo(io.Discard); err != nil {
				t.Errorf("metrics render: %v", err)
				return
			}
			_ = gw.Stats()
			_ = gw.Generations()
			_ = gw.Generation()
		}
	}()
	wg.Add(1)
	go func() { // flusher: drain barriers interleaved with swaps and ingest
		defer wg.Done()
		for i := 0; i < 5; i++ {
			gw.Flush()
		}
	}()
	wg.Wait()

	// A final scrape must still be well-formed exposition text.
	var buf = &writerTo{}
	if _, err := gm.WriteTo(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := metrics.Validate(buf.b); err != nil {
		t.Fatalf("metrics exposition invalid after swap storm: %v", err)
	}

	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.RulesetSwaps != gens-1 || st.GenerationsInstalled != gens {
		t.Fatalf("swap accounting: %d swaps, %d installed", st.RulesetSwaps, st.GenerationsInstalled)
	}
	// Close unpins every flow, so exactly the current generation survives.
	if st.GenerationsRetired != st.GenerationsInstalled-1 || st.GenerationsLive != 1 {
		t.Fatalf("retirement after close: retired %d installed %d live %d",
			st.GenerationsRetired, st.GenerationsInstalled, st.GenerationsLive)
	}
	if l := st.Ledger(); !l.Balanced() {
		t.Fatalf("ledger unbalanced after swap storm: %+v", l)
	}
}

type writerTo struct{ b []byte }

func (w *writerTo) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

// TestSentinelErrors pins the v1 error seam: every constructor and
// control-plane rejection is classifiable with errors.Is against the
// exported sentinels, including through Compile and Config.Validate.
func TestSentinelErrors(t *testing.T) {
	if err := (Config{Groups: -1}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative Groups: %v, want ErrBadConfig", err)
	}
	// The deprecated alias conflicting with a pinned kernel backend is
	// still a config error — through the same seam.
	if err := (Config{DisableBakedKernel: true, Backend: BackendBaked}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("alias conflict: %v, want ErrBadConfig", err)
	}
	if err := (Config{Groups: 2, Backend: BackendAccelerated}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := Compile(NewRuleset(), Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty ruleset: %v, want ErrBadConfig", err)
	}
	if _, err := Compile(nil, Config{Groups: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Compile with bad config: %v, want ErrBadConfig", err)
	}

	mA, _ := gatewayMatcher(t, 40, 1)
	mB, _ := gatewayMatcher(t, 40, 1)
	if _, err := NewGateway(nil, GatewayConfig{}, func(FlowMatch) {}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil matcher: %v, want ErrBadConfig", err)
	}
	if _, err := NewGateway(mA, GatewayConfig{}, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil emit: %v, want ErrBadConfig", err)
	}

	gw, err := NewGateway(mA, GatewayConfig{}, func(FlowMatch) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.SwapRules(nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("SwapRules(nil): %v, want ErrBadConfig", err)
	}
	if err := gw.SwapRules(mA); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("re-swap of the installed matcher: %v, want ErrStaleGeneration", err)
	}
	if err := gw.SwapRules(mB); err != nil {
		t.Fatal(err)
	}
	if err := gw.SwapRules(mA); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("swap to an older compile: %v, want ErrStaleGeneration", err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gw.Ingest(GatewayPacket{Tuple: FiveTuple{Proto: ProtoUDP}, Payload: []byte("x")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close: %v, want ErrClosed", err)
	}
	if err := gw.SwapRules(mB); !errors.Is(err, ErrClosed) {
		t.Fatalf("SwapRules after Close: %v, want ErrClosed", err)
	}
}

// TestDeprecatedDisableBakedKernelAlias keeps the compatibility contract
// of the deprecated flag alive while every in-repo caller now uses
// Config.Backend: the alias still resolves an unpinned backend to the
// reference path.
func TestDeprecatedDisableBakedKernelAlias(t *testing.T) {
	rules, err := GenerateSnortLike(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(rules, Config{DisableBakedKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kernel().Baked {
		t.Fatal("DisableBakedKernel no longer disables the baked kernel")
	}
	if m.Backend() != BackendReference {
		t.Fatalf("alias resolved to backend %q, want %q", m.Backend(), BackendReference)
	}
}

// FuzzSwapEquivalence drives a small gateway through a fuzz-chosen
// interleaving of per-flow writes, one hot swap, FINs and flushes, and
// requires every flow's match stream to equal FindAll of its concatenated
// stream against the matcher that was installed when the flow opened —
// the pinning contract under arbitrary schedules — plus ledger balance
// and installed-minus-one retirement after close.
func FuzzSwapEquivalence(f *testing.F) {
	f.Add([]byte{2, 'h', 'e', 3, 's', 'h', 'e'}, []byte{3, 'h', 'i', 's', 4, 'h', 'e', 'r', 's'},
		[]byte("ushers say she sells seashells"), []byte{0x10, 0x1b, 0x22, 0x08, 0x31, 0x0c, 0x3e})
	f.Add([]byte{1, 'a', 2, 'a', 'a'}, []byte{3, 'a', 'a', 'a'},
		[]byte("aaaaaaaaaaaa"), []byte{0x08, 0x09, 0x03, 0x0a, 0x05, 0x10, 0x11})
	f.Add([]byte{4, 0x00, 0xff, 0x00, 0xff}, []byte{2, 0xff, 0xff},
		[]byte{0x00, 0xff, 0x00, 0xff, 0xff}, []byte{0x20, 0x03, 0x21, 0x04, 0x22})
	f.Fuzz(func(t *testing.T, patA, patB, payload, ops []byte) {
		rulesA := fuzzRulesFrom(patA)
		rulesB := fuzzRulesFrom(patB)
		if rulesA == nil || rulesB == nil {
			t.Skip("no patterns")
		}
		mA, err := Compile(rulesA, Config{})
		if err != nil {
			t.Fatal(err)
		}
		mB, err := Compile(rulesB, Config{})
		if err != nil {
			t.Fatal(err)
		}
		c := newCollector()
		gw := mA.NewEngine(2).Gateway(
			GatewayConfig{EngineShards: 2, StreamWorkers: 2, BatchPackets: 2}, c.emit)

		const nflows = 3
		tup := func(i int) FiveTuple {
			return FiveTuple{SrcIP: 0x0a0a0a0a, DstIP: 0x14141414,
				SrcPort: uint16(2000 + i), DstPort: 80, Proto: ProtoTCP}
		}
		streams := make([][]byte, nflows)
		pinned := make([]*Matcher, nflows) // matcher current when the flow opened
		finned := make([]bool, nflows)
		cur := mA
		swapped := false
		off := 0
		chunk := func(n int) []byte {
			if len(payload) == 0 {
				return nil
			}
			out := make([]byte, 0, n)
			for len(out) < n {
				take := len(payload) - off
				if take > n-len(out) {
					take = n - len(out)
				}
				out = append(out, payload[off:off+take]...)
				off = (off + take) % len(payload)
			}
			return out
		}
		for _, op := range ops {
			switch op % 6 {
			case 0, 1, 2: // write a chunk to flow op%6
				fi := int(op % 6)
				if finned[fi] {
					break // husk: a non-SYN straggler would be discarded unscanned
				}
				p := chunk(int(op>>3) + 1)
				if pinned[fi] == nil {
					pinned[fi] = cur
				}
				if err := gw.Ingest(GatewayPacket{Tuple: tup(fi), Payload: p}); err != nil {
					t.Fatal(err)
				}
				streams[fi] = append(streams[fi], p...)
			case 3: // the one hot swap
				if !swapped {
					if err := gw.SwapRules(mB); err != nil {
						t.Fatal(err)
					}
					swapped = true
					cur = mB
				}
			case 4:
				gw.Flush()
			case 5: // FIN flow op>>3 % nflows
				fi := int(op>>3) % nflows
				if pinned[fi] == nil || finned[fi] {
					break
				}
				if err := gw.Ingest(GatewayPacket{Tuple: tup(fi), Flags: FlagFIN}); err != nil {
					t.Fatal(err)
				}
				finned[fi] = true
			}
		}
		if err := gw.Close(); err != nil {
			t.Fatal(err)
		}
		for fi := range streams {
			if pinned[fi] == nil {
				continue
			}
			want := pinned[fi].FindAll(streams[fi])
			if got := c.byTuple[tup(fi)]; !sameMatchSeq(got, want) {
				t.Fatalf("flow %d: %d matches, pinned-matcher oracle %d (swapped=%v)",
					fi, len(got), len(want), swapped)
			}
		}
		st := gw.Stats()
		if st.GenerationsRetired != st.GenerationsInstalled-1 {
			t.Fatalf("retirement: %d retired of %d installed", st.GenerationsRetired, st.GenerationsInstalled)
		}
		if l := st.Ledger(); !l.Balanced() {
			t.Fatalf("ledger unbalanced: %+v", l)
		}
	})
}
