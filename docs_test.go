package dpi

import (
	"fmt"
	"go/format"
	"os"
	"regexp"
	"strings"
	"testing"
)

// lintedDocs is the authored documentation set. ISSUE.md, SNIPPETS.md and
// PAPERS.md are driver/reference material whose content this repository
// does not control, so they are deliberately excluded.
var lintedDocs = []string{
	"README.md",
	"ARCHITECTURE.md",
	"OPERATIONS.md",
	"ROADMAP.md",
	"PAPER.md",
	"CHANGES.md",
}

var goFence = regexp.MustCompile("(?s)```go\n(.*?)```")

// TestDocsGoBlocksFormatted holds every fenced Go block in the authored
// docs to the same standard as committed source: it must parse (as a file
// or as a statement/declaration fragment) and already be gofmt-clean, so
// examples in prose cannot rot into code that would not survive review.
func TestDocsGoBlocksFormatted(t *testing.T) {
	blocks := 0
	for _, name := range lintedDocs {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, m := range goFence.FindAllStringSubmatch(string(raw), -1) {
			blocks++
			src := m[1]
			formatted, err := format.Source([]byte(src))
			if err != nil {
				t.Errorf("%s: go block %d does not parse: %v\n%s", name, i+1, err, src)
				continue
			}
			if got, want := strings.TrimRight(string(formatted), "\n"), strings.TrimRight(src, "\n"); got != want {
				t.Errorf("%s: go block %d is not gofmt-clean; want:\n%s", name, i+1, got)
			}
		}
	}
	if blocks == 0 {
		t.Error("no fenced Go blocks found in the authored docs (regex or docs drift)")
	}
}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsRelativeLinksResolve checks that every relative markdown link
// in the authored docs points at a file or directory that exists, so a
// rename or deletion cannot silently strand the documentation.
func TestDocsRelativeLinksResolve(t *testing.T) {
	links := 0
	for _, name := range lintedDocs {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			links++
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s: link target %q does not exist", name, m[1])
			}
		}
	}
	if links == 0 {
		t.Error("no relative links found in the authored docs (regex or docs drift)")
	}
}

// TestDocsNamedTestsExist cross-checks ARCHITECTURE.md's enforcement
// table: every Test/Fuzz function it names must exist somewhere in the
// repository's _test.go files, so the table cannot refer to tests that
// were renamed or removed.
func TestDocsNamedTestsExist(t *testing.T) {
	raw, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	named := regexp.MustCompile("`((?:Test|Fuzz)[A-Za-z0-9_]+)`").FindAllStringSubmatch(string(raw), -1)
	if len(named) == 0 {
		t.Fatal("ARCHITECTURE.md names no tests (regex or docs drift)")
	}

	defined := make(map[string]bool)
	var walk func(dir string)
	walk = func(dir string) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			path := dir + "/" + e.Name()
			switch {
			case e.IsDir() && e.Name() != "testdata" && !strings.HasPrefix(e.Name(), "."):
				walk(path)
			case strings.HasSuffix(e.Name(), "_test.go"):
				src, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range regexp.MustCompile(`(?m)^func ((?:Test|Fuzz)[A-Za-z0-9_]+)\(`).FindAllSubmatch(src, -1) {
					defined[string(d[1])] = true
				}
			}
		}
	}
	walk(".")

	for _, m := range named {
		if !defined[m[1]] {
			t.Errorf("ARCHITECTURE.md names %s, which is not defined in any _test.go file", m[1])
		}
	}
	if !defined["TestDocsNamedTestsExist"] {
		t.Error(fmt.Sprintf("self-check failed: walker did not see this file (%d tests found)", len(defined)))
	}
}
