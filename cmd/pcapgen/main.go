// Command pcapgen regenerates the committed pcap corpora under
// testdata/pcap/ from their deterministic definitions in
// internal/capture/corpus. Run it from the repository root after changing
// a corpus definition; the drift-guard test (TestCommittedCorporaMatch in
// the root package) fails until the committed bytes match the definitions
// again, so corpus code and corpus files cannot diverge.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/capture/corpus"
)

func main() {
	dir := flag.String("dir", "testdata/pcap", "output directory for the corpus files")
	check := flag.Bool("check", false, "verify committed files match the definitions instead of writing")
	flag.Parse()

	status := 0
	for _, c := range corpus.All() {
		path := filepath.Join(*dir, c.File)
		want := c.Bytes()
		if *check {
			got, err := os.ReadFile(path)
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "pcapgen: %s: %v\n", path, err)
				status = 1
			case string(got) != string(want):
				fmt.Fprintf(os.Stderr, "pcapgen: %s: committed bytes differ from definition (run pcapgen to regenerate)\n", path)
				status = 1
			default:
				fmt.Printf("pcapgen: %s: ok (%d records, %d bytes)\n", path, len(c.Records), len(want))
			}
			continue
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "pcapgen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pcapgen:", err)
			os.Exit(1)
		}
		fmt.Printf("pcapgen: wrote %s (%d records, %d bytes)\n", path, len(c.Records), len(want))
	}
	os.Exit(status)
}
