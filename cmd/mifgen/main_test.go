package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hwsim"
)

func writeRules(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rules.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEmitsThreeMIFsPerGroup(t *testing.T) {
	rules := writeRules(t, "a: /cgi-bin/phf\nb: |90 90 90 90|\nc: cmd.exe\n")
	out := t.TempDir()
	if err := run(rules, "cyclone3", out, 0); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"group0.state.mif", "group0.match.mif", "group0.lut.mif"} {
		data, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := hwsim.ParseMIF(strings.NewReader(string(data))); err != nil {
			t.Fatalf("%s does not parse back: %v", name, err)
		}
	}
	// A 3-pattern set needs exactly one group: no group1 files.
	if _, err := os.Stat(filepath.Join(out, "group1.state.mif")); !os.IsNotExist(err) {
		t.Fatal("unexpected group1 files")
	}
}

func TestRunExplicitGroups(t *testing.T) {
	rules := writeRules(t, "a: abcdef\nb: ghijkl\nc: mnopqr\nd: stuvwx\n")
	out := t.TempDir()
	if err := run(rules, "stratix3", out, 2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"group0.state.mif", "group1.state.mif"} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	rules := writeRules(t, "a: abc\n")
	if err := run(rules, "virtex7", t.TempDir(), 0); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run("/nonexistent", "cyclone3", t.TempDir(), 0); err == nil {
		t.Error("missing rules file accepted")
	}
}
