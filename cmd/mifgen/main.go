// Command mifgen compiles a ruleset and emits the Altera Memory
// Initialization Files (.mif) a hardware build of the accelerator loads
// into each string matching block's RAMs: state memory (324-bit words),
// match-number memory (27-bit words) and the default-transition lookup
// table.
//
// Usage:
//
//	mifgen -rules rules.txt -device stratix3 -out build/
//
// emits build/group0.state.mif, build/group0.match.mif,
// build/group0.lut.mif (and group1…, if the ruleset splits).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hwsim"
	"repro/internal/ruleset"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "ruleset file (required)")
		devName   = flag.String("device", "stratix3", "target device: cyclone3 or stratix3")
		outDir    = flag.String("out", ".", "output directory")
		groups    = flag.Int("groups", 0, "groups to split into (0 = smallest that fits)")
	)
	flag.Parse()
	if *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*rulesPath, *devName, *outDir, *groups); err != nil {
		fmt.Fprintln(os.Stderr, "mifgen:", err)
		os.Exit(1)
	}
}

func run(rulesPath, devName, outDir string, groups int) error {
	var dev device.Device
	switch devName {
	case "cyclone3":
		dev = device.Cyclone3
	case "stratix3":
		dev = device.Stratix3
	default:
		return fmt.Errorf("unknown device %q (want cyclone3 or stratix3)", devName)
	}
	f, err := os.Open(rulesPath)
	if err != nil {
		return err
	}
	set, err := ruleset.ParseFile(f)
	f.Close()
	if err != nil {
		return err
	}

	// Find the smallest grouping whose images fit the device blocks.
	tryGroups := []int{groups}
	if groups == 0 {
		tryGroups = nil
		for g := 1; g <= dev.Blocks; g++ {
			tryGroups = append(tryGroups, g)
		}
	}
	var images []*hwsim.Image
	var chosen int
	for _, g := range tryGroups {
		grouped, err := core.BuildGrouped(set, g, core.Options{})
		if err != nil {
			return err
		}
		images = images[:0]
		fits := true
		for _, m := range grouped.Machines {
			img, err := hwsim.Pack(m)
			if err != nil {
				fits = false
				break
			}
			if img.Stats.StateWords > dev.StateWordsPerBlock {
				fits = false
				break
			}
			images = append(images, img)
		}
		if fits {
			chosen = g
			break
		}
		if groups != 0 {
			return fmt.Errorf("ruleset does not fit %s blocks with %d groups", dev.Name, g)
		}
	}
	if chosen == 0 {
		return fmt.Errorf("ruleset does not fit %s even with %d groups", dev.Name, dev.Blocks)
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for gi, img := range images {
		mifs, err := img.ExportMIFs(dev.StateWordsPerBlock)
		if err != nil {
			return fmt.Errorf("group %d: %w", gi, err)
		}
		for _, out := range []struct {
			suffix string
			data   []byte
		}{
			{"state", mifs.State},
			{"match", mifs.Match},
			{"lut", mifs.LUT},
		} {
			path := filepath.Join(outDir, fmt.Sprintf("group%d.%s.mif", gi, out.suffix))
			if err := os.WriteFile(path, out.data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(out.data))
		}
		fmt.Printf("group %d: %d states in %d/%d words (fill %.1f%%), %d match words\n",
			gi, img.Stats.States, img.Stats.StateWords, dev.StateWordsPerBlock,
			100*img.Stats.FillRatio, img.Stats.MatchWordsUsed)
	}
	tput, err := dev.AggregateThroughputBps(chosen)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d group(s), %d concurrent packet set(s), %.1f Gbps\n",
		dev.Name, chosen, dev.Blocks/chosen, tput/1e9)
	return nil
}
