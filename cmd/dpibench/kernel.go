package main

// The -kernel mode measures the raw per-byte scan loop — the
// BenchmarkScanAppend-class number — across ruleset sizes, under both the
// baked flat Program (the default scan path) and the slice-walking
// reference path it must stay byte-exact equivalent to. Every row is
// pinned to the uncompressed Aho-Corasick oracle's match count before it
// is timed, so a kernel can never buy throughput with dropped matches.
//
// With -json the run emits a machine-readable report; CI regenerates it
// every run, and a copy is checked into the repo root as BENCH_4.json —
// the first entry of the perf trajectory.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/ac"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/ruleset"
	"repro/internal/traffic"
)

// kernelBenchConfig sizes the -kernel sweep; tests shrink it.
type kernelBenchConfig struct {
	Sizes   []int // ruleset sizes; the paper's 634-string set is the headline row
	Bytes   int   // payload size per pass
	Seed    int64
	MinTime time.Duration // per-row measurement floor
}

func defaultKernelConfig(seed int64) kernelBenchConfig {
	return kernelBenchConfig{
		Sizes:   []int{100, 634, 1204},
		Bytes:   1 << 16,
		Seed:    seed,
		MinTime: 400 * time.Millisecond,
	}
}

// kernelBenchRow is one (ruleset size, kernel) measurement.
type kernelBenchRow struct {
	Strings       int     `json:"strings"`
	Baked         bool    `json:"baked"`
	Gbps          float64 `json:"gbps"`
	Matches       int     `json:"matches"`        // per 64 KiB payload pass
	OracleMatches int     `json:"oracle_matches"` // uncompressed-DFA count
	AllocsPerOp   float64 `json:"allocs_per_op"`  // steady-state allocations per pass
	Speedup       float64 `json:"speedup"`        // vs the reference kernel, same size
	DenseStates   int     `json:"dense_states"`   // baked rows promoted to dense tier
	KernelBytes   int     `json:"kernel_bytes"`   // flat program footprint
}

// kernelBenchReport is the BENCH_4.json artifact. OK gates CI: every row
// must reproduce the oracle match count, and the headline 634-string baked
// row must beat the reference kernel by the committed floor.
type kernelBenchReport struct {
	Bench        int              `json:"bench"` // trajectory sequence number
	Bytes        int              `json:"payload_bytes"`
	Seed         int64            `json:"seed"`
	Rows         []kernelBenchRow `json:"rows"`
	Speedup634   float64          `json:"speedup_634"`
	SpeedupFloor float64          `json:"speedup_floor"`
	OK           bool             `json:"ok"`
}

// speedupFloor is the committed improvement gate for the headline row.
const speedupFloor = 1.5

// measureKernel times repeated full-payload ScanAppend passes over one
// machine and reports (Gbps, matches per pass, allocations per pass).
func measureKernel(m *core.Machine, payload []byte, minTime time.Duration) (float64, int, float64) {
	sc := m.NewScanner()
	var out []ac.Match
	pass := func() {
		sc.Reset()
		out = sc.ScanAppend(payload, out[:0])
	}
	pass() // warm the match buffer so steady state is measured

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	passes := 0
	for time.Since(start) < minTime {
		pass()
		passes++
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	gbps := float64(passes) * float64(len(payload)) * 8 / elapsed / 1e9
	allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(passes)
	return gbps, len(out), allocs
}

func runKernel(out io.Writer, jsonPath string, cfg kernelBenchConfig) error {
	t := &report.Table{
		Title: fmt.Sprintf("SCAN KERNEL THROUGHPUT (payload %d B, seed %d; baked flat program vs slice-walking reference)",
			cfg.Bytes, cfg.Seed),
		Headers: []string{"Strings", "Kernel", "Gbps", "Speedup", "Matches", "Oracle", "Allocs/op", "Dense", "KernelKB"},
	}
	rep := kernelBenchReport{
		Bench: 4, Bytes: cfg.Bytes, Seed: cfg.Seed,
		SpeedupFloor: speedupFloor, OK: true,
	}

	for _, n := range cfg.Sizes {
		set, err := ruleset.Generate(ruleset.GenConfig{N: n, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		pkts, err := traffic.Generate(set, traffic.Config{
			Packets: 1, Bytes: cfg.Bytes, Seed: cfg.Seed, AttackDensity: 3,
			Profile: traffic.Textual,
		})
		if err != nil {
			return err
		}
		payload := pkts[0].Payload
		trie, err := ac.New(set)
		if err != nil {
			return err
		}
		oracle := len(trie.FindAll(payload))

		var refGbps float64
		for _, baked := range []bool{false, true} {
			m, err := core.Build(set, core.Options{DisableBaked: !baked})
			if err != nil {
				return err
			}
			if baked && m.Program() == nil {
				return fmt.Errorf("dpibench: %d-string machine did not bake", n)
			}
			gbps, matches, allocs := measureKernel(m, payload, cfg.MinTime)
			row := kernelBenchRow{
				Strings: n, Baked: baked, Gbps: gbps,
				Matches: matches, OracleMatches: oracle, AllocsPerOp: allocs,
			}
			if matches != oracle {
				rep.OK = false
			}
			name := "reference"
			if baked {
				name = "baked"
				row.Speedup = gbps / refGbps
				st := m.Program().Stats()
				row.DenseStates = st.DenseStates
				row.KernelBytes = st.TotalBytes
				if n == 634 {
					rep.Speedup634 = row.Speedup
					if row.Speedup < speedupFloor {
						rep.OK = false
					}
				}
			} else {
				refGbps = gbps
				row.Speedup = 1
			}
			rep.Rows = append(rep.Rows, row)
			t.AddRow(n, name, fmt.Sprintf("%.3f", gbps), fmt.Sprintf("%.2fx", row.Speedup),
				matches, oracle, fmt.Sprintf("%.1f", allocs),
				row.DenseStates, row.KernelBytes/1024)
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if err := t.Render(out); err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("dpibench: kernel rows failed the oracle or the %.1fx speedup floor (speedup634 %.2fx)",
			speedupFloor, rep.Speedup634)
	}
	return nil
}
