package main

// The -kernel mode measures the raw per-byte scan loop — the
// BenchmarkScanAppend-class number — across ruleset sizes and across every
// registered scan backend: the slice-walking reference, the baked flat
// Program, the two-stage prefiltered pipeline and the accelerated
// skip/pair kernel. Every row is pinned to
// the uncompressed Aho-Corasick oracle's match count before it is timed, so
// a kernel can never buy throughput with dropped matches — the prefilter's
// lossiness in particular must be invisible here.
//
// Two traffic profiles run: "attack" (textual background with planted
// patterns, the regime the baked kernel is tuned for) at every ruleset
// size, and "clean" (uniform random bytes, no plants — the low-match-
// density regime real link traffic mostly is) at the largest size, where
// the prefilter's skim loop must earn its keep.
//
// With -json the run emits a machine-readable report; CI regenerates it
// every run, and a copy is checked into the repo root as BENCH_7.json —
// the current entry of the perf trajectory.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/ac"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/ruleset"
	"repro/internal/traffic"
)

// kernelBenchConfig sizes the -kernel sweep; tests shrink it.
type kernelBenchConfig struct {
	Sizes   []int // ruleset sizes; the paper's 634-string set is the headline row
	Bytes   int   // payload size per pass
	Seed    int64
	MinTime time.Duration // per-row measurement floor
}

func defaultKernelConfig(seed int64) kernelBenchConfig {
	return kernelBenchConfig{
		Sizes:   []int{100, 634, 1204},
		Bytes:   1 << 16,
		Seed:    seed,
		MinTime: 400 * time.Millisecond,
	}
}

// kernelBenchRow is one (ruleset size, profile, backend) measurement.
type kernelBenchRow struct {
	Strings       int     `json:"strings"`
	Backend       string  `json:"backend"` // reference | baked | prefiltered | accelerated
	Profile       string  `json:"profile"` // attack | clean
	Gbps          float64 `json:"gbps"`
	Matches       int     `json:"matches"`                   // per payload pass
	OracleMatches int     `json:"oracle_matches"`            // uncompressed-DFA count
	AllocsPerOp   float64 `json:"allocs_per_op"`             // steady-state allocations per pass
	Speedup       float64 `json:"speedup"`                   // vs the reference kernel, same size+profile
	DenseStates   int     `json:"dense_states,omitempty"`    // baked rows promoted to dense tier
	KernelBytes   int     `json:"kernel_bytes,omitempty"`    // flat program footprint
	PrefilterKB   int     `json:"prefilter_bytes,omitempty"` // lossy table footprint
	SuspectRate   float64 `json:"suspect_rate,omitempty"`    // suspect windows per skimmed byte
	PairStates    int     `json:"pair_states,omitempty"`     // accelerated 2-byte pair tables
	PairBytes     int     `json:"pair_bytes,omitempty"`      // pair-table footprint
}

// kernelBenchReport is the BENCH_7.json artifact. OK gates CI: every row
// must reproduce the oracle match count, the headline 634-string baked
// attack row must beat the reference kernel by the committed floor, and the
// prefiltered and accelerated kernels must each beat the baked kernel on
// clean traffic by their own committed floors — at identical oracle
// counts.
type kernelBenchReport struct {
	Bench        int              `json:"bench"` // trajectory sequence number
	Bytes        int              `json:"payload_bytes"`
	Seed         int64            `json:"seed"`
	Rows         []kernelBenchRow `json:"rows"`
	Speedup634   float64          `json:"speedup_634"`
	SpeedupFloor float64          `json:"speedup_floor"`
	// PrefilterCleanSpeedup is the prefiltered/baked throughput ratio on the
	// clean-profile headline rows; gated by PrefilterCleanFloor.
	PrefilterCleanSpeedup float64 `json:"prefilter_clean_speedup"`
	PrefilterCleanFloor   float64 `json:"prefilter_clean_floor"`
	// AccelCleanSpeedup is the accelerated/baked throughput ratio on the
	// clean-profile headline rows; gated by AccelCleanFloor.
	AccelCleanSpeedup float64 `json:"accel_clean_speedup"`
	AccelCleanFloor   float64 `json:"accel_clean_floor"`
	Interrupted       bool    `json:"interrupted"` // run stopped by SIGINT/SIGTERM; rows are partial
	OK                bool    `json:"ok"`
}

// speedupFloor is the committed improvement gate for the headline baked
// row; prefilterCleanFloor and accelCleanFloor gate the prefiltered and
// accelerated kernels against the baked kernel on clean traffic. All
// gates apply only at the headline 634-string size.
const (
	speedupFloor        = 1.5
	prefilterCleanFloor = 1.5
	accelCleanFloor     = 1.5
	headlineStrings     = 634
)

// kernelBackends is the sweep order: reference first so each (size,
// profile) group computes speedups against it.
var kernelBackends = []string{core.BackendReference, core.BackendBaked, core.BackendPrefiltered, core.BackendAccelerated}

// measureKernel times repeated full-payload ScanAppend passes over one
// machine and reports (Gbps, matches per pass, allocations per pass).
// The throughput is the best of four quarter-windows rather than one long
// window: on a shared runner a scheduling stall or frequency dip anywhere
// in a single window depresses the whole measurement, while the best
// sub-window tracks what the kernel actually sustains — and since every
// backend row is measured the same way, the speedup ratios the floors
// gate are computed between like quantities.
func measureKernel(m *core.Machine, payload []byte, minTime time.Duration) (float64, int, float64) {
	sc := m.NewScanner()
	var out []ac.Match
	pass := func() {
		sc.Reset()
		out = sc.ScanAppend(payload, out[:0])
	}
	pass() // warm the match buffer so steady state is measured

	const windows = 4
	window := minTime / windows
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	best := 0.0
	totalPasses := 0
	for w := 0; w < windows; w++ {
		start := time.Now()
		passes := 0
		for time.Since(start) < window {
			pass()
			passes++
		}
		elapsed := time.Since(start).Seconds()
		totalPasses += passes
		if gbps := float64(passes) * float64(len(payload)) * 8 / elapsed / 1e9; gbps > best {
			best = gbps
		}
	}
	runtime.ReadMemStats(&ms1)
	allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(totalPasses)
	return best, len(out), allocs
}

// kernelPayload builds one profile's payload and its oracle match count.
func kernelPayload(set *ruleset.Set, profile string, bytes int, seed int64) ([]byte, int, error) {
	tc := traffic.Config{Packets: 1, Bytes: bytes, Seed: seed}
	if profile == "attack" {
		tc.AttackDensity = 3
		tc.Profile = traffic.Textual
	} else {
		tc.AttackDensity = 0
		tc.Profile = traffic.Uniform
	}
	pkts, err := traffic.Generate(set, tc)
	if err != nil {
		return nil, 0, err
	}
	trie, err := ac.New(set)
	if err != nil {
		return nil, 0, err
	}
	payload := pkts[0].Payload
	return payload, len(trie.FindAll(payload)), nil
}

func runKernel(ctx context.Context, out io.Writer, jsonPath string, cfg kernelBenchConfig) error {
	t := &report.Table{
		Title: fmt.Sprintf("SCAN KERNEL THROUGHPUT (payload %d B, seed %d; reference vs baked vs prefiltered vs accelerated)",
			cfg.Bytes, cfg.Seed),
		Headers: []string{"Strings", "Profile", "Backend", "Gbps", "Speedup", "Matches", "Oracle", "Allocs/op", "KernelKB", "Suspect/B"},
	}
	rep := kernelBenchReport{
		Bench: 7, Bytes: cfg.Bytes, Seed: cfg.Seed,
		SpeedupFloor: speedupFloor, PrefilterCleanFloor: prefilterCleanFloor,
		AccelCleanFloor: accelCleanFloor,
		OK:              true,
	}

	// The clean profile runs once, at the headline 634-string size when the
	// sweep includes it (so the clean floor gates the same automaton as the
	// attack floor), else at the largest configured size — one clean row
	// group is enough to gate the skim-loop advantage without doubling the
	// sweep.
	cleanSize := 0
	for _, n := range cfg.Sizes {
		if n > cleanSize {
			cleanSize = n
		}
		if n == headlineStrings {
			cleanSize = n
			break
		}
	}

	sweep := func(n int, profile string) error {
		set, err := ruleset.Generate(ruleset.GenConfig{N: n, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		payload, oracle, err := kernelPayload(set, profile, cfg.Bytes, cfg.Seed)
		if err != nil {
			return err
		}
		var refGbps, bakedGbps float64
		for _, backend := range kernelBackends {
			// A signal abandons the sweep between rows; rows already
			// measured stand, and the report is marked interrupted below.
			if ctx.Err() != nil {
				return nil
			}
			m, err := core.Build(set, core.Options{Backend: backend})
			if err != nil {
				return fmt.Errorf("dpibench: %d-string machine, backend %s: %w", n, backend, err)
			}
			gbps, matches, allocs := measureKernel(m, payload, cfg.MinTime)
			row := kernelBenchRow{
				Strings: n, Backend: backend, Profile: profile, Gbps: gbps,
				Matches: matches, OracleMatches: oracle, AllocsPerOp: allocs,
				Speedup: 1,
			}
			if matches != oracle {
				rep.OK = false
			}
			switch backend {
			case core.BackendReference:
				refGbps = gbps
			case core.BackendBaked:
				bakedGbps = gbps
				row.Speedup = gbps / refGbps
				st := m.Program().Stats()
				row.DenseStates = st.DenseStates
				row.KernelBytes = st.TotalBytes
				if n == headlineStrings && profile == "attack" {
					rep.Speedup634 = row.Speedup
					if row.Speedup < speedupFloor {
						rep.OK = false
					}
				}
			case core.BackendPrefiltered:
				row.Speedup = gbps / refGbps
				pst := m.Prefilter().Stats()
				row.PrefilterKB = pst.TableBytes
				row.SuspectRate = pst.SuspectRate
				if n == headlineStrings && profile == "clean" {
					rep.PrefilterCleanSpeedup = gbps / bakedGbps
					if rep.PrefilterCleanSpeedup < prefilterCleanFloor {
						rep.OK = false
					}
				}
			case core.BackendAccelerated:
				row.Speedup = gbps / refGbps
				ast := m.Accel().Stats()
				row.PairStates = ast.PairStates
				row.PairBytes = ast.PairBytes
				st := m.Program().Stats()
				row.KernelBytes = st.TotalBytes + ast.TotalBytes
				if n == headlineStrings && profile == "clean" {
					rep.AccelCleanSpeedup = gbps / bakedGbps
					if rep.AccelCleanSpeedup < accelCleanFloor {
						rep.OK = false
					}
				}
			}
			rep.Rows = append(rep.Rows, row)
			kb := row.KernelBytes
			if backend == core.BackendPrefiltered {
				kb = row.PrefilterKB
			}
			t.AddRow(n, profile, backend, fmt.Sprintf("%.3f", gbps), fmt.Sprintf("%.2fx", row.Speedup),
				matches, oracle, fmt.Sprintf("%.1f", allocs),
				kb/1024, fmt.Sprintf("%.4f", row.SuspectRate))
		}
		return nil
	}

	for _, n := range cfg.Sizes {
		if ctx.Err() != nil {
			break
		}
		if err := sweep(n, "attack"); err != nil {
			return err
		}
	}
	if cleanSize > 0 && ctx.Err() == nil {
		if err := sweep(cleanSize, "clean"); err != nil {
			return err
		}
	}

	rep.Interrupted = ctx.Err() != nil
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFileAtomic(jsonPath, append(data, '\n')); err != nil {
			return err
		}
	}
	if err := t.Render(out); err != nil {
		return err
	}
	if rep.Interrupted {
		// Partial runs never reached every gate; report what ran, skip the
		// floor verdict.
		fmt.Fprintf(out, "interrupted: partial kernel report (%d rows measured)\n", len(rep.Rows))
		return nil
	}
	if !rep.OK {
		return fmt.Errorf("dpibench: kernel rows failed the oracle, the %.1fx baked floor (speedup634 %.2fx), the %.1fx prefiltered clean floor (%.2fx), or the %.1fx accelerated clean floor (%.2fx)",
			speedupFloor, rep.Speedup634, prefilterCleanFloor, rep.PrefilterCleanSpeedup, accelCleanFloor, rep.AccelCleanSpeedup)
	}
	return nil
}
