package main

// The -parallel mode measures the software engine layer: aggregate scan
// throughput of Engine.ScanPackets versus worker count, against the
// single-scanner FindAll baseline. This is the software analogue of the
// paper's engines-per-block scaling (6 engines per string matching block,
// multiple blocks per device) — throughput grows with lanes because every
// lane shares one read-only automaton.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	dpi "repro"
	"repro/internal/report"
	"repro/internal/traffic"
)

// parallelConfig sizes the -parallel sweep; tests shrink it.
type parallelConfig struct {
	Strings    int
	Packets    int
	Bytes      int
	Seed       int64
	MinTime    time.Duration // per-row measurement floor
	MaxWorkers int           // 0 = NumCPU
	Backend    string        // -backend: scan backend every lane runs ("" = auto)
}

func defaultParallelConfig(seed int64) parallelConfig {
	return parallelConfig{
		Strings: 634,
		Packets: 256,
		Bytes:   4096,
		Seed:    seed,
		MinTime: 300 * time.Millisecond,
	}
}

// workerSweep returns 1, 2, 4, ... capped at max, always ending on max.
func workerSweep(max int) []int {
	var ws []int
	for w := 1; w < max; w *= 2 {
		ws = append(ws, w)
	}
	return append(ws, max)
}

// measureGbps repeatedly runs scan (which scans batchBytes) until cfg.MinTime
// has elapsed and returns the aggregate throughput in Gbps.
func measureGbps(scan func(), batchBytes int64, minTime time.Duration) float64 {
	start := time.Now()
	var scanned int64
	for time.Since(start) < minTime {
		scan()
		scanned += batchBytes
	}
	return float64(scanned) * 8 / time.Since(start).Seconds() / 1e9
}

func runParallel(out io.Writer, cfg parallelConfig) error {
	rules, err := dpi.GenerateSnortLike(cfg.Strings, cfg.Seed)
	if err != nil {
		return err
	}
	m, err := dpi.Compile(rules, dpi.Config{Backend: cfg.Backend})
	if err != nil {
		return err
	}
	// The traffic generator plants attacks against exactly the patterns the
	// matcher holds.
	pkts, err := traffic.Generate(rules.InternalSet(), traffic.Config{
		Packets: cfg.Packets, Bytes: cfg.Bytes, Seed: cfg.Seed,
		AttackDensity: 1, Profile: traffic.Textual,
	})
	if err != nil {
		return err
	}
	payloads := make([][]byte, len(pkts))
	var batchBytes int64
	for i, p := range pkts {
		payloads[i] = p.Payload
		batchBytes += int64(len(p.Payload))
	}

	// Every row must produce the same match set; count once from the
	// baseline and verify each engine configuration against it.
	wantMatches := 0
	for _, p := range payloads {
		wantMatches += len(m.FindAll(p))
	}

	maxWorkers := cfg.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.NumCPU()
	}

	t := &report.Table{
		Title: fmt.Sprintf("ENGINE PARALLEL SCAN (%d strings, %d packets x %d B, %d matches/batch, backend %s)",
			cfg.Strings, cfg.Packets, cfg.Bytes, wantMatches, m.Backend()),
		Headers: []string{"Approach", "Workers", "Gbps", "Speedup"},
	}

	baseline := measureGbps(func() {
		for _, p := range payloads {
			m.FindAll(p)
		}
	}, batchBytes, cfg.MinTime)
	t.AddRow("Matcher.FindAll", 1, fmt.Sprintf("%.3f", baseline), "1.00x")

	for _, w := range workerSweep(maxWorkers) {
		e := m.NewEngine(w)
		if got := len(e.ScanPackets(payloads)); got != wantMatches {
			return fmt.Errorf("dpibench: engine with %d workers found %d matches, want %d", w, got, wantMatches)
		}
		gbps := measureGbps(func() { e.ScanPackets(payloads) }, batchBytes, cfg.MinTime)
		t.AddRow("Engine.ScanPackets", w, fmt.Sprintf("%.3f", gbps),
			fmt.Sprintf("%.2fx", gbps/baseline))
	}
	return t.Render(out)
}
