package main

// The -gateway mode measures the full NIDS front-end: framed mixed traffic
// (interleaved sequenced TCP flows plus UDP datagrams) pushed through the
// Gateway's pipelined ingestion — bounded queue, per-flow lanes over the
// 5-tuple flow table, TCP reassembly, burst batching — versus worker
// count, then versus engine-shard count (-shards N sweeps the sharded
// gateway, the software analogue of the paper's replicated matcher
// blocks), plus a row with out-of-order/retransmitted delivery (the
// reassembly regime) and a final row in the eviction-churn regime (flow
// table much smaller than the offered flow count). Every full-capacity row
// is verified against the per-flow FindAll oracle before it is timed; an
// oracle mismatch fails the run (exit 1), which is what CI gates on.
//
// Alongside the text table the run can emit a machine-readable JSON report
// (-json) carrying the same rows plus the oracle outcome per row, for
// regression tracking across CI runs.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	dpi "repro"
	"repro/internal/report"
	"repro/internal/traffic"
)

// gatewayBenchConfig sizes the -gateway sweep; tests shrink it.
type gatewayBenchConfig struct {
	Strings         int
	Flows           int
	SegmentsPerFlow int
	SegmentBytes    int
	Datagrams       int
	DatagramBytes   int
	ChurnMaxFlows   int // flow-table cap for the churn row
	ReorderWindow   int // segment displacement for the reordered row
	RetransDensity  float64
	Seed            int64
	MinTime         time.Duration
	MaxWorkers      int    // 0 = NumCPU
	MaxShards       int    // engine-shard sweep ceiling; <=1 skips the sharded rows
	Backend         string // -backend: scan backend every shard runs ("" = auto)
}

func defaultGatewayConfig(seed int64) gatewayBenchConfig {
	return gatewayBenchConfig{
		Strings:         634,
		Flows:           192,
		SegmentsPerFlow: 8,
		SegmentBytes:    1200,
		Datagrams:       256,
		DatagramBytes:   600,
		ChurnMaxFlows:   24,
		ReorderWindow:   4,
		RetransDensity:  0.5,
		Seed:            seed,
		MinTime:         300 * time.Millisecond,
	}
}

// gatewayBenchRow is one measured configuration in the JSON report.
type gatewayBenchRow struct {
	Mode       string  `json:"mode"`
	Workers    int     `json:"workers"`
	Shards     int     `json:"engine_shards"`
	MaxFlows   int     `json:"max_flows"`
	Gbps       float64 `json:"gbps"`
	Speedup    float64 `json:"speedup"`
	Matches    uint64  `json:"matches"`
	Evicted    uint64  `json:"flows_evicted"`
	OutOfOrder uint64  `json:"out_of_order_segs"`
	Duplicate  uint64  `json:"duplicate_bytes"`
	OracleWant int     `json:"oracle_want"` // 0 when the row is not oracle-gated
	OracleOK   bool    `json:"oracle_ok"`
}

// gatewayBenchReport is the machine-readable artifact CI uploads and gates
// on: OK is false iff any oracle-gated row mismatched. A copy produced
// with -shards is checked into the repo root as BENCH_5.json — the
// sharded-gateway entry of the perf trajectory.
type gatewayBenchReport struct {
	Bench           int               `json:"bench"` // trajectory sequence number
	Backend         string            `json:"backend"`
	Strings         int               `json:"strings"`
	Flows           int               `json:"flows"`
	SegmentsPerFlow int               `json:"segments_per_flow"`
	SegmentBytes    int               `json:"segment_bytes"`
	Datagrams       int               `json:"datagrams"`
	Seed            int64             `json:"seed"`
	Rows            []gatewayBenchRow `json:"rows"`
	Interrupted     bool              `json:"interrupted"` // run stopped by SIGINT/SIGTERM; rows are partial
	OK              bool              `json:"ok"`
}

// gatewayFeed is one prebuilt ingest sequence with its oracle match count.
type gatewayFeed struct {
	packets []dpi.GatewayPacket
	bytes   int64
	want    int // per-flow FindAll + per-datagram FindAll oracle
}

// buildGatewayFeed interleaves a datagram between stream segments so both
// pipeline paths stay busy, and computes the oracle match count.
func buildGatewayFeed(m *dpi.Matcher, w *traffic.FlowWorkload, dgrams []traffic.Packet) gatewayFeed {
	var f gatewayFeed
	f.packets = make([]dpi.GatewayPacket, 0, len(w.Packets)+len(dgrams))
	di := 0
	for _, p := range w.Packets {
		if di < len(dgrams) && len(f.packets)%4 == 3 {
			tup := dpi.FiveTuple{
				SrcIP: 0x0a800000 + uint32(di), DstIP: 0x0a000001,
				SrcPort: uint16(20000 + di%40000), DstPort: 53, Proto: dpi.ProtoUDP,
			}
			f.packets = append(f.packets, dpi.GatewayPacket{Tuple: tup, Payload: dgrams[di].Payload})
			f.bytes += int64(len(dgrams[di].Payload))
			di++
		}
		f.packets = append(f.packets, dpi.GatewayPacket{
			Tuple: p.Tuple, Seq: p.TCPSeq, Flags: dpi.TCPFlags(p.Flags), Payload: p.Payload,
		})
		f.bytes += int64(len(p.Payload))
	}
	for _, s := range w.Streams {
		f.want += len(m.FindAll(s))
	}
	for _, d := range dgrams[:di] {
		f.want += len(m.FindAll(d.Payload))
	}
	return f
}

func runGateway(ctx context.Context, out io.Writer, jsonPath string, cfg gatewayBenchConfig) error {
	rules, err := dpi.GenerateSnortLike(cfg.Strings, cfg.Seed)
	if err != nil {
		return err
	}
	m, err := dpi.Compile(rules, dpi.Config{Backend: cfg.Backend})
	if err != nil {
		return err
	}
	set := rules.InternalSet()
	flowCfg := traffic.FlowConfig{
		Flows: cfg.Flows, SegmentsPerFlow: cfg.SegmentsPerFlow, SegmentBytes: cfg.SegmentBytes,
		Seed: cfg.Seed, CrossDensity: 1, AttackDensity: 0.5, Profile: traffic.Textual,
		Sequenced: true,
	}
	inorder, err := traffic.GenerateFlows(set, flowCfg)
	if err != nil {
		return err
	}
	flowCfg.ReorderWindow = cfg.ReorderWindow
	flowCfg.RetransmitDensity = cfg.RetransDensity
	reordered, err := traffic.GenerateFlows(set, flowCfg)
	if err != nil {
		return err
	}
	dgrams, err := traffic.Generate(set, traffic.Config{
		Packets: cfg.Datagrams, Bytes: cfg.DatagramBytes, Seed: cfg.Seed + 1,
		AttackDensity: 0.5, Profile: traffic.Uniform,
	})
	if err != nil {
		return err
	}
	inFeed := buildGatewayFeed(m, inorder, dgrams)
	reFeed := buildGatewayFeed(m, reordered, dgrams)

	maxWorkers := cfg.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.NumCPU()
	}

	t := &report.Table{
		Title: fmt.Sprintf("GATEWAY INGESTION (%d strings, %d flows x %d x %d B + UDP, reorder window %d, %d/%d oracle matches)",
			cfg.Strings, cfg.Flows, cfg.SegmentsPerFlow, cfg.SegmentBytes, cfg.ReorderWindow, inFeed.want, reFeed.want),
		Headers: []string{"Mode", "Workers", "Shards", "MaxFlows", "Gbps", "Speedup", "Matches", "Evicted", "OOOSegs", "DupBytes"},
	}
	rep := gatewayBenchReport{
		Bench:   5,
		Backend: m.Backend(),
		Strings: cfg.Strings, Flows: cfg.Flows, SegmentsPerFlow: cfg.SegmentsPerFlow,
		SegmentBytes: cfg.SegmentBytes, Datagrams: cfg.Datagrams, Seed: cfg.Seed,
		OK: true,
	}
	writeJSON := func() error {
		if jsonPath == "" {
			return nil
		}
		rep.Interrupted = ctx.Err() != nil
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		return writeFileAtomic(jsonPath, append(data, '\n'))
	}

	run := func(feed gatewayFeed, workers, maxFlows, shards int) (dpi.GatewayStats, error) {
		e := m.NewEngine(workers)
		gw := e.Gateway(dpi.GatewayConfig{
			MaxFlows: maxFlows, StreamWorkers: workers, EngineShards: shards,
		}, func(dpi.FlowMatch) {})
		for _, pkt := range feed.packets {
			if err := gw.Ingest(pkt); err != nil {
				return dpi.GatewayStats{}, err
			}
		}
		if err := gw.Close(); err != nil {
			return dpi.GatewayStats{}, err
		}
		return gw.Stats(), nil
	}

	measure := func(feed gatewayFeed, workers, maxFlows, shards int) (float64, dpi.GatewayStats, error) {
		var last dpi.GatewayStats
		start := time.Now()
		var scanned int64
		for time.Since(start) < cfg.MinTime && ctx.Err() == nil {
			st, err := run(feed, workers, maxFlows, shards)
			if err != nil {
				return 0, st, err
			}
			last = st
			scanned += feed.bytes
		}
		return float64(scanned) * 8 / time.Since(start).Seconds() / 1e9, last, nil
	}

	ample := 2 * cfg.Flows
	baseline := 0.0
	// benchRow measures one oracle-gated configuration; a mismatch is
	// recorded in the JSON report and fails the run after the report is
	// written, so CI keeps the artifact explaining the failure. A canceled
	// context skips the row entirely — partial reports carry only rows that
	// were measured for their full window.
	benchRow := func(mode string, feed gatewayFeed, workers, maxFlows, shards int) error {
		if ctx.Err() != nil {
			return nil
		}
		st, err := run(feed, workers, maxFlows, shards)
		if err != nil {
			return err
		}
		ok := int(st.Matches) == feed.want
		if ok {
			gbps, tst, err := measure(feed, workers, maxFlows, shards)
			if err != nil {
				return err
			}
			if ctx.Err() != nil {
				return nil
			}
			st = tst
			if baseline == 0 {
				baseline = gbps
			}
			t.AddRow(mode, workers, shards, maxFlows, fmt.Sprintf("%.3f", gbps),
				fmt.Sprintf("%.2fx", gbps/baseline), st.Matches, st.FlowsEvicted,
				st.OutOfOrderSegs, st.DuplicateBytes)
			rep.Rows = append(rep.Rows, gatewayBenchRow{
				Mode: mode, Workers: workers, Shards: shards, MaxFlows: maxFlows,
				Gbps: gbps, Speedup: gbps / baseline,
				Matches: st.Matches, Evicted: st.FlowsEvicted,
				OutOfOrder: st.OutOfOrderSegs, Duplicate: st.DuplicateBytes,
				OracleWant: feed.want, OracleOK: true,
			})
			return nil
		}
		rep.Rows = append(rep.Rows, gatewayBenchRow{
			Mode: mode, Workers: workers, Shards: shards, MaxFlows: maxFlows,
			Matches: st.Matches, Evicted: st.FlowsEvicted,
			OutOfOrder: st.OutOfOrderSegs, Duplicate: st.DuplicateBytes,
			OracleWant: feed.want, OracleOK: false,
		})
		rep.OK = false
		if err := writeJSON(); err != nil {
			return err
		}
		return fmt.Errorf("dpibench: gateway %s with %d workers, %d shards found %d matches, oracle %d",
			mode, workers, shards, st.Matches, feed.want)
	}

	for _, workers := range workerSweep(maxWorkers) {
		if err := benchRow("full-table", inFeed, workers, ample, 1); err != nil {
			return err
		}
	}
	// Sharded regime: the same in-order feed fanned across engine
	// replicas, each with the full worker count — the paper's replicated
	// block arrays. The oracle is unchanged: sharding must be invisible in
	// the results (per-flow order is preserved inside a shard).
	if cfg.MaxShards > 1 {
		for _, shards := range workerSweep(cfg.MaxShards) {
			if shards == 1 {
				continue // already measured as the full-table rows
			}
			if err := benchRow("sharded", inFeed, maxWorkers, ample, shards); err != nil {
				return err
			}
		}
	}
	// Reassembly regime: the same connections delivered out of order with
	// retransmissions; the oracle is unchanged because reassembly restores
	// the streams exactly.
	if err := benchRow("reordered", reFeed, maxWorkers, ample, 1); err != nil {
		return err
	}
	// Churn regime: the table is far smaller than the offered flow count,
	// so eviction runs constantly and detections may be traded for memory;
	// no oracle gate applies.
	if ctx.Err() == nil {
		gbps, st, err := measure(reFeed, maxWorkers, cfg.ChurnMaxFlows, 1)
		if err != nil {
			return err
		}
		if ctx.Err() == nil {
			if st.FlowsEvicted == 0 {
				return fmt.Errorf("dpibench: churn row evicted no flows (cap %d, %d flows)", cfg.ChurnMaxFlows, cfg.Flows)
			}
			t.AddRow("churn", maxWorkers, 1, cfg.ChurnMaxFlows, fmt.Sprintf("%.3f", gbps),
				fmt.Sprintf("%.2fx", gbps/baseline), st.Matches, st.FlowsEvicted,
				st.OutOfOrderSegs, st.DuplicateBytes)
			rep.Rows = append(rep.Rows, gatewayBenchRow{
				Mode: "churn", Workers: maxWorkers, Shards: 1, MaxFlows: cfg.ChurnMaxFlows,
				Gbps: gbps, Speedup: gbps / baseline,
				Matches: st.Matches, Evicted: st.FlowsEvicted,
				OutOfOrder: st.OutOfOrderSegs, Duplicate: st.DuplicateBytes,
				OracleOK: true, // not oracle-gated
			})
		}
	}
	if err := writeJSON(); err != nil {
		return err
	}
	if ctx.Err() != nil {
		fmt.Fprintf(out, "interrupted: partial gateway report (%d rows measured)\n", len(rep.Rows))
	}
	return t.Render(out)
}
