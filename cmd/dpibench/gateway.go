package main

// The -gateway mode measures the full NIDS front-end: framed mixed traffic
// (interleaved TCP flows plus UDP datagrams) pushed through the Gateway's
// pipelined ingestion — bounded queue, per-flow lanes over the 5-tuple flow
// table, burst batching — versus worker count, with a final row in the
// eviction-churn regime (flow table much smaller than the offered flow
// count). Every full-capacity row is verified against the per-flow FindAll
// oracle before it is timed.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	dpi "repro"
	"repro/internal/report"
	"repro/internal/traffic"
)

// gatewayBenchConfig sizes the -gateway sweep; tests shrink it.
type gatewayBenchConfig struct {
	Strings         int
	Flows           int
	SegmentsPerFlow int
	SegmentBytes    int
	Datagrams       int
	DatagramBytes   int
	ChurnMaxFlows   int // flow-table cap for the churn row
	Seed            int64
	MinTime         time.Duration
	MaxWorkers      int // 0 = NumCPU
}

func defaultGatewayConfig(seed int64) gatewayBenchConfig {
	return gatewayBenchConfig{
		Strings:         634,
		Flows:           192,
		SegmentsPerFlow: 8,
		SegmentBytes:    1200,
		Datagrams:       256,
		DatagramBytes:   600,
		ChurnMaxFlows:   24,
		Seed:            seed,
		MinTime:         300 * time.Millisecond,
	}
}

func runGateway(out io.Writer, cfg gatewayBenchConfig) error {
	rules, err := dpi.GenerateSnortLike(cfg.Strings, cfg.Seed)
	if err != nil {
		return err
	}
	m, err := dpi.Compile(rules, dpi.Config{})
	if err != nil {
		return err
	}
	set := rules.InternalSet()
	w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
		Flows: cfg.Flows, SegmentsPerFlow: cfg.SegmentsPerFlow, SegmentBytes: cfg.SegmentBytes,
		Seed: cfg.Seed, CrossDensity: 1, AttackDensity: 0.5, Profile: traffic.Textual,
	})
	if err != nil {
		return err
	}
	dgrams, err := traffic.Generate(set, traffic.Config{
		Packets: cfg.Datagrams, Bytes: cfg.DatagramBytes, Seed: cfg.Seed + 1,
		AttackDensity: 0.5, Profile: traffic.Uniform,
	})
	if err != nil {
		return err
	}

	// Pre-build the mixed feed: a datagram between stream segments, so both
	// pipeline paths stay busy.
	feed := make([]dpi.GatewayPacket, 0, len(w.Packets)+len(dgrams))
	var feedBytes int64
	di := 0
	for _, p := range w.Packets {
		if di < len(dgrams) && len(feed)%4 == 3 {
			tup := dpi.FiveTuple{
				SrcIP: 0x0a800000 + uint32(di), DstIP: 0x0a000001,
				SrcPort: uint16(20000 + di%40000), DstPort: 53, Proto: dpi.ProtoUDP,
			}
			feed = append(feed, dpi.GatewayPacket{Tuple: tup, Payload: dgrams[di].Payload})
			feedBytes += int64(len(dgrams[di].Payload))
			di++
		}
		feed = append(feed, dpi.GatewayPacket{Tuple: p.Tuple, Payload: p.Payload})
		feedBytes += int64(len(p.Payload))
	}

	// Oracle match count at full flow-table capacity: per-flow FindAll over
	// reassembled streams plus per-datagram FindAll.
	want := 0
	for _, s := range w.Streams {
		want += len(m.FindAll(s))
	}
	for _, d := range dgrams[:di] {
		want += len(m.FindAll(d.Payload))
	}

	maxWorkers := cfg.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.NumCPU()
	}

	t := &report.Table{
		Title: fmt.Sprintf("GATEWAY INGESTION (%d strings, %d flows x %d x %d B + %d UDP x %d B, %d oracle matches)",
			cfg.Strings, cfg.Flows, cfg.SegmentsPerFlow, cfg.SegmentBytes, di, cfg.DatagramBytes, want),
		Headers: []string{"Mode", "Workers", "MaxFlows", "Gbps", "Speedup", "Matches", "Evicted"},
	}

	run := func(workers, maxFlows int) (dpi.GatewayStats, error) {
		e := m.NewEngine(workers)
		gw := e.Gateway(dpi.GatewayConfig{
			MaxFlows: maxFlows, StreamWorkers: workers,
		}, func(dpi.FlowMatch) {})
		for _, pkt := range feed {
			if err := gw.Ingest(pkt); err != nil {
				return dpi.GatewayStats{}, err
			}
		}
		if err := gw.Close(); err != nil {
			return dpi.GatewayStats{}, err
		}
		return gw.Stats(), nil
	}

	measure := func(workers, maxFlows int) (float64, dpi.GatewayStats, error) {
		var last dpi.GatewayStats
		start := time.Now()
		var scanned int64
		for time.Since(start) < cfg.MinTime {
			st, err := run(workers, maxFlows)
			if err != nil {
				return 0, st, err
			}
			last = st
			scanned += feedBytes
		}
		return float64(scanned) * 8 / time.Since(start).Seconds() / 1e9, last, nil
	}

	ample := 2 * cfg.Flows
	baseline := 0.0
	for _, workers := range workerSweep(maxWorkers) {
		// Correctness gate before timing: at full capacity the gateway must
		// reproduce the oracle exactly.
		st, err := run(workers, ample)
		if err != nil {
			return err
		}
		if int(st.Matches) != want {
			return fmt.Errorf("dpibench: gateway with %d workers found %d matches, oracle %d", workers, st.Matches, want)
		}
		gbps, st, err := measure(workers, ample)
		if err != nil {
			return err
		}
		if baseline == 0 {
			baseline = gbps
		}
		t.AddRow("full-table", workers, ample, fmt.Sprintf("%.3f", gbps),
			fmt.Sprintf("%.2fx", gbps/baseline), st.Matches, st.FlowsEvicted)
	}
	// Churn regime: the table is far smaller than the offered flow count,
	// so eviction runs constantly and detections may be traded for memory.
	gbps, st, err := measure(maxWorkers, cfg.ChurnMaxFlows)
	if err != nil {
		return err
	}
	if st.FlowsEvicted == 0 {
		return fmt.Errorf("dpibench: churn row evicted no flows (cap %d, %d flows)", cfg.ChurnMaxFlows, cfg.Flows)
	}
	t.AddRow("churn", maxWorkers, cfg.ChurnMaxFlows, fmt.Sprintf("%.3f", gbps),
		fmt.Sprintf("%.2fx", gbps/baseline), st.Matches, st.FlowsEvicted)
	return t.Render(out)
}
