package main

// The -chaos mode: the CLI face of the deterministic fault-injection
// harness (internal/chaos), runnable anywhere the repo builds and gated
// by CI's chaos-soak job. Five seeded scenarios run per shard count:
//
//   - block-storm: a duplicate/reorder storm under the default Block
//     policy must be invisible — per-flow matches byte-identical to the
//     in-order FindAll oracle.
//   - overflow: a storm far past the reassembly caps; the full-stream
//     oracle no longer applies, but the conservation ledger must balance
//     (Ingested == Scanned + Shed + Skipped + Buffered).
//   - shed-packets: a chaos stall wedges the pipeline under ShedPackets;
//     matches over the bytes actually delivered must equal the FindAll
//     oracle over each contiguous run of admitted segments.
//   - panic-quarantine: an injected scan-path panic must quarantine
//     exactly the victim flow, leave every other flow's matches intact,
//     and keep the gateway live.
//   - swap-storm: two hot ruleset reloads land mid-storm; every flow must
//     match its birth generation's oracle, old generations must retire
//     once their flows drain, and the ledger must balance.
//
// The JSON report carries one entry per (scenario, shards) with its
// ledger, so CI can gate the conservation law with jq; the top-level "ok"
// is the AND of every scenario verdict.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	dpi "repro"
	"repro/internal/chaos"
	"repro/internal/report"
	"repro/internal/ruleset"
	"repro/internal/traffic"
)

// chaosBenchConfig sizes the -chaos soak; tests shrink it.
type chaosBenchConfig struct {
	Strings   int
	Seed      int64
	MaxShards int    // shard sweep ceiling (1, 2, 4, ... up to this)
	Backend   string // scan backend ("" = auto)
}

func defaultChaosConfig(seed int64) chaosBenchConfig {
	return chaosBenchConfig{Strings: 250, Seed: seed, MaxShards: 1}
}

// chaosScenarioResult is one (scenario, shards) verdict in the report.
// OK is the scenario's own pass/fail; Detail explains a failure.
type chaosScenarioResult struct {
	Scenario    string            `json:"scenario"`
	Shards      int               `json:"shards"`
	OK          bool              `json:"ok"`
	Balanced    bool              `json:"balanced"`
	OracleOK    bool              `json:"oracle_ok"`
	Matches     int               `json:"matches"`
	ShedPackets uint64            `json:"shed_packets,omitempty"`
	Panics      uint64            `json:"panics,omitempty"`
	Quarantined uint64            `json:"quarantined_flows,omitempty"`
	Swaps       uint64            `json:"swaps,omitempty"`
	GensMade    uint64            `json:"generations_installed,omitempty"`
	GensRetired uint64            `json:"generations_retired,omitempty"`
	Ledger      dpi.GatewayLedger `json:"ledger"`
	Detail      string            `json:"detail,omitempty"`
}

type chaosReport struct {
	Backend     string                `json:"backend"`
	Strings     int                   `json:"strings"`
	Seed        int64                 `json:"seed"`
	Scenarios   []chaosScenarioResult `json:"scenarios"`
	Interrupted bool                  `json:"interrupted"` // run stopped by SIGINT/SIGTERM; scenarios are partial
	OK          bool                  `json:"ok"`
}

// chaosCollector gathers matches by tuple; emit runs on pipeline
// goroutines, so it locks.
type chaosCollector struct {
	mu      sync.Mutex
	byTuple map[dpi.FiveTuple][]dpi.Match
}

func newChaosCollector() *chaosCollector {
	return &chaosCollector{byTuple: map[dpi.FiveTuple][]dpi.Match{}}
}

func (c *chaosCollector) emit(fm dpi.FlowMatch) {
	c.mu.Lock()
	c.byTuple[fm.Tuple] = append(c.byTuple[fm.Tuple], fm.Match)
	c.mu.Unlock()
}

func (c *chaosCollector) matches(t dpi.FiveTuple) []dpi.Match {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byTuple[t]
}

// sameChaosMatches compares match sequences ignoring PacketID (the oracle
// scans whole streams; the gateway attributes segments).
func sameChaosMatches(got, want []dpi.Match) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].PatternID != want[i].PatternID || got[i].Start != want[i].Start || got[i].End != want[i].End {
			return false
		}
	}
	return true
}

// chaosHarness carries the compiled matcher and ruleset every scenario
// shares; scenarios derive their own workloads and injector seeds from
// the base seed so the whole soak replays from one -seed value.
type chaosHarness struct {
	m    *dpi.Matcher
	set  *ruleset.Set
	seed int64
}

// finish drains and closes the gateway and fills the ledger fields; a
// scenario calls it once its assertions are recorded in r.
func (h *chaosHarness) finish(r *chaosScenarioResult, gw *dpi.Gateway) error {
	gw.Flush()
	st := gw.Stats()
	if err := gw.Close(); err != nil {
		return err
	}
	r.Ledger = st.Ledger()
	r.Balanced = r.Ledger.Balanced()
	return nil
}

// fail marks the scenario failed with an explanation; the first failure's
// detail wins so the report points at the earliest broken assertion.
func (r *chaosScenarioResult) fail(format string, args ...any) {
	r.OK = false
	if r.Detail == "" {
		r.Detail = fmt.Sprintf(format, args...)
	}
}

func (h *chaosHarness) blockStorm(shards int) (chaosScenarioResult, error) {
	r := chaosScenarioResult{Scenario: "block-storm", Shards: shards, OK: true, OracleOK: true}
	w, err := traffic.GenerateFlows(h.set, traffic.FlowConfig{
		Flows: 16, SegmentsPerFlow: 6, SegmentBytes: 140, Seed: h.seed + 211,
		CrossDensity: 1.5, AttackDensity: 1, Profile: traffic.Textual,
		Sequenced: true,
	})
	if err != nil {
		return r, err
	}
	storm := chaos.New(h.seed+31).Storm(w.Packets, chaos.StormConfig{DupFactor: 1, ReorderSpan: 24})
	if len(storm) <= len(w.Packets) {
		r.fail("storm added no duplicates; scenario is vacuous")
	}
	c := newChaosCollector()
	gw := h.m.NewEngine(4).Gateway(dpi.GatewayConfig{
		EngineShards: shards, StreamWorkers: 3,
	}, c.emit)
	for _, p := range storm {
		if err := gw.Ingest(dpi.GatewayPacket{
			Tuple: p.Tuple, Seq: p.TCPSeq, Flags: dpi.TCPFlags(p.Flags), Payload: p.Payload,
		}); err != nil {
			gw.Close()
			return r, err
		}
	}
	if err := h.finish(&r, gw); err != nil {
		return r, err
	}
	for f, tuple := range w.Tuples {
		want := h.m.FindAll(w.Streams[f])
		got := c.matches(tuple)
		if !sameChaosMatches(got, want) {
			r.OracleOK = false
			r.fail("flow %d: storm changed results (got %d matches, oracle %d)", f, len(got), len(want))
		}
		r.Matches += len(got)
	}
	if r.Matches == 0 {
		r.fail("no matches at all; scenario is vacuous")
	}
	if !r.Balanced {
		r.fail("conservation law violated: %+v", r.Ledger)
	}
	return r, nil
}

func (h *chaosHarness) overflow(shards int) (chaosScenarioResult, error) {
	// Not oracle-gated: beyond the caps the gateway legitimately drops and
	// skips; what must hold is the ledger.
	r := chaosScenarioResult{Scenario: "overflow", Shards: shards, OK: true, OracleOK: true}
	w, err := traffic.GenerateFlows(h.set, traffic.FlowConfig{
		Flows: 12, SegmentsPerFlow: 16, SegmentBytes: 300, Seed: h.seed + 97,
		CrossDensity: 1, AttackDensity: 1, Profile: traffic.Textual,
		Sequenced: true,
	})
	if err != nil {
		return r, err
	}
	storm := chaos.New(h.seed+5).Storm(w.Packets, chaos.StormConfig{DupFactor: 2, ReorderSpan: 400})
	c := newChaosCollector()
	gw := h.m.NewEngine(2).Gateway(dpi.GatewayConfig{
		EngineShards: shards, StreamWorkers: 2,
		MaxFlowBuffer: 1024, MaxTotalBuffer: 4096, GapTimeout: 4,
	}, c.emit)
	for _, p := range storm {
		if err := gw.Ingest(dpi.GatewayPacket{
			Tuple: p.Tuple, Seq: p.TCPSeq, Flags: dpi.TCPFlags(p.Flags), Payload: p.Payload,
		}); err != nil {
			gw.Close()
			return r, err
		}
	}
	gw.Flush()
	st := gw.Stats()
	if l := st.Ledger(); !l.Balanced() {
		r.fail("conservation law violated at the Flush checkpoint: %+v", l)
	}
	if st.ReassemblyDrops == 0 && st.GapSkips == 0 {
		r.fail("storm never hit the caps; scenario is vacuous")
	}
	if err := h.finish(&r, gw); err != nil {
		return r, err
	}
	if !r.Balanced {
		r.fail("conservation law violated after Close: %+v", r.Ledger)
	}
	for _, tuple := range w.Tuples {
		r.Matches += len(c.matches(tuple))
	}
	return r, nil
}

func (h *chaosHarness) shedPackets(shards int) (chaosScenarioResult, error) {
	r := chaosScenarioResult{Scenario: "shed-packets", Shards: shards, OK: true, OracleOK: true}
	w, err := traffic.GenerateFlows(h.set, traffic.FlowConfig{
		Flows: 12, SegmentsPerFlow: 40, SegmentBytes: 120, Seed: h.seed + 313,
		CrossDensity: 1, AttackDensity: 1.5, Profile: traffic.Textual,
	})
	if err != nil {
		return r, err
	}
	release := make(chan struct{})
	c := newChaosCollector()
	emit := chaos.StallOnce(c.emit, func(dpi.FlowMatch) bool { return true }, release)
	gw := h.m.NewEngine(2).Gateway(dpi.GatewayConfig{
		EngineShards: shards, StreamWorkers: 1, QueueDepth: 4,
		OverloadPolicy: dpi.ShedPackets, IngestDeadline: -1,
	}, emit)

	// Replay the in-order feed, recording admission per packet. A flow's
	// expected matches are FindAll over each contiguous run of admitted
	// bytes, shifted to the run's absolute stream offset — SkipGap
	// guarantees no gateway match spans a shed packet.
	type acc struct {
		pos      int
		runStart int
		run      []byte
	}
	accs := map[dpi.FiveTuple]*acc{}
	want := map[dpi.FiveTuple][]dpi.Match{}
	closeRun := func(tuple dpi.FiveTuple, a *acc) {
		if len(a.run) == 0 {
			return
		}
		for _, mt := range h.m.FindAll(a.run) {
			mt.Start += a.runStart
			mt.End += a.runStart
			want[tuple] = append(want[tuple], mt)
		}
		a.run = nil
	}
	var shed uint64
	for _, p := range w.Packets {
		admitted, err := gw.TryIngest(dpi.GatewayPacket{Tuple: p.Tuple, Payload: p.Payload})
		if err != nil {
			close(release)
			gw.Close()
			return r, err
		}
		a := accs[p.Tuple]
		if a == nil {
			a = &acc{}
			accs[p.Tuple] = a
		}
		if admitted {
			if a.run == nil {
				a.runStart = a.pos
			}
			a.run = append(a.run, p.Payload...)
		} else {
			shed++
			closeRun(p.Tuple, a)
		}
		a.pos += len(p.Payload)
	}
	close(release)
	if err := h.finish(&r, gw); err != nil {
		return r, err
	}
	r.ShedPackets = shed
	if shed == 0 {
		r.fail("nothing was shed; scenario is vacuous")
	}
	if r.Ledger.Shed == 0 {
		r.fail("shed packets never reached the ledger: %+v", r.Ledger)
	}
	if !r.Balanced {
		r.fail("conservation law violated: %+v", r.Ledger)
	}
	for f, tuple := range w.Tuples {
		closeRun(tuple, accs[tuple])
		got := c.matches(tuple)
		if !sameChaosMatches(got, want[tuple]) {
			r.OracleOK = false
			r.fail("flow %d: delivered-subset oracle diverged (got %d matches, want %d)",
				f, len(got), len(want[tuple]))
		}
		r.Matches += len(got)
	}
	return r, nil
}

func (h *chaosHarness) panicQuarantine(shards int) (chaosScenarioResult, error) {
	r := chaosScenarioResult{Scenario: "panic-quarantine", Shards: shards, OK: true, OracleOK: true}
	w, err := traffic.GenerateFlows(h.set, traffic.FlowConfig{
		Flows: 20, SegmentsPerFlow: 6, SegmentBytes: 140, Seed: h.seed + 503,
		CrossDensity: 1, AttackDensity: 1, Profile: traffic.Textual,
		Sequenced: true,
	})
	if err != nil {
		return r, err
	}
	victim := -1
	for f := range w.Tuples {
		if len(h.m.FindAll(w.Streams[f])) > 0 {
			victim = f
			break
		}
	}
	if victim < 0 {
		r.fail("no flow matches; scenario is vacuous")
		return r, nil
	}
	c := newChaosCollector()
	emit := chaos.PanicOnce(c.emit, func(fm dpi.FlowMatch) bool { return fm.Tuple == w.Tuples[victim] })
	gw := h.m.NewEngine(2).Gateway(dpi.GatewayConfig{
		EngineShards: shards, StreamWorkers: 2,
	}, emit)
	for _, p := range w.Packets {
		if err := gw.Ingest(dpi.GatewayPacket{
			Tuple: p.Tuple, Seq: p.TCPSeq, Flags: dpi.TCPFlags(p.Flags), Payload: p.Payload,
		}); err != nil {
			gw.Close()
			return r, err
		}
	}
	gw.Flush()
	st := gw.Stats()
	r.Panics = st.Panics
	r.Quarantined = st.QuarantinedFlows
	if st.Panics != 1 {
		r.fail("Panics = %d, want exactly the 1 injected", st.Panics)
	}
	if st.QuarantinedFlows != 1 {
		r.fail("QuarantinedFlows = %d, want exactly the victim", st.QuarantinedFlows)
	}
	// Containment working is the healthy outcome: a quarantined flow must
	// not trip the liveness probe.
	if hs := gw.Health(); !hs.Healthy {
		r.fail("gateway unhealthy after containment: %+v", hs)
	}
	if err := h.finish(&r, gw); err != nil {
		return r, err
	}
	if !r.Balanced {
		r.fail("conservation law violated: %+v", r.Ledger)
	}
	for f, tuple := range w.Tuples {
		if f == victim {
			continue
		}
		want := h.m.FindAll(w.Streams[f])
		got := c.matches(tuple)
		if !sameChaosMatches(got, want) {
			r.OracleOK = false
			r.fail("flow %d: collateral damage from quarantine of flow %d", f, victim)
		}
		r.Matches += len(got)
	}
	if r.Matches == 0 {
		r.fail("no surviving matches; scenario is vacuous")
	}
	return r, nil
}

// swapStorm lands two hot reloads (Gateway.SwapRules) in the middle of a
// duplicate/reorder storm. Three ruleset generations each get their own
// wave of flows; a wave's flows all open (their SYNs land) before the
// next swap, then every wave's tail keeps streaming under later
// generations. Gates: each flow's matches must equal FindAll of its full
// stream against its birth generation's matcher (pinning, with the storm
// still invisible), every generation but the current one must retire once
// its FINs drain (refcount retirement, no sweeper), and the conservation
// ledger must balance.
func (h *chaosHarness) swapStorm(shards int) (chaosScenarioResult, error) {
	r := chaosScenarioResult{Scenario: "swap-storm", Shards: shards, OK: true, OracleOK: true}
	const waves = 3
	type wave struct {
		m       *dpi.Matcher
		tuples  []dpi.FiveTuple
		streams [][]byte
		storm   []traffic.FlowPacket
		opening int // storm prefix containing every flow's first packet
	}
	ws := make([]*wave, waves)
	for wv := range ws {
		m, set := h.m, h.set
		if wv > 0 {
			rules, err := dpi.GenerateSnortLike(150+40*wv, h.seed+int64(1000*wv))
			if err != nil {
				return r, err
			}
			m, err = dpi.Compile(rules, dpi.Config{Backend: h.m.Backend()})
			if err != nil {
				return r, err
			}
			set = rules.InternalSet()
		}
		w, err := traffic.GenerateFlows(set, traffic.FlowConfig{
			Flows: 10, SegmentsPerFlow: 6, SegmentBytes: 130, Seed: h.seed + int64(77*wv) + 401,
			CrossDensity: 1.5, AttackDensity: 1, Profile: traffic.Textual,
			Sequenced: true,
		})
		if err != nil {
			return r, err
		}
		storm := chaos.New(h.seed+int64(7*wv)+13).Storm(w.Packets,
			chaos.StormConfig{DupFactor: 1, ReorderSpan: 12})
		// Remap tuples into a per-wave address block: waves are drawn from
		// independent workload seeds and must never collide in the table.
		remap := map[dpi.FiveTuple]dpi.FiveTuple{}
		tuples := make([]dpi.FiveTuple, len(w.Tuples))
		for f, tup := range w.Tuples {
			nt := tup
			nt.SrcIP = 0x0a000000 | uint32(wv)<<16 | uint32(f)
			remap[tup] = nt
			tuples[f] = nt
		}
		for i := range storm {
			storm[i].Tuple = remap[storm[i].Tuple]
		}
		// A flow pins its generation at first sight. The opening slice must
		// therefore cover every flow's first storm packet (the SYN — storms
		// keep position 0 fixed), so the whole wave is born pre-swap.
		seen := map[int]bool{}
		opening := 0
		for i, p := range storm {
			if !seen[p.FlowID] {
				seen[p.FlowID] = true
				opening = i + 1
			}
		}
		if min := 3 * len(storm) / 5; opening < min {
			opening = min
		}
		ws[wv] = &wave{m: m, tuples: tuples, streams: w.Streams, storm: storm, opening: opening}
	}

	c := newChaosCollector()
	gw := ws[0].m.NewEngine(2).Gateway(dpi.GatewayConfig{
		EngineShards: shards, StreamWorkers: 2,
	}, c.emit)
	ingest := func(pkts []traffic.FlowPacket) error {
		for _, p := range pkts {
			if err := gw.Ingest(dpi.GatewayPacket{
				Tuple: p.Tuple, Seq: p.TCPSeq, Flags: dpi.TCPFlags(p.Flags), Payload: p.Payload,
			}); err != nil {
				gw.Close()
				return err
			}
		}
		return nil
	}
	for wv, w := range ws {
		if wv > 0 {
			if err := gw.SwapRules(w.m); err != nil {
				gw.Close()
				return r, fmt.Errorf("swap to generation %d: %w", w.m.Generation(), err)
			}
			r.Swaps++
		}
		if err := ingest(w.storm[:w.opening]); err != nil {
			return r, err
		}
	}
	// Tails: every earlier wave keeps streaming (and FINishing) under the
	// final generation.
	for _, w := range ws {
		if err := ingest(w.storm[w.opening:]); err != nil {
			return r, err
		}
	}
	gw.Flush()
	st := gw.Stats()
	r.GensMade, r.GensRetired = st.GenerationsInstalled, st.GenerationsRetired
	if st.GenerationsInstalled != waves {
		r.fail("%d generations installed, want %d", st.GenerationsInstalled, waves)
	}
	// Every wave's flows FIN inside its own storm, so after the drain only
	// the current generation may survive — retirement is refcount-driven,
	// no sweeper to wait for.
	if st.GenerationsRetired != st.GenerationsInstalled-1 {
		r.fail("retirement stuck: %d of %d generations retired after the FIN drain",
			st.GenerationsRetired, st.GenerationsInstalled)
	}
	for wv, w := range ws {
		for f, tuple := range w.tuples {
			want := w.m.FindAll(w.streams[f])
			got := c.matches(tuple)
			if !sameChaosMatches(got, want) {
				r.OracleOK = false
				r.fail("wave %d flow %d: matches diverge from the birth-generation oracle (got %d, want %d)",
					wv, f, len(got), len(want))
			}
			r.Matches += len(got)
		}
	}
	if r.Matches == 0 {
		r.fail("no matches at all; scenario is vacuous")
	}
	if err := h.finish(&r, gw); err != nil {
		return r, err
	}
	if !r.Balanced {
		r.fail("conservation law violated: %+v", r.Ledger)
	}
	return r, nil
}

func runChaos(ctx context.Context, out io.Writer, jsonPath string, cfg chaosBenchConfig) error {
	rules, err := dpi.GenerateSnortLike(cfg.Strings, cfg.Seed)
	if err != nil {
		return err
	}
	m, err := dpi.Compile(rules, dpi.Config{Groups: 2, Backend: cfg.Backend})
	if err != nil {
		return err
	}
	h := &chaosHarness{m: m, set: rules.InternalSet(), seed: cfg.Seed}
	rep := chaosReport{Backend: m.Backend(), Strings: cfg.Strings, Seed: cfg.Seed, OK: true}

	scenarios := []struct {
		name string
		run  func(int) (chaosScenarioResult, error)
	}{
		{"block-storm", h.blockStorm},
		{"overflow", h.overflow},
		{"shed-packets", h.shedPackets},
		{"panic-quarantine", h.panicQuarantine},
		{"swap-storm", h.swapStorm},
	}
	shardSweep := []int{1}
	for s := 2; s <= cfg.MaxShards; s *= 2 {
		shardSweep = append(shardSweep, s)
	}
	for _, shards := range shardSweep {
		for _, sc := range scenarios {
			if ctx.Err() != nil {
				rep.Interrupted = true
				break
			}
			r, err := sc.run(shards)
			if err != nil {
				return fmt.Errorf("dpibench: chaos %s (shards %d): %w", sc.name, shards, err)
			}
			if !r.OK {
				rep.OK = false
			}
			rep.Scenarios = append(rep.Scenarios, r)
		}
		if rep.Interrupted {
			break
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFileAtomic(jsonPath, append(data, '\n')); err != nil {
			return err
		}
	}
	t := &report.Table{
		Title: fmt.Sprintf("CHAOS SOAK (backend %s, %d strings, seed %d; deterministic fault injection)",
			rep.Backend, cfg.Strings, cfg.Seed),
		Headers: []string{"Scenario", "Shards", "OK", "Balanced", "Oracle", "Matches", "Shed", "Panics", "Swaps", "Detail"},
	}
	for _, r := range rep.Scenarios {
		t.AddRow(r.Scenario, r.Shards, r.OK, r.Balanced, r.OracleOK, r.Matches,
			r.ShedPackets, r.Panics, r.Swaps, r.Detail)
	}
	if err := t.Render(out); err != nil {
		return err
	}
	if rep.Interrupted {
		fmt.Fprintf(out, "interrupted: partial chaos report (%d scenarios run)\n", len(rep.Scenarios))
		return nil
	}
	if !rep.OK {
		return fmt.Errorf("dpibench: chaos soak failed; see the scenario table (or the -json report) for the broken assertion")
	}
	return nil
}
