// Command dpibench regenerates every table and figure of the paper's
// evaluation section (§V) from the synthetic Snort-like workload.
//
// Usage:
//
//	dpibench -all                 # everything
//	dpibench -table 2             # one table (1, 2 or 3)
//	dpibench -figure 7            # one figure (2, 6, 7 or 8)
//	dpibench -figure 7 -tsv       # emit the series as TSV instead of a plot
//	dpibench -ablation            # depth-2 sweep + adversarial comparison
//	dpibench -parallel            # engine throughput vs worker count
//	dpibench -parallel -workers 8 # cap the worker sweep
//	dpibench -gateway             # NIDS gateway ingestion throughput
//	dpibench -gateway -shards 4   # plus the engine-shard sweep (2, 4 shards)
//	dpibench -gateway -json out.json  # plus a machine-readable report
//	dpibench -gateway -shards 4 -json BENCH_5.json  # the sharded perf-trajectory report
//	dpibench -kernel              # raw scan-kernel throughput across all backends
//	dpibench -kernel -json BENCH_7.json  # plus the perf-trajectory report
//	dpibench -pcap 'testdata/pcap/*.pcap'            # capture-fed gateway replay + oracle check
//	dpibench -pcap 'testdata/pcap/*.pcap' -shards 4 -repeats 500
//	dpibench -pcap 'testdata/pcap/*.pcap' -json pcap.json
//	dpibench -parallel -backend reference   # pin -parallel/-gateway to one backend
//	dpibench -gateway -backend prefiltered  # run the gateway on the two-stage pipeline
//	dpibench -kernel -cpuprofile cpu.pprof -memprofile mem.pprof
//	dpibench -chaos               # seeded fault-injection soak (oracle + conservation gates)
//	dpibench -chaos -shards 4 -json chaos.json   # the CI chaos-soak artifact
//	dpibench -reload              # hot-reload swap storm (pinning + retirement gates)
//	dpibench -reload -shards 4 -gens 8 -json reload.json  # the CI reload-soak artifact
//	dpibench -seed 2010           # workload seed (default 2010)
//
// On SIGINT/SIGTERM every mode drains the gateway, writes a partial JSON
// report (marked "interrupted": true) and renders the rows measured so
// far; JSON reports are written via temp-file + rename, so a report path
// never holds a truncated document.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/ruleset"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (1, 2 or 3)")
		figure   = flag.Int("figure", 0, "regenerate one figure (1, 2, 6, 7 or 8; 1 emits DOT)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		ablation = flag.Bool("ablation", false, "run the ablation experiments")
		parallel = flag.Bool("parallel", false, "measure engine throughput vs worker count")
		gateway  = flag.Bool("gateway", false, "measure NIDS gateway ingestion throughput vs worker count")
		kernel   = flag.Bool("kernel", false, "measure raw scan-kernel throughput across all registered backends")
		pcap     = flag.String("pcap", "", "replay capture files matching this glob through the gateway (oracle check + capture-fed throughput)")
		repeats  = flag.Int("repeats", 200, "replay count for the -pcap throughput measurement")
		chaosRun = flag.Bool("chaos", false, "run the seeded chaos soak: storms, overload shedding and injected panics, gated on oracle exactness and byte conservation")
		reload   = flag.Bool("reload", false, "run the hot-reload swap storm: ruleset generations installed under live traffic, gated on generation pinning and provable retirement")
		gens     = flag.Int("gens", 0, "with -reload: ruleset generations to install (0 = default sweep)")
		backend  = flag.String("backend", "auto",
			fmt.Sprintf("scan backend for -parallel/-gateway: auto or one of %s (-kernel always sweeps all)",
				strings.Join(core.RegisteredBackends(), ", ")))
		baked   = flag.Bool("baked", true, "deprecated alias: -baked=false means -backend reference")
		jsonOut = flag.String("json", "", "with -gateway or -kernel: also write the machine-readable report as JSON to this path")
		workers = flag.Int("workers", 0, "max workers for -parallel/-gateway (0 = NumCPU)")
		shards  = flag.Int("shards", 1, "max engine shards for -gateway: sweeps 2,4,...,N sharded rows on top of the worker sweep (1 = unsharded only)")
		tsv     = flag.Bool("tsv", false, "emit figure series as TSV instead of ASCII plots")
		seed    = flag.Int64("seed", experiments.DefaultSeed, "workload generation seed")
		steps   = flag.Int("steps", 10, "clock sweep steps for figures 7/8")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memProf = flag.String("memprofile", "", "write a heap profile to this path at exit")
	)
	flag.Parse()
	if !*all && *table == 0 && *figure == 0 && !*ablation && !*parallel && !*gateway && !*kernel && *pcap == "" && !*chaosRun && !*reload {
		flag.Usage()
		os.Exit(2)
	}
	// A signal cancels the context instead of killing the process: the
	// running mode drains its gateway, writes the partial report atomically
	// and renders what it measured. A second signal kills outright (the
	// default disposition is restored once stop runs).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Profiling wraps every mode so future perf PRs can attach pprof
	// evidence to any of the benchmark tables. The error paths run through
	// one exit point below, after the profiles are flushed.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpibench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dpibench:", err)
			os.Exit(1)
		}
	}
	be := *backend
	if !*baked {
		be = "reference"
	}
	err := dispatch(ctx, modes{
		all: *all, table: *table, figure: *figure, ablation: *ablation,
		parallel: *parallel, gateway: *gateway, kernel: *kernel,
		pcap: *pcap, repeats: *repeats, chaos: *chaosRun,
		reload: *reload, gens: *gens,
		backend: be, jsonOut: *jsonOut, workers: *workers, shards: *shards,
		tsv: *tsv, seed: *seed, steps: *steps,
	})
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		if perr := writeHeapProfile(*memProf); err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpibench:", err)
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the steady-state live set
	return pprof.WriteHeapProfile(f)
}

// modes carries the parsed command line; one named field per flag so the
// single construction site cannot transpose the many booleans silently.
type modes struct {
	all      bool
	table    int
	figure   int
	ablation bool
	parallel bool
	gateway  bool
	kernel   bool
	pcap     string
	repeats  int
	chaos    bool
	reload   bool
	gens     int
	backend  string
	jsonOut  string
	workers  int
	shards   int
	tsv      bool
	seed     int64
	steps    int
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, so a reader (or a CI artifact upload racing a
// signal) never observes a truncated report. The rename is atomic on the
// platforms the bench runs on; the temp file is removed on any failure.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// validateBackend fails fast on a backend name the registry does not
// know, before any workload is generated: a typo'd -backend must not cost
// a multi-second bench run (or silently bench the wrong thing), and the
// error lists exactly the names the registry accepts, so a newly
// registered backend is never missing from it.
func validateBackend(name string) error {
	if name == "" || name == core.BackendAuto {
		return nil
	}
	for _, known := range core.RegisteredBackends() {
		if name == known {
			return nil
		}
	}
	return fmt.Errorf("unknown -backend %q (registered: auto, %s)",
		name, strings.Join(core.RegisteredBackends(), ", "))
}

func dispatch(ctx context.Context, m modes) error {
	if err := validateBackend(m.backend); err != nil {
		return err
	}
	if m.jsonOut != "" {
		writers := 0
		for _, on := range []bool{m.gateway, m.kernel, m.pcap != "", m.chaos, m.reload} {
			if on {
				writers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("-json with more than one of -gateway, -kernel, -pcap, -chaos, -reload would overwrite one report with another; run the modes separately")
		}
		if writers == 0 {
			return fmt.Errorf("-json is only produced by -gateway, -kernel, -pcap, -chaos or -reload; no report would be written")
		}
	}
	if m.parallel {
		cfg := defaultParallelConfig(m.seed)
		cfg.MaxWorkers = m.workers
		cfg.Backend = m.backend
		if err := runParallel(os.Stdout, cfg); err != nil {
			return err
		}
	}
	if m.gateway {
		cfg := defaultGatewayConfig(m.seed)
		cfg.MaxWorkers = m.workers
		cfg.MaxShards = m.shards
		cfg.Backend = m.backend
		if err := runGateway(ctx, os.Stdout, m.jsonOut, cfg); err != nil {
			return err
		}
	}
	if m.kernel {
		if err := runKernel(ctx, os.Stdout, m.jsonOut, defaultKernelConfig(m.seed)); err != nil {
			return err
		}
	}
	if m.pcap != "" {
		shards := m.shards
		if shards < 1 {
			shards = 1
		}
		if err := runPcap(ctx, os.Stdout, m.jsonOut, pcapConfig{
			Glob: m.pcap, Backend: m.backend, Workers: m.workers,
			Shards: shards, Repeats: m.repeats,
		}); err != nil {
			return err
		}
	}
	if m.chaos {
		cfg := defaultChaosConfig(m.seed)
		cfg.MaxShards = m.shards
		cfg.Backend = m.backend
		if err := runChaos(ctx, os.Stdout, m.jsonOut, cfg); err != nil {
			return err
		}
	}
	if m.reload {
		cfg := defaultReloadConfig(m.seed)
		if m.gens > 1 {
			cfg.Waves = m.gens
		}
		cfg.Shards = m.shards
		cfg.Backend = m.backend
		if err := runReload(ctx, os.Stdout, m.jsonOut, cfg); err != nil {
			return err
		}
	}
	return run(os.Stdout, m.all, m.table, m.figure, m.ablation, m.tsv, m.seed, m.steps)
}

func run(out io.Writer, all bool, table, figure int, ablation, tsv bool, seed int64, steps int) error {
	var ctx *experiments.Context
	getCtx := func() (*experiments.Context, error) {
		if ctx == nil {
			fmt.Fprintf(os.Stderr, "generating %d-string workload (seed %d)...\n",
				experiments.FullSetSize, seed)
			c, err := experiments.NewContext(seed)
			if err != nil {
				return nil, err
			}
			ctx = c
		}
		return ctx, nil
	}

	if all || table == 1 {
		if err := renderTable1(out); err != nil {
			return err
		}
	}
	if all || table == 2 {
		c, err := getCtx()
		if err != nil {
			return err
		}
		if err := renderTable2(out, c); err != nil {
			return err
		}
	}
	if all || table == 3 {
		c, err := getCtx()
		if err != nil {
			return err
		}
		if err := renderTable3(out, c); err != nil {
			return err
		}
	}
	if figure == 1 {
		if err := renderFigure1(out); err != nil {
			return err
		}
	}
	if all || figure == 2 {
		if err := renderFigure2(out); err != nil {
			return err
		}
	}
	if all || figure == 6 {
		c, err := getCtx()
		if err != nil {
			return err
		}
		if err := renderFigure6(out, c, tsv); err != nil {
			return err
		}
	}
	if all || figure == 7 {
		if err := renderPowerFigure(out, 7, steps, tsv); err != nil {
			return err
		}
	}
	if all || figure == 8 {
		if err := renderPowerFigure(out, 8, steps, tsv); err != nil {
			return err
		}
	}
	if all || ablation {
		c, err := getCtx()
		if err != nil {
			return err
		}
		if err := renderAblations(out, c); err != nil {
			return err
		}
	}
	return nil
}

func renderTable1(out io.Writer) error {
	rows := experiments.Table1()
	t := &report.Table{
		Title:   "TABLE I. RESOURCE UTILIZATION (model vs paper)",
		Headers: []string{"Device", "Logic (model)", "Logic (paper)", "Logic cap", "M9K (model)", "M9K (paper)", "M9K cap", "fmax (MHz)"},
	}
	for _, r := range rows {
		t.AddRow(r.Device, r.LogicModel, r.LogicPaper, r.LogicCap, r.M9KModel, r.M9KPaper, r.M9KCap, r.FmaxMHz)
	}
	return t.Render(out)
}

func renderTable2(out io.Writer, c *experiments.Context) error {
	rows, err := c.Table2()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: "TABLE II. REDUCTION IN TRANSITION POINTERS",
		Headers: []string{"Device", "Strings", "Blocks", "Orig.States", "Orig.Avg",
			"States", "d1", "Avg", "d1+d2", "Avg", "d1+d2+d3", "Avg", "Reduction", "Mem(bytes)", "Speed(Gbps)"},
	}
	for _, r := range rows {
		t.AddRow(r.Device, r.N, r.Blocks, r.OrigStates, r.OrigAvg,
			r.States, r.D1, r.AvgAfterD1, r.D1D2, r.AvgAfterD12,
			r.D1D2D3, r.AvgAfterD123, fmt.Sprintf("%.1f%%", r.ReductionPct),
			r.MemoryBytes, r.SpeedGbps)
	}
	return t.Render(out)
}

func renderTable3(out io.Writer, c *experiments.Context) error {
	rows, err := c.Table3()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "TABLE III. PERFORMANCE COMPARISON (19,124-character subset)",
		Headers: []string{"Approach", "Device", "Memory (bytes)", "Throughput (Gbps)", "Source"},
	}
	for _, r := range rows {
		t.AddRow(r.Approach, r.Device, r.MemoryBytes, r.Throughput, r.Source)
	}
	return t.Render(out)
}

// renderFigure1 emits the paper's Figure 1 state machine (he, she, his,
// hers) as Graphviz DOT, with the compressed machine's stored pointers
// solid and the removed trie skeleton dotted — pipe into `dot -Tsvg`.
func renderFigure1(out io.Writer) error {
	toy := &ruleset.Set{Patterns: []ruleset.Pattern{
		{ID: 0, Data: []byte("he")},
		{ID: 1, Data: []byte("she")},
		{ID: 2, Data: []byte("his")},
		{ID: 3, Data: []byte("hers")},
	}}
	m, err := core.Build(toy, core.Options{})
	if err != nil {
		return err
	}
	return m.WriteDot(out, core.DotOptions{ShowDefaults: true})
}

func renderFigure2(out io.Writer) error {
	rows, err := experiments.Figure2()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "FIGURE 2 WALKTHROUGH (he, she, his, hers)",
		Headers: []string{"Stage", "Avg stored pointers", "Paper"},
	}
	for _, r := range rows {
		t.AddRow(r.Stage, r.AvgStored, r.PaperValue)
	}
	return t.Render(out)
}

func renderFigure6(out io.Writer, c *experiments.Context, tsv bool) error {
	series, err := c.Figure6()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "FIGURE 6. DISTRIBUTION OF STRING LENGTHS")
	if tsv {
		return report.WriteTSV(out, "Number of Characters in String", "Number of Strings", series)
	}
	return report.AsciiPlot(out, series, 72, 20)
}

func renderPowerFigure(out io.Writer, fig, steps int, tsv bool) error {
	var series []report.Series
	var err error
	var title string
	if fig == 7 {
		series, err = experiments.Figure7(steps)
		title = "FIGURE 7. POWER CONSUMED BY CYCLONE 3 IMPLEMENTATION"
	} else {
		series, err = experiments.Figure8(steps)
		title = "FIGURE 8. POWER CONSUMED BY STRATIX 3 IMPLEMENTATION"
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(out, title)
	if tsv {
		return report.WriteTSV(out, "Power Consumption (Watts)", "Throughput (Gbps)", series)
	}
	return report.AsciiPlot(out, series, 72, 20)
}

func renderAblations(out io.Writer, c *experiments.Context) error {
	rows, err := c.D2Sweep(634, []int{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "ABLATION: DEPTH-2 DEFAULTS PER CHARACTER (634-string set; paper: 4 is optimal)",
		Headers: []string{"d2/char", "Stored pointers", "Avg", "State bytes", "LUT bytes", "Total bytes"},
	}
	for _, r := range rows {
		t.AddRow(r.D2PerChar, r.StoredPointers, r.AvgStored, r.StateBytes, r.LUTBytes, r.TotalBytes)
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	adv, err := c.Adversarial(634, 65536)
	if err != nil {
		return err
	}
	t2 := &report.Table{
		Title:   "WORST-CASE INPUT: AUTOMATON STEPS PER SCANNED CHARACTER",
		Headers: []string{"Approach", "Steps/char", "Worst-case throughput fraction"},
	}
	for _, r := range adv {
		t2.AddRow(r.Approach, fmt.Sprintf("%.3f", r.StepsPerChar), fmt.Sprintf("%.2f", r.ThroughputFraction))
	}
	return t2.Render(out)
}
