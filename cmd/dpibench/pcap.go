package main

// The -pcap mode: replay capture files through the full gateway —
// capture parsing, translation, reassembly, verdicts, scanning — first
// checking the committed-corpus oracles on a fresh gateway, then
// measuring sustained capture-fed ingestion throughput over repeated
// replays. This is the capture-fed number the observability literature
// treats as reportable, as opposed to the synthetic-scan throughput the
// other modes measure.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	dpi "repro"
	"repro/internal/capture/corpus"
)

type pcapConfig struct {
	Glob    string
	Backend string
	Workers int
	Shards  int
	Repeats int
}

type pcapFileResult struct {
	File         string `json:"file"`
	Frames       uint64 `json:"frames"`
	Ingested     uint64 `json:"ingested"`
	PayloadBytes uint64 `json:"payload_bytes"`
	Matches      uint64 `json:"matches"`
	OracleOK     *bool  `json:"oracle_ok,omitempty"` // known corpora only
}

type pcapReport struct {
	Backend        string           `json:"backend"`
	Shards         int              `json:"shards"`
	Repeats        int              `json:"repeats"` // repeats actually completed
	Files          []pcapFileResult `json:"files"`
	PayloadBytes   uint64           `json:"total_payload_bytes"` // per repeat
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	ThroughputMBps float64          `json:"throughput_mbps"`
	Interrupted    bool             `json:"interrupted"` // run stopped by SIGINT/SIGTERM
}

func runPcap(ctx context.Context, out io.Writer, jsonPath string, cfg pcapConfig) error {
	files, err := filepath.Glob(cfg.Glob)
	if err != nil || len(files) == 0 {
		return fmt.Errorf("no capture files match %q", cfg.Glob)
	}
	sort.Strings(files)
	raws := make([][]byte, len(files))
	for i, path := range files {
		if raws[i], err = os.ReadFile(path); err != nil {
			return err
		}
	}

	rs := dpi.NewRuleset()
	for _, r := range corpus.Rules() {
		rs.MustAdd(r.Name, []byte(r.Content))
	}
	matcher, err := dpi.Compile(rs, dpi.Config{Backend: cfg.Backend})
	if err != nil {
		return err
	}

	rep := pcapReport{Backend: matcher.Backend(), Shards: cfg.Shards, Repeats: cfg.Repeats}

	// Correctness pass: each file on its own fresh gateway, so the
	// committed-corpus oracles see exactly one replay's matches. A signal
	// abandons the remaining files; the partial report says so.
	for i, path := range files {
		if ctx.Err() != nil {
			break
		}
		var matches atomic.Uint64
		gw := matcher.NewEngine(cfg.Workers).Gateway(dpi.GatewayConfig{EngineShards: cfg.Shards},
			func(dpi.FlowMatch) { matches.Add(1) })
		st, err := gw.ReplayPcap(bytes.NewReader(raws[i]))
		if err != nil {
			gw.Close()
			return fmt.Errorf("%s: %v", path, err)
		}
		gw.Flush()
		gw.Close()
		fr := pcapFileResult{
			File:         filepath.Base(path),
			Frames:       st.Frames,
			Ingested:     st.Ingested,
			PayloadBytes: st.PayloadBytes,
			Matches:      matches.Load(),
		}
		if c := corpus.ByFile(fr.File); c != nil {
			oracle := c.OracleMatches(func(s []byte) int { return len(matcher.FindAll(s)) })
			ok := fr.Matches == uint64(oracle)
			fr.OracleOK = &ok
			if !ok {
				return fmt.Errorf("%s: %d matches, oracle says %d", path, fr.Matches, oracle)
			}
		}
		rep.PayloadBytes += fr.PayloadBytes
		rep.Files = append(rep.Files, fr)
	}

	// Throughput pass: repeated replays into one long-lived gateway (one
	// capture loop, many rotations), timed end to end including Flush. A
	// signal stops between repeats; the gateway is still drained so the
	// elapsed time covers every byte the throughput figure counts.
	gw := matcher.NewEngine(cfg.Workers).Gateway(dpi.GatewayConfig{EngineShards: cfg.Shards},
		func(dpi.FlowMatch) {})
	start := time.Now()
	done := 0
	for r := 0; r < cfg.Repeats && ctx.Err() == nil; r++ {
		for i := range raws {
			if _, err := gw.ReplayPcap(bytes.NewReader(raws[i])); err != nil {
				gw.Close()
				return err
			}
		}
		done++
	}
	gw.Flush()
	rep.ElapsedSeconds = time.Since(start).Seconds()
	gw.Close()
	rep.Repeats = done
	rep.Interrupted = ctx.Err() != nil
	total := float64(rep.PayloadBytes) * float64(done)
	if rep.ElapsedSeconds > 0 {
		rep.ThroughputMBps = total / (1 << 20) / rep.ElapsedSeconds
	}

	fmt.Fprintf(out, "PCAP REPLAY (backend %s, %d shard(s), %d repeat(s))\n",
		rep.Backend, rep.Shards, rep.Repeats)
	for _, fr := range rep.Files {
		oracle := "-"
		if fr.OracleOK != nil {
			oracle = fmt.Sprintf("%v", *fr.OracleOK)
		}
		fmt.Fprintf(out, "  %-20s frames=%-4d ingested=%-4d payload=%-6d matches=%-4d oracle_ok=%s\n",
			fr.File, fr.Frames, fr.Ingested, fr.PayloadBytes, fr.Matches, oracle)
	}
	fmt.Fprintf(out, "  %.2f MB/s capture-fed (%.0f payload bytes in %.3fs)\n",
		rep.ThroughputMBps, total, rep.ElapsedSeconds)
	if rep.Interrupted {
		fmt.Fprintf(out, "  interrupted: %d/%d repeats completed\n", done, cfg.Repeats)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		return writeFileAtomic(jsonPath, append(data, '\n'))
	}
	return nil
}
