package main

// The -reload mode: a swap storm for the hot-reload control plane,
// runnable anywhere the repo builds and gated by CI's reload-soak job.
// It installs a sequence of ruleset generations under live traffic —
// each generation gets its own wave of flows, opened before the next
// SwapRules and still streaming after it — and verifies the two
// contracts the reload API makes:
//
//   - pinning: every flow's matches equal FindAll of its full stream
//     against the matcher installed when the flow opened, never the one
//     installed later;
//   - retirement: once a generation's last pinned flow ends, it is
//     retired on the spot (generations_retired == generations_installed
//     - 1 after the final drain; no sweeper, no leak).
//
// The JSON report carries both verdicts plus the conservation ledger and
// the worst SwapRules drain latency, so CI can gate all of it with jq.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	dpi "repro"
	"repro/internal/report"
	"repro/internal/traffic"
)

// reloadBenchConfig sizes the -reload soak; tests shrink it.
type reloadBenchConfig struct {
	Strings int // patterns per generation's ruleset
	Waves   int // generations installed (1 initial + Waves-1 swaps)
	Flows   int // flows opened per wave
	Shards  int // engine shards
	Seed    int64
	Backend string // scan backend ("" = auto)
}

func defaultReloadConfig(seed int64) reloadBenchConfig {
	return reloadBenchConfig{Strings: 200, Waves: 6, Flows: 24, Shards: 1, Seed: seed}
}

type reloadReport struct {
	Backend              string            `json:"backend"`
	Shards               int               `json:"shards"`
	FlowsPerWave         int               `json:"flows_per_wave"`
	Packets              int               `json:"packets"`
	Matches              int               `json:"matches"`
	Swaps                uint64            `json:"swaps"`
	GenerationsInstalled uint64            `json:"generations_installed"`
	GenerationsRetired   uint64            `json:"generations_retired"`
	GenerationsLive      int               `json:"generations_live"`
	MaxSwapMicros        int64             `json:"max_swap_micros"`
	PinningOK            bool              `json:"pinning_ok"`
	RetirementOK         bool              `json:"retirement_ok"`
	Balanced             bool              `json:"balanced"`
	Ledger               dpi.GatewayLedger `json:"ledger"`
	Interrupted          bool              `json:"interrupted"`
	Detail               string            `json:"detail,omitempty"`
	OK                   bool              `json:"ok"`
}

// fail marks the report failed; the first failure's detail wins.
func (r *reloadReport) fail(format string, args ...any) {
	r.OK = false
	if r.Detail == "" {
		r.Detail = fmt.Sprintf(format, args...)
	}
}

// reloadWave is one generation's share of the soak.
type reloadWave struct {
	m       *dpi.Matcher
	tuples  []dpi.FiveTuple
	streams [][]byte
	pending [][]dpi.GatewayPacket // per flow, unsent tail in stream order
}

func buildReloadWave(wv int, cfg reloadBenchConfig) (*reloadWave, error) {
	rules, err := dpi.GenerateSnortLike(cfg.Strings, cfg.Seed+int64(1000*wv))
	if err != nil {
		return nil, err
	}
	m, err := dpi.Compile(rules, dpi.Config{Groups: 2, Backend: cfg.Backend})
	if err != nil {
		return nil, err
	}
	w, err := traffic.GenerateFlows(rules.InternalSet(), traffic.FlowConfig{
		Flows: cfg.Flows, SegmentsPerFlow: 6, SegmentBytes: 140,
		Seed: cfg.Seed + int64(31*wv) + 7, CrossDensity: 2, AttackDensity: 1,
		Profile: traffic.Textual,
	})
	if err != nil {
		return nil, err
	}
	rw := &reloadWave{m: m, streams: w.Streams, pending: make([][]dpi.GatewayPacket, len(w.Tuples))}
	for f := range w.Tuples {
		rw.tuples = append(rw.tuples, dpi.FiveTuple{
			SrcIP: 0x0a000000 | uint32(wv)<<12 | uint32(f), DstIP: 0xc0a80001,
			SrcPort: uint16(1024 + f), DstPort: 80, Proto: dpi.ProtoTCP,
		})
	}
	for _, p := range w.Packets {
		rw.pending[p.FlowID] = append(rw.pending[p.FlowID],
			dpi.GatewayPacket{Tuple: rw.tuples[p.FlowID], Payload: p.Payload})
	}
	return rw, nil
}

func runReload(ctx context.Context, out io.Writer, jsonPath string, cfg reloadBenchConfig) error {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	waves := make([]*reloadWave, cfg.Waves)
	for wv := range waves {
		w, err := buildReloadWave(wv, cfg)
		if err != nil {
			return fmt.Errorf("dpibench: reload wave %d: %w", wv, err)
		}
		waves[wv] = w
	}

	rep := reloadReport{
		Shards: cfg.Shards, FlowsPerWave: cfg.Flows,
		PinningOK: true, RetirementOK: true, OK: true,
	}
	var matches int
	c := newChaosCollector()
	var gwErr error
	gw := waves[0].m.NewEngine(0).Gateway(dpi.GatewayConfig{
		EngineShards: cfg.Shards, BatchPackets: 16,
	}, c.emit)
	rep.Backend = gw.Backend()
	send := func(p dpi.GatewayPacket) bool {
		if err := gw.Ingest(p); err != nil {
			gwErr = err
			return false
		}
		rep.Packets++
		return true
	}
	// Schedule: wave wv's flows all open (first segment sent), a random
	// share of every live wave streams, then the next generation swaps in.
	// Tails drain fully interleaved at the end, so early-generation flows
	// cross every later swap.
	for wv := range waves {
		if ctx.Err() != nil {
			rep.Interrupted = true
			break
		}
		if wv > 0 {
			start := time.Now()
			if err := gw.SwapRules(waves[wv].m); err != nil {
				gw.Close()
				return fmt.Errorf("dpibench: SwapRules to generation %d: %w", waves[wv].m.Generation(), err)
			}
			if us := time.Since(start).Microseconds(); us > rep.MaxSwapMicros {
				rep.MaxSwapMicros = us
			}
			rep.Swaps++
		}
		for f := range waves[wv].pending {
			if len(waves[wv].pending[f]) > 0 {
				if !send(waves[wv].pending[f][0]) {
					break
				}
				waves[wv].pending[f] = waves[wv].pending[f][1:]
			}
		}
		for v := 0; v <= wv && gwErr == nil; v++ {
			for f := range waves[v].pending {
				for len(waves[v].pending[f]) > 0 && rng.Float64() < 0.4 {
					if !send(waves[v].pending[f][0]) {
						break
					}
					waves[v].pending[f] = waves[v].pending[f][1:]
				}
			}
		}
		if gwErr != nil {
			break
		}
	}
	for gwErr == nil && !rep.Interrupted {
		left := false
		for _, w := range waves {
			for f := range w.pending {
				for len(w.pending[f]) > 0 && rng.Float64() < 0.7 {
					if !send(w.pending[f][0]) {
						break
					}
					w.pending[f] = w.pending[f][1:]
					left = true
				}
				if len(w.pending[f]) > 0 {
					left = true
				}
			}
		}
		if ctx.Err() != nil {
			rep.Interrupted = true
		}
		if !left {
			break
		}
	}
	if gwErr != nil {
		gw.Close()
		return fmt.Errorf("dpibench: reload ingest: %w", gwErr)
	}

	// FIN every flow of every non-final wave: their generations must
	// retire right here, on the FIN path.
	if !rep.Interrupted {
		for _, w := range waves[:len(waves)-1] {
			for _, tup := range w.tuples {
				if !send(dpi.GatewayPacket{Tuple: tup, Flags: dpi.FlagFIN}) {
					break
				}
			}
		}
	}
	gw.Flush()
	st := gw.Stats()
	rep.GenerationsInstalled = st.GenerationsInstalled
	rep.GenerationsRetired = st.GenerationsRetired
	rep.GenerationsLive = st.GenerationsLive
	if !rep.Interrupted {
		if st.GenerationsRetired != st.GenerationsInstalled-1 {
			rep.RetirementOK = false
			rep.fail("retirement stuck: %d of %d generations retired after the FIN drain",
				st.GenerationsRetired, st.GenerationsInstalled)
		}
		if st.GenerationsLive != 1 {
			rep.RetirementOK = false
			rep.fail("%d generations still live after the FIN drain, want 1", st.GenerationsLive)
		}
	}
	if err := gw.Close(); err != nil {
		return err
	}
	rep.Ledger = gw.Stats().Ledger()
	rep.Balanced = rep.Ledger.Balanced()
	if !rep.Balanced {
		rep.fail("conservation law violated: %+v", rep.Ledger)
	}
	// Pinning oracle: each wave's flows against that wave's matcher.
	if !rep.Interrupted {
		for wv, w := range waves {
			for f, tup := range w.tuples {
				want := w.m.FindAll(w.streams[f])
				got := c.matches(tup)
				if !sameChaosMatches(got, want) {
					rep.PinningOK = false
					rep.fail("wave %d flow %d: %d matches vs birth-generation oracle %d",
						wv, f, len(got), len(want))
				}
				matches += len(got)
			}
		}
		if matches == 0 {
			rep.fail("no matches across any wave; soak is vacuous")
		}
	}
	rep.Matches = matches

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFileAtomic(jsonPath, append(data, '\n')); err != nil {
			return err
		}
	}
	t := &report.Table{
		Title: fmt.Sprintf("HOT RELOAD SOAK (backend %s, %d generations x %d flows, %d shards, seed %d)",
			rep.Backend, cfg.Waves, cfg.Flows, cfg.Shards, cfg.Seed),
		Headers: []string{"Swaps", "Installed", "Retired", "Live", "Packets", "Matches",
			"Pinning", "Retirement", "Balanced", "MaxSwap(us)", "Detail"},
	}
	t.AddRow(rep.Swaps, rep.GenerationsInstalled, rep.GenerationsRetired, rep.GenerationsLive,
		rep.Packets, rep.Matches, rep.PinningOK, rep.RetirementOK, rep.Balanced,
		rep.MaxSwapMicros, rep.Detail)
	if err := t.Render(out); err != nil {
		return err
	}
	if rep.Interrupted {
		fmt.Fprintln(out, "interrupted: partial reload report (oracle gates skipped)")
		return nil
	}
	if !rep.OK {
		return fmt.Errorf("dpibench: reload soak failed; see the table (or the -json report) for the broken assertion")
	}
	return nil
}
