package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunParallelSmall(t *testing.T) {
	var sb strings.Builder
	cfg := parallelConfig{
		Strings: 120, Packets: 8, Bytes: 512, Seed: 2010,
		MinTime: 5 * time.Millisecond, MaxWorkers: 2,
	}
	if err := runParallel(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ENGINE PARALLEL SCAN", "Matcher.FindAll", "Engine.ScanPackets", "Gbps", "Speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestWorkerSweepShape(t *testing.T) {
	got := workerSweep(6)
	want := []int{1, 2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("workerSweep(6) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("workerSweep(6) = %v, want %v", got, want)
		}
	}
	if one := workerSweep(1); len(one) != 1 || one[0] != 1 {
		t.Fatalf("workerSweep(1) = %v", one)
	}
}

func TestRunGatewaySmall(t *testing.T) {
	var sb strings.Builder
	jsonPath := filepath.Join(t.TempDir(), "gateway-bench.json")
	cfg := gatewayBenchConfig{
		Strings: 100, Flows: 12, SegmentsPerFlow: 3, SegmentBytes: 200,
		Datagrams: 10, DatagramBytes: 150, ChurnMaxFlows: 3,
		ReorderWindow: 2, RetransDensity: 0.5, Seed: 2010,
		MinTime: 5 * time.Millisecond, MaxWorkers: 2, MaxShards: 2,
	}
	if err := runGateway(context.Background(), &sb, jsonPath, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"GATEWAY INGESTION", "full-table", "sharded", "reordered", "churn", "Gbps", "Evicted", "OOOSegs"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep gatewayBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, data)
	}
	if !rep.OK || rep.Bench != 5 {
		t.Fatalf("report not OK: %s", data)
	}
	// full-table sweep (2 workers -> 2 rows) + sharded@2 + reordered + churn.
	if len(rep.Rows) != 5 {
		t.Fatalf("report has %d rows: %s", len(rep.Rows), data)
	}
	var sawReordered, sawSharded bool
	for _, r := range rep.Rows {
		if !r.OracleOK {
			t.Fatalf("row %+v failed its oracle but report.OK is true", r)
		}
		if r.Mode == "reordered" {
			sawReordered = true
			if r.OutOfOrder == 0 {
				t.Errorf("reordered row buffered no segments: %+v", r)
			}
			if r.OracleWant == 0 || r.Matches != uint64(r.OracleWant) {
				t.Errorf("reordered row not oracle-gated: %+v", r)
			}
		}
		if r.Mode == "sharded" {
			sawSharded = true
			if r.Shards != 2 {
				t.Errorf("sharded row at %d shards, want 2: %+v", r.Shards, r)
			}
			if r.OracleWant == 0 || r.Matches != uint64(r.OracleWant) {
				t.Errorf("sharded row not oracle-gated: %+v", r)
			}
		}
	}
	if !sawReordered {
		t.Fatal("no reordered row in the report")
	}
	if !sawSharded {
		t.Fatal("no sharded row in the report")
	}
}

func TestRunKernelSmall(t *testing.T) {
	var sb strings.Builder
	jsonPath := filepath.Join(t.TempDir(), "kernel-bench.json")
	cfg := kernelBenchConfig{
		Sizes: []int{60}, Bytes: 1 << 13, Seed: 2010,
		MinTime: 5 * time.Millisecond,
	}
	if err := runKernel(context.Background(), &sb, jsonPath, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SCAN KERNEL THROUGHPUT", "baked", "reference", "prefiltered", "clean", "Oracle", "Allocs/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep kernelBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, data)
	}
	if !rep.OK || rep.Bench != 7 {
		t.Fatalf("report not OK: %s", data)
	}
	// One attack row group + one clean row group, four backends each.
	if len(rep.Rows) != 8 {
		t.Fatalf("report has %d rows, want 8: %s", len(rep.Rows), data)
	}
	byKey := map[string]kernelBenchRow{}
	for _, r := range rep.Rows {
		if r.Matches != r.OracleMatches {
			t.Fatalf("row %+v diverged from the oracle but report.OK is true", r)
		}
		byKey[r.Profile+"/"+r.Backend] = r
	}
	for _, profile := range []string{"attack", "clean"} {
		for _, backend := range []string{"reference", "baked", "prefiltered", "accelerated"} {
			if _, ok := byKey[profile+"/"+backend]; !ok {
				t.Fatalf("missing %s/%s row: %s", profile, backend, data)
			}
		}
	}
	if r := byKey["attack/baked"]; r.DenseStates == 0 || r.KernelBytes == 0 {
		t.Fatalf("baked row missing kernel stats: %+v", r)
	}
	if r := byKey["attack/prefiltered"]; r.PrefilterKB == 0 {
		t.Fatalf("prefiltered row missing prefilter stats: %+v", r)
	}
	if r := byKey["attack/accelerated"]; r.PairStates == 0 || r.PairBytes == 0 || r.KernelBytes == 0 {
		t.Fatalf("accelerated row missing pair-table stats: %+v", r)
	}
	// All backends in a group share the oracle count — the prefilter's
	// lossiness must be invisible in match output.
	if a, b := byKey["clean/baked"], byKey["clean/prefiltered"]; a.OracleMatches != b.OracleMatches {
		t.Fatalf("clean rows disagree on the oracle: %+v vs %+v", a, b)
	}
	// No floor assertion on the tiny timing budget: the speedup gates are
	// exercised by CI's full-size run and the committed BENCH_7.json.
}

func TestRunChaosSmall(t *testing.T) {
	var sb strings.Builder
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "chaos.json")
	cfg := chaosBenchConfig{Strings: 120, Seed: 2010, MaxShards: 2}
	if err := runChaos(context.Background(), &sb, jsonPath, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"CHAOS SOAK", "block-storm", "overflow", "shed-packets", "panic-quarantine", "swap-storm"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep chaosReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, data)
	}
	if !rep.OK || rep.Interrupted {
		t.Fatalf("report not OK: %s", data)
	}
	// 5 scenarios at each of shards 1 and 2.
	if len(rep.Scenarios) != 10 {
		t.Fatalf("report has %d scenarios, want 10: %s", len(rep.Scenarios), data)
	}
	for _, sc := range rep.Scenarios {
		if !sc.OK || !sc.Balanced || !sc.OracleOK {
			t.Fatalf("scenario failed but report.OK is true: %+v", sc)
		}
		if sc.Ledger.Ingested == 0 {
			t.Fatalf("scenario ingested nothing: %+v", sc)
		}
		if sc.Ledger.Ingested != sc.Ledger.Scanned+sc.Ledger.Shed+sc.Ledger.Skipped+sc.Ledger.Buffered {
			t.Fatalf("ledger does not balance in the report itself: %+v", sc)
		}
	}
	// The atomic writer must leave no temp litter next to the report.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("report directory not clean after atomic write: %v", entries)
	}
}

func TestRunReloadSmall(t *testing.T) {
	var sb strings.Builder
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "reload.json")
	cfg := reloadBenchConfig{Strings: 100, Waves: 3, Flows: 8, Shards: 2, Seed: 2010}
	if err := runReload(context.Background(), &sb, jsonPath, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"HOT RELOAD SOAK", "Pinning", "Retirement"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep reloadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, data)
	}
	if !rep.OK || rep.Interrupted || !rep.PinningOK || !rep.RetirementOK || !rep.Balanced {
		t.Fatalf("report not OK: %s", data)
	}
	if rep.Swaps != 2 || rep.GenerationsInstalled != 3 ||
		rep.GenerationsRetired != rep.GenerationsInstalled-1 || rep.GenerationsLive != 1 {
		t.Fatalf("generation accounting wrong: %s", data)
	}
	if rep.Matches == 0 || rep.Packets == 0 {
		t.Fatalf("vacuous report: %s", data)
	}
}

// TestRunChaosInterrupted pins the graceful-shutdown contract shared by
// every JSON-writing mode: a canceled context ends the run without error,
// and the report is written, parseable and marked interrupted.
func TestRunChaosInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	jsonPath := filepath.Join(t.TempDir(), "chaos.json")
	if err := runChaos(ctx, &sb, jsonPath, chaosBenchConfig{Strings: 120, Seed: 2010, MaxShards: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep chaosReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("partial report does not parse: %v\n%s", err, data)
	}
	if !rep.Interrupted || len(rep.Scenarios) != 0 {
		t.Fatalf("canceled run not marked interrupted: %s", data)
	}
	if !strings.Contains(sb.String(), "interrupted") {
		t.Errorf("interruption not reported to the operator:\n%s", sb.String())
	}
}

// TestBackendFlagValidation pins the fail-fast contract: an unknown
// -backend is rejected before any workload is generated, and the error
// lists every registered backend so the flag's vocabulary can never drift
// from the registry.
func TestBackendFlagValidation(t *testing.T) {
	err := dispatch(context.Background(), modes{parallel: true, backend: "warp"})
	if err == nil {
		t.Fatal("dispatch accepted an unknown backend")
	}
	for _, want := range []string{"warp", "reference", "baked", "prefiltered", "accelerated", "auto"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("validation error %q does not mention %q", err, want)
		}
	}
	for _, ok := range []string{"", "auto", "accelerated", "reference"} {
		if err := validateBackend(ok); err != nil {
			t.Errorf("validateBackend(%q) = %v, want nil", ok, err)
		}
	}
}

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, false, 1, 0, false, false, 2010, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"TABLE I", "Cyclone III", "Stratix III", "460.19"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure1EmitsDot(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, false, 0, 1, false, false, 2010, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph machine {") {
		t.Fatalf("not DOT output:\n%.120s", out)
	}
	if !strings.Contains(out, "doublecircle") {
		t.Error("match states missing from DOT")
	}
}

func TestRunFigure2(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, false, 0, 2, false, false, 2010, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FIGURE 2", "0.1", "0.5", "1.1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure7TSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, false, 0, 7, false, true, 2010, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "FIGURE 7") || !strings.Contains(out, "# 500 Strings") {
		t.Errorf("TSV series missing:\n%s", out)
	}
	// The top sample of the 500-string curve: 2.78 W, 14.9 Gbps.
	if !strings.Contains(out, "2.78\t14.9") {
		t.Errorf("calibrated endpoint missing:\n%s", out)
	}
}

func TestRunFigure8Plot(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, false, 0, 8, false, false, 2010, 6); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "FIGURE 8") || !strings.Contains(out, "634 Strings") {
		t.Errorf("plot missing:\n%s", out)
	}
}

// The ctx-dependent paths (tables 2/3, figure 6, ablation) are covered by
// internal/experiments tests; exercising them here again would rebuild the
// full 6,275-string workload, so they are exercised once in -short form.
func TestRunSmallContextPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload build")
	}
	var sb strings.Builder
	if err := run(&sb, false, 0, 6, false, true, 2010, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FIGURE 6") {
		t.Error("figure 6 missing")
	}
}
