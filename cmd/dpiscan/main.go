// Command dpiscan compiles a ruleset and scans files for matches — the
// end-user face of the library, equivalent to running a single string
// matching block in software.
//
// Usage:
//
//	dpiscan -rules rules.txt payload.bin [more files...]
//	dpiscan -rules rules.txt -stats             # compression report only
//	dpiscan -rules rules.txt -device stratix3   # add the hardware model report
//
// The rules file holds one Snort-style content string per line (optional
// "name:" prefix, |hex| escapes, #-comments):
//
//	web-phf: /cgi-bin/phf
//	shellcode: |90 90 90 90|
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	dpi "repro"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "ruleset file (required)")
		statsOnly = flag.Bool("stats", false, "print compression statistics and exit")
		devName   = flag.String("device", "", "also report the hardware model: cyclone3 or stratix3")
		groups    = flag.Int("groups", 0, "split the ruleset across this many blocks (0 = auto)")
	)
	flag.Parse()
	if *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *rulesPath, flag.Args(), *statsOnly, *devName, *groups); err != nil {
		fmt.Fprintln(os.Stderr, "dpiscan:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, rulesPath string, files []string, statsOnly bool, devName string, groups int) error {
	f, err := os.Open(rulesPath)
	if err != nil {
		return err
	}
	rules, err := dpi.ParseRuleset(f)
	f.Close()
	if err != nil {
		return err
	}
	m, err := dpi.Compile(rules, dpi.Config{Groups: groups})
	if err != nil {
		return err
	}
	st := m.Stats()
	fmt.Fprintf(w, "compiled %d patterns (%d chars): %d states, %.2f stored pointers/state (%.1f%% reduction)\n",
		rules.Len(), rules.CharCount(), st.States, st.AvgStored, 100*st.Reduction)

	if devName != "" {
		var dev dpi.Device
		switch devName {
		case "cyclone3":
			dev = dpi.Cyclone3
		case "stratix3":
			dev = dpi.Stratix3
		default:
			return fmt.Errorf("unknown device %q (want cyclone3 or stratix3)", devName)
		}
		a, err := dpi.NewAccelerator(m, dev)
		if err != nil {
			return err
		}
		r := a.Report()
		fmt.Fprintf(w, "%s: %d blocks, %d groups, %d concurrent packet sets, %.1f Gbps, %d B memory, %.2f W max\n",
			r.Device, r.Blocks, r.Groups, r.ConcurrentSets, r.ThroughputGbps, r.MemoryBytes, r.MaxPowerW)
	}
	if statsOnly {
		return nil
	}
	if len(files) == 0 {
		return fmt.Errorf("no input files (or pass -stats)")
	}
	total := 0
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		matches := m.FindAll(data)
		for _, mt := range matches {
			name := rules.Name(mt.PatternID)
			if name == "" {
				name = fmt.Sprintf("pattern-%d", mt.PatternID)
			}
			fmt.Fprintf(w, "%s: [%d:%d) %s\n", path, mt.Start, mt.End, name)
		}
		total += len(matches)
	}
	fmt.Fprintf(w, "%d matches in %d file(s)\n", total, len(files))
	return nil
}
