package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunScansFiles(t *testing.T) {
	dir := t.TempDir()
	rules := writeFile(t, dir, "rules.txt",
		"web-phf: /cgi-bin/phf\nsled: |90 90 90 90|\n")
	payload := writeFile(t, dir, "payload.bin",
		"GET /cgi-bin/phf HTTP/1.0\x90\x90\x90\x90\x90")

	var sb strings.Builder
	if err := run(&sb, rules, []string{payload}, false, "", 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "web-phf") {
		t.Errorf("web-phf match missing:\n%s", out)
	}
	// The 5-byte sled contains two overlapping 4-byte matches.
	if got := strings.Count(out, "sled"); got != 2 {
		t.Errorf("sled matches = %d, want 2:\n%s", got, out)
	}
	if !strings.Contains(out, "3 matches in 1 file(s)") {
		t.Errorf("summary missing:\n%s", out)
	}
}

func TestRunStatsOnlyWithDevice(t *testing.T) {
	dir := t.TempDir()
	rules := writeFile(t, dir, "rules.txt", "a: abcdef\nb: ghijkl\n")
	var sb strings.Builder
	if err := run(&sb, rules, nil, true, "stratix3", 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "compiled 2 patterns") {
		t.Errorf("stats line missing:\n%s", out)
	}
	if !strings.Contains(out, "Stratix III") || !strings.Contains(out, "44.2 Gbps") {
		t.Errorf("device report missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	rules := writeFile(t, dir, "rules.txt", "a: abc\n")
	var sb strings.Builder
	if err := run(&sb, filepath.Join(dir, "nope.txt"), nil, true, "", 0); err == nil {
		t.Error("missing rules file accepted")
	}
	if err := run(&sb, rules, nil, true, "virtex", 0); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run(&sb, rules, nil, false, "", 0); err == nil {
		t.Error("no input files accepted without -stats")
	}
	bad := writeFile(t, dir, "bad.txt", "x: |zz|\n")
	if err := run(&sb, bad, nil, true, "", 0); err == nil {
		t.Error("malformed ruleset accepted")
	}
}
