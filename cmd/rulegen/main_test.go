package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGenerate(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 30, 1, "", 0, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 30 {
		t.Fatalf("generated %d lines, want 30", len(lines))
	}
	for i, l := range lines {
		if !strings.Contains(l, ":") {
			t.Fatalf("line %d has no name prefix: %q", i, l)
		}
	}
}

func TestRunGenerateReduceHistogram(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.rules")
	var sb strings.Builder
	if err := run(&sb, 200, 2, "", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reduce via file round trip.
	sb.Reset()
	if err := run(&sb, 0, 3, path, 50, false); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(sb.String()), "\n")); got != 50 {
		t.Fatalf("reduced to %d lines, want 50", got)
	}

	// Histogram mode.
	sb.Reset()
	if err := run(&sb, 0, 3, path, 0, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# 200 strings") {
		t.Errorf("summary missing:\n%s", out)
	}
	if !strings.HasPrefix(out, "# length\tcount") {
		t.Errorf("header missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 1, "", 0, false); err == nil {
		t.Error("no -n and no -in accepted")
	}
	if err := run(&sb, 0, 1, "/nonexistent/file", 0, false); err == nil {
		t.Error("missing input file accepted")
	}
	if err := run(&sb, 10, 1, "", 99, false); err == nil {
		t.Error("reduce beyond set size accepted")
	}
}
